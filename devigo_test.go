package devigo

import (
	"math"
	"strings"
	"testing"
)

// TestListing1EndToEnd reproduces paper Listing 1 through the public API.
func TestListing1EndToEnd(t *testing.T) {
	nx, ny := 4, 4
	nu := 0.5
	g, err := NewGrid([]int{nx, ny}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := g.Spacing(0), g.Spacing(1)
	sigma := 0.25
	dt := sigma * dx * dy / nu

	u, err := NewTimeFunction("u", g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Data().SetSlice(0, []Slice{SliceRange(1, -1), SliceRange(1, -1)}, 1); err != nil {
		t.Fatal(err)
	}
	upd, err := Solve(Eq(u.Dt(), u.Laplace()), u.Forward())
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(g, Assign(u.Forward(), upd))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Apply(ApplyConfig{TimeM: 0, TimeN: 0, DT: dt}); err != nil {
		t.Fatal(err)
	}
	// Centre points: u = 1 + dt*lap where lap = -2/dx^2 - 2/dy^2 + cross
	// contributions; verify one hand-computed value.
	lap := (0 + 1 - 2*1) / (dx * dx) * 2 // symmetric in x and y at (1,1)
	want := float32(1 + dt*lap)
	got, ok := u.Data().At(1, []int{1, 1})
	if !ok {
		t.Fatal("point (1,1) not owned in serial run")
	}
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Errorf("u[1,1] = %v, want %v", got, want)
	}
}

func TestGeneratedCodeAccessible(t *testing.T) {
	g, _ := NewGrid([]int{8, 8}, nil)
	u, _ := NewTimeFunction("u", g, 2, 1)
	upd, _ := Solve(Eq(u.Dt(), u.Laplace()), u.Forward())
	op, _ := NewOperator(g, Assign(u.Forward(), upd))
	if !strings.Contains(op.GeneratedCode(), "for (int time") {
		t.Error("generated code missing time loop")
	}
	if !strings.Contains(op.ScheduleTree(), "time++") {
		t.Error("schedule tree missing")
	}
}

func TestRunDMPSameUserCode(t *testing.T) {
	// The paper's central claim: the same user code runs distributed with
	// zero changes. Run Listing 1 on 4 ranks and compare every owned
	// point against the serial result.
	serial := map[[2]int]float32{}
	{
		g, _ := NewGrid([]int{4, 4}, []float64{2, 2})
		u, _ := NewTimeFunction("u", g, 2, 1)
		_ = u.Data().SetSlice(0, []Slice{SliceRange(1, -1), SliceRange(1, -1)}, 1)
		upd, _ := Solve(Eq(u.Dt(), u.Laplace()), u.Forward())
		op, _ := NewOperator(g, Assign(u.Forward(), upd))
		if err := op.Apply(ApplyConfig{TimeM: 0, TimeN: 0, DT: 0.05}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				v, _ := u.Data().At(1, []int{i, j})
				serial[[2]int{i, j}] = v
			}
		}
	}
	for _, mode := range []string{"basic", "diag", "full"} {
		err := RunDMP(DMPConfig{Ranks: 4, Mode: mode}, func(env *Env) error {
			g, err := env.NewGrid([]int{4, 4}, []float64{2, 2}, []int{2, 2})
			if err != nil {
				return err
			}
			u, err := NewTimeFunction("u", g, 2, 1)
			if err != nil {
				return err
			}
			_ = u.Data().SetSlice(0, []Slice{SliceRange(1, -1), SliceRange(1, -1)}, 1)
			upd, err := Solve(Eq(u.Dt(), u.Laplace()), u.Forward())
			if err != nil {
				return err
			}
			op, err := NewOperator(g, Assign(u.Forward(), upd))
			if err != nil {
				return err
			}
			if err := op.Apply(ApplyConfig{TimeM: 0, TimeN: 0, DT: 0.05}); err != nil {
				return err
			}
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if v, ok := u.Data().At(1, []int{i, j}); ok {
						if v != serial[[2]int{i, j}] {
							t.Errorf("mode %s rank %d: (%d,%d) = %v, want %v",
								mode, env.Rank(), i, j, v, serial[[2]int{i, j}])
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunDMPCustomTopology(t *testing.T) {
	err := RunDMP(DMPConfig{Ranks: 4, Mode: "basic"}, func(env *Env) error {
		if _, err := env.NewGrid([]int{8, 8}, nil, []int{4, 1}); err != nil {
			return err
		}
		// Product mismatch must error.
		if _, err := env.NewGrid([]int{8, 8}, nil, []int{3, 1}); err == nil {
			t.Error("bad topology accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyRequiresDT(t *testing.T) {
	g, _ := NewGrid([]int{8, 8}, nil)
	u, _ := NewTimeFunction("u", g, 2, 1)
	upd, _ := Solve(Eq(u.Dt(), u.Laplace()), u.Forward())
	op, _ := NewOperator(g, Assign(u.Forward(), upd))
	if err := op.Apply(ApplyConfig{TimeM: 0, TimeN: 0}); err == nil {
		t.Error("missing DT should error")
	}
}

func TestRunDMPBadMode(t *testing.T) {
	if err := RunDMP(DMPConfig{Ranks: 2, Mode: "warp"}, func(*Env) error { return nil }); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestExpressionHelpers(t *testing.T) {
	g, _ := NewGrid([]int{8, 8}, nil)
	m, _ := NewFunction("m", g, 2)
	u, _ := NewTimeFunction("u", g, 2, 2)
	e := Sub(Mul(m.At(), u.Dt2()), u.Laplace())
	sol, err := Solve(Eq(e, Num(0)), u.Forward())
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("nil solution")
	}
	if u.Backward() == nil || m.Dx(0) == nil || m.Dx2(1) == nil || Neg(m.At()) == nil ||
		Add(m.At(), Num(1)) == nil || m.Shifted(1, 0) == nil {
		t.Error("expression constructors returned nil")
	}
	if m.Name() != "m" {
		t.Error("name accessor broken")
	}
}

func TestSparsePublicAPISeismicWorkflow(t *testing.T) {
	// A miniature full seismic workflow through the public API: acoustic
	// update + Ricker source injection + receiver interpolation.
	g, err := NewGrid([]int{24, 24}, []float64{23, 23})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := NewTimeFunction("u", g, 4, 2)
	m, _ := NewFunction("m", g, 4)
	_ = m.Data().SetSlice(0, []Slice{SliceAll(), SliceAll()}, 1) // v = 1
	pde := Sub(Mul(m.At(), u.Dt2()), u.Laplace())
	upd, err := Solve(Eq(pde, Num(0)), u.Forward())
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(g, Assign(u.Forward(), upd))
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewSparseFunction("src", g, [][]float64{{11.5, 11.5}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewSparseFunction("rec", g, [][]float64{{5.0, 5.0}, {18.0, 18.0}})
	if err != nil {
		t.Fatal(err)
	}
	nt := 60
	dt := 0.4
	wavelet := RickerWavelet(0.12, 12, dt, nt)
	var traces [][]float64
	err = op.Apply(ApplyConfig{TimeM: 0, TimeN: nt - 1, DT: dt, PostStep: func(tt int) {
		_ = src.Inject(&u.Function, tt+1, []float32{wavelet[tt] * float32(dt*dt)})
		traces = append(traces, rec.Interpolate(&u.Function, tt+1))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != nt {
		t.Fatalf("traces = %d", len(traces))
	}
	// The wave must reach both receivers.
	for r := 0; r < 2; r++ {
		maxAbs := 0.0
		for _, tr := range traces {
			if v := math.Abs(tr[r]); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs < 1e-12 {
			t.Errorf("receiver %d recorded nothing", r)
		}
	}
	if src.NPoints() != 1 || rec.NPoints() != 2 {
		t.Error("NPoints wrong")
	}
}
