package devigo_test

import (
	"fmt"

	"devigo"
)

// ExampleNewOperator builds the quickstart diffusion operator (paper
// Listing 1): solve du/dt = laplace(u) for u[t+1], compile, and apply one
// timestep serially.
func ExampleNewOperator() {
	g, _ := devigo.NewGrid([]int{4, 4}, []float64{2, 2})
	u, _ := devigo.NewTimeFunction("u", g, 2, 1)
	_ = u.Data().SetSlice(0, []devigo.Slice{devigo.SliceRange(1, -1), devigo.SliceRange(1, -1)}, 1)

	stencil, _ := devigo.Solve(devigo.Eq(u.Dt(), u.Laplace()), u.Forward())
	op, _ := devigo.NewOperator(g, devigo.Assign(u.Forward(), stencil))

	dx, dy := g.Spacing(0), g.Spacing(1)
	dt := 0.25 * dx * dy / 0.5
	if err := op.Apply(devigo.ApplyConfig{TimeM: 0, TimeN: 0, DT: dt}); err != nil {
		fmt.Println("apply failed:", err)
		return
	}
	v, _ := u.Data().At(1, []int{0, 1})
	fmt.Printf("u[0,1] after one step: %.2f\n", v)
	// Output:
	// u[0,1] after one step: 0.50
}

// ExampleRunDMP runs the identical user code over 4 in-process MPI ranks
// with diagonal halo exchanges: grids created through env.NewGrid are
// decomposed automatically and the result matches the serial run
// bit-exactly.
func ExampleRunDMP() {
	err := devigo.RunDMP(devigo.DMPConfig{Ranks: 4, Mode: "diag"}, func(env *devigo.Env) error {
		g, err := env.NewGrid([]int{4, 4}, []float64{2, 2}, nil)
		if err != nil {
			return err
		}
		u, err := devigo.NewTimeFunction("u", g, 2, 1)
		if err != nil {
			return err
		}
		if err := u.Data().SetSlice(0, []devigo.Slice{devigo.SliceRange(1, -1), devigo.SliceRange(1, -1)}, 1); err != nil {
			return err
		}
		stencil, err := devigo.Solve(devigo.Eq(u.Dt(), u.Laplace()), u.Forward())
		if err != nil {
			return err
		}
		op, err := devigo.NewOperator(g, devigo.Assign(u.Forward(), stencil))
		if err != nil {
			return err
		}
		dt := 0.25 * g.Spacing(0) * g.Spacing(1) / 0.5
		if err := op.Apply(devigo.ApplyConfig{TimeM: 0, TimeN: 0, DT: dt}); err != nil {
			return err
		}
		// Only the rank owning global point (0,1) prints, so the output
		// is deterministic — and matches the serial run bit-exactly.
		if v, owned := u.Data().At(1, []int{0, 1}); owned {
			fmt.Printf("u[0,1] on rank %d: %.2f\n", env.Rank(), v)
		}
		return nil
	})
	if err != nil {
		fmt.Println("run failed:", err)
	}
	// Output:
	// u[0,1] on rank 0: 0.50
}
