// devigo-run executes a real (small-scale) forward simulation of one of
// the paper's four wave propagators on the MPI runtime and reports the
// BENCH-style throughput plus a wavefield checksum — the
// functional-correctness companion of devigo-bench:
//
//	devigo-run -model acoustic -d 48 -so 8 -nt 50                 # serial
//	devigo-run -model elastic -d 32 -ranks 8 -mpi diag -nt 30     # 8-rank DMP
//	devigo-run -model acoustic -ranks 4 -transport tcp -nt 30     # 4 processes over TCP
//
// -transport selects the delivery substrate: "inproc" runs every rank
// as a goroutine of this process (the default), "tcp" spawns one OS
// process per rank on localhost, rendezvousing through a generated
// hostfile (DEVIGO_RANKS / DEVIGO_RANK / DEVIGO_HOSTFILE — set those
// yourself to place ranks on real machines instead).
package main

import (
	"flag"
	"fmt"
	"os"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/propagators"
)

func main() {
	model := flag.String("model", "acoustic", "acoustic|elastic|tti|viscoelastic")
	d := flag.Int("d", 48, "grid points per dimension")
	dims := flag.Int("dims", 3, "space dimensions (2 or 3)")
	so := flag.Int("so", 8, "space discretisation order")
	nt := flag.Int("nt", 50, "timesteps")
	nbl := flag.Int("nbl", 8, "absorbing layer width")
	ranks := flag.Int("ranks", 1, "MPI ranks")
	transport := flag.String("transport", "inproc", "rank substrate: inproc (goroutines) | tcp (one process per rank)")
	mpiMode := flag.String("mpi", "basic", "halo mode: basic|diag|full")
	tile := flag.Int("tile", 0, "halo-exchange interval k (deep halos exchanged every k steps; 0 = DEVIGO_TIME_TILE or 1)")
	nrec := flag.Int("receivers", 8, "receiver line length")
	emitC := flag.Bool("emit-c", false, "print the generated C-like code and exit")
	flag.Parse()

	shape := make([]int, *dims)
	for i := range shape {
		shape[i] = *d
	}
	baseCfg := propagators.Config{Shape: shape, SpaceOrder: *so, NBL: *nbl, Velocity: 1.5}

	if *emitC {
		m, err := propagators.Build(*model, baseCfg)
		fail(err)
		op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: m.Name})
		fail(err)
		fmt.Println(op.CCode)
		return
	}

	if *ranks == 1 {
		m, err := propagators.Build(*model, baseCfg)
		fail(err)
		res, err := propagators.Run(m, nil, propagators.RunConfig{NT: *nt, NReceivers: *nrec})
		fail(err)
		report("serial", res)
		fail(obs.FlushEnv())
		return
	}

	mode, err := halo.ParseMode(*mpiMode)
	fail(err)

	rankBody := func(c *mpi.Comm) {
		g, err := grid.New(shape, nil)
		if err != nil {
			panic(err)
		}
		dec, err := grid.NewDecomposition(g, c.Size(), nil)
		if err != nil {
			panic(err)
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			panic(err)
		}
		cfg := baseCfg
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := propagators.Build(*model, cfg)
		if err != nil {
			panic(err)
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := propagators.Run(m, ctx, propagators.RunConfig{NT: *nt, NReceivers: *nrec, TimeTile: *tile})
		if err != nil {
			panic(err)
		}
		// Traffic accounting works the same over any transport: snapshot
		// the local counters, then sum across ranks with the runtime's
		// own allreduce (the reduction's messages post-date the snapshot,
		// so they are not self-counted).
		st := c.Transport().Stats()
		msgs := c.AllreduceScalar(float64(st.MsgsSent), mpi.OpSum)
		bytes := c.AllreduceScalar(float64(st.BytesSent), mpi.OpSum)
		if c.Rank() == 0 {
			label := fmt.Sprintf("%d ranks (%s), %s mode, topology %v", c.Size(), *transport, mode, dec.Topology)
			if k := res.Op.TimeTile(); k > 1 {
				label += fmt.Sprintf(", exchange interval %d", k)
			}
			report(label, res)
			fmt.Printf("  MPI traffic: %d messages, %.1f MB total\n", int64(msgs), bytes/1e6)
		}
	}

	switch *transport {
	case "inproc":
		w := mpi.NewWorld(*ranks)
		fail(w.Run(rankBody))
		// One flush for the whole world: the per-rank recorders are
		// global, so the trace holds every rank's spans (one Perfetto
		// process per rank).
		fail(obs.FlushEnv())
	case "tcp":
		if os.Getenv(mpi.RankEnvVar) == "" {
			// Launcher mode: spawn one copy of this exact invocation per
			// rank; the children land in the branch below.
			fail(mpi.LaunchTCPLocal(*ranks, os.Args))
			return
		}
		t, err := mpi.TCPFromEnv()
		fail(err)
		runErr := mpi.RunRank(t, rankBody)
		t.Close()
		fail(runErr)
		// Rank processes share the environment, so each writes its own
		// trace/metrics files (suffixed by rank) instead of clobbering
		// one path.
		suffixObsPaths(t.Rank())
		fail(obs.FlushEnv())
	default:
		fail(fmt.Errorf("unknown transport %q (valid: inproc, tcp)", *transport))
	}
}

// suffixObsPaths appends ".rank<r>" to the requested observability
// output paths so concurrent rank processes never write the same file.
func suffixObsPaths(rank int) {
	for _, v := range []string{obs.TraceEnvVar, obs.MetricsEnvVar} {
		if path := os.Getenv(v); path != "" {
			os.Setenv(v, fmt.Sprintf("%s.rank%d", path, rank))
		}
	}
}

func report(label string, res *propagators.RunResult) {
	fmt.Printf("%s\n", label)
	// The norm prints with full float64 round-trip precision so two runs
	// (e.g. inproc vs tcp in CI) can be compared for bit-equality.
	fmt.Printf("  steps=%d dt=%.5f  norm=%.17e\n", res.NT, res.DT, res.Norm)
	fmt.Printf("  global perf: %.1f Mpts/s, flops/point=%d, compute %.2fs, halo %.2fs\n",
		res.Perf.GPtss()*1e3, res.Perf.FlopsPerPoint,
		res.Perf.ComputeSeconds, res.Perf.HaloSeconds)
}

// fail exits with the error after flushing any requested trace/metrics
// output — an aborted run should still leave its observability files
// behind (truncated evidence beats no evidence).
func fail(err error) {
	if err != nil {
		if ferr := obs.FlushEnv(); ferr != nil {
			fmt.Fprintln(os.Stderr, "devigo-run: flush observability:", ferr)
		}
		fmt.Fprintln(os.Stderr, "devigo-run:", err)
		os.Exit(1)
	}
}
