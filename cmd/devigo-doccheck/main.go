// devigo-doccheck is the documentation CI gate. It has two checks, both
// reporting violations to stderr and failing through the exit status:
//
//	devigo-doccheck -links .
//
// walks every Markdown file under the root (skipping .git and vendored
// trees) and verifies that relative links resolve to existing files or
// directories — external http(s)/mailto links and pure #anchors are
// skipped.
//
//	devigo-doccheck -pkgs internal/core,internal/perfmodel,...
//
// parses each listed package directory (non-test files) and requires a
// doc comment on every exported identifier: functions, methods with
// exported names, and type/const/var specs (a doc comment on the
// enclosing grouped declaration covers its specs, the standard Go
// convention for const blocks).
//
// Both checks may be combined in one invocation; CI runs them over the
// repository and the packages this project maintains documentation
// guarantees for.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	links := flag.String("links", "", "root directory whose Markdown files get link-checked")
	pkgs := flag.String("pkgs", "", "comma-separated package directories whose exported identifiers need doc comments")
	flag.Parse()
	if *links == "" && *pkgs == "" {
		fmt.Fprintln(os.Stderr, "devigo-doccheck: nothing to do (want -links and/or -pkgs)")
		os.Exit(2)
	}
	bad := 0
	if *links != "" {
		n, err := checkLinks(*links)
		if err != nil {
			fmt.Fprintln(os.Stderr, "devigo-doccheck:", err)
			os.Exit(2)
		}
		bad += n
	}
	if *pkgs != "" {
		for _, dir := range strings.Split(*pkgs, ",") {
			dir = strings.TrimSpace(dir)
			if dir == "" {
				continue
			}
			n, err := checkDocs(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "devigo-doccheck:", err)
				os.Exit(2)
			}
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "devigo-doccheck: %d violation(s)\n", bad)
		os.Exit(1)
	}
}

// mdLink matches inline Markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// fencedBlock matches ``` fenced code blocks, which may contain
// illustrative link syntax that is not an actual hyperlink.
var fencedBlock = regexp.MustCompile("(?s)```.*?```")

// checkLinks verifies every relative Markdown link under root resolves.
func checkLinks(root string) (int, error) {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		text := fencedBlock.ReplaceAllString(string(data), "")
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexAny(target, "#?"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			// Root-absolute links (GitHub's /README.md style) resolve
			// from the scan root; relative links from the file's dir.
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if strings.HasPrefix(target, "/") {
				resolved = filepath.Join(root, filepath.FromSlash(target))
			}
			// Links that climb out of the scanned tree (GitHub-relative
			// URLs like the CI badge's ../../actions/...) are not
			// intra-repo links; skip them.
			if rel, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rel, "..") {
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q\n", path, m[1])
				bad++
			}
		}
		return nil
	})
	return bad, err
}

// receiverExported reports whether a method receiver's base type name is
// exported (unwrapping pointers and generic instantiations).
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}

// checkDocs requires a doc comment on every exported identifier of the
// package in dir (test files excluded).
func checkDocs(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", dir, err)
	}
	bad := 0
	complain := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, what, name)
		bad++
	}
	for _, pkg := range pkgMap {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					what := "function"
					if d.Recv != nil {
						// Methods are part of the documented surface only
						// when their receiver type is itself exported.
						if !receiverExported(d.Recv) {
							continue
						}
						what = "method"
					}
					complain(d.Pos(), what, d.Name.Name)
				case *ast.GenDecl:
					if d.Doc != nil {
						// A documented grouped declaration covers its
						// specs (the const-block convention).
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								complain(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									complain(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad, nil
}
