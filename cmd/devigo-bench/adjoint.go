package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"devigo/internal/checkpoint"
	"devigo/internal/core"
	"devigo/internal/obs"
	"devigo/internal/propagators"
)

// AdjointEngineMetrics records one engine's measured gradient computation.
type AdjointEngineMetrics struct {
	// Seconds is the wall time of the full checkpointed gradient
	// (forward + reverse sweep + recomputation).
	Seconds float64 `json:"seconds"`
	// Forward/Adjoint split the operators' section timings.
	Forward EngineMetrics `json:"forward"`
	Adjoint EngineMetrics `json:"adjoint"`
	// RelError is the dot-product identity gap of this run (float32
	// wavefield regime — see dot_test for the exact certification).
	RelError float64 `json:"rel_error"`
	// GradNorm is the L2 norm of the produced gradient.
	GradNorm float64 `json:"grad_norm"`
}

// AdjointDotTest is the exact-arithmetic adjointness certification block:
// rel_error must stay <= 1e-8 (it is ~0 when the adjoint is the exact
// discrete transpose); CI gates on it.
type AdjointDotTest struct {
	NT         int     `json:"nt"`
	DotForward float64 `json:"dot_forward"`
	DotAdjoint float64 `json:"dot_adjoint"`
	RelError   float64 `json:"rel_error"`
}

// AdjointReport is the BENCH_adjoint.json schema.
type AdjointReport struct {
	Scenario           string                          `json:"scenario"`
	Shape              []int                           `json:"shape"`
	SpaceOrder         int                             `json:"space_order"`
	NT                 int                             `json:"nt"`
	CheckpointInterval int                             `json:"checkpoint_interval"`
	Snapshots          int                             `json:"snapshots"`
	SnapshotBytes      int64                           `json:"snapshot_bytes"`
	RecomputedSteps    int                             `json:"recomputed_steps"`
	DotTest            AdjointDotTest                  `json:"dot_test"`
	Engines            map[string]AdjointEngineMetrics `json:"engines"`
	// Obs is the metrics-registry snapshot covering both engines' gradient
	// runs (checkpoint save/restore counts, step splits, traffic).
	Obs obs.Metrics `json:"obs"`
}

// runAdjoint measures the checkpointed acoustic gradient with both
// engines, certifies the dot-product identity with the exact-arithmetic
// configuration, and writes BENCH_adjoint.json.
func runAdjoint(size, nt, ckpt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	cert, err := propagators.RunDotTest(nil, "")
	if err != nil {
		return fmt.Errorf("dot-product certification: %w", err)
	}
	fmt.Printf("Adjoint certification (exact arithmetic): <Fq,Fq>=%.9g <q,F'Fq>=%.9g rel=%.3g\n",
		cert.DotForward, cert.DotAdjoint, cert.RelErr)
	if cert.RelErr > 1e-8 {
		return fmt.Errorf("adjoint dot-product identity violated: rel error %g > 1e-8", cert.RelErr)
	}

	interval := ckpt
	if interval <= 0 {
		interval = checkpoint.DefaultInterval(nt)
	}
	const so = 8
	report := AdjointReport{
		Scenario:           "adjoint",
		Shape:              []int{size, size},
		SpaceOrder:         so,
		NT:                 nt,
		CheckpointInterval: interval,
		DotTest: AdjointDotTest{
			NT:         cert.NT,
			DotForward: cert.DotForward,
			DotAdjoint: cert.DotAdjoint,
			RelError:   cert.RelErr,
		},
		Engines: map[string]AdjointEngineMetrics{},
	}
	obs.EnableMetrics()
	obs.Reset()
	fmt.Printf("Measured gradient, %dx%d grid, so-%02d, %d timesteps (this machine)\n", size, size, so, nt)
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "engine", "seconds", "fwd GPts/s", "adj GPts/s", "rel err")
	for _, engine := range []string{core.EngineInterpreter, core.EngineBytecode} {
		m, err := propagators.Acoustic(propagators.Config{
			Shape: []int{size, size}, SpaceOrder: so, NBL: 8, Velocity: 1.5,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := propagators.RunGradient(m, nil, propagators.GradientConfig{
			NT: nt, NReceivers: 8, CheckpointInterval: interval, Engine: engine,
		})
		if err != nil {
			return fmt.Errorf("gradient (%s): %w", engine, err)
		}
		elapsed := time.Since(start).Seconds()
		report.Engines[engine] = AdjointEngineMetrics{
			Seconds:  elapsed,
			Forward:  engineMetrics(res.ForwardPerf, res.ForwardConfig),
			Adjoint:  engineMetrics(res.AdjointPerf, res.AdjointConfig),
			RelError: res.RelErr,
			GradNorm: res.GradNorm,
		}
		fwd := res.ForwardConfig
		fmt.Fprintf(os.Stderr, "devigo-bench: adjoint config: engine=%s mode=%s workers=%d tile_rows=%d autotune=%s\n",
			fwd.Engine, fwd.Mode, fwd.Workers, fwd.TileRows, fwd.Autotune)
		report.Snapshots = res.Checkpoint.Snapshots
		report.SnapshotBytes = res.Checkpoint.SnapshotBytes
		report.RecomputedSteps = res.Checkpoint.RecomputedSteps
		fmt.Printf("%-14s %10.3f %12.4f %12.4f %12.2e\n",
			engine, elapsed, res.ForwardPerf.GPtss(), res.AdjointPerf.GPtss(), res.RelErr)
	}
	report.Obs = obs.Snapshot()
	path := filepath.Join(outDir, "BENCH_adjoint.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func engineMetrics(p core.Perf, cfg core.EffectiveConfig) EngineMetrics {
	return EngineMetrics{
		GPtss:          p.GPtss(),
		ComputeSeconds: p.ComputeSeconds,
		HaloSeconds:    p.HaloSeconds,
		PointsUpdated:  p.PointsUpdated,
		FlopsPerPoint:  p.FlopsPerPoint,
		Config:         cfg,
	}
}
