package main

import (
	"fmt"
	"html"
	"math"
	"strings"

	"devigo/internal/perfmodel"
)

// The observatory's static HTML report. Everything is emitted inline —
// no external assets, no scripts beyond native SVG tooltips — so the
// file works as a CI artifact opened straight from a download. Chart
// styling follows the repository's data-viz conventions: a validated
// 2-slot categorical palette (blue/orange, with distinct steps for dark
// mode), thin marks with rounded data-ends, hairline solid gridlines,
// text in ink tokens (never series colors), a legend for multi-series
// charts, and a table view under every chart so no value is gated on
// color or hover.

// observatoryHTML renders the full report.
func observatoryHTML(r *ObservatoryReport, hist *History) string {
	var b strings.Builder
	b.WriteString(htmlHead)
	fmt.Fprintf(&b, `<header><h1>devigo perf observatory</h1>
<p class="sub">generated %s · host %s · history depth %d</p></header>
`, html.EscapeString(r.GeneratedAt), html.EscapeString(r.Host.Key()), r.HistoryEntries)

	writeKPIRow(&b, r)
	writeRoofline(&b, r)
	writeCommChart(&b, r)
	writeAutotune(&b, r)
	writeBaselines(&b, r)

	b.WriteString("</main></body></html>\n")
	return b.String()
}

const htmlHead = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>devigo perf observatory</title>
<style>
.viz-root, body {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --status-good: #006300; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) body {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --status-good: #0ca30c; --status-critical: #d03b3b;
  }
}
body { margin: 0; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
main, header { max-width: 960px; margin: 0 auto; padding: 0 20px; }
header { padding-top: 28px; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 0 0 2px; }
.sub { color: var(--ink-2); margin: 0; font-size: 13px; }
section.card { background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 10px; padding: 16px 18px 12px; margin: 18px 0; }
.kpis { display: flex; gap: 14px; flex-wrap: wrap; margin-top: 18px; }
.kpi { flex: 1 1 150px; background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 10px; padding: 12px 16px; }
.kpi .label { color: var(--ink-2); font-size: 12px; }
.kpi .value { font-size: 26px; font-weight: 600; }
.kpi .note { color: var(--ink-muted); font-size: 12px; }
.good { color: var(--status-good); } .bad { color: var(--status-critical); }
svg { display: block; max-width: 100%; height: auto; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--ink-muted); }
svg text.val { fill: var(--ink-2); }
.legend { display: flex; gap: 16px; color: var(--ink-2); font-size: 12px;
  margin: 4px 0 8px; align-items: center; }
.legend .key { display: inline-block; width: 10px; height: 10px; border-radius: 3px;
  margin-right: 5px; vertical-align: -1px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0 4px; font-size: 12.5px; }
th { text-align: left; color: var(--ink-2); font-weight: 600; }
th, td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
details > summary { cursor: pointer; color: var(--ink-2); font-size: 12.5px; margin-top: 6px; }
</style></head><body><main>
`

// writeKPIRow emits the headline stat tiles.
func writeKPIRow(b *strings.Builder, r *ObservatoryReport) {
	best := ObsRun{}
	regret, tuned := 0.0, false
	for _, run := range r.Runs {
		if run.Gptss > best.Gptss {
			best = run
		}
		if run.Tuned {
			tuned = true
			if run.Regret > regret {
				regret = run.Regret
			}
		}
	}
	fmt.Fprintf(b, `<div class="kpis">
<div class="kpi"><div class="label">Sweep runs</div><div class="value">%d</div><div class="note">scenario × ranks × mode × k</div></div>
<div class="kpi"><div class="label">Best throughput</div><div class="value">%.3f</div><div class="note">GPts/s · %s</div></div>
`, len(r.Runs), best.Gptss, html.EscapeString(best.Name))
	if r.Regressions > 0 {
		fmt.Fprintf(b, `<div class="kpi"><div class="label">Regressions</div><div class="value bad">▲ %d</div><div class="note">&gt;15%% below same-host baseline</div></div>
`, r.Regressions)
	} else {
		fmt.Fprintf(b, `<div class="kpi"><div class="label">Regressions</div><div class="value good">✓ 0</div><div class="note">vs same-host baseline median</div></div>
`)
	}
	if tuned {
		fmt.Fprintf(b, `<div class="kpi"><div class="label">Autotune regret</div><div class="value">%.1f%%</div><div class="note">worst chosen-vs-best trial gap</div></div>
`, regret*100)
	}
	b.WriteString("</div>\n")
}

// niceTicks picks ~n clean tick values covering [0, max].
func niceTicks(max float64, n int) []float64 {
	if max <= 0 {
		return []float64{0, 1}
	}
	raw := max / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag >= 5:
		step = 10 * mag
	case raw/mag >= 2:
		step = 5 * mag
	case raw/mag >= 1:
		step = 2 * mag
	default:
		step = mag
	}
	var ticks []float64
	for v := 0.0; v <= max+step/2; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// writeRoofline emits the roofline scatter: serial runs placed by
// operational intensity against achieved GFLOP/s, with the autotuner
// host model's DRAM-bandwidth bound as a muted reference diagonal.
// Single series, so the points are direct-labeled and need no legend.
func writeRoofline(b *strings.Builder, r *ObservatoryReport) {
	var pts []ObsRun
	maxX, maxY := 0.0, 0.0
	for _, run := range r.Runs {
		if run.Ranks == 1 && run.GFlops > 0 {
			pts = append(pts, run)
			maxX = math.Max(maxX, run.AI)
			maxY = math.Max(maxY, run.GFlops)
		}
	}
	if len(pts) == 0 {
		return
	}
	bw := perfmodel.DefaultHost().MemBandwidth / 1e9 // GB/s
	maxY = math.Max(maxY, math.Min(maxX*bw, maxY*2))
	const W, H = 640, 300
	const L, R, T, B = 54, 16, 14, 40
	pw, ph := float64(W-L-R), float64(H-T-B)
	xticks, yticks := niceTicks(maxX*1.15, 5), niceTicks(maxY*1.15, 5)
	xmax, ymax := xticks[len(xticks)-1], yticks[len(yticks)-1]
	X := func(v float64) float64 { return L + v/xmax*pw }
	Y := func(v float64) float64 { return T + ph - v/ymax*ph }

	b.WriteString(`<section class="card"><h2>Roofline — measured serial kernels</h2>
<p class="sub">achieved GFLOP/s against operational intensity; diagonal = autotuner host-model DRAM bound</p>
`)
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" role="img" aria-label="Roofline scatter of measured serial kernel performance">`, W, H)
	for _, v := range yticks {
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`, L, Y(v), W-R, Y(v))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, L-6, Y(v)+4, trimNum(v))
	}
	for _, v := range xticks {
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`, X(v), H-B+16, trimNum(v))
	}
	// Axis baselines, then the bandwidth bound clipped to the plot.
	fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="var(--axis)" stroke-width="1"/>`, L, Y(0), W-R, Y(0))
	xEnd := math.Min(xmax, ymax/bw)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--axis)" stroke-width="1" stroke-linecap="round"/>`,
		X(0), Y(0), X(xEnd), Y(xEnd*bw))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="end">DRAM bound %.0f GB/s</text>`,
		X(xEnd)-4, Y(xEnd*bw)+14, bw)
	for _, p := range pts {
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="6" fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"><title>%s: AI %.2f F/B, %.2f GFLOP/s (%.3f GPts/s)</title></circle>`,
			X(p.AI), Y(p.GFlops), html.EscapeString(p.Name), p.AI, p.GFlops, p.Gptss)
		fmt.Fprintf(b, `<text class="val" x="%.1f" y="%.1f">%s</text>`,
			X(p.AI)+9, Y(p.GFlops)+4, html.EscapeString(p.Name))
	}
	fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle">operational intensity (flop/byte)</text>`, L+pw/2, H-6)
	fmt.Fprintf(b, `<text transform="translate(12,%.1f) rotate(-90)" text-anchor="middle">GFLOP/s</text>`, T+ph/2)
	b.WriteString("</svg>\n")

	b.WriteString(`<details><summary>Table view</summary><table>
<tr><th>run</th><th class="num">AI (F/B)</th><th class="num">GFLOP/s</th><th class="num">GPts/s</th><th class="num">flops/point</th></tr>`)
	for _, p := range pts {
		fmt.Fprintf(b, `<tr><td>%s</td><td class="num">%.2f</td><td class="num">%.2f</td><td class="num">%.4f</td><td class="num">%d</td></tr>`,
			html.EscapeString(p.Name), p.AI, p.GFlops, p.Gptss, p.FlopsPerPoint)
	}
	b.WriteString("</table></details></section>\n")
}

// writeCommChart emits the measured-vs-model communication chart:
// grouped bars (two series, legend present) of per-rank per-step halo
// bytes for every 4-rank sweep point. On the periodic sweep topology the
// pairs must coincide — visible daylight between a group's bars is a
// model bug.
func writeCommChart(b *strings.Builder, r *ObservatoryReport) {
	var runs []ObsRun
	maxV := 0.0
	for _, run := range r.Runs {
		if run.Ranks > 1 {
			runs = append(runs, run)
			maxV = math.Max(maxV, math.Max(run.MeasuredBytesPerStep, run.ModelBytesPerStep))
		}
	}
	if len(runs) == 0 {
		return
	}
	const barW, gap, groupGap = 12, 2, 16
	groupW := 2*barW + gap
	const L, R, T, B = 54, 16, 14, 46
	W := L + R + len(runs)*(groupW+groupGap)
	const H = 300
	ph := float64(H - T - B)
	yticks := niceTicks(maxV/1024*1.1, 5) // KB axis
	ymax := yticks[len(yticks)-1] * 1024
	Y := func(v float64) float64 { return T + ph - v/ymax*ph }

	b.WriteString(`<section class="card"><h2>Halo traffic — measured vs model</h2>
<p class="sub">per-rank per-step exchanged bytes, 4-rank periodic sweep; the obs counters must match the closed-form prediction</p>
<div class="legend"><span><span class="key" style="background:var(--series-1)"></span>measured (obs counters)</span>
<span><span class="key" style="background:var(--series-2)"></span>model (CommStats)</span></div>
`)
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" role="img" aria-label="Measured versus modelled halo bytes per step">`, W, H)
	for _, v := range yticks {
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`, L, Y(v*1024), W-R, Y(v*1024))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, L-6, Y(v*1024)+4, trimNum(v))
	}
	bar := func(x, v float64, color, tip string) {
		y := Y(v)
		h := T + ph - y
		if h < 4 {
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%d" height="%.1f" fill="%s"><title>%s</title></rect>`,
				x, y, barW, h, color, tip)
			return
		}
		fmt.Fprintf(b, `<path d="M%.1f %.1f V%.1f Q%.1f %.1f %.1f %.1f H%.1f Q%.1f %.1f %.1f %.1f V%.1f Z" fill="%s"><title>%s</title></path>`,
			x, T+ph, y+4, x, y, x+4, y, x+barW-4, x+float64(barW), y, x+float64(barW), y+4, T+ph, color, tip)
	}
	for i, run := range runs {
		x := float64(L + i*(groupW+groupGap) + groupGap/2)
		bar(x, run.MeasuredBytesPerStep, "var(--series-1)",
			fmt.Sprintf("%s measured: %.0f B/step", html.EscapeString(run.Name), run.MeasuredBytesPerStep))
		bar(x+barW+gap, run.ModelBytesPerStep, "var(--series-2)",
			fmt.Sprintf("%s model: %.0f B/step", html.EscapeString(run.Name), run.ModelBytesPerStep))
		lab := fmt.Sprintf("%s k%d", run.Mode, run.K)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`, x+float64(groupW)/2, H-B+14, html.EscapeString(lab))
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`, x+float64(groupW)/2, H-B+27, html.EscapeString(run.Scenario))
	}
	fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="var(--axis)" stroke-width="1"/>`, L, Y(0), W-R, Y(0))
	fmt.Fprintf(b, `<text transform="translate(12,%.1f) rotate(-90)" text-anchor="middle">KB per rank per step</text>`, T+ph/2)
	b.WriteString("</svg>\n")

	b.WriteString(`<details><summary>Table view</summary><table>
<tr><th>run</th><th class="num">measured B/step</th><th class="num">model B/step</th><th class="num">measured msgs/step</th><th class="num">model msgs/step</th><th class="num">recv wait (s)</th></tr>`)
	for _, run := range runs {
		fmt.Fprintf(b, `<tr><td>%s</td><td class="num">%.0f</td><td class="num">%.0f</td><td class="num">%.2f</td><td class="num">%.2f</td><td class="num">%.4f</td></tr>`,
			html.EscapeString(run.Name), run.MeasuredBytesPerStep, run.ModelBytesPerStep,
			run.MeasuredMsgsPerStep, run.ModelMsgsPerStep, run.RecvWaitSec)
	}
	b.WriteString("</table></details></section>\n")
}

// writeAutotune emits the tuner section: per-tuned-run regret and the
// full decision log (a table — the values are the story, not a shape).
func writeAutotune(b *strings.Builder, r *ObservatoryReport) {
	var tuned []ObsRun
	for _, run := range r.Runs {
		if run.Tuned {
			tuned = append(tuned, run)
		}
	}
	if len(tuned) == 0 {
		return
	}
	b.WriteString(`<section class="card"><h2>Autotuner decisions</h2>
<p class="sub">search-policy trial log per tuned run; regret is the chosen configuration's gap over the best measured trial</p>
<table><tr><th>run</th><th>policy</th><th>configuration</th><th class="num">predicted ms/step</th><th class="num">measured ms/step</th><th>chosen</th></tr>`)
	for _, run := range tuned {
		for _, d := range run.Decisions {
			chosen := ""
			if d.Chosen {
				chosen = "✓"
			}
			measured := "—"
			if d.MeasuredSec > 0 {
				measured = fmt.Sprintf("%.3f", d.MeasuredSec*1e3)
			}
			fmt.Fprintf(b, `<tr><td>%s</td><td>%s</td><td>%s</td><td class="num">%.3f</td><td class="num">%s</td><td>%s</td></tr>`,
				html.EscapeString(run.Name), html.EscapeString(d.Policy),
				html.EscapeString(d.Config), d.PredictedSec*1e3, measured, chosen)
		}
		fmt.Fprintf(b, `<tr><td colspan="4"></td><td class="num"><strong>regret %.1f%%</strong></td><td></td></tr>`,
			run.Regret*100)
	}
	b.WriteString("</table></section>\n")
}

// writeBaselines emits the regression table: current throughput against
// the same-host baseline median. The table is the canonical view; status
// is carried by icon + label, never color alone.
func writeBaselines(b *strings.Builder, r *ObservatoryReport) {
	b.WriteString(`<section class="card"><h2>Same-host baselines</h2>
<p class="sub">current GPts/s vs the median of the last 5 same-fingerprint history entries; &gt;15% below fails CI</p>
<table><tr><th>run</th><th class="num">GPts/s</th><th class="num">baseline</th><th class="num">ratio</th><th class="num">samples</th><th>status</th></tr>`)
	for _, bl := range r.Baselines {
		base, ratio := "—", "—"
		status := `<span class="sub">no baseline yet</span>`
		if bl.Samples > 0 {
			base = fmt.Sprintf("%.4f", bl.Baseline)
			ratio = fmt.Sprintf("%.2f", bl.Ratio)
			if bl.Regressed {
				status = `<span class="bad">▲ regressed</span>`
			} else {
				status = `<span class="good">✓ ok</span>`
			}
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td class="num">%.4f</td><td class="num">%s</td><td class="num">%s</td><td class="num">%d</td><td>%s</td></tr>`,
			html.EscapeString(bl.Run), bl.Gptss, base, ratio, bl.Samples, status)
	}
	b.WriteString("</table></section>\n")
}
