// devigo-bench regenerates the paper's evaluation: every strong-scaling
// table and figure (Tables III-XXXIV, Figures 8-11 and 13-20), the weak
// scaling runtime figures (12, 21-24), the single-node roofline (Fig. 7)
// and the automated mode-selection ablation.
//
// Examples:
//
//	devigo-bench -exp strong -model acoustic -arch cpu -so 8     # Fig. 8a / Table IV
//	devigo-bench -exp strong -model tti -arch gpu -so 16         # Fig. 19d / Table XXX
//	devigo-bench -exp weak -so 8                                 # Fig. 12
//	devigo-bench -exp roofline                                   # Fig. 7
//	devigo-bench -exp selectmode                                 # mode-tuner ablation
//	devigo-bench -exp all                                        # everything
//
// In addition to the paper's modeled numbers, -exp exec measures the
// *real* executor on this machine, comparing the interpreter against the
// bytecode register VM per scenario, and writes machine-readable
// BENCH_<scenario>.json files (GPts/s, compute/halo split, engine) for
// tracking the performance trajectory across PRs:
//
//	devigo-bench -exp exec -model all -size 256 -nt 30 -out .
//
// -exp adjoint measures the checkpointed adjoint/gradient subsystem: it
// certifies the discrete dot-product identity <Fq,d> = <q,F'd> (exiting
// non-zero if the identity is violated), times a full gradient with both
// engines and writes BENCH_adjoint.json:
//
//	devigo-bench -exp adjoint -size 128 -nt 60 -ckpt 8 -out .
//
// -exp timetile evaluates communication-avoiding time tiling: on a
// 4-rank world it sweeps the halo-exchange interval k over {1,2,4,8} for
// the acoustic (single-cluster) and elastic (two-cluster) schedules,
// certifies every interval bit-exact against k=1 (exiting non-zero on
// divergence), records real per-step MPI message/byte counters alongside
// the modelled amortized figures, and reports what the autotune policies
// choose with the k-axis open — writing BENCH_timetile.json:
//
//	devigo-bench -exp timetile -size 48 -nt 64 -out .
//
// -exp autotune evaluates the autotuning subsystem: it exhaustively
// sweeps the tuner's candidate space (halo mode x worker count x tile
// size) per scenario, lets the "model" and "search" policies choose, and
// writes BENCH_autotune.json recording chosen-vs-exhaustive-best (CI
// gates the search policy within 15% of the best) plus a bit-exactness
// check across every configuration:
//
//	devigo-bench -exp autotune -model acoustic -size 128 -nt 16 -out .
//
// -exp transport benchmarks the delivery substrates against each other:
// the same 4-rank acoustic run over the in-process transport (goroutine
// ranks) and over loopback TCP (one OS process per rank, spawned via
// the launcher), certifying the norms bit-identical and writing
// BENCH_transport.json with both timings and traffic counters:
//
//	devigo-bench -exp transport -size 64 -nt 30 -out .
//
// -exp fwiservice benchmarks the shot-parallel FWI service: a cold
// sequential baseline (every shot compiles and autotunes its three
// operators privately) against the cached service at 1, 2 and 4 workers,
// certifying every stacked gradient bit-identical to the baseline and the
// compile count equal to the unique-schedule count, and writing
// BENCH_fwiservice.json (shots/sec, amortized speedup, cache hit rates):
//
//	devigo-bench -exp fwiservice -size 36 -nt 8 -shots 8 -out .
//
// -exp hybrid certifies the persistent MPI+X worker runtime: raw pool
// dispatches and the full engine path are measured for steady-state heap
// allocations (the dispatch protocol must allocate exactly zero), the
// persistent pool races the legacy fork-join dispatch, a worker scaling
// sweep over all three engines records throughput plus bit-exactness
// against the 1-worker baseline, the joint autotuner reports the team
// size it picks with the workers axis open, and a 4-rank full-overlap
// time-tiled run snapshots the pool's sync/idle/steal counters — writing
// BENCH_hybrid.json:
//
//	devigo-bench -exp hybrid -size 96 -nt 24 -out .
//
// -exp observatory runs the continuous perf observatory: a compact
// measured sweep (scenario x ranks x halo mode x exchange interval),
// appended to a stored run history with regression detection against the
// median of recent same-host runs, plus a static HTML report (roofline
// scatter, measured-vs-model communication, autotuner regret):
//
//	devigo-bench -exp observatory -out . -history BENCH_history.json
//
// With -diff, the observatory compares two stored history entries
// instead of sweeping: each side names an entry by its timestamp or by
// integer index (negative counts from the newest), and the per-run
// throughput delta table is printed:
//
//	devigo-bench -exp observatory -history BENCH_history.json -diff -2,-1
//
// -check validates previously-emitted BENCH_*.json files against the
// repository's perf/correctness gates (the CI gates, in Go instead of
// jq) and exits non-zero on any violation:
//
//	devigo-bench -check -dir /tmp/bench -only exec,adjoint
//
// Every experiment reports failures through the process exit status so CI
// gates can consume the tool directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"devigo/internal/halo"
	"devigo/internal/obs"
	"devigo/internal/perfmodel"
	"devigo/internal/perfreport"
)

func main() {
	exp := flag.String("exp", "strong", "experiment: strong|weak|roofline|selectmode|exec|adjoint|autotune|timetile|transport|fwiservice|hybrid|observatory|all")
	model := flag.String("model", "acoustic", "kernel: acoustic|elastic|tti|viscoelastic|all")
	arch := flag.String("arch", "cpu", "platform: cpu|gpu|all")
	soFlag := flag.String("so", "8", "space orders, comma separated (4,8,12,16)")
	size := flag.Int("size", 256, "exec/adjoint: square grid extent per side")
	nt := flag.Int("nt", 30, "exec/adjoint: timesteps to measure")
	ckpt := flag.Int("ckpt", 0, "adjoint: checkpoint interval (0 = sqrt(nt))")
	shots := flag.Int("shots", 8, "fwiservice: number of shots in the survey")
	out := flag.String("out", ".", "exec/adjoint/observatory: directory for BENCH_*.json")
	check := flag.Bool("check", false, "validate BENCH_*.json gates in -dir instead of running an experiment")
	dir := flag.String("dir", ".", "check: directory holding the BENCH_*.json files")
	only := flag.String("only", "", "check: comma-separated gate groups (exec,adjoint,autotune,autotune-exact,autotune-timing,timetile,transport,fwiservice,fwiservice-timing,hybrid,hybrid-timing)")
	history := flag.String("history", "", "observatory: run-history JSON path (default <out>/BENCH_history.json)")
	regressWarn := flag.Bool("regress-warn", false, "observatory: report regressions as warnings instead of failing")
	diff := flag.String("diff", "", "observatory: compare two history entries (\"a,b\": timestamps or indices, negative from newest) instead of sweeping")
	flag.Parse()

	err := func() error {
		if *check {
			models := []string{*model}
			if *model == "all" {
				models = []string{"acoustic", "elastic", "tti", "viscoelastic"}
			}
			return runCheck(*dir, *only, models)
		}
		return run(*exp, *model, *arch, *soFlag, *size, *nt, *ckpt, *shots, *out, *history, *diff, *regressWarn)
	}()
	if ferr := obs.FlushEnv(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "devigo-bench:", err)
		os.Exit(1)
	}
}

// run dispatches one experiment; any failure propagates to a non-zero
// exit so CI jobs consuming the tool can actually fail.
func run(exp, model, arch, soFlag string, size, nt, ckpt, shots int, out, history, diff string, regressWarn bool) error {
	sos, err := parseSOs(soFlag)
	if err != nil {
		return err
	}
	models := []string{model}
	if model == "all" {
		models = []string{"acoustic", "elastic", "tti", "viscoelastic"}
	}
	var machines []perfmodel.Machine
	switch arch {
	case "cpu":
		machines = []perfmodel.Machine{perfmodel.Archer2Node()}
	case "gpu":
		machines = []perfmodel.Machine{perfmodel.TursaA100()}
	case "all":
		machines = []perfmodel.Machine{perfmodel.Archer2Node(), perfmodel.TursaA100()}
	default:
		return fmt.Errorf("unknown arch %q", arch)
	}

	switch exp {
	case "strong":
		return runStrong(models, sos, machines)
	case "weak":
		return runWeak(models, sos, machines)
	case "roofline":
		return runRoofline(sos)
	case "selectmode":
		return runSelectMode(sos)
	case "exec":
		return runExec(models, sos, size, nt, out)
	case "adjoint":
		return runAdjoint(size, nt, ckpt, out)
	case "autotune":
		return runAutotuneExp(models, sos, size, nt, out)
	case "timetile":
		return runTimetile(models, sos, size, nt, out)
	case "hybrid":
		return runHybrid(size, nt, out)
	case "observatory":
		if diff != "" {
			return runObservatoryDiff(out, history, diff)
		}
		return runObservatory(out, history, regressWarn)
	case "transport":
		return runTransport(size, nt, out)
	case "fwiservice":
		return runFWIService(size, nt, shots, out)
	case "transport-worker":
		// Internal: one TCP rank process of -exp transport, spawned by
		// the launcher with the rendezvous environment set.
		return runTransportWorker(size, nt)
	case "all":
		all := []string{"acoustic", "elastic", "tti", "viscoelastic"}
		both := []perfmodel.Machine{perfmodel.Archer2Node(), perfmodel.TursaA100()}
		if err := runRoofline([]int{8}); err != nil {
			return err
		}
		if err := runStrong(all, sos, both); err != nil {
			return err
		}
		if err := runWeak(all, sos, both); err != nil {
			return err
		}
		if err := runSelectMode([]int{8}); err != nil {
			return err
		}
		return runObservatory(out, history, regressWarn)
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func runStrong(models []string, sos []int, machines []perfmodel.Machine) error {
	for _, m := range machines {
		for _, model := range models {
			for _, so := range sos {
				tbl, err := perfreport.StrongScaling(model, so, m)
				if err != nil {
					return err
				}
				fmt.Println(tbl.Format())
			}
		}
	}
	return nil
}

func runWeak(models []string, sos []int, machines []perfmodel.Machine) error {
	for _, so := range sos {
		fmt.Printf("MPI-X weak scaling runtime (seconds), so-%02d (paper Fig. 12/21-24)\n", so)
		fmt.Printf("%-18s", "series/nodes")
		for _, n := range perfreport.PaperNodeCounts {
			fmt.Printf("%8d", n)
		}
		fmt.Println()
		for _, m := range machines {
			modes := []halo.Mode{halo.ModeBasic, halo.ModeFull, halo.ModeDiagonal}
			if m.GPUOnlyBasic {
				modes = modes[:1]
			}
			for _, model := range models {
				for _, mode := range modes {
					pts, err := perfreport.WeakScaling(model, so, m, mode)
					if err != nil {
						return err
					}
					label := fmt.Sprintf("%s-%s", shortName(model), mode)
					if m.GPUOnlyBasic {
						label += "[GPU]"
					}
					fmt.Printf("%-18s", label)
					for _, p := range pts {
						fmt.Printf("%8.2f", p.Runtime)
					}
					fmt.Println()
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func shortName(model string) string {
	switch model {
	case "acoustic":
		return "Ac"
	case "elastic":
		return "El"
	case "tti":
		return "TTI"
	case "viscoelastic":
		return "VEl"
	}
	return model
}

func runRoofline(sos []int) error {
	for _, so := range sos {
		s, err := perfreport.RooflineReport(so)
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	return nil
}

func runSelectMode(sos []int) error {
	for _, so := range sos {
		s, err := perfreport.ModeSelectionReport(so)
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	return nil
}

func parseSOs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad space order %q", part)
		}
		if v%2 != 0 || v < 2 || v > 16 {
			return nil, fmt.Errorf("space order %d unsupported", v)
		}
		out = append(out, v)
	}
	return out, nil
}
