package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/perfmodel"
	"devigo/internal/propagators"
)

// AutotuneCandidate is one exhaustively-swept configuration with its
// measured runtime and result checksum.
type AutotuneCandidate struct {
	Mode     string  `json:"mode"`
	Workers  int     `json:"workers"`
	TileRows int     `json:"tile_rows"`
	TimeTile int     `json:"time_tile"`
	Seconds  float64 `json:"seconds"`
	Norm     float64 `json:"norm"`
}

// AutotuneChoice records what one policy picked and how it compares to
// the exhaustive best: Seconds is the chosen configuration's *swept*
// runtime (same measurement protocol as every candidate), so RatioVsBest
// is exactly 1.0 when the tuner finds the true optimum.
type AutotuneChoice struct {
	Config      core.EffectiveConfig `json:"config"`
	Seconds     float64              `json:"seconds"`
	RatioVsBest float64              `json:"ratio_vs_best"`
}

// AutotuneScenario is one scenario block of BENCH_autotune.json.
type AutotuneScenario struct {
	Name       string              `json:"name"`
	Shape      []int               `json:"shape"`
	SpaceOrder int                 `json:"space_order"`
	NT         int                 `json:"nt"`
	Ranks      int                 `json:"ranks"`
	Candidates []AutotuneCandidate `json:"candidates"`
	Best       AutotuneCandidate   `json:"best"`
	// Chosen maps policy ("model", "search") to its pick.
	Chosen map[string]AutotuneChoice `json:"chosen"`
	// BitExact is true when every candidate run and every autotuned run
	// produced the identical result norm — the invariance the in-place
	// tuner relies on.
	BitExact bool `json:"bit_exact"`
	// Obs is the scenario's metrics-registry snapshot: its decision log
	// records what the policies considered, and its regret prices the
	// search policy's pick against its own measured trials.
	Obs obs.Metrics `json:"obs"`
}

// AutotuneReport is the BENCH_autotune.json schema: chosen-vs-exhaustive-
// best per scenario.
type AutotuneReport struct {
	MaxWorkers int                `json:"max_workers"`
	Scenarios  []AutotuneScenario `json:"scenarios"`
}

// atRun is one measured run: the slowest rank's kernel+halo seconds, the
// global result norm, and the effective configuration.
type atRun struct {
	seconds float64
	norm    float64
	eff     core.EffectiveConfig
}

// autotuneScenario describes one sweep target.
type autotuneScenario struct {
	name  string
	model string
	ranks int
	// mode is the context pattern autotuned runs start from (ignored when
	// serial); the sweep overrides it per candidate.
	mode halo.Mode
}

// runAutotuneExp sweeps the autotuner's full candidate space per
// scenario and space order, then lets each policy choose, and reports
// chosen-vs-best. Scenario failures and bit-exactness violations are
// errors: CI consumes the exit status.
func runAutotuneExp(models []string, sos []int, size, nt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	report := AutotuneReport{MaxWorkers: perfmodel.MaxWorkersDefault()}
	scenarios := make([]autotuneScenario, 0, len(models)+1)
	for _, m := range models {
		scenarios = append(scenarios, autotuneScenario{name: m, model: m, ranks: 1})
	}
	scenarios = append(scenarios,
		autotuneScenario{name: "acoustic-dmp4", model: "acoustic", ranks: 4, mode: halo.ModeBasic})

	for _, so := range sos {
		for _, sc := range scenarios {
			if len(sos) > 1 {
				sc.name = fmt.Sprintf("%s_so%d", sc.name, so)
			}
			block, err := runAutotuneScenario(sc, size, so, nt)
			if err != nil {
				return fmt.Errorf("%s: %w", sc.name, err)
			}
			report.Scenarios = append(report.Scenarios, *block)
			if !block.BitExact {
				return fmt.Errorf("%s: results differ across configurations (autotune invariance broken)", sc.name)
			}
		}
	}

	path := filepath.Join(outDir, "BENCH_autotune.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func runAutotuneScenario(sc autotuneScenario, size, so, nt int) (*AutotuneScenario, error) {
	obs.EnableMetrics()
	obs.Reset()
	shape := []int{size, size}
	block := &AutotuneScenario{
		Name: sc.name, Shape: shape, SpaceOrder: so, NT: nt, Ranks: sc.ranks,
		Chosen: map[string]AutotuneChoice{},
	}

	prof, err := autotuneProfile(sc, shape, so)
	if err != nil {
		return nil, err
	}
	cands := perfmodel.Candidates(prof)
	fmt.Printf("Autotune sweep %s: %dx%d so-%02d nt=%d ranks=%d, %d candidates\n",
		sc.name, size, size, so, nt, sc.ranks, len(cands))

	// Exhaustive sweep: every candidate measured with the same protocol
	// (best of 3 repetitions of the slowest rank's kernel+halo seconds).
	// Every repetition's norm — not just the kept one's — is checked
	// against the reference, so nondeterminism in a discarded rep still
	// fails the invariance gate.
	const reps = 3
	var refNorm float64
	haveRef := false
	bitExact := true
	for _, c := range cands {
		best := atRun{}
		for rep := 0; rep < reps; rep++ {
			r, err := autotuneRunOne(sc, shape, so, nt, c, "")
			if err != nil {
				return nil, err
			}
			if !haveRef {
				refNorm, haveRef = r.norm, true
			} else if r.norm != refNorm {
				bitExact = false
			}
			if rep == 0 || r.seconds < best.seconds {
				best = r
			}
		}
		kc := c.TimeTile
		if kc < 1 {
			kc = 1
		}
		block.Candidates = append(block.Candidates, AutotuneCandidate{
			Mode: c.Mode.String(), Workers: c.Workers, TileRows: c.TileRows, TimeTile: kc,
			Seconds: best.seconds, Norm: best.norm,
		})
	}
	bestIdx := 0
	for i, c := range block.Candidates {
		if c.Seconds < block.Candidates[bestIdx].Seconds {
			bestIdx = i
		}
	}
	block.Best = block.Candidates[bestIdx]

	// Let each policy choose, then price the choice with its sweep entry.
	for _, policy := range []string{core.AutotuneModel, core.AutotuneSearch} {
		r, err := autotuneRunOne(sc, shape, so, nt, perfmodel.ExecConfig{}, policy)
		if err != nil {
			return nil, err
		}
		if r.norm != refNorm {
			bitExact = false
		}
		swept, ok := lookupCandidate(block.Candidates, r.eff)
		if !ok {
			return nil, fmt.Errorf("policy %s chose %s/w%d/t%d which is outside the candidate sweep",
				policy, r.eff.Mode, r.eff.Workers, r.eff.TileRows)
		}
		block.Chosen[policy] = AutotuneChoice{
			Config:      r.eff,
			Seconds:     swept.Seconds,
			RatioVsBest: swept.Seconds / block.Best.Seconds,
		}
		fmt.Printf("  %-7s chose %s/w%d/t%d: %.4fs vs best %s/w%d/t%d %.4fs (ratio %.2f)\n",
			policy, r.eff.Mode, r.eff.Workers, r.eff.TileRows, swept.Seconds,
			block.Best.Mode, block.Best.Workers, block.Best.TileRows, block.Best.Seconds,
			block.Chosen[policy].RatioVsBest)
	}
	block.BitExact = bitExact
	block.Obs = obs.Snapshot()
	return block, nil
}

func lookupCandidate(cands []AutotuneCandidate, eff core.EffectiveConfig) (AutotuneCandidate, bool) {
	for _, c := range cands {
		if c.Mode == eff.Mode && c.Workers == eff.Workers && c.TileRows == eff.TileRows && c.TimeTile == eff.TimeTile {
			return c, true
		}
	}
	return AutotuneCandidate{}, false
}

// autotuneProfile compiles the scenario's operator once (no timesteps)
// and extracts its autotuner profile, so the sweep enumerates exactly the
// candidate set the tuner plans over.
func autotuneProfile(sc autotuneScenario, shape []int, so int) (perfmodel.OpProfile, error) {
	var prof perfmodel.OpProfile
	build := func(c *mpi.Comm) error {
		cfg := propagators.Config{Shape: shape, SpaceOrder: so, NBL: 8, Velocity: 1.5}
		var ctx *core.Context
		if c != nil {
			g := grid.MustNew(shape, nil)
			dec, err := grid.NewDecomposition(g, c.Size(), nil)
			if err != nil {
				return err
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				return err
			}
			cfg.Decomp = dec
			cfg.Rank = c.Rank()
			ctx = &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: sc.mode}
		}
		m, err := propagators.Build(sc.model, cfg)
		if err != nil {
			return err
		}
		// TimeTile pinned to 1 so a stray DEVIGO_TIME_TILE cannot open the
		// k-axis: this experiment's contract is the classic
		// (mode x workers x tile_rows) space; -exp timetile owns the
		// exchange-interval axis.
		op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, ctx, &core.Options{TimeTile: 1})
		if err != nil {
			return err
		}
		if c == nil || c.Rank() == 0 {
			prof = op.Profile()
		}
		return nil
	}
	if sc.ranks == 1 {
		return prof, build(nil)
	}
	errs := make([]error, sc.ranks)
	w := mpi.NewWorld(sc.ranks)
	if err := w.Run(func(c *mpi.Comm) { errs[c.Rank()] = build(c) }); err != nil {
		return prof, err
	}
	for _, e := range errs {
		if e != nil {
			return prof, e
		}
	}
	return prof, nil
}

// autotuneRunOne executes one scenario run, either forced to a candidate
// configuration (policy == "") or self-configuring under a policy.
func autotuneRunOne(sc autotuneScenario, shape []int, so, nt int, cand perfmodel.ExecConfig, policy string) (atRun, error) {
	// Deep-halo capacity is deliberately NOT provisioned here — TimeTile
	// is pinned to 1 on every run (candidates carry time_tile 1; a stray
	// DEVIGO_TIME_TILE must not leak in), so the candidate space is the
	// classic (mode x workers x tile_rows) grid. The exchange-interval
	// axis has its own experiment and gates (-exp timetile), whose sweep
	// opens the axis explicitly.
	rcOf := func() propagators.RunConfig {
		rc := propagators.RunConfig{NT: nt, NReceivers: 4, TimeTile: 1}
		if policy == "" {
			rc.Workers = cand.Workers
			rc.TileRows = cand.TileRows
			rc.TimeTile = cand.TimeTile
			rc.Autotune = core.AutotuneOff
		} else {
			rc.Autotune = policy
		}
		return rc
	}
	if sc.ranks == 1 {
		m, err := propagators.Build(sc.model, propagators.Config{
			Shape: shape, SpaceOrder: so, NBL: 8, Velocity: 1.5,
		})
		if err != nil {
			return atRun{}, err
		}
		res, err := propagators.Run(m, nil, rcOf())
		if err != nil {
			return atRun{}, err
		}
		p := res.Perf
		return atRun{seconds: p.ComputeSeconds + p.HaloSeconds, norm: res.Norm, eff: res.Op.Config()}, nil
	}

	mode := sc.mode
	if policy == "" {
		mode = cand.Mode
	}
	var out atRun
	errs := make([]error, sc.ranks)
	w := mpi.NewWorld(sc.ranks)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), nil)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cfg := propagators.Config{Shape: shape, SpaceOrder: so, NBL: 8, Velocity: 1.5,
			Decomp: dec, Rank: c.Rank()}
		m, err := propagators.Build(sc.model, cfg)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := propagators.Run(m, ctx, rcOf())
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		p := res.Perf
		sec := p.ComputeSeconds + p.HaloSeconds
		sec = c.AllreduceScalar(sec, mpi.OpMax)
		if c.Rank() == 0 {
			out = atRun{seconds: sec, norm: res.Norm, eff: res.Op.Config()}
		}
	})
	if err != nil {
		return out, err
	}
	for _, e := range errs {
		if e != nil {
			return out, e
		}
	}
	return out, nil
}
