package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"devigo/internal/core"
	"devigo/internal/obs"
	"devigo/internal/propagators"
)

// EngineMetrics is the machine-readable record of one engine's measured
// execution on a scenario.
type EngineMetrics struct {
	GPtss          float64 `json:"gptss"`
	ComputeSeconds float64 `json:"compute_seconds"`
	HaloSeconds    float64 `json:"halo_seconds"`
	PointsUpdated  int64   `json:"points_updated"`
	FlopsPerPoint  int     `json:"flops_per_point"`
	// Config records the effective execution configuration (engine, halo
	// mode, workers, tile rows, autotune policy) so benchmark provenance
	// is self-describing.
	Config core.EffectiveConfig `json:"config"`
}

// ExecReport is the BENCH_<scenario>.json schema: real measured
// throughput per engine, so future PRs can track the perf trajectory.
type ExecReport struct {
	Scenario   string                   `json:"scenario"`
	Shape      []int                    `json:"shape"`
	SpaceOrder int                      `json:"space_order"`
	NT         int                      `json:"nt"`
	Engines    map[string]EngineMetrics `json:"engines"`
	// SpeedupBytecode is bytecode GPts/s over interpreter GPts/s.
	SpeedupBytecode float64 `json:"speedup_bytecode_over_interpreter"`
	// SpeedupNative is native GPts/s over bytecode GPts/s.
	SpeedupNative float64 `json:"speedup_native_over_bytecode"`
	// Obs is the metrics-registry snapshot covering both engines' runs
	// (steady/warmup step split, traffic counters, instruction gauge).
	Obs obs.Metrics `json:"obs"`
}

// runExec measures the *real* executor (not the performance model) on
// each scenario with both engines, prints a comparison table and writes
// BENCH_<scenario>.json into outDir (suffixed _so<k> when several space
// orders are requested). Any failed or degenerate measurement is an
// error: the process must exit non-zero so CI perf gates can trust the
// emitted files.
func runExec(models []string, sos []int, size, nt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, so := range sos {
		if err := runExecSO(models, so, size, nt, outDir, len(sos) > 1); err != nil {
			return err
		}
	}
	return nil
}

func runExecSO(models []string, so, size, nt int, outDir string, suffixSO bool) error {
	fmt.Printf("Measured execution, %dx%d grid, so-%02d, %d timesteps (this machine)\n", size, size, so, nt)
	fmt.Printf("%-14s %14s %14s %14s %10s %10s\n",
		"scenario", "interp GPts/s", "bytec GPts/s", "native GPts/s", "bc/interp", "nat/bc")
	for _, model := range models {
		obs.EnableMetrics()
		obs.Reset()
		report := ExecReport{
			Scenario:   model,
			Shape:      []int{size, size},
			SpaceOrder: so,
			NT:         nt,
			Engines:    map[string]EngineMetrics{},
		}
		for _, engine := range []string{core.EngineInterpreter, core.EngineBytecode, core.EngineNative} {
			perf, eff, err := measure(model, engine, size, so, nt)
			if err != nil {
				return fmt.Errorf("%s (%s): %w", model, engine, err)
			}
			if perf.GPtss() <= 0 {
				return fmt.Errorf("%s (%s): degenerate measurement (no throughput)", model, engine)
			}
			fmt.Fprintf(os.Stderr, "devigo-bench: %s config: engine=%s mode=%s workers=%d tile_rows=%d autotune=%s\n",
				model, eff.Engine, eff.Mode, eff.Workers, eff.TileRows, eff.Autotune)
			report.Engines[engine] = EngineMetrics{
				GPtss:          perf.GPtss(),
				ComputeSeconds: perf.ComputeSeconds,
				HaloSeconds:    perf.HaloSeconds,
				PointsUpdated:  perf.PointsUpdated,
				FlopsPerPoint:  perf.FlopsPerPoint,
				Config:         eff,
			}
		}
		report.Obs = obs.Snapshot()
		gi := report.Engines[core.EngineInterpreter].GPtss
		gb := report.Engines[core.EngineBytecode].GPtss
		gn := report.Engines[core.EngineNative].GPtss
		if gi > 0 {
			report.SpeedupBytecode = gb / gi
		}
		if gb > 0 {
			report.SpeedupNative = gn / gb
		}
		fmt.Printf("%-14s %14.4f %14.4f %14.4f %9.2fx %9.2fx\n",
			model, gi, gb, gn, report.SpeedupBytecode, report.SpeedupNative)
		name := fmt.Sprintf("BENCH_%s.json", model)
		if suffixSO {
			name = fmt.Sprintf("BENCH_%s_so%d.json", model, so)
		}
		path := filepath.Join(outDir, name)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

// measure builds the scenario fresh (its own storage) and runs all nt
// steps serially; the counters include the cold first step, so keep nt
// large enough to amortize first-touch effects. It also returns the
// effective execution configuration for provenance.
func measure(model, engine string, size, so, nt int) (core.Perf, core.EffectiveConfig, error) {
	m, err := propagators.Build(model, propagators.Config{
		Shape: []int{size, size}, SpaceOrder: so, NBL: 8, Velocity: 1.5,
	})
	if err != nil {
		return core.Perf{}, core.EffectiveConfig{}, err
	}
	res, err := propagators.Run(m, nil, propagators.RunConfig{NT: nt, Engine: engine})
	if err != nil {
		return core.Perf{}, core.EffectiveConfig{}, err
	}
	return res.Perf, res.Op.Config(), nil
}
