package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"devigo/internal/obs"
	"devigo/internal/opcache"
	"devigo/internal/propagators"
)

// FWIServiceSweepPoint is one worker-count measurement of the cached
// shot-parallel service.
type FWIServiceSweepPoint struct {
	// Workers is the scheduler pool size of this run.
	Workers int `json:"workers"`
	// Seconds is the survey wall time and ShotsPerSec its inverse rate.
	Seconds     float64 `json:"seconds"`
	ShotsPerSec float64 `json:"shots_per_sec"`
	// SpeedupVsCold is shots/sec against the cold sequential baseline
	// (compile + autotune per shot); SpeedupVs1Worker isolates pure
	// worker-pool scaling within the cached service.
	SpeedupVsCold    float64 `json:"speedup_vs_cold"`
	SpeedupVs1Worker float64 `json:"speedup_vs_1worker"`
	// BitExact records that the stacked gradient matched the cold
	// sequential baseline bit for bit.
	BitExact bool `json:"bit_exact_vs_sequential"`
	// OpCompiles is the obs compile counter over this run: with a shared
	// cache it must equal the survey's unique schedule count at any
	// worker count (the singleflight guarantee).
	OpCompiles int64 `json:"op_compiles"`
	// OpcacheHits / OpcacheMisses / HitRate snapshot the cache counters;
	// an N-shot survey must show misses == unique schedules and hit rate
	// == (N-1)/N.
	OpcacheHits   int64   `json:"opcache_hits"`
	OpcacheMisses int64   `json:"opcache_misses"`
	HitRate       float64 `json:"hit_rate"`
}

// FWIServiceReport is the BENCH_fwiservice.json schema: a cold sequential
// baseline and a worker-count sweep of the cached shot-parallel service,
// with the cache/compile accounting CI gates on.
type FWIServiceReport struct {
	Scenario           string `json:"scenario"`
	Shape              []int  `json:"shape"`
	SpaceOrder         int    `json:"space_order"`
	NT                 int    `json:"nt"`
	Shots              int    `json:"shots"`
	CheckpointInterval int    `json:"checkpoint_interval"`
	// Autotune is the per-operator tuning policy; the service caches the
	// tuned configuration alongside the kernels, so the cold baseline
	// re-tunes every shot and the cached runs tune once per schedule.
	Autotune string `json:"autotune"`
	// HostCores is runtime.NumCPU() where this file was generated: the
	// worker-scaling gate is enforced only when the host had at least as
	// many cores as workers (a 1-core container caps pure worker
	// parallelism at 1x no matter how correct the scheduler is).
	HostCores int `json:"host_cores"`
	// UniqueSchedules is the number of distinct operator schedules per
	// shot (forward, adjoint, imaging = 3) — the expected compile count
	// for the whole cached survey.
	UniqueSchedules int `json:"unique_schedules"`
	// ColdSeconds / ColdShotsPerSec measure the baseline: workers=1,
	// cache off, so every shot pays compilation and autotuning.
	ColdSeconds     float64 `json:"cold_seconds"`
	ColdShotsPerSec float64 `json:"cold_shots_per_sec"`
	// AmortizedSpeedup is the best cached sweep point against the cold
	// baseline — the figure the service exists for (compile/tune once,
	// solve N times).
	AmortizedSpeedup float64                `json:"amortized_speedup"`
	Sweep            []FWIServiceSweepPoint `json:"sweep"`
	// Obs embeds the metrics registry of the last sweep run (shot queue,
	// cache and compile counters).
	Obs obs.Metrics `json:"obs"`
}

// fwiShots lays out n sources on a diagonal line through the interior,
// the survey geometry of the benchmark.
func fwiShots(n, size int) []propagators.Shot {
	shots := make([]propagators.Shot, n)
	for i := range shots {
		frac := 0.25 + 0.5*float64(i)/float64(max(n-1, 1))
		shots[i] = propagators.Shot{SourceCoords: []float64{
			float64(size-1) * frac, float64(size-1) * (1 - frac),
		}}
	}
	return shots
}

// runFWIService measures the shot-parallel FWI service: a cold sequential
// baseline (cache off — every shot compiles and autotunes its three
// operators), then the cached service at 1, 2 and 4 workers, certifying
// every stacked gradient bit-identical to the baseline and the compile
// count equal to the unique schedule count. Writes BENCH_fwiservice.json.
func runFWIService(size, nt, nshots int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// A 16th-order stencil is the service's home regime: at high space
	// order the symbolic front-end (exact-rational FD coefficient solves)
	// dominates per-shot operator construction, which is exactly the cost
	// the shared cache amortizes across the survey.
	const so = 16
	cfg := propagators.Config{Shape: []int{size, size}, SpaceOrder: so, NBL: 8, Velocity: 1.5}
	gc := propagators.GradientConfig{
		NT: nt, NReceivers: 8, CheckpointInterval: 4, Autotune: "search",
	}
	report := FWIServiceReport{
		Scenario: "fwiservice", Shape: cfg.Shape, SpaceOrder: so, NT: nt,
		Shots: nshots, CheckpointInterval: gc.CheckpointInterval,
		Autotune: gc.Autotune, HostCores: runtime.NumCPU(),
		UniqueSchedules: 3, // forward, adjoint, imaging
	}
	survey := func(workers int, cache *opcache.Cache) (*propagators.ShotsResult, float64, error) {
		start := time.Now()
		res, err := propagators.RunShots("acoustic", cfg, propagators.ShotsConfig{
			Gradient: gc, Shots: fwiShots(nshots, size), Workers: workers, Cache: cache,
		})
		return res, time.Since(start).Seconds(), err
	}

	// The cold baseline is the pre-service workflow: a sequential loop in
	// which every shot compiles and tunes privately. DEVIGO_OPCACHE=off is
	// the documented switch for that behavior.
	if err := os.Setenv(opcache.EnvVar, "off"); err != nil {
		return err
	}
	cold, coldSec, err := survey(1, nil)
	if err := os.Unsetenv(opcache.EnvVar); err != nil {
		return err
	}
	if err != nil {
		return fmt.Errorf("cold baseline: %w", err)
	}
	report.ColdSeconds = coldSec
	report.ColdShotsPerSec = float64(nshots) / coldSec
	fmt.Printf("FWI service, %dx%d so-%02d, %d shots x %d steps (this machine, %d cores)\n",
		size, size, so, nshots, nt, report.HostCores)
	fmt.Printf("%-22s %10s %12s %10s %10s\n", "run", "seconds", "shots/sec", "vs cold", "compiles")
	fmt.Printf("%-22s %10.3f %12.3f %10s %10s\n", "cold sequential", coldSec,
		report.ColdShotsPerSec, "1.00x", fmt.Sprint(3*nshots))

	for _, workers := range []int{1, 2, 4} {
		obs.EnableMetrics()
		obs.Reset()
		res, sec, err := survey(workers, opcache.New())
		if err != nil {
			return fmt.Errorf("cached survey (%d workers): %w", workers, err)
		}
		snap := obs.Snapshot()
		obs.DisableAll()
		obs.Reset()
		bitExact := len(res.Gradient) == len(cold.Gradient)
		for i := range res.Gradient {
			if res.Gradient[i] != cold.Gradient[i] {
				bitExact = false
				break
			}
		}
		pt := FWIServiceSweepPoint{
			Workers: workers, Seconds: sec,
			ShotsPerSec:   float64(nshots) / sec,
			SpeedupVsCold: coldSec / sec,
			BitExact:      bitExact,
			OpCompiles:    snap.Total.OpCompiles,
			OpcacheHits:   res.CacheStats.Hits,
			OpcacheMisses: res.CacheStats.Misses,
			HitRate:       res.CacheStats.HitRate(),
		}
		if len(report.Sweep) > 0 {
			pt.SpeedupVs1Worker = report.Sweep[0].Seconds / sec
		} else {
			pt.SpeedupVs1Worker = 1
		}
		report.Sweep = append(report.Sweep, pt)
		report.Obs = snap
		fmt.Printf("%-22s %10.3f %12.3f %9.2fx %10d\n",
			fmt.Sprintf("cached, %d worker(s)", workers), sec, pt.ShotsPerSec,
			pt.SpeedupVsCold, pt.OpCompiles)
	}
	best := 0.0
	for _, pt := range report.Sweep {
		if pt.SpeedupVsCold > best {
			best = pt.SpeedupVsCold
		}
	}
	report.AmortizedSpeedup = best
	fmt.Printf("amortized speedup (best cached vs cold): %.2fx\n", best)

	path := filepath.Join(outDir, "BENCH_fwiservice.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
