package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// runCheck is the -check subcommand: it validates previously-emitted
// BENCH_*.json files in dir against the repository's performance and
// correctness gates — the single Go home for what used to be a pile of
// ad-hoc jq expressions in CI. `only` selects a comma-separated subset
// of gate groups (default: all of them); the exec group checks
// BENCH_<model>.json for every requested model. Every violated gate is
// reported (not just the first) and any violation makes the process
// exit non-zero, so CI can consume the tool directly.
//
// Gate groups:
//
//	exec             engine throughput, schema sanity, bytecode speedup >= 3x
//	                 over interpreter, native speedup >= 3x over bytecode
//	                 (the native floor applies to the acoustic scenario,
//	                 the acceptance benchmark)
//	adjoint          dot-product certification, gradient sanity, checkpointing
//	autotune-exact   sweep schema, bit-exactness, model-ratio sanity
//	autotune-timing  search policy within 15% of the exhaustive best
//	autotune         both autotune groups
//	timetile         bit-exactness and message-amortization ratios
//	transport        inproc-vs-TCP bit-exactness, traffic parity, schema sanity
//	fwiservice         shot-stack bit-exactness, compile-count == unique
//	                   schedules, cache hit rate == (N-1)/N
//	fwiservice-timing  amortized speedup >= 2x over the cold baseline;
//	                   worker scaling >= 2x at 4 workers when the
//	                   generating host had >= 4 cores
//	hybrid             zero-allocation dispatch certification, sweep
//	                   bit-exactness at every engine x worker count,
//	                   schema/counter sanity of the pool runtime
//	hybrid-timing      pool dispatch no slower than fork-join; >= 2x
//	                   native scaling at 4 workers and an autotuner
//	                   worker choice > 1, both only when the generating
//	                   host had >= 4 cores
//
// The split autotune and fwiservice groups let CI retry the timing half
// (noisy on a preempted shared runner) without ever retrying a
// correctness failure.
func runCheck(dir, only string, models []string) error {
	groups := map[string]bool{}
	if only == "" {
		only = "exec,adjoint,autotune,timetile,transport,fwiservice,hybrid"
	}
	for _, g := range strings.Split(only, ",") {
		g = strings.TrimSpace(g)
		if g == "autotune" {
			groups["autotune-exact"] = true
			groups["autotune-timing"] = true
			continue
		}
		switch g {
		case "exec", "adjoint", "autotune-exact", "autotune-timing", "timetile", "transport",
			"fwiservice", "fwiservice-timing", "hybrid", "hybrid-timing":
			groups[g] = true
		default:
			return fmt.Errorf("unknown check group %q", g)
		}
	}

	var violations []string
	checked := 0
	add := func(file, msg string) {
		violations = append(violations, fmt.Sprintf("%s: %s", file, msg))
	}
	if groups["exec"] {
		for _, model := range models {
			name := fmt.Sprintf("BENCH_%s.json", model)
			checked++
			checkExecFile(filepath.Join(dir, name), name, model, add)
		}
	}
	if groups["adjoint"] {
		checked++
		checkAdjointFile(filepath.Join(dir, "BENCH_adjoint.json"), add)
	}
	if groups["autotune-exact"] || groups["autotune-timing"] {
		checked++
		checkAutotuneFile(filepath.Join(dir, "BENCH_autotune.json"),
			groups["autotune-exact"], groups["autotune-timing"], add)
	}
	if groups["timetile"] {
		checked++
		checkTimetileFile(filepath.Join(dir, "BENCH_timetile.json"), add)
	}
	if groups["transport"] {
		checked++
		checkTransportFile(filepath.Join(dir, "BENCH_transport.json"), add)
	}
	if groups["fwiservice"] || groups["fwiservice-timing"] {
		checked++
		checkFWIServiceFile(filepath.Join(dir, "BENCH_fwiservice.json"),
			groups["fwiservice"], groups["fwiservice-timing"], add)
	}
	if groups["hybrid"] || groups["hybrid-timing"] {
		checked++
		checkHybridFile(filepath.Join(dir, "BENCH_hybrid.json"),
			groups["hybrid"], groups["hybrid-timing"], add)
	}
	if checked == 0 {
		return fmt.Errorf("-only %q selected no gate group", only)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "devigo-bench: GATE FAILED:", v)
		}
		return fmt.Errorf("%d perf/correctness gate(s) violated in %s", len(violations), dir)
	}
	fmt.Printf("devigo-bench: all gates passed (%d report file(s) in %s)\n", checked, dir)
	return nil
}

// loadReport unmarshals one BENCH file, reporting unreadable or
// malformed files as gate violations (a missing report is a failure:
// the gates exist to be checked, not skipped).
func loadReport(path string, v any, add func(file, msg string)) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		add(filepath.Base(path), err.Error())
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		add(filepath.Base(path), fmt.Sprintf("malformed JSON: %v", err))
		return false
	}
	return true
}

// checkExecFile ports the exec jq gates: schema sanity, positive
// throughput on every engine, provenance on each engine's config, the
// bytecode-over-interpreter speedup floor, and (on the acoustic
// acceptance scenario) the native-over-bytecode speedup floor.
func checkExecFile(path, name, model string, add func(file, msg string)) {
	var r ExecReport
	if !loadReport(path, &r, add) {
		return
	}
	if r.Scenario != model {
		add(name, fmt.Sprintf("scenario = %q, want %q", r.Scenario, model))
	}
	for _, engine := range []string{"interpreter", "bytecode", "native"} {
		e, ok := r.Engines[engine]
		if !ok {
			add(name, fmt.Sprintf("missing engines.%s block", engine))
			continue
		}
		if e.GPtss <= 0 {
			add(name, fmt.Sprintf("engines.%s.gptss = %v, want > 0", engine, e.GPtss))
		}
		if e.Config.Engine != engine {
			add(name, fmt.Sprintf("engines.%s.config.engine = %q, want %q", engine, e.Config.Engine, engine))
		}
	}
	bc := r.Engines["bytecode"]
	if bc.PointsUpdated <= 0 {
		add(name, fmt.Sprintf("engines.bytecode.points_updated = %d, want > 0", bc.PointsUpdated))
	}
	if bc.FlopsPerPoint <= 0 {
		add(name, fmt.Sprintf("engines.bytecode.flops_per_point = %d, want > 0", bc.FlopsPerPoint))
	}
	// Native and bytecode must agree on the flop accounting: the native
	// engine reuses the bytecode compiler, so a divergence means a lost
	// or double-counted instruction, not a measurement artifact.
	if nat := r.Engines["native"]; nat.FlopsPerPoint != bc.FlopsPerPoint {
		add(name, fmt.Sprintf("engines.native.flops_per_point = %d, want %d (bytecode's)",
			nat.FlopsPerPoint, bc.FlopsPerPoint))
	}
	if r.SpeedupBytecode < 3 {
		add(name, fmt.Sprintf("speedup_bytecode_over_interpreter = %.2f, want >= 3", r.SpeedupBytecode))
	}
	// The native floor is the acceptance figure on the acoustic scenario;
	// other scenarios carry heavier per-point chains where the gain is
	// real but not gated, so runner noise can't flake them.
	if model == "acoustic" && r.SpeedupNative < 3 {
		add(name, fmt.Sprintf("speedup_native_over_bytecode = %.2f, want >= 3", r.SpeedupNative))
	}
	if bc.Config.Workers < 1 || bc.Config.TileRows < 1 {
		add(name, fmt.Sprintf("engines.bytecode.config workers=%d tile_rows=%d, want both >= 1",
			bc.Config.Workers, bc.Config.TileRows))
	}
	if r.Obs.Total.SteadySteps <= 0 {
		add(name, "obs.total.steady_steps = 0, want > 0 (metrics registry not embedded)")
	}
}

// checkAdjointFile ports the adjoint jq gates: the dot-product identity
// to 1e-8, non-degenerate gradients from both engines, and evidence the
// checkpointed reverse sweep actually checkpointed and recomputed.
func checkAdjointFile(path string, add func(file, msg string)) {
	const name = "BENCH_adjoint.json"
	var r AdjointReport
	if !loadReport(path, &r, add) {
		return
	}
	if r.DotTest.RelError > 1e-8 {
		add(name, fmt.Sprintf("dot_test.rel_error = %g, want <= 1e-8", r.DotTest.RelError))
	}
	for _, engine := range []string{"interpreter", "bytecode"} {
		e, ok := r.Engines[engine]
		if !ok {
			add(name, fmt.Sprintf("missing engines.%s block", engine))
			continue
		}
		if e.GradNorm <= 0 {
			add(name, fmt.Sprintf("engines.%s.grad_norm = %v, want > 0", engine, e.GradNorm))
		}
	}
	if r.Snapshots <= 0 || r.RecomputedSteps <= 0 {
		add(name, fmt.Sprintf("snapshots=%d recomputed_steps=%d, want both > 0",
			r.Snapshots, r.RecomputedSteps))
	}
	if r.Obs.Total.CkptSaves <= 0 || r.Obs.Total.CkptRestores <= 0 {
		add(name, fmt.Sprintf("obs.total ckpt_saves=%d ckpt_restores=%d, want both > 0",
			r.Obs.Total.CkptSaves, r.Obs.Total.CkptRestores))
	}
}

// checkAutotuneFile ports the autotune jq gates. The exact half (schema,
// bit-exactness across every swept configuration, the model policy's
// ratio being a true ratio-vs-best) must always hold; the timing half
// (search within 15% of the exhaustive best) is measurement-dependent
// and is selectable separately so CI can retry it.
func checkAutotuneFile(path string, exact, timing bool, add func(file, msg string)) {
	const name = "BENCH_autotune.json"
	var r AutotuneReport
	if !loadReport(path, &r, add) {
		return
	}
	if exact {
		if len(r.Scenarios) < 2 {
			add(name, fmt.Sprintf("%d scenarios, want >= 2 (serial + DMP)", len(r.Scenarios)))
		}
		for _, sc := range r.Scenarios {
			if !sc.BitExact {
				add(name, fmt.Sprintf("scenario %s: bit_exact = false", sc.Name))
			}
			if c, ok := sc.Chosen["model"]; !ok {
				add(name, fmt.Sprintf("scenario %s: missing chosen.model", sc.Name))
			} else if c.RatioVsBest < 1 {
				add(name, fmt.Sprintf("scenario %s: chosen.model.ratio_vs_best = %.3f, want >= 1",
					sc.Name, c.RatioVsBest))
			}
		}
	}
	if timing {
		for _, sc := range r.Scenarios {
			if c, ok := sc.Chosen["search"]; !ok {
				add(name, fmt.Sprintf("scenario %s: missing chosen.search", sc.Name))
			} else if c.RatioVsBest > 1.15 {
				add(name, fmt.Sprintf("scenario %s: chosen.search.ratio_vs_best = %.3f, want <= 1.15",
					sc.Name, c.RatioVsBest))
			}
		}
	}
}

// checkTransportFile validates the transport comparison: both
// substrates measured, bit-identical norms, message-count parity (the
// schedule above the Transport interface must not depend on the wire),
// and serial agreement within the DMP tolerance. Timing is recorded but
// never gated — loopback TCP legitimately pays serialization and
// syscall costs.
func checkTransportFile(path string, add func(file, msg string)) {
	const name = "BENCH_transport.json"
	var r TransportReport
	if !loadReport(path, &r, add) {
		return
	}
	if r.Ranks < 2 {
		add(name, fmt.Sprintf("ranks = %d, want >= 2", r.Ranks))
	}
	for _, sub := range []string{"inproc", "tcp"} {
		m, ok := r.Transports[sub]
		if !ok {
			add(name, fmt.Sprintf("missing transports.%s block", sub))
			continue
		}
		if m.Norm <= 0 {
			add(name, fmt.Sprintf("transports.%s.norm = %v, want > 0", sub, m.Norm))
		}
		if m.GPtss <= 0 {
			add(name, fmt.Sprintf("transports.%s.gptss = %v, want > 0", sub, m.GPtss))
		}
		if m.Msgs <= 0 {
			add(name, fmt.Sprintf("transports.%s.msgs = %d, want > 0", sub, m.Msgs))
		}
	}
	if !r.BitExact {
		add(name, "bit_exact_inproc_vs_tcp = false")
	}
	if in, tcp := r.Transports["inproc"], r.Transports["tcp"]; in.Msgs != tcp.Msgs {
		add(name, fmt.Sprintf("message counts diverge: inproc %d, tcp %d", in.Msgs, tcp.Msgs))
	}
	if r.SerialRelError > 1e-9 {
		add(name, fmt.Sprintf("serial_rel_error = %g, want <= 1e-9", r.SerialRelError))
	}
}

// checkFWIServiceFile validates the shot-parallel service report. The
// hard half holds deterministically on any machine: every sweep point's
// stacked gradient is bit-identical to the cold sequential baseline, the
// compile count equals the unique-schedule count at every worker count
// (the singleflight guarantee), and the cache arithmetic is exact —
// misses == unique schedules, hit rate == (N-1)/N. The timing half gates
// the amortized speedup (cached service vs compile-per-shot baseline)
// at 2x, and additionally gates pure worker scaling at 2x for 4 workers
// — but only when the generating host recorded >= 4 cores, because a
// smaller container caps worker parallelism physically, not logically.
func checkFWIServiceFile(path string, hard, timing bool, add func(file, msg string)) {
	const name = "BENCH_fwiservice.json"
	var r FWIServiceReport
	if !loadReport(path, &r, add) {
		return
	}
	if hard {
		if r.Scenario != "fwiservice" {
			add(name, fmt.Sprintf("scenario = %q, want \"fwiservice\"", r.Scenario))
		}
		if r.Shots < 2 {
			add(name, fmt.Sprintf("shots = %d, want >= 2", r.Shots))
		}
		if r.UniqueSchedules != 3 {
			add(name, fmt.Sprintf("unique_schedules = %d, want 3 (forward, adjoint, imaging)", r.UniqueSchedules))
		}
		if r.ColdSeconds <= 0 {
			add(name, fmt.Sprintf("cold_seconds = %v, want > 0", r.ColdSeconds))
		}
		if len(r.Sweep) < 3 {
			add(name, fmt.Sprintf("%d sweep points, want >= 3 (workers 1, 2, 4)", len(r.Sweep)))
		}
		for _, pt := range r.Sweep {
			tag := fmt.Sprintf("sweep[workers=%d]", pt.Workers)
			if !pt.BitExact {
				add(name, tag+": bit_exact_vs_sequential = false")
			}
			if pt.ShotsPerSec <= 0 {
				add(name, fmt.Sprintf("%s: shots_per_sec = %v, want > 0", tag, pt.ShotsPerSec))
			}
			if pt.OpCompiles != int64(r.UniqueSchedules) {
				add(name, fmt.Sprintf("%s: op_compiles = %d, want %d (one per unique schedule)",
					tag, pt.OpCompiles, r.UniqueSchedules))
			}
			if pt.OpcacheMisses != int64(r.UniqueSchedules) {
				add(name, fmt.Sprintf("%s: opcache_misses = %d, want %d",
					tag, pt.OpcacheMisses, r.UniqueSchedules))
			}
			if want := int64(r.UniqueSchedules * (r.Shots - 1)); pt.OpcacheHits != want {
				add(name, fmt.Sprintf("%s: opcache_hits = %d, want %d = schedules*(N-1)",
					tag, pt.OpcacheHits, want))
			}
		}
		if r.Obs.Total.ShotsDone <= 0 {
			add(name, "obs.total.shots_done = 0, want > 0 (metrics registry not embedded)")
		}
	}
	if timing {
		if r.AmortizedSpeedup < 2 {
			add(name, fmt.Sprintf("amortized_speedup = %.2f, want >= 2 (cached service vs compile-per-shot baseline)",
				r.AmortizedSpeedup))
		}
		for _, pt := range r.Sweep {
			if pt.Workers == 4 && r.HostCores >= 4 && pt.SpeedupVs1Worker < 2 {
				add(name, fmt.Sprintf("sweep[workers=4]: speedup_vs_1worker = %.2f on a %d-core host, want >= 2",
					pt.SpeedupVs1Worker, r.HostCores))
			}
		}
	}
}

// checkHybridFile validates the persistent MPI+X worker-runtime report.
// The hard half holds deterministically on any machine: the raw pool
// dispatch path allocates exactly zero (the park/dispatch protocol's
// defining property), the full engine path's steady-state amortizes to a
// small constant, every scaling-sweep point is bit-identical to its
// engine's 1-worker baseline, the sweep covers all three engines at
// workers {1,2,4,7}, and the 4-rank full-overlap run actually drove the
// pool (dispatches > 0, measured sync cost > 0). The timing half gates
// the dispatch-mechanism race (the persistent pool must not lose to
// per-call fork-join at equal width, with a noise margin at w=1 where
// both run inline) and — only when the generating host recorded >= 4
// cores — native >= 2x scaling at 4 workers plus the joint autotuner
// exploiting the workers axis.
func checkHybridFile(path string, hard, timing bool, add func(file, msg string)) {
	const name = "BENCH_hybrid.json"
	var r HybridReport
	if !loadReport(path, &r, add) {
		return
	}
	if hard {
		if r.Scenario != "hybrid" {
			add(name, fmt.Sprintf("scenario = %q, want \"hybrid\"", r.Scenario))
		}
		if r.HostCores < 1 {
			add(name, fmt.Sprintf("host_cores = %d, want >= 1", r.HostCores))
		}
		if r.PoolDispatchAllocs != 0 {
			add(name, fmt.Sprintf("pool_dispatch_allocs = %g, want exactly 0 (zero-allocation dispatch)", r.PoolDispatchAllocs))
		}
		if r.SteadyAllocsPerStep > 32 {
			add(name, fmt.Sprintf("steady_allocs_per_step = %g, want <= 32 (kernel dispatch is alloc-free; only the source-injection wrapper's small constant remains)", r.SteadyAllocsPerStep))
		}
		if r.SyncCostSec <= 0 {
			add(name, fmt.Sprintf("sync_cost_sec = %g, want > 0 (measured pool handshake)", r.SyncCostSec))
		}
		engines := map[string]map[int]bool{}
		for _, pt := range r.Sweep {
			tag := fmt.Sprintf("sweep[%s w=%d]", pt.Engine, pt.Workers)
			if !pt.BitExact {
				add(name, tag+": bit_exact_vs_1worker = false")
			}
			if pt.Gptss <= 0 {
				add(name, fmt.Sprintf("%s: gptss = %v, want > 0", tag, pt.Gptss))
			}
			if engines[pt.Engine] == nil {
				engines[pt.Engine] = map[int]bool{}
			}
			engines[pt.Engine][pt.Workers] = true
		}
		for _, engine := range []string{"interpreter", "bytecode", "native"} {
			for _, w := range []int{1, 2, 4, 7} {
				if !engines[engine][w] {
					add(name, fmt.Sprintf("sweep missing %s at %d workers", engine, w))
				}
			}
		}
		dispatch := map[int]bool{}
		for _, d := range r.Dispatch {
			dispatch[d.Workers] = true
			if d.PoolGptss <= 0 || d.ForkJoinGptss <= 0 {
				add(name, fmt.Sprintf("dispatch[w=%d]: pool %v / forkjoin %v GPts/s, want both > 0",
					d.Workers, d.PoolGptss, d.ForkJoinGptss))
			}
		}
		for _, w := range []int{1, 4} {
			if !dispatch[w] {
				add(name, fmt.Sprintf("dispatch comparison missing w=%d", w))
			}
		}
		if r.PoolDispatches <= 0 {
			add(name, fmt.Sprintf("pool_dispatches = %d, want > 0 (the 4-rank run must drive the pool)", r.PoolDispatches))
		}
		if r.Obs.Total.PoolSyncNs <= 0 {
			add(name, "obs.total.pool_sync_ns = 0, want > 0 (pool counters not wired into the registry)")
		}
	}
	if timing {
		for _, d := range r.Dispatch {
			if d.Workers == 1 && d.PoolOverForkJoin < 0.85 {
				add(name, fmt.Sprintf("dispatch[w=1]: pool_over_forkjoin = %.3f, want >= 0.85 (both inline at w=1)", d.PoolOverForkJoin))
			}
			if d.Workers == 4 && r.HostCores >= 4 && d.PoolOverForkJoin < 0.9 {
				add(name, fmt.Sprintf("dispatch[w=4]: pool_over_forkjoin = %.3f on a %d-core host, want >= 0.9",
					d.PoolOverForkJoin, r.HostCores))
			}
		}
		if r.HostCores >= 4 {
			for _, pt := range r.Sweep {
				if pt.Engine == "native" && pt.Workers == 4 && pt.SpeedupVs1Worker < 2 {
					add(name, fmt.Sprintf("sweep[native w=4]: speedup_vs_1worker = %.2f on a %d-core host, want >= 2",
						pt.SpeedupVs1Worker, r.HostCores))
				}
			}
			if r.AutotuneModelWorkers <= 1 {
				add(name, fmt.Sprintf("autotune_model_workers = %d on a %d-core host, want > 1 (joint tuner must exploit the workers axis)",
					r.AutotuneModelWorkers, r.HostCores))
			}
		}
	}
}

// checkTimetileFile ports the time-tile jq gates: hard bit-exactness of
// every interval and both autotuned runs, the measured message-
// amortization ratios (elastic must reach ~1/k; everything must at
// least halve by k=8), and the model policy exploiting the k-axis on
// the latency-dominated acoustic scenario.
func checkTimetileFile(path string, add func(file, msg string)) {
	const name = "BENCH_timetile.json"
	var r TimeTileReport
	if !loadReport(path, &r, add) {
		return
	}
	for _, sc := range r.Scenarios {
		for _, m := range sc.Sweep {
			if !m.BitExact {
				add(name, fmt.Sprintf("scenario %s k=%d: bit_exact_vs_k1 = false", sc.Name, m.K))
			}
			// The two-stream elastic schedule must amortize to <= 1/k + eps
			// of the k=1 baseline; every scenario must cut messages >= 2x by
			// k=8 (acoustic pays a once-per-run hoisted parameter exchange
			// k=1 never does, so its k=4 ratio sits just above 1/2).
			if sc.Name == "elastic" {
				if m.K == 4 && m.MsgRatioVsK1 > 0.5 {
					add(name, fmt.Sprintf("elastic k=4: msg_ratio_vs_k1 = %.3f, want <= 0.5 (the 2x-at-k=4 acceptance figure)", m.MsgRatioVsK1))
				}
				if m.K == 4 && m.MsgRatioVsK1 > 0.30 {
					add(name, fmt.Sprintf("elastic k=4: msg_ratio_vs_k1 = %.3f, want <= 0.30", m.MsgRatioVsK1))
				}
				if m.K == 8 && m.MsgRatioVsK1 > 0.20 {
					add(name, fmt.Sprintf("elastic k=8: msg_ratio_vs_k1 = %.3f, want <= 0.20", m.MsgRatioVsK1))
				}
			}
			if m.K == 8 && m.MsgRatioVsK1 > 0.5 {
				add(name, fmt.Sprintf("scenario %s k=8: msg_ratio_vs_k1 = %.3f, want <= 0.5", sc.Name, m.MsgRatioVsK1))
			}
		}
		if !sc.Autotune.BitExact {
			add(name, fmt.Sprintf("scenario %s: autotune.bit_exact = false", sc.Name))
		}
		if sc.Name == "acoustic" && sc.Autotune.Model.TimeTile < 2 {
			add(name, fmt.Sprintf("acoustic autotune.model.time_tile = %d, want >= 2", sc.Autotune.Model.TimeTile))
		}
		if sc.Obs.Total.StepMsgs <= 0 {
			add(name, fmt.Sprintf("scenario %s: obs.total.step_msgs = 0, want > 0 (metrics registry not embedded)", sc.Name))
		}
	}
}
