package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/perfreport"
	"devigo/internal/propagators"
)

// ObsHost fingerprints the machine a sweep ran on; regression baselines
// only compare runs with identical fingerprints, so a laptop run never
// gates against a CI-runner history.
type ObsHost struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	MaxProcs  int    `json:"maxprocs"`
	NumCPU    int    `json:"numcpu"`
	GoVersion string `json:"go_version"`
}

func hostFingerprint() ObsHost {
	return ObsHost{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Key collapses the fingerprint into the string history entries are
// matched on.
func (h ObsHost) Key() string {
	return fmt.Sprintf("%s/%s/p%d/c%d/%s", h.OS, h.Arch, h.MaxProcs, h.NumCPU, h.GoVersion)
}

// ObsRun is one measured sweep point of the observatory.
type ObsRun struct {
	// Name keys the run in the history ("acoustic r4 diag k4").
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Ranks    int    `json:"ranks"`
	// Mode / K are the halo pattern and exchange interval (empty / 0 when
	// serial).
	Mode string `json:"mode,omitempty"`
	K    int    `json:"k,omitempty"`
	Size int    `json:"size"`
	NT   int    `json:"nt"`
	// Gptss is the measured steady-state throughput; Seconds the slowest
	// rank's compute+halo time.
	Gptss   float64 `json:"gptss"`
	Seconds float64 `json:"seconds"`
	// AI and GFlops place the run on the roofline: operational intensity
	// (flop/byte, from the kernel characterization) against achieved
	// flop rate (measured GPts/s x flops/point).
	AI            float64 `json:"ai"`
	GFlops        float64 `json:"gflops"`
	FlopsPerPoint int     `json:"flops_per_point"`
	// Measured* are the obs counters' per-rank-per-step traffic; Model*
	// the CommStats closed-form predictions. The sweep runs on a fully
	// periodic topology (every rank interior), where the two must agree.
	MeasuredMsgsPerStep  float64 `json:"measured_msgs_per_step,omitempty"`
	MeasuredBytesPerStep float64 `json:"measured_bytes_per_step,omitempty"`
	ModelMsgsPerStep     float64 `json:"model_msgs_per_step,omitempty"`
	ModelBytesPerStep    float64 `json:"model_bytes_per_step,omitempty"`
	// RecvWaitSec is the world-total receive-wait time.
	RecvWaitSec float64 `json:"recv_wait_sec,omitempty"`
	// Tuned marks autotuned (search-policy) runs; Regret is their
	// chosen-vs-best-measured-trial gap.
	Tuned  bool    `json:"tuned,omitempty"`
	Regret float64 `json:"autotune_regret,omitempty"`
	// Decisions is the tuner's decision log for tuned runs.
	Decisions []obs.Decision `json:"autotune_decisions,omitempty"`
}

// ObsBaseline is one run's comparison against the stored same-host
// history.
type ObsBaseline struct {
	Run string `json:"run"`
	// Gptss is the current measurement; Baseline the median of the last
	// (up to) 5 same-fingerprint history entries; Samples how many fed it.
	Gptss    float64 `json:"gptss"`
	Baseline float64 `json:"baseline,omitempty"`
	Samples  int     `json:"samples"`
	// Ratio is Gptss/Baseline (0 without a baseline); Regressed marks
	// ratio < regressThreshold.
	Ratio     float64 `json:"ratio,omitempty"`
	Regressed bool    `json:"regressed"`
}

// ObservatoryReport is the BENCH_observatory.json schema.
type ObservatoryReport struct {
	GeneratedAt string        `json:"generated_at"`
	Host        ObsHost       `json:"host"`
	Runs        []ObsRun      `json:"runs"`
	Baselines   []ObsBaseline `json:"baselines"`
	// Regressions counts baselined runs that fell below the threshold.
	Regressions int `json:"regressions"`
	// HistoryEntries is the history length after appending this sweep.
	HistoryEntries int `json:"history_entries"`
}

// HistoryEntry is one stored sweep: a timestamp, the host fingerprint
// and the per-run throughputs.
type HistoryEntry struct {
	Time  string             `json:"time"`
	Host  ObsHost            `json:"host"`
	Gptss map[string]float64 `json:"gptss"`
}

// History is the BENCH_history.json schema — the observatory's stored
// run record, bounded to historyCap entries.
type History struct {
	Entries []HistoryEntry `json:"entries"`
}

const (
	// regressThreshold fails a run measuring below this fraction of its
	// same-host baseline median (>15% slowdown).
	regressThreshold = 0.85
	// baselineWindow is how many recent same-host entries feed the median.
	baselineWindow = 5
	// historyCap bounds the stored history.
	historyCap = 100
)

// runObservatory executes the continuous-perf sweep: measure every
// configured scenario x ranks x mode x interval point, compare against
// the same-host history, persist history + report + HTML, and fail on
// regression unless regressWarn downgrades it to a warning (the first
// run on a host has no baseline and only warns).
func runObservatory(outDir, historyPath string, regressWarn bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if historyPath == "" {
		historyPath = filepath.Join(outDir, "BENCH_history.json")
	}
	host := hostFingerprint()
	fmt.Printf("Perf observatory sweep on %s\n", host.Key())

	runs, err := observatorySweep()
	if err != nil {
		return err
	}

	hist, err := loadHistory(historyPath)
	if err != nil {
		return err
	}
	report := ObservatoryReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        host,
		Runs:        runs,
	}
	for _, r := range runs {
		b := baselineOf(hist, host, r.Name, r.Gptss)
		report.Baselines = append(report.Baselines, b)
		if b.Regressed {
			report.Regressions++
		}
	}

	entry := HistoryEntry{Time: report.GeneratedAt, Host: host, Gptss: map[string]float64{}}
	for _, r := range runs {
		entry.Gptss[r.Name] = r.Gptss
	}
	hist.Entries = append(hist.Entries, entry)
	if len(hist.Entries) > historyCap {
		hist.Entries = hist.Entries[len(hist.Entries)-historyCap:]
	}
	report.HistoryEntries = len(hist.Entries)
	if err := writeJSON(historyPath, &hist); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(outDir, "BENCH_observatory.json"), &report); err != nil {
		return err
	}
	htmlPath := filepath.Join(outDir, "observatory.html")
	if err := os.WriteFile(htmlPath, []byte(observatoryHTML(&report, &hist)), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s, %s, %s\n", filepath.Join(outDir, "BENCH_observatory.json"), historyPath, htmlPath)

	baselined := 0
	for _, b := range report.Baselines {
		if b.Samples > 0 {
			baselined++
			state := "ok"
			if b.Regressed {
				state = "REGRESSED"
			}
			fmt.Printf("  %-28s %8.4f GPts/s  baseline %8.4f (x%.2f, %d samples)  %s\n",
				b.Run, b.Gptss, b.Baseline, b.Ratio, b.Samples, state)
		}
	}
	if baselined == 0 {
		fmt.Println("  no same-host baseline yet (first observatory run on this fingerprint): recording only")
	}
	if report.Regressions > 0 {
		msg := fmt.Errorf("%d run(s) regressed >%d%% below the same-host baseline median",
			report.Regressions, int((1-regressThreshold)*100))
		if regressWarn {
			fmt.Println("  WARNING:", msg)
			return nil
		}
		return msg
	}
	return nil
}

// runObservatoryDiff is the observatory's -diff mode: instead of
// sweeping, it loads the stored history and prints the per-run
// throughput delta between two entries. spec is "a,b" where each side
// resolves an entry by exact timestamp or by integer index (0 = oldest;
// negative counts back from the newest, so "-2,-1" compares the last two
// runs). Cross-host comparisons are allowed but flagged, since absolute
// throughput only means something on one fingerprint.
func runObservatoryDiff(outDir, historyPath, spec string) error {
	if historyPath == "" {
		historyPath = filepath.Join(outDir, "BENCH_history.json")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants two comma-separated entries, got %q", spec)
	}
	hist, err := loadHistory(historyPath)
	if err != nil {
		return err
	}
	if len(hist.Entries) == 0 {
		return fmt.Errorf("%s holds no history entries", historyPath)
	}
	a, err := resolveHistoryEntry(hist, strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	b, err := resolveHistoryEntry(hist, strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	fmt.Printf("Observatory diff: %s -> %s\n", a.Time, b.Time)
	if a.Host.Key() != b.Host.Key() {
		fmt.Printf("  WARNING: entries ran on different hosts (%s vs %s); ratios are not comparable\n",
			a.Host.Key(), b.Host.Key())
	}
	names := make([]string, 0, len(a.Gptss)+len(b.Gptss))
	seen := map[string]bool{}
	for name := range a.Gptss {
		names = append(names, name)
		seen[name] = true
	}
	for name := range b.Gptss {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-28s %12s %12s %8s\n", "run", "a GPts/s", "b GPts/s", "b/a")
	for _, name := range names {
		ga, oka := a.Gptss[name]
		gb, okb := b.Gptss[name]
		switch {
		case !oka:
			fmt.Printf("%-28s %12s %12.4f %8s\n", name, "-", gb, "new")
		case !okb:
			fmt.Printf("%-28s %12.4f %12s %8s\n", name, ga, "-", "gone")
		default:
			tag := ""
			if ga > 0 {
				ratio := gb / ga
				tag = fmt.Sprintf("%.2fx", ratio)
				if ratio < regressThreshold {
					tag += " REGRESSED"
				}
			}
			fmt.Printf("%-28s %12.4f %12.4f %8s\n", name, ga, gb, tag)
		}
	}
	return nil
}

// resolveHistoryEntry finds one history entry by exact timestamp match,
// falling back to an integer index (negative from the newest entry).
func resolveHistoryEntry(hist History, key string) (HistoryEntry, error) {
	for _, e := range hist.Entries {
		if e.Time == key {
			return e, nil
		}
	}
	idx, err := strconv.Atoi(key)
	if err != nil {
		return HistoryEntry{}, fmt.Errorf("history entry %q: no such timestamp and not an index", key)
	}
	if idx < 0 {
		idx += len(hist.Entries)
	}
	if idx < 0 || idx >= len(hist.Entries) {
		return HistoryEntry{}, fmt.Errorf("history index %q out of range (0..%d)", key, len(hist.Entries)-1)
	}
	return hist.Entries[idx], nil
}

// observatorySweep measures every sweep point. Serial points carry the
// roofline placement; 4-rank periodic points carry the measured-vs-model
// traffic; tuned points carry the decision log and regret.
func observatorySweep() ([]ObsRun, error) {
	var runs []ObsRun
	for _, model := range []string{"acoustic", "elastic"} {
		r, err := observatorySerial(model, 128, 12, false)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", model, err)
		}
		runs = append(runs, r)
		// The tuned run needs headroom past the search budget (warmup +
		// trials) so steady-state steps remain for the throughput figure.
		t, err := observatorySerial(model, 128, 32, true)
		if err != nil {
			return nil, fmt.Errorf("%s tuned: %w", model, err)
		}
		runs = append(runs, t)
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			for _, k := range []int{1, 4} {
				r, err := observatoryDMP(model, mode, 64, 8, k)
				if err != nil {
					return nil, fmt.Errorf("%s r4 %s k=%d: %w", model, mode, k, err)
				}
				runs = append(runs, r)
			}
		}
	}
	return runs, nil
}

// observatorySerial measures one serial run; tuned runs use the search
// autotune policy and keep the decision log.
func observatorySerial(model string, size, nt int, tuned bool) (ObsRun, error) {
	obs.EnableMetrics()
	obs.Reset()
	m, err := propagators.Build(model, propagators.Config{
		Shape: []int{size, size}, SpaceOrder: 4, NBL: 8, Velocity: 1.5,
	})
	if err != nil {
		return ObsRun{}, err
	}
	rc := propagators.RunConfig{NT: nt}
	name := model + " serial"
	if tuned {
		rc.Autotune = core.AutotuneSearch
		name = model + " tuned"
	}
	res, err := propagators.Run(m, nil, rc)
	if err != nil {
		return ObsRun{}, err
	}
	kc, err := perfreport.Characterize(model, 4)
	if err != nil {
		return ObsRun{}, err
	}
	snap := obs.Snapshot()
	out := ObsRun{
		Name: name, Scenario: model, Ranks: 1, Size: size, NT: nt,
		Gptss:         res.Perf.GPtss(),
		Seconds:       res.Perf.ComputeSeconds + res.Perf.HaloSeconds,
		AI:            kc.OperationalIntensity(),
		FlopsPerPoint: res.Perf.FlopsPerPoint,
		Tuned:         tuned,
	}
	out.GFlops = out.Gptss * float64(out.FlopsPerPoint)
	if tuned {
		out.Regret = snap.Regret
		out.Decisions = snap.Decisions
	}
	if out.Gptss <= 0 {
		return out, fmt.Errorf("degenerate throughput")
	}
	return out, nil
}

// observatoryDMP measures one 4-rank run on a fully periodic topology
// (every rank interior, so the closed-form traffic model applies exactly)
// and records both the measured obs counters and the model prediction.
func observatoryDMP(model string, mode halo.Mode, size, nt, k int) (ObsRun, error) {
	obs.EnableMetrics()
	obs.Reset()
	const ranks = 4
	shape := []int{size, size}
	var stats core.CommStats
	var gptss, seconds float64
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, []bool{true, true})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cfg := propagators.Config{Shape: shape, SpaceOrder: 4, NBL: 2,
			Velocity: 1.5, Decomp: dec, Rank: c.Rank()}
		m, err := propagators.Build(model, cfg)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := propagators.Run(m, ctx, propagators.RunConfig{NT: nt, TimeTile: k, Workers: 1})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		sec := res.Perf.ComputeSeconds + res.Perf.HaloSeconds
		sec = c.AllreduceScalar(sec, mpi.OpMax)
		pts := c.AllreduceScalar(float64(res.Perf.PointsUpdated), mpi.OpSum)
		if c.Rank() == 0 {
			stats = res.Op.CommStats()
			seconds = sec
			if sec > 0 {
				gptss = pts / sec / 1e9
			}
		}
	})
	if err != nil {
		return ObsRun{}, err
	}
	for _, e := range errs {
		if e != nil {
			return ObsRun{}, e
		}
	}
	kc, err := perfreport.Characterize(model, 4)
	if err != nil {
		return ObsRun{}, err
	}
	total := obs.Snapshot().Total
	perStep := float64(nt) * ranks
	out := ObsRun{
		Name:     fmt.Sprintf("%s r%d %s k%d", model, ranks, mode, k),
		Scenario: model, Ranks: ranks, Mode: mode.String(), K: k,
		Size: size, NT: nt,
		Gptss: gptss, Seconds: seconds,
		AI:                   kc.OperationalIntensity(),
		MeasuredMsgsPerStep:  float64(total.StepMsgs) / perStep,
		MeasuredBytesPerStep: float64(total.StepBytes) / perStep,
		ModelMsgsPerStep:     stats.MsgsPerStep,
		ModelBytesPerStep:    stats.BytesPerStep,
		RecvWaitSec:          float64(total.RecvWaitNs) / 1e9,
	}
	if gptss <= 0 {
		return out, fmt.Errorf("degenerate throughput")
	}
	return out, nil
}

// baselineOf computes one run's same-host baseline: the median Gptss of
// its last baselineWindow same-fingerprint history entries.
func baselineOf(hist History, host ObsHost, run string, gptss float64) ObsBaseline {
	b := ObsBaseline{Run: run, Gptss: gptss}
	var vals []float64
	for i := len(hist.Entries) - 1; i >= 0 && len(vals) < baselineWindow; i-- {
		e := hist.Entries[i]
		if e.Host.Key() != host.Key() {
			continue
		}
		if v, ok := e.Gptss[run]; ok && v > 0 {
			vals = append(vals, v)
		}
	}
	b.Samples = len(vals)
	if len(vals) == 0 {
		return b
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		b.Baseline = vals[mid]
	} else {
		b.Baseline = (vals[mid-1] + vals[mid]) / 2
	}
	if b.Baseline > 0 {
		b.Ratio = gptss / b.Baseline
		b.Regressed = b.Ratio < regressThreshold
	}
	return b
}

func loadHistory(path string) (History, error) {
	var h History
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return h, nil
	}
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return h, fmt.Errorf("%s: %w (delete it to start a fresh history)", path, err)
	}
	return h, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
