package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/propagators"
	devruntime "devigo/internal/runtime"
)

// HybridSweepPoint is one engine x worker-count measurement of the
// persistent-pool scaling sweep. BitExact records that the run's norm and
// receiver traces matched the same engine's 1-worker run bit for bit —
// the shared-memory tier's correctness contract.
type HybridSweepPoint struct {
	Engine  string  `json:"engine"`
	Workers int     `json:"workers"`
	Gptss   float64 `json:"gptss"`
	// SpeedupVs1Worker isolates pure worker scaling within one engine.
	SpeedupVs1Worker float64 `json:"speedup_vs_1worker"`
	BitExact         bool    `json:"bit_exact_vs_1worker"`
}

// HybridDispatchPoint compares the persistent pool against the legacy
// per-call fork-join dispatch at one worker count (native engine, same
// tiles in the same per-tile order, so the results are bit-identical and
// only the dispatch mechanism differs).
type HybridDispatchPoint struct {
	Workers          int     `json:"workers"`
	PoolGptss        float64 `json:"pool_gptss"`
	ForkJoinGptss    float64 `json:"forkjoin_gptss"`
	PoolOverForkJoin float64 `json:"pool_over_forkjoin"`
}

// HybridReport is the BENCH_hybrid.json schema: the MPI+X shared-memory
// tier's certification record — zero-allocation dispatch, pool-vs-
// fork-join overhead, worker scaling with bit-exactness, the measured
// dispatch sync cost, the joint autotuner's worker choice and the pool's
// obs counters from a 4-rank full-overlap run.
type HybridReport struct {
	Scenario   string `json:"scenario"`
	Shape      []int  `json:"shape"`
	SpaceOrder int    `json:"space_order"`
	NT         int    `json:"nt"`
	// HostCores / HostMaxProcs fingerprint the generating machine: the
	// scaling and autotuner-selection gates only apply when the host had
	// >= 4 cores (a 1-core container caps worker parallelism physically,
	// not logically).
	HostCores    int `json:"host_cores"`
	HostMaxProcs int `json:"host_maxprocs"`
	// PoolDispatchAllocs is the heap allocations per pool dispatch in
	// steady state, measured over many raw Pool.Run calls on a warmed
	// 4-worker team. The dispatch protocol performs no goroutine, channel
	// or closure allocation, so this must be exactly 0.
	PoolDispatchAllocs float64 `json:"pool_dispatch_allocs"`
	// SteadyAllocsPerStep is the full native-engine Apply path's amortized
	// per-timestep allocations on a 4-worker operator (long run minus
	// short run, divided by the extra steps — per-Apply setup cancels).
	// The kernel dispatch contributes zero; the small residual is the
	// source-injection wrapper.
	SteadyAllocsPerStep float64 `json:"steady_allocs_per_step"`
	// SyncCostSec is the measured per-dispatch fork-join overhead of a
	// 4-worker pool on this machine (Pool.SyncCost) — the figure the
	// autotuner injects as perfmodel.Host.PoolSync.
	SyncCostSec float64               `json:"sync_cost_sec"`
	Dispatch    []HybridDispatchPoint `json:"dispatch"`
	Sweep       []HybridSweepPoint    `json:"sweep"`
	// AutotuneModelWorkers / AutotuneSearchWorkers are the worker counts
	// the two policies settle on with the (mode x workers x tile x k)
	// space open; on a multi-core host the model policy must exploit the
	// workers axis.
	AutotuneModelWorkers  int            `json:"autotune_model_workers"`
	AutotuneSearchWorkers int            `json:"autotune_search_workers"`
	AutotuneDecisions     []obs.Decision `json:"autotune_decisions,omitempty"`
	// Pool* snapshot rank 0's pool counters after the 4-rank full-mode
	// time-tiled run (persistent team surviving every step, stealing
	// enabled on the shell sweeps).
	PoolDispatches int64 `json:"pool_dispatches"`
	PoolSyncNs     int64 `json:"pool_sync_ns"`
	PoolIdleNs     int64 `json:"pool_idle_ns"`
	PoolSteals     int64 `json:"pool_steals"`
	// Obs embeds the metrics registry of the 4-rank run (worker streams,
	// pool counters aggregated over all ranks).
	Obs obs.Metrics `json:"obs"`
}

// hybridSO is the experiment's fixed space order: deep enough for real
// per-tile work, cheap enough that the interpreter leg of the sweep
// stays fast.
const hybridSO = 4

// hybridTask is the minimal real Task of the raw-dispatch certification:
// every tile bumps its own slot, so the work is observable but
// allocation-free by construction.
type hybridTask struct{ hits []int64 }

func (t *hybridTask) RunTile(w, tile int) { t.hits[tile]++ }

// runHybrid measures the persistent MPI+X worker runtime and writes
// BENCH_hybrid.json: allocation certification, pool-vs-fork-join
// dispatch comparison, a worker scaling sweep over all three engines
// with bit-exactness against the 1-worker baseline, the joint
// autotuner's worker selection and the pool counters of a 4-rank
// full-overlap time-tiled run.
func runHybrid(size, nt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	report := HybridReport{
		Scenario: "hybrid", Shape: []int{size, size}, SpaceOrder: hybridSO, NT: nt,
		HostCores: goruntime.NumCPU(), HostMaxProcs: goruntime.GOMAXPROCS(0),
	}
	fmt.Printf("MPI+X hybrid runtime, %dx%d so-%02d, %d timesteps (this machine, %d cores)\n",
		size, size, hybridSO, nt, report.HostCores)

	// --- Zero-allocation dispatch certification ---------------------------
	obs.DisableAll()
	obs.Reset()
	report.PoolDispatchAllocs = measurePoolDispatchAllocs()
	var err error
	if report.SteadyAllocsPerStep, err = measureSteadyAllocsPerStep(size); err != nil {
		return fmt.Errorf("steady-state alloc measurement: %w", err)
	}
	fmt.Printf("  pool dispatch allocs: %.3f/dispatch   steady engine allocs: %.3f/step\n",
		report.PoolDispatchAllocs, report.SteadyAllocsPerStep)

	// --- Measured dispatch sync cost --------------------------------------
	p := devruntime.NewPool(4, 0)
	report.SyncCostSec = p.SyncCost()
	p.Close()
	fmt.Printf("  pool sync cost (4 workers): %.2f us/dispatch\n", report.SyncCostSec*1e6)

	// --- Pool vs fork-join dispatch ---------------------------------------
	fmt.Printf("%-10s %14s %14s %12s\n", "dispatch", "pool GPts/s", "forkjoin", "pool/fj")
	for _, w := range []int{1, 4} {
		pool, err := hybridRun(core.EngineNative, w, nt, size, false)
		if err != nil {
			return err
		}
		fj, err := hybridRun(core.EngineNative, w, nt, size, true)
		if err != nil {
			return err
		}
		pt := HybridDispatchPoint{Workers: w,
			PoolGptss: pool.Perf.GPtss(), ForkJoinGptss: fj.Perf.GPtss()}
		if pt.ForkJoinGptss > 0 {
			pt.PoolOverForkJoin = pt.PoolGptss / pt.ForkJoinGptss
		}
		report.Dispatch = append(report.Dispatch, pt)
		fmt.Printf("w=%-8d %14.4f %14.4f %11.2fx\n", w, pt.PoolGptss, pt.ForkJoinGptss, pt.PoolOverForkJoin)
	}

	// --- Worker scaling sweep, all three engines --------------------------
	fmt.Printf("%-14s %8s %14s %10s %10s\n", "engine", "workers", "GPts/s", "vs w=1", "bit-exact")
	for _, engine := range []string{core.EngineInterpreter, core.EngineBytecode, core.EngineNative} {
		ref, err := hybridRun(engine, 1, nt, size, false)
		if err != nil {
			return err
		}
		for _, w := range []int{1, 2, 4, 7} {
			res := ref
			if w != 1 {
				if res, err = hybridRun(engine, w, nt, size, false); err != nil {
					return err
				}
			}
			pt := HybridSweepPoint{Engine: engine, Workers: w, Gptss: res.Perf.GPtss(),
				BitExact: hybridBitExact(ref, res)}
			if ref.Perf.GPtss() > 0 {
				pt.SpeedupVs1Worker = pt.Gptss / ref.Perf.GPtss()
			}
			report.Sweep = append(report.Sweep, pt)
			fmt.Printf("%-14s %8d %14.4f %9.2fx %10v\n", engine, w, pt.Gptss, pt.SpeedupVs1Worker, pt.BitExact)
		}
	}

	// --- Joint autotuner worker selection ---------------------------------
	obs.EnableMetrics()
	obs.Reset()
	mw, sw, decisions, err := hybridAutotune(size)
	if err != nil {
		return err
	}
	obs.DisableAll()
	obs.Reset()
	report.AutotuneModelWorkers, report.AutotuneSearchWorkers = mw, sw
	report.AutotuneDecisions = decisions
	fmt.Printf("  autotune worker choice: model=%d search=%d (max %d)\n", mw, sw, report.HostMaxProcs)

	// --- Pool counters under MPI+X full overlap ---------------------------
	if err := hybridDMP(size, nt, &report); err != nil {
		return err
	}
	fmt.Printf("  4-rank full/k4 pool: %d dispatches, sync %.2f ms, idle %.2f ms, %d steals\n",
		report.PoolDispatches, float64(report.PoolSyncNs)/1e6,
		float64(report.PoolIdleNs)/1e6, report.PoolSteals)

	path := filepath.Join(outDir, "BENCH_hybrid.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// measurePoolDispatchAllocs times nothing — it counts heap allocations
// across many dispatches on a warmed 4-worker team (all goroutines
// included: a parked worker that allocated on wake would show up here).
func measurePoolDispatchAllocs() float64 {
	const ntiles, rounds = 64, 200
	p := devruntime.NewPool(4, 0)
	defer p.Close()
	task := &hybridTask{hits: make([]int64, ntiles)}
	for i := 0; i < 16; i++ {
		p.Run(task, ntiles, i, i%2 == 0, nil)
	}
	goruntime.GC()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	for i := 0; i < rounds; i++ {
		p.Run(task, ntiles, i, i%2 == 0, nil)
	}
	goruntime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / rounds
}

// measureSteadyAllocsPerStep isolates the per-timestep allocations of
// the full engine path on a pooled operator: a long run and a short run
// pay identical build/compile/spawn costs, so the malloc-count delta
// over the extra steps is the steady-state figure.
func measureSteadyAllocsPerStep(size int) (float64, error) {
	const short, long = 10, 110
	run := func(nt int) (uint64, error) {
		m, err := propagators.Build("acoustic", propagators.Config{
			Shape: []int{size, size}, SpaceOrder: hybridSO, NBL: 8, Velocity: 1.5,
		})
		if err != nil {
			return 0, err
		}
		goruntime.GC()
		var m0, m1 goruntime.MemStats
		goruntime.ReadMemStats(&m0)
		res, err := propagators.Run(m, nil, propagators.RunConfig{
			NT: nt, Engine: core.EngineNative, Workers: 4, TileRows: 4,
		})
		goruntime.ReadMemStats(&m1)
		if err != nil {
			return 0, err
		}
		res.Op.Close()
		return m1.Mallocs - m0.Mallocs, nil
	}
	if _, err := run(short); err != nil { // warm code paths once
		return 0, err
	}
	s, err := run(short)
	if err != nil {
		return 0, err
	}
	l, err := run(long)
	if err != nil {
		return 0, err
	}
	if l < s {
		return 0, nil
	}
	return float64(l-s) / float64(long-short), nil
}

// hybridRun builds a fresh acoustic model (every run needs pristine
// initial state for the bit-exactness comparison) and measures nt steps.
func hybridRun(engine string, workers, nt, size int, forkJoin bool) (*propagators.RunResult, error) {
	m, err := propagators.Build("acoustic", propagators.Config{
		Shape: []int{size, size}, SpaceOrder: hybridSO, NBL: 8, Velocity: 1.5,
	})
	if err != nil {
		return nil, err
	}
	res, err := propagators.Run(m, nil, propagators.RunConfig{
		NT: nt, NReceivers: 4, Engine: engine,
		Workers: workers, TileRows: 4, ForkJoin: forkJoin,
	})
	if err != nil {
		return nil, fmt.Errorf("%s w=%d forkJoin=%v: %w", engine, workers, forkJoin, err)
	}
	res.Op.Close()
	if res.Perf.GPtss() <= 0 {
		return nil, fmt.Errorf("%s w=%d: degenerate measurement (no throughput)", engine, workers)
	}
	return res, nil
}

// hybridBitExact compares two runs' norms and receiver traces exactly
// (==, no tolerance): the static tile partition makes every worker count
// execute identical floating-point operations in identical order.
func hybridBitExact(a, b *propagators.RunResult) bool {
	if a.Norm != b.Norm || len(a.Receivers) != len(b.Receivers) {
		return false
	}
	for t := range a.Receivers {
		for r := range a.Receivers[t] {
			if a.Receivers[t][r] != b.Receivers[t][r] {
				return false
			}
		}
	}
	return true
}

// hybridAutotune lets both policies configure a fresh operator with the
// workers axis open and reports their chosen team sizes plus the
// decision log.
func hybridAutotune(size int) (modelW, searchW int, decisions []obs.Decision, err error) {
	tuned := func(policy string, nt int) (int, error) {
		m, err := propagators.Build("acoustic", propagators.Config{
			Shape: []int{size, size}, SpaceOrder: hybridSO, NBL: 8, Velocity: 1.5,
		})
		if err != nil {
			return 0, err
		}
		res, err := propagators.Run(m, nil, propagators.RunConfig{
			NT: nt, Engine: core.EngineNative, Autotune: policy,
		})
		if err != nil {
			return 0, fmt.Errorf("autotune %s: %w", policy, err)
		}
		w := res.Op.Config().Workers
		res.Op.Close()
		return w, nil
	}
	if modelW, err = tuned(core.AutotuneModel, 16); err != nil {
		return 0, 0, nil, err
	}
	// The search policy spends warmup + trial steps before settling; give
	// it headroom past the budget so the choice is measured, not an
	// early-settle fallback.
	if searchW, err = tuned(core.AutotuneSearch, 64); err != nil {
		return 0, 0, nil, err
	}
	return modelW, searchW, obs.Snapshot().Decisions, nil
}

// hybridDMP runs the MPI+X composition — 4 ranks x 4 workers, full
// overlap mode, exchange interval 4 (stealing live on the shrinking
// shell sweeps) — and snapshots rank 0's pool counters plus the obs
// registry into the report.
func hybridDMP(size, nt int, report *HybridReport) error {
	obs.EnableMetrics()
	obs.Reset()
	defer func() {
		obs.DisableAll()
		obs.Reset()
	}()
	const ranks = 4
	shape := []int{size, size}
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cfg := propagators.Config{Shape: shape, SpaceOrder: hybridSO, NBL: 2,
			Velocity: 1.5, Decomp: dec, Rank: c.Rank()}
		m, err := propagators.Build("acoustic", cfg)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeFull}
		res, err := propagators.Run(m, ctx, propagators.RunConfig{
			NT: nt, Engine: core.EngineNative, Workers: 4, TileRows: 4, TimeTile: 4,
		})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		if c.Rank() == 0 {
			if p := res.Op.Pool(); p != nil {
				st := p.Stats()
				report.PoolDispatches = st.Dispatches
				report.PoolSyncNs = st.SyncNs
				report.PoolIdleNs = st.IdleNs
				report.PoolSteals = st.Steals
			}
		}
		res.Op.Close()
	})
	if err != nil {
		return err
	}
	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("rank %d: %w", r, e)
		}
	}
	report.Obs = obs.Snapshot()
	return nil
}
