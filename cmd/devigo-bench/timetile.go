package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/propagators"
)

// TimeTileKMetrics records one exchange interval's measured 4-rank run.
type TimeTileKMetrics struct {
	// K is the requested interval; EffectiveK what the compiler adopted
	// (chunk feasibility may clamp, untileable schedules fall back to 1).
	K          int `json:"k"`
	EffectiveK int `json:"effective_k"`
	// Seconds is the slowest rank's compute+halo time; Gptss the derived
	// throughput (redundant shell points included in the point count).
	Seconds float64 `json:"seconds"`
	Gptss   float64 `json:"gptss"`
	// Norm is the global wavefield checksum; BitExact compares it (and
	// the absence of NaNs) against the k=1 reference with ==.
	Norm     float64 `json:"norm"`
	BitExact bool    `json:"bit_exact_vs_k1"`
	// MsgsPerStep/BytesPerStep are *real* counters from the in-process
	// MPI accounting divided by the step count (includes the once-per-run
	// preamble and one final norm reduction — amortized noise).
	MsgsPerStep  float64 `json:"msgs_per_step"`
	BytesPerStep float64 `json:"bytes_per_step"`
	// MsgRatioVsK1 is MsgsPerStep over the k=1 run's figure.
	MsgRatioVsK1 float64 `json:"msg_ratio_vs_k1"`
	// ModelMsgsPerStep is the halo.AmortizedTraffic steady-state figure
	// (core.Operator.CommStats) for cross-checking the counters.
	ModelMsgsPerStep float64              `json:"model_msgs_per_step"`
	Config           core.EffectiveConfig `json:"config"`
}

// TimeTileAutotune records what each policy chose with the k-axis open.
type TimeTileAutotune struct {
	// Model/Search are the effective configurations the two policies
	// adopted (the model policy is deterministic; search measures live
	// timesteps). BitExact confirms both autotuned norms equal the k=1
	// reference.
	Model    core.EffectiveConfig `json:"model"`
	Search   core.EffectiveConfig `json:"search"`
	BitExact bool                 `json:"bit_exact"`
}

// TimeTileScenario is one scenario block of BENCH_timetile.json.
type TimeTileScenario struct {
	Name       string             `json:"name"`
	Shape      []int              `json:"shape"`
	SpaceOrder int                `json:"space_order"`
	NT         int                `json:"nt"`
	Ranks      int                `json:"ranks"`
	Mode       string             `json:"mode"`
	Sweep      []TimeTileKMetrics `json:"sweep"`
	// SpeedupBestK is the best swept interval's time over the k=1 time.
	SpeedupBestK float64          `json:"speedup_best_k_over_k1"`
	Autotune     TimeTileAutotune `json:"autotune"`
	// Obs is the scenario's metrics-registry snapshot across the whole
	// sweep (measured traffic, redundant shell points, recv-wait time).
	Obs obs.Metrics `json:"obs"`
}

// TimeTileReport is the BENCH_timetile.json schema: the
// communication-avoiding deep-halo sweep per scenario.
type TimeTileReport struct {
	Ks        []int              `json:"ks"`
	Scenarios []TimeTileScenario `json:"scenarios"`
}

// ttRunOut is one measured run.
type ttRunOut struct {
	seconds  float64
	norm     float64
	eff      core.EffectiveConfig
	msgs     int
	bytes    int64
	modelMsg float64
	points   int64
}

// runTimetile sweeps the exchange interval k over {1,2,4,8} per scenario
// on a 4-rank world, certifying bit-exactness against k=1 and recording
// real message counters, and lets both autotune policies choose with the
// k-axis open. Bit-exactness violations are errors (CI consumes the exit
// status); the latency-dependent gates live in the CI jq checks.
func runTimetile(models []string, sos []int, size, nt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ks := []int{1, 2, 4, 8}
	report := TimeTileReport{Ks: ks}
	if len(models) == 1 && models[0] == "acoustic" {
		// The default sweep covers the single-cluster and the
		// two-cluster (staggered) schedules.
		models = []string{"acoustic", "elastic"}
	}
	for _, so := range sos {
		for _, model := range models {
			name := model
			if len(sos) > 1 {
				name = fmt.Sprintf("%s_so%d", model, so)
			}
			block, err := runTimetileScenario(name, model, size, so, nt, ks)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			report.Scenarios = append(report.Scenarios, *block)
		}
	}
	path := filepath.Join(outDir, "BENCH_timetile.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func runTimetileScenario(name, model string, size, so, nt int, ks []int) (*TimeTileScenario, error) {
	obs.EnableMetrics()
	obs.Reset()
	shape := []int{size, size}
	const ranks = 4
	mode := halo.ModeDiagonal
	block := &TimeTileScenario{
		Name: name, Shape: shape, SpaceOrder: so, NT: nt, Ranks: ranks, Mode: mode.String(),
	}
	fmt.Printf("Time-tile sweep %s: %dx%d so-%02d nt=%d ranks=%d mode=%s\n",
		name, size, size, so, nt, ranks, mode)

	var ref ttRunOut
	for i, k := range ks {
		r, err := timetileRunOne(model, shape, so, nt, k, "")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			ref = r
		}
		bitExact := r.norm == ref.norm && r.norm == r.norm
		if !bitExact {
			return nil, fmt.Errorf("k=%d norm %v != k=1 norm %v (time tiling broke bit-exactness)", k, r.norm, ref.norm)
		}
		m := TimeTileKMetrics{
			K: k, EffectiveK: r.eff.TimeTile,
			Seconds: r.seconds, Norm: r.norm, BitExact: bitExact,
			MsgsPerStep:      float64(r.msgs) / float64(nt),
			BytesPerStep:     float64(r.bytes) / float64(nt),
			ModelMsgsPerStep: r.modelMsg,
			Config:           r.eff,
		}
		if r.seconds > 0 {
			m.Gptss = float64(r.points) / r.seconds / 1e9
		}
		if refMsgs := float64(ref.msgs); refMsgs > 0 {
			m.MsgRatioVsK1 = float64(r.msgs) / refMsgs
		}
		block.Sweep = append(block.Sweep, m)
		fmt.Printf("  k=%d (eff %d): %.4fs, %.1f msgs/step (ratio %.2f), bit_exact=%v\n",
			k, m.EffectiveK, m.Seconds, m.MsgsPerStep, m.MsgRatioVsK1, m.BitExact)
	}
	best := block.Sweep[0].Seconds
	for _, m := range block.Sweep[1:] {
		if m.Seconds < best {
			best = m.Seconds
		}
	}
	if best > 0 {
		block.SpeedupBestK = block.Sweep[0].Seconds / best
	}

	block.Autotune.BitExact = true
	for _, policy := range []string{core.AutotuneModel, core.AutotuneSearch} {
		r, err := timetileRunOne(model, shape, so, nt, core.MaxTileCandidate, policy)
		if err != nil {
			return nil, err
		}
		if r.norm != ref.norm {
			block.Autotune.BitExact = false
		}
		if policy == core.AutotuneModel {
			block.Autotune.Model = r.eff
		} else {
			block.Autotune.Search = r.eff
		}
		fmt.Printf("  autotune %-6s chose mode=%s k=%d workers=%d tile_rows=%d\n",
			policy, r.eff.Mode, r.eff.TimeTile, r.eff.Workers, r.eff.TileRows)
	}
	if !block.Autotune.BitExact {
		return nil, fmt.Errorf("autotuned runs diverged from the k=1 reference")
	}
	block.Obs = obs.Snapshot()
	return block, nil
}

// timetileRunOne measures one 4-rank run: forced to interval k when
// policy is empty, else self-configuring (with ghost capacity for the
// full k-axis). Receivers are disabled so the MPI counters see halo
// traffic plus only the final norm reduction.
func timetileRunOne(model string, shape []int, so, nt, k int, policy string) (ttRunOut, error) {
	var out ttRunOut
	const ranks = 4
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), nil)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		cfg := propagators.Config{Shape: shape, SpaceOrder: so, NBL: 8, Velocity: 1.5,
			Decomp: dec, Rank: c.Rank()}
		m, err := propagators.Build(model, cfg)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
		rc := propagators.RunConfig{NT: nt, TimeTile: k, Autotune: policy}
		if policy == "" {
			rc.Autotune = core.AutotuneOff
		}
		res, err := propagators.Run(m, ctx, rc)
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		sec := res.Perf.ComputeSeconds + res.Perf.HaloSeconds
		sec = c.AllreduceScalar(sec, mpi.OpMax)
		if c.Rank() == 0 {
			cs := res.Op.CommStats()
			out = ttRunOut{
				seconds:  sec,
				norm:     res.Norm,
				eff:      res.Op.Config(),
				modelMsg: cs.MsgsPerStep,
				points:   res.Perf.PointsUpdated,
			}
		}
	})
	if err != nil {
		return out, err
	}
	for _, e := range errs {
		if e != nil {
			return out, e
		}
	}
	for _, s := range w.StatsSnapshot() {
		out.msgs += s.MsgsSent
		out.bytes += s.BytesSent
	}
	return out, nil
}
