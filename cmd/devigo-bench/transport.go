package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/propagators"
)

// -exp transport benchmarks the delivery substrates against each other:
// the same 4-rank acoustic run executes once over the in-process
// transport (goroutine ranks, shared memory) and once as four real OS
// processes over loopback TCP (spawned via the launcher, rendezvousing
// through a hostfile), certifies the two norms bit-identical and the
// serial norm within 1e-9 relative, and writes BENCH_transport.json
// with both timings and traffic counters. Exits non-zero on any
// divergence, so CI can consume it directly.

// transportResultEnv carries the path the TCP rank-0 process writes its
// measurement to (stdout belongs to the run's human-readable output).
const transportResultEnv = "DEVIGO_TRANSPORT_RESULT"

// transportRanks is the world size of the comparison (a 2x2 topology).
const transportRanks = 4

// TransportMeasurement is one substrate's outcome of the fixed 4-rank
// scenario.
type TransportMeasurement struct {
	Norm    float64 `json:"norm"`
	Seconds float64 `json:"seconds"`
	GPtss   float64 `json:"gptss"`
	Msgs    int64   `json:"msgs"`
	Bytes   int64   `json:"bytes"`
}

// TransportReport is the BENCH_transport.json schema.
type TransportReport struct {
	Schema     string `json:"schema"`
	Scenario   string `json:"scenario"`
	Shape      []int  `json:"shape"`
	SpaceOrder int    `json:"space_order"`
	NT         int    `json:"nt"`
	Ranks      int    `json:"ranks"`
	// SerialNorm anchors the distributed runs to the single-rank result.
	SerialNorm float64 `json:"serial_norm"`
	// Transports holds one measurement per substrate ("inproc", "tcp").
	Transports map[string]TransportMeasurement `json:"transports"`
	// BitExact reports whether the inproc and tcp norms are identical to
	// the last bit — the transport acceptance criterion.
	BitExact bool `json:"bit_exact_inproc_vs_tcp"`
	// SerialRelError is |tcp - serial| / |serial|.
	SerialRelError float64 `json:"serial_rel_error"`
	// TCPOverheadRatio is tcp seconds / inproc seconds (recorded for the
	// trajectory, not gated: loopback TCP pays serialization and
	// syscalls the in-process mailboxes do not).
	TCPOverheadRatio float64 `json:"tcp_overhead_ratio"`
}

// transportRankBody runs the fixed scenario on one rank of an
// established world and returns the measurement on rank 0 (nil
// elsewhere). It is shared verbatim by the in-process and TCP paths —
// the point of the comparison is that nothing above the Transport
// interface differs.
func transportRankBody(c *mpi.Comm, size, nt int) (*TransportMeasurement, error) {
	shape := []int{size, size}
	g, err := grid.New(shape, nil)
	if err != nil {
		return nil, err
	}
	dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
	if err != nil {
		return nil, err
	}
	cart, err := mpi.CartCreate(c, dec.Topology, nil)
	if err != nil {
		return nil, err
	}
	cfg := propagators.Config{Shape: shape, SpaceOrder: 8, NBL: 8, Velocity: 1.5,
		Decomp: dec, Rank: c.Rank()}
	m, err := propagators.Build("acoustic", cfg)
	if err != nil {
		return nil, err
	}
	ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
	start := time.Now()
	res, err := propagators.Run(m, ctx, propagators.RunConfig{
		NT: nt, NReceivers: 4, Engine: core.EngineBytecode, Workers: 2, TileRows: 3,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	st := c.Transport().Stats()
	msgs := c.AllreduceScalar(float64(st.MsgsSent), mpi.OpSum)
	bytes := c.AllreduceScalar(float64(st.BytesSent), mpi.OpSum)
	if c.Rank() != 0 {
		return nil, nil
	}
	return &TransportMeasurement{
		Norm:    res.Norm,
		Seconds: elapsed,
		GPtss:   res.Perf.GPtss(),
		Msgs:    int64(msgs),
		Bytes:   int64(bytes),
	}, nil
}

// runTransport is the parent experiment: serial baseline, in-process
// world, then the multi-process TCP world via the launcher.
func runTransport(size, nt int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	shape := []int{size, size}
	fmt.Printf("Transport comparison, %dx%d acoustic so-08, %d timesteps, %d ranks (2x2, diag)\n",
		size, size, nt, transportRanks)

	sm, err := propagators.Build("acoustic", propagators.Config{Shape: shape, SpaceOrder: 8, NBL: 8, Velocity: 1.5})
	if err != nil {
		return err
	}
	sres, err := propagators.Run(sm, nil, propagators.RunConfig{NT: nt, NReceivers: 4, Engine: core.EngineBytecode})
	if err != nil {
		return err
	}

	var inMeas *TransportMeasurement
	w := mpi.NewWorld(transportRanks)
	if err := w.Run(func(c *mpi.Comm) {
		m, err := transportRankBody(c, size, nt)
		if err != nil {
			panic(err)
		}
		if m != nil {
			inMeas = m
		}
	}); err != nil {
		return err
	}

	tcpMeas, err := launchTransportTCP(size, nt)
	if err != nil {
		return fmt.Errorf("tcp world: %w", err)
	}

	report := TransportReport{
		Schema:     "devigo-bench/transport/v1",
		Scenario:   "acoustic",
		Shape:      shape,
		SpaceOrder: 8,
		NT:         nt,
		Ranks:      transportRanks,
		SerialNorm: sres.Norm,
		Transports: map[string]TransportMeasurement{
			"inproc": *inMeas,
			"tcp":    *tcpMeas,
		},
		BitExact: inMeas.Norm == tcpMeas.Norm,
	}
	rel := (tcpMeas.Norm - sres.Norm) / sres.Norm
	if rel < 0 {
		rel = -rel
	}
	report.SerialRelError = rel
	if inMeas.Seconds > 0 {
		report.TCPOverheadRatio = tcpMeas.Seconds / inMeas.Seconds
	}

	fmt.Printf("%-8s %22s %10s %10s %12s\n", "substrate", "norm", "seconds", "GPts/s", "messages")
	for _, name := range []string{"inproc", "tcp"} {
		m := report.Transports[name]
		fmt.Printf("%-8s %22.17e %10.3f %10.4f %12d\n", name, m.Norm, m.Seconds, m.GPtss, m.Msgs)
	}
	fmt.Printf("bit-exact inproc vs tcp: %v, serial rel error %.2e, tcp/inproc time %.2fx\n",
		report.BitExact, report.SerialRelError, report.TCPOverheadRatio)

	path := filepath.Join(outDir, "BENCH_transport.json")
	if err := writeJSON(path, report); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)

	if !report.BitExact {
		return fmt.Errorf("inproc and tcp norms diverge: %v vs %v", inMeas.Norm, tcpMeas.Norm)
	}
	if report.SerialRelError > 1e-9 {
		return fmt.Errorf("tcp norm %v vs serial %v: relative error %g > 1e-9", tcpMeas.Norm, sres.Norm, rel)
	}
	if inMeas.Msgs != tcpMeas.Msgs {
		return fmt.Errorf("message counts diverge across transports: inproc %d, tcp %d", inMeas.Msgs, tcpMeas.Msgs)
	}
	return nil
}

// launchTransportTCP spawns transportRanks copies of this binary in
// worker mode and collects rank 0's measurement through a temp file.
func launchTransportTCP(size, nt int) (*TransportMeasurement, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp("", "devigo-transport-*.json")
	if err != nil {
		return nil, err
	}
	resultPath := tmp.Name()
	tmp.Close()
	defer os.Remove(resultPath)
	os.Setenv(transportResultEnv, resultPath)
	defer os.Unsetenv(transportResultEnv)

	argv := []string{exe, "-exp", "transport-worker",
		"-size", strconv.Itoa(size), "-nt", strconv.Itoa(nt)}
	if err := mpi.LaunchTCPLocal(transportRanks, argv); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(resultPath)
	if err != nil {
		return nil, fmt.Errorf("rank 0 left no result: %w", err)
	}
	var m TransportMeasurement
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("rank 0 result: %w", err)
	}
	return &m, nil
}

// runTransportWorker is one TCP rank process of the transport
// experiment (reached via the launcher's re-exec, recognized through
// the rendezvous environment). Rank 0 writes its measurement to the
// path in DEVIGO_TRANSPORT_RESULT.
func runTransportWorker(size, nt int) error {
	t, err := mpi.TCPFromEnv()
	if err != nil {
		return err
	}
	defer t.Close()
	var meas *TransportMeasurement
	if err := mpi.RunRank(t, func(c *mpi.Comm) {
		m, err := transportRankBody(c, size, nt)
		if err != nil {
			panic(err)
		}
		meas = m
	}); err != nil {
		return err
	}
	if meas == nil {
		return nil // not rank 0
	}
	if path := os.Getenv(transportResultEnv); path != "" {
		return writeJSON(path, meas)
	}
	return nil
}
