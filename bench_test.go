package devigo

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md section 5 for the experiment index):
//
//   - BenchmarkFig07_Roofline                  -> paper Fig. 7
//   - BenchmarkFig08_AcousticStrongCPU         -> Fig. 8a / Table IV
//   - BenchmarkFig08b_AcousticStrongGPU        -> Fig. 8b / Table XX
//   - BenchmarkFig09_ElasticStrongCPU          -> Fig. 9a / Table VIII
//   - BenchmarkFig09b_ElasticStrongGPU         -> Fig. 9b / Table XXIV
//   - BenchmarkFig10_TTIStrongCPU              -> Fig. 10a / Table XII
//   - BenchmarkFig10b_TTIStrongGPU             -> Fig. 10b / Table XXVIII
//   - BenchmarkFig11_ViscoelasticStrongCPU     -> Fig. 11a / Table XVI
//   - BenchmarkFig11b_ViscoelasticStrongGPU    -> Fig. 11b / Table XXXII
//   - BenchmarkFig12_WeakScaling               -> Fig. 12
//   - BenchmarkTables_CPUSDOSweep              -> Figs. 13-16 / Tables III-XVIII
//   - BenchmarkTables_GPUSDOSweep              -> Figs. 17-20 / Tables XIX-XXXIV
//   - BenchmarkFigs21to24_WeakSDOSweep         -> Figs. 21-24
//   - BenchmarkAblation_ModeSelection          -> future-work auto-tuner
//
// Modeled numbers carry b.ReportMetric units (GPts/s at 1 and 128 nodes,
// efficiency); the Benchmark*Exec benches additionally measure the *real*
// executor and in-process MPI runtime on this machine.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"devigo/internal/core"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/ir"
	"devigo/internal/mpi"
	"devigo/internal/perfmodel"
	"devigo/internal/perfreport"
	"devigo/internal/propagators"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

var (
	charMu    sync.Mutex
	charCache = map[string]perfmodel.KernelChar{}
)

func benchChar(b *testing.B, model string, so int) perfmodel.KernelChar {
	b.Helper()
	charMu.Lock()
	defer charMu.Unlock()
	key := fmt.Sprintf("%s/%d", model, so)
	if kc, ok := charCache[key]; ok {
		return kc
	}
	kc, err := perfreport.Characterize(model, so)
	if err != nil {
		b.Fatal(err)
	}
	charCache[key] = kc
	return kc
}

// benchStrong regenerates one strong-scaling table and reports the paper's
// headline numbers as metrics.
func benchStrong(b *testing.B, model string, so int, machine perfmodel.Machine) {
	b.Helper()
	benchChar(b, model, so) // warm the characterization cache outside timing
	var tbl *perfreport.ScalingTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = perfreport.StrongScaling(model, so, machine)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	best := tbl.ModeOrder[0]
	row := tbl.Rows[best]
	b.ReportMetric(row[0], "GPts/s@1")
	b.ReportMetric(row[len(row)-1], "GPts/s@128")
	b.ReportMetric(tbl.EffPct[len(tbl.EffPct)-1], "eff%@128")
}

func BenchmarkFig07_Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := perfreport.RooflineReport(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08_AcousticStrongCPU(b *testing.B) {
	benchStrong(b, "acoustic", 8, perfmodel.Archer2Node())
}

func BenchmarkFig08b_AcousticStrongGPU(b *testing.B) {
	benchStrong(b, "acoustic", 8, perfmodel.TursaA100())
}

func BenchmarkFig09_ElasticStrongCPU(b *testing.B) {
	benchStrong(b, "elastic", 8, perfmodel.Archer2Node())
}

func BenchmarkFig09b_ElasticStrongGPU(b *testing.B) {
	benchStrong(b, "elastic", 8, perfmodel.TursaA100())
}

func BenchmarkFig10_TTIStrongCPU(b *testing.B) {
	benchStrong(b, "tti", 8, perfmodel.Archer2Node())
}

func BenchmarkFig10b_TTIStrongGPU(b *testing.B) {
	benchStrong(b, "tti", 8, perfmodel.TursaA100())
}

func BenchmarkFig11_ViscoelasticStrongCPU(b *testing.B) {
	benchStrong(b, "viscoelastic", 8, perfmodel.Archer2Node())
}

func BenchmarkFig11b_ViscoelasticStrongGPU(b *testing.B) {
	benchStrong(b, "viscoelastic", 8, perfmodel.TursaA100())
}

func BenchmarkFig12_WeakScaling(b *testing.B) {
	for _, model := range propagators.ModelNames() {
		benchChar(b, model, 8)
	}
	b.ResetTimer()
	var lastCPU, lastGPU float64
	for i := 0; i < b.N; i++ {
		for _, model := range propagators.ModelNames() {
			cpu, err := perfreport.WeakScaling(model, 8, perfmodel.Archer2Node(), halo.ModeBasic)
			if err != nil {
				b.Fatal(err)
			}
			gpu, err := perfreport.WeakScaling(model, 8, perfmodel.TursaA100(), halo.ModeBasic)
			if err != nil {
				b.Fatal(err)
			}
			if model == "acoustic" {
				lastCPU = cpu[len(cpu)-1].Runtime
				lastGPU = gpu[len(gpu)-1].Runtime
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(lastCPU, "s@128cpu")
	b.ReportMetric(lastGPU, "s@128gpu")
	b.ReportMetric(lastCPU/lastGPU, "gpu-speedup")
}

func BenchmarkTables_CPUSDOSweep(b *testing.B) {
	// Tables III-XVIII / Figures 13-16: every model at SDO 4,8,12,16.
	m := perfmodel.Archer2Node()
	for i := 0; i < b.N; i++ {
		for _, model := range propagators.ModelNames() {
			for _, so := range perfreport.PaperSpaceOrders {
				if _, err := perfreport.StrongScaling(model, so, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTables_GPUSDOSweep(b *testing.B) {
	// Tables XIX-XXXIV / Figures 17-20.
	m := perfmodel.TursaA100()
	for i := 0; i < b.N; i++ {
		for _, model := range propagators.ModelNames() {
			for _, so := range perfreport.PaperSpaceOrders {
				if _, err := perfreport.StrongScaling(model, so, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkFigs21to24_WeakSDOSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, so := range perfreport.PaperSpaceOrders {
			for _, model := range propagators.ModelNames() {
				if _, err := perfreport.WeakScaling(model, so, perfmodel.Archer2Node(), halo.ModeBasic); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkAblation_ModeSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := perfreport.ModeSelectionReport(8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-execution benchmarks: the compiled kernels and the in-process
// --- MPI runtime measured on this machine.

func benchKernelExec(b *testing.B, model string, shape []int, so int) {
	m, err := propagators.Build(model, propagators.Config{
		Shape: shape, SpaceOrder: so, NBL: 0, Velocity: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: model})
	if err != nil {
		b.Fatal(err)
	}
	pts := 1
	for _, s := range shape {
		pts *= s
	}
	b.SetBytes(int64(pts) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Apply(&core.ApplyOpts{TimeM: i, TimeN: i, Syms: map[string]float64{"dt": m.CriticalDt}}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perf := op.Report()
	b.ReportMetric(perf.GPtss()*1e3, "Mpts/s")
}

func BenchmarkExec_Acoustic3D_SO8(b *testing.B) {
	benchKernelExec(b, "acoustic", []int{48, 48, 48}, 8)
}

func BenchmarkExec_Acoustic2D_SO4(b *testing.B) {
	benchKernelExec(b, "acoustic", []int{192, 192}, 4)
}

func BenchmarkExec_Elastic2D_SO8(b *testing.B) {
	benchKernelExec(b, "elastic", []int{96, 96}, 8)
}

func BenchmarkExec_TTI2D_SO8(b *testing.B) {
	benchKernelExec(b, "tti", []int{64, 64}, 8)
}

func BenchmarkExec_Viscoelastic2D_SO8(b *testing.B) {
	benchKernelExec(b, "viscoelastic", []int{64, 64}, 8)
}

func benchHaloExchange(b *testing.B, mode halo.Mode) {
	g := grid.MustNew([]int{64, 64}, nil)
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		dec, err := grid.NewDecomposition(g, 4, []int{2, 2})
		if err != nil {
			panic(err)
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			panic(err)
		}
		f, err := field.NewFunction("u", g, 8, &field.Config{Decomp: dec, Rank: c.Rank()})
		if err != nil {
			panic(err)
		}
		ex := halo.New(mode, cart, f, 0)
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			ex.Exchange(0)
		}
		c.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHaloExchange_Basic(b *testing.B)    { benchHaloExchange(b, halo.ModeBasic) }
func BenchmarkHaloExchange_Diagonal(b *testing.B) { benchHaloExchange(b, halo.ModeDiagonal) }
func BenchmarkHaloExchange_Full(b *testing.B)     { benchHaloExchange(b, halo.ModeFull) }

func BenchmarkMPI_PingPong(b *testing.B) {
	w := mpi.NewWorld(2)
	payload := make([]float32, 4096)
	err := w.Run(func(c *mpi.Comm) {
		buf := make([]float32, len(payload))
		if c.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, payload)
				c.Recv(1, 1, buf)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 0, buf)
				c.Send(0, 1, payload)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)) * 4 * 2)
}

func BenchmarkCompile_AcousticOperator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := propagators.Acoustic(propagators.Config{
			Shape: []int{32, 32, 32}, SpaceOrder: 8, NBL: 0, Velocity: 1.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymbolic_SolveAcoustic(b *testing.B) {
	u := &symbolic.FuncRef{Name: "u", NDims: 3, IsTime: true, NumBufs: 3}
	m := &symbolic.FuncRef{Name: "m", NDims: 3}
	for i := 0; i < b.N; i++ {
		pde := symbolic.Sub(
			symbolic.NewMul(symbolic.At(m), symbolic.Dt2(symbolic.At(u), 2)),
			symbolic.Laplace(symbolic.At(u), 3, 8),
		)
		if _, err := symbolic.Solve(symbolic.Eq{LHS: pde, RHS: symbolic.Int(0)}, symbolic.ForwardStencil(u)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntime_StencilVM(b *testing.B) {
	// Raw executor throughput on the 2-D SDO-8 diffusion kernel.
	g := grid.MustNew([]int{256, 256}, nil)
	u, err := field.NewTimeFunction("u", g, 8, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(u.Ref), 1), RHS: symbolic.Laplace(symbolic.At(u.Ref), 2, 8)}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		b.Fatal(err)
	}
	op, err := core.NewOperator([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}},
		map[string]*field.Function{"u": &u.Function}, g, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Apply(&core.ApplyOpts{TimeM: i, TimeN: i, Syms: map[string]float64{"dt": 1e-4}}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(op.Report().GPtss()*1e3, "Mpts/s")
	_ = runtime.Box{}
}

// BenchmarkAblation_CIRE measures the design choice DESIGN.md calls out:
// the flop-reduction pass on the rotated TTI Laplacian. It reports naive
// vs optimized per-point flop counts and times real kernel execution with
// the pass enabled (the compiler always applies it; the naive count comes
// from the un-reduced lowering).
func BenchmarkAblation_CIRE(b *testing.B) {
	m, err := propagators.TTI(propagators.Config{
		Shape: []int{48, 48}, SpaceOrder: 8, NBL: 0, Velocity: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	clusters, err := ir.Lower(m.Eqs, 2)
	if err != nil {
		b.Fatal(err)
	}
	naive := 0
	for _, c := range clusters {
		naive += c.FlopsPerPoint()
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: "tti"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Apply(&core.ApplyOpts{TimeM: i, TimeN: i, Syms: map[string]float64{"dt": m.CriticalDt}}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(naive), "naive-flops/pt")
	b.ReportMetric(float64(op.FlopsPerPointOptimized()), "cire-flops/pt")
	b.ReportMetric(float64(naive)/float64(op.FlopsPerPointOptimized()), "reduction-x")
}

// BenchmarkAblation_TopologyTuning measures the paper's full-mode
// discussion: custom x/y-only decompositions versus the default.
func BenchmarkAblation_TopologyTuning(b *testing.B) {
	kc := benchChar(b, "acoustic", 8)
	m := perfmodel.Archer2Node()
	var auto, tuned float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sAuto := perfmodel.Scenario{Kernel: kc, Machine: m,
			Shape: []int{1024, 1024, 1024}, Nodes: 16, Mode: halo.ModeFull}
		sTuned := sAuto
		sTuned.Topology = []int{16, 8, 1} // split x and y only
		var err error
		auto, err = sAuto.ThroughputGPts()
		if err != nil {
			b.Fatal(err)
		}
		tuned, err = sTuned.ThroughputGPts()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(auto, "GPts/s-auto")
	b.ReportMetric(tuned, "GPts/s-xy-topo")
}
