// Acoustic runs the paper's flagship workload: a 3-D isotropic acoustic
// wave propagator with a Ricker point source and a receiver line, first
// serially and then distributed over 8 ranks with each communication
// pattern, verifying that every pattern reproduces the serial wavefield
// checksum exactly (the zero-code-change DMP guarantee).
package main

import (
	"fmt"
	"log"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/propagators"
)

const (
	shapeEdge = 36
	so        = 4
	nt        = 40
)

func config() propagators.Config {
	return propagators.Config{
		Shape:      []int{shapeEdge, shapeEdge, shapeEdge},
		SpaceOrder: so,
		NBL:        6,
		Velocity:   1.5,
	}
}

func main() {
	m, err := propagators.Acoustic(config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isotropic acoustic: %d^3 grid, SDO %d, %d timesteps, dt=%.4f (CFL)\n",
		shapeEdge, so, nt, m.CriticalDt)
	res, err := propagators.Run(m, nil, propagators.RunConfig{NT: nt, NReceivers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:       norm=%.6e  %6.1f Mpts/s  (flops/point=%d)\n",
		res.Norm, res.Perf.GPtss()*1e3, res.Perf.FlopsPerPoint)
	serialNorm := res.Norm

	for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
		w := mpi.NewWorld(8)
		var norm float64
		err := w.Run(func(c *mpi.Comm) {
			g := grid.MustNew(config().Shape, nil)
			dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2, 2})
			if err != nil {
				panic(err)
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				panic(err)
			}
			cfg := config()
			cfg.Decomp = dec
			cfg.Rank = c.Rank()
			dm, err := propagators.Acoustic(cfg)
			if err != nil {
				panic(err)
			}
			ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
			dres, err := propagators.Run(dm, ctx, propagators.RunConfig{NT: nt, NReceivers: 8})
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				norm = dres.Norm
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		// The per-point arithmetic is bitwise identical; only the final
		// norm reduction accumulates in rank order, so allow an LSB of
		// float64 slack there.
		match := "MATCHES serial"
		if diff := norm - serialNorm; diff > 1e-12*serialNorm || diff < -1e-12*serialNorm {
			match = fmt.Sprintf("DIFFERS from serial (%.6e)", serialNorm)
		}
		fmt.Printf("8 ranks %-6s norm=%.6e  %s\n", mode, norm, match)
	}
}
