// Scaling reproduces, in miniature, the paper's headline evaluation from
// the performance model: strong scaling of the four wave kernels across
// the three MPI modes on the CPU cluster, the CPU/GPU comparison, and the
// automated mode selection the paper lists as future work.
package main

import (
	"fmt"
	"log"

	"devigo/internal/perfmodel"
	"devigo/internal/perfreport"
)

func main() {
	fmt.Println("== Single-node roofline (paper Fig. 7) ==")
	s, err := perfreport.RooflineReport(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)

	fmt.Println("== Strong scaling, CPU, SDO 8 (paper Figs. 8-11) ==")
	for _, model := range []string{"acoustic", "elastic", "tti", "viscoelastic"} {
		tbl, err := perfreport.StrongScaling(model, 8, perfmodel.Archer2Node())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
	}

	fmt.Println("== Strong scaling, GPU, SDO 8 (paper Figs. 8b-11b) ==")
	tbl, err := perfreport.StrongScaling("acoustic", 8, perfmodel.TursaA100())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.Format())

	fmt.Println("== Automated mode selection (paper future work) ==")
	sel, err := perfreport.ModeSelectionReport(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sel)
}
