// TTI demonstrates the anisotropic acoustic propagator with its rotated
// Laplacian (paper Section IV-B2) and what the compiler's flop-reduction
// machinery does to it: the CIRE pass materialises the nested directional
// derivatives into scratch fields, collapsing the per-point flop count by
// an order of magnitude — the transformation that makes TTI production
// viable (and the reason Devito emphasises flop-reducing transformations).
package main

import (
	"fmt"
	"log"

	"devigo/internal/core"
	"devigo/internal/ir"
	"devigo/internal/propagators"
	"devigo/internal/symbolic"
)

func main() {
	m, err := propagators.TTI(propagators.Config{
		Shape:      []int{24, 24},
		SpaceOrder: 8,
		NBL:        4,
		Velocity:   1.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Naive lowering (no CIRE): expand everything in place.
	clusters, err := ir.Lower(m.Eqs, 2)
	if err != nil {
		log.Fatal(err)
	}
	naive := 0
	for _, c := range clusters {
		naive += c.FlopsPerPoint()
	}

	// The real compiler pipeline with CIRE + factorisation + CSE.
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: "tti"})
	if err != nil {
		log.Fatal(err)
	}
	optimized := op.FlopsPerPointOptimized()
	scratch := 0
	for name := range m.Fields {
		if len(name) > 4 && name[:4] == "cire" {
			scratch++
		}
	}
	fmt.Printf("TTI 2-D, SDO %d (rotated anisotropic Laplacian):\n", m.SpaceOrder)
	fmt.Printf("  naive expansion:      %6d flops/point\n", naive)
	fmt.Printf("  with CIRE+CSE+factor: %6d flops/point (%d scratch fields)\n", optimized, scratch)
	fmt.Printf("  reduction:            %.1fx\n", float64(naive)/float64(optimized))

	// Show the schedule: scratch cluster then wavefield cluster.
	fmt.Println("\nschedule tree (paper Listing 4):")
	fmt.Print(op.Schedule.String())

	// Propagate and sanity-check anisotropy: the wavefront must differ
	// from the isotropic propagator's.
	res, err := propagators.Run(m, nil, propagators.RunConfig{NT: 60, NReceivers: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d steps: p-field norm %.6e\n", res.NT, res.Norm)

	iso, err := propagators.Acoustic(propagators.Config{
		Shape: []int{24, 24}, SpaceOrder: 8, NBL: 4, Velocity: 1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ires, err := propagators.Run(iso, nil, propagators.RunConfig{NT: 60, DT: res.DT, NReceivers: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isotropic reference norm: %.6e (anisotropy shifts the wavefront)\n", ires.Norm)
	_ = symbolic.Expr(nil)
}
