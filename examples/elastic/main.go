// Elastic demonstrates the first-order velocity-stress system on a fully
// staggered grid (paper Section IV-B3): 9 coupled updates over 22 fields,
// split by the compiler into a velocity cluster and a stress cluster with
// a halo exchange of the fresh velocities in between. The example prints
// the compiler's schedule tree (paper Listing 4) and the per-cluster
// structure, then propagates a wave and reports receiver traces.
package main

import (
	"fmt"
	"log"

	"devigo/internal/ir"
	"devigo/internal/propagators"
)

func main() {
	m, err := propagators.Elastic(propagators.Config{
		Shape:      []int{32, 32},
		SpaceOrder: 8,
		NBL:        8,
		Velocity:   2.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isotropic elastic, 2-D, SDO %d: %d update equations, %d-field working set\n",
		m.SpaceOrder, len(m.Eqs), m.WorkingSetFields)

	clusters, err := ir.Lower(m.Eqs, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lowered to %d clusters:\n", len(clusters))
	for i, c := range clusters {
		var writes []string
		for _, e := range c.Eqs {
			writes = append(writes, e.LHS.String())
		}
		fmt.Printf("  cluster %d: %d eqs, %d flops/point, radius %v\n",
			i, len(c.Eqs), c.FlopsPerPoint(), c.Radius)
		for _, w := range writes {
			fmt.Printf("    %s\n", w)
		}
		for f, offs := range c.HaloReads {
			for off := range offs {
				fmt.Printf("    needs halo: %s @ t%+d\n", f, off)
			}
		}
	}

	res, err := propagators.Run(m, nil, propagators.RunConfig{NT: 120, NReceivers: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d steps (dt=%.5f): field norm %.6e, %.1f Mpts/s\n",
		res.NT, res.DT, res.Norm, res.Perf.GPtss()*1e3)
	fmt.Println("receiver traces (last 5 samples):")
	for it := len(res.Receivers) - 5; it < len(res.Receivers); it++ {
		fmt.Printf("  t=%3d:", it)
		for _, v := range res.Receivers[it] {
			fmt.Printf(" %12.4e", v)
		}
		fmt.Println()
	}
}
