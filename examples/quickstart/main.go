// Quickstart reproduces paper Listing 1 end to end: a 2-D heat diffusion
// operator built from symbolic math, first run serially, then — with the
// same user code — distributed over 4 in-process MPI ranks, printing the
// rank-local data views of paper Listings 2 and 3.
package main

import (
	"fmt"
	"log"
	"sync"

	"devigo"
)

func buildAndRun(env *devigo.Env, report func(rank int, before, after string)) error {
	// Paper Listing 1, line by line.
	nx, ny := 4, 4
	nu := 0.5
	var g *devigo.Grid
	var err error
	if env != nil {
		g, err = env.NewGrid([]int{nx, ny}, []float64{2, 2}, nil)
	} else {
		g, err = devigo.NewGrid([]int{nx, ny}, []float64{2, 2})
	}
	if err != nil {
		return err
	}
	dx, dy := g.Spacing(0), g.Spacing(1)
	sigma := 0.25
	dt := sigma * dx * dy / nu

	u, err := devigo.NewTimeFunction("u", g, 2, 1)
	if err != nil {
		return err
	}
	// u.data[1:-1, 1:-1] = 1 — a global slice, transparently converted to
	// rank-local writes under DMP.
	if err := u.Data().SetSlice(0, []devigo.Slice{devigo.SliceRange(1, -1), devigo.SliceRange(1, -1)}, 1); err != nil {
		return err
	}
	before := u.Data().LocalString(0)

	stencil, err := devigo.Solve(devigo.Eq(u.Dt(), u.Laplace()), u.Forward())
	if err != nil {
		return err
	}
	op, err := devigo.NewOperator(g, devigo.Assign(u.Forward(), stencil))
	if err != nil {
		return err
	}
	if err := op.Apply(devigo.ApplyConfig{TimeM: 0, TimeN: 0, DT: dt}); err != nil {
		return err
	}
	rank := 0
	if env != nil {
		rank = env.Rank()
	}
	report(rank, before, u.Data().LocalString(1))
	if rank == 0 && env == nil {
		fmt.Println("--- generated code (paper Listing 11) ---")
		fmt.Println(op.GeneratedCode())
	}
	return nil
}

func main() {
	fmt.Println("=== serial run ===")
	err := buildAndRun(nil, func(rank int, before, after string) {
		fmt.Printf("u.data after slicing:\n%s\n", before)
		fmt.Printf("u.data after one operator application:\n%s\n", after)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== the same code on 4 MPI ranks (paper Listings 2 & 3) ===")
	var mu sync.Mutex
	outB := make([]string, 4)
	outA := make([]string, 4)
	err = devigo.RunDMP(devigo.DMPConfig{Ranks: 4, Mode: "basic"}, func(env *devigo.Env) error {
		return buildAndRun(env, func(rank int, before, after string) {
			mu.Lock()
			outB[rank], outA[rank] = before, after
			mu.Unlock()
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		fmt.Printf("[stdout:%d] after slice:\n%s\n", r, outB[r])
	}
	for r := 0; r < 4; r++ {
		fmt.Printf("[stdout:%d] after Operator:\n%s\n", r, outA[r])
	}
}
