// FWI demonstrates the adjoint/gradient subsystem: a checkpointed
// forward acoustic run, the time-reversed adjoint propagation of the
// recorded receiver data, and the zero-lag imaging condition
// accumulating an RTM-style gradient — with the dot-product identity
// <Fq, d> = <q, F'd> reported as the correctness certificate, serially
// and on 4 ranks.
package main

import (
	"fmt"
	"log"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/propagators"
)

const (
	shapeEdge = 96
	so        = 8
	nt        = 120
	nrec      = 24
	interval  = 12
)

func config() propagators.Config {
	return propagators.Config{
		Shape:      []int{shapeEdge, shapeEdge},
		SpaceOrder: so,
		NBL:        8,
		Velocity:   1.5,
	}
}

func gradientConfig() propagators.GradientConfig {
	return propagators.GradientConfig{
		NT:                 nt,
		NReceivers:         nrec,
		CheckpointInterval: interval,
	}
}

func main() {
	// Exact-arithmetic certification first: the gate CI enforces.
	cert, err := propagators.RunDotTest(nil, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjoint certification: <Fq,Fq>=%.9g <q,F'Fq>=%.9g rel=%.3g\n",
		cert.DotForward, cert.DotAdjoint, cert.RelErr)

	m, err := propagators.Acoustic(config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFWI gradient: %dx%d grid, SDO %d, %d timesteps, %d receivers, checkpoint every %d steps\n",
		shapeEdge, shapeEdge, so, nt, nrec, interval)
	res, err := propagators.RunGradient(m, nil, gradientConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("serial", res)

	// The identical gradient over 4 ranks with overlapped halo exchange.
	w := mpi.NewWorld(4)
	err = w.Run(func(c *mpi.Comm) {
		g := grid.MustNew([]int{shapeEdge, shapeEdge}, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), nil)
		if err != nil {
			log.Fatal(err)
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			log.Fatal(err)
		}
		cfg := config()
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		dm, err := propagators.Acoustic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeFull}
		dres, err := propagators.RunGradient(dm, ctx, gradientConfig())
		if err != nil {
			log.Fatal(err)
		}
		if c.Rank() == 0 {
			report("4-rank full", dres)
			if propagators.RelDot(dres.GradNorm, res.GradNorm) > 1e-9 {
				log.Fatalf("distributed gradient diverges: %v vs %v", dres.GradNorm, res.GradNorm)
			}
			fmt.Println("\ndistributed gradient matches serial")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func report(label string, res *propagators.GradientResult) {
	fmt.Printf("%-12s |grad|=%.6e  dot identity: %.6e vs %.6e (rel %.2e)\n",
		label, res.GradNorm, res.DotForward, res.DotAdjoint, res.RelErr)
	fmt.Printf("%-12s checkpoints: %d snapshots (%.1f KB), %d recomputed steps\n",
		label, res.Checkpoint.Snapshots, float64(res.Checkpoint.SnapshotBytes)/1024,
		res.Checkpoint.RecomputedSteps)
}
