module devigo

go 1.23
