module devigo

go 1.24
