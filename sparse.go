package devigo

import (
	"devigo/internal/mpi"
	"devigo/internal/sparse"
)

// SparseFunction is a set of off-grid points supporting injection into and
// interpolation from grid functions — the paper's sparse operator support
// (Section III-c): sources and receivers of wave propagators.
type SparseFunction struct {
	s    *sparse.SparseFunction
	grid *Grid
}

// NewSparseFunction registers npoint off-grid coordinates (physical units)
// against the grid.
func NewSparseFunction(name string, g *Grid, coords [][]float64) (*SparseFunction, error) {
	s, err := sparse.New(name, g.g, coords)
	if err != nil {
		return nil, err
	}
	return &SparseFunction{s: s, grid: g}, nil
}

// NPoints returns the number of sparse points.
func (s *SparseFunction) NPoints() int { return s.s.NPoints() }

// Inject scatter-adds vals (one per point, linearly distributed over the
// containing cell corners) into time buffer t of f. Under DMP each rank
// applies its owned contributions — and mirrors them into its ghost
// copies of neighbour-owned points, every rank computing the identical
// float32 contribution from the globally known coordinates, so the
// owned update still happens exactly once (paper Fig. 3) while
// communication-avoiding time tiling (DEVIGO_TIME_TILE) can redundantly
// recompute ghost shells bit-exactly. Ghost mirroring never changes
// owned values, so k=1 results are unaffected.
func (s *SparseFunction) Inject(f *Function, t int, vals []float32) error {
	if s.grid.decomp == nil {
		return s.s.Inject(f.f, t, vals)
	}
	return s.s.InjectDeep(f.f, t, vals, f.f.Halo)
}

// Interpolate reads time buffer t of f at every point; under DMP the
// partial sums are all-reduced so every rank receives complete values.
// On serial grids (no environment) no communicator is consulted,
// mirroring the nil-safe pattern of Function.Data.
func (s *SparseFunction) Interpolate(f *Function, t int) []float64 {
	var comm *mpi.Comm
	if s.grid.env != nil {
		comm = s.grid.env.Comm()
	}
	return s.s.Interpolate(f.f, t, comm)
}

// RickerWavelet generates the classic seismic source signature (peak
// frequency f0, centred at t0, nt samples spaced dt).
func RickerWavelet(f0, t0, dt float64, nt int) []float32 {
	return sparse.RickerWavelet(f0, t0, dt, nt)
}
