// Package devigo is a Devito-style symbolic stencil DSL and compiler for
// finite-difference solvers with automated distributed-memory parallelism,
// reproducing "Automated MPI-X code generation for scalable
// finite-difference solvers" (Bisbas et al., arXiv:2312.13094).
//
// Users express PDE updates symbolically over grids and discrete
// functions; the compiler lowers them through a cluster IR (dependence
// analysis, halo detection, flop reduction) and an iteration/expression
// tree (HaloSpot optimisation, mode-specific lowering) into executable
// kernels plus C-like source, and runs them serially or over an
// in-process MPI runtime with the basic, diagonal or full (overlapped)
// halo-exchange pattern — with zero changes to user code:
//
//	g, _ := devigo.NewGrid([]int{4, 4}, []float64{2, 2})
//	u, _ := devigo.NewTimeFunction("u", g, 2, 1)
//	u.Data().SetSlice(0, []devigo.Slice{devigo.SliceRange(1, -1), devigo.SliceRange(1, -1)}, 1)
//	upd, _ := devigo.Solve(devigo.Eq(u.Dt(), u.Laplace()), u.Forward())
//	op, _ := devigo.NewOperator(g, devigo.Assign(u.Forward(), upd))
//	op.Apply(devigo.ApplyConfig{TimeM: 0, TimeN: 0, DT: dt})
//
// # Execution engines
//
// Operators execute through one of two engines. The default is the
// bytecode engine (internal/bytecode): each loop nest compiles to flat
// register bytecode run by a row-sweep VM — one instruction dispatch
// processes a whole inner-dimension row, duplicate stencil reads load
// once, and loop-invariant scalars (including 1/dt-style reciprocals)
// are folded at compile time or evaluated once per Apply. The reference
// expression-tree interpreter (internal/runtime) remains available by
// setting DEVIGO_ENGINE=interpreter in the environment — the selector
// for users of this package; code inside this module can also set
// core.Options.Engine directly. Both engines are bit-exact: they
// produce identical float32 fields for identical inputs, serially and
// under any DMP mode, so switching engines never changes results.
package devigo

import (
	"fmt"

	"devigo/internal/core"
	"devigo/internal/ddata"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/symbolic"
)

// Expr is a symbolic expression.
type Expr = symbolic.Expr

// Equation is a symbolic equation.
type Equation = symbolic.Eq

// Slice re-exports NumPy-style slicing for distributed data views.
type Slice = ddata.Slice

// SliceAll selects a whole dimension.
func SliceAll() Slice { return ddata.SliceAll() }

// SliceRange selects [lo, hi) with negative-index wrap-around.
func SliceRange(lo, hi int) Slice { return ddata.SliceRange(lo, hi) }

// Grid is a structured computational grid, optionally distributed over an
// MPI environment. Functions created on the grid register themselves so
// operators can resolve storage.
type Grid struct {
	g      *grid.Grid
	env    *Env
	decomp *grid.Decomposition
	fields map[string]*field.Function
}

// Env is one rank's distributed execution environment. A nil *Env (or one
// from a single-rank world) behaves serially.
type Env struct {
	comm *mpi.Comm
	mode halo.Mode
}

// DMPConfig configures a distributed run.
type DMPConfig struct {
	// Ranks is the number of MPI ranks to spawn in-process.
	Ranks int
	// Mode selects the halo-exchange pattern: "basic", "diag" or "full"
	// (DEVITO_MPI-style names accepted).
	Mode string
}

// RunDMP spawns an in-process MPI world and runs f once per rank — the
// devigo equivalent of launching the unmodified script under mpirun. The
// body receives the rank's Env; grids created through env.NewGrid are
// domain-decomposed automatically. After the world completes, any
// observability outputs requested through the environment (DEVIGO_TRACE,
// DEVIGO_METRICS) are flushed once for all ranks.
func RunDMP(cfg DMPConfig, f func(env *Env) error) error {
	mode, err := halo.ParseMode(cfg.Mode)
	if err != nil {
		return err
	}
	w := mpi.NewWorld(cfg.Ranks)
	if err := w.Run(func(c *mpi.Comm) {
		if err := f(&Env{comm: c, mode: mode}); err != nil {
			panic(err)
		}
	}); err != nil {
		return err
	}
	return obs.FlushEnv()
}

// Rank returns the calling rank (0 for serial environments).
func (e *Env) Rank() int {
	if e == nil || e.comm == nil {
		return 0
	}
	return e.comm.Rank()
}

// Size returns the world size (1 for serial environments).
func (e *Env) Size() int {
	if e == nil || e.comm == nil {
		return 1
	}
	return e.comm.Size()
}

// Comm exposes the underlying communicator (nil when serial).
func (e *Env) Comm() *mpi.Comm {
	if e == nil {
		return nil
	}
	return e.comm
}

// NewGrid creates a serial grid.
func NewGrid(shape []int, extent []float64) (*Grid, error) {
	g, err := grid.New(shape, extent)
	if err != nil {
		return nil, err
	}
	return &Grid{g: g, fields: map[string]*field.Function{}}, nil
}

// NewGrid creates a grid decomposed over the environment's ranks.
// topology may be nil (MPI_Dims_create default) or an explicit process
// grid (the paper's Grid(..., topology=...), Fig. 2).
func (e *Env) NewGrid(shape []int, extent []float64, topology []int) (*Grid, error) {
	g, err := grid.New(shape, extent)
	if err != nil {
		return nil, err
	}
	out := &Grid{g: g, env: e, fields: map[string]*field.Function{}}
	if e != nil && e.comm != nil {
		out.decomp, err = grid.NewDecomposition(g, e.comm.Size(), topology)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Shape returns the global grid shape.
func (g *Grid) Shape() []int { return append([]int(nil), g.g.Shape...) }

// Spacing returns the grid spacing along dimension d.
func (g *Grid) Spacing(d int) float64 { return g.g.Spacing(d) }

func (g *Grid) fieldConfig() *field.Config {
	if g.decomp == nil {
		return nil
	}
	return &field.Config{Decomp: g.decomp, Rank: g.env.comm.Rank()}
}

// Function is a discrete function over a grid's space dimensions.
type Function struct {
	f    *field.Function
	grid *Grid
}

// TimeFunction is a time-varying discrete function.
type TimeFunction struct {
	Function
	tf *field.TimeFunction
}

// NewFunction creates a space-only function (a parameter field).
func NewFunction(name string, g *Grid, spaceOrder int) (*Function, error) {
	f, err := field.NewFunction(name, g.g, spaceOrder, g.fieldConfig())
	if err != nil {
		return nil, err
	}
	g.fields[name] = f
	return &Function{f: f, grid: g}, nil
}

// NewTimeFunction creates a time-varying function with timeOrder+1
// buffers.
func NewTimeFunction(name string, g *Grid, spaceOrder, timeOrder int) (*TimeFunction, error) {
	tf, err := field.NewTimeFunction(name, g.g, spaceOrder, timeOrder, g.fieldConfig())
	if err != nil {
		return nil, err
	}
	g.fields[name] = &tf.Function
	return &TimeFunction{Function: Function{f: &tf.Function, grid: g}, tf: tf}, nil
}

// Name returns the function's name.
func (f *Function) Name() string { return f.f.Name }

// Data returns the logically-global, physically-distributed data view
// (paper Listings 2-3).
func (f *Function) Data() *ddata.Array {
	rank := 0
	if f.grid.env != nil {
		rank = f.grid.env.Rank()
	}
	return ddata.New(f.f, f.grid.decomp, rank)
}

// At builds a symbolic access u[t, x, y, ...] at the iteration point.
func (f *Function) At() Expr { return symbolic.At(f.f.Ref) }

// Shifted builds an access displaced by the given space offsets.
func (f *Function) Shifted(off ...int) Expr { return symbolic.Shifted(f.f.Ref, 0, off...) }

// Forward is u[t+1, ...] — the update target of explicit schemes.
func (f *TimeFunction) Forward() Expr { return symbolic.ForwardStencil(f.f.Ref) }

// Backward is u[t-1, ...].
func (f *TimeFunction) Backward() Expr { return symbolic.Backward(f.f.Ref) }

// Dt is the first time derivative at the function's time order.
func (f *TimeFunction) Dt() Expr { return symbolic.Dt(f.At(), f.tf.TimeOrder) }

// Dt2 is the second time derivative.
func (f *TimeFunction) Dt2() Expr { return symbolic.Dt2(f.At(), 2) }

// Dx is the first space derivative along dim at the function's space
// order.
func (f *Function) Dx(dim int) Expr { return symbolic.Dx(f.At(), dim, f.f.SpaceOrder) }

// Dx2 is the second space derivative along dim.
func (f *Function) Dx2(dim int) Expr { return symbolic.Dx2(f.At(), dim, f.f.SpaceOrder) }

// Laplace is the sum of second space derivatives — u.laplace in Devito.
func (f *Function) Laplace() Expr {
	return symbolic.Laplace(f.At(), f.f.Grid.NDims(), f.f.SpaceOrder)
}

// Expression constructors.

// Eq builds the equation lhs = rhs.
func Eq(lhs, rhs Expr) Equation { return symbolic.Eq{LHS: lhs, RHS: rhs} }

// Assign builds an update equation whose LHS must be a function access
// (typically u.Forward()).
func Assign(lhs, rhs Expr) Equation { return symbolic.Eq{LHS: lhs, RHS: rhs} }

// Solve solves eq for target, which must appear linearly — Devito's
// solve(eq, u.forward).
func Solve(eq Equation, target Expr) (Expr, error) { return symbolic.Solve(eq, target) }

// Add sums expressions.
func Add(xs ...Expr) Expr { return symbolic.NewAdd(xs...) }

// Mul multiplies expressions.
func Mul(xs ...Expr) Expr { return symbolic.NewMul(xs...) }

// Sub subtracts.
func Sub(a, b Expr) Expr { return symbolic.Sub(a, b) }

// Neg negates.
func Neg(a Expr) Expr { return symbolic.Neg(a) }

// Num builds a numeric constant.
func Num(v float64) Expr { return symbolic.Float(v) }

// Operator is a compiled solver.
type Operator struct {
	op *core.Operator
}

// NewOperator compiles the equations over the grid's registered functions.
func NewOperator(g *Grid, eqs ...Equation) (*Operator, error) {
	var ctx *core.Context
	if g.env != nil && g.env.comm != nil && g.env.comm.Size() > 1 {
		cart, err := mpi.CartCreate(g.env.comm, g.decomp.Topology, nil)
		if err != nil {
			return nil, err
		}
		ctx = &core.Context{Comm: g.env.comm, Cart: cart, Decomp: g.decomp, Mode: g.env.mode}
	}
	op, err := core.NewOperator(eqs, g.fields, g.g, ctx, nil)
	if err != nil {
		return nil, err
	}
	return &Operator{op: op}, nil
}

// ApplyConfig drives an operator application.
type ApplyConfig struct {
	// TimeM and TimeN are the inclusive timestep bounds.
	TimeM, TimeN int
	// Reverse runs the time loop from TimeN down to TimeM — the schedule
	// of adjoint operators solved for u.Backward().
	Reverse bool
	// DT is the timestep (bound to the dt symbol).
	DT float64
	// PostStep runs after each timestep (source injection etc.).
	PostStep func(t int)
	// Autotune selects the self-configuration policy: "model" adopts the
	// cost model's top-ranked halo mode / worker count / tile size,
	// "search" additionally times the model's shortlist on the first few
	// timesteps and keeps the measured winner, "off" disables tuning. An
	// empty string consults the DEVIGO_AUTOTUNE environment variable, so
	// existing programs self-configure with zero code changes. All
	// candidate configurations are bit-exact: tuning never changes
	// results, only speed.
	Autotune string
}

// Apply runs the operator.
func (o *Operator) Apply(cfg ApplyConfig) error {
	if cfg.DT == 0 {
		return fmt.Errorf("devigo: ApplyConfig.DT must be set")
	}
	return o.op.Apply(&core.ApplyOpts{
		TimeM:    cfg.TimeM,
		TimeN:    cfg.TimeN,
		Reverse:  cfg.Reverse,
		Syms:     map[string]float64{"dt": cfg.DT},
		PostStep: cfg.PostStep,
		Autotune: cfg.Autotune,
	})
}

// GeneratedCode returns the C-like source the compiler emitted for the
// operator (paper Listing 11).
func (o *Operator) GeneratedCode() string { return o.op.CCode }

// ScheduleTree renders the compiler's schedule (paper Listing 4).
func (o *Operator) ScheduleTree() string { return o.op.Schedule.String() }

// Perf returns the BENCH-style performance counters of past applications.
func (o *Operator) Perf() core.Perf { return o.op.Report() }

// Config returns the effective execution configuration (engine, halo
// mode, workers, tile rows, autotune policy) the operator runs with —
// whatever the autotuner chose or the construction forced.
func (o *Operator) Config() core.EffectiveConfig { return o.op.Config() }
