package ir

import (
	"sort"

	"devigo/internal/symbolic"
)

// BuildSchedule performs the halo-placement analysis over the ordered
// clusters, producing the schedule tree (paper Listing 4). The analysis is
// deliberately done in two stages mirroring the paper:
//
//  1. Detection (here, Cluster level): a conservative HaloSpot is attached
//     before every cluster for every field it reads at a nonzero offset.
//  2. Optimization (iet package): drop spots whose data is still clean,
//     hoist time-invariant exchanges out of the time loop, merge adjacent
//     spots.
//
// BuildSchedule performs only stage 1; the iet passes consume its output.
// isTimeField reports whether a field name varies over time (parameter
// fields are candidates for hoisting).
func BuildSchedule(clusters []*Cluster, ndims int, isTimeField func(string) bool) *Schedule {
	s := &Schedule{NDims: ndims}
	for _, c := range clusters {
		var halos []HaloReq
		for name, offs := range c.HaloReads {
			for off := range offs {
				halos = append(halos, HaloReq{Field: name, TimeOff: off})
			}
		}
		sortHaloReqs(halos)
		s.Steps = append(s.Steps, Step{Halos: halos, Cluster: c})
	}
	_ = isTimeField
	return s
}

// OptimizeSchedule runs the drop/hoist/merge passes over a schedule,
// returning the optimized form. It implements, at the IR level, the
// HaloSpot manipulation described in paper Section III-g:
//
//   - hoist: exchanges of time-invariant fields move to the preamble and
//     happen exactly once;
//   - drop: an exchange is dropped if the (field, timeOff) data cannot be
//     dirty — i.e. no write to that buffer happened since the last
//     exchange within the steady-state time iteration;
//   - merge: duplicate requirements within one step are deduplicated.
//
// The dirty analysis models the steady state of the time loop: at the top
// of an iteration every time-varying buffer written during an iteration is
// dirty (it was written by the previous iteration).
func OptimizeSchedule(s *Schedule, isTimeField func(string) bool) *Schedule {
	out := &Schedule{NDims: s.NDims}
	// Collect which (field) buffers are written anywhere in the loop body.
	writtenInLoop := map[string]bool{}
	for _, st := range s.Steps {
		for f := range st.Cluster.Writes {
			writtenInLoop[f] = true
		}
	}
	// Hoist: requirements on fields never written inside the loop and not
	// time-varying are satisfied once, before the loop.
	hoisted := map[string]bool{}
	var preamble []HaloReq
	// clean tracks (field|timeOff) pairs exchanged and not rewritten since,
	// within the current iteration. Time-varying buffers restart dirty each
	// iteration, so clean does not persist across the loop back-edge for
	// them; for hoisted fields it persists by construction.
	for _, st := range s.Steps {
		for _, h := range st.Halos {
			if !isTimeField(h.Field) && !writtenInLoop[h.Field] && !hoisted[h.Field] {
				preamble = append(preamble, HaloReq{Field: h.Field, TimeOff: 0})
				hoisted[h.Field] = true
			}
		}
	}
	sortHaloReqs(preamble)
	out.Preamble = preamble

	clean := map[HaloReq]bool{}
	for _, st := range s.Steps {
		var kept []HaloReq
		seen := map[HaloReq]bool{}
		for _, h := range st.Halos {
			if hoisted[h.Field] {
				continue // satisfied by the preamble forever (drop+hoist)
			}
			if clean[h] {
				continue // drop: still clean from an earlier step
			}
			if seen[h] {
				continue // merge: deduplicate within the step
			}
			seen[h] = true
			kept = append(kept, h)
			clean[h] = true
		}
		sortHaloReqs(kept)
		// Writes dirty the written buffer.
		for f, off := range st.Cluster.Writes {
			delete(clean, HaloReq{Field: f, TimeOff: off})
		}
		out.Steps = append(out.Steps, Step{Halos: kept, Cluster: st.Cluster})
	}
	return out
}

func sortHaloReqs(hs []HaloReq) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Field != hs[j].Field {
			return hs[i].Field < hs[j].Field
		}
		return hs[i].TimeOff < hs[j].TimeOff
	})
}

// String renders the schedule in the abbreviated form of paper Listing 4.
func (s *Schedule) String() string {
	out := ""
	for _, h := range s.Preamble {
		out += "|-- <Halo " + h.Field + ">\n"
	}
	out += "|-- time++\n"
	for _, st := range s.Steps {
		for _, h := range st.Halos {
			out += "    |-- <Halo " + h.Field + ">\n"
		}
		out += "    |-- x++ / y++ / ...\n"
		for _, e := range st.Cluster.Eqs {
			out += "        |-- [" + e.LHS.String() + " = ...]\n"
		}
	}
	return out
}

// TimeBufferCount returns how many distinct time buffers of a field the
// schedule touches — used to validate storage allocation.
func TimeBufferCount(clusters []*Cluster, fieldName string) int {
	offs := map[int]bool{}
	for _, c := range clusters {
		for _, e := range c.Eqs {
			lhs := e.LHS.(symbolic.Access)
			if lhs.Fun.Name == fieldName {
				offs[lhs.TimeOff] = true
			}
			for _, a := range symbolic.Accesses(e.RHS) {
				if a.Fun.Name == fieldName {
					offs[a.TimeOff] = true
				}
			}
		}
	}
	return len(offs)
}
