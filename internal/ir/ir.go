// Package ir implements the Cluster-level intermediate representation of
// the devigo compiler: lowered equations grouped by data-dependence
// analysis, with the halo-exchange requirements detected at this level
// (paper Section III-f, Listing 4).
package ir

import (
	"fmt"

	"devigo/internal/symbolic"
)

// Cluster groups equations that share an iteration space and can legally be
// fused into one loop nest: no equation in the cluster reads, at a nonzero
// space offset, a value written by an earlier equation of the same cluster
// (such a read requires a halo exchange and therefore a cluster boundary).
type Cluster struct {
	// Eqs are lowered equations: LHS is a single Access, RHS is a
	// derivative-free, collected expression.
	Eqs []symbolic.Eq
	// Writes maps field name -> time offset written.
	Writes map[string]int
	// HaloReads lists the distributed reads that require fresh halo data:
	// field name -> set of time offsets read at nonzero space offsets.
	HaloReads map[string]map[int]bool
	// Reads lists every read of every field — centred reads included:
	// field name -> set of time offsets read at any space offset. Time
	// tiling needs the full set because a redundant ghost-shell recompute
	// turns even centred reads into reads of neighbour-owned data.
	Reads map[string]map[int]bool
	// ReadRadius is the per-field, per-dimension maximum |space offset|
	// over all reads of that field by this cluster.
	ReadRadius map[string][]int
	// Radius is the maximum stencil radius per dimension over all reads.
	Radius []int
}

// HaloReq names one field/time-offset pair whose halo must be updated
// before a cluster runs.
type HaloReq struct {
	Field   string
	TimeOff int
}

// Schedule is the ordered cluster list plus the halo requirements placed
// between them — the schedule-tree of paper Listing 4 in flat form.
type Schedule struct {
	// Preamble lists halo exchanges hoisted before the time loop
	// (time-invariant parameter fields).
	Preamble []HaloReq
	// Steps interleaves halo nodes and clusters inside the time loop.
	Steps []Step
	// NDims is the space dimensionality.
	NDims int
}

// Step is one entry of the time-loop body: a halo exchange set followed by
// a cluster (Halos may be empty).
type Step struct {
	Halos   []HaloReq
	Cluster *Cluster
}

// Lower expands derivatives, validates shapes and splits the equation list
// into clusters at flow-dependence boundaries.
func Lower(eqs []symbolic.Eq, ndims int) ([]*Cluster, error) {
	lowered := make([]symbolic.Eq, len(eqs))
	for i, e := range eqs {
		lhs := symbolic.ExpandDerivatives(e.LHS)
		acc, ok := lhs.(symbolic.Access)
		if !ok {
			return nil, fmt.Errorf("ir: equation %d LHS must be a single function access, got %s", i, lhs)
		}
		for _, o := range acc.Off {
			if o != 0 {
				return nil, fmt.Errorf("ir: equation %d writes at a shifted point %s; only centered writes are supported", i, acc)
			}
		}
		rhs := symbolic.Collect(symbolic.ExpandDerivatives(e.RHS))
		lowered[i] = symbolic.Eq{LHS: acc, RHS: rhs}
	}
	var clusters []*Cluster
	cur := newCluster(ndims)
	for _, e := range lowered {
		if cur.conflictsWith(e) {
			clusters = append(clusters, cur)
			cur = newCluster(ndims)
		}
		cur.add(e, ndims)
	}
	if len(cur.Eqs) > 0 {
		clusters = append(clusters, cur)
	}
	return clusters, nil
}

func newCluster(ndims int) *Cluster {
	return &Cluster{
		Writes:     map[string]int{},
		HaloReads:  map[string]map[int]bool{},
		Reads:      map[string]map[int]bool{},
		ReadRadius: map[string][]int{},
		Radius:     make([]int, ndims),
	}
}

// conflictsWith reports whether adding eq to the cluster would create an
// intra-cluster flow dependence through a stencil read: eq reads, at a
// nonzero space offset, a (field, timeOff) written by this cluster.
func (c *Cluster) conflictsWith(eq symbolic.Eq) bool {
	for _, a := range symbolic.Accesses(eq.RHS) {
		wOff, written := c.Writes[a.Fun.Name]
		if !written || wOff != a.TimeOff {
			continue
		}
		for _, o := range a.Off {
			if o != 0 {
				return true
			}
		}
	}
	return false
}

func (c *Cluster) add(eq symbolic.Eq, ndims int) {
	c.Eqs = append(c.Eqs, eq)
	lhs := eq.LHS.(symbolic.Access)
	c.Writes[lhs.Fun.Name] = lhs.TimeOff
	for _, a := range symbolic.Accesses(eq.RHS) {
		shifted := false
		rr, ok := c.ReadRadius[a.Fun.Name]
		if !ok {
			rr = make([]int, ndims)
			c.ReadRadius[a.Fun.Name] = rr
		}
		for d, o := range a.Off {
			if o != 0 {
				shifted = true
			}
			if o < 0 {
				o = -o
			}
			if d < ndims {
				if o > c.Radius[d] {
					c.Radius[d] = o
				}
				if o > rr[d] {
					rr[d] = o
				}
			}
		}
		ro, ok := c.Reads[a.Fun.Name]
		if !ok {
			ro = map[int]bool{}
			c.Reads[a.Fun.Name] = ro
		}
		ro[a.TimeOff] = true
		if shifted {
			m, ok := c.HaloReads[a.Fun.Name]
			if !ok {
				m = map[int]bool{}
				c.HaloReads[a.Fun.Name] = m
			}
			m[a.TimeOff] = true
		}
	}
}

// ReadFields returns the distinct field names read by the cluster.
func (c *Cluster) ReadFields() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.Eqs {
		for _, f := range symbolic.Funcs(e.RHS) {
			if !seen[f.Name] {
				seen[f.Name] = true
				out = append(out, f.Name)
			}
		}
	}
	return out
}

// FlopsPerPoint sums the per-point flop cost over the cluster's equations
// (after lowering), feeding the BENCH report and the performance model.
func (c *Cluster) FlopsPerPoint() int {
	n := 0
	for _, e := range c.Eqs {
		n += symbolic.FlopCount(e.RHS) + 1 // +1 for the store-side assignment
	}
	return n
}
