package ir

// This file implements the schedule-level analysis behind
// communication-avoiding time tiling: run k consecutive timesteps between
// halo exchanges, exchanging a deep ghost region (width ~ k*radius) once
// per tile and redundantly recomputing the shrinking ghost shell locally.
// Results are bit-exact versus k=1 because the shell recompute evaluates
// the identical per-point expressions on identical data — the owned region
// of every rank holds exactly the k=1 values after every substep.
//
// The shell schedule generalises to multi-cluster (multi-field) timesteps:
// with clusters i = 0..C-1 of per-dimension radii r_i[d], one timestep
// consumes Stride[d] = sum_i r_i[d] points of shell, and cluster i of
// substep j (0-based within the tile) computes over the owned box extended
// by
//
//	e_{j,i}[d] = (k-1-j)*Stride[d] + Tails[i][d],
//	Tails[i][d] = sum_{i'>i} r_{i'}[d].
//
// Every read of cluster i at substep j is then covered: a field written by
// an earlier cluster of the same substep is valid Tails-deep enough to
// supply the reader's radius, and a field written during the previous
// substep is one full Stride deeper. The shell of the last cluster of the
// last substep is zero — exactly the owned box, so no redundant work
// remains when the tile ends.

// TilePlan is a legal exchange-interval schedule for one compiled
// operator: the shell geometry of every (substep, cluster) pair plus the
// tile-start exchange set.
type TilePlan struct {
	// K is the exchange interval: halos are exchanged once every K
	// timesteps. K >= 2 (a plan is only produced for real tiling).
	K int
	// Stride is the per-dimension shell consumption of one timestep: the
	// summed stencil radii of all clusters.
	Stride []int
	// Tails[i] is the per-dimension shell a cluster later than step i still
	// has to consume within the same timestep.
	Tails [][]int
	// Halos is the tile-start exchange set: every (field, time offset
	// relative to the tile's first step) whose buffer content predates the
	// tile and is read during it. This includes centred reads of older time
	// levels (e.g. u[t-1] of a second-order scheme) that a k=1 schedule
	// never exchanges.
	Halos []HaloReq
	// Hoisted is the once-per-run exchange set of time-invariant parameter
	// fields the shell recompute reads but the k=1 schedule never
	// exchanges (centre-only reads, e.g. the squared slowness m: a k=1
	// sweep touches only its owned points, a ghost-shell sweep does not).
	// Fields already hoisted by the schedule's own preamble are excluded.
	Hoisted []HaloReq
	// Depth is the exchanged ghost width per field per dimension — how deep
	// the tile-start (or preamble) exchange must fill the halo so substep-0
	// shells can read it.
	Depth map[string][]int
	// Alloc is the required allocated ghost width per field per dimension:
	// at least Depth, and wide enough to hold shell writes.
	Alloc map[string][]int
}

// MaxDepth returns the widest exchanged ghost width over all fields and
// dimensions — the deep-halo figure performance models use.
func (p *TilePlan) MaxDepth() int {
	w := 0
	for _, ds := range p.Depth {
		for _, d := range ds {
			if d > w {
				w = d
			}
		}
	}
	return w
}

// MaxStride returns the largest per-dimension shell consumption of one
// timestep.
func (p *TilePlan) MaxStride() []int { return p.Stride }

// PlanTimeTile analyses a schedule for exchange-interval-k execution. It
// returns the plan, or nil with a human-readable reason when the schedule
// cannot legally tile (the operator then falls back to k=1):
//
//   - k < 2, or the schedule performs no stencil reads at all (nothing to
//     amortize);
//   - CIRE scratch clusters are present (their extended-box recompute
//     interleaves with the shell geometry; hasScratch gates this);
//   - a time-varying field is written by more than one cluster or at more
//     than one time offset (the shell validity argument assumes a unique
//     writer per field).
//
// Chunk-size and allocation feasibility are the caller's concern: the plan
// reports the required Depth/Alloc and the caller picks the largest k that
// fits its decomposition.
func PlanTimeTile(s *Schedule, k int, isTimeField func(string) bool, hasScratch bool) (*TilePlan, string) {
	if k < 2 {
		return nil, "exchange interval < 2"
	}
	if hasScratch {
		return nil, "CIRE scratch clusters present"
	}
	nd := s.NDims
	c := len(s.Steps)
	if c == 0 {
		return nil, "empty schedule"
	}

	// Per-step radii, the per-timestep stride and the per-step tails.
	stride := make([]int, nd)
	tails := make([][]int, c)
	for i := c - 1; i >= 0; i-- {
		tails[i] = append([]int(nil), stride...)
		for d := 0; d < nd; d++ {
			stride[d] += s.Steps[i].Cluster.Radius[d]
		}
	}
	anyStride := false
	for d := 0; d < nd; d++ {
		if stride[d] > 0 {
			anyStride = true
		}
	}
	if !anyStride {
		return nil, "schedule has no stencil reads"
	}

	// Unique-writer check for time-varying fields.
	writer := map[string]int{} // field -> write time offset
	wcount := map[string]int{} // field -> writing cluster count
	for _, st := range s.Steps {
		for f, off := range st.Cluster.Writes {
			if !isTimeField(f) {
				continue
			}
			if prev, ok := writer[f]; ok && prev != off {
				return nil, "field " + f + " written at two time offsets"
			}
			writer[f] = off
			wcount[f]++
		}
	}
	for f, n := range wcount {
		if n > 1 {
			return nil, "field " + f + " written by multiple clusters"
		}
	}

	plan := &TilePlan{
		K:      k,
		Stride: stride,
		Tails:  tails,
		Depth:  map[string][]int{},
		Alloc:  map[string][]int{},
	}

	// Required exchange depth per field: the deepest substep-0 shell of any
	// reading cluster plus that cluster's read radius of the field.
	for i, st := range s.Steps {
		for f, rr := range st.Cluster.ReadRadius {
			depth, ok := plan.Depth[f]
			if !ok {
				depth = make([]int, nd)
				plan.Depth[f] = depth
			}
			for d := 0; d < nd; d++ {
				e0 := (k-1)*stride[d] + tails[i][d]
				depth[d] = max(depth[d], e0+rr[d])
			}
		}
	}
	// Allocation: exchange depth, widened to hold the writer's substep-0
	// shell writes.
	for f, depth := range plan.Depth {
		plan.Alloc[f] = append([]int(nil), depth...)
	}
	for i, st := range s.Steps {
		for f := range st.Cluster.Writes {
			alloc, ok := plan.Alloc[f]
			if !ok {
				alloc = make([]int, nd)
			}
			for d := 0; d < nd; d++ {
				alloc[d] = max(alloc[d], (k-1)*stride[d]+tails[i][d])
			}
			plan.Alloc[f] = alloc
		}
	}

	// Tile-start exchange set: for each time-varying field f read at time
	// offset o and written (if at all) at offset w, the buffers holding
	// pre-tile content are the offsets strictly between o (inclusive) and w
	// (exclusive) — {o, ..., 0} in practice for both forward (w=+1) and
	// reverse (w=-1) schedules. Fields never written in the loop but
	// time-varying are exchanged once per tile at every read offset;
	// time-invariant parameter fields stay in the hoisted preamble.
	seen := map[HaloReq]bool{}
	for _, st := range s.Steps {
		for f, offs := range st.Cluster.Reads {
			if !isTimeField(f) {
				continue
			}
			w, isWritten := writer[f]
			for o := range offs {
				switch {
				case !isWritten:
					seen[HaloReq{Field: f, TimeOff: o}] = true
				case o < w:
					for j := o; j < w; j++ {
						seen[HaloReq{Field: f, TimeOff: j}] = true
					}
				case o > w:
					for j := o; j > w; j-- {
						seen[HaloReq{Field: f, TimeOff: j}] = true
					}
				}
			}
		}
	}
	for h := range seen {
		// A written field whose reads are all supplied within the tile
		// needs no exchange but may still appear in Depth via a same-offset
		// read; the Halos list is what actually gets exchanged.
		plan.Halos = append(plan.Halos, h)
	}
	sortHaloReqs(plan.Halos)
	if len(plan.Halos) == 0 {
		return nil, "no per-timestep exchanges to amortize"
	}

	// Time-invariant parameters read anywhere (centre included) must have
	// valid ghosts for the shell recompute; those not already in the
	// schedule's preamble get a plan-level hoisted exchange.
	inPreamble := map[string]bool{}
	for _, h := range s.Preamble {
		inPreamble[h.Field] = true
	}
	writtenInLoop := map[string]bool{}
	for _, st := range s.Steps {
		for f := range st.Cluster.Writes {
			writtenInLoop[f] = true
		}
	}
	hoistSeen := map[string]bool{}
	for _, st := range s.Steps {
		for f := range st.Cluster.Reads {
			if isTimeField(f) || writtenInLoop[f] || inPreamble[f] || hoistSeen[f] {
				continue
			}
			hoistSeen[f] = true
			plan.Hoisted = append(plan.Hoisted, HaloReq{Field: f, TimeOff: 0})
		}
	}
	sortHaloReqs(plan.Hoisted)
	return plan, ""
}
