package ir

import (
	"testing"

	"devigo/internal/symbolic"
)

// schedOf lowers equations and runs the full schedule pipeline.
func schedOf(t *testing.T, eqs []symbolic.Eq, nd int, isTime func(string) bool) *Schedule {
	t.Helper()
	clusters, err := Lower(eqs, nd)
	if err != nil {
		t.Fatal(err)
	}
	return OptimizeSchedule(BuildSchedule(clusters, nd, isTime), isTime)
}

// acousticSched builds the canonical second-order scheme: one cluster,
// u[t+1] from a stencil on u[t], a centred u[t-1], and centred parameters.
func acousticSched(t *testing.T) (*Schedule, func(string) bool) {
	t.Helper()
	u := timeFunc("u", 2)
	m := paramFunc("m", 2)
	rhs := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(m), symbolic.Laplace(symbolic.At(u), 2, 4)),
		symbolic.At(u),
		symbolic.Neg(symbolic.Shifted(u, -1, 0, 0)),
	)
	isTime := func(name string) bool { return name == "u" }
	return schedOf(t, []symbolic.Eq{{LHS: symbolic.ForwardStencil(u), RHS: rhs}}, 2, isTime), isTime
}

func TestPlanTimeTileAcoustic(t *testing.T) {
	s, isTime := acousticSched(t)
	p, reason := PlanTimeTile(s, 4, isTime, false)
	if p == nil {
		t.Fatalf("acoustic schedule refused: %s", reason)
	}
	if p.K != 4 {
		t.Errorf("K = %d, want 4", p.K)
	}
	// Single cluster of radius 2: stride [2 2], tail [0 0].
	if p.Stride[0] != 2 || p.Stride[1] != 2 {
		t.Errorf("stride = %v, want [2 2]", p.Stride)
	}
	if len(p.Tails) != 1 || p.Tails[0][0] != 0 {
		t.Errorf("tails = %v, want [[0 0]]", p.Tails)
	}
	// Tile-start exchange: u at t (stencil read, o=0) and t-1 (centred
	// read of the older level — never exchanged by a k=1 schedule).
	want := []HaloReq{{Field: "u", TimeOff: -1}, {Field: "u", TimeOff: 0}}
	if len(p.Halos) != 2 || p.Halos[0] != want[0] || p.Halos[1] != want[1] {
		t.Errorf("halos = %v, want %v", p.Halos, want)
	}
	// Exchange depth for u: (k-1)*stride + radius = 3*2+2 = 8.
	if d := p.Depth["u"]; d[0] != 8 || d[1] != 8 {
		t.Errorf("depth[u] = %v, want [8 8]", d)
	}
	// m is read at the centre over the shell: depth (k-1)*stride = 6, and
	// it must be in the hoisted set (the k=1 preamble never exchanges a
	// centre-only parameter).
	if d := p.Depth["m"]; d[0] != 6 || d[1] != 6 {
		t.Errorf("depth[m] = %v, want [6 6]", d)
	}
	if len(p.Hoisted) != 1 || p.Hoisted[0].Field != "m" {
		t.Errorf("hoisted = %v, want [m@0]", p.Hoisted)
	}
	if p.MaxDepth() != 8 {
		t.Errorf("MaxDepth = %d, want 8", p.MaxDepth())
	}
}

func TestPlanTimeTileElasticTwoClusters(t *testing.T) {
	// Virieux-style pair: v[t+1] = f(v[t], tau[t] stencil);
	// tau[t+1] = g(tau[t], v[t+1] stencil). Two clusters, in-tile supply
	// of v[t+1], per-cluster tails.
	v := timeFunc("v", 2)
	tau := timeFunc("tau", 2)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(v),
		RHS: symbolic.NewAdd(symbolic.At(v), symbolic.Dx(symbolic.At(tau), 0, 4))}
	eq2 := symbolic.Eq{LHS: symbolic.ForwardStencil(tau),
		RHS: symbolic.NewAdd(symbolic.At(tau), symbolic.Dx(symbolic.Shifted(v, 1, 0, 0), 0, 4))}
	isTime := func(string) bool { return true }
	s := schedOf(t, []symbolic.Eq{eq1, eq2}, 2, isTime)
	if len(s.Steps) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(s.Steps))
	}
	p, reason := PlanTimeTile(s, 2, isTime, false)
	if p == nil {
		t.Fatalf("elastic-like schedule refused: %s", reason)
	}
	r0, r1 := s.Steps[0].Cluster.Radius[0], s.Steps[1].Cluster.Radius[0]
	if p.Stride[0] != r0+r1 {
		t.Errorf("stride = %d, want %d+%d", p.Stride[0], r0, r1)
	}
	// First cluster's tail is the second's radius; last tail is zero.
	if p.Tails[0][0] != r1 || p.Tails[1][0] != 0 {
		t.Errorf("tails = %v, want [[%d ...] [0 ...]]", p.Tails, r1)
	}
	// v[t+1] is supplied in-tile (read offset == write offset): the
	// exchange set is exactly {v@0, tau@0}.
	want := []HaloReq{{Field: "tau", TimeOff: 0}, {Field: "v", TimeOff: 0}}
	if len(p.Halos) != 2 || p.Halos[0] != want[0] || p.Halos[1] != want[1] {
		t.Errorf("halos = %v, want %v", p.Halos, want)
	}
}

func TestPlanTimeTileReverseSchedule(t *testing.T) {
	// Adjoint-style: w[t-1] = f(w[t] stencil, w[t+1] centred). The
	// pre-tile buffers are t and t+1.
	w := timeFunc("w", 2)
	rhs := symbolic.NewAdd(
		symbolic.Laplace(symbolic.At(w), 2, 4),
		symbolic.Shifted(w, 1, 0, 0),
	)
	isTime := func(string) bool { return true }
	s := schedOf(t, []symbolic.Eq{{LHS: symbolic.Backward(w), RHS: rhs}}, 2, isTime)
	p, reason := PlanTimeTile(s, 3, isTime, false)
	if p == nil {
		t.Fatalf("reverse schedule refused: %s", reason)
	}
	want := []HaloReq{{Field: "w", TimeOff: 0}, {Field: "w", TimeOff: 1}}
	if len(p.Halos) != 2 || p.Halos[0] != want[0] || p.Halos[1] != want[1] {
		t.Errorf("halos = %v, want %v", p.Halos, want)
	}
}

func TestPlanTimeTileRefusals(t *testing.T) {
	s, isTime := acousticSched(t)
	if p, _ := PlanTimeTile(s, 1, isTime, false); p != nil {
		t.Error("k=1 must not produce a plan")
	}
	if p, reason := PlanTimeTile(s, 4, isTime, true); p != nil || reason == "" {
		t.Error("CIRE scratch must refuse tiling with a reason")
	}

	// A field written at two time offsets refuses.
	u := timeFunc("u", 2)
	eqa := symbolic.Eq{LHS: symbolic.ForwardStencil(u), RHS: symbolic.Laplace(symbolic.At(u), 2, 2)}
	eqb := symbolic.Eq{LHS: symbolic.At(u), RHS: symbolic.Shifted(u, 1, 1, 0)}
	isTimeU := func(string) bool { return true }
	s2 := schedOf(t, []symbolic.Eq{eqa, eqb}, 2, isTimeU)
	if p, reason := PlanTimeTile(s2, 2, isTimeU, false); p != nil || reason == "" {
		t.Errorf("two write offsets of one field must refuse, got plan=%v reason=%q", p, reason)
	}

	// A radius-0 schedule (pointwise update) has nothing to amortize.
	g := paramFunc("g", 2)
	eqg := symbolic.Eq{LHS: symbolic.At(g), RHS: symbolic.NewAdd(symbolic.At(g), symbolic.Int(1))}
	s3 := schedOf(t, []symbolic.Eq{eqg}, 2, func(string) bool { return false })
	if p, reason := PlanTimeTile(s3, 2, func(string) bool { return false }, false); p != nil || reason == "" {
		t.Errorf("pointwise schedule must refuse, got plan=%v reason=%q", p, reason)
	}
}

func TestClusterReadsTracksCentredReads(t *testing.T) {
	u := timeFunc("u", 2)
	m := paramFunc("m", 2)
	rhs := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(m), symbolic.Laplace(symbolic.At(u), 2, 4)),
		symbolic.Shifted(u, -1, 0, 0),
	)
	clusters, err := Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u), RHS: rhs}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := clusters[0]
	if !c.Reads["u"][0] || !c.Reads["u"][-1] {
		t.Errorf("Reads[u] = %v, want offsets 0 and -1", c.Reads["u"])
	}
	if !c.Reads["m"][0] {
		t.Errorf("Reads[m] = %v, want offset 0", c.Reads["m"])
	}
	// HaloReads must NOT contain the centre-only reads.
	if c.HaloReads["m"] != nil {
		t.Errorf("HaloReads[m] = %v, want absent (centre-only)", c.HaloReads["m"])
	}
	if c.HaloReads["u"][-1] {
		t.Error("HaloReads[u] contains the centred t-1 read")
	}
	if rr := c.ReadRadius["u"]; rr[0] != 2 || rr[1] != 2 {
		t.Errorf("ReadRadius[u] = %v, want [2 2]", rr)
	}
	if rr := c.ReadRadius["m"]; rr[0] != 0 || rr[1] != 0 {
		t.Errorf("ReadRadius[m] = %v, want [0 0]", rr)
	}
}
