package ir

import (
	"strings"
	"testing"

	"devigo/internal/symbolic"
)

func timeFunc(name string, nd int) *symbolic.FuncRef {
	return &symbolic.FuncRef{Name: name, NDims: nd, IsTime: true, NumBufs: 3}
}

func paramFunc(name string, nd int) *symbolic.FuncRef {
	return &symbolic.FuncRef{Name: name, NDims: nd}
}

func TestLowerRejectsNonAccessLHS(t *testing.T) {
	if _, err := Lower([]symbolic.Eq{{LHS: symbolic.S("x"), RHS: symbolic.Int(1)}}, 2); err == nil {
		t.Error("non-access LHS should be rejected")
	}
}

func TestLowerRejectsShiftedWrite(t *testing.T) {
	u := timeFunc("u", 2)
	eq := symbolic.Eq{LHS: symbolic.Shifted(u, 1, 1, 0), RHS: symbolic.Int(0)}
	if _, err := Lower([]symbolic.Eq{eq}, 2); err == nil {
		t.Error("shifted write should be rejected")
	}
}

func TestLowerSingleClusterLaplacian(t *testing.T) {
	u := timeFunc("u", 2)
	eq := symbolic.Eq{
		LHS: symbolic.ForwardStencil(u),
		RHS: symbolic.Laplace(symbolic.At(u), 2, 4),
	}
	clusters, err := Lower([]symbolic.Eq{eq}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("want 1 cluster, got %d", len(clusters))
	}
	c := clusters[0]
	if c.Radius[0] != 2 || c.Radius[1] != 2 {
		t.Errorf("radius = %v, want [2 2] for SDO 4", c.Radius)
	}
	if !c.HaloReads["u"][0] {
		t.Error("u at t must need a halo")
	}
	if c.Writes["u"] != 1 {
		t.Errorf("writes = %v", c.Writes)
	}
}

func TestLowerSplitsOnFlowDependence(t *testing.T) {
	// Virieux-style: v[t+1] = f(tau[t]); tau[t+1] = g(v[t+1] shifted) —
	// the second reads the first's output at an offset, forcing a split.
	v := timeFunc("v", 1)
	tau := timeFunc("tau", 1)
	eq1 := symbolic.Eq{
		LHS: symbolic.ForwardStencil(v),
		RHS: symbolic.NewAdd(symbolic.At(v), symbolic.Shifted(tau, 0, 1)),
	}
	eq2 := symbolic.Eq{
		LHS: symbolic.ForwardStencil(tau),
		RHS: symbolic.Shifted(v, 1, -1),
	}
	clusters, err := Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(clusters))
	}
	// Cluster 2 must require the halo of v at t+1.
	if !clusters[1].HaloReads["v"][1] {
		t.Error("second cluster must need halo of v[t+1]")
	}
}

func TestLowerKeepsIndependentEqsFused(t *testing.T) {
	// Two updates reading only old time levels fuse into one cluster.
	u := timeFunc("u", 1)
	w := timeFunc("w", 1)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(u), RHS: symbolic.Shifted(w, 0, 1)}
	eq2 := symbolic.Eq{LHS: symbolic.ForwardStencil(w), RHS: symbolic.Shifted(u, 0, -1)}
	clusters, err := Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("want 1 fused cluster, got %d", len(clusters))
	}
}

func TestLowerCentredReadOfOwnWriteDoesNotSplit(t *testing.T) {
	// Reading the freshly written value at the same point needs no halo.
	u := timeFunc("u", 1)
	w := timeFunc("w", 1)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(u), RHS: symbolic.At(u)}
	eq2 := symbolic.Eq{LHS: symbolic.ForwardStencil(w), RHS: symbolic.ForwardStencil(u)}
	clusters, err := Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("want 1 cluster, got %d", len(clusters))
	}
}

func buildAcousticLike(t *testing.T) []*Cluster {
	t.Helper()
	u := timeFunc("u", 2)
	m := paramFunc("m", 2)
	// u[t+1] = 2u - u[t-1] + dt^2/m * laplace(u): reads m at offset 0 only,
	// but the laplacian of u shifted also multiplies m in TTI-like forms;
	// here read m at an offset to exercise parameter halos.
	rhs := symbolic.NewAdd(
		symbolic.NewMul(symbolic.Shifted(m, 0, 1, 0), symbolic.Laplace(symbolic.At(u), 2, 2)),
		symbolic.At(u),
	)
	clusters, err := Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u), RHS: rhs}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return clusters
}

func TestScheduleHoistsParameterHalo(t *testing.T) {
	clusters := buildAcousticLike(t)
	isTime := func(name string) bool { return name == "u" }
	sched := BuildSchedule(clusters, 2, isTime)
	// Detection stage is conservative: both u and m requirements present.
	if len(sched.Steps) != 1 || len(sched.Steps[0].Halos) != 2 {
		t.Fatalf("conservative schedule wrong: %+v", sched.Steps)
	}
	opt := OptimizeSchedule(sched, isTime)
	if len(opt.Preamble) != 1 || opt.Preamble[0].Field != "m" {
		t.Errorf("m exchange should be hoisted, preamble = %v", opt.Preamble)
	}
	if len(opt.Steps[0].Halos) != 1 || opt.Steps[0].Halos[0].Field != "u" {
		t.Errorf("time loop should keep only u halo, got %v", opt.Steps[0].Halos)
	}
}

func TestScheduleDropsCleanSpot(t *testing.T) {
	// Two clusters both reading u[t] at offsets, with no write of u[t] in
	// between: the second halo requirement must be dropped.
	u := timeFunc("u", 1)
	w := timeFunc("w", 1)
	v := timeFunc("v", 1)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(w), RHS: symbolic.Shifted(u, 0, 1)}
	// eq2 reads w[t+1] at an offset -> new cluster; also reads u[t] at an
	// offset again.
	eq2 := symbolic.Eq{
		LHS: symbolic.ForwardStencil(v),
		RHS: symbolic.NewAdd(symbolic.Shifted(w, 1, -1), symbolic.Shifted(u, 0, -1)),
	}
	clusters, err := Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(clusters))
	}
	isTime := func(string) bool { return true }
	opt := OptimizeSchedule(BuildSchedule(clusters, 1, isTime), isTime)
	// Step 1: u halo. Step 2: w[t+1] halo only (u still clean).
	if len(opt.Steps[0].Halos) != 1 || opt.Steps[0].Halos[0].Field != "u" {
		t.Errorf("step 1 halos = %v", opt.Steps[0].Halos)
	}
	if len(opt.Steps[1].Halos) != 1 || opt.Steps[1].Halos[0].Field != "w" {
		t.Errorf("step 2 halos = %v (u should have been dropped as clean)", opt.Steps[1].Halos)
	}
}

func TestScheduleStringForm(t *testing.T) {
	clusters := buildAcousticLike(t)
	isTime := func(name string) bool { return name == "u" }
	opt := OptimizeSchedule(BuildSchedule(clusters, 2, isTime), isTime)
	s := opt.String()
	if !strings.Contains(s, "<Halo m>") || !strings.Contains(s, "time++") {
		t.Errorf("schedule rendering missing parts:\n%s", s)
	}
	// The m halo must appear before time++ (hoisted).
	if strings.Index(s, "<Halo m>") > strings.Index(s, "time++") {
		t.Error("hoisted halo should precede the time loop")
	}
}

func TestFlopsPerPointPositive(t *testing.T) {
	clusters := buildAcousticLike(t)
	if f := clusters[0].FlopsPerPoint(); f < 5 {
		t.Errorf("flops per point = %d, suspiciously low", f)
	}
}

func TestTimeBufferCount(t *testing.T) {
	u := timeFunc("u", 1)
	eq := symbolic.Eq{
		LHS: symbolic.ForwardStencil(u),
		RHS: symbolic.NewAdd(symbolic.At(u), symbolic.Backward(u)),
	}
	clusters, err := Lower([]symbolic.Eq{eq}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := TimeBufferCount(clusters, "u"); n != 3 {
		t.Errorf("time buffers = %d, want 3", n)
	}
}
