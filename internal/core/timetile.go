package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"devigo/internal/halo"
	"devigo/internal/iet"
	"devigo/internal/ir"
	"devigo/internal/obs"
	"devigo/internal/runtime"
)

// This file wires communication-avoiding time tiling (exchange interval
// k) through the operator: instead of one latency-bound halo exchange per
// timestep per field, a k-times-deeper ghost region is exchanged once per
// k steps and the shrinking ghost shell is recomputed redundantly in
// between (ir.PlanTimeTile derives the shell geometry and proves
// legality). The owned box of every rank holds bit-identical values to a
// k=1 run after every substep, so tiling composes with every halo mode,
// both engines, the adjoint/reverse schedules and the differential/dot-
// product certification harnesses unchanged.

// TimeTileEnvVar overrides the exchange interval when Options.TimeTile is
// unset: DEVIGO_TIME_TILE=k runs existing programs with deep-halo time
// tiling with zero code changes.
const TimeTileEnvVar = "DEVIGO_TIME_TILE"

// MaxTileCandidate caps the exchange interval the autotuner explores (and
// the default devigo-bench sweep).
const MaxTileCandidate = 8

// resolveTimeTile picks the requested exchange interval: explicit
// Options.TimeTile wins, then the DEVIGO_TIME_TILE environment variable,
// then 1 (no tiling).
func resolveTimeTile(requested int) (int, error) {
	if requested > 0 {
		return requested, nil
	}
	if requested < 0 {
		return 0, fmt.Errorf("core: TimeTile must be >= 1, got %d", requested)
	}
	env := strings.TrimSpace(os.Getenv(TimeTileEnvVar))
	if env == "" {
		return 1, nil
	}
	k, err := strconv.Atoi(env)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("core: bad %s=%q (want an integer >= 1)", TimeTileEnvVar, env)
	}
	return k, nil
}

// isTimeField reports whether a field of the operator varies over time
// (has more than one buffer).
func (op *Operator) isTimeField(name string) bool {
	f, ok := op.Fields[name]
	return ok && len(f.Bufs) > 1
}

// tileFits reports whether a plan's exchange depths can be filled by a
// one-hop nearest-neighbour exchange: along every decomposed dimension the
// depth must not exceed the smallest owned chunk.
func tileFits(p *ir.TilePlan, minChunk, topology []int) bool {
	for _, depth := range p.Depth {
		for d := range minChunk {
			if topology[d] > 1 && depth[d] > minChunk[d] {
				return false
			}
		}
	}
	return true
}

// allocFits reports whether a plan's required ghost allocation fits the
// operator's fields as currently allocated (the autotuner never grows
// storage mid-run; only construction and explicit RetargetTimeTile do).
func (op *Operator) allocFits(p *ir.TilePlan) bool {
	for name, alloc := range p.Alloc {
		f, ok := op.Fields[name]
		if !ok {
			continue
		}
		for d := range alloc {
			if alloc[d] > f.Halo[d] {
				return false
			}
		}
	}
	return true
}

// selectTilePlan picks the largest feasible exchange interval <= k for a
// distributed schedule, or nil when no interval >= 2 is legal (structural
// refusal — CIRE scratch, multi-writer fields — or depths exceeding the
// decomposition's chunks).
func (op *Operator) selectTilePlan(k int) *ir.TilePlan {
	if op.ctx == nil || op.ctx.Serial() || k < 2 {
		return nil
	}
	minChunk := op.ctx.Decomp.MinChunk()
	for kk := k; kk >= 2; kk-- {
		p, _ := ir.PlanTimeTile(op.Schedule, kk, op.isTimeField, op.hasScratch)
		if p == nil {
			return nil
		}
		if tileFits(p, minChunk, op.ctx.Decomp.Topology) {
			return p
		}
	}
	return nil
}

// maxFeasibleTile returns the largest exchange interval (capped at
// MaxTileCandidate) whose plan fits both the decomposition chunks and the
// *current* ghost allocation — the k-axis bound the autotuner plans over.
// The axis only opens once an interval > 1 was explicitly provisioned
// (construction or RetargetTimeTile): default operators keep the classic
// candidate space and never pay deep-halo storage.
func (op *Operator) maxFeasibleTile() int {
	if op.ctx == nil || op.ctx.Serial() || !op.tileProvisioned {
		return 1
	}
	minChunk := op.ctx.Decomp.MinChunk()
	for k := MaxTileCandidate; k >= 2; k-- {
		p, _ := ir.PlanTimeTile(op.Schedule, k, op.isTimeField, op.hasScratch)
		if p == nil {
			return 1
		}
		if !tileFits(p, minChunk, op.ctx.Decomp.Topology) {
			continue
		}
		if !op.allocFits(p) {
			continue
		}
		return k
	}
	return 1
}

// TimeTile reports the operator's current exchange interval (1 = exchange
// every step, the classic schedule).
func (op *Operator) TimeTile() int {
	if op.plan == nil {
		return 1
	}
	return op.plan.K
}

// TilePlan exposes the active time-tiling plan (nil when the operator
// runs the classic one-exchange-per-step schedule).
func (op *Operator) TilePlan() *ir.TilePlan { return op.plan }

// InjectDepth returns the per-dimension ghost depth into which point
// sources must mirror their injections for results to stay bit-exact
// under time tiling (a rank redundantly recomputing its ghost shell must
// observe the same injected values its neighbour applied to the owned
// copy). nil when no tiling is active — plain owned-only injection then
// matches the k=1 schedule exactly.
func (op *Operator) InjectDepth() []int {
	if op.plan == nil {
		return nil
	}
	depth := make([]int, op.Grid.NDims())
	for _, f := range op.Fields {
		for d := range depth {
			if d < len(f.Halo) && f.Halo[d] > depth[d] {
				depth[d] = f.Halo[d]
			}
		}
	}
	return depth
}

// RetargetTimeTile re-lowers the operator onto a different exchange
// interval: the largest feasible interval <= k is planned (falling back
// to 1 when the schedule cannot tile or the context is serial), ghost
// storage is grown as needed — compiled kernels survive because they
// resolve strides at execution time — the exchanger set is rebuilt at the
// new depths, and the IET/source are refreshed. Like Retarget, switching
// k never changes results: the redundant shell recompute evaluates
// identical expressions on identical data.
func (op *Operator) RetargetTimeTile(k int) error {
	if k < 1 {
		return fmt.Errorf("core: %s: exchange interval must be >= 1, got %d", op.Name, k)
	}
	if k > 1 {
		op.tileProvisioned = true
	}
	cur := op.TimeTile()
	plan := op.selectTilePlan(k)
	newK := 1
	if plan != nil {
		newK = plan.K
	}
	if newK == cur {
		return nil
	}
	op.plan = plan
	op.tilePos = 0
	if plan != nil {
		for name, alloc := range plan.Alloc {
			if f, ok := op.Fields[name]; ok {
				f.GrowHalo(alloc)
			}
		}
	}
	op.buildExchangers()
	if plan != nil && op.ctx != nil && !op.ctx.Serial() {
		// A switch can happen mid-run (the search autotuner retargets
		// between timesteps), after Apply's preamble already ran — refresh
		// the time-invariant ghosts at the new depths right away. The
		// exchanges are collective, and every rank adopts configurations in
		// lockstep, so this cannot deadlock or skew. Like Apply's preamble,
		// the traffic is classified as once-per-run in the obs metrics.
		rank := op.obsRank()
		obs.SetPreamble(rank, true)
		hs := time.Now()
		for _, h := range op.Schedule.Preamble {
			if ex, ok := op.exchangers[h.Field]; ok {
				ex.Exchange(0)
			}
		}
		for _, h := range plan.Hoisted {
			if ex, ok := op.exchangers[h.Field]; ok {
				ex.Exchange(0)
			}
		}
		op.perf.HaloSeconds += time.Since(hs).Seconds()
		obs.SetPreamble(rank, false)
	}
	op.Tree = op.lowerTree()
	op.emitCode()
	return nil
}

// exchangeDepth returns the ghost width the operator exchanges for a
// field: the plan's computed depth under time tiling, the field's
// pre-growth base width otherwise (for a never-grown operator that is the
// full allocated halo — the classic behaviour).
func (op *Operator) exchangeDepth(name string) []int {
	if op.plan != nil {
		return op.plan.Depth[name]
	}
	return op.baseHalo[name]
}

// lowerTree lowers the schedule IET for the operator's current halo mode
// and exchange interval.
func (op *Operator) lowerTree() iet.Callable {
	built := iet.Build(op.Name, op.Schedule)
	if op.plan != nil {
		return iet.LowerTimeTile(built, op.mode, op.plan.K, op.plan.Halos)
	}
	return iet.LowerHalos(built, op.mode)
}

// shellBox returns the compute box of schedule step si at tile substep j:
// the owned box extended by the shrinking ghost shell, clipped where the
// shell would fall off the global domain.
func (op *Operator) shellBox(localShape []int, j, si int) runtime.Box {
	p := op.plan
	nd := len(localShape)
	b := runtime.Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		ext := (op.tileLen-1-j)*p.Stride[d] + p.Tails[si][d]
		lo, hi := ext, ext
		if lo > op.shellLo[d] {
			lo = op.shellLo[d]
		}
		if hi > op.shellHi[d] {
			hi = op.shellHi[d]
		}
		b.Lo[d] = -lo
		b.Hi[d] = localShape[d] + hi
	}
	return b
}

// tiledStep executes one timestep of the time-tiled schedule: at the head
// of a tile every pre-tile buffer is exchanged at the deep ghost width
// (asynchronously overlapped with the first cluster's CORE compute under
// the full pattern), then every cluster sweeps its owned-plus-shell box.
// remaining is the number of steps left in this Apply including the
// current one — a tile never outlives its Apply, so short windows (the
// adjoint driver applies one step at a time) degenerate gracefully to the
// k=1 schedule instead of paying shell recompute they cannot amortize.
func (op *Operator) tiledStep(t int, bound [][]float64, localShape []int, remaining int) {
	p := op.plan
	if op.tilePos == 0 {
		op.tileLen = p.K
		if remaining < op.tileLen {
			op.tileLen = remaining
		}
		if op.tileLen < 1 {
			op.tileLen = 1
		}
	}
	j := op.tilePos
	rank := op.obsRank()
	overlap := op.mode == halo.ModeFull && j == 0
	if j == 0 && !overlap {
		sp := obs.Begin(rank, obs.PhaseExchange, t)
		hs := time.Now()
		for _, h := range p.Halos {
			if ex, ok := op.tileExchangers[h]; ok {
				ex.Exchange(t + h.TimeOff)
			}
		}
		op.perf.HaloSeconds += time.Since(hs).Seconds()
		sp.End()
	}
	owned := fullBox(localShape)
	ownedPts := int64(owned.Size())
	for si := range op.Schedule.Steps {
		k := op.kernels[si]
		box := op.shellBox(localShape, j, si)
		obs.Add(rank, obs.CtrShellPoints, int64(box.Size())-ownedPts)
		if overlap && si == 0 {
			op.applyTileOverlap(t, si, box, bound[si], localShape)
			continue
		}
		if obs.TracingEnabled() && box.Size() > owned.Size() {
			// Split the sweep so the trace separates owned compute from the
			// redundant shell recompute. Per-point updates within one
			// schedule step are independent, so sweeping the owned box and
			// the shell slabs separately is bit-identical to one sweep.
			cs := time.Now()
			sp := obs.Begin(rank, obs.PhaseCompute, t)
			k.Run(t, owned, bound[si], &op.execOpts)
			sp.End()
			sp = obs.Begin(rank, obs.PhaseShell, t)
			for _, rb := range remainderBoxes(box, owned) {
				// Shell slabs are thin and uneven: let drained workers
				// steal across the static partition.
				k.Run(t, rb, bound[si], &op.shellOpts)
			}
			sp.End()
			op.perf.ComputeSeconds += time.Since(cs).Seconds()
			op.perf.PointsUpdated += int64(box.Size())
			continue
		}
		sp := obs.Begin(rank, obs.PhaseCompute, t)
		cs := time.Now()
		eo := &op.execOpts
		if box.Size() > owned.Size() {
			// The sweep includes the shrinking ghost shell — the
			// load-imbalanced case bounded stealing exists for.
			eo = &op.shellOpts
		}
		k.Run(t, box, bound[si], eo)
		op.perf.ComputeSeconds += time.Since(cs).Seconds()
		op.perf.PointsUpdated += int64(box.Size())
		sp.End()
	}
	op.tilePos++
	if op.tilePos >= op.tileLen {
		op.tilePos = 0
	}
}

// applyTileOverlap runs the first cluster of a tile's first substep under
// the full pattern: the deep exchange is posted asynchronously, the CORE
// box (owned shrunk by the cluster radius, so no read touches in-flight
// halo data) computes with MPI_Test progress prods, then the exchange
// completes and the remainder of the owned-plus-shell box — the boundary
// ring plus the redundant shell — is swept.
func (op *Operator) applyTileOverlap(t, si int, outer runtime.Box, syms []float64, localShape []int) {
	k := op.kernels[si]
	each := func(fn func(ex halo.Exchanger, tt int)) {
		for _, h := range op.plan.Halos {
			if ex, ok := op.tileExchangers[h]; ok {
				fn(ex, t+h.TimeOff)
			}
		}
	}
	op.overlapSweep(k, t, outer, coreBox(localShape, k.StencilRadius()), syms,
		func() { each(func(ex halo.Exchanger, tt int) { ex.Start(tt) }) },
		func() { each(func(ex halo.Exchanger, tt int) { ex.Progress() }) },
		func() { each(func(ex halo.Exchanger, tt int) { ex.Finish(tt) }) })
}

// remainderBoxes peels outer minus inner into disjoint slabs (inner must
// be contained in outer; an empty inner yields outer itself).
func remainderBoxes(outer, inner runtime.Box) []runtime.Box {
	var rem []runtime.Box
	box := runtime.Box{Lo: append([]int(nil), outer.Lo...), Hi: append([]int(nil), outer.Hi...)}
	for d := range box.Lo {
		low := runtime.Box{Lo: append([]int(nil), box.Lo...), Hi: append([]int(nil), box.Hi...)}
		low.Hi[d] = inner.Lo[d]
		if !low.Empty() {
			rem = append(rem, low)
		}
		high := runtime.Box{Lo: append([]int(nil), box.Lo...), Hi: append([]int(nil), box.Hi...)}
		high.Lo[d] = inner.Hi[d]
		if !high.Empty() {
			rem = append(rem, high)
		}
		box.Lo[d] = inner.Lo[d]
		box.Hi[d] = inner.Hi[d]
	}
	return rem
}

// CommStats is the modelled steady-state per-timestep communication
// volume of an operator's current configuration, with deep-halo exchanges
// amortized over the exchange interval. The numbers come from
// halo.Traffic / halo.AmortizedTraffic — the same accounting the
// performance models use — so benchmark gates compare like with like.
type CommStats struct {
	// TimeTile is the exchange interval the stats are amortized over.
	TimeTile int `json:"time_tile"`
	// MsgsPerStep is the average point-to-point message count per step.
	MsgsPerStep float64 `json:"msgs_per_step"`
	// BytesPerStep is the average exchanged byte volume per step.
	BytesPerStep float64 `json:"bytes_per_step"`
}

// CommStats reports the operator's modelled per-timestep communication
// (zero when serial). Preamble exchanges happen once per run and are
// excluded from the steady state.
func (op *Operator) CommStats() CommStats {
	out := CommStats{TimeTile: op.TimeTile()}
	if op.ctx == nil || op.ctx.Serial() || op.mode == halo.ModeNone {
		return out
	}
	f := op.anyField()
	if f == nil {
		return out
	}
	local := f.LocalShape
	if op.plan != nil {
		k := float64(op.plan.K)
		for _, h := range op.plan.Halos {
			m, b := halo.TrafficDepth(op.mode, local, op.plan.Depth[h.Field])
			out.MsgsPerStep += float64(m) / k
			out.BytesPerStep += b / k
		}
		return out
	}
	for _, st := range op.Schedule.Steps {
		for _, h := range st.Halos {
			var depth []int
			if ff, ok := op.Fields[h.Field]; ok {
				depth = op.exchangeDepthOr(h.Field, ff.Halo)
			}
			m, b := halo.TrafficDepth(op.mode, local, depth)
			out.MsgsPerStep += float64(m)
			out.BytesPerStep += b
		}
	}
	return out
}

// exchangeDepthOr returns the exchange depth for a field, falling back to
// the given default when none is recorded.
func (op *Operator) exchangeDepthOr(name string, def []int) []int {
	if d := op.exchangeDepth(name); d != nil {
		return d
	}
	return def
}
