package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// WorkersEnvVar overrides the per-rank worker count when Options.Workers
// is unset: DEVIGO_WORKERS=n runs existing programs on an n-worker
// persistent pool with zero code changes. Like Options.Workers, an
// environment-pinned count is treated as forced — the autotuner never
// overrides an explicit user choice.
const WorkersEnvVar = "DEVIGO_WORKERS"

// resolveWorkers picks the requested worker count: explicit
// Options.Workers wins, then the DEVIGO_WORKERS environment variable,
// then 0 (unforced — the operator runs serial until an autotune policy
// picks a team size). A bad value is a configuration error naming the
// value, where it came from, and what is accepted — matching
// resolveEngine's style.
func resolveWorkers(requested int) (int, error) {
	if requested > 0 {
		return requested, nil
	}
	if requested < 0 {
		return 0, fmt.Errorf("core: Options.Workers must be >= 0, got %d", requested)
	}
	env := strings.TrimSpace(os.Getenv(WorkersEnvVar))
	if env == "" {
		return 0, nil
	}
	w, err := strconv.Atoi(env)
	if err != nil || w < 1 {
		return 0, fmt.Errorf("core: bad worker count %q from $%s: want an integer >= 1", env, WorkersEnvVar)
	}
	return w, nil
}
