package core

import (
	"fmt"
	"os"
	"strings"

	"devigo/internal/bytecode"
	"devigo/internal/field"
	"devigo/internal/native"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// Execution engines. The bytecode register VM is the default; the
// expression-tree interpreter remains as the reference implementation and
// escape hatch; the native engine re-lowers the bytecode program into
// fused bulk-row chains for peak per-rank throughput. All three produce
// bit-identical results — the differential and fuzz tests enforce it — so
// the choice is purely a performance/debugging one.
const (
	// EngineBytecode compiles each cluster to flat register bytecode run
	// by a row-sweep VM (package bytecode).
	EngineBytecode = "bytecode"
	// EngineInterpreter walks a per-point stack program (package runtime).
	EngineInterpreter = "interpreter"
	// EngineNative executes fused opcode runs with specialized
	// bounds-check-hoisted inner loops (package native).
	EngineNative = "native"
)

// EngineEnvVar overrides the default engine when Options.Engine is unset.
const EngineEnvVar = "DEVIGO_ENGINE"

// ExecKernel is the per-cluster execution contract every engine satisfies.
// Run's scalar vector is whatever the same kernel's BindSyms produced
// (the interpreter's symbol bindings, the bytecode/native engines' scalar
// pool). Exported so the cross-engine conformance tests can inspect an
// operator's compiled kernels.
type ExecKernel interface {
	Run(t int, b runtime.Box, syms []float64, opts *runtime.ExecOpts)
	BindSyms(vals map[string]float64) ([]float64, error)
	FlopsPerPoint() int
	InstrsPerPoint() int
	StencilRadius() []int
}

// EngineNames lists the canonical engine names accepted by
// Options.Engine and $DEVIGO_ENGINE ("vm" and "interp" are aliases).
func EngineNames() []string { return []string{EngineBytecode, EngineInterpreter, EngineNative} }

// resolveEngine picks the execution engine: explicit Options.Engine wins,
// then the DEVIGO_ENGINE environment variable, then the bytecode default.
// A value outside the vocabulary is a configuration error naming the bad
// value, where it came from, and what is accepted — matching the halo
// package's ParseMode style.
func resolveEngine(requested string) (string, error) {
	e := strings.ToLower(strings.TrimSpace(requested))
	source := "Options.Engine"
	if e == "" {
		e = strings.ToLower(strings.TrimSpace(os.Getenv(EngineEnvVar)))
		source = "$" + EngineEnvVar
	}
	switch e {
	case "":
		return EngineBytecode, nil
	case EngineBytecode, "vm":
		return EngineBytecode, nil
	case EngineInterpreter, "interp":
		return EngineInterpreter, nil
	case EngineNative:
		return EngineNative, nil
	}
	return "", fmt.Errorf("core: unknown engine %q in %s (valid: %s; aliases: vm, interp)",
		e, source, strings.Join(EngineNames(), ", "))
}

// compileStep compiles one optimized loop nest with the selected engine.
func compileStep(engine string, assigns []symbolic.Assignment, eqs []symbolic.Eq,
	radius []int, fields map[string]*field.Function) (ExecKernel, error) {
	switch engine {
	case EngineInterpreter:
		return runtime.CompileNest(assigns, eqs, radius, fields)
	case EngineNative:
		return native.CompileNest(assigns, eqs, radius, fields)
	default:
		return bytecode.CompileNest(assigns, eqs, radius, fields)
	}
}
