package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"devigo/internal/bytecode"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/ir"
	"devigo/internal/native"
	"devigo/internal/obs"
	"devigo/internal/opcache"
	"devigo/internal/perfmodel"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// scheduleKeyVersion is bumped whenever compiled-kernel layout or the key
// derivation changes, so a cache shared across versions can never serve a
// stale artifact shape.
const scheduleKeyVersion = "devigo-schedule-v1"

// ScheduleKey derives the canonical content hash that addresses compiled
// artifacts in an operator cache: two NewOperator calls share a key
// exactly when their compiled kernel set is interchangeable. The hash
// covers, in order:
//
//   - the equations as submitted (pre-CIRE), rendered through the
//     symbolic package's deterministic structural String form;
//   - per referenced field (sorted by name): space order, staggering and
//     time-buffer count — the storage facts the compiled stencil offsets
//     depend on. Ghost width and local shape are deliberately excluded:
//     kernels resolve strides and buffer pointers at every Run, so halo
//     growth and per-rank chunk sizes never invalidate a compilation
//     (which is also why one key serves every rank of a world);
//   - the grid shape and physical extent;
//   - the decomposition topology ("serial" without one);
//   - the execution engine and the requested halo-exchange interval.
//
// Runtime knobs (workers, tile rows, halo mode) are excluded: they do not
// change compiled programs, and the autotuner may retarget them live.
func ScheduleKey(eqs []symbolic.Eq, fields map[string]*field.Function, g *grid.Grid,
	decomp *grid.Decomposition, engine string, timeTile int) string {
	h := sha256.New()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w(scheduleKeyVersion, engine, fmt.Sprint(timeTile))
	w("grid", fmt.Sprint(g.Shape), fmt.Sprint(g.Extent))
	if decomp != nil {
		w("decomp", fmt.Sprint(decomp.Topology))
	} else {
		w("serial")
	}
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fields[n]
		w("field", n, fmt.Sprint(f.SpaceOrder), fmt.Sprint(f.Stagger), fmt.Sprint(len(f.Bufs)))
	}
	for _, eq := range eqs {
		w("eq", eq.LHS.String(), eq.RHS.String())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey reports the operator's schedule hash, or "" when it was built
// without a cache (the key is only derived on the cached path).
func (op *Operator) CacheKey() string { return op.cacheKey }

// kernelsKey / schedKey / tuneKey are the cache sub-keys: one schedule
// hash addresses the compiled kernel set, the lowered cluster schedule,
// and the autotuner's chosen execution configuration.
func kernelsKey(key string) string { return key + "/kernels" }
func schedKey(key string) string   { return key + "/sched" }
func tuneKey(key string) string    { return key + "/tune" }

// cachedSchedule looks up the lowered cluster schedule for a key. Only
// scratch-free schedules are published (storeSchedule), so a hit implies
// the CIRE pass found nothing to materialise: the symbolic front-end —
// derivative expansion with exact-rational coefficient solves, cluster
// lowering, schedule optimization — can be skipped wholesale. The schedule
// is immutable after construction and its expressions reference symbolic
// field refs rather than storage, so sharing one *ir.Schedule across
// concurrently running operators is safe.
func cachedSchedule(cache *opcache.Cache, key string) (*ir.Schedule, bool) {
	if cache == nil || key == "" {
		return nil, false
	}
	v, ok := cache.Get(schedKey(key))
	if !ok {
		return nil, false
	}
	s, ok := v.(*ir.Schedule)
	return s, ok
}

// storeSchedule publishes a lowered schedule for reuse by later operators
// with the same key. Schedules with CIRE scratch clusters are not
// published: their scratch fields are per-operator storage created by the
// front-end, so skipping the front-end would leave the kernels referring
// to fields the operator never allocated.
func storeSchedule(cache *opcache.Cache, key string, sched *ir.Schedule, hasScratch bool) {
	if cache == nil || key == "" || hasScratch {
		return
	}
	cache.Put(schedKey(key), sched)
}

// compileKernels produces the operator's kernel set — one compiled kernel
// per schedule step — consulting the operator cache when one is attached.
// A hit rebinds the cached kernel set to this operator's fields (kernels
// are compiled once per unique ScheduleKey and shared across shots); a
// miss compiles and publishes the set under singleflight, so concurrent
// operators racing on a cold key block on one in-flight compilation
// instead of duplicating it. The obs compile/hit/miss counters record
// which path ran.
func (op *Operator) compileKernels(engine string, compileAll func() ([]ExecKernel, error)) ([]ExecKernel, error) {
	rank := op.obsRank()
	if op.cache == nil {
		obs.Add(rank, obs.CtrOpCompiles, 1)
		return compileAll()
	}
	v, hit, err := op.cache.GetOrCompute(kernelsKey(op.cacheKey), func() (any, error) {
		obs.Add(rank, obs.CtrOpCompiles, 1)
		return compileAll()
	})
	if err != nil {
		return nil, err
	}
	cached, ok := v.([]ExecKernel)
	if !ok {
		return nil, fmt.Errorf("core: %s: operator cache holds %T under kernels key (corrupt entry)", op.Name, v)
	}
	if !hit {
		obs.Add(rank, obs.CtrOpCacheMisses, 1)
		return cached, nil
	}
	obs.Add(rank, obs.CtrOpCacheHits, 1)
	rebound := make([]ExecKernel, len(cached))
	for i, k := range cached {
		switch t := k.(type) {
		case *bytecode.Kernel:
			rk, err := t.Rebind(op.Fields)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", op.Name, err)
			}
			rebound[i] = rk
		case *runtime.Kernel:
			rk, err := t.Rebind(op.Fields)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", op.Name, err)
			}
			rebound[i] = rk
		case *native.Kernel:
			rk, err := t.Rebind(op.Fields)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", op.Name, err)
			}
			rebound[i] = rk
		default:
			return nil, fmt.Errorf("core: %s: cannot rebind cached kernel of type %T", op.Name, k)
		}
	}
	return rebound, nil
}

// cachedTuneConfig looks up the autotuner's previously chosen execution
// configuration for this operator's schedule key.
func (op *Operator) cachedTuneConfig() (perfmodel.ExecConfig, bool) {
	if op.cache == nil || op.cacheKey == "" {
		return perfmodel.ExecConfig{}, false
	}
	v, ok := op.cache.Get(tuneKey(op.cacheKey))
	if !ok {
		return perfmodel.ExecConfig{}, false
	}
	cfg, ok := v.(perfmodel.ExecConfig)
	return cfg, ok
}

// storeTuneConfig publishes the autotuner's chosen configuration so later
// operators sharing the schedule key adopt it without re-tuning (skipping
// the warmup and trial steps entirely).
func (op *Operator) storeTuneConfig(cfg perfmodel.ExecConfig) {
	if op.cache == nil || op.cacheKey == "" {
		return
	}
	op.cache.Put(tuneKey(op.cacheKey), cfg)
}
