// Package core implements the devigo Operator: the compiler driver that
// lowers symbolic equations through the Cluster and IET IRs, generates
// C-like source, compiles executable kernels, and applies them over serial
// or distributed (MPI) data with the selected halo-exchange pattern.
package core

import (
	"fmt"
	"math"
	"time"

	"devigo/internal/codegen"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/iet"
	"devigo/internal/ir"
	"devigo/internal/mpi"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// Context is the execution environment of an operator: serial (zero value
// semantics via nil) or one rank of a distributed run.
type Context struct {
	Comm   *mpi.Comm
	Cart   *mpi.CartComm
	Decomp *grid.Decomposition
	Mode   halo.Mode
}

// Serial reports whether the context runs without message passing.
func (c *Context) Serial() bool {
	return c == nil || c.Comm == nil || c.Comm.Size() == 1 || c.Mode == halo.ModeNone
}

// Operator is a compiled, applicable solver.
type Operator struct {
	Name   string
	Grid   *grid.Grid
	Fields map[string]*field.Function

	Schedule *ir.Schedule
	Tree     iet.Callable
	CCode    string

	ctx        *Context
	kernels    []execKernel
	exchangers map[string]halo.Exchanger
	execOpts   runtime.ExecOpts
	// mode is the operator's own halo pattern: seeded from the context at
	// construction, switchable afterwards via Retarget (the context is
	// shared between operators and is never mutated).
	mode halo.Mode
	// forcedWorkers/forcedTileRows record knobs pinned through Options;
	// the autotuner never overrides an explicit user choice.
	forcedWorkers  bool
	forcedTileRows bool
	// tuned is set once an autotune policy has configured the operator;
	// later Apply calls reuse the choice instead of re-tuning.
	tuned      bool
	tunePolicy string
	// stepExt[i] is the box extension (points beyond DOMAIN per side) for
	// step i: nonzero only for CIRE scratch clusters.
	stepExt []int
	// invariants are the hoisted loop-invariant scalars (r0 = 1/dt ...),
	// evaluated once per Apply and bound like user symbols.
	invariants []symbolic.Assignment

	perf Perf
}

// Perf accumulates per-section timing, the devigo analogue of
// DEVITO_LOGGING=BENCH output.
type Perf struct {
	ComputeSeconds float64
	HaloSeconds    float64
	PointsUpdated  int64
	Timesteps      int
	FlopsPerPoint  int
	// Engine names the execution engine the kernels compiled to
	// (EngineBytecode or EngineInterpreter).
	Engine string
}

// GPtss returns the achieved throughput in gigapoints per second. It is
// robust to partially populated counters: a NaN or negative section time
// (a clock glitch, or a caller that only filled one of the two sections)
// contributes zero rather than poisoning the result.
func (p Perf) GPtss() float64 {
	c, h := p.ComputeSeconds, p.HaloSeconds
	if math.IsNaN(c) || c < 0 {
		c = 0
	}
	if math.IsNaN(h) || h < 0 {
		h = 0
	}
	total := c + h
	if total <= 0 || p.PointsUpdated <= 0 {
		return 0
	}
	return float64(p.PointsUpdated) / total / 1e9
}

// Options tunes operator construction.
type Options struct {
	// Name labels the generated kernel (default "Kernel").
	Name string
	// Workers is the simulated thread count for loop execution.
	Workers int
	// TileRows controls progress granularity for overlap mode.
	TileRows int
	// Engine selects the execution engine: EngineBytecode (default) or
	// EngineInterpreter. The DEVIGO_ENGINE environment variable applies
	// when unset.
	Engine string
}

// NewOperator compiles equations against field storage. fields must hold
// every function referenced. ctx may be nil for serial execution.
func NewOperator(eqs []symbolic.Eq, fields map[string]*field.Function, g *grid.Grid, ctx *Context, opts *Options) (*Operator, error) {
	name := "Kernel"
	requestedEngine := ""
	if opts != nil {
		if opts.Name != "" {
			name = opts.Name
		}
		requestedEngine = opts.Engine
	}
	engine, err := resolveEngine(requestedEngine)
	if err != nil {
		return nil, err
	}
	nd := g.NDims()

	// Flop reduction: materialise nested derivatives into scratch fields
	// (CIRE). Scratch fields are computed redundantly over extended boxes,
	// so their halo requirements are dropped below.
	var decomp *grid.Decomposition
	rank := 0
	if ctx != nil && ctx.Decomp != nil {
		decomp = ctx.Decomp
		rank = ctx.Comm.Rank()
	}
	eqs, scratchExt, err := applyCIRE(eqs, fields, g, decomp, rank)
	if err != nil {
		return nil, err
	}

	clusters, err := ir.Lower(eqs, nd)
	if err != nil {
		return nil, err
	}
	// Adjust halo requirements around CIRE scratch clusters:
	//   - scratch fields are never exchanged (recomputed redundantly in
	//     the extension region instead);
	//   - a cluster computing over an *extended* box effectively reads
	//     every input beyond the domain, so even centred reads (the trig
	//     parameter fields of TTI) need fresh halos there.
	if len(scratchExt) > 0 {
		for _, c := range clusters {
			writesScratch := false
			for fname := range c.Writes {
				if _, ok := scratchExt[fname]; ok {
					writesScratch = true
				}
			}
			if writesScratch {
				for _, e := range c.Eqs {
					for _, a := range symbolic.Accesses(e.RHS) {
						if _, isScratch := scratchExt[a.Fun.Name]; isScratch {
							continue
						}
						m, ok := c.HaloReads[a.Fun.Name]
						if !ok {
							m = map[int]bool{}
							c.HaloReads[a.Fun.Name] = m
						}
						m[a.TimeOff] = true
					}
				}
			}
			for fname := range c.HaloReads {
				if _, isScratch := scratchExt[fname]; isScratch {
					delete(c.HaloReads, fname)
				}
			}
		}
	}
	isTime := func(fname string) bool {
		f, ok := fields[fname]
		return ok && len(f.Bufs) > 1
	}
	sched := ir.OptimizeSchedule(ir.BuildSchedule(clusters, nd, isTime), isTime)
	mode := halo.ModeNone
	if ctx != nil && !ctx.Serial() {
		mode = ctx.Mode
	}
	tree := iet.LowerHalos(iet.Build(name, sched), mode)

	op := &Operator{
		Name:       name,
		Grid:       g,
		Fields:     fields,
		Schedule:   sched,
		Tree:       tree,
		ctx:        ctx,
		mode:       mode,
		exchangers: map[string]halo.Exchanger{},
	}
	op.perf.Engine = engine
	if opts != nil {
		op.execOpts.Workers = opts.Workers
		op.execOpts.TileRows = opts.TileRows
		op.forcedWorkers = opts.Workers > 0
		op.forcedTileRows = opts.TileRows > 0
	}
	if op.execOpts.TileRows <= 0 {
		op.execOpts.TileRows = 8
	}

	// Compile one kernel per cluster from the *optimized* IET form (CSE
	// temporaries become per-point registers; hoisted invariants are
	// evaluated once per Apply), recording the extended compute box of
	// scratch-producing steps.
	nests := collectNests(tree)
	if len(nests) != len(sched.Steps) {
		return nil, fmt.Errorf("core: internal: %d nests for %d steps", len(nests), len(sched.Steps))
	}
	for _, n := range tree.Body {
		if sa, ok := n.(iet.ScalarAssign); ok {
			op.invariants = append(op.invariants, symbolic.Assignment{Name: sa.Name, Value: sa.Value})
		}
	}
	for i, st := range sched.Steps {
		k, err := compileStep(engine, nests[i].Assigns, nests[i].Exprs, st.Cluster.Radius, fields)
		if err != nil {
			return nil, err
		}
		op.kernels = append(op.kernels, k)
		op.perf.FlopsPerPoint += k.FlopsPerPoint()
		ext := 0
		for fname := range st.Cluster.Writes {
			if e, ok := scratchExt[fname]; ok && e > ext {
				ext = e
			}
		}
		op.stepExt = append(op.stepExt, ext)
	}

	op.buildExchangers()
	op.emitCode()
	return op, nil
}

// buildExchangers instantiates one exchanger per exchanged field for the
// operator's current mode (clearing any previous set — Retarget rebuilds
// through here). Stream numbering follows schedule order so tags stay
// stable across rebuilds.
func (op *Operator) buildExchangers() {
	op.exchangers = map[string]halo.Exchanger{}
	if op.mode == halo.ModeNone || op.ctx == nil || op.ctx.Serial() {
		return
	}
	stream := 0
	addEx := func(reqs []ir.HaloReq) {
		for _, h := range reqs {
			if _, ok := op.exchangers[h.Field]; ok {
				continue
			}
			f, ok := op.Fields[h.Field]
			if !ok {
				continue
			}
			op.exchangers[h.Field] = halo.New(op.mode, op.ctx.Cart, f, stream)
			stream++
		}
	}
	addEx(op.Schedule.Preamble)
	for _, st := range op.Schedule.Steps {
		addEx(st.Halos)
	}
}

// emitCode regenerates the C-like source for inspection and golden tests
// from the operator's current IET.
func (op *Operator) emitCode() {
	em := &codegen.Emitter{Halo: map[string][]int{}, TimeBufs: map[string]int{}}
	for n, f := range op.Fields {
		em.Halo[n] = f.Halo
		em.TimeBufs[n] = len(f.Bufs)
	}
	op.CCode = em.EmitC(op.Tree)
}

// Retarget re-lowers the operator onto a different halo-exchange pattern:
// the IET is rebuilt with the new mode's HaloSpot lowering, the exchanger
// set is reinstantiated, and the generated source is refreshed. Compiled
// kernels are untouched — the per-point programs are identical across
// modes, which is why switching patterns (even between timesteps, as the
// search autotuner does) never changes results. It is an error on a
// serial operator.
func (op *Operator) Retarget(mode halo.Mode) error {
	if op.ctx == nil || op.ctx.Serial() {
		return fmt.Errorf("core: %s: Retarget requires a distributed context", op.Name)
	}
	if mode == halo.ModeNone {
		return fmt.Errorf("core: %s: cannot Retarget to mode none", op.Name)
	}
	if mode == op.mode {
		return nil
	}
	op.mode = mode
	op.Tree = iet.LowerHalos(iet.Build(op.Name, op.Schedule), mode)
	op.buildExchangers()
	op.emitCode()
	return nil
}

// Mode reports the operator's current halo-exchange pattern.
func (op *Operator) Mode() halo.Mode { return op.mode }

// ApplyOpts configures an operator application.
type ApplyOpts struct {
	// TimeM and TimeN are the inclusive logical timestep bounds (the
	// update writing t+1 runs for t in [TimeM, TimeN]).
	TimeM, TimeN int
	// Reverse runs the time loop from TimeN down to TimeM — the schedule
	// of time-reversed (adjoint) operators, whose clusters write the
	// backward stencil u[t-1]. Halo exchanges, overlap mode and the
	// PostStep hook all see the descending logical step.
	Reverse bool
	// Syms binds scalar symbols (dt is mandatory for time-dependent
	// kernels; spacings default from the grid).
	Syms map[string]float64
	// PostStep runs after each timestep's clusters (source injection,
	// receiver interpolation).
	PostStep func(t int)
	// Autotune selects the self-configuration policy: "off" (default),
	// "model" (adopt the cost model's top-ranked halo mode / worker count
	// / tile size before the first step) or "search" (additionally time
	// the model's shortlist on the first few real timesteps and keep the
	// measured winner — sound because every candidate configuration is
	// bit-exact). An empty string consults the DEVIGO_AUTOTUNE environment
	// variable. The choice sticks to the operator: later Apply calls reuse
	// it instead of re-tuning.
	Autotune string
}

// Apply runs the operator. It is deterministic: identical inputs produce
// identical outputs for a fixed context/mode.
func (op *Operator) Apply(a *ApplyOpts) error {
	if a == nil {
		a = &ApplyOpts{}
	}
	syms := map[string]float64{}
	for d, name := range op.Grid.SpacingSymbols() {
		syms[name] = op.Grid.Spacing(d)
	}
	for k, v := range a.Syms {
		syms[k] = v
	}
	// Evaluate the hoisted invariants (in order, so later ones may use
	// earlier ones) and bind them like user symbols.
	for _, inv := range op.invariants {
		v := symbolic.Eval(inv.Value, &symbolic.Env{Syms: syms})
		if v != v { // NaN: an unbound symbol feeds this invariant
			return fmt.Errorf("core: %s: invariant %s references an unbound symbol", op.Name, inv.Name)
		}
		syms[inv.Name] = v
	}
	bound := make([][]float64, len(op.kernels))
	for i, k := range op.kernels {
		b, err := k.BindSyms(syms)
		if err != nil {
			return fmt.Errorf("core: %s: %w", op.Name, err)
		}
		bound[i] = b
	}

	// Preamble: hoisted exchanges of time-invariant fields, once.
	start := time.Now()
	for _, h := range op.Schedule.Preamble {
		if ex, ok := op.exchangers[h.Field]; ok {
			ex.Exchange(0)
		}
	}
	op.perf.HaloSeconds += time.Since(start).Seconds()

	anyField := op.anyField()
	if anyField == nil {
		return fmt.Errorf("core: operator has no fields")
	}
	localShape := anyField.LocalShape

	step := func(t int) {
		for si, st := range op.Schedule.Steps {
			k := op.kernels[si]
			if op.useOverlap(si) && op.stepExt[si] == 0 {
				op.applyOverlap(si, st, t, bound[si], localShape)
			} else {
				hs := time.Now()
				for _, h := range st.Halos {
					if ex, ok := op.exchangers[h.Field]; ok {
						ex.Exchange(t + h.TimeOff)
					}
				}
				op.perf.HaloSeconds += time.Since(hs).Seconds()
				cs := time.Now()
				box := extendedBox(localShape, op.stepExt[si])
				k.Run(t, box, bound[si], &op.execOpts)
				op.perf.ComputeSeconds += time.Since(cs).Seconds()
				op.perf.PointsUpdated += int64(box.Size())
			}
		}
		if a.PostStep != nil {
			a.PostStep(t)
		}
		op.perf.Timesteps++
	}
	remaining := a.TimeN - a.TimeM + 1
	if remaining < 0 {
		remaining = 0
	}
	dir, next := 1, a.TimeM
	if a.Reverse {
		dir, next = -1, a.TimeN
	}
	policy, err := resolveAutotune(a.Autotune)
	if err != nil {
		return err
	}
	if policy != AutotuneOff && !op.tuned {
		if err := op.autotune(policy, step, &next, &remaining, dir); err != nil {
			return err
		}
	}
	for ; remaining > 0; remaining-- {
		step(next)
		next += dir
	}
	return nil
}

// useOverlap reports whether step si runs under the full pattern.
func (op *Operator) useOverlap(si int) bool {
	if op.ctx == nil || op.ctx.Serial() || op.mode != halo.ModeFull {
		return false
	}
	return len(op.Schedule.Steps[si].Halos) > 0
}

// applyOverlap executes one step in full mode: async exchange start, CORE
// compute with MPI_Test progress prods, wait, REMAINDER compute.
func (op *Operator) applyOverlap(si int, st ir.Step, t int, syms []float64, localShape []int) {
	k := op.kernels[si]
	radius := k.StencilRadius()
	hs := time.Now()
	for _, h := range st.Halos {
		if ex, ok := op.exchangers[h.Field]; ok {
			ex.Start(t + h.TimeOff)
		}
	}
	op.perf.HaloSeconds += time.Since(hs).Seconds()

	core, remainder := splitCoreRemainder(localShape, radius)
	progress := func() {
		for _, h := range st.Halos {
			if ex, ok := op.exchangers[h.Field]; ok {
				ex.Progress()
			}
		}
	}
	cs := time.Now()
	opts := op.execOpts
	opts.Progress = progress
	k.Run(t, core, syms, &opts)
	op.perf.ComputeSeconds += time.Since(cs).Seconds()
	op.perf.PointsUpdated += int64(core.Size())

	ws := time.Now()
	for _, h := range st.Halos {
		if ex, ok := op.exchangers[h.Field]; ok {
			ex.Finish(t + h.TimeOff)
		}
	}
	op.perf.HaloSeconds += time.Since(ws).Seconds()

	rs := time.Now()
	for _, rb := range remainder {
		k.Run(t, rb, syms, &op.execOpts)
		op.perf.PointsUpdated += int64(rb.Size())
	}
	op.perf.ComputeSeconds += time.Since(rs).Seconds()
}

func (op *Operator) anyField() *field.Function {
	for _, st := range op.Schedule.Steps {
		for _, e := range st.Cluster.Eqs {
			lhs := e.LHS.(symbolic.Access)
			if f, ok := op.Fields[lhs.Fun.Name]; ok {
				return f
			}
		}
	}
	for _, f := range op.Fields {
		return f
	}
	return nil
}

// Report returns the accumulated performance counters.
func (op *Operator) Report() Perf { return op.perf }

// ResetPerf clears the performance counters, preserving the compile-time
// facts (flop cost, engine).
func (op *Operator) ResetPerf() {
	op.perf = Perf{FlopsPerPoint: op.perf.FlopsPerPoint, Engine: op.perf.Engine}
}

// Engine reports which execution engine the operator compiled to.
func (op *Operator) Engine() string { return op.perf.Engine }

// collectNests returns the loop nests of the time-loop body in step order,
// looking through overlap sections (whose Core and Remainder share one
// nest).
func collectNests(tree iet.Callable) []iet.LoopNest {
	var out []iet.LoopNest
	for _, n := range tree.Body {
		tl, ok := n.(iet.TimeLoop)
		if !ok {
			continue
		}
		for _, c := range tl.Body {
			switch v := c.(type) {
			case iet.LoopNest:
				out = append(out, v)
			case iet.OverlapSection:
				out = append(out, v.Core)
			}
		}
	}
	return out
}

func fullBox(shape []int) runtime.Box {
	b := runtime.Box{Lo: make([]int, len(shape)), Hi: make([]int, len(shape))}
	copy(b.Hi, shape)
	return b
}

// extendedBox widens the domain box by ext points per side — the redundant
// computation region of CIRE scratch clusters.
func extendedBox(shape []int, ext int) runtime.Box {
	b := fullBox(shape)
	if ext == 0 {
		return b
	}
	for d := range b.Lo {
		b.Lo[d] -= ext
		b.Hi[d] += ext
	}
	return b
}

// splitCoreRemainder splits the local domain into the CORE box (points
// whose stencil never reads exchanged halo data) and the REMAINDER slabs —
// the logical decomposition of the paper's full mode (Fig. 5c).
func splitCoreRemainder(shape, radius []int) (runtime.Box, []runtime.Box) {
	nd := len(shape)
	core := runtime.Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		core.Lo[d] = radius[d]
		core.Hi[d] = shape[d] - radius[d]
		if core.Hi[d] < core.Lo[d] {
			core.Hi[d] = core.Lo[d]
		}
	}
	var rem []runtime.Box
	box := fullBox(shape)
	for d := 0; d < nd; d++ {
		low := runtime.Box{Lo: append([]int(nil), box.Lo...), Hi: append([]int(nil), box.Hi...)}
		low.Hi[d] = core.Lo[d]
		if !low.Empty() {
			rem = append(rem, low)
		}
		high := runtime.Box{Lo: append([]int(nil), box.Lo...), Hi: append([]int(nil), box.Hi...)}
		high.Lo[d] = core.Hi[d]
		if !high.Empty() {
			rem = append(rem, high)
		}
		box.Lo[d] = core.Lo[d]
		box.Hi[d] = core.Hi[d]
	}
	return core, rem
}
