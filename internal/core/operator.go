// Package core implements the devigo Operator: the compiler driver that
// lowers symbolic equations through the Cluster and IET IRs, generates
// C-like source, compiles executable kernels, and applies them over serial
// or distributed (MPI) data with the selected halo-exchange pattern.
package core

import (
	"fmt"
	"math"
	"time"

	"devigo/internal/codegen"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/iet"
	"devigo/internal/ir"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/opcache"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// Context is the execution environment of an operator: serial (zero value
// semantics via nil) or one rank of a distributed run.
type Context struct {
	Comm   *mpi.Comm
	Cart   *mpi.CartComm
	Decomp *grid.Decomposition
	Mode   halo.Mode
}

// Serial reports whether the context runs without message passing.
func (c *Context) Serial() bool {
	return c == nil || c.Comm == nil || c.Comm.Size() == 1 || c.Mode == halo.ModeNone
}

// Operator is a compiled, applicable solver.
type Operator struct {
	Name   string
	Grid   *grid.Grid
	Fields map[string]*field.Function

	Schedule *ir.Schedule
	Tree     iet.Callable
	CCode    string

	ctx        *Context
	kernels    []ExecKernel
	exchangers map[string]halo.Exchanger
	// tileExchangers holds one exchanger per tile-start (field, timeOff)
	// requirement. Distinct streams per requirement are essential under
	// the overlapped pattern: the tile head posts every deep exchange
	// asynchronously at once, and two in-flight exchanges of different
	// time buffers of the same field must not cross-match tags or share
	// receive buffers.
	tileExchangers map[ir.HaloReq]halo.Exchanger
	execOpts       runtime.ExecOpts
	// shellOpts mirrors execOpts with work-stealing enabled: the
	// shrinking time-tile shell boxes are load-imbalanced across the
	// static block-cyclic partition, so only they opt into stealing.
	shellOpts runtime.ExecOpts
	// pool is the persistent per-rank worker team (nil when serial or
	// fork-join dispatch is forced). Workers spawn once and park between
	// dispatches; the pool survives Retarget/RetargetTimeTile/Rebind and
	// is released by Close.
	pool *runtime.Pool
	// forkJoin pins the legacy per-call goroutine dispatch (the baseline
	// the hybrid benchmark compares the pool against).
	forkJoin bool
	// mode is the operator's own halo pattern: seeded from the context at
	// construction, switchable afterwards via Retarget (the context is
	// shared between operators and is never mutated).
	mode halo.Mode
	// forcedWorkers/forcedTileRows record knobs pinned through Options;
	// the autotuner never overrides an explicit user choice.
	forcedWorkers  bool
	forcedTileRows bool
	// tuned is set once an autotune policy has configured the operator;
	// later Apply calls reuse the choice instead of re-tuning.
	tuned      bool
	tunePolicy string
	// plan is the active communication-avoiding time-tiling plan (nil =
	// exchange every step); tilePos/tileLen track the position within the
	// current tile during an Apply.
	plan    *ir.TilePlan
	tilePos int
	tileLen int
	// hasScratch records whether CIRE scratch clusters exist (they forbid
	// time tiling).
	hasScratch bool
	// tileProvisioned marks that an exchange interval > 1 was explicitly
	// requested (Options.TimeTile, DEVIGO_TIME_TILE or RetargetTimeTile):
	// only then does the autotuner's k-axis open. Default operators keep
	// the classic exchange-every-step candidate space.
	tileProvisioned bool
	// baseHalo snapshots every field's ghost width before any deep-halo
	// growth — the exchange depth of the classic k=1 schedule.
	baseHalo map[string][]int
	// exHalo records each exchanged field's allocated ghost width at
	// exchanger-build time, so Apply can detect a sibling operator growing
	// shared storage and rebuild stale preallocated exchange regions.
	exHalo map[string][]int
	// shellLo/shellHi cap the ghost-shell extension per dimension per side
	// (grid points available beyond the owned box).
	shellLo, shellHi []int
	// stepExt[i] is the box extension (points beyond DOMAIN per side) for
	// step i: nonzero only for CIRE scratch clusters.
	stepExt []int
	// cache/cacheKey attach the operator to a compiled-artifact cache
	// (Options.Cache): kernels are fetched or published under the
	// canonical schedule hash, and the autotuner's chosen configuration
	// is shared through the same key.
	cache    *opcache.Cache
	cacheKey string
	// invariants are the hoisted loop-invariant scalars (r0 = 1/dt ...),
	// evaluated once per Apply and bound like user symbols.
	invariants []symbolic.Assignment

	perf Perf
}

// Perf accumulates per-section timing, the devigo analogue of
// DEVITO_LOGGING=BENCH output. ComputeSeconds/HaloSeconds/PointsUpdated/
// Timesteps cover steady-state execution only: autotune warmup and search
// trials are split out into the Tune* fields so rate figures are not
// diluted by the one-off self-configuration cost.
type Perf struct {
	ComputeSeconds float64
	HaloSeconds    float64
	PointsUpdated  int64
	Timesteps      int
	FlopsPerPoint  int
	// TuneSeconds is the wall time consumed by autotune warmup and search
	// trials (excluded from the steady-state sections above).
	TuneSeconds float64
	// TuneSteps / TunePoints count the timesteps and point updates those
	// warmup/trial windows executed.
	TuneSteps  int
	TunePoints int64
	// Engine names the execution engine the kernels compiled to
	// (EngineBytecode or EngineInterpreter).
	Engine string
}

// GPtss returns the achieved steady-state throughput in gigapoints per
// second (autotune warmup/trial steps are excluded — they live in the
// Tune* counters). It is robust to partially populated counters: a NaN or
// negative section time (a clock glitch, or a caller that only filled one
// of the two sections) contributes zero rather than poisoning the result.
func (p Perf) GPtss() float64 {
	c, h := p.ComputeSeconds, p.HaloSeconds
	if math.IsNaN(c) || c < 0 {
		c = 0
	}
	if math.IsNaN(h) || h < 0 {
		h = 0
	}
	total := c + h
	if total <= 0 || p.PointsUpdated <= 0 {
		return 0
	}
	return float64(p.PointsUpdated) / total / 1e9
}

// Options tunes operator construction.
type Options struct {
	// Name labels the generated kernel (default "Kernel").
	Name string
	// Workers is the simulated thread count for loop execution. The
	// DEVIGO_WORKERS environment variable applies when unset (0); both
	// count as forced — the autotuner never overrides an explicit choice.
	Workers int
	// ForkJoin forces the legacy per-call goroutine dispatch instead of
	// the persistent worker pool — the overhead baseline devigo-bench's
	// hybrid experiment measures the pool against.
	ForkJoin bool
	// TileRows controls progress granularity for overlap mode.
	TileRows int
	// Engine selects the execution engine: EngineBytecode (default) or
	// EngineInterpreter. The DEVIGO_ENGINE environment variable applies
	// when unset.
	Engine string
	// TimeTile is the requested halo-exchange interval k: ghost regions
	// are exchanged k·radius deep once every k timesteps and the shrinking
	// ghost shell is recomputed redundantly in between — bit-exact versus
	// k=1. The compiler clamps to the largest legal interval (falling back
	// to 1 for untileable schedules and serial contexts). 0 consults the
	// DEVIGO_TIME_TILE environment variable, then defaults to 1.
	TimeTile int
	// Cache attaches a compiled-operator cache: kernel sets are stored
	// and fetched under the canonical ScheduleKey (compiled once per
	// unique equation set and rebound to each operator's fields), and the
	// autotuner's chosen configuration is shared through the same key.
	// Nil (the default) compiles privately — existing callers see zero
	// behavior change; the shot-parallel FWI service injects one cache
	// per survey.
	Cache *opcache.Cache
}

// NewOperator compiles equations against field storage. fields must hold
// every function referenced. ctx may be nil for serial execution.
func NewOperator(eqs []symbolic.Eq, fields map[string]*field.Function, g *grid.Grid, ctx *Context, opts *Options) (*Operator, error) {
	obs.EnvSetup()
	name := "Kernel"
	requestedEngine := ""
	requestedTile := 0
	requestedWorkers := 0
	if opts != nil {
		if opts.Name != "" {
			name = opts.Name
		}
		requestedEngine = opts.Engine
		requestedTile = opts.TimeTile
		requestedWorkers = opts.Workers
	}
	engine, err := resolveEngine(requestedEngine)
	if err != nil {
		return nil, err
	}
	tileReq, err := resolveTimeTile(requestedTile)
	if err != nil {
		return nil, err
	}
	workersReq, err := resolveWorkers(requestedWorkers)
	if err != nil {
		return nil, err
	}
	nd := g.NDims()

	// Flop reduction: materialise nested derivatives into scratch fields
	// (CIRE). Scratch fields are computed redundantly over extended boxes,
	// so their halo requirements are dropped below.
	var decomp *grid.Decomposition
	rank := 0
	if ctx != nil && ctx.Decomp != nil {
		decomp = ctx.Decomp
		rank = ctx.Comm.Rank()
	}
	// The content address of this compilation, derived from the submitted
	// (pre-CIRE) equations: CIRE is deterministic, so hashing its inputs
	// is equivalent to hashing its outputs and far cheaper. Only derived
	// when a cache is attached.
	var cache *opcache.Cache
	cacheKey := ""
	if opts != nil && opts.Cache != nil {
		cache = opts.Cache
		cacheKey = ScheduleKey(eqs, fields, g, decomp, engine, tileReq)
	}
	var sched *ir.Schedule
	var scratchExt map[string]int
	if cached, ok := cachedSchedule(cache, cacheKey); ok {
		// Front-end bypass: a published schedule is scratch-free by
		// construction, so CIRE, derivative expansion (the exact-rational
		// FD coefficient solves that dominate operator construction),
		// cluster lowering and schedule optimization are all skipped.
		sched = cached
	} else {
		eqs, scratchExt, err = applyCIRE(eqs, fields, g, decomp, rank)
		if err != nil {
			return nil, err
		}

		clusters, err := ir.Lower(eqs, nd)
		if err != nil {
			return nil, err
		}
		// Adjust halo requirements around CIRE scratch clusters:
		//   - scratch fields are never exchanged (recomputed redundantly in
		//     the extension region instead);
		//   - a cluster computing over an *extended* box effectively reads
		//     every input beyond the domain, so even centred reads (the trig
		//     parameter fields of TTI) need fresh halos there.
		if len(scratchExt) > 0 {
			for _, c := range clusters {
				writesScratch := false
				for fname := range c.Writes {
					if _, ok := scratchExt[fname]; ok {
						writesScratch = true
					}
				}
				if writesScratch {
					for _, e := range c.Eqs {
						for _, a := range symbolic.Accesses(e.RHS) {
							if _, isScratch := scratchExt[a.Fun.Name]; isScratch {
								continue
							}
							m, ok := c.HaloReads[a.Fun.Name]
							if !ok {
								m = map[int]bool{}
								c.HaloReads[a.Fun.Name] = m
							}
							m[a.TimeOff] = true
						}
					}
				}
				for fname := range c.HaloReads {
					if _, isScratch := scratchExt[fname]; isScratch {
						delete(c.HaloReads, fname)
					}
				}
			}
		}
		isTime := func(fname string) bool {
			f, ok := fields[fname]
			return ok && len(f.Bufs) > 1
		}
		sched = ir.OptimizeSchedule(ir.BuildSchedule(clusters, nd, isTime), isTime)
		storeSchedule(cache, cacheKey, sched, len(scratchExt) > 0)
	}
	mode := halo.ModeNone
	if ctx != nil && !ctx.Serial() {
		mode = ctx.Mode
	}

	op := &Operator{
		Name:       name,
		Grid:       g,
		Fields:     fields,
		Schedule:   sched,
		ctx:        ctx,
		mode:       mode,
		exchangers: map[string]halo.Exchanger{},
		baseHalo:   map[string][]int{},
		cache:      cache,
		cacheKey:   cacheKey,
	}
	op.perf.Engine = engine
	op.hasScratch = len(scratchExt) > 0
	for n, f := range fields {
		op.baseHalo[n] = append([]int(nil), f.Halo...)
	}
	op.shellLo = make([]int, nd)
	op.shellHi = make([]int, nd)
	if ctx != nil && !ctx.Serial() && ctx.Decomp != nil {
		op.shellLo, op.shellHi = ctx.Decomp.ShellCaps(ctx.Comm.Rank())
	}
	// Communication-avoiding time tiling: adopt the largest legal exchange
	// interval <= the requested one and deepen ghost storage to hold the
	// exchanged region and the redundant shell writes. Untileable schedules
	// (CIRE scratch, multi-writer fields) and serial contexts fall back to
	// the classic one-exchange-per-step schedule.
	op.tileProvisioned = tileReq > 1
	op.plan = op.selectTilePlan(tileReq)
	if op.plan != nil {
		for fname, alloc := range op.plan.Alloc {
			if f, ok := fields[fname]; ok {
				f.GrowHalo(alloc)
			}
		}
	}
	op.Tree = op.lowerTree()
	if opts != nil {
		op.execOpts.TileRows = opts.TileRows
		op.forcedTileRows = opts.TileRows > 0
		op.forkJoin = opts.ForkJoin
	}
	op.execOpts.Workers = workersReq
	op.forcedWorkers = workersReq > 0
	if op.execOpts.TileRows <= 0 {
		op.execOpts.TileRows = 8
	}

	// Compile one kernel per cluster from the *optimized* IET form (CSE
	// temporaries become per-point registers; hoisted invariants are
	// evaluated once per Apply), recording the extended compute box of
	// scratch-producing steps.
	nests := collectNests(op.Tree)
	if len(nests) != len(sched.Steps) {
		return nil, fmt.Errorf("core: internal: %d nests for %d steps", len(nests), len(sched.Steps))
	}
	for _, n := range op.Tree.Body {
		if sa, ok := n.(iet.ScalarAssign); ok {
			op.invariants = append(op.invariants, symbolic.Assignment{Name: sa.Name, Value: sa.Value})
		}
	}
	compileAll := func() ([]ExecKernel, error) {
		ks := make([]ExecKernel, 0, len(sched.Steps))
		for i, st := range sched.Steps {
			k, err := compileStep(engine, nests[i].Assigns, nests[i].Exprs, st.Cluster.Radius, fields)
			if err != nil {
				return nil, err
			}
			ks = append(ks, k)
		}
		return ks, nil
	}
	kernels, err := op.compileKernels(engine, compileAll)
	if err != nil {
		return nil, err
	}
	op.kernels = kernels
	for i, st := range sched.Steps {
		op.perf.FlopsPerPoint += op.kernels[i].FlopsPerPoint()
		ext := 0
		for fname := range st.Cluster.Writes {
			if e, ok := scratchExt[fname]; ok && e > ext {
				ext = e
			}
		}
		op.stepExt = append(op.stepExt, ext)
	}

	op.buildExchangers()
	op.emitCode()
	if obs.Active() {
		instrs := 0
		for _, k := range op.kernels {
			instrs += k.InstrsPerPoint()
		}
		obs.Add(op.obsRank(), obs.CtrInstrsPerPoint, int64(instrs))
	}
	return op, nil
}

// obsRank is the rank identifying this operator's recorder in the obs
// subsystem (0 when serial).
func (op *Operator) obsRank() int {
	if op.ctx != nil && op.ctx.Comm != nil {
		return op.ctx.Comm.Rank()
	}
	return 0
}

// ensurePool reconciles the persistent worker team with the operator's
// current worker count: it spawns a team when more than one worker is
// configured (unless fork-join dispatch is forced), resizes by replacing
// a mismatched or closed team, and releases the team when the operator
// drops back to serial. It also refreshes shellOpts, the stealing twin of
// execOpts. Called at the head of every Apply and after every autotune
// adoption — the pool itself survives Retarget/RetargetTimeTile/Rebind
// untouched (those never change the worker count).
func (op *Operator) ensurePool() {
	w := op.execOpts.Workers
	if w <= 1 || op.forkJoin {
		if op.pool != nil {
			op.pool.Close()
			op.pool = nil
		}
		op.execOpts.Pool = nil
	} else {
		if op.pool == nil || op.pool.Closed() || op.pool.Workers() != w {
			if op.pool != nil {
				op.pool.Close()
			}
			op.pool = runtime.NewPool(w, op.obsRank())
		}
		op.execOpts.Pool = op.pool
	}
	op.shellOpts = op.execOpts
	op.shellOpts.Steal = true
}

// Close releases the operator's persistent worker team (its parked
// goroutines exit). Idempotent and safe on serial operators; a later
// Apply respawns the team on demand.
func (op *Operator) Close() {
	if op.pool != nil {
		op.pool.Close()
		op.pool = nil
		op.execOpts.Pool = nil
		op.shellOpts.Pool = nil
	}
}

// Pool exposes the operator's persistent worker team (nil when serial or
// fork-join dispatch is forced) — benchmarks read its dispatch counters.
func (op *Operator) Pool() *runtime.Pool { return op.pool }

// buildExchangers instantiates one exchanger per exchanged field for the
// operator's current mode and exchange depth (clearing any previous set —
// Retarget and RetargetTimeTile rebuild through here). Stream numbering
// follows schedule order so tags stay stable across rebuilds.
func (op *Operator) buildExchangers() {
	op.exchangers = map[string]halo.Exchanger{}
	op.tileExchangers = map[ir.HaloReq]halo.Exchanger{}
	op.exHalo = map[string][]int{}
	if op.mode == halo.ModeNone || op.ctx == nil || op.ctx.Serial() {
		return
	}
	stream := 0
	addEx := func(reqs []ir.HaloReq) {
		for _, h := range reqs {
			if _, ok := op.exchangers[h.Field]; ok {
				continue
			}
			f, ok := op.Fields[h.Field]
			if !ok {
				continue
			}
			op.exchangers[h.Field] = halo.NewDepth(op.mode, op.ctx.Cart, f, stream, op.exchangeDepth(h.Field))
			op.exHalo[h.Field] = append([]int(nil), f.Halo...)
			stream++
		}
	}
	addEx(op.Schedule.Preamble)
	if op.plan == nil {
		for _, st := range op.Schedule.Steps {
			addEx(st.Halos)
		}
		return
	}
	// Under a tile plan the per-step exchangers are never invoked (the
	// tile-start set supersedes them), so only the preamble/hoisted
	// parameter exchangers and the per-requirement tile exchangers are
	// built — diag/full exchangers preallocate deep per-neighbour buffers,
	// so dead ones would double that storage.
	addEx(op.plan.Hoisted)
	for _, h := range op.plan.Halos {
		f, ok := op.Fields[h.Field]
		if !ok {
			continue
		}
		op.tileExchangers[h] = halo.NewDepth(op.mode, op.ctx.Cart, f, stream, op.exchangeDepth(h.Field))
		op.exHalo[h.Field] = append([]int(nil), f.Halo...)
		stream++
	}
}

// ensureExchangers rebuilds the exchanger set when another operator
// sharing this one's fields has grown their ghost storage since the
// exchangers preallocated their regions (a gradient run interleaves
// forward, adjoint and imaging operators over shared parameter fields).
func (op *Operator) ensureExchangers() {
	for name, rec := range op.exHalo {
		f, ok := op.Fields[name]
		if !ok {
			continue
		}
		for d := range rec {
			if f.Halo[d] != rec[d] {
				op.buildExchangers()
				return
			}
		}
	}
}

// emitCode regenerates the C-like source for inspection and golden tests
// from the operator's current IET.
func (op *Operator) emitCode() {
	em := &codegen.Emitter{Halo: map[string][]int{}, TimeBufs: map[string]int{}}
	for n, f := range op.Fields {
		em.Halo[n] = f.Halo
		em.TimeBufs[n] = len(f.Bufs)
	}
	op.CCode = em.EmitC(op.Tree)
}

// Retarget re-lowers the operator onto a different halo-exchange pattern:
// the IET is rebuilt with the new mode's HaloSpot lowering, the exchanger
// set is reinstantiated, and the generated source is refreshed. Compiled
// kernels are untouched — the per-point programs are identical across
// modes, which is why switching patterns (even between timesteps, as the
// search autotuner does) never changes results. It is an error on a
// serial operator.
func (op *Operator) Retarget(mode halo.Mode) error {
	if op.ctx == nil || op.ctx.Serial() {
		return fmt.Errorf("core: %s: Retarget requires a distributed context", op.Name)
	}
	if mode == halo.ModeNone {
		return fmt.Errorf("core: %s: cannot Retarget to mode none", op.Name)
	}
	if mode == op.mode {
		return nil
	}
	op.mode = mode
	op.Tree = op.lowerTree()
	op.buildExchangers()
	op.emitCode()
	return nil
}

// Mode reports the operator's current halo-exchange pattern.
func (op *Operator) Mode() halo.Mode { return op.mode }

// ApplyOpts configures an operator application.
type ApplyOpts struct {
	// TimeM and TimeN are the inclusive logical timestep bounds (the
	// update writing t+1 runs for t in [TimeM, TimeN]).
	TimeM, TimeN int
	// Reverse runs the time loop from TimeN down to TimeM — the schedule
	// of time-reversed (adjoint) operators, whose clusters write the
	// backward stencil u[t-1]. Halo exchanges, overlap mode and the
	// PostStep hook all see the descending logical step.
	Reverse bool
	// Syms binds scalar symbols (dt is mandatory for time-dependent
	// kernels; spacings default from the grid).
	Syms map[string]float64
	// PostStep runs after each timestep's clusters (source injection,
	// receiver interpolation).
	PostStep func(t int)
	// Autotune selects the self-configuration policy: "off" (default),
	// "model" (adopt the cost model's top-ranked halo mode / worker count
	// / tile size before the first step) or "search" (additionally time
	// the model's shortlist on the first few real timesteps and keep the
	// measured winner — sound because every candidate configuration is
	// bit-exact). An empty string consults the DEVIGO_AUTOTUNE environment
	// variable. The choice sticks to the operator: later Apply calls reuse
	// it instead of re-tuning.
	Autotune string
}

// Apply runs the operator. It is deterministic: identical inputs produce
// identical outputs for a fixed context/mode.
func (op *Operator) Apply(a *ApplyOpts) error {
	if a == nil {
		a = &ApplyOpts{}
	}
	syms := map[string]float64{}
	for d, name := range op.Grid.SpacingSymbols() {
		syms[name] = op.Grid.Spacing(d)
	}
	for k, v := range a.Syms {
		syms[k] = v
	}
	// Evaluate the hoisted invariants (in order, so later ones may use
	// earlier ones) and bind them like user symbols.
	for _, inv := range op.invariants {
		v := symbolic.Eval(inv.Value, &symbolic.Env{Syms: syms})
		if v != v { // NaN: an unbound symbol feeds this invariant
			return fmt.Errorf("core: %s: invariant %s references an unbound symbol", op.Name, inv.Name)
		}
		syms[inv.Name] = v
	}
	bound := make([][]float64, len(op.kernels))
	for i, k := range op.kernels {
		b, err := k.BindSyms(syms)
		if err != nil {
			return fmt.Errorf("core: %s: %w", op.Name, err)
		}
		bound[i] = b
	}

	// Stale-geometry guard before any exchange: a sibling operator may
	// have deepened shared fields' ghost storage since our exchangers
	// preallocated their regions.
	op.ensureExchangers()
	// Spawn (or resize) the persistent worker team before the first
	// dispatch; a Close between Applies is undone here.
	op.ensurePool()

	// Preamble: hoisted exchanges of time-invariant fields, once — the
	// schedule's own preamble plus the parameters the time-tiling shell
	// recompute reads in the ghost region. Their traffic is classified as
	// preamble (not steady-state) in the obs metrics.
	rank := op.obsRank()
	obs.SetPreamble(rank, true)
	psp := obs.Begin(rank, obs.PhaseExchange, -1)
	start := time.Now()
	for _, h := range op.Schedule.Preamble {
		if ex, ok := op.exchangers[h.Field]; ok {
			ex.Exchange(0)
		}
	}
	if op.plan != nil {
		for _, h := range op.plan.Hoisted {
			if ex, ok := op.exchangers[h.Field]; ok {
				ex.Exchange(0)
			}
		}
	}
	op.perf.HaloSeconds += time.Since(start).Seconds()
	psp.End()
	obs.SetPreamble(rank, false)

	anyField := op.anyField()
	if anyField == nil {
		return fmt.Errorf("core: operator has no fields")
	}
	localShape := anyField.LocalShape

	remaining := a.TimeN - a.TimeM + 1
	if remaining < 0 {
		remaining = 0
	}
	op.tilePos = 0
	step := func(t int) {
		if op.plan != nil {
			op.tiledStep(t, bound, localShape, remaining)
		} else {
			for si, st := range op.Schedule.Steps {
				k := op.kernels[si]
				if op.useOverlap(si) && op.stepExt[si] == 0 {
					op.applyOverlap(si, st, t, bound[si], localShape)
				} else {
					sp := obs.Begin(rank, obs.PhaseExchange, t)
					hs := time.Now()
					for _, h := range st.Halos {
						if ex, ok := op.exchangers[h.Field]; ok {
							ex.Exchange(t + h.TimeOff)
						}
					}
					op.perf.HaloSeconds += time.Since(hs).Seconds()
					sp.End()
					sp = obs.Begin(rank, obs.PhaseCompute, t)
					cs := time.Now()
					box := extendedBox(localShape, op.stepExt[si])
					k.Run(t, box, bound[si], &op.execOpts)
					op.perf.ComputeSeconds += time.Since(cs).Seconds()
					op.perf.PointsUpdated += int64(box.Size())
					sp.End()
				}
			}
		}
		if a.PostStep != nil {
			a.PostStep(t)
		}
		op.perf.Timesteps++
	}
	dir, next := 1, a.TimeM
	if a.Reverse {
		dir, next = -1, a.TimeN
	}
	policy, err := resolveAutotune(a.Autotune)
	if err != nil {
		return err
	}
	if policy != AutotuneOff && !op.tuned {
		// A sibling operator sharing this schedule key may already have
		// tuned: adopt its configuration and skip the warmup/trial steps
		// entirely — the cached choice is bit-exact like every candidate.
		if cfg, ok := op.cachedTuneConfig(); ok {
			if err := op.adopt(cfg); err != nil {
				return err
			}
			op.tuned = true
			op.tunePolicy = policy
			if rank == 0 {
				obs.RecordDecision(obs.Decision{
					Policy: policy + "-cached",
					Config: cfg.String(),
					Chosen: true,
				})
			}
		}
	}
	if policy != AutotuneOff && !op.tuned {
		// Snapshot the counters around self-configuration and move the
		// delta into the Tune* fields: warmup and trial steps execute real
		// physics but must not dilute the steady-state rate (GPtss).
		before := op.perf
		if err := op.autotune(policy, step, &next, &remaining, dir); err != nil {
			return err
		}
		after := op.perf
		op.perf.ComputeSeconds = before.ComputeSeconds
		op.perf.HaloSeconds = before.HaloSeconds
		op.perf.Timesteps = before.Timesteps
		op.perf.PointsUpdated = before.PointsUpdated
		op.perf.TuneSeconds = before.TuneSeconds +
			(after.ComputeSeconds - before.ComputeSeconds) +
			(after.HaloSeconds - before.HaloSeconds)
		op.perf.TuneSteps = before.TuneSteps + (after.Timesteps - before.Timesteps)
		op.perf.TunePoints = before.TunePoints + (after.PointsUpdated - before.PointsUpdated)
	}
	obs.Add(rank, obs.CtrSteadySteps, int64(remaining))
	for ; remaining > 0; remaining-- {
		step(next)
		next += dir
	}
	return nil
}

// useOverlap reports whether step si runs under the full pattern.
func (op *Operator) useOverlap(si int) bool {
	if op.ctx == nil || op.ctx.Serial() || op.mode != halo.ModeFull {
		return false
	}
	return len(op.Schedule.Steps[si].Halos) > 0
}

// applyOverlap executes one step in full mode: async exchange start, CORE
// compute with MPI_Test progress prods, wait, REMAINDER compute.
func (op *Operator) applyOverlap(si int, st ir.Step, t int, syms []float64, localShape []int) {
	k := op.kernels[si]
	each := func(fn func(ex halo.Exchanger, t int)) {
		for _, h := range st.Halos {
			if ex, ok := op.exchangers[h.Field]; ok {
				fn(ex, t+h.TimeOff)
			}
		}
	}
	op.overlapSweep(k, t, fullBox(localShape), coreBox(localShape, k.StencilRadius()), syms,
		func() { each(func(ex halo.Exchanger, tt int) { ex.Start(tt) }) },
		func() { each(func(ex halo.Exchanger, tt int) { ex.Progress() }) },
		func() { each(func(ex halo.Exchanger, tt int) { ex.Finish(tt) }) })
}

// overlapSweep is the shared CORE/REMAINDER choreography of the full
// pattern, used by both the classic per-step overlap and the tile-start
// deep overlap: post the exchanges, compute the CORE box with progress
// prods between tiles, complete the exchanges, then sweep the remainder
// of the outer box.
func (op *Operator) overlapSweep(k ExecKernel, t int, outer, core runtime.Box, syms []float64, start, progress, finish func()) {
	rank := op.obsRank()
	sp := obs.Begin(rank, obs.PhaseExchange, t)
	hs := time.Now()
	start()
	op.perf.HaloSeconds += time.Since(hs).Seconds()
	sp.End()

	sp = obs.Begin(rank, obs.PhaseCompute, t)
	cs := time.Now()
	opts := op.execOpts
	opts.Progress = progress
	k.Run(t, core, syms, &opts)
	op.perf.ComputeSeconds += time.Since(cs).Seconds()
	op.perf.PointsUpdated += int64(core.Size())
	sp.End()

	sp = obs.Begin(rank, obs.PhaseExchange, t)
	ws := time.Now()
	finish()
	op.perf.HaloSeconds += time.Since(ws).Seconds()
	sp.End()

	sp = obs.Begin(rank, obs.PhaseCompute, t)
	rs := time.Now()
	for _, rb := range remainderBoxes(outer, core) {
		k.Run(t, rb, syms, &op.execOpts)
		op.perf.PointsUpdated += int64(rb.Size())
	}
	op.perf.ComputeSeconds += time.Since(rs).Seconds()
	sp.End()
}

func (op *Operator) anyField() *field.Function {
	for _, st := range op.Schedule.Steps {
		for _, e := range st.Cluster.Eqs {
			lhs := e.LHS.(symbolic.Access)
			if f, ok := op.Fields[lhs.Fun.Name]; ok {
				return f
			}
		}
	}
	for _, f := range op.Fields {
		return f
	}
	return nil
}

// Report returns the accumulated performance counters.
func (op *Operator) Report() Perf { return op.perf }

// ResetPerf clears the performance counters, preserving the compile-time
// facts (flop cost, engine).
func (op *Operator) ResetPerf() {
	op.perf = Perf{FlopsPerPoint: op.perf.FlopsPerPoint, Engine: op.perf.Engine}
}

// Engine reports which execution engine the operator compiled to.
func (op *Operator) Engine() string { return op.perf.Engine }

// Kernels returns the operator's compiled per-step kernels. The slice is
// the operator's own — callers (the opcode/run-shape conformance tests)
// must treat it as read-only.
func (op *Operator) Kernels() []ExecKernel { return op.kernels }

// collectNests returns the loop nests of the time-loop body in step order,
// looking through overlap sections (whose Core and Remainder share one
// nest) and time tiles (whose body repeats per substep).
func collectNests(tree iet.Callable) []iet.LoopNest {
	var out []iet.LoopNest
	pick := func(body []iet.Node) {
		for _, c := range body {
			switch v := c.(type) {
			case iet.LoopNest:
				out = append(out, v)
			case iet.OverlapSection:
				out = append(out, v.Core)
			}
		}
	}
	for _, n := range tree.Body {
		switch v := n.(type) {
		case iet.TimeLoop:
			pick(v.Body)
		case iet.TimeTile:
			pick(v.Body)
		}
	}
	return out
}

func fullBox(shape []int) runtime.Box {
	b := runtime.Box{Lo: make([]int, len(shape)), Hi: make([]int, len(shape))}
	copy(b.Hi, shape)
	return b
}

// extendedBox widens the domain box by ext points per side — the redundant
// computation region of CIRE scratch clusters.
func extendedBox(shape []int, ext int) runtime.Box {
	b := fullBox(shape)
	if ext == 0 {
		return b
	}
	for d := range b.Lo {
		b.Lo[d] -= ext
		b.Hi[d] += ext
	}
	return b
}

// coreBox returns the CORE box of the full pattern: the points of the
// owned box whose stencil never reads exchanged halo data (empty
// dimensions clamp).
func coreBox(shape, radius []int) runtime.Box {
	nd := len(shape)
	core := runtime.Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		core.Lo[d] = radius[d]
		core.Hi[d] = shape[d] - radius[d]
		if core.Hi[d] < core.Lo[d] {
			core.Hi[d] = core.Lo[d]
		}
	}
	return core
}

// splitCoreRemainder splits the local domain into the CORE box (points
// whose stencil never reads exchanged halo data) and the REMAINDER slabs —
// the logical decomposition of the paper's full mode (Fig. 5c).
func splitCoreRemainder(shape, radius []int) (runtime.Box, []runtime.Box) {
	core := coreBox(shape, radius)
	return core, remainderBoxes(fullBox(shape), core)
}
