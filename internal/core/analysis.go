package core

import (
	"fmt"

	"devigo/internal/iet"
	"devigo/internal/symbolic"
)

// FlopsPerPointOptimized counts the per-point flop cost of the *generated*
// code: after invariant hoisting and CSE, summing the per-point scalar
// assignments and update expressions of every loop nest. This is the
// number Devito's compile-time operational-intensity estimate corresponds
// to (paper Section IV-C).
func (op *Operator) FlopsPerPointOptimized() int {
	total := 0
	iet.Walk(op.Tree, func(n iet.Node) {
		nest, ok := n.(iet.LoopNest)
		if !ok {
			return
		}
		for _, a := range nest.Assigns {
			total += symbolic.FlopCount(a.Value)
		}
		for _, e := range nest.Exprs {
			total += symbolic.FlopCount(e.RHS) + 1
		}
	})
	// Overlap sections duplicate the nest (CORE + REMAINDER); count once.
	dups := 0
	iet.Walk(op.Tree, func(n iet.Node) {
		if _, ok := n.(iet.OverlapSection); ok {
			dups++
		}
	})
	if dups > 0 {
		total /= 2
	}
	return total
}

// HaloStreamCount returns the number of per-timestep halo exchanges after
// the drop/hoist/merge passes (the (field, timeOffset) pairs exchanged in
// the steady state of the time loop).
func (op *Operator) HaloStreamCount() int {
	n := 0
	for _, st := range op.Schedule.Steps {
		n += len(st.Halos)
	}
	return n
}

// StreamCount returns the distinct (field, timeOffset) data streams the
// operator touches per point per timestep — the modelled DRAM traffic is
// 4 bytes per stream per point.
func (op *Operator) StreamCount() int {
	streams := map[string]bool{}
	for _, st := range op.Schedule.Steps {
		for _, e := range st.Cluster.Eqs {
			lhs := e.LHS.(symbolic.Access)
			streams[fmt.Sprintf("%s@%d", lhs.Fun.Name, lhs.TimeOff)] = true
			for _, a := range symbolic.Accesses(e.RHS) {
				streams[fmt.Sprintf("%s@%d", a.Fun.Name, a.TimeOff)] = true
			}
		}
	}
	return len(streams)
}
