package core

import (
	"strings"
	"testing"
)

// Environment-driven configuration must reject bad values with errors
// that name the value, its provenance (the flag/field or the
// environment variable) and the accepted vocabulary — a silent fallback
// would run the wrong engine or policy without anyone noticing.

func TestResolveEngineVocabulary(t *testing.T) {
	for in, want := range map[string]string{
		"":            EngineBytecode,
		"bytecode":    EngineBytecode,
		"vm":          EngineBytecode,
		"interpreter": EngineInterpreter,
		"interp":      EngineInterpreter,
		"native":      EngineNative,
		" Native ":    EngineNative,
		" Bytecode ":  EngineBytecode,
	} {
		got, err := resolveEngine(in)
		if err != nil || got != want {
			t.Errorf("resolveEngine(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

func TestResolveEngineRejectsUnknown(t *testing.T) {
	_, err := resolveEngine("llvm")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, frag := range []string{`"llvm"`, "Options.Engine", EngineBytecode, EngineInterpreter, EngineNative} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("engine error %q lacks %q", err, frag)
		}
	}
}

func TestResolveEngineRejectsBadEnv(t *testing.T) {
	t.Setenv(EngineEnvVar, "turbo")
	_, err := resolveEngine("")
	if err == nil {
		t.Fatal("bad $" + EngineEnvVar + " accepted")
	}
	for _, frag := range []string{`"turbo"`, "$" + EngineEnvVar, EngineBytecode, EngineInterpreter, EngineNative} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("engine env error %q lacks %q", err, frag)
		}
	}
	// An explicit request must win over (and never blame) the environment.
	t.Setenv(EngineEnvVar, "nonsense")
	if got, err := resolveEngine(EngineInterpreter); err != nil || got != EngineInterpreter {
		t.Errorf("explicit engine over bad env: got %q, %v", got, err)
	}
}

func TestResolveAutotuneVocabulary(t *testing.T) {
	for in, want := range map[string]string{
		"":       AutotuneOff,
		"off":    AutotuneOff,
		"none":   AutotuneOff,
		"0":      AutotuneOff,
		"model":  AutotuneModel,
		"search": AutotuneSearch,
		"on":     AutotuneSearch,
		"auto":   AutotuneSearch,
	} {
		got, err := resolveAutotune(in)
		if err != nil || got != want {
			t.Errorf("resolveAutotune(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

func TestResolveAutotuneRejectsBadEnv(t *testing.T) {
	t.Setenv(AutotuneEnvVar, "aggressive")
	_, err := resolveAutotune("")
	if err == nil {
		t.Fatal("bad $" + AutotuneEnvVar + " accepted")
	}
	for _, frag := range []string{`"aggressive"`, "$" + AutotuneEnvVar, AutotuneOff, AutotuneModel, AutotuneSearch} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("autotune env error %q lacks %q", err, frag)
		}
	}
	if _, err := resolveAutotune("always"); err == nil ||
		!strings.Contains(err.Error(), "ApplyOpts.Autotune") {
		t.Errorf("explicit bad policy should blame ApplyOpts.Autotune, got %v", err)
	}
}

func TestBadEngineEnvPropagatesFromNewOperator(t *testing.T) {
	t.Setenv(EngineEnvVar, "warp")
	_, err := NewOperator(nil, nil, nil, nil, &Options{Name: "cfgtest"})
	if err == nil || !strings.Contains(err.Error(), "$"+EngineEnvVar) {
		t.Fatalf("NewOperator with bad $%s: got %v, want a configuration error naming the variable",
			EngineEnvVar, err)
	}
}
