package core

import (
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"devigo/internal/halo"
	"devigo/internal/ir"
	"devigo/internal/mpi"
	"devigo/internal/obs"
	"devigo/internal/perfmodel"
	"devigo/internal/runtime"
)

// Autotune policies: the compiler-picks-the-configuration loop of the
// source paper. "model" trusts the analytic cost model; "search"
// additionally times the model's shortlist on the first few real
// timesteps of the run (every candidate is bit-exact, so tuning in place
// never perturbs results).
const (
	// AutotuneOff disables self-configuration (the default).
	AutotuneOff = "off"
	// AutotuneModel adopts the cost model's top-ranked configuration.
	AutotuneModel = "model"
	// AutotuneSearch measures the model's shortlist empirically and keeps
	// the winner.
	AutotuneSearch = "search"
)

// AutotuneEnvVar overrides the policy when ApplyOpts.Autotune is unset —
// the zero-user-code-changes switch: DEVIGO_AUTOTUNE=model|search|off.
const AutotuneEnvVar = "DEVIGO_AUTOTUNE"

// tuneStepsPerTrial is how many real timesteps the search policy charges
// per candidate; the per-step minimum is kept to reject scheduling noise.
const tuneStepsPerTrial = 3

// AutotunePolicies lists the canonical policy names accepted by
// ApplyOpts.Autotune and $DEVIGO_AUTOTUNE ("none"/"0" alias off,
// "on"/"auto" alias search).
func AutotunePolicies() []string {
	return []string{AutotuneOff, AutotuneModel, AutotuneSearch}
}

// resolveAutotune picks the policy: explicit ApplyOpts.Autotune wins, then
// the DEVIGO_AUTOTUNE environment variable, then off. A value outside the
// vocabulary is a configuration error naming the bad value, where it came
// from, and what is accepted — matching the halo package's ParseMode
// style.
func resolveAutotune(requested string) (string, error) {
	p := strings.ToLower(strings.TrimSpace(requested))
	source := "ApplyOpts.Autotune"
	if p == "" {
		p = strings.ToLower(strings.TrimSpace(os.Getenv(AutotuneEnvVar)))
		source = "$" + AutotuneEnvVar
	}
	switch p {
	case "", AutotuneOff, "none", "0":
		return AutotuneOff, nil
	case AutotuneModel:
		return AutotuneModel, nil
	case AutotuneSearch, "on", "auto":
		return AutotuneSearch, nil
	}
	return "", fmt.Errorf("core: unknown autotune policy %q in %s (valid: %s; aliases: none, 0, on, auto)",
		p, source, strings.Join(AutotunePolicies(), ", "))
}

// Profile derives the autotuner's view of the operator: per-point
// instruction counts from the compiled kernels, exchanged streams from
// the halo schedule, and the slowest rank's box from the decomposition.
// Every rank derives the identical profile without communication, so
// planning is deterministic across a distributed run.
func (op *Operator) Profile() perfmodel.OpProfile {
	shape := append([]int(nil), op.Grid.Shape...)
	ranks := 1
	if op.ctx != nil && !op.ctx.Serial() && op.ctx.Decomp != nil {
		shape = op.ctx.Decomp.MaxLocalShape()
		ranks = op.ctx.Comm.Size()
	}
	instrs := 0
	for _, k := range op.kernels {
		instrs += k.InstrsPerPoint()
	}
	// HaloWidth is the k=1 baseline exchange width (the pre-growth base
	// halo): Predict charges deep intervals TileStride per extra substep
	// on top of it, so reporting the active plan's deep depth here would
	// double-count and overcharge the k=1 candidates.
	width := 0
	for name := range op.exHalo {
		base, ok := op.baseHalo[name]
		if !ok {
			if f, okF := op.Fields[name]; okF {
				base = f.Halo
			}
		}
		for _, h := range base {
			if h > width {
				width = h
			}
		}
	}
	stride, streams := op.tileProfile()
	p := perfmodel.OpProfile{
		LocalShape:      shape,
		InstrsPerPoint:  instrs,
		Engine:          op.perf.Engine,
		StreamsPerPoint: op.StreamCount(),
		HaloStreams:     op.HaloStreamCount(),
		HaloWidth:       width,
		Ranks:           ranks,
		MaxWorkers:      goruntime.GOMAXPROCS(0),
		Mode:            op.mode,
		TimeTile:        op.TimeTile(),
		MaxTimeTile:     op.maxFeasibleTile(),
		TileStride:      stride,
		TileStreams:     streams,
	}
	if op.forcedWorkers {
		p.ForcedWorkers = op.execOpts.Workers
	}
	if op.forcedTileRows {
		p.ForcedTileRows = op.execOpts.TileRows
	}
	return p
}

// adopt applies a planned configuration to the operator's runtime knobs,
// retargeting the halo pattern and/or exchange interval when the choice
// differs from the current one.
func (op *Operator) adopt(cfg perfmodel.ExecConfig) error {
	if cfg.Workers > 0 {
		op.execOpts.Workers = cfg.Workers
	}
	if cfg.TileRows > 0 {
		op.execOpts.TileRows = cfg.TileRows
	}
	// Resize the persistent team (and its stealing twin shellOpts) to the
	// adopted worker count before the next dispatch.
	op.ensurePool()
	if op.ctx != nil && !op.ctx.Serial() && cfg.Mode != halo.ModeNone && cfg.Mode != op.mode {
		if err := op.Retarget(cfg.Mode); err != nil {
			return err
		}
	}
	if op.ctx != nil && !op.ctx.Serial() {
		k := cfg.TimeTile
		if k < 1 {
			k = 1
		}
		if k != op.TimeTile() {
			return op.RetargetTimeTile(k)
		}
	}
	return nil
}

// measurePoolSync replaces the host model's order-of-magnitude fork-join
// cost with the measured dispatch cost (publish + wake + join) of a
// persistent worker pool on this machine, so the workers axis is ranked
// against real sync overhead. The operator's own pool is probed when one
// is live; otherwise a transient team of the planning width is timed and
// released. Fork-join operators keep the model default — per-call
// goroutine dispatch is what they will actually pay.
func (op *Operator) measurePoolSync(h *perfmodel.Host, maxWorkers int) {
	if op.forkJoin || maxWorkers <= 1 {
		return
	}
	if op.pool != nil && op.pool.Workers() > 1 {
		h.PoolSync = op.pool.SyncCost()
		return
	}
	p := runtime.NewPool(maxWorkers, op.obsRank())
	defer p.Close()
	h.PoolSync = p.SyncCost()
}

// tileProfile derives the exchange-interval figures of the profile: the
// per-timestep shell stride (max over dimensions) and the tile-start
// stream count, from a k=2 probe plan (both are interval-independent).
func (op *Operator) tileProfile() (stride, streams int) {
	if op.ctx == nil || op.ctx.Serial() {
		return 0, 0
	}
	p, _ := ir.PlanTimeTile(op.Schedule, 2, op.isTimeField, op.hasScratch)
	if p == nil {
		return 0, 0
	}
	for _, s := range p.Stride {
		if s > stride {
			stride = s
		}
	}
	return stride, len(p.Halos)
}

// autotune self-configures the operator at the head of an Apply. The
// search policy consumes timesteps of the live run through the step
// callback (advancing *next/*remaining), timing tuneStepsPerTrial steps
// per shortlisted candidate; the slowest rank's time decides (allreduced
// max), so all ranks adopt the same winner. When too few steps remain the
// search settles early on the best measurement so far, or on the model's
// top choice if nothing was measured.
func (op *Operator) autotune(policy string, step func(int), next *int, remaining *int, dir int) error {
	prof := op.Profile()
	host := perfmodel.DefaultHost()
	op.measurePoolSync(&host, prof.MaxWorkers)
	rank := op.obsRank()
	if policy == AutotuneModel {
		plan := perfmodel.Plan(host, prof)
		if len(plan) == 0 {
			return nil
		}
		if err := op.adopt(plan[0]); err != nil {
			return err
		}
		if rank == 0 {
			obs.RecordDecision(obs.Decision{
				Policy:       policy,
				Config:       plan[0].String(),
				PredictedSec: host.Predict(prof, plan[0]),
				Chosen:       true,
			})
		}
		op.tuned = true
		op.tunePolicy = policy
		op.storeTuneConfig(plan[0])
		return nil
	}
	// One untimed warmup step before the first trial: the very first
	// step pays first-touch and cache-warming costs that would otherwise
	// bias the search against whichever candidate happens to go first.
	if *remaining > tuneStepsPerTrial {
		sp := obs.Begin(rank, obs.PhaseWarmup, *next)
		step(*next)
		*next += dir
		*remaining--
		sp.End()
		obs.Add(rank, obs.CtrWarmupSteps, 1)
	}
	measure := func(cfg perfmodel.ExecConfig) (float64, error) {
		// Every trial times a whole window and reports the per-step
		// average, with the window covering at least one full tile for
		// time-tiled candidates: tiled cost is lumpy (the deep exchange
		// and the widest shell land on the first substep), so a per-step
		// minimum would flatter tiling by timing only the cheap tail
		// substeps — and mixing a minimum for some candidates with an
		// average for others would bias the comparison the opposite way.
		steps := tuneStepsPerTrial
		if k := cfg.TimeTile; k > 1 {
			// Round up to whole tiles: a window that cuts a tile short
			// would charge the candidate for more tile-head exchanges per
			// step than its steady state (e.g. 2 exchanges in 3 steps for
			// k=2 instead of 1 in 2).
			steps = (steps + k - 1) / k * k
		}
		if *remaining < steps {
			return 0, perfmodel.ErrTuneBudget
		}
		if err := op.adopt(cfg); err != nil {
			return 0, err
		}
		// Align the window to a tile head regardless of where the
		// previous trial stopped.
		op.tilePos = 0
		sp := obs.Begin(rank, obs.PhaseAutotuneTrial, *next)
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			step(*next)
			*next += dir
			*remaining--
		}
		avg := time.Since(t0).Seconds() / float64(steps)
		sp.End()
		obs.Add(rank, obs.CtrTrialSteps, int64(steps))
		if op.ctx != nil && !op.ctx.Serial() {
			avg = op.ctx.Comm.AllreduceScalar(avg, mpi.OpMax)
		}
		return avg, nil
	}
	cfg, trialLog, err := perfmodel.Tune(host, prof, 0, measure)
	if err != nil {
		return err
	}
	if rank == 0 && obs.Active() {
		// Log every measured trial with its model prediction; the snapshot
		// derives the autotuner's regret (chosen vs empirically best) from
		// these entries.
		for _, tr := range trialLog {
			obs.RecordDecision(obs.Decision{
				Policy:       policy,
				Config:       tr.Config.String(),
				PredictedSec: host.Predict(prof, tr.Config),
				MeasuredSec:  tr.Seconds,
				Chosen:       tr.Config.String() == cfg.String(),
			})
		}
	}
	if os.Getenv("DEVIGO_TUNE_DEBUG") != "" && (op.ctx == nil || op.ctx.Comm.Rank() == 0) {
		for _, tr := range trialLog {
			fmt.Fprintf(os.Stderr, "devigo-tune: trial %s = %.6fs/step\n", tr.Config, tr.Seconds)
		}
		fmt.Fprintf(os.Stderr, "devigo-tune: chose %s\n", cfg)
	}
	if err := op.adopt(cfg); err != nil {
		return err
	}
	op.tuned = true
	op.tunePolicy = policy
	op.storeTuneConfig(cfg)
	return nil
}

// EffectiveConfig is the configuration an operator actually runs with —
// chosen by the autotuner or forced through Options — exported so
// benchmarks can record their own provenance.
type EffectiveConfig struct {
	// Engine is the execution engine ("bytecode", "interpreter" or
	// "native").
	Engine string `json:"engine"`
	// Mode is the halo-exchange pattern ("none" when serial).
	Mode string `json:"mode"`
	// Workers is the effective worker-pool size (1 = sequential).
	Workers int `json:"workers"`
	// TileRows is the outer-dimension tile height.
	TileRows int `json:"tile_rows"`
	// TimeTile is the halo-exchange interval (1 = exchange every step).
	TimeTile int `json:"time_tile"`
	// Autotune is the policy that configured the operator ("off" when the
	// configuration was forced or defaulted).
	Autotune string `json:"autotune"`
}

// Config reports the operator's effective execution configuration.
func (op *Operator) Config() EffectiveConfig {
	w := op.execOpts.Workers
	if w < 1 {
		w = 1
	}
	pol := op.tunePolicy
	if pol == "" {
		pol = AutotuneOff
	}
	return EffectiveConfig{
		Engine:   op.perf.Engine,
		Mode:     op.mode.String(),
		Workers:  w,
		TileRows: op.execOpts.TileRows,
		TimeTile: op.TimeTile(),
		Autotune: pol,
	}
}
