package core

import (
	"fmt"
	"math"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/perfmodel"
)

// Autotune policies: the compiler-picks-the-configuration loop of the
// source paper. "model" trusts the analytic cost model; "search"
// additionally times the model's shortlist on the first few real
// timesteps of the run (every candidate is bit-exact, so tuning in place
// never perturbs results).
const (
	// AutotuneOff disables self-configuration (the default).
	AutotuneOff = "off"
	// AutotuneModel adopts the cost model's top-ranked configuration.
	AutotuneModel = "model"
	// AutotuneSearch measures the model's shortlist empirically and keeps
	// the winner.
	AutotuneSearch = "search"
)

// AutotuneEnvVar overrides the policy when ApplyOpts.Autotune is unset —
// the zero-user-code-changes switch: DEVIGO_AUTOTUNE=model|search|off.
const AutotuneEnvVar = "DEVIGO_AUTOTUNE"

// tuneStepsPerTrial is how many real timesteps the search policy charges
// per candidate; the per-step minimum is kept to reject scheduling noise.
const tuneStepsPerTrial = 3

// resolveAutotune picks the policy: explicit ApplyOpts.Autotune wins, then
// the DEVIGO_AUTOTUNE environment variable, then off.
func resolveAutotune(requested string) (string, error) {
	p := strings.ToLower(strings.TrimSpace(requested))
	if p == "" {
		p = strings.ToLower(strings.TrimSpace(os.Getenv(AutotuneEnvVar)))
	}
	switch p {
	case "", AutotuneOff, "none", "0":
		return AutotuneOff, nil
	case AutotuneModel:
		return AutotuneModel, nil
	case AutotuneSearch, "on", "auto":
		return AutotuneSearch, nil
	}
	return "", fmt.Errorf("core: unknown autotune policy %q (want %q, %q or %q)",
		p, AutotuneOff, AutotuneModel, AutotuneSearch)
}

// Profile derives the autotuner's view of the operator: per-point
// instruction counts from the compiled kernels, exchanged streams from
// the halo schedule, and the slowest rank's box from the decomposition.
// Every rank derives the identical profile without communication, so
// planning is deterministic across a distributed run.
func (op *Operator) Profile() perfmodel.OpProfile {
	shape := append([]int(nil), op.Grid.Shape...)
	ranks := 1
	if op.ctx != nil && !op.ctx.Serial() && op.ctx.Decomp != nil {
		shape = op.ctx.Decomp.MaxLocalShape()
		ranks = op.ctx.Comm.Size()
	}
	instrs := 0
	for _, k := range op.kernels {
		instrs += k.InstrsPerPoint()
	}
	width := 0
	for name := range op.exchangers {
		f, ok := op.Fields[name]
		if !ok {
			continue
		}
		for _, h := range f.Halo {
			if h > width {
				width = h
			}
		}
	}
	p := perfmodel.OpProfile{
		LocalShape:      shape,
		InstrsPerPoint:  instrs,
		StreamsPerPoint: op.StreamCount(),
		HaloStreams:     op.HaloStreamCount(),
		HaloWidth:       width,
		Ranks:           ranks,
		MaxWorkers:      goruntime.GOMAXPROCS(0),
		Mode:            op.mode,
	}
	if op.forcedWorkers {
		p.ForcedWorkers = op.execOpts.Workers
	}
	if op.forcedTileRows {
		p.ForcedTileRows = op.execOpts.TileRows
	}
	return p
}

// adopt applies a planned configuration to the operator's runtime knobs,
// retargeting the halo pattern when the choice differs from the current
// one.
func (op *Operator) adopt(cfg perfmodel.ExecConfig) error {
	if cfg.Workers > 0 {
		op.execOpts.Workers = cfg.Workers
	}
	if cfg.TileRows > 0 {
		op.execOpts.TileRows = cfg.TileRows
	}
	if op.ctx != nil && !op.ctx.Serial() && cfg.Mode != halo.ModeNone && cfg.Mode != op.mode {
		return op.Retarget(cfg.Mode)
	}
	return nil
}

// autotune self-configures the operator at the head of an Apply. The
// search policy consumes timesteps of the live run through the step
// callback (advancing *next/*remaining), timing tuneStepsPerTrial steps
// per shortlisted candidate; the slowest rank's time decides (allreduced
// max), so all ranks adopt the same winner. When too few steps remain the
// search settles early on the best measurement so far, or on the model's
// top choice if nothing was measured.
func (op *Operator) autotune(policy string, step func(int), next *int, remaining *int, dir int) error {
	prof := op.Profile()
	host := perfmodel.DefaultHost()
	if policy == AutotuneModel {
		plan := perfmodel.Plan(host, prof)
		if len(plan) == 0 {
			return nil
		}
		if err := op.adopt(plan[0]); err != nil {
			return err
		}
		op.tuned = true
		op.tunePolicy = policy
		return nil
	}
	// One untimed warmup step before the first trial: the very first
	// step pays first-touch and cache-warming costs that would otherwise
	// bias the search against whichever candidate happens to go first.
	if *remaining > tuneStepsPerTrial {
		step(*next)
		*next += dir
		*remaining--
	}
	measure := func(cfg perfmodel.ExecConfig) (float64, error) {
		if *remaining < tuneStepsPerTrial {
			return 0, perfmodel.ErrTuneBudget
		}
		if err := op.adopt(cfg); err != nil {
			return 0, err
		}
		best := math.Inf(1)
		for i := 0; i < tuneStepsPerTrial; i++ {
			t0 := time.Now()
			step(*next)
			el := time.Since(t0).Seconds()
			*next += dir
			*remaining--
			if el < best {
				best = el
			}
		}
		if op.ctx != nil && !op.ctx.Serial() {
			best = op.ctx.Comm.AllreduceScalar(best, mpi.OpMax)
		}
		return best, nil
	}
	cfg, _, err := perfmodel.Tune(host, prof, 0, measure)
	if err != nil {
		return err
	}
	if err := op.adopt(cfg); err != nil {
		return err
	}
	op.tuned = true
	op.tunePolicy = policy
	return nil
}

// EffectiveConfig is the configuration an operator actually runs with —
// chosen by the autotuner or forced through Options — exported so
// benchmarks can record their own provenance.
type EffectiveConfig struct {
	// Engine is the execution engine ("bytecode" or "interpreter").
	Engine string `json:"engine"`
	// Mode is the halo-exchange pattern ("none" when serial).
	Mode string `json:"mode"`
	// Workers is the effective worker-pool size (1 = sequential).
	Workers int `json:"workers"`
	// TileRows is the outer-dimension tile height.
	TileRows int `json:"tile_rows"`
	// Autotune is the policy that configured the operator ("off" when the
	// configuration was forced or defaulted).
	Autotune string `json:"autotune"`
}

// Config reports the operator's effective execution configuration.
func (op *Operator) Config() EffectiveConfig {
	w := op.execOpts.Workers
	if w < 1 {
		w = 1
	}
	pol := op.tunePolicy
	if pol == "" {
		pol = AutotuneOff
	}
	return EffectiveConfig{
		Engine:   op.perf.Engine,
		Mode:     op.mode.String(),
		Workers:  w,
		TileRows: op.execOpts.TileRows,
		Autotune: pol,
	}
}
