package core

import (
	"math"
	"strings"
	"testing"

	"devigo/internal/ddata"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/symbolic"
)

// buildDiffusionOp assembles the paper Listing 1 diffusion operator over
// the provided (possibly distributed) storage.
func buildDiffusionOp(t testing.TB, g *grid.Grid, u *field.TimeFunction, ctx *Context) *Operator {
	t.Helper()
	eq := symbolic.Eq{
		LHS: symbolic.Dt(symbolic.At(u.Ref), 1),
		RHS: symbolic.Laplace(symbolic.At(u.Ref), g.NDims(), u.SpaceOrder),
	}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(
		[]symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}},
		map[string]*field.Function{"u": &u.Function}, g, ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestSerialDiffusionOneStep(t *testing.T) {
	// Hand-verified ground truth for one explicit Euler step of
	// u_t = laplace(u) on the paper's 4x4 grid with u[1:-1,1:-1] = 1.
	g := grid.MustNew([]int{4, 4}, []float64{2, 2})
	u, err := field.NewTimeFunction("u", g, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	arr := ddata.New(&u.Function, nil, 0)
	if err := arr.SetSlice(0, []ddata.Slice{ddata.SliceRange(1, -1), ddata.SliceRange(1, -1)}, 1); err != nil {
		t.Fatal(err)
	}
	op := buildDiffusionOp(t, g, u, nil)
	dx := 2.0 / 3.0
	dt := 0.25 * dx * dx / 0.5
	if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 0, Syms: map[string]float64{"dt": dt}}); err != nil {
		t.Fatal(err)
	}
	inv := 1 / (dx * dx)
	lap := func(i, j int) float64 {
		at := func(a, b int) float64 {
			if a < 0 || a > 3 || b < 0 || b > 3 {
				return 0
			}
			if a >= 1 && a <= 2 && b >= 1 && b <= 2 {
				return 1
			}
			return 0
		}
		return inv * (at(i-1, j) + at(i+1, j) + at(i, j-1) + at(i, j+1) - 4*at(i, j))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			old := 0.0
			if i >= 1 && i <= 2 && j >= 1 && j <= 2 {
				old = 1
			}
			want := old + dt*lap(i, j)
			got := float64(u.AtDomain(1, i, j))
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDiffusionDecaysAndStaysFinite(t *testing.T) {
	// Multi-step smoke test: max|u| decays monotonically for a stable dt.
	g := grid.MustNew([]int{16, 16}, []float64{1, 1})
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	u.SetDomain(0, 1, 8, 8)
	op := buildDiffusionOp(t, g, u, nil)
	h := g.Spacing(0)
	dt := 0.2 * h * h
	prevMax := 1.0
	for step := 0; step < 10; step++ {
		if err := op.Apply(&ApplyOpts{TimeM: step, TimeN: step, Syms: map[string]float64{"dt": dt}}); err != nil {
			t.Fatal(err)
		}
		mx := 0.0
		for _, v := range u.Buf(step + 1).Data {
			if m := math.Abs(float64(v)); m > mx {
				mx = m
			}
		}
		if mx > prevMax+1e-9 {
			t.Fatalf("step %d: max grew %g -> %g", step, prevMax, mx)
		}
		prevMax = mx
	}
	if prevMax >= 1 || prevMax <= 0 {
		t.Errorf("after 10 steps max = %g, expected decay into (0,1)", prevMax)
	}
}

// runDistributedDiffusion runs nt steps on nranks with the given mode and
// gathers the global result on rank 0.
func runDistributedDiffusion(t testing.TB, shape []int, topo []int, mode halo.Mode, so, nt int) []float32 {
	g := grid.MustNew(shape, nil)
	nranks := 1
	for _, v := range topo {
		nranks *= v
	}
	w := mpi.NewWorld(nranks)
	var result []float32
	err := w.Run(func(c *mpi.Comm) {
		dec, err := grid.NewDecomposition(g, c.Size(), topo)
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		u, err := field.NewTimeFunction("u", g, so, 1, &field.Config{Decomp: dec, Rank: c.Rank()})
		if err != nil {
			t.Error(err)
			return
		}
		arr := ddata.New(&u.Function, dec, c.Rank())
		// Deterministic initial condition as a function of global coords.
		slices := make([]ddata.Slice, len(shape))
		for d := range slices {
			slices[d] = ddata.SliceAll()
		}
		_ = arr.SetFunc(0, slices, func(gc []int) float32 {
			v := float32(1)
			for _, x := range gc {
				v *= float32(math.Sin(float64(x)*0.7) + 1.1)
			}
			return v
		})
		op := buildDiffusionOp(t, g, u, ctx)
		dt := 0.1
		if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: nt - 1, Syms: map[string]float64{"dt": dt}}); err != nil {
			t.Error(err)
			return
		}
		out := arr.Gather(c, 0, nt)
		if c.Rank() == 0 {
			result = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestDMPEquivalence_Diffusion(t *testing.T) {
	// The distributed result must be bitwise identical to the serial one
	// for every mode: same per-point arithmetic, same order, only the data
	// placement differs.
	shape := []int{16, 16}
	serial := runDistributedDiffusion(t, shape, []int{1, 1}, halo.ModeNone, 4, 5)
	cases := []struct {
		topo []int
		mode halo.Mode
	}{
		{[]int{2, 1}, halo.ModeBasic},
		{[]int{2, 2}, halo.ModeBasic},
		{[]int{2, 2}, halo.ModeDiagonal},
		{[]int{2, 2}, halo.ModeFull},
		{[]int{4, 1}, halo.ModeDiagonal},
		{[]int{1, 4}, halo.ModeFull},
		{[]int{4, 2}, halo.ModeBasic},
	}
	for _, tc := range cases {
		got := runDistributedDiffusion(t, shape, tc.topo, tc.mode, 4, 5)
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("topo %v mode %v: first divergence at %d: %v != %v",
					tc.topo, tc.mode, i, got[i], serial[i])
				break
			}
		}
	}
}

func TestDMPEquivalence_Diffusion3D(t *testing.T) {
	shape := []int{10, 9, 8}
	serial := runDistributedDiffusion(t, shape, []int{1, 1, 1}, halo.ModeNone, 2, 3)
	for _, tc := range []struct {
		topo []int
		mode halo.Mode
	}{
		{[]int{2, 2, 2}, halo.ModeBasic},
		{[]int{2, 2, 2}, halo.ModeDiagonal},
		{[]int{2, 2, 2}, halo.ModeFull},
		{[]int{2, 2, 1}, halo.ModeFull},
	} {
		got := runDistributedDiffusion(t, shape, tc.topo, tc.mode, 2, 3)
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("topo %v mode %v: divergence at %d: %v != %v",
					tc.topo, tc.mode, i, got[i], serial[i])
				break
			}
		}
	}
}

func TestListing3_RankLocalViews(t *testing.T) {
	// The distributed apply of the Listing 1 operator: each rank's local
	// view must equal the corresponding 2x2 block of the serial result.
	g := grid.MustNew([]int{4, 4}, []float64{2, 2})
	dx := 2.0 / 3.0
	dt := 0.25 * dx * dx / 0.5

	// Serial reference.
	uS, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	arrS := ddata.New(&uS.Function, nil, 0)
	_ = arrS.SetSlice(0, []ddata.Slice{ddata.SliceRange(1, -1), ddata.SliceRange(1, -1)}, 1)
	opS := buildDiffusionOp(t, g, uS, nil)
	if err := opS.Apply(&ApplyOpts{TimeM: 0, TimeN: 0, Syms: map[string]float64{"dt": dt}}); err != nil {
		t.Fatal(err)
	}

	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		dec, _ := grid.NewDecomposition(g, 4, []int{2, 2})
		cart, _ := mpi.CartCreate(c, dec.Topology, nil)
		ctx := &Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeBasic}
		u, _ := field.NewTimeFunction("u", g, 2, 1, &field.Config{Decomp: dec, Rank: c.Rank()})
		arr := ddata.New(&u.Function, dec, c.Rank())
		_ = arr.SetSlice(0, []ddata.Slice{ddata.SliceRange(1, -1), ddata.SliceRange(1, -1)}, 1)
		op := buildDiffusionOp(t, g, u, ctx)
		if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 0, Syms: map[string]float64{"dt": dt}}); err != nil {
			t.Error(err)
			return
		}
		origin := dec.LocalOrigin(c.Rank())
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				want := uS.AtDomain(1, origin[0]+i, origin[1]+j)
				got := u.AtDomain(1, i, j)
				if got != want {
					t.Errorf("rank %d local (%d,%d) = %v, want %v", c.Rank(), i, j, got, want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedCodeShape(t *testing.T) {
	// Listing 11 analogue: the emitted C for the diffusion operator must
	// contain hoisted invariants, the time loop, aligned accesses and the
	// update statement.
	g := grid.MustNew([]int{4, 4}, []float64{2, 2})
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	op := buildDiffusionOp(t, g, u, nil)
	code := op.CCode
	for _, want := range []string{
		"float r0 =",                   // hoisted invariant (1/h_x^2 style)
		"for (int time = time_m",       // time loop
		"u[t1][x + 2][y + 2] =",        // aligned store (halo 2 -> +2 shift)
		"[affine,parallel,vector-dim]", // property annotations
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
}

func TestGeneratedCodeHaloCallsPerMode(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeFull} {
		w := mpi.NewWorld(4)
		var code string
		err := w.Run(func(c *mpi.Comm) {
			dec, _ := grid.NewDecomposition(g, 4, []int{2, 2})
			cart, _ := mpi.CartCreate(c, dec.Topology, nil)
			ctx := &Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
			u, _ := field.NewTimeFunction("u", g, 2, 1, &field.Config{Decomp: dec, Rank: c.Rank()})
			op := buildDiffusionOp(t, g, u, ctx)
			if c.Rank() == 0 {
				code = op.CCode
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		switch mode {
		case halo.ModeBasic:
			if !strings.Contains(code, "haloupdate_basic(u)") || !strings.Contains(code, "halowait(u)") {
				t.Errorf("basic code missing halo calls:\n%s", code)
			}
		case halo.ModeFull:
			if !strings.Contains(code, "haloupdate_async_full(u)") {
				t.Errorf("full code missing async update:\n%s", code)
			}
			if !strings.Contains(code, "CORE") || !strings.Contains(code, "REMAINDER") {
				t.Errorf("full code missing CORE/REMAINDER sections:\n%s", code)
			}
		}
	}
}

func TestPerfReportCountsPoints(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	op := buildDiffusionOp(t, g, u, nil)
	if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 4, Syms: map[string]float64{"dt": 0.01}}); err != nil {
		t.Fatal(err)
	}
	p := op.Report()
	if p.PointsUpdated != 5*64 {
		t.Errorf("points updated = %d, want 320", p.PointsUpdated)
	}
	if p.Timesteps != 5 {
		t.Errorf("timesteps = %d", p.Timesteps)
	}
	if p.FlopsPerPoint <= 0 {
		t.Error("flops per point not recorded")
	}
	if p.GPtss() <= 0 {
		t.Error("throughput not computed")
	}
}

func TestSplitCoreRemainder(t *testing.T) {
	core, rem := splitCoreRemainder([]int{10, 8}, []int{2, 2})
	if core.Lo[0] != 2 || core.Hi[0] != 8 || core.Lo[1] != 2 || core.Hi[1] != 6 {
		t.Errorf("core = %+v", core)
	}
	total := core.Size()
	for _, r := range rem {
		total += r.Size()
	}
	if total != 80 {
		t.Errorf("core+remainder = %d, want 80", total)
	}
}

func TestApplyMissingDtErrors(t *testing.T) {
	g := grid.MustNew([]int{4, 4}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	op := buildDiffusionOp(t, g, u, nil)
	if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 0}); err == nil {
		t.Error("missing dt binding should error")
	}
}

func TestPostStepHookRuns(t *testing.T) {
	g := grid.MustNew([]int{4, 4}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	op := buildDiffusionOp(t, g, u, nil)
	var steps []int
	err := op.Apply(&ApplyOpts{TimeM: 2, TimeN: 4, Syms: map[string]float64{"dt": 0.01},
		PostStep: func(tt int) { steps = append(steps, tt) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 2 || steps[2] != 4 {
		t.Errorf("post steps = %v", steps)
	}
}

func TestEngineSelection(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	mk := func(engine string) (*Operator, error) {
		u, err := field.NewTimeFunction("u", g, 2, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		eq := symbolic.Eq{
			LHS: symbolic.Dt(symbolic.At(u.Ref), 1),
			RHS: symbolic.Laplace(symbolic.At(u.Ref), 2, 2),
		}
		sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
		if err != nil {
			t.Fatal(err)
		}
		return NewOperator(
			[]symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}},
			map[string]*field.Function{"u": &u.Function}, g, nil, &Options{Engine: engine})
	}

	// Default is the bytecode register VM.
	op, err := mk("")
	if err != nil {
		t.Fatal(err)
	}
	if op.Engine() != EngineBytecode {
		t.Errorf("default engine = %q, want %q", op.Engine(), EngineBytecode)
	}
	// Explicit interpreter selection, preserved across ResetPerf.
	op, err = mk(EngineInterpreter)
	if err != nil {
		t.Fatal(err)
	}
	if op.Engine() != EngineInterpreter {
		t.Errorf("engine = %q, want %q", op.Engine(), EngineInterpreter)
	}
	op.ResetPerf()
	if op.Report().Engine != EngineInterpreter {
		t.Error("ResetPerf dropped the engine label")
	}
	// Unknown engines are rejected.
	if _, err := mk("llvm"); err == nil {
		t.Error("unknown engine should error")
	}
	// Environment-variable fallback.
	t.Setenv(EngineEnvVar, EngineInterpreter)
	op, err = mk("")
	if err != nil {
		t.Fatal(err)
	}
	if op.Engine() != EngineInterpreter {
		t.Errorf("env-selected engine = %q, want %q", op.Engine(), EngineInterpreter)
	}
}

func TestGPtssRobustness(t *testing.T) {
	cases := []struct {
		name string
		p    Perf
		want func(v float64) bool
	}{
		{"zeroed", Perf{}, func(v float64) bool { return v == 0 }},
		{"compute only", Perf{ComputeSeconds: 2, PointsUpdated: 4e9},
			func(v float64) bool { return math.Abs(v-2) < 1e-12 }},
		{"halo only", Perf{HaloSeconds: 1, PointsUpdated: 1e9},
			func(v float64) bool { return math.Abs(v-1) < 1e-12 }},
		{"nan compute", Perf{ComputeSeconds: math.NaN(), HaloSeconds: 1, PointsUpdated: 1e9},
			func(v float64) bool { return math.Abs(v-1) < 1e-12 }},
		{"negative halo", Perf{ComputeSeconds: 1, HaloSeconds: -5, PointsUpdated: 1e9},
			func(v float64) bool { return math.Abs(v-1) < 1e-12 }},
		{"no points", Perf{ComputeSeconds: 1}, func(v float64) bool { return v == 0 }},
	}
	for _, c := range cases {
		if got := c.p.GPtss(); !c.want(got) {
			t.Errorf("%s: GPtss() = %v", c.name, got)
		}
	}
}
