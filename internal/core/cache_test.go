package core

import (
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/obs"
	"devigo/internal/opcache"
	"devigo/internal/symbolic"
)

// diffusionSetup builds a fresh diffusion equation set over fresh storage,
// the raw inputs of ScheduleKey and NewOperator.
func diffusionSetup(t *testing.T, shape []int, so int) ([]symbolic.Eq, map[string]*field.Function, *grid.Grid, *field.TimeFunction) {
	t.Helper()
	g := grid.MustNew(shape, nil)
	u, err := field.NewTimeFunction("u", g, so, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eq := symbolic.Eq{
		LHS: symbolic.Dt(symbolic.At(u.Ref), 1),
		RHS: symbolic.Laplace(symbolic.At(u.Ref), g.NDims(), u.SpaceOrder),
	}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		t.Fatal(err)
	}
	eqs := []symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}}
	return eqs, map[string]*field.Function{"u": &u.Function}, g, u
}

// TestScheduleKeyIdentity: identical configurations over distinct storage
// must share one key — the property the whole cache rests on.
func TestScheduleKeyIdentity(t *testing.T) {
	eqs1, f1, g1, _ := diffusionSetup(t, []int{16, 16}, 2)
	eqs2, f2, g2, _ := diffusionSetup(t, []int{16, 16}, 2)
	k1 := ScheduleKey(eqs1, f1, g1, nil, EngineBytecode, 1)
	k2 := ScheduleKey(eqs2, f2, g2, nil, EngineBytecode, 1)
	if k1 == "" || k1 != k2 {
		t.Fatalf("identical configs must share a key: %q vs %q", k1, k2)
	}
}

// TestScheduleKeyDistinguishes: each compiled-artifact-relevant input must
// perturb the key; a collision here would serve a wrong kernel.
func TestScheduleKeyDistinguishes(t *testing.T) {
	eqs, fields, g, _ := diffusionSetup(t, []int{16, 16}, 2)
	base := ScheduleKey(eqs, fields, g, nil, EngineBytecode, 1)

	variants := map[string]string{}
	{ // space order changes the stencil coefficients and halo reads
		e, f, gg, _ := diffusionSetup(t, []int{16, 16}, 4)
		variants["space order"] = ScheduleKey(e, f, gg, nil, EngineBytecode, 1)
	}
	{ // grid shape changes the iteration space
		e, f, gg, _ := diffusionSetup(t, []int{24, 24}, 2)
		variants["grid shape"] = ScheduleKey(e, f, gg, nil, EngineBytecode, 1)
	}
	// engine and time tile select different compiled artifacts over the
	// same symbolic input
	variants["engine"] = ScheduleKey(eqs, fields, g, nil, EngineInterpreter, 1)
	variants["time tile"] = ScheduleKey(eqs, fields, g, nil, EngineBytecode, 4)
	{ // a decomposition topology changes the exchange schedule
		dec, err := grid.NewDecomposition(g, 4, []int{2, 2})
		if err != nil {
			t.Fatal(err)
		}
		variants["decomposition"] = ScheduleKey(eqs, fields, g, dec, EngineBytecode, 1)
	}
	seen := map[string]string{base: "base"}
	for what, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s did not perturb the key (collides with %s)", what, prev)
		}
		seen[k] = what
	}
}

// TestCachedOperatorBitExactAndCounted: a second operator with the same
// schedule key must (a) run bit-identically to a privately compiled one and
// (b) cost zero compilations — the obs compile counter stays at 1 for any
// number of operators sharing the key.
func TestCachedOperatorBitExactAndCounted(t *testing.T) {
	for _, engine := range []string{EngineBytecode, EngineInterpreter} {
		t.Run(engine, func(t *testing.T) {
			obs.EnableMetrics()
			defer func() { obs.DisableAll(); obs.Reset() }()
			obs.Reset()

			run := func(cache *opcache.Cache) []float32 {
				eqs, fields, g, u := diffusionSetup(t, []int{16, 16}, 2)
				u.SetDomain(0, 1, 8, 8)
				op, err := NewOperator(eqs, fields, g, nil,
					&Options{Engine: engine, Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				if (cache != nil) != (op.CacheKey() != "") {
					t.Fatalf("CacheKey() = %q with cache=%v", op.CacheKey(), cache != nil)
				}
				h := g.Spacing(0)
				if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 3,
					Syms: map[string]float64{"dt": 0.2 * h * h}}); err != nil {
					t.Fatal(err)
				}
				return append([]float32(nil), u.Buf(0).Data...)
			}

			private := run(nil)
			cache := opcache.New()
			first := run(cache)
			second := run(cache)
			for i := range private {
				if private[i] != first[i] || first[i] != second[i] {
					t.Fatalf("cached run diverges at %d: private=%v first=%v second=%v",
						i, private[i], first[i], second[i])
				}
			}
			st := cache.Stats()
			if st.Misses != 1 || st.Hits != 1 {
				t.Errorf("cache stats = %+v, want 1 miss + 1 hit", st)
			}
			total := obs.Snapshot().Total
			// Three operators ran: one private (+1 compile), one cold cached
			// (+1 compile, +1 miss), one warm cached (+1 hit, no compile).
			if total.OpCompiles != 2 {
				t.Errorf("obs compile counter = %d, want 2 (private + one per unique key)", total.OpCompiles)
			}
			if total.OpCacheMisses != 1 || total.OpCacheHits != 1 {
				t.Errorf("obs cache counters = %d miss / %d hit, want 1/1",
					total.OpCacheMisses, total.OpCacheHits)
			}
		})
	}
}

// TestCacheRejectsForeignEntry: a corrupt entry under the kernels key must
// surface as an error, not a crash or a silent recompile.
func TestCacheRejectsForeignEntry(t *testing.T) {
	eqs, fields, g, _ := diffusionSetup(t, []int{16, 16}, 2)
	cache := opcache.New()
	key := ScheduleKey(eqs, fields, g, nil, EngineBytecode, 1)
	cache.Put(kernelsKey(key), "not a kernel set")
	_, err := NewOperator(eqs, fields, g, nil, &Options{Engine: EngineBytecode, Cache: cache})
	if err == nil {
		t.Fatal("corrupt cache entry must fail operator construction")
	}
}
