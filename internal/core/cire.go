package core

import (
	"fmt"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/symbolic"
)

// applyCIRE implements cross-iteration redundancy elimination (paper
// Section II: "extracting increments to eliminate cross-iteration
// redundancy (CIRE)"), the flop-reduction pass that makes rotated
// (TTI-style) Laplacians affordable. Two rewrite rules run bottom-up:
//
//  1. a derivative nested inside another derivative's target is
//     materialised into a scratch field (otherwise it would be
//     re-evaluated at every tap of the outer stencil);
//  2. a compound (non-access) derivative target is materialised too, so
//     the outer stencil taps read a single precomputed value.
//
// Scratch fields are recomputed redundantly over an extended box (the
// local domain widened transitively by the consumers' stencil radii) so
// that no halo exchange is needed for them — exactly Devito's strategy
// for CIRE temporaries. The required extension per scratch field is
// returned so the operator can size the compute boxes.
func applyCIRE(eqs []symbolic.Eq, fields map[string]*field.Function, g *grid.Grid,
	decomp *grid.Decomposition, rank int) ([]symbolic.Eq, map[string]int, error) {

	type scratchDef struct {
		name string
		expr symbolic.Expr
	}
	var defs []scratchDef
	byKey := map[string]string{}
	isScratch := map[string]bool{}

	extract := func(e symbolic.Expr) symbolic.Expr {
		key := symbolic.ExpandDerivatives(e).String()
		name, ok := byKey[key]
		if !ok {
			name = fmt.Sprintf("cire%d", len(defs))
			byKey[key] = name
			isScratch[name] = true
			defs = append(defs, scratchDef{name: name, expr: e})
		}
		return symbolic.At(scratchRef(name, g.NDims()))
	}

	// bareAccess reports whether the expression needs no materialisation
	// as a derivative target.
	bareAccess := func(e symbolic.Expr) bool {
		switch e.(type) {
		case symbolic.Access, symbolic.Sym, symbolic.Num:
			return true
		}
		return false
	}

	var rewrite func(e symbolic.Expr, insideDeriv bool) symbolic.Expr
	rewrite = func(e symbolic.Expr, insideDeriv bool) symbolic.Expr {
		switch v := e.(type) {
		case symbolic.Deriv:
			target := rewrite(v.Target, true)
			d := symbolic.Deriv{Target: target, Dim: v.Dim, Order: v.Order,
				FDOrder: v.FDOrder, Side: v.Side}
			if insideDeriv {
				// Rule 1: nested derivative -> scratch.
				return extract(d)
			}
			if !bareAccess(target) {
				// Rule 2: compound target -> scratch, derivative stays.
				d.Target = extract(target)
			}
			return d
		case symbolic.Add:
			terms := make([]symbolic.Expr, len(v.Terms))
			for i, tm := range v.Terms {
				terms[i] = rewrite(tm, insideDeriv)
			}
			return symbolic.NewAdd(terms...)
		case symbolic.Mul:
			fs := make([]symbolic.Expr, len(v.Factors))
			for i, f := range v.Factors {
				fs[i] = rewrite(f, insideDeriv)
			}
			return symbolic.NewMul(fs...)
		case symbolic.Pow:
			return symbolic.NewPow(rewrite(v.Base, insideDeriv), v.Exp)
		default:
			return e
		}
	}

	out := make([]symbolic.Eq, len(eqs))
	for i, e := range eqs {
		out[i] = symbolic.Eq{LHS: e.LHS, RHS: rewrite(e.RHS, false)}
	}
	if len(defs) == 0 {
		return eqs, nil, nil
	}

	// Extensions propagate transitively: a scratch read by another scratch
	// computed over an extended box must itself be valid there. Iterate to
	// a fixed point (chains are short: two levels for TTI).
	extension := map[string]int{}
	type reader struct {
		writes string // scratch name written by the eq, "" for finals
		rhs    symbolic.Expr
	}
	var readers []reader
	for _, d := range defs {
		readers = append(readers, reader{writes: d.name, rhs: symbolic.ExpandDerivatives(d.expr)})
	}
	for _, e := range out {
		readers = append(readers, reader{rhs: symbolic.ExpandDerivatives(e.RHS)})
	}
	for changed := true; changed; {
		changed = false
		for _, r := range readers {
			extWriter := 0
			if r.writes != "" {
				extWriter = extension[r.writes]
			}
			for _, a := range symbolic.Accesses(r.rhs) {
				if !isScratch[a.Fun.Name] {
					continue
				}
				radius := 0
				for _, o := range a.Off {
					if o < 0 {
						o = -o
					}
					if o > radius {
						radius = o
					}
				}
				if need := radius + extWriter; need > extension[a.Fun.Name] {
					extension[a.Fun.Name] = need
					changed = true
				}
			}
		}
	}

	// Allocate scratch storage with a halo wide enough for the extended
	// writes plus the scratch expression's own read radius.
	for _, d := range defs {
		ext := extension[d.name]
		innerRadius := maxRadius(symbolic.ExpandDerivatives(d.expr), g.NDims())
		haloW := ext + innerRadius
		if haloW < 1 {
			haloW = 1
		}
		cfg := &field.Config{HaloWidth: haloW}
		if decomp != nil {
			cfg.Decomp = decomp
			cfg.Rank = rank
		}
		f, err := field.NewFunction(d.name, g, haloW, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: allocating CIRE scratch: %w", err)
		}
		f.Ref = scratchRef(d.name, g.NDims())
		fields[d.name] = f
	}
	scratchEqs := make([]symbolic.Eq, len(defs))
	for i, d := range defs {
		scratchEqs[i] = symbolic.Eq{
			LHS: symbolic.At(fields[d.name].Ref),
			RHS: d.expr,
		}
	}
	return append(scratchEqs, out...), extension, nil
}

// scratchRef builds the canonical FuncRef for a scratch field; accesses
// and storage must agree on the name-based identity.
func scratchRef(name string, nd int) *symbolic.FuncRef {
	return &symbolic.FuncRef{Name: name, NDims: nd}
}

func maxRadius(e symbolic.Expr, nd int) int {
	r := symbolic.StencilRadius(e, nd)
	m := 0
	for _, v := range r {
		if v > m {
			m = v
		}
	}
	return m
}
