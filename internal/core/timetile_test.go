package core

import (
	"strings"
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/iet"
	"devigo/internal/mpi"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

func TestRemainderBoxesPartition(t *testing.T) {
	outer := runtime.Box{Lo: []int{-2, -3}, Hi: []int{10, 11}}
	inner := runtime.Box{Lo: []int{1, 2}, Hi: []int{7, 8}}
	rem := remainderBoxes(outer, inner)
	total := inner.Size()
	for i, b := range rem {
		total += b.Size()
		// Disjoint from inner and from each other.
		for d := range b.Lo {
			if b.Lo[d] < outer.Lo[d] || b.Hi[d] > outer.Hi[d] {
				t.Errorf("box %d escapes outer: %+v", i, b)
			}
		}
	}
	if total != outer.Size() {
		t.Errorf("partition covers %d points, outer has %d", total, outer.Size())
	}
	// Empty inner: the whole outer comes back.
	rem = remainderBoxes(outer, runtime.Box{Lo: []int{0, 0}, Hi: []int{0, 0}})
	sum := 0
	for _, b := range rem {
		sum += b.Size()
	}
	if sum != outer.Size() {
		t.Errorf("empty-inner partition covers %d, want %d", sum, outer.Size())
	}
}

func TestResolveTimeTile(t *testing.T) {
	if k, err := resolveTimeTile(0); err != nil || k != 1 {
		t.Errorf("default = %d, %v; want 1", k, err)
	}
	if k, err := resolveTimeTile(6); err != nil || k != 6 {
		t.Errorf("explicit = %d, %v; want 6", k, err)
	}
	t.Setenv(TimeTileEnvVar, "4")
	if k, err := resolveTimeTile(0); err != nil || k != 4 {
		t.Errorf("env = %d, %v; want 4", k, err)
	}
	t.Setenv(TimeTileEnvVar, "zero")
	if _, err := resolveTimeTile(0); err == nil || !strings.Contains(err.Error(), TimeTileEnvVar) {
		t.Errorf("bad env accepted: %v", err)
	}
	if _, err := resolveTimeTile(-1); err == nil {
		t.Error("negative interval accepted")
	}
}

// ttOperator builds a distributed diffusion-style operator on one rank of
// a 4-rank world and hands it to fn.
func ttOperator(t *testing.T, k int, mode halo.Mode, fn func(c *mpi.Comm, op *Operator, u *field.TimeFunction)) {
	t.Helper()
	shape := []int{16, 16}
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		u, err := field.NewTimeFunction("u", g, 2, 1, &field.Config{Decomp: dec, Rank: c.Rank()})
		if err != nil {
			t.Error(err)
			return
		}
		upd := symbolic.NewAdd(symbolic.At(u.Ref),
			symbolic.NewMul(symbolic.Float(0.1), symbolic.Laplace(symbolic.At(u.Ref), 2, 2)))
		eq := symbolic.Eq{LHS: symbolic.ForwardStencil(u.Ref), RHS: upd}
		ctx := &Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		op, err := NewOperator([]symbolic.Eq{eq}, map[string]*field.Function{"u": &u.Function}, g, ctx,
			&Options{TimeTile: k})
		if err != nil {
			t.Error(err)
			return
		}
		fn(c, op, u)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The tiled IET replaces the time loop with a TimeTile node carrying the
// tile-start exchange, and the generated source shows the tiled loop.
func TestTimeTileLoweringAndCode(t *testing.T) {
	ttOperator(t, 4, halo.ModeDiagonal, func(c *mpi.Comm, op *Operator, u *field.TimeFunction) {
		if op.TimeTile() != 4 {
			t.Errorf("effective interval = %d, want 4", op.TimeTile())
		}
		tiles := iet.CountNodes(op.Tree, func(n iet.Node) bool { _, ok := n.(iet.TimeTile); return ok })
		loops := iet.CountNodes(op.Tree, func(n iet.Node) bool { _, ok := n.(iet.TimeLoop); return ok })
		if tiles != 1 || loops != 0 {
			t.Errorf("tree has %d TimeTile / %d TimeLoop nodes, want 1 / 0", tiles, loops)
		}
		if !strings.Contains(op.CCode, "haloupdate_deep") || !strings.Contains(op.CCode, "tile += 4") {
			t.Errorf("generated code lacks the tiled structure:\n%s", op.CCode)
		}
		// The plan deepened the ghost allocation: width (k-1)*1 + 1 = 4
		// for the radius-1 stencil (space order 2 allocates base 2).
		if u.Halo[0] < 4 {
			t.Errorf("ghost width %d too shallow for k=4 radius-1", u.Halo[0])
		}
	})
}

// RetargetTimeTile switches the interval live without recompiling
// kernels, and switching back restores the classic lowering.
func TestRetargetTimeTileLive(t *testing.T) {
	ttOperator(t, 1, halo.ModeDiagonal, func(c *mpi.Comm, op *Operator, u *field.TimeFunction) {
		if op.TimeTile() != 1 {
			t.Fatalf("initial interval = %d", op.TimeTile())
		}
		if err := op.RetargetTimeTile(4); err != nil {
			t.Fatal(err)
		}
		if op.TimeTile() != 4 {
			t.Errorf("after retarget interval = %d, want 4", op.TimeTile())
		}
		if !strings.Contains(op.CCode, "haloupdate_deep") {
			t.Error("retargeted code lacks the deep update")
		}
		if err := op.RetargetTimeTile(1); err != nil {
			t.Fatal(err)
		}
		if op.TimeTile() != 1 || strings.Contains(op.CCode, "haloupdate_deep") {
			t.Errorf("retarget back to 1 left interval %d / tiled code", op.TimeTile())
		}
		if err := op.RetargetTimeTile(0); err == nil {
			t.Error("interval 0 accepted")
		}
	})
}

// Applying with tiling is bit-exact vs k=1 on raw operators too (no
// propagator machinery), and CommStats reports the amortized reduction.
func TestTimeTileApplyBitExactAndCommStats(t *testing.T) {
	norms := map[int]float32{}
	stats := map[int]CommStats{}
	for _, k := range []int{1, 4} {
		k := k
		ttOperator(t, k, halo.ModeBasic, func(c *mpi.Comm, op *Operator, u *field.TimeFunction) {
			// Deterministic initial condition from global coordinates.
			for i := 0; i < u.LocalShape[0]; i++ {
				for j := 0; j < u.LocalShape[1]; j++ {
					gx, gy := u.Origin[0]+i, u.Origin[1]+j
					u.SetDomain(0, float32(gx*31+gy*7)/100, i, j)
				}
			}
			if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: 9, Syms: map[string]float64{"dt": 1}}); err != nil {
				t.Error(err)
				return
			}
			sum := float32(0)
			for i := 0; i < u.LocalShape[0]; i++ {
				for j := 0; j < u.LocalShape[1]; j++ {
					sum += u.AtDomain(10, i, j)
				}
			}
			sum = float32(c.AllreduceScalar(float64(sum), mpi.OpSum))
			if c.Rank() == 0 {
				norms[k] = sum
				stats[k] = op.CommStats()
			}
		})
	}
	if norms[1] != norms[4] {
		t.Errorf("k=4 checksum %v != k=1 checksum %v", norms[4], norms[1])
	}
	if stats[4].MsgsPerStep >= stats[1].MsgsPerStep/2 {
		t.Errorf("CommStats msgs/step at k=4 = %v, want < half of k=1's %v",
			stats[4].MsgsPerStep, stats[1].MsgsPerStep)
	}
	if stats[4].TimeTile != 4 || stats[1].TimeTile != 1 {
		t.Errorf("CommStats intervals = %d/%d, want 4/1", stats[4].TimeTile, stats[1].TimeTile)
	}
}

// The profile exposes the k-axis bounds: closed (1) for default
// operators — the tuner never changes the communication schedule of an
// operator that did not provision deep halos — and open up to the
// feasibility limit once an interval was requested.
func TestTimeTileProfileAndCandidates(t *testing.T) {
	ttOperator(t, 1, halo.ModeDiagonal, func(c *mpi.Comm, op *Operator, u *field.TimeFunction) {
		prof := op.Profile()
		if prof.TimeTile != 1 {
			t.Errorf("profile interval = %d, want 1", prof.TimeTile)
		}
		if prof.TileStride != 1 || prof.TileStreams != 1 {
			t.Errorf("tile stride/streams = %d/%d, want 1/1", prof.TileStride, prof.TileStreams)
		}
		if prof.MaxTimeTile != 1 {
			t.Errorf("unprovisioned MaxTimeTile = %d, want 1", prof.MaxTimeTile)
		}
	})
	ttOperator(t, 4, halo.ModeDiagonal, func(c *mpi.Comm, op *Operator, u *field.TimeFunction) {
		prof := op.Profile()
		if prof.TimeTile != 4 {
			t.Errorf("provisioned profile interval = %d, want 4", prof.TimeTile)
		}
		if prof.MaxTimeTile < 4 {
			t.Errorf("provisioned MaxTimeTile = %d, want >= 4", prof.MaxTimeTile)
		}
	})
}
