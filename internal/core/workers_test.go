package core

import (
	"strings"
	"testing"

	"devigo/internal/ddata"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/symbolic"
)

func TestResolveWorkersVocabulary(t *testing.T) {
	// Explicit request wins over everything.
	if got, err := resolveWorkers(3); err != nil || got != 3 {
		t.Errorf("resolveWorkers(3) = %d, %v; want 3", got, err)
	}
	// Unset everywhere -> 0 (unforced: the autotuner may pick a team).
	if got, err := resolveWorkers(0); err != nil || got != 0 {
		t.Errorf("resolveWorkers(0) = %d, %v; want 0", got, err)
	}
	// Environment fallback, with surrounding whitespace tolerated.
	t.Setenv(WorkersEnvVar, " 4 ")
	if got, err := resolveWorkers(0); err != nil || got != 4 {
		t.Errorf("env resolveWorkers(0) = %d, %v; want 4", got, err)
	}
	// Explicit still wins over the environment.
	if got, err := resolveWorkers(2); err != nil || got != 2 {
		t.Errorf("explicit over env = %d, %v; want 2", got, err)
	}
}

func TestResolveWorkersRejectsBad(t *testing.T) {
	if _, err := resolveWorkers(-1); err == nil ||
		!strings.Contains(err.Error(), "Options.Workers") {
		t.Errorf("negative explicit count should blame Options.Workers, got %v", err)
	}
	for _, bad := range []string{"zero", "0", "-2", "1.5"} {
		t.Setenv(WorkersEnvVar, bad)
		_, err := resolveWorkers(0)
		if err == nil {
			t.Errorf("bad $%s=%q accepted", WorkersEnvVar, bad)
			continue
		}
		for _, frag := range []string{`"` + bad + `"`, "$" + WorkersEnvVar} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("workers env error %q lacks %q", err, frag)
			}
		}
	}
}

func TestBadWorkersEnvPropagatesFromNewOperator(t *testing.T) {
	t.Setenv(WorkersEnvVar, "many")
	_, err := NewOperator(nil, nil, nil, nil, &Options{Name: "wcfgtest"})
	if err == nil || !strings.Contains(err.Error(), "$"+WorkersEnvVar) {
		t.Fatalf("NewOperator with bad $%s: got %v, want a configuration error naming the variable",
			WorkersEnvVar, err)
	}
}

// applyDiffusion runs nt steps of the Listing-1 diffusion operator with
// the given options and returns the final buffer plus the operator.
func applyDiffusion(t *testing.T, opts *Options, nt int) ([]float32, *Operator) {
	t.Helper()
	g := grid.MustNew([]int{24, 16}, []float64{23, 15})
	u, err := field.NewTimeFunction("u", g, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Buf(0).Data {
		u.Buf(0).Data[i] = float32(i%29) * 0.125
	}
	op := buildDiffusionOpWith(t, g, u, opts)
	if err := op.Apply(&ApplyOpts{TimeM: 0, TimeN: nt - 1, Syms: map[string]float64{"dt": 0.05}}); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(u.Buf(nt).Data))
	copy(out, u.Buf(nt).Data)
	return out, op
}

func buildDiffusionOpWith(t *testing.T, g *grid.Grid, u *field.TimeFunction, opts *Options) *Operator {
	return buildDiffusionOpWithCtx(t, g, u, nil, opts)
}

func buildDiffusionOpWithCtx(t *testing.T, g *grid.Grid, u *field.TimeFunction, ctx *Context, opts *Options) *Operator {
	t.Helper()
	eq := symbolic.Eq{
		LHS: symbolic.Dt(symbolic.At(u.Ref), 1),
		RHS: symbolic.Laplace(symbolic.At(u.Ref), g.NDims(), u.SpaceOrder),
	}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(
		[]symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol}},
		map[string]*field.Function{"u": &u.Function}, g, ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestOperatorPoolLifecycle(t *testing.T) {
	serial, opS := applyDiffusion(t, nil, 4)
	if opS.Pool() != nil {
		t.Fatal("serial operator spawned a pool")
	}

	got, op := applyDiffusion(t, &Options{Workers: 3}, 4)
	defer op.Close()
	p := op.Pool()
	if p == nil || p.Workers() != 3 {
		t.Fatalf("Workers:3 operator pool = %v", p)
	}
	for i := range serial {
		if got[i] != serial[i] {
			t.Fatalf("pooled result diverges from serial at %d: %v != %v", i, got[i], serial[i])
		}
	}
	if st := p.Stats(); st.Dispatches == 0 {
		t.Fatal("pool recorded no dispatches during Apply")
	}

	// The pool persists across Apply calls: same team, more dispatches.
	before := p.Stats().Dispatches
	if err := op.Apply(&ApplyOpts{TimeM: 4, TimeN: 5, Syms: map[string]float64{"dt": 0.05}}); err != nil {
		t.Fatal(err)
	}
	if op.Pool() != p {
		t.Fatal("Apply replaced the persistent pool")
	}
	if after := p.Stats().Dispatches; after <= before {
		t.Fatalf("second Apply dispatched nothing (%d -> %d)", before, after)
	}

	// Close releases the team; the next Apply respawns a fresh one.
	op.Close()
	if op.Pool() != nil {
		t.Fatal("Close left the pool attached")
	}
	if !p.Closed() {
		t.Fatal("Close did not close the team")
	}
	if err := op.Apply(&ApplyOpts{TimeM: 6, TimeN: 6, Syms: map[string]float64{"dt": 0.05}}); err != nil {
		t.Fatal(err)
	}
	p2 := op.Pool()
	if p2 == nil || p2 == p || p2.Workers() != 3 {
		t.Fatalf("Apply after Close: pool = %v (old %v)", p2, p)
	}
	op.Close()
	op.Close() // idempotent
}

func TestOperatorForkJoinSkipsPool(t *testing.T) {
	serial, _ := applyDiffusion(t, nil, 3)
	got, op := applyDiffusion(t, &Options{Workers: 4, ForkJoin: true}, 3)
	if op.Pool() != nil {
		t.Fatal("ForkJoin operator spawned a persistent pool")
	}
	for i := range serial {
		if got[i] != serial[i] {
			t.Fatalf("fork-join result diverges from serial at %d: %v != %v", i, got[i], serial[i])
		}
	}
}

func TestWorkersEnvSpawnsPool(t *testing.T) {
	t.Setenv(WorkersEnvVar, "2")
	serial := func() []float32 {
		t.Setenv(WorkersEnvVar, "")
		out, _ := applyDiffusion(t, nil, 3)
		return out
	}()
	t.Setenv(WorkersEnvVar, "2")
	got, op := applyDiffusion(t, nil, 3)
	defer op.Close()
	if p := op.Pool(); p == nil || p.Workers() != 2 {
		t.Fatalf("$%s=2 pool = %v", WorkersEnvVar, op.Pool())
	}
	for i := range serial {
		if got[i] != serial[i] {
			t.Fatalf("env-pooled result diverges at %d: %v != %v", i, got[i], serial[i])
		}
	}
}

// TestPoolSurvivesRetargetChurn drives a multi-worker operator through
// mid-run Retarget / RetargetTimeTile churn on every rank of a 4-rank
// world: the persistent team must survive every transition (same pool
// object — those calls never change the worker count) and the final
// wavefield must stay bit-identical to an unchurned serial-worker run.
// The race job runs this under -race to certify the park/dispatch
// protocol against the exchanger rebuilds.
func TestPoolSurvivesRetargetChurn(t *testing.T) {
	run := func(workers int, churn bool) []float32 {
		g := grid.MustNew([]int{16, 16}, nil)
		w := mpi.NewWorld(4)
		var out []float32
		err := w.Run(func(c *mpi.Comm) {
			dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
			if err != nil {
				t.Error(err)
				return
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := &Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
			u, err := field.NewTimeFunction("u", g, 2, 1, &field.Config{Decomp: dec, Rank: c.Rank()})
			if err != nil {
				t.Error(err)
				return
			}
			arr := ddata.New(&u.Function, dec, c.Rank())
			slices := []ddata.Slice{ddata.SliceAll(), ddata.SliceAll()}
			_ = arr.SetFunc(0, slices, func(gc []int) float32 {
				return float32(gc[0]*3+gc[1]) * 0.01
			})
			op := buildDiffusionOpWithCtx(t, g, u, ctx, &Options{Workers: workers, TileRows: 2})
			defer op.Close()
			apply := func(lo, hi int) {
				if err := op.Apply(&ApplyOpts{TimeM: lo, TimeN: hi, Syms: map[string]float64{"dt": 0.05}}); err != nil {
					t.Error(err)
				}
			}
			apply(0, 3)
			p := op.Pool()
			if workers > 1 && (p == nil || p.Workers() != workers) {
				t.Errorf("rank %d: pool = %v before churn", c.Rank(), p)
			}
			if churn {
				if err := op.RetargetTimeTile(4); err != nil {
					t.Error(err)
				}
			}
			apply(4, 11)
			if churn {
				if err := op.RetargetTimeTile(1); err != nil {
					t.Error(err)
				}
				if err := op.Retarget(halo.ModeFull); err != nil {
					t.Error(err)
				}
			}
			apply(12, 15)
			if workers > 1 && op.Pool() != p {
				t.Errorf("rank %d: churn replaced the persistent pool", c.Rank())
			}
			res := arr.Gather(c, 0, 16)
			if c.Rank() == 0 {
				out = res
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1, false)
	for _, workers := range []int{3, 7} {
		got := run(workers, true)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d churned result diverges at %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}
