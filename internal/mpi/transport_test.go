package mpi

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// Transport conformance suite: every scenario runs over both the
// in-process transport and the loopback TCP transport, so the delivery
// contract (posting-order (source, tag) matching, post-time buffer
// ownership, ProcNull no-ops, collective determinism) is pinned for
// any implementation behind the interface.

// transports enumerates the implementations under test as world
// runners with a common shape.
var transports = []struct {
	name string
	run  func(n int, f func(c *Comm)) error
}{
	{"inproc", func(n int, f func(c *Comm)) error { return NewWorld(n).Run(f) }},
	{"tcp", func(n int, f func(c *Comm)) error { return RunTCPLocal(n, 30*time.Second, f) }},
}

func forEachTransport(t *testing.T, n int, f func(c *Comm)) {
	t.Helper()
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			if err := tr.run(n, f); err != nil {
				t.Fatalf("%s world failed: %v", tr.name, err)
			}
		})
	}
}

// failf reports a failure from inside a rank body by panicking; the
// world runner converts it into an error the subtest fails on.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

func TestConformancePostingOrderMatching(t *testing.T) {
	// Same (source, tag) messages must arrive in posting order, and
	// tag-selective receives must not disturb the order of what they
	// skip over.
	forEachTransport(t, 2, func(c *Comm) {
		const per = 8
		switch c.Rank() {
		case 0:
			for i := 0; i < per; i++ {
				c.Send(1, 7, []float32{float32(i)})
				c.Send(1, 9, []float32{float32(100 + i)})
			}
		case 1:
			buf := make([]float32, 1)
			// Drain tag 9 first: selectivity must skip the tag-7 queue
			// without reordering it.
			for i := 0; i < per; i++ {
				c.Recv(0, 9, buf)
				if buf[0] != float32(100+i) {
					failf("tag 9 msg %d: got %v", i, buf[0])
				}
			}
			for i := 0; i < per; i++ {
				c.Recv(0, 7, buf)
				if buf[0] != float32(i) {
					failf("tag 7 msg %d: got %v", i, buf[0])
				}
			}
		}
	})
}

func TestConformanceProcNull(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) {
		c.Send(ProcNull, 1, []float32{1, 2, 3})
		buf := []float32{-1, -1}
		if n := c.Recv(ProcNull, 1, buf); n != 0 {
			failf("Recv from ProcNull returned %d, want 0", n)
		}
		if buf[0] != -1 || buf[1] != -1 {
			failf("Recv from ProcNull wrote into buf: %v", buf)
		}
		r := c.Irecv(ProcNull, 1, buf)
		if !r.Done() || r.Wait() != 0 {
			failf("Irecv from ProcNull must be born complete with count 0")
		}
	})
}

func TestConformanceIsendBufferOwnership(t *testing.T) {
	// The Transport contract snapshots the payload before Send/Isend
	// returns: mutating the source buffer immediately after the post
	// must not corrupt the message on any transport.
	forEachTransport(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := []float32{1, 2, 3, 4}
			req := c.Isend(1, 5, buf)
			for i := range buf {
				buf[i] = -99 // mutate immediately after the post
			}
			req.Wait()
			c.Send(1, 6, buf) // second message proves the first was a snapshot
		case 1:
			got := make([]float32, 4)
			c.Recv(0, 5, got)
			want := []float32{1, 2, 3, 4}
			for i := range want {
				if got[i] != want[i] {
					failf("Isend payload not snapshotted at post: got %v", got)
				}
			}
			c.Recv(0, 6, got)
			if got[0] != -99 {
				failf("second send lost mutation: %v", got)
			}
		}
	})
}

func TestConformanceWaitallInterleavedDepthTags(t *testing.T) {
	// The deep-halo exchanger posts one Irecv per (stream, offset) pair
	// across several depth streams before any send, then Waitalls. The
	// tags interleave arbitrarily on the wire; completion must sort
	// them out.
	const k = 4
	forEachTransport(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		bufs := make([][]float32, k)
		reqs := make([]*Request, k)
		for s := 0; s < k; s++ {
			bufs[s] = make([]float32, 3)
			reqs[s] = c.Irecv(peer, OffsetTag(s, []int{1, 0, 0}), bufs[s])
		}
		// Send depth streams in reverse order so arrival order fights
		// the posting order of the receives.
		for s := k - 1; s >= 0; s-- {
			v := float32(10*c.Rank() + s)
			c.Send(peer, OffsetTag(s, []int{1, 0, 0}), []float32{v, v, v})
		}
		Waitall(reqs)
		for s := 0; s < k; s++ {
			want := float32(10*peer + s)
			for _, got := range bufs[s] {
				if got != want {
					failf("stream %d: got %v want %v", s, bufs[s], want)
				}
			}
		}
	})
}

func TestConformanceConcurrentStreams(t *testing.T) {
	// Multiple exchanger streams driving the same Comm concurrently
	// (the overlap engine's shape) must be race-free and stream-local
	// FIFO. Run under -race.
	const streams = 4
	const msgs = 16
	forEachTransport(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				tag := OffsetTag(s, []int{0, 1, 0})
				buf := make([]float32, 1)
				for i := 0; i < msgs; i++ {
					c.Send(peer, tag, []float32{float32(1000*s + i)})
					c.Recv(peer, tag, buf)
					if buf[0] != float32(1000*s+i) {
						failf("stream %d msg %d: got %v", s, i, buf[0])
					}
				}
			}(s)
		}
		wg.Wait()
	})
}

func TestConformanceCollectives(t *testing.T) {
	// Collectives are pure point-to-point, so they must agree across
	// transports and world sizes — including non-power-of-two sizes
	// that exercise the allgather bring-in/pay-back path and non-zero
	// broadcast roots.
	for _, n := range []int{1, 2, 3, 4, 5, 7} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEachTransport(t, n, func(c *Comm) {
				c.Barrier()
				sum := c.AllreduceScalar(float64(c.Rank()+1), OpSum)
				want := float64(n*(n+1)) / 2
				if sum != want {
					failf("allreduce sum: got %v want %v", sum, want)
				}
				maxv := c.AllreduceScalar(float64(c.Rank()), OpMax)
				if maxv != float64(n-1) {
					failf("allreduce max: got %v want %v", maxv, n-1)
				}
				root := n / 2
				buf := make([]float32, 3)
				if c.Rank() == root {
					buf = []float32{3, 1, 4}
				}
				c.Bcast(root, buf)
				if buf[0] != 3 || buf[1] != 1 || buf[2] != 4 {
					failf("bcast from root %d: got %v", root, buf)
				}
				c.Barrier()
			})
		})
	}
}

func TestConformanceAllreduceBitExactAcrossSizes(t *testing.T) {
	// The ascending-rank-order fold makes Allreduce bit-identical to a
	// sequential fold regardless of transport or communication
	// schedule — float addition is not associative, so this is what
	// keeps checked-in norms stable.
	for _, n := range []int{2, 3, 4, 6} {
		n := n
		contrib := func(r int) float64 { return math.Sqrt(float64(r)+0.1) * 1e-7 }
		want := contrib(0)
		for r := 1; r < n; r++ {
			want += contrib(r)
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEachTransport(t, n, func(c *Comm) {
				got := c.AllreduceScalar(contrib(c.Rank()), OpSum)
				if got != want {
					failf("rank %d: fold not bit-exact: got %v want %v (diff %g)",
						c.Rank(), got, want, got-want)
				}
			})
		})
	}
}

func TestConformanceLargePayload(t *testing.T) {
	// A payload far beyond one socket buffer exercises framing and
	// partial reads on the TCP side.
	const elems = 1 << 18 // 1 MiB
	forEachTransport(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			data := make([]float32, elems)
			for i := range data {
				data[i] = float32(i % 977)
			}
			c.Send(1, 3, data)
		case 1:
			buf := make([]float32, elems)
			if n := c.Recv(0, 3, buf); n != elems {
				failf("large recv: got %d elems, want %d", n, elems)
			}
			for i := range buf {
				if buf[i] != float32(i%977) {
					failf("large payload corrupt at %d: %v", i, buf[i])
				}
			}
		}
	})
}

func TestConformanceEmptyMessage(t *testing.T) {
	// Zero-length payloads (the barrier's tokens) must deliver and
	// match like any other message.
	forEachTransport(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		c.Send(peer, 11, nil)
		if n := c.Recv(peer, 11, nil); n != 0 {
			failf("empty message: got count %d", n)
		}
	})
}

func TestMailboxTakeZeroesVacatedSlot(t *testing.T) {
	// Regression: the slice delete in take() must zero the vacated tail
	// slot. Before the fix, popping from the front left the backing
	// array's tail element aliasing the last message's payload, pinning
	// a halo-buffer-sized allocation for the queue's lifetime.
	m := newMailbox()
	m.push(1, make([]float32, 4))
	m.push(2, make([]float32, 1<<20))
	if _, err := m.pop(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.pop(2); err != nil {
		t.Fatal(err)
	}
	// Queue is empty but its backing array still has the slots the two
	// messages occupied; both must have been zeroed on removal.
	full := m.queue[:cap(m.queue)]
	for i, msg := range full {
		if msg.data != nil {
			t.Fatalf("vacated slot %d still references a %d-element payload", i, len(msg.data))
		}
	}
}

func TestMailboxPopTimeout(t *testing.T) {
	m := newMailbox()
	start := time.Now()
	_, err := m.popTimeout(5, 50*time.Millisecond)
	if err == nil {
		t.Fatal("popTimeout on an empty mailbox must fail")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a deadline error, got %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("popTimeout returned before its deadline")
	}
	// A message that arrives while waiting must be delivered.
	go func() {
		time.Sleep(10 * time.Millisecond)
		m.push(6, []float32{42})
	}()
	data, err := m.popTimeout(6, time.Second)
	if err != nil || len(data) != 1 || data[0] != 42 {
		t.Fatalf("popTimeout missed a delivered message: %v %v", data, err)
	}
}

func TestTCPHungPeerDeadline(t *testing.T) {
	// The hung-peer guarantee: a receive whose sender never sends fails
	// with a deadline error after the timeout, not a deadlock, and the
	// world run returns it as a clean error.
	err := RunTCPLocal(2, 500*time.Millisecond, func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]float32, 1)
			c.Recv(1, 99, buf) // rank 1 never sends: must trip the deadline
		}
		// rank 1 exits immediately; its connection teardown or rank 0's
		// deadline both surface as errors, never a hang.
	})
	if err == nil {
		t.Fatal("a hung peer must produce an error")
	}
	if !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("error should implicate the waiting rank: %v", err)
	}
}

func TestTCPDialRetryWaitsForLateListener(t *testing.T) {
	// Ranks rarely start simultaneously; the dialer's backoff must ride
	// out a listener that comes up late. RunTCPLocal pre-binds, so
	// build the world by hand with rank 1's listener deliberately nil
	// and its transport started after a delay.
	addrs, err := FreeLocalAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Rank 1 dials rank 0, which doesn't listen yet.
		tr, err := NewTCPTransport(TCPConfig{Rank: 1, Addrs: addrs, Timeout: 10 * time.Second})
		if err != nil {
			errs <- err
			return
		}
		defer tr.Close()
		if err := tr.Send(0, 1, []float32{7}); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(300 * time.Millisecond) // rank 0 is late
		tr, err := NewTCPTransport(TCPConfig{Rank: 0, Addrs: addrs, Timeout: 10 * time.Second})
		if err != nil {
			errs <- err
			return
		}
		defer tr.Close()
		data, err := tr.Recv(1, 1)
		if err != nil {
			errs <- err
			return
		}
		if len(data) != 1 || data[0] != 7 {
			errs <- fmt.Errorf("late-listener world delivered %v", data)
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestTCPStatsAccounting(t *testing.T) {
	// Transport-level stats must count messages and payload bytes.
	err := RunTCPLocal(2, 10*time.Second, func(c *Comm) {
		peer := 1 - c.Rank()
		c.Send(peer, 1, make([]float32, 10))
		c.Send(peer, 2, make([]float32, 5))
		buf := make([]float32, 10)
		c.Recv(peer, 1, buf)
		c.Recv(peer, 2, buf)
		st := c.Transport().Stats()
		if st.MsgsSent != 2 || st.BytesSent != 60 {
			failf("rank %d stats: %+v, want 2 msgs / 60 bytes", c.Rank(), st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadHostfile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/hosts"
	content := "# rank addresses\n127.0.0.1:9001\n\n127.0.0.1:9002 # rank 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	addrs, err := ReadHostfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "127.0.0.1:9001" || addrs[1] != "127.0.0.1:9002" {
		t.Fatalf("parsed %v", addrs)
	}
	if err := os.WriteFile(path, []byte("not-an-address\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHostfile(path); err == nil {
		t.Fatal("malformed hostfile line must be rejected")
	}
}
