package mpi

import "sync"

// barrier is a reusable generation barrier for all ranks of a world.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Barrier blocks until every rank of the world has entered it.
func (c *Comm) Barrier() { c.world.barrier.await() }

// collTag returns a fresh tag in the reserved collective tag space. Every
// rank executes collectives in the same order, so per-rank sequence numbers
// agree across the communicator.
const collTagBase = 1 << 30

func (c *Comm) collTag() int {
	t := collTagBase + c.collSeq
	c.collSeq++
	return t
}

// ReduceOp is a binary reduction operator.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum = func(a, b float64) float64 { return a + b }
	OpMax = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce reduces vals elementwise across all ranks with op and returns
// the result on every rank. Reduction happens in rank order on rank 0, so
// the result is deterministic and identical everywhere.
func (c *Comm) Allreduce(vals []float64, op ReduceOp) []float64 {
	tag := c.collTag()
	buf32 := make([]float32, 2*len(vals))
	// float64 values are shipped as pairs of float32s would lose precision;
	// instead pack the bits. A dedicated float64 channel would be cleaner,
	// but the message substrate is float32: encode via two 32-bit halves.
	out := make([]float64, len(vals))
	copy(out, vals)
	if c.size == 1 {
		return out
	}
	if c.rank == 0 {
		tmp := make([]float64, len(vals))
		for src := 1; src < c.size; src++ {
			c.Recv(src, tag, buf32)
			unpackFloat64(buf32, tmp)
			for i := range out {
				out[i] = op(out[i], tmp[i])
			}
		}
		packFloat64(out, buf32)
		for dst := 1; dst < c.size; dst++ {
			c.Send(dst, tag, buf32)
		}
		return out
	}
	packFloat64(vals, buf32)
	c.Send(0, tag, buf32)
	c.Recv(0, tag, buf32)
	unpackFloat64(buf32, out)
	return out
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(v float64, op ReduceOp) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}

// Bcast broadcasts buf from root to all ranks.
func (c *Comm) Bcast(root int, buf []float32) {
	tag := c.collTag()
	if c.size == 1 {
		return
	}
	if c.rank == root {
		for dst := 0; dst < c.size; dst++ {
			if dst != root {
				c.Send(dst, tag, buf)
			}
		}
		return
	}
	c.Recv(root, tag, buf)
}

// Gather collects each rank's contribution on root; parts[r] receives rank
// r's data (only meaningful on root, where parts must have size entries
// with adequate capacity). Every rank passes its local data.
func (c *Comm) Gather(root int, local []float32, parts [][]float32) {
	tag := c.collTag()
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				copy(parts[r], local)
				continue
			}
			c.Recv(r, tag, parts[r])
		}
		return
	}
	c.Send(root, tag, local)
}

// packFloat64 stores float64 bit patterns into pairs of float32 slots
// losslessly (bit reinterpretation, not value conversion).
func packFloat64(src []float64, dst []float32) {
	for i, v := range src {
		bits := float64bits(v)
		dst[2*i] = float32frombits(uint32(bits >> 32))
		dst[2*i+1] = float32frombits(uint32(bits))
	}
}

func unpackFloat64(src []float32, dst []float64) {
	for i := range dst {
		hi := uint64(float32bits(src[2*i]))
		lo := uint64(float32bits(src[2*i+1]))
		dst[i] = float64frombits(hi<<32 | lo)
	}
}

// Alltoall exchanges equal-sized chunks between every pair of ranks:
// send[r] goes to rank r, and the returned slice holds one chunk from each
// rank, in rank order. All chunks must share the same length.
func (c *Comm) Alltoall(send [][]float32) [][]float32 {
	tag := c.collTag()
	out := make([][]float32, c.size)
	for dst := 0; dst < c.size; dst++ {
		if dst == c.rank {
			out[dst] = append([]float32(nil), send[dst]...)
			continue
		}
		c.Send(dst, tag, send[dst])
	}
	for src := 0; src < c.size; src++ {
		if src == c.rank {
			continue
		}
		buf := make([]float32, len(send[src]))
		c.Recv(src, tag, buf)
		out[src] = buf
	}
	return out
}
