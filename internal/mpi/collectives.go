package mpi

// Collectives are built purely on point-to-point Send/Recv so they run
// unchanged over any Transport: a dissemination barrier, a binomial-tree
// broadcast and a recursive-doubling allreduce. The previous runtime
// implemented Barrier on a shared-memory generation counter and
// Allreduce as a rank-0 star — both in-process-only shapes; the
// replacements keep bit-identical results (the allreduce gathers every
// rank's contribution and folds in ascending rank order on every rank,
// exactly the fold the rank-0 star performed) while needing nothing but
// messages.

// collTagBase reserves the collective tag space. Every rank executes
// collectives in the same order, so per-rank sequence numbers agree
// across the communicator and collective traffic can never be confused
// with user messages.
const collTagBase = 1 << 30

func (c *Comm) collTag() int {
	t := collTagBase + c.collSeq
	c.collSeq++
	return t
}

// Barrier blocks until every rank has entered it — a dissemination
// barrier: ceil(log2 n) rounds, each rank sending a token to
// (rank + 2^k) mod n and receiving one from (rank - 2^k) mod n. The
// round offsets are distinct modulo n, so a single collective tag
// suffices (sources differ per round).
func (c *Comm) Barrier() {
	if c.size == 1 {
		return
	}
	tag := c.collTag()
	for off := 1; off < c.size; off <<= 1 {
		dst := (c.rank + off) % c.size
		src := (c.rank - off + c.size) % c.size
		c.Send(dst, tag, nil)
		c.Recv(src, tag, nil)
	}
}

// ReduceOp is a binary reduction operator.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum = func(a, b float64) float64 { return a + b }
	OpMax = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce reduces vals elementwise across all ranks with op and returns
// the result on every rank. Every rank gathers all contributions via
// recursive doubling and folds them in ascending rank order, so the
// result is deterministic, identical everywhere, and bit-identical to a
// sequential rank-order fold regardless of the communication schedule —
// floating-point addition is not associative, so the gather-then-fold
// split is what keeps the checked-in BENCH norms stable across
// transports and world shapes.
func (c *Comm) Allreduce(vals []float64, op ReduceOp) []float64 {
	out := make([]float64, len(vals))
	copy(out, vals)
	if c.size == 1 {
		return out
	}
	table := c.allgather(vals)
	copy(out, table[0])
	for r := 1; r < c.size; r++ {
		for i := range out {
			out[i] = op(out[i], table[r][i])
		}
	}
	return out
}

// allgather collects every rank's contribution on every rank (indexed by
// rank) using recursive doubling over the largest power-of-two subset:
// ranks >= p2 first fold their contribution into a partner below p2,
// the subset doubles log2(p2) times, and the partners are paid back with
// the completed table. Messages carry float64 bit patterns packed into
// float32 pairs (see packFloat64) prefixed implicitly by position — the
// slot layout of every message is a deterministic function of the round,
// so no headers are needed.
func (c *Comm) allgather(vals []float64) [][]float64 {
	n := len(vals)
	tag := c.collTag()
	table := make([][]float64, c.size)
	own := make([]float64, n)
	copy(own, vals)
	table[c.rank] = own

	p2 := 1
	for p2*2 <= c.size {
		p2 *= 2
	}
	extra := c.size - p2 // ranks p2..size-1 piggyback on rank-p2 partners

	// slotsOf lists the initial slots participant i (a rank < p2) holds
	// after the bring-in phase: its own, plus its piggybacked partner's.
	slotsOf := func(i int) []int {
		s := []int{i}
		if i+p2 < c.size {
			s = append(s, i+p2)
		}
		return s
	}

	if c.rank >= p2 {
		// Bring-in: hand the contribution to the partner, then wait for
		// the completed table.
		c.sendSlots(c.rank-p2, tag, [][]float64{own})
		full := c.recvSlots(c.rank-p2, tag, c.size, n)
		copy(table, full)
		return table
	}
	if c.rank+p2 < c.size {
		in := c.recvSlots(c.rank+p2, tag, 1, n)
		table[c.rank+p2] = in[0]
	}

	// Recursive doubling among the p2 participants: after round k each
	// participant owns the slots of its aligned 2^(k+1)-participant
	// block; partner blocks are disjoint and their slot lists are
	// deterministic, so both sides know exactly what travels.
	for mask := 1; mask < p2; mask <<= 1 {
		partner := c.rank ^ mask
		base := c.rank &^ (2*mask - 1)
		var mine, theirs []int
		for i := base; i < base+2*mask; i++ {
			if (i & mask) == (c.rank & mask) {
				mine = append(mine, slotsOf(i)...)
			} else {
				theirs = append(theirs, slotsOf(i)...)
			}
		}
		send := make([][]float64, len(mine))
		for j, s := range mine {
			send[j] = table[s]
		}
		c.sendSlots(partner, tag, send)
		recv := c.recvSlots(partner, tag, len(theirs), n)
		for j, s := range theirs {
			table[s] = recv[j]
		}
	}
	if extra > 0 && c.rank+p2 < c.size {
		// Pay-back: ship the completed table to the piggybacked partner.
		c.sendSlots(c.rank+p2, tag, table)
	}
	return table
}

// sendSlots ships a list of equal-length float64 vectors as one packed
// message.
func (c *Comm) sendSlots(dst, tag int, vecs [][]float64) {
	var flat []float64
	for _, v := range vecs {
		flat = append(flat, v...)
	}
	buf := make([]float32, 2*len(flat))
	packFloat64(flat, buf)
	c.Send(dst, tag, buf)
}

// recvSlots receives count packed vectors of n float64s each.
func (c *Comm) recvSlots(src, tag, count, n int) [][]float64 {
	buf := make([]float32, 2*count*n)
	c.Recv(src, tag, buf)
	flat := make([]float64, count*n)
	unpackFloat64(buf, flat)
	out := make([][]float64, count)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return out
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(v float64, op ReduceOp) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}

// Bcast broadcasts buf from root to all ranks over a binomial tree:
// log2(n) rounds instead of the previous root-sends-to-everyone star,
// and nothing but point-to-point messages.
func (c *Comm) Bcast(root int, buf []float32) {
	tag := c.collTag()
	if c.size == 1 {
		return
	}
	rel := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if rel&mask != 0 {
			src := (rel - mask + root) % c.size
			c.Recv(src, tag, buf)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < c.size {
			dst := (rel + mask + root) % c.size
			c.Send(dst, tag, buf)
		}
		mask >>= 1
	}
}

// Gather collects each rank's contribution on root; parts[r] receives rank
// r's data (only meaningful on root, where parts must have size entries
// with adequate capacity). Every rank passes its local data.
func (c *Comm) Gather(root int, local []float32, parts [][]float32) {
	tag := c.collTag()
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				copy(parts[r], local)
				continue
			}
			c.Recv(r, tag, parts[r])
		}
		return
	}
	c.Send(root, tag, local)
}

// packFloat64 stores float64 bit patterns into pairs of float32 slots
// losslessly (bit reinterpretation, not value conversion).
func packFloat64(src []float64, dst []float32) {
	for i, v := range src {
		bits := float64bits(v)
		dst[2*i] = float32frombits(uint32(bits >> 32))
		dst[2*i+1] = float32frombits(uint32(bits))
	}
}

func unpackFloat64(src []float32, dst []float64) {
	for i := range dst {
		hi := uint64(float32bits(src[2*i]))
		lo := uint64(float32bits(src[2*i+1]))
		dst[i] = float64frombits(hi<<32 | lo)
	}
}

// Alltoall exchanges equal-sized chunks between every pair of ranks:
// send[r] goes to rank r, and the returned slice holds one chunk from each
// rank, in rank order. All chunks must share the same length.
func (c *Comm) Alltoall(send [][]float32) [][]float32 {
	tag := c.collTag()
	out := make([][]float32, c.size)
	for dst := 0; dst < c.size; dst++ {
		if dst == c.rank {
			out[dst] = append([]float32(nil), send[dst]...)
			continue
		}
		c.Send(dst, tag, send[dst])
	}
	for src := 0; src < c.size; src++ {
		if src == c.rank {
			continue
		}
		buf := make([]float32, len(send[src]))
		c.Recv(src, tag, buf)
		out[src] = buf
	}
	return out
}
