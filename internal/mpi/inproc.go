package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the in-process transport: ranks are goroutines of one
// World, and delivery is a matrix of mailboxes (one per directed rank
// pair). It is the default substrate — zero behavior change from the
// pre-Transport runtime — and the fixture the transport conformance
// suite measures the TCP implementation against.

// message is an in-flight point-to-point payload. Data is owned by the
// mailbox once enqueued (the sender copies).
type message struct {
	tag  int
	data []float32
}

// mailbox queues messages from one fixed sender to one fixed receiver.
// The TCP transport reuses it as the per-source inbox its connection
// readers feed, which is why it also supports deadlines (popTimeout)
// and failure injection (fail): a wire can die, a goroutine cannot.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	// err poisons the mailbox: every blocked and future pop fails with
	// it (connection teardown, peer death).
	err error
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a message (sender side).
func (m *mailbox) push(tag int, data []float32) {
	m.mu.Lock()
	m.queue = append(m.queue, message{tag: tag, data: data})
	m.mu.Unlock()
	m.cond.Broadcast()
}

// fail poisons the mailbox with err and wakes every waiter.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns queue[i], zeroing the vacated tail slot so
// the dropped message's payload (a large halo buffer, potentially) is
// GC-able as soon as the receiver drops it — a bare
// append(q[:i], q[i+1:]...) would leave the tail slot aliasing it for
// the queue's lifetime.
func (m *mailbox) take(i int) []float32 {
	data := m.queue[i].data
	copy(m.queue[i:], m.queue[i+1:])
	m.queue[len(m.queue)-1] = message{}
	m.queue = m.queue[:len(m.queue)-1]
	return data
}

// pop removes and returns the first message with the given tag, blocking
// until one arrives.
func (m *mailbox) pop(tag int) ([]float32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.queue {
			if m.queue[i].tag == tag {
				return m.take(i), nil
			}
		}
		if m.err != nil {
			return nil, m.err
		}
		m.cond.Wait()
	}
}

// errRecvTimeout marks a popTimeout deadline expiry.
var errRecvTimeout = errors.New("receive deadline exceeded")

// popTimeout is pop with a deadline: it fails with errRecvTimeout once d
// elapses without a matching message, turning a hung peer into an error
// instead of a deadlock. d <= 0 means no deadline.
func (m *mailbox) popTimeout(tag int, d time.Duration) ([]float32, error) {
	if d <= 0 {
		return m.pop(tag)
	}
	deadline := time.Now().Add(d)
	// sync.Cond has no timed wait; a timer broadcast wakes the waiters
	// so the deadline check below runs.
	timer := time.AfterFunc(d, m.cond.Broadcast)
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.queue {
			if m.queue[i].tag == tag {
				return m.take(i), nil
			}
		}
		if m.err != nil {
			return nil, m.err
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("%w (%s)", errRecvTimeout, d)
		}
		m.cond.Wait()
	}
}

// tryPop removes the first message with the given tag if present.
func (m *mailbox) tryPop(tag int) ([]float32, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.queue {
		if m.queue[i].tag == tag {
			return m.take(i), true, nil
		}
	}
	return nil, false, m.err
}

// World is a set of communicating ranks within the process.
type World struct {
	size      int
	mailboxes [][]*mailbox // [src][dst]

	statsMu sync.Mutex
	stats   []Stats
}

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{size: n, stats: make([]Stats, n)}
	w.mailboxes = make([][]*mailbox, n)
	for s := 0; s < n; s++ {
		w.mailboxes[s] = make([]*mailbox, n)
		for d := 0; d < n; d++ {
			w.mailboxes[s][d] = newMailbox()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// StatsSnapshot returns a snapshot of per-rank accounting.
func (w *World) StatsSnapshot() []Stats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return append([]Stats(nil), w.stats...)
}

// Run executes f once per rank, each on its own goroutine, and waits for all
// to finish. A panic on any rank is recovered and returned as an error
// (first one wins); remaining ranks may deadlock-free finish or be
// abandoned — Run still returns after all goroutines exit or panic.
func (w *World) Run(f func(c *Comm)) (err error) {
	var wg sync.WaitGroup
	errs := make(chan error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs <- fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			c := NewComm(&inprocTransport{world: w, rank: rank})
			c.world = w
			f(c)
		}(r)
	}
	wg.Wait()
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// inprocTransport is one rank's handle on a World's mailbox matrix.
type inprocTransport struct {
	world *World
	rank  int
}

// Rank returns the calling rank.
func (t *inprocTransport) Rank() int { return t.rank }

// Size returns the world size.
func (t *inprocTransport) Size() int { return t.world.size }

// Send copies data (the snapshot the Transport contract requires) and
// enqueues it in the destination's mailbox.
func (t *inprocTransport) Send(dst, tag int, data []float32) error {
	buf := make([]float32, len(data))
	copy(buf, data)
	t.world.mailboxes[t.rank][dst].push(tag, buf)
	w := t.world
	w.statsMu.Lock()
	w.stats[t.rank].MsgsSent++
	w.stats[t.rank].BytesSent += int64(len(data)) * 4
	w.statsMu.Unlock()
	return nil
}

// Recv blocks on the source mailbox until a matching message arrives.
// Goroutine ranks cannot hang the way a remote peer can, so there is no
// deadline — a lost message here is a schedule bug, and the zero-change
// behavior of the pre-Transport runtime is preserved.
func (t *inprocTransport) Recv(src, tag int) ([]float32, error) {
	return t.world.mailboxes[src][t.rank].pop(tag)
}

// TryRecv polls the source mailbox.
func (t *inprocTransport) TryRecv(src, tag int) ([]float32, bool, error) {
	return t.world.mailboxes[src][t.rank].tryPop(tag)
}

// Stats returns the calling rank's send accounting.
func (t *inprocTransport) Stats() Stats {
	t.world.statsMu.Lock()
	defer t.world.statsMu.Unlock()
	return t.world.stats[t.rank]
}

// Close is a no-op: the world dies with its goroutines.
func (t *inprocTransport) Close() error { return nil }
