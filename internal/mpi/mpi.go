// Package mpi implements an in-process message-passing runtime with MPI
// semantics: ranks are goroutines, point-to-point messages are matched by
// (source, tag) in posting order, and the usual blocking/nonblocking
// operations, collectives and Cartesian communicators are provided.
//
// It is the substitute substrate for the MPI library + cluster of the paper
// (see DESIGN.md): the generated communication schedules run for real over
// this runtime, so distributed-versus-serial equivalence is testable, while
// wall-clock behaviour of the interconnect is modeled separately by
// internal/perfmodel.
package mpi

import (
	"fmt"
	"sync"
)

// ProcNull is the null process rank: sends and receives addressed to it are
// no-ops, mirroring MPI_PROC_NULL.
const ProcNull = -1

// message is an in-flight point-to-point payload. Data is owned by the
// mailbox once enqueued (the sender copies).
type message struct {
	tag  int
	data []float32
}

// mailbox queues messages from one fixed sender to one fixed receiver.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a message (sender side).
func (m *mailbox) push(tag int, data []float32) {
	m.mu.Lock()
	m.queue = append(m.queue, message{tag: tag, data: data})
	m.mu.Unlock()
	m.cond.Broadcast()
}

// pop removes and returns the first message with the given tag, blocking
// until one arrives.
func (m *mailbox) pop(tag int) []float32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg.data
			}
		}
		m.cond.Wait()
	}
}

// tryPop removes the first message with the given tag if present.
func (m *mailbox) tryPop(tag int) ([]float32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if msg.tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg.data, true
		}
	}
	return nil, false
}

// World is a set of communicating ranks within the process.
type World struct {
	size      int
	mailboxes [][]*mailbox // [src][dst]
	barrier   *barrier

	statsMu sync.Mutex
	stats   []Stats
}

// Stats accumulates per-rank communication accounting, used by tests
// (paper Table I) and cross-checked against the performance model.
type Stats struct {
	MsgsSent  int
	BytesSent int64
}

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{size: n, barrier: newBarrier(n), stats: make([]Stats, n)}
	w.mailboxes = make([][]*mailbox, n)
	for s := 0; s < n; s++ {
		w.mailboxes[s] = make([]*mailbox, n)
		for d := 0; d < n; d++ {
			w.mailboxes[s][d] = newMailbox()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of per-rank accounting.
func (w *World) StatsSnapshot() []Stats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return append([]Stats(nil), w.stats...)
}

// Run executes f once per rank, each on its own goroutine, and waits for all
// to finish. A panic on any rank is recovered and returned as an error
// (first one wins); remaining ranks may deadlock-free finish or be
// abandoned — Run still returns after all goroutines exit or panic.
func (w *World) Run(f func(c *Comm)) (err error) {
	var wg sync.WaitGroup
	errs := make(chan error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs <- fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			f(&Comm{rank: rank, size: w.size, world: w})
		}(r)
	}
	wg.Wait()
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// Comm is a rank's handle on the world — the equivalent of MPI_COMM_WORLD
// as seen from one process.
type Comm struct {
	rank  int
	size  int
	world *World
	// collSeq numbers collective operations so that their internal
	// point-to-point traffic cannot be confused with user messages.
	collSeq int
}

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// World returns the underlying world (for accounting).
func (c *Comm) World() *World { return c.world }

// Send performs a blocking standard-mode send. The data is copied, so the
// caller may reuse the buffer immediately (buffered semantics — matching
// what a correct MPI program may assume only of MPI_Bsend, but what the
// generated code here relies on deliberately).
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst == ProcNull {
		return
	}
	c.checkRank(dst)
	buf := make([]float32, len(data))
	copy(buf, data)
	c.world.mailboxes[c.rank][dst].push(tag, buf)
	c.account(len(data))
}

// Recv blocks until a message with the given source and tag arrives, copies
// it into buf and returns the element count. The message length must not
// exceed len(buf).
func (c *Comm) Recv(src, tag int, buf []float32) int {
	if src == ProcNull {
		return 0
	}
	c.checkRank(src)
	data := c.world.mailboxes[src][c.rank].pop(tag)
	if len(data) > len(buf) {
		panic(fmt.Sprintf("mpi: rank %d: message from %d tag %d truncated (%d > %d)",
			c.rank, src, tag, len(data), len(buf)))
	}
	copy(buf, data)
	return len(data)
}

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: invalid rank %d (size %d)", r, c.size))
	}
}

func (c *Comm) account(n int) {
	c.world.statsMu.Lock()
	c.world.stats[c.rank].MsgsSent++
	c.world.stats[c.rank].BytesSent += int64(n) * 4
	c.world.statsMu.Unlock()
}

// SendRecv exchanges messages with possibly different partners, deadlock
// free (the send is buffered).
func (c *Comm) SendRecv(dst, sendTag int, sendData []float32, src, recvTag int, recvBuf []float32) int {
	c.Send(dst, sendTag, sendData)
	return c.Recv(src, recvTag, recvBuf)
}
