// Package mpi implements a message-passing runtime with MPI semantics:
// point-to-point messages are matched by (source, tag) in posting order,
// and the usual blocking/nonblocking operations, collectives and
// Cartesian communicators are provided.
//
// Delivery is pluggable behind the Transport interface. The default
// in-process transport runs every rank as a goroutine of one world —
// the substitute substrate for the MPI library + cluster of the paper
// (see DESIGN.md): the generated communication schedules run for real
// over this runtime, so distributed-versus-serial equivalence is
// testable, while wall-clock behaviour of the interconnect is modeled
// separately by internal/perfmodel. The TCP transport (tcp.go) runs one
// rank per OS process over real sockets with length-prefixed frames, so
// the same schedules additionally exercise serialization, the wire, and
// failure. Collectives are written purely on point-to-point Send/Recv
// (binomial-tree broadcast, recursive-doubling allreduce, dissemination
// barrier), so they work identically over any transport.
package mpi

import (
	"fmt"
)

// ProcNull is the null process rank: sends and receives addressed to it are
// no-ops, mirroring MPI_PROC_NULL.
const ProcNull = -1

// Comm is a rank's handle on the world — the equivalent of MPI_COMM_WORLD
// as seen from one process — layered over a Transport.
type Comm struct {
	rank int
	size int
	t    Transport
	// world is the in-process World this Comm belongs to, nil for
	// out-of-process transports (kept for the world-wide accounting
	// snapshot the in-process tests and benchmarks consume).
	world *World
	// collSeq numbers collective operations so that their internal
	// point-to-point traffic cannot be confused with user messages.
	collSeq int
}

// NewComm wraps a transport in a communicator. Out-of-process rank
// programs (the TCP launcher's children) build their Comm here; the
// in-process path goes through World.Run.
func NewComm(t Transport) *Comm {
	return &Comm{rank: t.Rank(), size: t.Size(), t: t}
}

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// World returns the underlying in-process world (for its accounting
// snapshot); nil when the Comm runs over an out-of-process transport.
func (c *Comm) World() *World { return c.world }

// Transport exposes the delivery substrate (for transport-level
// accounting and teardown).
func (c *Comm) Transport() Transport { return c.t }

// Send performs a blocking standard-mode send. The payload is
// snapshotted before Send returns (the Transport contract's post-time
// ownership), so the caller may reuse the buffer immediately — buffered
// semantics, matching what a correct MPI program may assume only of
// MPI_Bsend, but what the generated code here relies on deliberately.
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst == ProcNull {
		return
	}
	c.checkRank(dst)
	if err := c.t.Send(dst, tag, data); err != nil {
		panic(fmt.Sprintf("mpi: rank %d: send to %d tag %d: %v", c.rank, dst, tag, err))
	}
}

// Recv blocks until a message with the given source and tag arrives, copies
// it into buf and returns the element count. The message length must not
// exceed len(buf).
func (c *Comm) Recv(src, tag int, buf []float32) int {
	if src == ProcNull {
		return 0
	}
	c.checkRank(src)
	data, err := c.t.Recv(src, tag)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d: recv from %d tag %d: %v", c.rank, src, tag, err))
	}
	if len(data) > len(buf) {
		panic(fmt.Sprintf("mpi: rank %d: message from %d tag %d truncated (%d > %d)",
			c.rank, src, tag, len(data), len(buf)))
	}
	copy(buf, data)
	return len(data)
}

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: invalid rank %d (size %d)", r, c.size))
	}
}

// SendRecv exchanges messages with possibly different partners, deadlock
// free (the send is buffered).
func (c *Comm) SendRecv(dst, sendTag int, sendData []float32, src, recvTag int, recvBuf []float32) int {
	c.Send(dst, sendTag, sendData)
	return c.Recv(src, recvTag, recvBuf)
}

// RunRank executes f as one rank over an established transport,
// recovering a panic into an error — the single-process counterpart of
// World.Run used by rank-per-process transports, so a transport failure
// (a hung peer's recv deadline, a dead connection) surfaces as a clean
// error and a non-zero exit instead of a deadlock or a stack trace.
func RunRank(t Transport, f func(c *Comm)) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("mpi: rank %d panicked: %v", t.Rank(), rec)
		}
	}()
	f(NewComm(t))
	return nil
}
