package mpi

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Launch helpers for TCP worlds. RunTCPLocal hosts every rank as a
// goroutine of the calling process but routes all traffic through real
// loopback sockets — the differential and conformance tests use it to
// exercise the wire without process management. LaunchTCPLocal spawns
// one OS process per rank (the real deployment shape) and is what
// cmd/devigo-run's launcher mode and the CI multi-process smoke build
// on.

// RunTCPLocal executes f once per rank over a loopback TCP world and
// returns the first rank error (a panic inside f is recovered by
// RunRank). Listeners are bound on port 0 before any transport starts,
// so no port is ever picked racily. timeout <= 0 means the default
// deadline.
func RunTCPLocal(n int, timeout time.Duration, f func(c *Comm)) error {
	if n < 1 {
		return fmt.Errorf("mpi: tcp: world size %d < 1", n)
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				if l != nil {
					l.Close()
				}
			}
			return fmt.Errorf("mpi: tcp: bind rank %d: %w", r, err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			t, err := NewTCPTransport(TCPConfig{
				Rank:     rank,
				Addrs:    addrs,
				Timeout:  timeout,
				Listener: lns[rank],
			})
			if err != nil {
				errs <- err
				return
			}
			defer t.Close()
			if err := RunRank(t, f); err != nil {
				errs <- err
			}
		}(r)
	}
	wg.Wait()
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// FreeLocalAddrs reserves n distinct loopback host:port addresses by
// binding and immediately closing port-0 listeners. The tiny window
// between close and the rank process's own bind is the usual free-port
// race; acceptable for a local launcher.
func FreeLocalAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("mpi: tcp: reserve port: %w", err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	for _, l := range lns {
		l.Close()
	}
	return addrs, nil
}

// WriteHostfile writes one host:port per line (rank order) to path.
func WriteHostfile(path string, addrs []string) error {
	if err := os.WriteFile(path, []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		return fmt.Errorf("mpi: tcp: hostfile: %w", err)
	}
	return nil
}

// LaunchTCPLocal spawns one child process per rank on localhost and
// waits for all of them: the command is argv re-executed verbatim with
// the rendezvous environment (DEVIGO_RANKS, DEVIGO_RANK,
// DEVIGO_HOSTFILE) appended, so the child recognizes itself as a rank
// via TCPFromEnv. Children inherit stdout/stderr; the first failure's
// error is returned after every child has exited (no child is left
// behind — a dead rank trips the peers' receive deadlines, which exits
// them too).
func LaunchTCPLocal(n int, argv []string) error {
	if n < 1 {
		return fmt.Errorf("mpi: tcp: world size %d < 1", n)
	}
	if len(argv) == 0 {
		return fmt.Errorf("mpi: tcp: empty launch command")
	}
	addrs, err := FreeLocalAddrs(n)
	if err != nil {
		return err
	}
	hf, err := os.CreateTemp("", "devigo-hostfile-*")
	if err != nil {
		return fmt.Errorf("mpi: tcp: hostfile: %w", err)
	}
	hostfile := hf.Name()
	hf.Close()
	defer os.Remove(hostfile)
	if err := WriteHostfile(hostfile, addrs); err != nil {
		return err
	}

	cmds := make([]*exec.Cmd, n)
	for r := 0; r < n; r++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", RanksEnvVar, n),
			fmt.Sprintf("%s=%d", RankEnvVar, r),
			fmt.Sprintf("%s=%s", HostfileEnvVar, hostfile),
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
				c.Wait()
			}
			return fmt.Errorf("mpi: tcp: start rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	var firstErr error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: tcp: rank %d: %w", r, err)
		}
	}
	return firstErr
}
