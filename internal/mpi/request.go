package mpi

import "fmt"

// Request is the handle of a nonblocking operation, completed by Wait or
// polled by Test — the counterpart of MPI_Request.
type Request struct {
	comm *Comm
	// kind discriminates send/recv; sends complete at post time under the
	// transport contract's post-time buffer ownership.
	isRecv bool
	src    int
	tag    int
	buf    []float32
	done   bool
	n      int
}

// Isend posts a nonblocking send. The Transport contract snapshots the
// payload at post time (see Transport's buffer-ownership rules), so the
// request is born complete and the caller may mutate the source buffer
// immediately — on every transport, not just the in-process one; it
// still participates in Waitall for schedule fidelity.
func (c *Comm) Isend(dst, tag int, data []float32) *Request {
	c.Send(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a nonblocking receive into buf. Completion happens at Wait or
// a successful Test.
func (c *Comm) Irecv(src, tag int, buf []float32) *Request {
	if src == ProcNull {
		return &Request{comm: c, done: true}
	}
	c.checkRank(src)
	return &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
}

// Wait blocks until the request completes and returns the received element
// count (0 for sends).
func (r *Request) Wait() int {
	if r.done {
		return r.n
	}
	data, err := r.comm.t.Recv(r.src, r.tag)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d: irecv from %d tag %d: %v",
			r.comm.rank, r.src, r.tag, err))
	}
	r.complete(data)
	return r.n
}

// Test polls for completion without blocking, returning true once the
// operation has finished. Mirrors MPI_Test, including its role as the
// progress-engine prod used by the full communication pattern.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	data, ok, err := r.comm.t.TryRecv(r.src, r.tag)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d: irecv from %d tag %d: %v",
			r.comm.rank, r.src, r.tag, err))
	}
	if !ok {
		return false
	}
	r.complete(data)
	return true
}

// complete finishes a receive with the delivered payload.
func (r *Request) complete(data []float32) {
	if len(data) > len(r.buf) {
		panic("mpi: Irecv message truncated")
	}
	copy(r.buf, data)
	r.n = len(data)
	r.done = true
}

// Done reports whether the request has already completed (without polling).
func (r *Request) Done() bool { return r.done }

// Waitall completes every request.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Testall polls every request once and reports whether all are complete.
func Testall(reqs []*Request) bool {
	all := true
	for _, r := range reqs {
		if r != nil && !r.Test() {
			all = false
		}
	}
	return all
}
