package mpi

import "math"

// Thin wrappers so collectives.go reads cleanly.

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
func float32bits(v float32) uint32     { return math.Float32bits(v) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
