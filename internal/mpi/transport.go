package mpi

// Transport is the point-to-point delivery substrate a Comm runs over.
// Two implementations exist: the in-process channel/mailbox runtime
// (package default — ranks are goroutines of one world) and the TCP
// transport (rank-per-process over real sockets). Everything above a
// Comm — exchangers, tags, collectives, Cartesian communicators — is
// transport-neutral: the collectives are built on Send/Recv alone and
// the halo exchangers only ever see a *Comm.
//
// # Delivery contract
//
// Messages from one source are matched by (source, tag) in posting
// order: two messages with the same source and tag are received in the
// order they were sent, and messages with different tags never reorder
// a matching receive (MPI's non-overtaking rule). Tags are
// non-negative and fit in 31 bits (the collective tag space starts at
// 1<<30).
//
// # Buffer ownership
//
// A transport snapshots the payload *before Send returns* (post-time
// ownership): the caller may mutate or reuse the buffer as soon as the
// call comes back, and the receiver is guaranteed to observe the
// values the buffer held at post time. Comm.Isend inherits this
// contract — it posts through Send — so mutating a source buffer
// between Isend and Waitall is safe on every transport, not an
// accident of the in-process implementation. Slices returned by Recv
// and TryRecv are owned by the caller; the transport never touches
// them again.
//
// # Failure
//
// Transports report failures (peer death, deadline expiry, teardown)
// as errors rather than deadlocking; the Comm layer converts them to
// panics that World.Run / RunRank recover into a per-rank error.
type Transport interface {
	// Rank returns the calling rank.
	Rank() int
	// Size returns the world size.
	Size() int
	// Send ships data to dst under tag, snapshotting the payload before
	// returning. dst must be a valid rank other than the caller's own
	// (ProcNull short-circuits at the Comm layer).
	Send(dst, tag int, data []float32) error
	// Recv blocks until the oldest not-yet-received message from src
	// with the given tag arrives and returns its payload (owned by the
	// caller). Implementations with a real wire turn a hung peer into a
	// deadline error instead of blocking forever.
	Recv(src, tag int) ([]float32, error)
	// TryRecv returns the oldest matching message if one has already
	// been delivered, without blocking.
	TryRecv(src, tag int) ([]float32, bool, error)
	// Stats returns the calling rank's send-side accounting.
	Stats() Stats
	// Close tears the transport down; subsequent and in-flight
	// operations fail with an error rather than hanging.
	Close() error
}

// Stats accumulates per-rank communication accounting, used by tests
// (paper Table I) and cross-checked against the performance model.
type Stats struct {
	MsgsSent  int
	BytesSent int64
}
