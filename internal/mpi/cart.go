package mpi

import (
	"fmt"
)

// CartComm is a Cartesian communicator: the world's ranks arranged on an
// n-dimensional process grid, with neighbour lookup including the full
// 26-neighbourhood required by the diagonal and full exchange patterns.
type CartComm struct {
	*Comm
	Dims    []int
	Periods []bool
	coords  []int
}

// CartCreate arranges the communicator on a process grid. dims must tile
// the communicator size exactly; pass the result of grid.DimsCreate for the
// MPI default behaviour. periods may be nil (all false).
func CartCreate(c *Comm, dims []int, periods []bool) (*CartComm, error) {
	prod := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mpi: invalid Cartesian dims %v", dims)
		}
		prod *= d
	}
	if prod != c.size {
		return nil, fmt.Errorf("mpi: dims %v do not tile %d ranks", dims, c.size)
	}
	if periods == nil {
		periods = make([]bool, len(dims))
	}
	if len(periods) != len(dims) {
		return nil, fmt.Errorf("mpi: periods rank mismatch")
	}
	cc := &CartComm{
		Comm:    c,
		Dims:    append([]int(nil), dims...),
		Periods: append([]bool(nil), periods...),
	}
	cc.coords = cc.CoordsOf(c.rank)
	return cc, nil
}

// Coords returns the calling rank's coordinates.
func (c *CartComm) Coords() []int { return append([]int(nil), c.coords...) }

// CoordsOf decodes any rank into coordinates (first dimension slowest).
func (c *CartComm) CoordsOf(rank int) []int {
	nd := len(c.Dims)
	coords := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		coords[d] = rank % c.Dims[d]
		rank /= c.Dims[d]
	}
	return coords
}

// RankOf encodes coordinates into a rank, honouring periodicity; returns
// ProcNull when a non-periodic coordinate falls off the grid.
func (c *CartComm) RankOf(coords []int) int {
	rank := 0
	for d, v := range coords {
		if c.Periods[d] {
			v = ((v % c.Dims[d]) + c.Dims[d]) % c.Dims[d]
		} else if v < 0 || v >= c.Dims[d] {
			return ProcNull
		}
		rank = rank*c.Dims[d] + v
	}
	return rank
}

// Shift returns the (source, destination) ranks displaced by disp along
// dim — MPI_Cart_shift.
func (c *CartComm) Shift(dim, disp int) (src, dst int) {
	up := append([]int(nil), c.coords...)
	up[dim] += disp
	down := append([]int(nil), c.coords...)
	down[dim] -= disp
	return c.RankOf(down), c.RankOf(up)
}

// Neighbor returns the rank at the given coordinate offset from the caller,
// or ProcNull outside the grid.
func (c *CartComm) Neighbor(offset []int) int {
	coords := make([]int, len(c.coords))
	for d := range coords {
		coords[d] = c.coords[d] + offset[d]
	}
	return c.RankOf(coords)
}

// NeighborOffsets enumerates every nonzero offset vector in {-1,0,1}^ndims
// — the 26-neighbourhood in 3-D, 8 in 2-D — in a deterministic order shared
// by all ranks, so a symmetric exchange can derive matching tags.
func NeighborOffsets(ndims int) [][]int {
	var out [][]int
	total := 1
	for i := 0; i < ndims; i++ {
		total *= 3
	}
	for code := 0; code < total; code++ {
		offset := make([]int, ndims)
		v := code
		zero := true
		for d := ndims - 1; d >= 0; d-- {
			offset[d] = v%3 - 1
			if offset[d] != 0 {
				zero = false
			}
			v /= 3
		}
		if !zero {
			out = append(out, offset)
		}
	}
	return out
}

// FaceOffsets enumerates only the 2*ndims axis-aligned unit offsets (the
// basic pattern's message set).
func FaceOffsets(ndims int) [][]int {
	var out [][]int
	for d := 0; d < ndims; d++ {
		for _, s := range []int{-1, 1} {
			offset := make([]int, ndims)
			offset[d] = s
			out = append(out, offset)
		}
	}
	return out
}

// OffsetTag derives a deterministic message tag from an offset vector so a
// sender's tag for offset o matches the receiver's expectation for -o being
// its own offset towards the sender. The caller embeds a stream id to keep
// concurrent exchanges of different fields separate.
func OffsetTag(stream int, offset []int) int {
	code := 0
	for _, o := range offset {
		code = code*3 + (o + 1)
	}
	return stream<<8 | code
}
