package mpi

import (
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	var got []float32
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
		} else {
			buf := make([]float32, 3)
			n := c.Recv(0, 7, buf)
			if n != 3 {
				t.Errorf("recv n = %d", n)
			}
			got = buf
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float32{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	// Sender may reuse its buffer immediately after Send returns.
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			c.Barrier()
		} else {
			c.Barrier() // ensure sender has scribbled
			got := make([]float32, 1)
			c.Recv(0, 0, got)
			if got[0] != 42 {
				t.Errorf("message corrupted: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with distinct tags are matched regardless of arrival order.
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float32{1})
			c.Send(1, 2, []float32{2})
			c.Send(1, 3, []float32{3})
		} else {
			buf := make([]float32, 1)
			c.Recv(0, 3, buf)
			if buf[0] != 3 {
				t.Errorf("tag 3 got %v", buf[0])
			}
			c.Recv(0, 1, buf)
			if buf[0] != 1 {
				t.Errorf("tag 1 got %v", buf[0])
			}
			c.Recv(0, 2, buf)
			if buf[0] != 2 {
				t.Errorf("tag 2 got %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSameTagFIFO(t *testing.T) {
	// Same (src, tag) pairs must arrive in send order.
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 5, []float32{float32(i)})
			}
		} else {
			buf := make([]float32, 1)
			for i := 0; i < 10; i++ {
				c.Recv(0, 5, buf)
				if buf[0] != float32(i) {
					t.Errorf("out of order: got %v want %d", buf[0], i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 9, []float32{3.5})
			req.Wait()
		} else {
			buf := make([]float32, 1)
			req := c.Irecv(0, 9, buf)
			n := req.Wait()
			if n != 1 || buf[0] != 3.5 {
				t.Errorf("irecv got n=%d buf=%v", n, buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestPolling(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier() // let rank 1 poll while nothing is in flight
			c.Send(1, 4, []float32{1})
		} else {
			buf := make([]float32, 1)
			req := c.Irecv(0, 4, buf)
			if req.Test() {
				t.Error("Test should not complete before the send")
			}
			c.Barrier()
			for !req.Test() {
			}
			if buf[0] != 1 {
				t.Errorf("buf = %v", buf)
			}
			if !req.Done() {
				t.Error("Done should be true after successful Test")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProcNullNoOps(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		c.Send(ProcNull, 0, []float32{1})
		buf := []float32{99}
		if n := c.Recv(ProcNull, 0, buf); n != 0 {
			t.Errorf("ProcNull recv n = %d", n)
		}
		if buf[0] != 99 {
			t.Error("ProcNull recv must not touch the buffer")
		}
		req := c.Irecv(ProcNull, 0, buf)
		if !req.Test() {
			t.Error("ProcNull Irecv must be complete")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(4)
	var phase1 atomic.Int32
	err := w.Run(func(c *Comm) {
		phase1.Add(1)
		c.Barrier()
		if got := phase1.Load(); got != 4 {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) {
		got := c.AllreduceScalar(float64(c.Rank()+1), OpSum)
		if got != 15 {
			t.Errorf("rank %d: allreduce sum = %v, want 15", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMinVector(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		r := float64(c.Rank())
		mx := c.Allreduce([]float64{r, -r}, OpMax)
		if mx[0] != 2 || mx[1] != 0 {
			t.Errorf("max = %v", mx)
		}
		mn := c.Allreduce([]float64{r, -r}, OpMin)
		if mn[0] != 0 || mn[1] != -2 {
			t.Errorf("min = %v", mn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreducePreservesFloat64Precision(t *testing.T) {
	// The float32 substrate must not round float64 payloads.
	w := NewWorld(2)
	v := 1.0 + 1e-15
	err := w.Run(func(c *Comm) {
		got := c.AllreduceScalar(v, OpMax)
		if got != v {
			t.Errorf("precision lost: %v != %v", got, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		buf := make([]float32, 3)
		if c.Rank() == 2 {
			copy(buf, []float32{7, 8, 9})
		}
		c.Bcast(2, buf)
		if !reflect.DeepEqual(buf, []float32{7, 8, 9}) {
			t.Errorf("rank %d: bcast got %v", c.Rank(), buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		local := []float32{float32(c.Rank() * 10)}
		var parts [][]float32
		if c.Rank() == 0 {
			parts = [][]float32{make([]float32, 1), make([]float32, 1), make([]float32, 1)}
		}
		c.Gather(0, local, parts)
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if parts[r][0] != float32(r*10) {
					t.Errorf("gather part %d = %v", r, parts[r])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestStatsAccounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float32, 10))
			c.Send(1, 1, make([]float32, 5))
		} else {
			buf := make([]float32, 10)
			c.Recv(0, 0, buf)
			c.Recv(0, 1, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.StatsSnapshot()
	if st[0].MsgsSent != 2 || st[0].BytesSent != 60 {
		t.Errorf("rank0 stats = %+v, want 2 msgs / 60 bytes", st[0])
	}
	if st[1].MsgsSent != 0 {
		t.Errorf("rank1 sent %d msgs, want 0", st[1].MsgsSent)
	}
}

func TestCartCreateAndShift(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(c *Comm) {
		cc, err := CartCreate(c, []int{3, 2}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		coords := cc.Coords()
		// Row-major: rank = x*2 + y.
		if got := coords[0]*2 + coords[1]; got != c.Rank() {
			t.Errorf("rank %d coords %v inconsistent", c.Rank(), coords)
		}
		src, dst := cc.Shift(0, 1)
		wantDst := ProcNull
		if coords[0]+1 < 3 {
			wantDst = (coords[0]+1)*2 + coords[1]
		}
		wantSrc := ProcNull
		if coords[0]-1 >= 0 {
			wantSrc = (coords[0]-1)*2 + coords[1]
		}
		if src != wantSrc || dst != wantDst {
			t.Errorf("rank %d shift = (%d,%d), want (%d,%d)", c.Rank(), src, dst, wantSrc, wantDst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartPeriodicWraps(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		cc, err := CartCreate(c, []int{4}, []bool{true})
		if err != nil {
			t.Error(err)
			return
		}
		src, dst := cc.Shift(0, 1)
		if dst != (c.Rank()+1)%4 || src != (c.Rank()+3)%4 {
			t.Errorf("rank %d periodic shift = (%d,%d)", c.Rank(), src, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborOffsetsCounts(t *testing.T) {
	// Paper Table I: 6 face messages vs 26 full-neighbourhood messages in 3-D.
	if got := len(FaceOffsets(3)); got != 6 {
		t.Errorf("3-D faces = %d, want 6", got)
	}
	if got := len(NeighborOffsets(3)); got != 26 {
		t.Errorf("3-D neighbourhood = %d, want 26", got)
	}
	if got := len(FaceOffsets(2)); got != 4 {
		t.Errorf("2-D faces = %d, want 4", got)
	}
	if got := len(NeighborOffsets(2)); got != 8 {
		t.Errorf("2-D neighbourhood = %d, want 8", got)
	}
}

func TestOffsetTagSymmetry(t *testing.T) {
	// Property: tags are unique per offset within a stream, and the
	// negated offset has a distinct tag (so opposite directions do not
	// collide on the same channel).
	offsets := NeighborOffsets(3)
	seen := map[int][]int{}
	for _, o := range offsets {
		tag := OffsetTag(3, o)
		if prev, ok := seen[tag]; ok {
			t.Fatalf("tag collision between %v and %v", prev, o)
		}
		seen[tag] = o
	}
}

func TestCartNeighborExchangeAllPairs(t *testing.T) {
	// Every rank sends its rank id to each neighbour; each receipt must
	// identify the correct peer.
	w := NewWorld(8)
	err := w.Run(func(c *Comm) {
		cc, err := CartCreate(c, []int{2, 2, 2}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		offsets := NeighborOffsets(3)
		for _, o := range offsets {
			nb := cc.Neighbor(o)
			if nb == ProcNull {
				continue
			}
			c.Send(nb, OffsetTag(0, o), []float32{float32(c.Rank())})
		}
		for _, o := range offsets {
			nb := cc.Neighbor(o)
			if nb == ProcNull {
				continue
			}
			neg := make([]int, len(o))
			for i := range o {
				neg[i] = -o[i]
			}
			buf := make([]float32, 1)
			c.Recv(nb, OffsetTag(0, neg), buf)
			if int(buf[0]) != nb {
				t.Errorf("rank %d offset %v: got id %v, want %d", c.Rank(), o, buf[0], nb)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvCombined(t *testing.T) {
	// Ring exchange with SendRecv must not deadlock.
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % 4
		left := (c.Rank() + 3) % 4
		buf := make([]float32, 1)
		c.SendRecv(right, 0, []float32{float32(c.Rank())}, left, 0, buf)
		if int(buf[0]) != left {
			t.Errorf("rank %d received %v, want %d", c.Rank(), buf[0], left)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborOffsetsProperty(t *testing.T) {
	// Property: offsets are unique, nonzero, and closed under negation.
	f := func(ndRaw uint8) bool {
		nd := int(ndRaw)%3 + 1
		offsets := NeighborOffsets(nd)
		seen := map[string]bool{}
		for _, o := range offsets {
			key := ""
			zero := true
			for _, v := range o {
				key += string(rune('a' + v + 1))
				if v != 0 {
					zero = false
				}
			}
			if zero || seen[key] {
				return false
			}
			seen[key] = true
		}
		for _, o := range offsets {
			key := ""
			for _, v := range o {
				key += string(rune('a' - v + 1))
			}
			if !seen[key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAlltoall(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		send := make([][]float32, 3)
		for dst := range send {
			send[dst] = []float32{float32(c.Rank()*10 + dst)}
		}
		got := c.Alltoall(send)
		for src := range got {
			want := float32(src*10 + c.Rank())
			if got[src][0] != want {
				t.Errorf("rank %d from %d: %v, want %v", c.Rank(), src, got[src][0], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
