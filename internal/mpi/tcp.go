package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport: one rank per OS process, length-prefixed float32
// frames over per-peer persistent connections. Rendezvous is
// environment-driven (DEVIGO_RANKS / DEVIGO_RANK / DEVIGO_HOSTFILE) so
// a launcher — cmd/devigo-run's -transport tcp mode, or any external
// process manager — only has to agree on a hostfile. Ranks dial every
// lower-ranked peer with exponential-backoff retry and accept from
// every higher-ranked one; a connect or receive that outlives the
// configured deadline fails with an error instead of deadlocking, so a
// hung or dead peer takes the world down cleanly.

// Environment variables of the TCP rendezvous protocol.
const (
	// RanksEnvVar is the world size (an integer >= 1).
	RanksEnvVar = "DEVIGO_RANKS"
	// RankEnvVar is the calling process's rank in [0, DEVIGO_RANKS).
	RankEnvVar = "DEVIGO_RANK"
	// HostfileEnvVar is the path of the hostfile: one host:port per
	// line in rank order ('#' comments and blank lines ignored).
	HostfileEnvVar = "DEVIGO_HOSTFILE"
	// TCPTimeoutEnvVar overrides the connect/receive deadline (a Go
	// duration, e.g. "30s"; default 60s). Past the deadline a pending
	// dial or receive fails with an error naming the silent peer.
	TCPTimeoutEnvVar = "DEVIGO_TCP_TIMEOUT"
)

// defaultTCPTimeout bounds dials, receives and sends when neither
// TCPConfig.Timeout nor DEVIGO_TCP_TIMEOUT says otherwise.
const defaultTCPTimeout = 60 * time.Second

// tcpMagic opens every connection handshake; the version byte guards
// against mixed-build worlds.
const tcpMagic = 0x44564730 // "DVG0"

// maxFrameElems caps a frame's element count (1 Gi floats = 4 GiB);
// anything larger is a corrupt header.
const maxFrameElems = 1 << 30

// TCPConfig configures one rank of a TCP world.
type TCPConfig struct {
	// Rank is this process's rank.
	Rank int
	// Addrs lists every rank's listen address (host:port) in rank
	// order; len(Addrs) is the world size.
	Addrs []string
	// Timeout bounds connection establishment per peer and every
	// receive/send (0 = DEVIGO_TCP_TIMEOUT, then 60s). It is the
	// hung-peer detector: a receive that waits longer fails cleanly.
	Timeout time.Duration
	// Listener optionally supplies a pre-bound listener for
	// Addrs[Rank] (the in-process test harness binds port 0 listeners
	// first so no port is ever raced); nil means listen on Addrs[Rank].
	Listener net.Listener
}

// TCPTransport is a Transport over per-peer persistent TCP connections.
type TCPTransport struct {
	rank    int
	size    int
	timeout time.Duration

	peers []*tcpPeer // indexed by rank, nil at self
	inbox []*mailbox // indexed by source rank
	ln    net.Listener

	statsMu sync.Mutex
	stats   Stats

	closed atomic.Bool
	wg     sync.WaitGroup
}

// tcpPeer is one established connection plus its serialized writer.
type tcpPeer struct {
	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	scratch []byte
}

// NewTCPTransport establishes the full peer mesh for one rank and
// returns once every connection is up: the rank listens on
// cfg.Addrs[cfg.Rank], accepts a connection from every higher rank and
// dials every lower rank (with exponential backoff while the peer's
// listener comes up). The call fails — rather than hangs — if the mesh
// is not complete within cfg.Timeout.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	n := len(cfg.Addrs)
	if n < 1 {
		return nil, fmt.Errorf("mpi: tcp: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("mpi: tcp: rank %d outside [0, %d)", cfg.Rank, n)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = envTCPTimeout()
	}
	t := &TCPTransport{
		rank:    cfg.Rank,
		size:    n,
		timeout: timeout,
		peers:   make([]*tcpPeer, n),
		inbox:   make([]*mailbox, n),
	}
	for s := 0; s < n; s++ {
		t.inbox[s] = newMailbox()
	}
	if n == 1 {
		return t, nil
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("mpi: tcp: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
		}
	}
	t.ln = ln
	deadline := time.Now().Add(timeout)

	type dialed struct {
		rank int
		peer *tcpPeer
		err  error
	}
	results := make(chan dialed, n)
	// Accept one connection per higher rank; the dialer's handshake
	// identifies it.
	expect := n - 1 - cfg.Rank
	go func() {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialed{err: fmt.Errorf("mpi: tcp: rank %d accept: %w (peer hung or never started?)", cfg.Rank, err)}
				return
			}
			src, err := readHandshake(conn, n)
			if err != nil {
				conn.Close()
				results <- dialed{err: fmt.Errorf("mpi: tcp: rank %d handshake: %w", cfg.Rank, err)}
				return
			}
			results <- dialed{rank: src, peer: newTCPPeer(conn)}
		}
	}()
	// Dial every lower rank concurrently, retrying with exponential
	// backoff until its listener answers or the deadline expires.
	for p := 0; p < cfg.Rank; p++ {
		go func(p int) {
			conn, err := dialRetry(cfg.Addrs[p], deadline)
			if err != nil {
				results <- dialed{err: fmt.Errorf("mpi: tcp: rank %d dial rank %d (%s): %w", cfg.Rank, p, cfg.Addrs[p], err)}
				return
			}
			if err := writeHandshake(conn, cfg.Rank, n); err != nil {
				conn.Close()
				results <- dialed{err: fmt.Errorf("mpi: tcp: rank %d handshake with rank %d: %w", cfg.Rank, p, err)}
				return
			}
			results <- dialed{rank: p, peer: newTCPPeer(conn)}
		}(p)
	}
	for have := 0; have < n-1; have++ {
		d := <-results
		if d.err != nil {
			t.Close()
			return nil, d.err
		}
		if d.peer == nil || d.rank == cfg.Rank || d.rank < 0 || d.rank >= n || t.peers[d.rank] != nil {
			t.Close()
			return nil, fmt.Errorf("mpi: tcp: rank %d: duplicate or invalid peer rank %d", cfg.Rank, d.rank)
		}
		t.peers[d.rank] = d.peer
	}
	// Mesh complete: no further connections are expected.
	ln.Close()
	t.ln = nil
	for src, p := range t.peers {
		if p == nil {
			continue
		}
		t.wg.Add(1)
		go t.readLoop(src, p)
	}
	return t, nil
}

// TCPFromEnv builds the transport from the rendezvous environment
// (DEVIGO_RANKS, DEVIGO_RANK, DEVIGO_HOSTFILE, DEVIGO_TCP_TIMEOUT) —
// the entry point of launcher-spawned rank processes.
func TCPFromEnv() (*TCPTransport, error) {
	size, err := envInt(RanksEnvVar, 1)
	if err != nil {
		return nil, err
	}
	rank, err := envInt(RankEnvVar, 0)
	if err != nil {
		return nil, err
	}
	if rank >= size {
		return nil, fmt.Errorf("mpi: tcp: $%s=%d outside [0, $%s=%d)", RankEnvVar, rank, RanksEnvVar, size)
	}
	hostfile := os.Getenv(HostfileEnvVar)
	if hostfile == "" {
		return nil, fmt.Errorf("mpi: tcp: $%s is not set (want the path of a hostfile with one host:port per rank)", HostfileEnvVar)
	}
	addrs, err := ReadHostfile(hostfile)
	if err != nil {
		return nil, err
	}
	if len(addrs) < size {
		return nil, fmt.Errorf("mpi: tcp: hostfile %s lists %d address(es), want >= $%s=%d", hostfile, len(addrs), RanksEnvVar, size)
	}
	return NewTCPTransport(TCPConfig{Rank: rank, Addrs: addrs[:size]})
}

// ReadHostfile parses a hostfile: one host:port per line in rank order,
// with '#' comments and blank lines ignored.
func ReadHostfile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp: hostfile: %w", err)
	}
	var addrs []string
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(line); err != nil {
			return nil, fmt.Errorf("mpi: tcp: hostfile %s line %d: %q is not host:port: %w", path, i+1, line, err)
		}
		addrs = append(addrs, line)
	}
	return addrs, nil
}

// envInt parses a required integer environment variable >= min.
func envInt(name string, min int) (int, error) {
	s := strings.TrimSpace(os.Getenv(name))
	if s == "" {
		return 0, fmt.Errorf("mpi: tcp: $%s is not set (want an integer >= %d)", name, min)
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < min {
		return 0, fmt.Errorf("mpi: tcp: bad $%s=%q (want an integer >= %d)", name, s, min)
	}
	return v, nil
}

// envTCPTimeout resolves the connect/receive deadline from the
// environment (invalid durations fall back loudly via panic would be
// hostile here, so a bad value is an error surfaced at dial time
// through the default path — see TCPFromEnv callers).
func envTCPTimeout() time.Duration {
	s := strings.TrimSpace(os.Getenv(TCPTimeoutEnvVar))
	if s == "" {
		return defaultTCPTimeout
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return defaultTCPTimeout
	}
	return d
}

// dialRetry dials addr with exponential backoff (10ms doubling to
// 500ms) until the deadline.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("connect deadline exceeded")
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		lastErr = err
		sleep := backoff
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

func newTCPPeer(conn net.Conn) *tcpPeer {
	return &tcpPeer{conn: conn, w: bufio.NewWriterSize(conn, 1<<16)}
}

// writeHandshake identifies the dialer: magic, rank, world size.
func writeHandshake(conn net.Conn, rank, size int) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(size))
	_, err := conn.Write(hdr[:])
	return err
}

// readHandshake validates the dialer's identity against this world.
func readHandshake(conn net.Conn, size int) (int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != tcpMagic {
		return 0, fmt.Errorf("bad magic %#x (mixed builds or a stranger on the port?)", m)
	}
	rank := int(binary.LittleEndian.Uint32(hdr[4:]))
	peerSize := int(binary.LittleEndian.Uint32(hdr[8:]))
	if peerSize != size {
		return 0, fmt.Errorf("peer rank %d believes the world has %d ranks, this rank %d", rank, peerSize, size)
	}
	return rank, nil
}

// Rank returns the calling rank.
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the world size.
func (t *TCPTransport) Size() int { return t.size }

// Send serializes data into one length-prefixed frame — {u32 tag, u32
// count, count little-endian float32s} — and writes it to the peer's
// connection under the write deadline. Serialization happens before
// Send returns, which *is* the payload snapshot the Transport contract
// promises.
func (t *TCPTransport) Send(dst, tag int, data []float32) error {
	if t.closed.Load() {
		return fmt.Errorf("transport closed")
	}
	p := t.peers[dst]
	if p == nil {
		return fmt.Errorf("no connection to rank %d", dst)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	need := 8 + 4*len(data)
	if cap(p.scratch) < need {
		p.scratch = make([]byte, need)
	}
	buf := p.scratch[:need]
	binary.LittleEndian.PutUint32(buf[0:], uint32(tag))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	p.conn.SetWriteDeadline(time.Now().Add(t.timeout))
	if _, err := p.w.Write(buf); err != nil {
		return fmt.Errorf("write to rank %d: %w", dst, err)
	}
	if err := p.w.Flush(); err != nil {
		return fmt.Errorf("write to rank %d: %w", dst, err)
	}
	t.statsMu.Lock()
	t.stats.MsgsSent++
	t.stats.BytesSent += int64(len(data)) * 4
	t.statsMu.Unlock()
	return nil
}

// readLoop drains one peer connection into the per-source inbox until
// the connection dies or the transport closes; a read failure poisons
// the inbox so pending receives fail instead of waiting out their
// deadline.
func (t *TCPTransport) readLoop(src int, p *tcpPeer) {
	defer t.wg.Done()
	r := bufio.NewReaderSize(p.conn, 1<<16)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			t.failInbox(src, err)
			return
		}
		tag := int(binary.LittleEndian.Uint32(hdr[0:]))
		count := binary.LittleEndian.Uint32(hdr[4:])
		if count > maxFrameElems {
			t.failInbox(src, fmt.Errorf("corrupt frame header (count %d)", count))
			return
		}
		raw := make([]byte, 4*count)
		if _, err := io.ReadFull(r, raw); err != nil {
			t.failInbox(src, err)
			return
		}
		data := make([]float32, count)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		t.inbox[src].push(tag, data)
	}
}

// failInbox poisons the inbox of one source (quietly once the transport
// is shutting down — a reset connection during teardown is expected).
func (t *TCPTransport) failInbox(src int, err error) {
	if t.closed.Load() {
		err = fmt.Errorf("transport closed")
	} else {
		err = fmt.Errorf("connection to rank %d lost: %w", src, err)
	}
	t.inbox[src].fail(err)
}

// Recv blocks for the oldest matching message under the receive
// deadline; a peer that stays silent past it produces an error naming
// the peer, the tag and the deadline — the clean-failure half of the
// hung-peer guarantee.
func (t *TCPTransport) Recv(src, tag int) ([]float32, error) {
	data, err := t.inbox[src].popTimeout(tag, t.timeout)
	if err != nil {
		return nil, fmt.Errorf("tcp recv from rank %d tag %d: %w", src, tag, err)
	}
	return data, nil
}

// TryRecv polls the source inbox.
func (t *TCPTransport) TryRecv(src, tag int) ([]float32, bool, error) {
	data, ok, err := t.inbox[src].tryPop(tag)
	if err != nil {
		return nil, false, fmt.Errorf("tcp recv from rank %d tag %d: %w", src, tag, err)
	}
	return data, ok, nil
}

// Stats returns the calling rank's send accounting.
func (t *TCPTransport) Stats() Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// Close tears down every connection; pending receives fail.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	for _, in := range t.inbox {
		in.fail(fmt.Errorf("transport closed"))
	}
	t.wg.Wait()
	return nil
}
