package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

func TestNewValidatesCoords(t *testing.T) {
	g := grid.MustNew([]int{10, 10}, []float64{9, 9})
	if _, err := New("src", g, [][]float64{{1, 2, 3}}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := New("src", g, [][]float64{{-1, 0}}); err == nil {
		t.Error("out-of-extent should fail")
	}
	if _, err := New("src", g, [][]float64{{4.5, 3.3}}); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
}

func TestSupportWeightsSumToOne(t *testing.T) {
	g := grid.MustNew([]int{10, 10, 10}, []float64{9, 9, 9})
	f := func(x, y, z uint8) bool {
		coords := []float64{float64(x) / 255 * 9, float64(y) / 255 * 9, float64(z) / 255 * 9}
		s, err := New("p", g, [][]float64{coords})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, c := range s.support(0) {
			sum += c.weight
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSupportAlignedPointSingleCorner(t *testing.T) {
	g := grid.MustNew([]int{5, 5}, []float64{4, 4})
	s, _ := New("p", g, [][]float64{{2, 3}})
	cs := s.support(0)
	if len(cs) != 1 || cs[0].weight != 1 || cs[0].idx[0] != 2 || cs[0].idx[1] != 3 {
		t.Errorf("aligned point support = %+v", cs)
	}
}

func TestInjectSerialBilinear(t *testing.T) {
	g := grid.MustNew([]int{5, 5}, []float64{4, 4})
	f, _ := field.NewFunction("u", g, 2, nil)
	s, _ := New("src", g, [][]float64{{1.5, 2.25}})
	if err := s.Inject(f, 0, []float32{8}); err != nil {
		t.Fatal(err)
	}
	// Weights: x frac 0.5, y frac 0.25 over corners (1,2),(2,2),(1,3),(2,3).
	check := func(i, j int, w float64) {
		if got := f.AtDomain(0, i, j); math.Abs(float64(got)-8*w) > 1e-6 {
			t.Errorf("(%d,%d) = %v, want %v", i, j, got, 8*w)
		}
	}
	check(1, 2, 0.5*0.75)
	check(2, 2, 0.5*0.75)
	check(1, 3, 0.5*0.25)
	check(2, 3, 0.5*0.25)
	// Total mass injected equals the value.
	sum := 0.0
	for _, v := range f.Bufs[0].Data {
		sum += float64(v)
	}
	if math.Abs(sum-8) > 1e-5 {
		t.Errorf("total injected = %v, want 8", sum)
	}
}

func TestInterpolateLinearFieldExact(t *testing.T) {
	// Bilinear interpolation reproduces affine fields exactly.
	g := grid.MustNew([]int{8, 8}, []float64{7, 7})
	f, _ := field.NewFunction("u", g, 2, nil)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			f.SetDomain(0, float32(2*i+3*j+1), i, j)
		}
	}
	s, _ := New("rec", g, [][]float64{{1.5, 2.75}, {0, 0}, {6.99, 6.99}})
	got := s.Interpolate(f, 0, nil)
	want := []float64{2*1.5 + 3*2.75 + 1, 1, 2*6.99 + 3*6.99 + 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-4 {
			t.Errorf("point %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInjectExactlyOnceAcrossRanks(t *testing.T) {
	// Paper Fig. 3: points shared by 2 or 4 ranks must be injected exactly
	// once globally. Compare the distributed global sum with serial.
	g := grid.MustNew([]int{8, 8}, []float64{7, 7})
	pts := [][]float64{
		{2.0, 2.0},  // A-like: interior of rank 0
		{3.5, 2.0},  // B-like: on the boundary row shared by two ranks
		{3.5, 3.5},  // C-like: the four-rank corner
		{2.0, 3.5},  // D-like
		{1.25, 6.1}, // generic off-grid
	}
	vals := []float32{1, 2, 4, 8, 16}

	// Serial reference sum.
	fS, _ := field.NewFunction("u", g, 2, nil)
	sS, _ := New("src", g, pts)
	if err := sS.Inject(fS, 0, vals); err != nil {
		t.Fatal(err)
	}
	serialSum := 0.0
	for _, v := range fS.Bufs[0].Data {
		serialSum += float64(v)
	}

	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		dec, _ := grid.NewDecomposition(g, 4, []int{2, 2})
		f, err := field.NewFunction("u", g, 2, &field.Config{Decomp: dec, Rank: c.Rank()})
		if err != nil {
			t.Error(err)
			return
		}
		s, _ := New("src", g, pts)
		if err := s.Inject(f, 0, vals); err != nil {
			t.Error(err)
			return
		}
		// Sum only DOMAIN cells (halo untouched anyway) and all-reduce.
		dom := f.DomainRegion()
		tmp := make([]float32, dom.Size())
		f.Bufs[0].Pack(dom, tmp)
		local := 0.0
		for _, v := range tmp {
			local += float64(v)
		}
		total := c.AllreduceScalar(local, mpi.OpSum)
		if math.Abs(total-serialSum) > 1e-5 {
			t.Errorf("rank %d: distributed sum %v != serial %v", c.Rank(), total, serialSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateMatchesSerialAcrossRanks(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, []float64{7, 7})
	fill := func(f *field.Function) {
		for i := 0; i < f.LocalShape[0]; i++ {
			for j := 0; j < f.LocalShape[1]; j++ {
				gi, gj := f.Origin[0]+i, f.Origin[1]+j
				f.SetDomain(0, float32(math.Sin(float64(gi))*3+float64(gj)), i, j)
			}
		}
	}
	pts := [][]float64{{3.5, 3.5}, {1.1, 5.9}, {6.5, 0.5}}
	fS, _ := field.NewFunction("u", g, 2, nil)
	fill(fS)
	sS, _ := New("rec", g, pts)
	want := sS.Interpolate(fS, 0, nil)

	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		dec, _ := grid.NewDecomposition(g, 4, []int{2, 2})
		f, _ := field.NewFunction("u", g, 2, &field.Config{Decomp: dec, Rank: c.Rank()})
		fill(f)
		s, _ := New("rec", g, pts)
		got := s.Interpolate(f, 0, c)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5 {
				t.Errorf("rank %d point %d: %v, want %v", c.Rank(), i, got[i], want[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFig3_SparseOwnership(t *testing.T) {
	// A 2x2 decomposition of an 8x8 grid: chunk boundary at index 4, i.e.
	// physical coordinate 4.0 when extent is 7 (spacing 1).
	g := grid.MustNew([]int{8, 8}, []float64{7, 7})
	dec, err := grid.NewDecomposition(g, 4, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]float64{
		{1.5, 1.5}, // A: strictly inside rank 0
		{3.5, 1.5}, // B: cell straddles ranks 0 and 2
		{3.5, 3.5}, // C: cell corner shared by all four ranks
		{1.5, 3.5}, // D: cell straddles ranks 0 and 1
	}
	s, _ := New("pts", g, pts)
	owners := s.OwnerRanks(dec)
	sortAll := func(xs [][]int) {
		for _, x := range xs {
			sort.Ints(x)
		}
	}
	sortAll(owners)
	want := [][]int{{0}, {0, 2}, {0, 1, 2, 3}, {0, 1}}
	for p := range want {
		if len(owners[p]) != len(want[p]) {
			t.Errorf("point %d owners = %v, want %v", p, owners[p], want[p])
			continue
		}
		for i := range want[p] {
			if owners[p][i] != want[p][i] {
				t.Errorf("point %d owners = %v, want %v", p, owners[p], want[p])
				break
			}
		}
	}
}

func TestRickerWavelet(t *testing.T) {
	f0, t0, dt := 10.0, 0.1, 0.001
	nt := 200
	wv := RickerWavelet(f0, t0, dt, nt)
	// Peak of exactly 1 at t = t0.
	peakIdx := 0
	for i, v := range wv {
		if v > wv[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx != 100 {
		t.Errorf("peak at sample %d, want 100", peakIdx)
	}
	if math.Abs(float64(wv[100])-1) > 1e-6 {
		t.Errorf("peak value %v, want 1", wv[100])
	}
	// The Ricker wavelet has (near-)zero mean.
	sum := 0.0
	for _, v := range wv {
		sum += float64(v)
	}
	if math.Abs(sum/float64(nt)) > 1e-3 {
		t.Errorf("mean too large: %g", sum/float64(nt))
	}
}

func TestInjectWrongLengthErrors(t *testing.T) {
	g := grid.MustNew([]int{4, 4}, nil)
	f, _ := field.NewFunction("u", g, 2, nil)
	s, _ := New("src", g, [][]float64{{1, 1}})
	if err := s.Inject(f, 0, []float32{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}
