// Package sparse implements SparseFunctions: sets of points that do not
// align with the computational grid (paper Section III-c, Fig. 3). Sparse
// points support injection (scatter-add of a source term into the grid)
// and interpolation (reading the wavefield at off-grid receiver
// positions), with multi-rank ownership resolved so that every grid-point
// contribution is applied exactly once under any domain decomposition.
package sparse

import (
	"fmt"
	"math"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

// SparseFunction is a set of off-grid points with physical coordinates.
type SparseFunction struct {
	Name   string
	Grid   *grid.Grid
	Coords [][]float64 // npoints x ndims, in physical units
}

// New validates coordinates against the grid extent.
func New(name string, g *grid.Grid, coords [][]float64) (*SparseFunction, error) {
	nd := g.NDims()
	for i, c := range coords {
		if len(c) != nd {
			return nil, fmt.Errorf("sparse: point %d has %d coordinates, want %d", i, len(c), nd)
		}
		for d, x := range c {
			if x < 0 || x > g.Extent[d] {
				return nil, fmt.Errorf("sparse: point %d coordinate %g outside extent [0,%g]", i, x, g.Extent[d])
			}
		}
	}
	cp := make([][]float64, len(coords))
	for i, c := range coords {
		cp[i] = append([]float64(nil), c...)
	}
	return &SparseFunction{Name: name, Grid: g, Coords: cp}, nil
}

// NPoints returns the point count.
func (s *SparseFunction) NPoints() int { return len(s.Coords) }

// support enumerates the 2^nd grid corners of the cell containing point p
// with their bilinear/trilinear weights.
type corner struct {
	idx    []int
	weight float64
}

func (s *SparseFunction) support(p int) []corner {
	nd := s.Grid.NDims()
	base := make([]int, nd)
	frac := make([]float64, nd)
	for d := 0; d < nd; d++ {
		h := s.Grid.Spacing(d)
		pos := s.Coords[p][d] / h
		b := int(math.Floor(pos))
		// Clamp to the last cell so points on the upper boundary stay valid.
		if b > s.Grid.Shape[d]-2 {
			b = s.Grid.Shape[d] - 2
		}
		if b < 0 {
			b = 0
		}
		base[d] = b
		frac[d] = pos - float64(b)
	}
	n := 1 << nd
	out := make([]corner, 0, n)
	for mask := 0; mask < n; mask++ {
		idx := make([]int, nd)
		w := 1.0
		for d := 0; d < nd; d++ {
			if mask&(1<<d) != 0 {
				idx[d] = base[d] + 1
				w *= frac[d]
			} else {
				idx[d] = base[d]
				w *= 1 - frac[d]
			}
		}
		if w == 0 {
			continue
		}
		out = append(out, corner{idx: idx, weight: w})
	}
	return out
}

// ownsPoint reports whether the field's local DOMAIN contains the global
// grid index.
func ownsPoint(f *field.Function, gidx []int) bool {
	return ownsPointDeep(f, gidx, nil)
}

// ownsPointDeep reports whether the global grid index falls within the
// field's local DOMAIN extended by depth[d] ghost points per side (nil
// depth means the owned box only).
func ownsPointDeep(f *field.Function, gidx []int, depth []int) bool {
	for d, g := range gidx {
		ext := 0
		if depth != nil {
			ext = depth[d]
		}
		l := g - f.Origin[d]
		if l < -ext || l >= f.LocalShape[d]+ext {
			return false
		}
	}
	return true
}

// Inject scatter-adds vals[p] * weight into time buffer t of f at the
// support corners of every point. Under a decomposition, each rank applies
// only the contributions landing on grid points it owns, so the global
// update is applied exactly once regardless of how many ranks share the
// point's cell (paper Fig. 3 ownership).
func (s *SparseFunction) Inject(f *field.Function, t int, vals []float32) error {
	return s.InjectDeep(f, t, vals, nil)
}

// InjectDeep is Inject extended to the ghost region: contributions are
// additionally applied to the rank's local *copies* of neighbour-owned
// points up to depth[d] ghost points per side. Every rank computes the
// identical float32 contribution from the globally known coordinates and
// values, so the owned copy and every ghost copy of a grid point receive
// bit-identical updates — the invariant communication-avoiding time
// tiling needs for its redundant shell recompute to reproduce the
// neighbour's post-injection data exactly. nil depth is plain owned-only
// injection.
func (s *SparseFunction) InjectDeep(f *field.Function, t int, vals []float32, depth []int) error {
	if len(vals) != s.NPoints() {
		return fmt.Errorf("sparse: %d values for %d points", len(vals), s.NPoints())
	}
	if depth != nil {
		// Clamp to the allocation: the caller may pass an operator-wide
		// depth wider than this field's own ghost region.
		clamped := make([]int, len(depth))
		for d := range depth {
			clamped[d] = depth[d]
			if d < len(f.Halo) && clamped[d] > f.Halo[d] {
				clamped[d] = f.Halo[d]
			}
		}
		depth = clamped
	}
	buf := f.Buf(t)
	for p := range s.Coords {
		for _, c := range s.support(p) {
			if !ownsPointDeep(f, c.idx, depth) {
				continue
			}
			idx := make([]int, len(c.idx))
			for d := range c.idx {
				idx[d] = c.idx[d] - f.Origin[d] + f.Halo[d]
			}
			off := buf.Index(idx)
			buf.Data[off] += float32(c.weight) * vals[p]
		}
	}
	return nil
}

// Interpolate reads time buffer t of f at every sparse point. Each rank
// sums the contributions of the support corners it owns; when comm is
// non-nil the partial sums are combined with an all-reduce so every rank
// returns the complete values. The result does not depend on halo
// freshness: only owned data is read.
func (s *SparseFunction) Interpolate(f *field.Function, t int, comm *mpi.Comm) []float64 {
	partial := make([]float64, s.NPoints())
	buf := f.Buf(t)
	for p := range s.Coords {
		sum := 0.0
		for _, c := range s.support(p) {
			if !ownsPoint(f, c.idx) {
				continue
			}
			idx := make([]int, len(c.idx))
			for d := range c.idx {
				idx[d] = c.idx[d] - f.Origin[d] + f.Halo[d]
			}
			sum += c.weight * float64(buf.Data[buf.Index(idx)])
		}
		partial[p] = sum
	}
	if comm == nil || comm.Size() == 1 {
		return partial
	}
	return comm.Allreduce(partial, mpi.OpSum)
}

// OwnerRanks returns, per point, the ranks whose DOMAIN intersects the
// point's support — the set of "involved ranks" of paper Fig. 3.
func (s *SparseFunction) OwnerRanks(dec *grid.Decomposition) [][]int {
	out := make([][]int, s.NPoints())
	for p := range s.Coords {
		seen := map[int]bool{}
		for _, c := range s.support(p) {
			r := dec.OwnerRank(c.idx)
			if !seen[r] {
				seen[r] = true
				out[p] = append(out[p], r)
			}
		}
	}
	return out
}

// RickerWavelet generates the classic seismic source signature with peak
// frequency f0 (Hz) centred at t0 (s), sampled nt times at interval dt.
func RickerWavelet(f0, t0, dt float64, nt int) []float32 {
	out := make([]float32, nt)
	for i := 0; i < nt; i++ {
		t := float64(i)*dt - t0
		a := math.Pi * f0 * t
		a *= a
		out[i] = float32((1 - 2*a) * math.Exp(-a))
	}
	return out
}
