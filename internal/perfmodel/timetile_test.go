package perfmodel

import (
	"testing"

	"devigo/internal/halo"
)

// tileProfile is a latency-dominated distributed profile: tiny per-rank
// boxes where per-message latency dwarfs both compute and bytes.
func tileProfile() OpProfile {
	return OpProfile{
		LocalShape:      []int{16, 16},
		InstrsPerPoint:  30,
		StreamsPerPoint: 5,
		HaloStreams:     1,
		HaloWidth:       4,
		Ranks:           4,
		MaxWorkers:      1,
		Mode:            halo.ModeDiagonal,
		TimeTile:        1,
		MaxTimeTile:     8,
		TileStride:      2,
		TileStreams:     2,
	}
}

func TestCandidatesIncludeExchangeIntervals(t *testing.T) {
	p := tileProfile()
	ks := map[int]bool{}
	for _, c := range Candidates(p) {
		ks[c.TimeTile] = true
	}
	for _, k := range []int{1, 2, 4, 8} {
		if !ks[k] {
			t.Errorf("candidate space lacks interval %d: %v", k, ks)
		}
	}
	// The feasibility bound caps the axis.
	p.MaxTimeTile = 2
	ks = map[int]bool{}
	for _, c := range Candidates(p) {
		ks[c.TimeTile] = true
	}
	if ks[4] || ks[8] {
		t.Errorf("intervals beyond MaxTimeTile offered: %v", ks)
	}
	// Serial profiles never tile.
	p.Ranks = 1
	p.Mode = halo.ModeNone
	for _, c := range Candidates(p) {
		if c.TimeTile > 1 {
			t.Errorf("serial candidate with interval %d", c.TimeTile)
		}
	}
}

func TestPredictPrefersDeepIntervalWhenLatencyBound(t *testing.T) {
	p := tileProfile()
	h := DefaultHost()
	base := ExecConfig{Mode: halo.ModeDiagonal, Workers: 1, TileRows: 16, TimeTile: 1}
	deep := base
	deep.TimeTile = 4
	if h.Predict(p, deep) >= h.Predict(p, base) {
		t.Errorf("k=4 predicted %.3g >= k=1 %.3g on a latency-dominated profile",
			h.Predict(p, deep), h.Predict(p, base))
	}
	// On a big compute-bound box the redundant shell must make deep
	// intervals unattractive.
	p.LocalShape = []int{512, 512}
	big := ExecConfig{Mode: halo.ModeDiagonal, Workers: 1, TileRows: 512, TimeTile: 1}
	bigDeep := big
	bigDeep.TimeTile = 8
	if h.Predict(p, bigDeep) <= h.Predict(p, big) {
		t.Errorf("k=8 predicted %.3g <= k=1 %.3g on a compute-bound profile",
			h.Predict(p, bigDeep), h.Predict(p, big))
	}
}

func TestPlanRanksDeepIntervalFirstWhenLatencyBound(t *testing.T) {
	p := tileProfile()
	plan := Plan(DefaultHost(), p)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	if plan[0].TimeTile < 2 {
		t.Errorf("top-ranked config %v has interval %d, want >= 2", plan[0], plan[0].TimeTile)
	}
}

func TestExecConfigStringWithInterval(t *testing.T) {
	c := ExecConfig{Mode: halo.ModeFull, Workers: 4, TileRows: 16}
	if got := c.String(); got != "full/w4/t16" {
		t.Errorf("k<=1 String() = %q, want no interval suffix", got)
	}
	c.TimeTile = 4
	if got := c.String(); got != "full/w4/t16/k4" {
		t.Errorf("k=4 String() = %q, want full/w4/t16/k4", got)
	}
}
