package perfmodel

import (
	"fmt"

	"devigo/internal/grid"
	"devigo/internal/halo"
)

// Scenario is one point of a scaling experiment: a kernel on a machine at
// a node count with a communication mode.
type Scenario struct {
	Kernel  KernelChar
	Machine Machine
	// Shape is the global grid (paper problem sizes, e.g. 1024^3).
	Shape []int
	// Nodes is the CPU node count, or for GPUs the *device* count.
	Nodes int
	// Mode is the communication pattern.
	Mode halo.Mode
	// Topology optionally overrides the rank grid (the paper's manual
	// full-mode tuning); nil uses DimsCreate.
	Topology []int
}

// Ranks returns the MPI rank count of the scenario. For the GPU machine
// Nodes counts devices, each hosting one rank.
func (s *Scenario) Ranks() int {
	if s.Machine.GPUOnlyBasic {
		return s.Nodes
	}
	return s.Nodes * s.Machine.RanksPerNode
}

// interconnect returns the per-message overhead and per-rank bandwidth
// applicable at the scenario's scale: intra-node while everything fits in
// one node (NVLink for <=RanksPerNode GPUs), inter-node beyond.
func (s *Scenario) interconnect() (alpha, beta float64) {
	intranode := s.Nodes == 1 || (s.Machine.GPUOnlyBasic && s.Nodes <= s.Machine.RanksPerNode)
	if intranode {
		return s.Machine.MsgOverheadIntra, s.Machine.BWIntra
	}
	return s.Machine.MsgOverheadInter, s.Machine.BWInter
}

// localShape returns the slowest rank's chunk (ceil division).
func (s *Scenario) localShape() ([]int, error) {
	ranks := s.Ranks()
	topo := s.Topology
	if topo == nil {
		topo = grid.DimsCreate(ranks, len(s.Shape))
	}
	prod := 1
	for _, t := range topo {
		prod *= t
	}
	if prod != ranks {
		return nil, fmt.Errorf("perfmodel: topology %v does not tile %d ranks", topo, ranks)
	}
	out := make([]int, len(s.Shape))
	for d := range s.Shape {
		out[d] = (s.Shape[d] + topo[d] - 1) / topo[d]
		if out[d] < 1 {
			return nil, fmt.Errorf("perfmodel: %d ranks over-decompose dim %d", ranks, d)
		}
	}
	return out, nil
}

// pointCost returns the seconds per grid-point update on one rank:
// paper-anchored when the kernel matches a measured configuration,
// first-principles roofline otherwise.
func (s *Scenario) pointCost() float64 {
	if anchor, ok := paperAnchor(s.Kernel.Name, s.Kernel.SO, s.Machine.GPUOnlyBasic); ok {
		perRank := anchor * 1e9 // GPU anchors are per device == per rank
		if !s.Machine.GPUOnlyBasic {
			perRank = anchor * 1e9 / float64(s.Machine.RanksPerNode)
		}
		return 1 / perRank
	}
	bw := s.Machine.MemBW * s.Machine.Efficiency
	fl := s.Machine.Flops * s.Machine.Efficiency
	tMem := s.Kernel.BytesPerPoint() / bw
	tFlop := s.Kernel.FlopsPerPoint / fl
	if tMem > tFlop {
		return tMem
	}
	return tFlop
}

func prod(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// commTime models one timestep's halo-exchange cost for the slowest rank.
// Message counts and byte volumes come from halo.Traffic (the exchangers'
// own accounting). Messages of all exchanged fields are bundled per step
// (preallocated buffer bundles for diagonal/full; one allocation sweep for
// basic), so per-message overheads are paid once per step while byte
// volume scales with the stream count.
func (s *Scenario) commTime(local []int) float64 {
	if s.Ranks() == 1 {
		return 0
	}
	alpha, beta := s.interconnect()
	streams := float64(s.Kernel.HaloStreams)
	msgs, perStream := halo.Traffic(s.Mode, local, s.Kernel.HaloWidth)
	nmsgs := float64(msgs)
	bytes := perStream * streams

	switch s.Mode {
	case halo.ModeBasic:
		// 2 messages per dimension, three synchronous rendezvous phases:
		// fewer, larger messages, but the multi-step sync and the C-land
		// allocation keep the wire under-saturated (Table I).
		return nmsgs*alpha + bytes/(beta*s.Machine.BWEffBasic)
	case halo.ModeDiagonal, halo.ModeFull:
		// Single-step posting of the full neighbourhood: 26 messages in
		// 3-D, smaller each, streaming from preallocated buffers.
		return nmsgs*alpha + bytes/(beta*s.Machine.BWEffSingleStep)
	default:
		return 0
	}
}

// StepTime returns the modelled seconds per timestep on the slowest rank.
func (s *Scenario) StepTime() (float64, error) {
	local, err := s.localShape()
	if err != nil {
		return 0, err
	}
	if s.Machine.GPUOnlyBasic && s.Mode != halo.ModeBasic && s.Ranks() > 1 {
		return 0, fmt.Errorf("perfmodel: %s supports only the basic pattern (Table I)", s.Machine.Name)
	}
	tpt := s.pointCost()
	localPts := float64(prod(local))
	comm := s.commTime(local)

	if s.Mode != halo.ModeFull || s.Ranks() == 1 {
		return localPts*tpt + comm, nil
	}

	// Full mode: CORE overlaps communication; REMAINDER pays the stride
	// penalty; one of the simulated threads is sacrificed to the progress
	// engine; overlap is imperfect (MPI_Test prods only between tiles).
	h := s.Kernel.HaloWidth
	corePts := 1.0
	for d := range local {
		c := local[d] - 2*h
		if c < 0 {
			c = 0
		}
		corePts *= float64(c)
	}
	remPts := localPts - corePts
	// One OpenMP worker of the pool is sacrificed to the MPI_Test
	// progress engine (paper Section III-h).
	threadLoss := 0.0
	if s.Machine.ThreadsPerRank > 1 {
		threadLoss = 1.0 / float64(s.Machine.ThreadsPerRank)
	}
	tCore := corePts * tpt / (1 - threadLoss)
	const overlapEff = 0.7
	hidden := comm * overlapEff
	overlapped := tCore
	if hidden > overlapped {
		overlapped = hidden
	}
	exposed := comm - hidden
	tRem := remPts * tpt * s.Machine.StridePenalty
	return overlapped + exposed + tRem, nil
}

// ThroughputGPts returns the modelled global throughput in GPts/s.
func (s *Scenario) ThroughputGPts() (float64, error) {
	st, err := s.StepTime()
	if err != nil {
		return 0, err
	}
	return float64(prod(s.Shape)) / st / 1e9, nil
}

// Efficiency returns the strong-scaling efficiency vs a 1-node run of the
// same scenario: (GPts/s at N) / (N * GPts/s at 1), matching the paper's
// ideal-percentage annotations.
func (s *Scenario) Efficiency() (float64, error) {
	tput, err := s.ThroughputGPts()
	if err != nil {
		return 0, err
	}
	one := *s
	one.Nodes = 1
	one.Mode = s.Mode
	one.Topology = nil
	base, err := one.ThroughputGPts()
	if err != nil {
		return 0, err
	}
	return tput / (float64(s.Nodes) * base), nil
}

// SelectMode returns the fastest communication pattern for the scenario —
// the automated tuning the paper lists as future work.
func SelectMode(s Scenario) (halo.Mode, float64, error) {
	best := halo.ModeBasic
	bestT := 0.0
	modes := []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}
	if s.Machine.GPUOnlyBasic {
		modes = modes[:1]
	}
	first := true
	for _, m := range modes {
		sc := s
		sc.Mode = m
		tput, err := sc.ThroughputGPts()
		if err != nil {
			return best, bestT, err
		}
		if first || tput > bestT {
			best, bestT = m, tput
			first = false
		}
	}
	return best, bestT, nil
}

// RooflinePoint is one kernel's position on the integrated roofline
// (paper Fig. 7).
type RooflinePoint struct {
	Kernel  string
	Machine string
	// AI is the operational intensity (flop/byte).
	AI float64
	// GFlops is the modelled achieved performance.
	GFlops float64
	// Bound is "memory" or "compute".
	Bound string
}

// Roofline places a kernel on a machine's roofline.
func Roofline(k KernelChar, m Machine) RooflinePoint {
	ai := k.OperationalIntensity()
	memBound := ai * m.MemBW
	p := RooflinePoint{Kernel: k.Name, Machine: m.Name, AI: ai}
	// Whole-machine-per-rank numbers: scale by ranks/node for node-level
	// figures like the paper's.
	nodeBW := m.MemBW * float64(m.RanksPerNode)
	nodeFlops := m.Flops * float64(m.RanksPerNode)
	if m.GPUOnlyBasic {
		nodeBW, nodeFlops = m.MemBW, m.Flops // per device, as in Fig. 7
	}
	memBound = ai * nodeBW
	if memBound < nodeFlops {
		p.GFlops = memBound * m.Efficiency / 1e9
		p.Bound = "memory"
	} else {
		p.GFlops = nodeFlops * m.Efficiency / 1e9
		p.Bound = "compute"
	}
	return p
}
