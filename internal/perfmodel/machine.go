// Package perfmodel implements the calibrated analytic machine model that
// substitutes for the paper's Archer2 (CPU) and Tursa (GPU) clusters: a
// roofline compute model per kernel plus an alpha-beta communication model
// per MPI mode. The functional behaviour of the generated code is validated
// for real by the in-process MPI runtime; this package reproduces the
// *wall-clock shape* of the paper's strong/weak scaling figures
// (see DESIGN.md section 2 for the substitution rationale).
package perfmodel

// Machine describes one execution platform in per-rank terms.
type Machine struct {
	Name string
	// RanksPerNode: 8 MPI ranks/node on Archer2, 1 rank per GPU (4/node)
	// on Tursa.
	RanksPerNode int
	// MemBW is the effective memory bandwidth available to one rank (B/s).
	MemBW float64
	// Flops is the effective SP compute rate of one rank (flop/s).
	Flops float64
	// MsgOverheadIntra/Inter is the per-message cost within / across
	// nodes (s): MPI stack traversal, slab pack/unpack, and for the basic
	// mode the C-land buffer allocation.
	MsgOverheadIntra, MsgOverheadInter float64
	// BWIntra/Inter are per-rank injection bandwidths (B/s).
	BWIntra, BWInter float64
	// BWEffBasic/BWEffSingleStep derate the wire bandwidth per mode: the
	// basic pattern's synchronous multi-step rendezvous cannot keep the
	// link saturated, while the single-step patterns (diagonal/full)
	// stream from preallocated buffers.
	BWEffBasic, BWEffSingleStep float64
	// StridePenalty multiplies the per-point cost in REMAINDER areas
	// (non-contiguous accesses, lost vectorisation — paper Section III-h).
	StridePenalty float64
	// Efficiency derates the roofline bounds to achievable fractions.
	Efficiency float64
	// ThreadsPerRank is the OpenMP pool size (full mode sacrifices one
	// thread to the MPI progress engine).
	ThreadsPerRank int
	// GPUOnlyBasic mirrors Table I: diagonal/full need preallocated
	// device buffers which are unsupported on GPUs.
	GPUOnlyBasic bool
}

// Archer2Node returns the CPU platform of the paper (Section IV-A1): dual
// EPYC 7742, 8 ranks x 16 threads per node, HPE Slingshot interconnect.
// Node-level roofline numbers come from the paper's Fig. 7 (288.75 GB/s
// DRAM bandwidth, 6.10 TFLOP/s SP peak), divided evenly over the 8 ranks.
func Archer2Node() Machine {
	const (
		nodeBW    = 288.75e9
		nodeFlops = 6.10e12
		ranks     = 8
	)
	return Machine{
		Name:             "EPYC-7742-node",
		RanksPerNode:     ranks,
		MemBW:            nodeBW / ranks,
		Flops:            nodeFlops / ranks,
		MsgOverheadIntra: 3.0e-6,
		MsgOverheadInter: 8.0e-6,
		BWIntra:          12e9,         // shared-memory copies within a node
		BWInter:          50e9 / ranks, // 2x200Gb/s NICs shared by 8 ranks
		BWEffBasic:       0.80,
		BWEffSingleStep:  0.95,
		StridePenalty:    3.0,
		Efficiency:       0.85,
		ThreadsPerRank:   16,
	}
}

// TursaA100 returns the GPU platform (Section IV-A2): NVIDIA A100-80,
// 2035 GB/s HBM, 17.59 TFLOP/s SP (roofline Fig. 7), 4 GPUs per node with
// NVLink intra-node and 4x200 Gb/s InfiniBand inter-node. One MPI rank per
// GPU.
func TursaA100() Machine {
	return Machine{
		Name:             "A100-80",
		RanksPerNode:     4,
		MemBW:            2035e9,
		Flops:            17.59e12,
		MsgOverheadIntra: 6.0e-6,    // device-side message setup
		MsgOverheadInter: 15.0e-6,   // host staging + IB
		BWIntra:          250e9,     // NVLink
		BWInter:          100e9 / 4, // 4x200Gb/s IB shared by the node's GPUs
		BWEffBasic:       0.80,
		BWEffSingleStep:  0.95,
		StridePenalty:    3.5,
		Efficiency:       0.75,
		ThreadsPerRank:   1,
		GPUOnlyBasic:     true,
	}
}
