package perfmodel

// Single-node (CPU) and single-device (GPU) throughput anchors, in GPts/s,
// taken from the paper's appendix tables (basic mode, 1 node/device,
// space orders 4/8/12/16):
//
//	CPU: Tables III-VI (acoustic), VII-X (elastic), XI-XIV (TTI),
//	     XV-XVIII (viscoelastic).
//	GPU: Tables XIX-XXII, XXIII-XXVI, XXVII-XXX, XXXI-XXXIV.
//
// The analytic streams/flops model reproduces the acoustic kernel's
// absolute rate from first principles (~12 GPts/s per node) but cannot
// capture the cache behaviour that separates the staggered elastic and
// viscoelastic kernels from TTI; single-node rates are therefore anchored
// to the paper's measurements, while all *scaling* behaviour (efficiency
// decay, mode crossovers, CPU/GPU divergence) comes from the model. See
// EXPERIMENTS.md for the calibration discussion.
var cpuAnchors = map[string]map[int]float64{
	"acoustic":     {4: 13.4, 8: 12.4, 12: 11.5, 16: 10.8},
	"elastic":      {4: 1.8, 8: 1.7, 12: 1.5, 16: 1.0},
	"tti":          {4: 4.3, 8: 3.5, 12: 2.7, 16: 2.0},
	"viscoelastic": {4: 1.2, 8: 1.1, 12: 1.0, 16: 0.7},
}

var gpuAnchors = map[string]map[int]float64{
	"acoustic":     {4: 34.3, 8: 31.2, 12: 28.8, 16: 25.8},
	"elastic":      {4: 6.5, 8: 5.2, 12: 4.0, 16: 2.5},
	"tti":          {4: 10.5, 8: 8.5, 12: 7.5, 16: 5.8},
	"viscoelastic": {4: 3.4, 8: 2.8, 12: 2.5, 16: 1.6},
}

// paperAnchor returns the measured 1-node/1-device throughput for the
// kernel if the paper reports it.
func paperAnchor(model string, so int, gpu bool) (float64, bool) {
	table := cpuAnchors
	if gpu {
		table = gpuAnchors
	}
	bySO, ok := table[model]
	if !ok {
		return 0, false
	}
	v, ok := bySO[so]
	return v, ok
}
