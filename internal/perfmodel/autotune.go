package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"devigo/internal/halo"
)

// This file is the runtime autotuner: the paper's "the compiler should
// pick the MPI-X configuration" claim turned into a subsystem. Package
// core builds an OpProfile for each compiled operator (instruction counts
// from the bytecode engine, exchanged streams from the schedule, the
// slowest rank's box from the grid decomposition) and either adopts the
// cost model's top-ranked configuration directly (policy "model") or runs
// a bounded empirical search over the model's shortlist (policy "search",
// via Tune). Every candidate configuration is bit-exact — halo mode,
// worker count and tile size never change results, only speed — which is
// what makes in-place tuning on the live simulation sound.

// ExecConfig is one runnable execution configuration of an operator: the
// communication pattern plus the shared-memory decomposition knobs.
type ExecConfig struct {
	// Mode is the halo-exchange pattern (ModeNone for serial runs).
	Mode halo.Mode
	// Workers is the worker-pool size (simulated OpenMP threads).
	Workers int
	// TileRows is the outer-dimension tile height (progress granularity).
	TileRows int
}

// String renders the configuration as "mode/w<N>/t<M>".
func (c ExecConfig) String() string {
	return fmt.Sprintf("%s/w%d/t%d", c.Mode, c.Workers, c.TileRows)
}

// OpProfile is everything the autotuner needs to know about one compiled
// operator and its execution environment. Core derives it from the
// operator's compiled kernels, its halo schedule, and the grid
// decomposition; every rank of a distributed run derives the identical
// profile (the decomposition is globally known), so configuration
// decisions are deterministic without communication.
type OpProfile struct {
	// LocalShape is the slowest rank's owned box (the global shape when
	// serial) — the per-step critical path is computed on it.
	LocalShape []int
	// InstrsPerPoint is the summed per-point VM instruction count of the
	// operator's compiled kernels (bytecode or interpreter programs).
	InstrsPerPoint int
	// StreamsPerPoint counts distinct (field, timeOffset) data streams
	// touched per point: 4 bytes each of DRAM traffic per update.
	StreamsPerPoint int
	// HaloStreams is the number of per-timestep halo exchanges.
	HaloStreams int
	// HaloWidth is the widest exchanged ghost region.
	HaloWidth int
	// Ranks is the world size (1 = serial).
	Ranks int
	// MaxWorkers caps the worker-pool size (typically GOMAXPROCS).
	MaxWorkers int
	// Mode is the currently configured halo mode (ModeNone when serial).
	Mode halo.Mode
	// ForcedWorkers/ForcedTileRows pin user-specified knobs: when > 0 the
	// candidate set only contains that value, so explicit configuration
	// always wins over the tuner.
	ForcedWorkers  int
	ForcedTileRows int
}

// Host is the calibrated single-machine cost model the autotuner ranks
// candidate configurations with. Unlike the paper-cluster Machines of this
// package, Host describes the in-process runtime itself: VM dispatch
// latency, goroutine scheduling overheads, and the channel-rendezvous
// cost of the in-process MPI. Absolute accuracy is not required — only
// the induced *ranking* matters, and the empirical search (Tune) corrects
// residual model error on the shortlist.
type Host struct {
	// SecondsPerInstr is the per-point cost of one VM instruction.
	SecondsPerInstr float64
	// MemBandwidth is the sustainable DRAM bandwidth of the compute loop
	// (bytes/s); per-point cost is the max of the instruction-latency and
	// memory-traffic terms, a two-bound roofline.
	MemBandwidth float64
	// WorkerSpawn is the per-worker cost of starting the pool for one
	// kernel launch (goroutine creation + channel setup).
	WorkerSpawn float64
	// TileOverhead is the per-tile scheduling cost (channel receive,
	// odometer setup).
	TileOverhead float64
	// MsgLatency is the per-message rendezvous cost of the in-process MPI.
	MsgLatency float64
	// ExchangeBandwidth is the halo pack/copy/unpack bandwidth (bytes/s).
	ExchangeBandwidth float64
	// BasicPhasePenalty multiplies basic-mode communication time: the
	// dimension sweep serialises into multiple rendezvous phases and
	// allocates exchange buffers per call.
	BasicPhasePenalty float64
	// OverlapEff is the fraction of communication full mode hides under
	// CORE computation (progress is only prodded between tiles).
	OverlapEff float64
	// StridePenalty multiplies per-point cost in REMAINDER slabs
	// (non-contiguous accesses on the thin boundary boxes).
	StridePenalty float64
}

// DefaultHost returns the stock calibration for the in-process runtime.
// The constants are order-of-magnitude figures for a contemporary x86
// core; they only need to induce the right ranking, and the search policy
// re-measures the shortlist anyway.
func DefaultHost() Host {
	return Host{
		SecondsPerInstr:   1.0e-9,
		MemBandwidth:      8e9,
		WorkerSpawn:       3e-6,
		TileOverhead:      2e-7,
		MsgLatency:        5e-6,
		ExchangeBandwidth: 4e9,
		BasicPhasePenalty: 1.6,
		OverlapEff:        0.5,
		StridePenalty:     1.5,
	}
}

// MaxWorkersDefault returns the default worker-pool cap: GOMAXPROCS.
func MaxWorkersDefault() int { return runtime.GOMAXPROCS(0) }

// Candidates enumerates the configuration space the autotuner considers
// for a profile: halo modes (when distributed), power-of-two worker
// counts up to the host cap, and a small ladder of tile heights. Forced
// knobs collapse their axis to the pinned value. The enumeration is
// deterministic, and devigo-bench's exhaustive autotune sweep iterates
// exactly this set, so a tuner choice always has a sweep entry to be
// compared against.
func Candidates(p OpProfile) []ExecConfig {
	rows := 1
	if len(p.LocalShape) > 0 {
		rows = p.LocalShape[0]
	}
	var workers []int
	switch {
	case p.ForcedWorkers > 0:
		workers = []int{p.ForcedWorkers}
	default:
		wcap := p.MaxWorkers
		if wcap < 1 {
			wcap = MaxWorkersDefault()
		}
		if wcap > rows {
			wcap = rows
		}
		for w := 1; w <= wcap; w *= 2 {
			workers = append(workers, w)
		}
		if last := workers[len(workers)-1]; last < wcap {
			workers = append(workers, wcap)
		}
	}
	var tiles []int
	switch {
	case p.ForcedTileRows > 0:
		tiles = []int{p.ForcedTileRows}
	default:
		seen := map[int]bool{}
		for _, t := range []int{4, 8, 32, rows} {
			if t < 1 || t > rows || seen[t] {
				continue
			}
			seen[t] = true
			tiles = append(tiles, t)
		}
		if len(tiles) == 0 {
			tiles = []int{rows}
		}
	}
	modes := []halo.Mode{p.Mode}
	if p.Ranks > 1 && p.Mode != halo.ModeNone {
		modes = []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}
	}
	var out []ExecConfig
	for _, m := range modes {
		for _, w := range workers {
			for _, t := range tiles {
				out = append(out, ExecConfig{Mode: m, Workers: w, TileRows: t})
			}
		}
	}
	return out
}

// Predict models one timestep's wall time for a profile under a
// configuration — the same computation/communication structure as the
// paper Scenario model (two-bound per-point cost, alpha-beta exchange
// cost, CORE/REMAINDER overlap for full mode) instantiated with the
// in-process Host constants and the actual compiled instruction counts.
func (h Host) Predict(p OpProfile, c ExecConfig) float64 {
	pts := float64(prod(p.LocalShape))
	rows := 1
	if len(p.LocalShape) > 0 {
		rows = p.LocalShape[0]
	}
	tile := c.TileRows
	if tile < 1 || tile > rows {
		tile = rows
	}
	ntiles := (rows + tile - 1) / tile
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if p.MaxWorkers > 0 && w > p.MaxWorkers {
		w = p.MaxWorkers
	}
	if w > ntiles {
		w = ntiles
	}

	perPoint := float64(p.InstrsPerPoint) * h.SecondsPerInstr
	if mem := 4 * float64(p.StreamsPerPoint) / h.MemBandwidth; mem > perPoint {
		perPoint = mem
	}
	// The slowest worker drains ceil(ntiles/w) tiles; tile quantisation is
	// what makes tiny tiles balance better and huge tiles serialise.
	tilesWorker := (ntiles + w - 1) / w
	rowsWorker := tilesWorker * tile
	if rowsWorker > rows {
		rowsWorker = rows
	}
	compute := pts * float64(rowsWorker) / float64(rows) * perPoint
	compute += float64(tilesWorker) * h.TileOverhead
	if c.Workers > 1 {
		compute += float64(c.Workers) * h.WorkerSpawn
	}
	if p.Ranks <= 1 || c.Mode == halo.ModeNone {
		return compute
	}

	msgs, perStream := halo.Traffic(c.Mode, p.LocalShape, p.HaloWidth)
	nm := float64(msgs * p.HaloStreams)
	bytes := perStream * float64(p.HaloStreams)
	comm := nm*h.MsgLatency + bytes/h.ExchangeBandwidth
	switch c.Mode {
	case halo.ModeBasic:
		return compute + comm*h.BasicPhasePenalty
	case halo.ModeDiagonal:
		return compute + comm
	case halo.ModeFull:
		corePts := 1.0
		for d := range p.LocalShape {
			side := p.LocalShape[d] - 2*p.HaloWidth
			if side < 0 {
				side = 0
			}
			corePts *= float64(side)
		}
		remPts := pts - corePts
		coreCompute := compute * corePts / pts
		remCompute := compute * remPts / pts * h.StridePenalty
		hidden := comm * h.OverlapEff
		overlapped := coreCompute
		if hidden > overlapped {
			overlapped = hidden
		}
		return overlapped + (comm - hidden) + remCompute
	}
	return compute + comm
}

// Plan ranks the candidate configurations of a profile by predicted step
// time, fastest first. Ties break deterministically (mode, then workers,
// then tile rows) so every rank of a distributed run computes the same
// order from the same profile.
func Plan(h Host, p OpProfile) []ExecConfig {
	cands := Candidates(p)
	pred := make([]float64, len(cands))
	for i, c := range cands {
		pred[i] = h.Predict(p, c)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if pred[idx[a]] != pred[idx[b]] {
			return pred[idx[a]] < pred[idx[b]]
		}
		ca, cb := cands[idx[a]], cands[idx[b]]
		if ca.Mode != cb.Mode {
			return ca.Mode < cb.Mode
		}
		if ca.Workers != cb.Workers {
			return ca.Workers < cb.Workers
		}
		return ca.TileRows < cb.TileRows
	})
	out := make([]ExecConfig, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// ErrTuneBudget is returned by a Tune measure callback to signal that no
// further trial can be afforded (e.g. the run has too few timesteps
// left); Tune stops and settles on the best configuration measured so
// far.
var ErrTuneBudget = errors.New("perfmodel: tuning budget exhausted")

// DefaultSearchTrials is the number of model-shortlisted configurations
// the search policy measures empirically.
const DefaultSearchTrials = 6

// Trial records one empirical measurement of the search.
type Trial struct {
	Config  ExecConfig
	Seconds float64
}

// Tune is the bounded empirical search: it ranks the candidate space with
// the cost model (Plan), measures the top `trials` configurations through
// the caller's measure callback (expected to time a few short runs — for
// the in-place tuner, real timesteps of the live simulation, which is
// sound because every candidate is bit-exact), and returns the measured
// winner plus the trial log. Model ranking decides which configurations
// are worth timing; measurement decides between them. If measure returns
// ErrTuneBudget before anything was measured, the model's top choice is
// returned. Any other measure error aborts.
func Tune(h Host, p OpProfile, trials int, measure func(ExecConfig) (float64, error)) (ExecConfig, []Trial, error) {
	plan := Plan(h, p)
	if len(plan) == 0 {
		return ExecConfig{}, nil, errors.New("perfmodel: empty candidate space")
	}
	if trials <= 0 {
		trials = DefaultSearchTrials
	}
	if trials > len(plan) {
		trials = len(plan)
	}
	var log []Trial
	for _, cfg := range plan[:trials] {
		s, err := measure(cfg)
		if errors.Is(err, ErrTuneBudget) {
			break
		}
		if err != nil {
			return ExecConfig{}, log, err
		}
		log = append(log, Trial{Config: cfg, Seconds: s})
	}
	if len(log) == 0 {
		return plan[0], log, nil
	}
	best := log[0]
	for _, t := range log[1:] {
		if t.Seconds < best.Seconds {
			best = t
		}
	}
	if math.IsNaN(best.Seconds) {
		return plan[0], log, nil
	}
	return best.Config, log, nil
}
