package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"devigo/internal/halo"
)

// This file is the runtime autotuner: the paper's "the compiler should
// pick the MPI-X configuration" claim turned into a subsystem. Package
// core builds an OpProfile for each compiled operator (instruction counts
// from the bytecode engine, exchanged streams from the schedule, the
// slowest rank's box from the grid decomposition) and either adopts the
// cost model's top-ranked configuration directly (policy "model") or runs
// a bounded empirical search over the model's shortlist (policy "search",
// via Tune). Every candidate configuration is bit-exact — halo mode,
// worker count and tile size never change results, only speed — which is
// what makes in-place tuning on the live simulation sound.

// ExecConfig is one runnable execution configuration of an operator: the
// communication pattern plus the shared-memory decomposition knobs and
// the halo-exchange interval.
type ExecConfig struct {
	// Mode is the halo-exchange pattern (ModeNone for serial runs).
	Mode halo.Mode
	// Workers is the worker-pool size (simulated OpenMP threads).
	Workers int
	// TileRows is the outer-dimension tile height (progress granularity).
	TileRows int
	// TimeTile is the halo-exchange interval k: deep ghost regions
	// exchanged once every k steps with redundant shell recompute in
	// between. 0 and 1 both mean the classic exchange-every-step schedule.
	TimeTile int
}

// String renders the configuration as "mode/w<N>/t<M>", with a "/k<K>"
// suffix when the exchange interval exceeds 1.
func (c ExecConfig) String() string {
	s := fmt.Sprintf("%s/w%d/t%d", c.Mode, c.Workers, c.TileRows)
	if c.TimeTile > 1 {
		s += fmt.Sprintf("/k%d", c.TimeTile)
	}
	return s
}

// OpProfile is everything the autotuner needs to know about one compiled
// operator and its execution environment. Core derives it from the
// operator's compiled kernels, its halo schedule, and the grid
// decomposition; every rank of a distributed run derives the identical
// profile (the decomposition is globally known), so configuration
// decisions are deterministic without communication.
type OpProfile struct {
	// LocalShape is the slowest rank's owned box (the global shape when
	// serial) — the per-step critical path is computed on it.
	LocalShape []int
	// InstrsPerPoint is the summed per-point VM instruction count of the
	// operator's compiled kernels (bytecode or interpreter programs).
	InstrsPerPoint int
	// Engine is the execution engine the kernels compiled for ("bytecode",
	// "interpreter", "native"); it scales the instruction-latency term of
	// the roofline (see EngineInstrFactor). Empty means bytecode.
	Engine string
	// StreamsPerPoint counts distinct (field, timeOffset) data streams
	// touched per point: 4 bytes each of DRAM traffic per update.
	StreamsPerPoint int
	// HaloStreams is the number of per-timestep halo exchanges.
	HaloStreams int
	// HaloWidth is the widest exchanged ghost region.
	HaloWidth int
	// Ranks is the world size (1 = serial).
	Ranks int
	// MaxWorkers caps the worker-pool size (typically GOMAXPROCS).
	MaxWorkers int
	// Mode is the currently configured halo mode (ModeNone when serial).
	Mode halo.Mode
	// TimeTile is the currently configured halo-exchange interval.
	TimeTile int
	// MaxTimeTile bounds the exchange-interval axis of the candidate
	// space: the largest interval whose deep halos fit the decomposition's
	// chunks and the operator's current ghost allocation (the tuner never
	// reallocates storage mid-run). 0 and 1 both collapse the axis to k=1.
	MaxTimeTile int
	// TileStride is the per-timestep ghost-shell consumption (the summed
	// stencil radii of the schedule's clusters, max over dimensions) — the
	// increment by which the exchanged depth grows per extra substep.
	TileStride int
	// TileStreams is the number of (field, time-offset) buffers a
	// tile-start deep exchange ships (>= HaloStreams: older time levels
	// that a k=1 schedule never exchanges join the set).
	TileStreams int
	// ForcedWorkers/ForcedTileRows pin user-specified knobs: when > 0 the
	// candidate set only contains that value, so explicit configuration
	// always wins over the tuner.
	ForcedWorkers  int
	ForcedTileRows int
}

// Host is the calibrated single-machine cost model the autotuner ranks
// candidate configurations with. Unlike the paper-cluster Machines of this
// package, Host describes the in-process runtime itself: VM dispatch
// latency, goroutine scheduling overheads, and the channel-rendezvous
// cost of the in-process MPI. Absolute accuracy is not required — only
// the induced *ranking* matters, and the empirical search (Tune) corrects
// residual model error on the shortlist.
type Host struct {
	// SecondsPerInstr is the per-point cost of one VM instruction.
	SecondsPerInstr float64
	// MemBandwidth is the sustainable DRAM bandwidth of the compute loop
	// (bytes/s); per-point cost is the max of the instruction-latency and
	// memory-traffic terms, a two-bound roofline.
	MemBandwidth float64
	// WorkerSpawn is the per-worker cost of starting the pool for one
	// kernel launch (goroutine creation + channel setup).
	WorkerSpawn float64
	// PoolSync is the fixed fork-join/sync cost of one multi-worker kernel
	// launch: publish the work, wake the team, join at the barrier. The
	// default is an order-of-magnitude figure; the operator overrides it
	// with the measured dispatch cost of its persistent pool
	// (runtime.Pool.SyncCost) before planning.
	PoolSync float64
	// TileOverhead is the per-tile scheduling cost (channel receive,
	// odometer setup).
	TileOverhead float64
	// MsgLatency is the per-message rendezvous cost of the in-process MPI.
	MsgLatency float64
	// ExchangeBandwidth is the halo pack/copy/unpack bandwidth (bytes/s).
	ExchangeBandwidth float64
	// BasicPhasePenalty multiplies basic-mode communication time: the
	// dimension sweep serialises into multiple rendezvous phases and
	// allocates exchange buffers per call.
	BasicPhasePenalty float64
	// OverlapEff is the fraction of communication full mode hides under
	// CORE computation (progress is only prodded between tiles).
	OverlapEff float64
	// StridePenalty multiplies per-point cost in REMAINDER slabs
	// (non-contiguous accesses on the thin boundary boxes).
	StridePenalty float64
}

// DefaultHost returns the stock calibration for the in-process runtime.
// The constants are order-of-magnitude figures for a contemporary x86
// core; they only need to induce the right ranking, and the search policy
// re-measures the shortlist anyway.
func DefaultHost() Host {
	return Host{
		SecondsPerInstr:   1.0e-9,
		MemBandwidth:      8e9,
		WorkerSpawn:       3e-6,
		PoolSync:          2.0e-6,
		TileOverhead:      2e-7,
		MsgLatency:        5e-6,
		ExchangeBandwidth: 4e9,
		BasicPhasePenalty: 1.6,
		OverlapEff:        0.5,
		StridePenalty:     1.5,
	}
}

// MaxWorkersDefault returns the default worker-pool cap: GOMAXPROCS.
func MaxWorkersDefault() int { return runtime.GOMAXPROCS(0) }

// EngineInstrFactor scales Host.SecondsPerInstr by execution engine. The
// figures are calibration ratios from the repo's own BENCH measurements:
// the interpreter's per-point stack dispatch runs an order of magnitude
// slower than the register VM, while the native engine's fused bulk-row
// chains (SIMD strips on amd64) retire the same instruction stream
// several times faster. Only the instruction-latency leg of the
// two-bound roofline scales — the memory-traffic bound is engine-
// independent, so on bandwidth-bound profiles the engines correctly
// converge in the model just as they do on hardware.
func EngineInstrFactor(engine string) float64 {
	switch engine {
	case "interpreter":
		return 10.0
	case "native":
		return 0.3
	}
	return 1.0
}

// Candidates enumerates the configuration space the autotuner considers
// for a profile: halo modes (when distributed), power-of-two worker
// counts up to the host cap, and a small ladder of tile heights. Forced
// knobs collapse their axis to the pinned value. The enumeration is
// deterministic, and devigo-bench's exhaustive autotune sweep iterates
// exactly this set, so a tuner choice always has a sweep entry to be
// compared against.
func Candidates(p OpProfile) []ExecConfig {
	rows := 1
	if len(p.LocalShape) > 0 {
		rows = p.LocalShape[0]
	}
	var workers []int
	switch {
	case p.ForcedWorkers > 0:
		workers = []int{p.ForcedWorkers}
	default:
		wcap := p.MaxWorkers
		if wcap < 1 {
			wcap = MaxWorkersDefault()
		}
		if wcap > rows {
			wcap = rows
		}
		for w := 1; w <= wcap; w *= 2 {
			workers = append(workers, w)
		}
		if last := workers[len(workers)-1]; last < wcap {
			workers = append(workers, wcap)
		}
	}
	var tiles []int
	switch {
	case p.ForcedTileRows > 0:
		tiles = []int{p.ForcedTileRows}
	default:
		seen := map[int]bool{}
		for _, t := range []int{4, 8, 32, rows} {
			if t < 1 || t > rows || seen[t] {
				continue
			}
			seen[t] = true
			tiles = append(tiles, t)
		}
		if len(tiles) == 0 {
			tiles = []int{rows}
		}
	}
	modes := []halo.Mode{p.Mode}
	if p.Ranks > 1 && p.Mode != halo.ModeNone {
		modes = []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}
	}
	ks := []int{1}
	if p.Ranks > 1 && p.Mode != halo.ModeNone {
		for _, k := range []int{2, 4, 8} {
			if k <= p.MaxTimeTile {
				ks = append(ks, k)
			}
		}
	}
	var out []ExecConfig
	for _, m := range modes {
		for _, w := range workers {
			for _, t := range tiles {
				for _, k := range ks {
					out = append(out, ExecConfig{Mode: m, Workers: w, TileRows: t, TimeTile: k})
				}
			}
		}
	}
	return out
}

// Predict models one timestep's wall time for a profile under a
// configuration — the same computation/communication structure as the
// paper Scenario model (two-bound per-point cost, alpha-beta exchange
// cost, CORE/REMAINDER overlap for full mode) instantiated with the
// in-process Host constants and the actual compiled instruction counts.
func (h Host) Predict(p OpProfile, c ExecConfig) float64 {
	pts := float64(prod(p.LocalShape))
	rows := 1
	if len(p.LocalShape) > 0 {
		rows = p.LocalShape[0]
	}
	tile := c.TileRows
	if tile < 1 || tile > rows {
		tile = rows
	}
	ntiles := (rows + tile - 1) / tile
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if p.MaxWorkers > 0 && w > p.MaxWorkers {
		w = p.MaxWorkers
	}
	if w > ntiles {
		w = ntiles
	}

	instrPP := float64(p.InstrsPerPoint) * h.SecondsPerInstr * EngineInstrFactor(p.Engine)
	memPP := 4 * float64(p.StreamsPerPoint) / h.MemBandwidth
	// The slowest worker drains ceil(ntiles/w) tiles; tile quantisation is
	// what makes tiny tiles balance better and huge tiles serialise.
	tilesWorker := (ntiles + w - 1) / w
	rowsWorker := tilesWorker * tile
	if rowsWorker > rows {
		rowsWorker = rows
	}
	// Parallel efficiency is a two-bound story: the instruction leg scales
	// with the slowest worker's share of the rows, but the memory-traffic
	// leg does not — DRAM bandwidth is shared across the team, so a
	// bandwidth-bound profile gains nothing from more workers and the model
	// correctly refuses to charge sync overhead for phantom speedup.
	instrTime := pts * float64(rowsWorker) / float64(rows) * instrPP
	memTime := pts * memPP
	compute := instrTime
	if memTime > compute {
		compute = memTime
	}
	compute += float64(tilesWorker) * h.TileOverhead
	if w > 1 {
		// One pool dispatch (publish + wake + join) plus the per-worker
		// coordination cost per kernel launch.
		compute += h.PoolSync + float64(w)*h.WorkerSpawn
	}
	if p.Ranks <= 1 || c.Mode == halo.ModeNone {
		return compute
	}

	var nm, bytes float64
	k := c.TimeTile
	if k < 1 {
		k = 1
	}
	if k > 1 {
		// Time tiling: per-step compute grows by the average redundant
		// ghost-shell volume; messages amortize by k over a deep exchange of
		// TileStreams buffers at depth ~HaloWidth + (k-1)·stride.
		shell := 0.0
		for j := 0; j < k; j++ {
			pj := 1.0
			for d := range p.LocalShape {
				pj *= float64(p.LocalShape[d] + 2*j*p.TileStride)
			}
			shell += pj
		}
		compute *= shell / (float64(k) * pts)
		width := p.HaloWidth + (k-1)*p.TileStride
		streams := p.TileStreams
		if streams <= 0 {
			streams = p.HaloStreams
		}
		nm, bytes = halo.AmortizedTraffic(c.Mode, p.LocalShape, width, k, streams)
	} else {
		msgs, perStream := halo.Traffic(c.Mode, p.LocalShape, p.HaloWidth)
		nm = float64(msgs * p.HaloStreams)
		bytes = perStream * float64(p.HaloStreams)
	}
	comm := nm*h.MsgLatency + bytes/h.ExchangeBandwidth
	switch c.Mode {
	case halo.ModeBasic:
		return compute + comm*h.BasicPhasePenalty
	case halo.ModeDiagonal:
		return compute + comm
	case halo.ModeFull:
		corePts := 1.0
		for d := range p.LocalShape {
			side := p.LocalShape[d] - 2*p.HaloWidth
			if side < 0 {
				side = 0
			}
			corePts *= float64(side)
		}
		remPts := pts - corePts
		coreCompute := compute * corePts / pts
		remCompute := compute * remPts / pts * h.StridePenalty
		hidden := comm * h.OverlapEff
		overlapped := coreCompute
		if hidden > overlapped {
			overlapped = hidden
		}
		return overlapped + (comm - hidden) + remCompute
	}
	return compute + comm
}

// Plan ranks the candidate configurations of a profile by predicted step
// time, fastest first. Ties break deterministically (mode, then workers,
// then tile rows) so every rank of a distributed run computes the same
// order from the same profile.
func Plan(h Host, p OpProfile) []ExecConfig {
	cands := Candidates(p)
	pred := make([]float64, len(cands))
	for i, c := range cands {
		pred[i] = h.Predict(p, c)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if pred[idx[a]] != pred[idx[b]] {
			return pred[idx[a]] < pred[idx[b]]
		}
		ca, cb := cands[idx[a]], cands[idx[b]]
		if ca.Mode != cb.Mode {
			return ca.Mode < cb.Mode
		}
		if ca.Workers != cb.Workers {
			return ca.Workers < cb.Workers
		}
		if ca.TileRows != cb.TileRows {
			return ca.TileRows < cb.TileRows
		}
		return ca.TimeTile < cb.TimeTile
	})
	out := make([]ExecConfig, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// ErrTuneBudget is returned by a Tune measure callback to signal that no
// further trial can be afforded (e.g. the run has too few timesteps
// left); Tune stops and settles on the best configuration measured so
// far.
var ErrTuneBudget = errors.New("perfmodel: tuning budget exhausted")

// DefaultSearchTrials is the number of model-shortlisted configurations
// the search policy measures empirically.
const DefaultSearchTrials = 6

// Trial records one empirical measurement of the search.
type Trial struct {
	Config  ExecConfig
	Seconds float64
}

// tuneGroup is the qualitative half of a configuration: the
// communication pattern and whether it time-tiles. The empirical search
// decides the group first, then refines the quantitative knobs (workers,
// tile rows, exact interval) within it.
type tuneGroup struct {
	mode  halo.Mode
	tiled bool
}

func groupOf(c ExecConfig) tuneGroup { return tuneGroup{c.Mode, c.TimeTile > 1} }

// groupHeads returns the model's top-ranked candidate of every group, in
// rank order.
func groupHeads(plan []ExecConfig) []ExecConfig {
	seen := map[tuneGroup]bool{}
	var heads []ExecConfig
	for _, c := range plan {
		if g := groupOf(c); !seen[g] {
			seen[g] = true
			heads = append(heads, c)
		}
	}
	return heads
}

// Tune is the bounded empirical search, in two phases. Phase 1 measures
// the model's top candidate of every qualitatively distinct group —
// (halo mode, deep-tiled or not) — so the communication patterns and the
// exchange-interval axis are always spanned even when the cost model
// misranks a whole mode. Phase 2 spends up to `trials` further
// measurements refining the quantitative knobs (workers, tile rows, the
// exact interval) within the winning group, in model-rank order. The
// measure callback is expected to time a few real timesteps of the live
// simulation — sound because every candidate is bit-exact — and may
// return ErrTuneBudget to stop the search; the best measurement so far
// (or the model's top choice, if nothing was measured) wins.
func Tune(h Host, p OpProfile, trials int, measure func(ExecConfig) (float64, error)) (ExecConfig, []Trial, error) {
	plan := Plan(h, p)
	if len(plan) == 0 {
		return ExecConfig{}, nil, errors.New("perfmodel: empty candidate space")
	}
	if trials <= 0 {
		trials = DefaultSearchTrials
	}
	var log []Trial
	run := func(cands []ExecConfig) (bool, error) {
		for _, cfg := range cands {
			s, err := measure(cfg)
			if errors.Is(err, ErrTuneBudget) {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			log = append(log, Trial{Config: cfg, Seconds: s})
		}
		return true, nil
	}
	pickBest := func() (Trial, bool) {
		ok := false
		var best Trial
		for _, t := range log {
			if math.IsNaN(t.Seconds) {
				continue
			}
			if !ok || t.Seconds < best.Seconds {
				best, ok = t, true
			}
		}
		return best, ok
	}

	// Phase 1: one trial per group.
	if _, err := run(groupHeads(plan)); err != nil {
		return ExecConfig{}, log, err
	}
	best, ok := pickBest()
	if !ok {
		return plan[0], log, nil
	}
	// Phase 2: refine within the winning group.
	winner := groupOf(best.Config)
	var refine []ExecConfig
	for _, c := range plan {
		if groupOf(c) != winner || c == best.Config {
			continue
		}
		refine = append(refine, c)
		if len(refine) >= trials {
			break
		}
	}
	if _, err := run(refine); err != nil {
		return ExecConfig{}, log, err
	}
	best, _ = pickBest()
	return best.Config, log, nil
}
