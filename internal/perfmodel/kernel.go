package perfmodel

// KernelChar characterises one wave kernel at one space order — everything
// the analytic model needs, derived from the *actual compiled equations*
// (not hand-entered constants). Build one with perfreport.Characterize,
// which runs a probe model through the full compiler pipeline.
type KernelChar struct {
	// Name is the propagator name ("acoustic", "tti", ...).
	Name string
	// SO is the space order of the discretisation.
	SO int
	// FlopsPerPoint is the per-gridpoint flop cost summed over clusters.
	FlopsPerPoint float64
	// StreamsPerPoint counts the distinct (field, timeOffset) data streams
	// read or written per point; bytes/point = 4*streams under perfect
	// neighbour reuse.
	StreamsPerPoint float64
	// HaloStreams is the number of (field, timeOffset) halo exchanges per
	// timestep (after the drop/hoist/merge passes).
	HaloStreams int
	// HaloWidth is the exchanged ghost width (= space order).
	HaloWidth int
	// WorkingSetFields is the paper's per-model field count.
	WorkingSetFields int
}

// BytesPerPoint returns the modelled DRAM traffic per grid point update.
func (k KernelChar) BytesPerPoint() float64 { return 4 * k.StreamsPerPoint }

// OperationalIntensity returns flops per DRAM byte.
func (k KernelChar) OperationalIntensity() float64 {
	return k.FlopsPerPoint / k.BytesPerPoint()
}
