package perfmodel

import (
	"fmt"

	"devigo/internal/core"
	"devigo/internal/propagators"
)

// KernelChar characterises one wave kernel at one space order — everything
// the analytic model needs, derived from the *actual compiled equations*
// (not hand-entered constants).
type KernelChar struct {
	Name string
	SO   int
	// FlopsPerPoint is the per-gridpoint flop cost summed over clusters.
	FlopsPerPoint float64
	// StreamsPerPoint counts the distinct (field, timeOffset) data streams
	// read or written per point; bytes/point = 4*streams under perfect
	// neighbour reuse.
	StreamsPerPoint float64
	// HaloStreams is the number of (field, timeOffset) halo exchanges per
	// timestep (after the drop/hoist/merge passes).
	HaloStreams int
	// HaloWidth is the exchanged ghost width (= space order).
	HaloWidth int
	// WorkingSetFields is the paper's per-model field count.
	WorkingSetFields int
}

// BytesPerPoint returns the modelled DRAM traffic per grid point update.
func (k KernelChar) BytesPerPoint() float64 { return 4 * k.StreamsPerPoint }

// OperationalIntensity returns flops per DRAM byte.
func (k KernelChar) OperationalIntensity() float64 {
	return k.FlopsPerPoint / k.BytesPerPoint()
}

// Characterize builds the model on a tiny probe grid (per-point stencil
// characteristics are grid-size independent), runs it through the full
// compiler pipeline — CIRE, invariant hoisting, CSE — and extracts the
// counters of the *generated* code.
func Characterize(modelName string, so int) (KernelChar, error) {
	probe := 4 * so // comfortably larger than any stencil radius
	cfg := propagators.Config{
		Shape:      []int{probe, probe, probe},
		SpaceOrder: so,
		NBL:        0,
		Velocity:   1.5,
	}
	m, err := propagators.Build(modelName, cfg)
	if err != nil {
		return KernelChar{}, fmt.Errorf("perfmodel: %w", err)
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: modelName})
	if err != nil {
		return KernelChar{}, err
	}
	return KernelChar{
		Name:             modelName,
		SO:               so,
		HaloWidth:        so,
		WorkingSetFields: m.WorkingSetFields,
		FlopsPerPoint:    float64(op.FlopsPerPointOptimized()),
		StreamsPerPoint:  float64(op.StreamCount()),
		HaloStreams:      op.HaloStreamCount(),
	}, nil
}
