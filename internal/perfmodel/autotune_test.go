package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"devigo/internal/halo"
)

func serialProfile(rows int) OpProfile {
	return OpProfile{
		LocalShape:      []int{rows, rows},
		InstrsPerPoint:  40,
		StreamsPerPoint: 4,
		Ranks:           1,
		MaxWorkers:      8,
		Mode:            halo.ModeNone,
	}
}

func dmpProfile(rows int) OpProfile {
	p := serialProfile(rows)
	p.Ranks = 4
	p.Mode = halo.ModeDiagonal
	p.HaloStreams = 1
	p.HaloWidth = 4
	return p
}

func TestCandidatesSerialHaveSingleMode(t *testing.T) {
	for _, c := range Candidates(serialProfile(128)) {
		if c.Mode != halo.ModeNone {
			t.Fatalf("serial candidate has mode %v", c.Mode)
		}
	}
}

func TestCandidatesDistributedCoverAllModes(t *testing.T) {
	seen := map[halo.Mode]bool{}
	for _, c := range Candidates(dmpProfile(128)) {
		seen[c.Mode] = true
	}
	for _, m := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
		if !seen[m] {
			t.Errorf("mode %v missing from distributed candidates", m)
		}
	}
}

func TestCandidatesRespectForcedKnobs(t *testing.T) {
	p := serialProfile(128)
	p.ForcedWorkers = 3
	p.ForcedTileRows = 11
	for _, c := range Candidates(p) {
		if c.Workers != 3 || c.TileRows != 11 {
			t.Fatalf("forced knobs not honoured: %v", c)
		}
	}
}

func TestCandidatesWorkersBoundedByRowsAndCap(t *testing.T) {
	p := serialProfile(2) // only 2 outer rows
	for _, c := range Candidates(p) {
		if c.Workers > 2 {
			t.Errorf("worker count %d exceeds row count", c.Workers)
		}
		if c.TileRows > 2 {
			t.Errorf("tile rows %d exceeds row count", c.TileRows)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	h := DefaultHost()
	p := dmpProfile(96)
	a, b := Plan(h, p), Plan(h, p)
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlanPrefersParallelOnLargeSerialGrids(t *testing.T) {
	h := DefaultHost()
	big := Plan(h, serialProfile(1024))
	if big[0].Workers < 2 {
		t.Errorf("1024^2 grid on 8 cores should plan parallel execution, got %v", big[0])
	}
	tiny := Plan(h, serialProfile(8))
	if tiny[0].Workers != 1 {
		t.Errorf("8^2 grid should not pay worker-pool overhead, got %v", tiny[0])
	}
}

func TestPredictFullModeBenefitsFromOverlap(t *testing.T) {
	// With communication dominating, full mode's overlap must beat the
	// synchronous diagonal pattern under the model.
	h := DefaultHost()
	h.MsgLatency = 1e-3 // force a comm-bound regime
	p := dmpProfile(256)
	diag := h.Predict(p, ExecConfig{Mode: halo.ModeDiagonal, Workers: 1, TileRows: 8})
	full := h.Predict(p, ExecConfig{Mode: halo.ModeFull, Workers: 1, TileRows: 8})
	if full >= diag {
		t.Errorf("comm-bound full (%g) should beat diag (%g)", full, diag)
	}
}

func TestTunePicksMeasuredMinimum(t *testing.T) {
	h := DefaultHost()
	p := serialProfile(128)
	// Synthetic ground truth that disagrees with the model: the *last*
	// configuration the search will measure (a serial plan has a single
	// group, so the measured set is the group head plus
	// DefaultSearchTrials refinements in rank order) is declared fastest.
	// Tune must believe the measurement, not the model.
	plan := Plan(h, p)
	short := 1 + DefaultSearchTrials
	if short > len(plan) {
		short = len(plan)
	}
	target := plan[short-1]
	measure := func(c ExecConfig) (float64, error) {
		if c == target {
			return 0.1, nil
		}
		return 1.0, nil
	}
	cfg, trials, err := Tune(h, p, 0, measure)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != short {
		t.Fatalf("expected %d trials, got %d", short, len(trials))
	}
	if cfg != target {
		t.Fatalf("tune ignored the measured minimum %v, picked %v", target, cfg)
	}
}

func TestTuneSpansGroupsThenRefinesWinner(t *testing.T) {
	// A distributed profile with the k-axis open has six qualitative
	// groups (3 modes x tiled-or-not). Declare a group the model ranks
	// LAST the true winner: phase 1 must still measure it (one head per
	// group), and phase 2 must refine within it.
	h := DefaultHost()
	p := tileProfile()
	plan := Plan(h, p)
	heads := groupHeads(plan)
	if len(heads) != 6 {
		t.Fatalf("expected 6 group heads, got %d (%v)", len(heads), heads)
	}
	target := heads[len(heads)-1]
	measure := func(c ExecConfig) (float64, error) {
		if groupOf(c) == groupOf(target) {
			return 0.1, nil
		}
		return 1.0, nil
	}
	cfg, trials, err := Tune(h, p, 0, measure)
	if err != nil {
		t.Fatal(err)
	}
	if groupOf(cfg) != groupOf(target) {
		t.Fatalf("tune missed the winning group %v, picked %v", target, cfg)
	}
	refined := 0
	for _, tr := range trials[len(heads):] {
		if groupOf(tr.Config) != groupOf(target) {
			t.Errorf("phase-2 trial %v outside the winning group", tr.Config)
		}
		refined++
	}
	if refined == 0 {
		t.Error("no phase-2 refinement trials ran")
	}
}

func TestTuneBudgetExhaustedFallsBackToModel(t *testing.T) {
	h := DefaultHost()
	p := serialProfile(128)
	plan := Plan(h, p)
	cfg, trials, err := Tune(h, p, 0, func(ExecConfig) (float64, error) {
		return 0, ErrTuneBudget
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 0 {
		t.Fatalf("expected no trials, got %v", trials)
	}
	if cfg != plan[0] {
		t.Errorf("budget fallback should be the model's top choice %v, got %v", plan[0], cfg)
	}
}

func TestTunePartialBudgetKeepsBestMeasurement(t *testing.T) {
	h := DefaultHost()
	p := serialProfile(128)
	n := 0
	cfg, trials, err := Tune(h, p, 0, func(c ExecConfig) (float64, error) {
		n++
		if n > 2 {
			return 0, ErrTuneBudget
		}
		return float64(3 - n), nil // second trial is faster
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("expected 2 trials, got %d", len(trials))
	}
	if cfg != trials[1].Config {
		t.Errorf("expected the second (faster) trial %v, got %v", trials[1].Config, cfg)
	}
}

func TestTunePropagatesMeasureErrors(t *testing.T) {
	h := DefaultHost()
	boom := errors.New("boom")
	_, _, err := Tune(h, serialProfile(64), 0, func(ExecConfig) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected measure error to propagate, got %v", err)
	}
}

func TestTrafficConsistency(t *testing.T) {
	// The scenario model and the autotuner share halo.Traffic; sanity-check
	// the shapes here so a regression surfaces in this package too.
	local := []int{64, 64, 64}
	mb, bb := halo.Traffic(halo.ModeBasic, local, 4)
	md, bd := halo.Traffic(halo.ModeDiagonal, local, 4)
	if mb != 6 || md != 26 {
		t.Errorf("3-D message counts: basic=%d diag=%d, want 6/26", mb, md)
	}
	if bb != bd {
		t.Errorf("both modes ship the same shell: %g vs %g", bb, bd)
	}
	if bb <= 0 {
		t.Errorf("shell bytes must be positive, got %g", bb)
	}
	if m, b := halo.Traffic(halo.ModeNone, local, 4); m != 0 || b != 0 {
		t.Errorf("mode none must be free, got %d msgs %g bytes", m, b)
	}
}

func TestExecConfigString(t *testing.T) {
	c := ExecConfig{Mode: halo.ModeFull, Workers: 4, TileRows: 16}
	if got, want := c.String(), "full/w4/t16"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if fmt.Sprint(c) != c.String() {
		t.Error("fmt should use String()")
	}
}

// The engine axis of the roofline: instruction-bound profiles must rank
// native < bytecode < interpreter in predicted step time, while
// bandwidth-bound profiles collapse the gap (the memory leg of the
// two-bound model is engine-independent).
func TestPredictEngineAxis(t *testing.T) {
	h := DefaultHost()
	cfg := ExecConfig{Workers: 1, TileRows: 128}
	p := serialProfile(128) // 40 instr/pt, 4 streams: instruction-bound
	times := map[string]float64{}
	for _, e := range []string{"interpreter", "bytecode", "native"} {
		p.Engine = e
		times[e] = h.Predict(p, cfg)
	}
	if !(times["native"] < times["bytecode"] && times["bytecode"] < times["interpreter"]) {
		t.Fatalf("engine ranking wrong: %v", times)
	}
	if r := times["interpreter"] / times["bytecode"]; r < 3 {
		t.Errorf("interpreter/bytecode predicted ratio %.2f, want >= 3 (matches the measured gap)", r)
	}
	if r := times["bytecode"] / times["native"]; r < 2 {
		t.Errorf("bytecode/native predicted ratio %.2f, want >= 2 (matches the measured gap)", r)
	}

	// Bandwidth-bound: crank streams until the memory bound dominates even
	// the interpreter's instruction cost; all engines then predict equal.
	p.InstrsPerPoint = 1
	p.StreamsPerPoint = 4000
	p.Engine = "native"
	n := h.Predict(p, cfg)
	p.Engine = "bytecode"
	b := h.Predict(p, cfg)
	if n != b {
		t.Errorf("bandwidth-bound profile should be engine-independent: native %v, bytecode %v", n, b)
	}
}

func TestEngineInstrFactorVocabulary(t *testing.T) {
	if f := EngineInstrFactor(""); f != 1.0 {
		t.Errorf("empty engine factor = %v, want 1 (bytecode default)", f)
	}
	if f := EngineInstrFactor("bytecode"); f != 1.0 {
		t.Errorf("bytecode factor = %v, want 1", f)
	}
	if !(EngineInstrFactor("native") < 1.0) {
		t.Error("native factor should be < 1")
	}
	if !(EngineInstrFactor("interpreter") > 1.0) {
		t.Error("interpreter factor should be > 1")
	}
}

// The pool-sync term is a fixed per-launch cost: charged exactly once for
// any multi-worker configuration, never for serial ones. This is the knob
// the operator overrides with the measured dispatch cost of its
// persistent worker pool.
func TestPredictPoolSyncChargedOncePerLaunch(t *testing.T) {
	h := DefaultHost()
	p := serialProfile(1024)
	par := ExecConfig{Workers: 4, TileRows: 8}
	ser := ExecConfig{Workers: 1, TileRows: 8}
	basePar, baseSer := h.Predict(p, par), h.Predict(p, ser)
	h.PoolSync += 0.5
	if got := h.Predict(p, par) - basePar; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PoolSync delta charged %g times, want exactly once", got/0.5)
	}
	if got := h.Predict(p, ser); got != baseSer {
		t.Errorf("serial prediction moved with PoolSync: %g -> %g", baseSer, got)
	}
}

// A prohibitive sync cost must push even large grids back to serial: the
// planner believes the measured dispatch cost, whatever it is.
func TestPlanProhibitivePoolSyncForcesSerial(t *testing.T) {
	h := DefaultHost()
	h.PoolSync = 1.0 // one full second per dispatch
	best := Plan(h, serialProfile(1024))[0]
	if best.Workers != 1 {
		t.Errorf("with PoolSync=1s the plan should be serial, got %v", best)
	}
}

// Bandwidth-bound profiles gain nothing from more workers: the memory leg
// of the roofline is shared across the team, so extra workers only add
// sync cost and the plan must stay serial.
func TestPredictSharedBandwidthCapsScaling(t *testing.T) {
	h := DefaultHost()
	p := serialProfile(1024)
	p.InstrsPerPoint = 1
	p.StreamsPerPoint = 4000
	w1 := h.Predict(p, ExecConfig{Workers: 1, TileRows: 8})
	w8 := h.Predict(p, ExecConfig{Workers: 8, TileRows: 8})
	if w8 <= w1 {
		t.Errorf("bandwidth-bound: 8 workers predicted faster (%g) than serial (%g)", w8, w1)
	}
	if best := Plan(h, p)[0]; best.Workers != 1 {
		t.Errorf("bandwidth-bound plan should be serial, got %v", best)
	}
}
