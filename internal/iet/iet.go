// Package iet implements the Iteration/Expression Tree — the control-flow
// level IR of the devigo compiler (paper Section II). The tree is built
// from an optimized ir.Schedule, carries HaloSpot nodes conveying exchange
// metadata (paper Listing 5), and is lowered per communication mode into
// specialized HaloUpdate/HaloWait call nodes (paper Listing 6) or, for the
// full mode, an overlapped CORE/REMAINDER section.
package iet

import (
	"devigo/internal/halo"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

// Node is an IET tree node.
type Node interface{ isNode() }

// Callable is the kernel entry point.
type Callable struct {
	Name string
	Body []Node
}

// ScalarAssign declares a loop-invariant scalar temporary (r0 = 1/dt ...).
type ScalarAssign struct {
	Name  string
	Value symbolic.Expr
}

// TimeLoop is the sequential stepping loop.
type TimeLoop struct {
	Body []Node
}

// IterationProps tags a loop with the analysis properties the compiler
// derived (paper Listing 5: affine, parallel, vector-dim, sequential).
type IterationProps []string

// LoopNest is a fused, affine, parallel loop nest executing one cluster.
type LoopNest struct {
	Dims    []string
	Props   IterationProps
	Assigns []symbolic.Assignment // per-point CSE temporaries
	Exprs   []symbolic.Eq
	Cluster *ir.Cluster
}

// HaloSpot conveys a required halo update: the analysis-stage node.
type HaloSpot struct {
	Fields []ir.HaloReq
}

// HaloUpdateCall is the lowered exchange-start node.
type HaloUpdateCall struct {
	Fields []ir.HaloReq
	Mode   halo.Mode
	// Async marks overlap-mode updates (Isend/Irecv without wait).
	Async bool
}

// HaloWaitCall completes an asynchronous exchange.
type HaloWaitCall struct {
	Fields []ir.HaloReq
}

// OverlapSection is the full-mode structure: start exchange, compute CORE
// (with MPI_Test progress prods between tiles), wait, compute REMAINDER.
type OverlapSection struct {
	Update    HaloUpdateCall
	Core      LoopNest
	Wait      HaloWaitCall
	Remainder LoopNest
}

// TimeTile is the communication-avoiding time-tiled stepping structure: a
// deep-halo exchange of every pre-tile buffer, then K timestep bodies
// whose ghost shells shrink by the schedule's stride per substep. It
// replaces TimeLoop when the exchange interval exceeds 1: per-step
// HaloSpots disappear because every in-tile read is supplied either by the
// tile-start exchange or by the previous substep's shell.
type TimeTile struct {
	// K is the exchange interval (timesteps per deep exchange).
	K int
	// Update is the tile-start exchange of every pre-tile (field, time
	// offset) buffer at the deep ghost width. Async under the full pattern
	// (overlapped with the first substep's CORE compute).
	Update HaloUpdateCall
	// Body holds the K-fold-executed timestep body (one entry per cluster
	// loop nest, HaloSpots removed).
	Body []Node
}

func (Callable) isNode()       {}
func (ScalarAssign) isNode()   {}
func (TimeLoop) isNode()       {}
func (LoopNest) isNode()       {}
func (HaloSpot) isNode()       {}
func (HaloUpdateCall) isNode() {}
func (HaloWaitCall) isNode()   {}
func (OverlapSection) isNode() {}
func (TimeTile) isNode()       {}

var dimNames = []string{"x", "y", "z"}

// Build constructs the IET from an optimized schedule: invariant hoisting
// and CSE run here (the flop-reduction transformations of the Cluster
// layer feeding the generated code), and HaloSpots are placed where the
// schedule requires exchanges.
func Build(name string, sched *ir.Schedule) Callable {
	var body []Node
	temp := 0
	// Hoisted scalar temporaries shared across all clusters.
	var allExprs []symbolic.Expr
	for _, st := range sched.Steps {
		for _, e := range st.Cluster.Eqs {
			// Flop reduction: factor common coefficients out of the
			// stencil sums before extracting invariants and CSE temps.
			allExprs = append(allExprs, symbolic.FactorCommon(e.RHS))
		}
	}
	invAssigns, rewritten := symbolic.HoistInvariants(allExprs, &temp)
	for _, a := range invAssigns {
		body = append(body, ScalarAssign{Name: a.Name, Value: a.Value})
	}
	if len(sched.Preamble) > 0 {
		body = append(body, HaloSpot{Fields: sched.Preamble})
	}
	var loop TimeLoop
	ri := 0
	for _, st := range sched.Steps {
		if len(st.Halos) > 0 {
			loop.Body = append(loop.Body, HaloSpot{Fields: st.Halos})
		}
		nd := len(st.Cluster.Radius)
		nest := LoopNest{
			Dims:    dimNames[:nd],
			Props:   propsFor(nd),
			Cluster: st.Cluster,
		}
		// Per-cluster CSE over the invariant-hoisted expressions.
		exprs := make([]symbolic.Expr, len(st.Cluster.Eqs))
		for i := range st.Cluster.Eqs {
			exprs[i] = rewritten[ri]
			ri++
		}
		cseAssigns, cseExprs := symbolic.CSE(exprs, &temp)
		nest.Assigns = cseAssigns
		nest.Exprs = make([]symbolic.Eq, len(st.Cluster.Eqs))
		for i, e := range st.Cluster.Eqs {
			nest.Exprs[i] = symbolic.Eq{LHS: e.LHS, RHS: cseExprs[i]}
		}
		loop.Body = append(loop.Body, nest)
	}
	body = append(body, loop)
	return Callable{Name: name, Body: body}
}

func propsFor(nd int) IterationProps {
	props := make(IterationProps, nd)
	for i := range props {
		switch {
		case i == nd-1:
			props[i] = "affine,parallel,vector-dim"
		default:
			props[i] = "affine,parallel"
		}
	}
	return props
}

// LowerHalos rewrites HaloSpot nodes into mode-specific call nodes —
// paper Listing 6. For basic/diagonal the spot becomes a synchronous
// update+wait pair placed where the spot was; for full, the spot fuses
// with the following LoopNest into an OverlapSection.
func LowerHalos(c Callable, mode halo.Mode) Callable {
	c.Body = lowerList(c.Body, mode)
	return c
}

func lowerList(nodes []Node, mode halo.Mode) []Node {
	var out []Node
	for i := 0; i < len(nodes); i++ {
		switch n := nodes[i].(type) {
		case TimeLoop:
			out = append(out, TimeLoop{Body: lowerList(n.Body, mode)})
		case HaloSpot:
			if mode == halo.ModeNone {
				// Serial runs need no exchanges at all.
				continue
			}
			if mode == halo.ModeFull {
				// Fuse with the next LoopNest when possible.
				if i+1 < len(nodes) {
					if nest, ok := nodes[i+1].(LoopNest); ok {
						out = append(out, OverlapSection{
							Update:    HaloUpdateCall{Fields: n.Fields, Mode: mode, Async: true},
							Core:      nest,
							Wait:      HaloWaitCall{Fields: n.Fields},
							Remainder: nest,
						})
						i++
						continue
					}
				}
				// No nest to overlap with: degrade to synchronous.
				out = append(out,
					HaloUpdateCall{Fields: n.Fields, Mode: mode},
					HaloWaitCall{Fields: n.Fields})
				continue
			}
			out = append(out,
				HaloUpdateCall{Fields: n.Fields, Mode: mode},
				HaloWaitCall{Fields: n.Fields})
		default:
			out = append(out, nodes[i])
		}
	}
	return out
}

// LowerTimeTile rewrites the time loop of a built (un-lowered) callable
// into the exchange-interval-k form: the TimeLoop becomes a TimeTile whose
// Update exchanges the tileReqs buffers deep once per k steps, and the
// per-step HaloSpots inside the loop are dropped (their reads are supplied
// by the tile-start exchange and the shrinking shells). HaloSpots outside
// the loop (the hoisted preamble) are lowered synchronously as usual.
func LowerTimeTile(c Callable, mode halo.Mode, k int, tileReqs []ir.HaloReq) Callable {
	var out []Node
	for _, n := range c.Body {
		tl, ok := n.(TimeLoop)
		if !ok {
			out = append(out, lowerList([]Node{n}, mode)...)
			continue
		}
		var body []Node
		for _, b := range tl.Body {
			if _, isSpot := b.(HaloSpot); isSpot {
				continue
			}
			body = append(body, b)
		}
		out = append(out, TimeTile{
			K:      k,
			Update: HaloUpdateCall{Fields: tileReqs, Mode: mode, Async: mode == halo.ModeFull},
			Body:   body,
		})
	}
	c.Body = out
	return c
}

// Walk visits every node depth-first.
func Walk(n Node, fn func(Node)) {
	fn(n)
	switch v := n.(type) {
	case Callable:
		for _, c := range v.Body {
			Walk(c, fn)
		}
	case TimeLoop:
		for _, c := range v.Body {
			Walk(c, fn)
		}
	case TimeTile:
		fn(v.Update)
		for _, c := range v.Body {
			Walk(c, fn)
		}
	case OverlapSection:
		fn(v.Update)
		Walk(v.Core, fn)
		fn(v.Wait)
		Walk(v.Remainder, fn)
	}
}

// CountNodes returns how many nodes satisfy the predicate.
func CountNodes(n Node, pred func(Node) bool) int {
	count := 0
	Walk(n, func(m Node) {
		if pred(m) {
			count++
		}
	})
	return count
}
