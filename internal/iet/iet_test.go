package iet

import (
	"testing"

	"devigo/internal/halo"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

func diffusionSchedule(t *testing.T) *ir.Schedule {
	t.Helper()
	u := &symbolic.FuncRef{Name: "u", NDims: 2, IsTime: true, NumBufs: 2}
	eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(u), 1), RHS: symbolic.Laplace(symbolic.At(u), 2, 2)}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u))
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ir.Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u), RHS: sol}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	isTime := func(string) bool { return true }
	return ir.OptimizeSchedule(ir.BuildSchedule(clusters, 2, isTime), isTime)
}

func TestBuildHoistsInvariants(t *testing.T) {
	tree := Build("Kernel", diffusionSchedule(t))
	assigns := 0
	for _, n := range tree.Body {
		if _, ok := n.(ScalarAssign); ok {
			assigns++
		}
	}
	if assigns < 2 {
		t.Errorf("expected hoisted scalar invariants (1/h_x^2 etc.), got %d", assigns)
	}
	// Exactly one time loop.
	if CountNodes(tree, func(n Node) bool { _, ok := n.(TimeLoop); return ok }) != 1 {
		t.Error("expected one time loop")
	}
	// A HaloSpot precedes the loop nest inside the time loop.
	if CountNodes(tree, func(n Node) bool { _, ok := n.(HaloSpot); return ok }) != 1 {
		t.Error("expected one HaloSpot")
	}
}

func TestLowerHalosBasicProducesUpdateWaitPair(t *testing.T) {
	tree := LowerHalos(Build("Kernel", diffusionSchedule(t)), halo.ModeBasic)
	if CountNodes(tree, func(n Node) bool { _, ok := n.(HaloSpot); return ok }) != 0 {
		t.Error("HaloSpots must be consumed by lowering")
	}
	ups := CountNodes(tree, func(n Node) bool { _, ok := n.(HaloUpdateCall); return ok })
	waits := CountNodes(tree, func(n Node) bool { _, ok := n.(HaloWaitCall); return ok })
	if ups != 1 || waits != 1 {
		t.Errorf("basic lowering: %d updates, %d waits; want 1/1", ups, waits)
	}
}

func TestLowerHalosFullFusesOverlapSection(t *testing.T) {
	tree := LowerHalos(Build("Kernel", diffusionSchedule(t)), halo.ModeFull)
	sections := CountNodes(tree, func(n Node) bool { _, ok := n.(OverlapSection); return ok })
	if sections != 1 {
		t.Fatalf("full lowering: %d overlap sections, want 1", sections)
	}
	// The plain nest must have been absorbed into the section.
	loose := 0
	Walk(tree, func(n Node) {
		if tl, ok := n.(TimeLoop); ok {
			for _, c := range tl.Body {
				if _, isNest := c.(LoopNest); isNest {
					loose++
				}
			}
		}
	})
	if loose != 0 {
		t.Errorf("%d loop nests left outside the overlap section", loose)
	}
}

func TestLowerHalosNoneDropsSpots(t *testing.T) {
	tree := LowerHalos(Build("Kernel", diffusionSchedule(t)), halo.ModeNone)
	n := CountNodes(tree, func(n Node) bool {
		switch n.(type) {
		case HaloSpot, HaloUpdateCall, HaloWaitCall, OverlapSection:
			return true
		}
		return false
	})
	if n != 0 {
		t.Errorf("serial lowering left %d halo nodes", n)
	}
}

func TestPropsAnnotateVectorDim(t *testing.T) {
	tree := Build("Kernel", diffusionSchedule(t))
	found := false
	Walk(tree, func(n Node) {
		nest, ok := n.(LoopNest)
		if !ok {
			return
		}
		if nest.Props[len(nest.Props)-1] != "affine,parallel,vector-dim" {
			t.Errorf("innermost loop props = %v", nest.Props)
		}
		found = true
	})
	if !found {
		t.Fatal("no loop nest in tree")
	}
}

func TestBuildAppliesCSEPerCluster(t *testing.T) {
	// A model with repeated subexpressions should produce per-point CSE
	// temps in the nest.
	// Two equations sharing a compound reciprocal (the solve denominator
	// pattern of damped wave equations): factorisation pulls it to the
	// front of each sum, CSE then shares it across the equations.
	u := &symbolic.FuncRef{Name: "u", NDims: 1, IsTime: true, NumBufs: 2}
	w := &symbolic.FuncRef{Name: "w", NDims: 1, IsTime: true, NumBufs: 2}
	m := &symbolic.FuncRef{Name: "m", NDims: 1}
	denom := symbolic.NewPow(symbolic.NewAdd(symbolic.At(m), symbolic.Int(1)), -1)
	rhs1 := symbolic.NewMul(denom, symbolic.Shifted(u, 0, 1))
	rhs2 := symbolic.NewMul(denom, symbolic.Shifted(w, 0, -1))
	clusters, err := ir.Lower([]symbolic.Eq{
		{LHS: symbolic.ForwardStencil(u), RHS: rhs1},
		{LHS: symbolic.ForwardStencil(w), RHS: rhs2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	isTime := func(name string) bool { return name != "m" }
	sched := ir.OptimizeSchedule(ir.BuildSchedule(clusters, 1, isTime), isTime)
	tree := Build("Kernel", sched)
	cseFound := false
	Walk(tree, func(n Node) {
		if nest, ok := n.(LoopNest); ok && len(nest.Assigns) > 0 {
			cseFound = true
		}
	})
	if !cseFound {
		t.Error("expected per-point CSE temporaries in the loop nest")
	}
}
