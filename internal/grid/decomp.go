package grid

import (
	"fmt"
	"sort"
)

// Decomposition is the partition of a grid over a Cartesian process
// topology. For each dimension it records the split of global indices into
// contiguous per-coordinate chunks.
type Decomposition struct {
	Grid *Grid
	// Topology is the process grid shape (one entry per space dimension);
	// its product equals the communicator size.
	Topology []int
	// starts[d][c] is the first global index owned by topology coordinate c
	// along dimension d; chunk c spans [starts[d][c], starts[d][c+1]).
	starts [][]int
}

// DimsCreate factors nprocs into ndims balanced factors, largest first —
// the behaviour of MPI_Dims_create. It is deterministic.
func DimsCreate(nprocs, ndims int) []int {
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Repeatedly peel the largest prime factor onto the smallest dim.
	rem := nprocs
	var factors []int
	for f := 2; f*f <= rem; f++ {
		for rem%f == 0 {
			factors = append(factors, f)
			rem /= f
		}
	}
	if rem > 1 {
		factors = append(factors, rem)
	}
	// Assign large factors first to the currently-smallest dimension.
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	for _, f := range factors {
		minIdx := 0
		for i := 1; i < ndims; i++ {
			if dims[i] < dims[minIdx] {
				minIdx = i
			}
		}
		dims[minIdx] *= f
	}
	// MPI convention: non-increasing order.
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return dims
}

// NewDecomposition splits the grid over nprocs ranks. topology may be nil
// (DimsCreate is used, mirroring Devito's default) or an explicit process
// grid whose product must equal nprocs (the paper's Grid(..., topology=...)).
func NewDecomposition(g *Grid, nprocs int, topology []int) (*Decomposition, error) {
	nd := g.NDims()
	if topology == nil {
		topology = DimsCreate(nprocs, nd)
	}
	if len(topology) != nd {
		return nil, fmt.Errorf("grid: topology rank %d != grid rank %d", len(topology), nd)
	}
	prod := 1
	for _, t := range topology {
		if t < 1 {
			return nil, fmt.Errorf("grid: topology entries must be positive: %v", topology)
		}
		prod *= t
	}
	if prod != nprocs {
		return nil, fmt.Errorf("grid: topology %v does not tile %d processes", topology, nprocs)
	}
	d := &Decomposition{Grid: g, Topology: append([]int(nil), topology...)}
	d.starts = make([][]int, nd)
	for dim := 0; dim < nd; dim++ {
		n, p := g.Shape[dim], topology[dim]
		if n < p {
			return nil, fmt.Errorf("grid: cannot split %d points over %d processes along dim %d", n, p, dim)
		}
		starts := make([]int, p+1)
		base, rem := n/p, n%p
		pos := 0
		for c := 0; c < p; c++ {
			starts[c] = pos
			size := base
			// Devito/NumPy convention: the remainder is spread over the
			// first `rem` chunks.
			if c < rem {
				size++
			}
			pos += size
		}
		starts[p] = n
		d.starts[dim] = starts
	}
	return d, nil
}

// Coords decodes a rank into topology coordinates (row-major, first
// dimension slowest — MPI_Cart order).
func (d *Decomposition) Coords(rank int) []int {
	nd := len(d.Topology)
	coords := make([]int, nd)
	for dim := nd - 1; dim >= 0; dim-- {
		coords[dim] = rank % d.Topology[dim]
		rank /= d.Topology[dim]
	}
	return coords
}

// Rank encodes topology coordinates into a rank, or -1 if any coordinate is
// out of bounds (non-periodic boundary, MPI_PROC_NULL).
func (d *Decomposition) Rank(coords []int) int {
	rank := 0
	for dim, c := range coords {
		if c < 0 || c >= d.Topology[dim] {
			return -1
		}
		rank = rank*d.Topology[dim] + c
	}
	return rank
}

// NProcs returns the communicator size the decomposition targets.
func (d *Decomposition) NProcs() int {
	n := 1
	for _, t := range d.Topology {
		n *= t
	}
	return n
}

// LocalRange returns the half-open global index range [lo, hi) owned along
// dimension dim by topology coordinate c.
func (d *Decomposition) LocalRange(dim, c int) (lo, hi int) {
	return d.starts[dim][c], d.starts[dim][c+1]
}

// LocalShape returns the owned shape for a rank.
func (d *Decomposition) LocalShape(rank int) []int {
	coords := d.Coords(rank)
	shape := make([]int, len(coords))
	for dim, c := range coords {
		lo, hi := d.LocalRange(dim, c)
		shape[dim] = hi - lo
	}
	return shape
}

// MaxLocalShape returns the largest owned chunk per dimension over all
// topology coordinates — the slowest rank's box. Every rank computes the
// same answer without communication (the decomposition is globally known),
// which lets performance models bound the per-step critical path
// deterministically across a distributed run.
func (d *Decomposition) MaxLocalShape() []int {
	nd := len(d.Topology)
	out := make([]int, nd)
	for dim := 0; dim < nd; dim++ {
		for c := 0; c < d.Topology[dim]; c++ {
			lo, hi := d.LocalRange(dim, c)
			if hi-lo > out[dim] {
				out[dim] = hi - lo
			}
		}
	}
	return out
}

// ShellCaps returns, per dimension, how many grid points exist beyond the
// rank's owned box on the low and high side — the geometric bound on how
// deep a redundant-recompute ghost shell can grow before falling off the
// global domain. A rank at a domain face gets 0 on that side; interior
// ranks get the full remaining extent.
func (d *Decomposition) ShellCaps(rank int) (lo, hi []int) {
	coords := d.Coords(rank)
	nd := len(coords)
	lo = make([]int, nd)
	hi = make([]int, nd)
	for dim, c := range coords {
		l, h := d.LocalRange(dim, c)
		lo[dim] = l
		hi[dim] = d.Grid.Shape[dim] - h
	}
	return lo, hi
}

// TileBox returns the owned-plus-shell box of a rank in global index
// coordinates (half-open) when the ghost shell extends ext[d] points per
// side, clipped at the domain boundary — the shrinking per-substep compute
// box of communication-avoiding time tiling. ext entries must be
// non-negative.
func (d *Decomposition) TileBox(rank int, ext []int) (lo, hi []int) {
	capLo, capHi := d.ShellCaps(rank)
	coords := d.Coords(rank)
	nd := len(coords)
	lo = make([]int, nd)
	hi = make([]int, nd)
	for dim, c := range coords {
		l, h := d.LocalRange(dim, c)
		e := ext[dim]
		el, eh := e, e
		if el > capLo[dim] {
			el = capLo[dim]
		}
		if eh > capHi[dim] {
			eh = capHi[dim]
		}
		lo[dim] = l - el
		hi[dim] = h + eh
	}
	return lo, hi
}

// MinChunk returns the smallest owned extent per dimension over all
// topology coordinates — the limit on how wide a ghost region a one-hop
// nearest-neighbour exchange can fill.
func (d *Decomposition) MinChunk() []int {
	nd := len(d.Topology)
	out := make([]int, nd)
	for dim := 0; dim < nd; dim++ {
		for c := 0; c < d.Topology[dim]; c++ {
			lo, hi := d.LocalRange(dim, c)
			if c == 0 || hi-lo < out[dim] {
				out[dim] = hi - lo
			}
		}
	}
	return out
}

// LocalOrigin returns the global index of the first owned point per
// dimension for a rank.
func (d *Decomposition) LocalOrigin(rank int) []int {
	coords := d.Coords(rank)
	origin := make([]int, len(coords))
	for dim, c := range coords {
		origin[dim], _ = d.LocalRange(dim, c)
	}
	return origin
}

// OwnerCoord returns the topology coordinate owning global index g along
// dimension dim.
func (d *Decomposition) OwnerCoord(dim, g int) int {
	starts := d.starts[dim]
	// Binary search over chunk boundaries.
	lo, hi := 0, len(starts)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if starts[mid] <= g {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OwnerRank returns the rank owning the global point.
func (d *Decomposition) OwnerRank(point []int) int {
	coords := make([]int, len(point))
	for dim, g := range point {
		coords[dim] = d.OwnerCoord(dim, g)
	}
	return d.Rank(coords)
}

// GlobalToLocal converts a global index along dim to the local index on the
// given topology coordinate; ok is false when the point is not owned there.
func (d *Decomposition) GlobalToLocal(dim, c, g int) (int, bool) {
	lo, hi := d.LocalRange(dim, c)
	if g < lo || g >= hi {
		return 0, false
	}
	return g - lo, true
}
