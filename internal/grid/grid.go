// Package grid implements the structured computational grid, its domain
// decomposition over ranks, and the Cartesian process topology — the
// counterparts of Devito's Grid/Distributor objects.
package grid

import (
	"fmt"
)

// Grid describes a structured, uniformly-spaced domain.
type Grid struct {
	// Shape is the number of points per space dimension.
	Shape []int
	// Extent is the physical size per dimension; spacing is derived as
	// Extent[d] / (Shape[d]-1), matching Devito.
	Extent []float64
}

// New creates a grid, validating shape/extent agreement. A nil extent
// defaults to unit spacing.
func New(shape []int, extent []float64) (*Grid, error) {
	if len(shape) == 0 || len(shape) > 3 {
		return nil, fmt.Errorf("grid: unsupported dimensionality %d", len(shape))
	}
	for _, s := range shape {
		if s < 1 {
			return nil, fmt.Errorf("grid: shape entries must be positive, got %v", shape)
		}
	}
	if extent == nil {
		extent = make([]float64, len(shape))
		for d := range extent {
			extent[d] = float64(shape[d] - 1)
		}
	}
	if len(extent) != len(shape) {
		return nil, fmt.Errorf("grid: extent rank %d != shape rank %d", len(extent), len(shape))
	}
	g := &Grid{Shape: append([]int(nil), shape...), Extent: append([]float64(nil), extent...)}
	return g, nil
}

// MustNew is New for tests and examples with known-good arguments.
func MustNew(shape []int, extent []float64) *Grid {
	g, err := New(shape, extent)
	if err != nil {
		panic(err)
	}
	return g
}

// NDims returns the number of space dimensions.
func (g *Grid) NDims() int { return len(g.Shape) }

// Spacing returns the grid spacing along dimension d.
func (g *Grid) Spacing(d int) float64 {
	if g.Shape[d] == 1 {
		return g.Extent[d]
	}
	return g.Extent[d] / float64(g.Shape[d]-1)
}

// Spacings returns all spacings.
func (g *Grid) Spacings() []float64 {
	out := make([]float64, g.NDims())
	for d := range out {
		out[d] = g.Spacing(d)
	}
	return out
}

// Points returns the total number of grid points.
func (g *Grid) Points() int {
	n := 1
	for _, s := range g.Shape {
		n *= s
	}
	return n
}

// SpacingSymbols returns the canonical names bound to each spacing in
// symbolic expressions (h_x, h_y, h_z).
func (g *Grid) SpacingSymbols() []string {
	names := []string{"h_x", "h_y", "h_z"}
	return names[:g.NDims()]
}
