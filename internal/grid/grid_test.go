package grid

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := New([]int{4, 0}, nil); err == nil {
		t.Error("zero extent dim should fail")
	}
	if _, err := New([]int{4, 4}, []float64{1}); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := New([]int{2, 2, 2, 2}, nil); err == nil {
		t.Error("4-D should fail")
	}
}

func TestGridSpacing(t *testing.T) {
	g := MustNew([]int{4, 4}, []float64{2, 2})
	// Paper Listing 1: dx = 2/(nx-1) = 2/3.
	want := 2.0 / 3.0
	if got := g.Spacing(0); got != want {
		t.Errorf("spacing = %g, want %g", got, want)
	}
	if g.Points() != 16 {
		t.Errorf("points = %d, want 16", g.Points())
	}
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{16, 3, []int{4, 2, 2}},
		{8, 3, []int{2, 2, 2}},
		{4, 2, []int{2, 2}},
		{6, 2, []int{3, 2}},
		{1, 3, []int{1, 1, 1}},
		{7, 2, []int{7, 1}},
		{12, 3, []int{3, 2, 2}},
	}
	for _, c := range cases {
		got := DimsCreate(c.n, c.nd)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
		}
	}
}

func TestDecompositionSplitsEvenly(t *testing.T) {
	g := MustNew([]int{10, 7}, nil)
	d, err := NewDecomposition(g, 4, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dim 0: 10 over 2 -> 5,5. Dim 1: 7 over 2 -> 4,3 (remainder first).
	if lo, hi := d.LocalRange(0, 0); lo != 0 || hi != 5 {
		t.Errorf("dim0 chunk0 = [%d,%d), want [0,5)", lo, hi)
	}
	if lo, hi := d.LocalRange(1, 0); lo != 0 || hi != 4 {
		t.Errorf("dim1 chunk0 = [%d,%d), want [0,4)", lo, hi)
	}
	if lo, hi := d.LocalRange(1, 1); lo != 4 || hi != 7 {
		t.Errorf("dim1 chunk1 = [%d,%d), want [4,7)", lo, hi)
	}
}

func TestDecompositionCustomTopologyFromPaper(t *testing.T) {
	// Paper Fig. 2: (4,2,2), (2,2,4) and (4,4,1) are all valid for 16 ranks.
	g := MustNew([]int{64, 64, 64}, nil)
	for _, topo := range [][]int{{4, 2, 2}, {2, 2, 4}, {4, 4, 1}} {
		d, err := NewDecomposition(g, 16, topo)
		if err != nil {
			t.Fatalf("topology %v: %v", topo, err)
		}
		if d.NProcs() != 16 {
			t.Errorf("topology %v: nprocs = %d", topo, d.NProcs())
		}
	}
	if _, err := NewDecomposition(g, 16, []int{4, 4, 2}); err == nil {
		t.Error("topology product mismatch should fail")
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	g := MustNew([]int{32, 32, 32}, nil)
	d, err := NewDecomposition(g, 12, []int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		if got := d.Rank(d.Coords(r)); got != r {
			t.Errorf("rank %d round-trips to %d", r, got)
		}
	}
	if d.Rank([]int{-1, 0, 0}) != -1 {
		t.Error("out-of-bounds coords should map to -1")
	}
	if d.Rank([]int{3, 0, 0}) != -1 {
		t.Error("out-of-bounds coords should map to -1")
	}
}

func TestDecompositionPartitionsExactly(t *testing.T) {
	// Property: local shapes tile the global grid with no gap or overlap.
	f := func(shapeSeed, procSeed uint8) bool {
		nx := int(shapeSeed%29) + 8
		ny := int(shapeSeed%13) + 8
		np := int(procSeed%6) + 1
		g := MustNew([]int{nx, ny}, nil)
		d, err := NewDecomposition(g, np, nil)
		if err != nil {
			return false
		}
		covered := make([][]bool, nx)
		for i := range covered {
			covered[i] = make([]bool, ny)
		}
		for r := 0; r < np; r++ {
			origin := d.LocalOrigin(r)
			shape := d.LocalShape(r)
			for i := 0; i < shape[0]; i++ {
				for j := 0; j < shape[1]; j++ {
					gi, gj := origin[0]+i, origin[1]+j
					if covered[gi][gj] {
						return false // overlap
					}
					covered[gi][gj] = true
				}
			}
		}
		for i := range covered {
			for j := range covered[i] {
				if !covered[i][j] {
					return false // gap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOwnerRankConsistent(t *testing.T) {
	// Property: the rank reported as owner actually contains the point.
	f := func(px, py uint8) bool {
		g := MustNew([]int{40, 30}, nil)
		d, err := NewDecomposition(g, 6, []int{3, 2})
		if err != nil {
			return false
		}
		p := []int{int(px) % 40, int(py) % 30}
		r := d.OwnerRank(p)
		origin := d.LocalOrigin(r)
		shape := d.LocalShape(r)
		for dim := range p {
			if p[dim] < origin[dim] || p[dim] >= origin[dim]+shape[dim] {
				return false
			}
		}
		// Cross-check global->local conversion.
		coords := d.Coords(r)
		for dim := range p {
			loc, ok := d.GlobalToLocal(dim, coords[dim], p[dim])
			if !ok || loc != p[dim]-origin[dim] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecompositionTooManyProcs(t *testing.T) {
	g := MustNew([]int{4, 4}, nil)
	if _, err := NewDecomposition(g, 8, []int{8, 1}); err == nil {
		t.Error("splitting 4 points over 8 procs should fail")
	}
}
