package grid

import "testing"

// ShellCaps at domain edges: a face rank has zero room on its outer side,
// an interior rank the remaining extent.
func TestShellCapsAtDomainEdges(t *testing.T) {
	g := MustNew([]int{12, 9}, nil)
	d, err := NewDecomposition(g, 6, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 = coords (0,0): owned [0,4)x[0,5).
	lo, hi := d.ShellCaps(0)
	if lo[0] != 0 || lo[1] != 0 {
		t.Errorf("rank 0 low caps = %v, want [0 0]", lo)
	}
	if hi[0] != 8 || hi[1] != 4 {
		t.Errorf("rank 0 high caps = %v, want [8 4]", hi)
	}
	// Rank 3 = coords (1,1): owned [4,8)x[5,9) — interior along dim 0,
	// high face along dim 1.
	lo, hi = d.ShellCaps(3)
	if lo[0] != 4 || lo[1] != 5 {
		t.Errorf("rank 3 low caps = %v, want [4 5]", lo)
	}
	if hi[0] != 4 || hi[1] != 0 {
		t.Errorf("rank 3 high caps = %v, want [4 0]", hi)
	}
}

// TileBox clips the shell at the global boundary and extends it into
// neighbours elsewhere — the shrinking owned-plus-shell recompute box.
func TestTileBoxClipsAtEdges(t *testing.T) {
	g := MustNew([]int{12, 9}, nil)
	d, err := NewDecomposition(g, 6, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 = coords (1,0): owned [4,8)x[0,5).
	lo, hi := d.TileBox(2, []int{3, 3})
	if lo[0] != 1 || hi[0] != 11 {
		t.Errorf("rank 2 dim0 tile box = [%d,%d), want [1,11)", lo[0], hi[0])
	}
	if lo[1] != 0 || hi[1] != 8 {
		t.Errorf("rank 2 dim1 tile box = [%d,%d), want [0,8)", lo[1], hi[1])
	}
	// Zero extension returns the owned box.
	lo, hi = d.TileBox(2, []int{0, 0})
	if lo[0] != 4 || hi[0] != 8 || lo[1] != 0 || hi[1] != 5 {
		t.Errorf("zero-ext tile box = [%v,%v), want owned [4,8)x[0,5)", lo, hi)
	}
	// A huge extension clips to the whole grid.
	lo, hi = d.TileBox(2, []int{100, 100})
	if lo[0] != 0 || hi[0] != 12 || lo[1] != 0 || hi[1] != 9 {
		t.Errorf("huge-ext tile box = [%v,%v), want the full grid", lo, hi)
	}
}

// Prime rank counts produce 1-wide topologies whose uneven chunks must
// still yield consistent shell geometry and MinChunk figures.
func TestShellGeometryPrimeRanks(t *testing.T) {
	g := MustNew([]int{29, 8}, nil)
	d, err := NewDecomposition(g, 7, nil) // DimsCreate(7,2) = [7,1]
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology[0] != 7 || d.Topology[1] != 1 {
		t.Fatalf("topology = %v, want [7 1]", d.Topology)
	}
	// 29 over 7: chunks 5,4,4,4,4,4,4.
	mc := d.MinChunk()
	if mc[0] != 4 || mc[1] != 8 {
		t.Errorf("MinChunk = %v, want [4 8]", mc)
	}
	// Shell caps must tile: lo + owned + hi == global extent on every rank,
	// and every TileBox stays inside the grid.
	for r := 0; r < 7; r++ {
		lo, hi := d.ShellCaps(r)
		shape := d.LocalShape(r)
		for dim := 0; dim < 2; dim++ {
			if lo[dim]+shape[dim]+hi[dim] != g.Shape[dim] {
				t.Errorf("rank %d dim %d: caps %d+%d+%d != %d", r, dim, lo[dim], shape[dim], hi[dim], g.Shape[dim])
			}
		}
		blo, bhi := d.TileBox(r, []int{3, 3})
		for dim := 0; dim < 2; dim++ {
			if blo[dim] < 0 || bhi[dim] > g.Shape[dim] || blo[dim] >= bhi[dim] {
				t.Errorf("rank %d dim %d: tile box [%d,%d) escapes grid [0,%d)", r, dim, blo[dim], bhi[dim], g.Shape[dim])
			}
		}
	}
}

// Neighbouring ranks' shrinking boxes at a given extension overlap by
// exactly twice the extension along the shared face — the redundancy that
// replaces communication.
func TestTileBoxOverlapIsRedundantRegion(t *testing.T) {
	g := MustNew([]int{24}, nil)
	d, err := NewDecomposition(g, 3, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	const ext = 2
	for r := 0; r < 2; r++ {
		_, hiR := d.TileBox(r, []int{ext})
		loN, _ := d.TileBox(r+1, []int{ext})
		if hiR[0]-loN[0] != 2*ext {
			t.Errorf("ranks %d/%d overlap = %d, want %d", r, r+1, hiR[0]-loN[0], 2*ext)
		}
	}
}
