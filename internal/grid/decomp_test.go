package grid

import (
	"reflect"
	"testing"
)

// Direct coverage for DimsCreate/NewDecomposition on 3-D shapes and prime
// rank counts — configurations the propagator suites only reach at 4
// ranks. Prime counts force degenerate topologies (p x 1 x 1) and uneven
// remainder spreading, the classic off-by-one territory.

func TestDimsCreatePrimeCounts(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{2, 3, []int{2, 1, 1}},
		{3, 3, []int{3, 1, 1}},
		{5, 3, []int{5, 1, 1}},
		{7, 3, []int{7, 1, 1}},
		{11, 2, []int{11, 1}},
		{13, 3, []int{13, 1, 1}},
		{5, 1, []int{5}},
		// Semiprimes of distinct primes split across dims, largest first.
		{15, 3, []int{5, 3, 1}},
		{35, 2, []int{7, 5}},
		{30, 3, []int{5, 3, 2}},
	}
	for _, c := range cases {
		got := DimsCreate(c.n, c.nd)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
		}
	}
}

func TestDimsCreateInvariants(t *testing.T) {
	for n := 1; n <= 64; n++ {
		for nd := 1; nd <= 4; nd++ {
			dims := DimsCreate(n, nd)
			if len(dims) != nd {
				t.Fatalf("DimsCreate(%d,%d) rank %d", n, nd, len(dims))
			}
			prod := 1
			for i, d := range dims {
				prod *= d
				if d < 1 {
					t.Fatalf("DimsCreate(%d,%d) = %v: non-positive entry", n, nd, dims)
				}
				if i > 0 && dims[i-1] < d {
					t.Fatalf("DimsCreate(%d,%d) = %v: not non-increasing", n, nd, dims)
				}
			}
			if prod != n {
				t.Fatalf("DimsCreate(%d,%d) = %v: product %d", n, nd, dims, prod)
			}
			// Deterministic: a second call yields the identical factoring.
			if again := DimsCreate(n, nd); !reflect.DeepEqual(again, dims) {
				t.Fatalf("DimsCreate(%d,%d) nondeterministic: %v vs %v", n, nd, dims, again)
			}
		}
	}
}

// TestDecompose3DPrimeRanks checks exact tiling of 3-D grids over prime
// rank counts with the default (DimsCreate) topology: every global point
// is owned by exactly one rank, local shapes/origins agree with the
// per-dimension ranges, and OwnerRank inverts the assignment.
func TestDecompose3DPrimeRanks(t *testing.T) {
	shapes := [][]int{{17, 13, 11}, {23, 8, 9}, {11, 11, 11}}
	for _, shape := range shapes {
		for _, nprocs := range []int{2, 3, 5, 7, 11} {
			g := MustNew(shape, nil)
			d, err := NewDecomposition(g, nprocs, nil)
			if err != nil {
				t.Fatalf("shape %v nprocs %d: %v", shape, nprocs, err)
			}
			if d.NProcs() != nprocs {
				t.Fatalf("shape %v: NProcs %d != %d", shape, d.NProcs(), nprocs)
			}
			// Per-rank geometry consistency.
			total := 0
			for r := 0; r < nprocs; r++ {
				ls, org := d.LocalShape(r), d.LocalOrigin(r)
				n := 1
				for dim := range shape {
					if ls[dim] <= 0 {
						t.Fatalf("shape %v nprocs %d rank %d: empty dim %d", shape, nprocs, r, dim)
					}
					n *= ls[dim]
					lo, hi := d.LocalRange(dim, d.Coords(r)[dim])
					if org[dim] != lo || org[dim]+ls[dim] != hi {
						t.Fatalf("shape %v nprocs %d rank %d dim %d: origin/shape (%d,%d) vs range [%d,%d)",
							shape, nprocs, r, dim, org[dim], ls[dim], lo, hi)
					}
					// Balanced split: chunks differ by at most one point.
					if hi-lo < shape[dim]/d.Topology[dim] || hi-lo > shape[dim]/d.Topology[dim]+1 {
						t.Fatalf("shape %v nprocs %d dim %d: unbalanced chunk [%d,%d)",
							shape, nprocs, dim, lo, hi)
					}
				}
				total += n
			}
			want := shape[0] * shape[1] * shape[2]
			if total != want {
				t.Fatalf("shape %v nprocs %d: ranks own %d points, grid has %d", shape, nprocs, total, want)
			}
			// Exhaustive ownership: OwnerRank and GlobalToLocal agree.
			for x := 0; x < shape[0]; x++ {
				for y := 0; y < shape[1]; y++ {
					for z := 0; z < shape[2]; z++ {
						r := d.OwnerRank([]int{x, y, z})
						if r < 0 || r >= nprocs {
							t.Fatalf("point (%d,%d,%d): owner %d out of range", x, y, z, r)
						}
						coords := d.Coords(r)
						for dim, gidx := range []int{x, y, z} {
							li, ok := d.GlobalToLocal(dim, coords[dim], gidx)
							if !ok {
								t.Fatalf("point (%d,%d,%d): owner %d does not own dim %d", x, y, z, r, dim)
							}
							if li < 0 || li >= d.LocalShape(r)[dim] {
								t.Fatalf("point (%d,%d,%d): local index %d outside shape", x, y, z, li)
							}
						}
					}
				}
			}
		}
	}
}

// TestDecomposeRejectsOverSplit: more ranks than points along a dimension
// must fail loudly, including via prime default topologies.
func TestDecomposeRejectsOverSplit(t *testing.T) {
	g := MustNew([]int{5, 64, 64}, nil)
	if _, err := NewDecomposition(g, 7, []int{7, 1, 1}); err == nil {
		t.Error("splitting 5 points over 7 ranks should fail")
	}
	// The default topology puts the largest factor first, which the
	// 5-point dimension cannot hold either.
	if _, err := NewDecomposition(g, 7, nil); err == nil {
		t.Error("default topology over-splitting should fail")
	}
}
