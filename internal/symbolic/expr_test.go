package symbolic

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func ratSlice(vals ...int64) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		out[i] = big.NewRat(v, 1)
	}
	return out
}

func TestFDWeightsSecondDerivativeOrder2(t *testing.T) {
	w, err := FDWeights(2, ratSlice(-1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "-2", "1"}
	for i, s := range want {
		if w[i].RatString() != s {
			t.Errorf("weight[%d] = %s, want %s", i, w[i].RatString(), s)
		}
	}
}

func TestFDWeightsSecondDerivativeOrder4(t *testing.T) {
	w, err := FDWeights(2, ratSlice(-2, -1, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"-1/12", "4/3", "-5/2", "4/3", "-1/12"}
	for i, s := range want {
		if w[i].RatString() != s {
			t.Errorf("weight[%d] = %s, want %s", i, w[i].RatString(), s)
		}
	}
}

func TestFDWeightsFirstDerivativeOrder2(t *testing.T) {
	w, err := FDWeights(1, ratSlice(-1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"-1/2", "0", "1/2"}
	for i, s := range want {
		if w[i].RatString() != s {
			t.Errorf("weight[%d] = %s, want %s", i, w[i].RatString(), s)
		}
	}
}

func TestFDWeightsStaggeredFirstDerivative(t *testing.T) {
	// Forward staggered, order 2: points at -1/2, +1/2 -> weights -1, 1.
	offs := StaggeredOffsets(2, +1)
	w, err := FDWeights(1, offs)
	if err != nil {
		t.Fatal(err)
	}
	if w[0].RatString() != "-1" || w[1].RatString() != "1" {
		t.Errorf("staggered order-2 weights = %v, want [-1 1]", w)
	}
	// Order 4: classic (1/24, -9/8, 9/8, -1/24).
	offs = StaggeredOffsets(4, +1)
	w, err = FDWeights(1, offs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1/24", "-9/8", "9/8", "-1/24"}
	for i, s := range want {
		if w[i].RatString() != s {
			t.Errorf("staggered order-4 weight[%d] = %s, want %s", i, w[i].RatString(), s)
		}
	}
}

func TestFDWeightsSumToZeroForDerivatives(t *testing.T) {
	// Derivative weights of any order >= 1 must annihilate constants.
	for _, acc := range []int{2, 4, 8, 12, 16} {
		for _, m := range []int{1, 2} {
			offs := CentralOffsets(m, acc)
			w, err := FDWeights(m, offs)
			if err != nil {
				t.Fatalf("acc %d m %d: %v", acc, m, err)
			}
			sum := new(big.Rat)
			for _, x := range w {
				sum.Add(sum, x)
			}
			if sum.Sign() != 0 {
				t.Errorf("acc %d m %d: weights sum to %s, want 0", acc, m, sum.RatString())
			}
		}
	}
}

func TestFDWeightsNumericalAccuracy(t *testing.T) {
	// d2/dx2 of sin(x) at x0 should converge at the advertised order.
	x0 := 0.7
	exact := -math.Sin(x0)
	errAt := func(acc int, h float64) float64 {
		offs := CentralOffsets(2, acc)
		w, err := FDWeights(2, offs)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i, o := range offs {
			of, _ := o.Float64()
			wf, _ := w[i].Float64()
			sum += wf * math.Sin(x0+of*h)
		}
		return math.Abs(sum/(h*h) - exact)
	}
	for _, acc := range []int{2, 4} {
		e1 := errAt(acc, 0.1)
		e2 := errAt(acc, 0.05)
		order := math.Log2(e1 / e2)
		if order < float64(acc)-0.7 {
			t.Errorf("acc %d: measured convergence order %.2f too low (errors %g -> %g)", acc, order, e1, e2)
		}
	}
	// High orders reach the float64 noise floor at these h; just require a
	// tiny absolute error rather than a measurable convergence rate.
	if e := errAt(8, 0.1); e > 1e-10 {
		t.Errorf("acc 8 error %g too large", e)
	}
}

func TestCollectMergesLikeTerms(t *testing.T) {
	a := S("a")
	b := S("b")
	// 2a + 3a + b - b = 5a
	e := NewAdd(NewMul(Int(2), a), NewMul(Int(3), a), b, Neg(b))
	got := Collect(e)
	want := NewMul(Int(5), a)
	if got.String() != want.String() {
		t.Errorf("Collect = %s, want %s", got, want)
	}
}

func TestCollectDistributes(t *testing.T) {
	a, b, c := S("a"), S("b"), S("c")
	e := NewMul(NewAdd(a, b), c)
	got := Collect(e)
	want := Collect(NewAdd(NewMul(a, c), NewMul(b, c)))
	if got.String() != want.String() {
		t.Errorf("Collect((a+b)c) = %s, want %s", got, want)
	}
}

func TestSolveLinear(t *testing.T) {
	// 3x + 6 = 0 -> x = -2
	x := S("x")
	sol, err := Solve(Eq{LHS: NewAdd(NewMul(Int(3), x), Int(6)), RHS: Int(0)}, x)
	if err != nil {
		t.Fatal(err)
	}
	if sol.String() != "-2" {
		t.Errorf("Solve = %s, want -2", sol)
	}
}

func TestSolveNonLinearFails(t *testing.T) {
	x := S("x")
	_, err := Solve(Eq{LHS: NewMul(x, x), RHS: Int(4)}, x)
	if err == nil {
		t.Fatal("expected error solving quadratic")
	}
}

func TestSolveMissingTargetFails(t *testing.T) {
	x, y := S("x"), S("y")
	_, err := Solve(Eq{LHS: y, RHS: Int(4)}, x)
	if err == nil {
		t.Fatal("expected error when target absent")
	}
}

func TestSolveDiffusionUpdate(t *testing.T) {
	// Paper Listing 1: Eq(u.dt, u.laplace) solved for u.forward in 2D,
	// SDO 2, time order 1 (forward Euler). The update must be
	//   u[t+1] = u[t] + dt*( (u[t,x-1]+u[t,x+1]-2u)/h_x^2 + ... ).
	u := &FuncRef{Name: "u", NDims: 2, IsTime: true, NumBufs: 2}
	eq := Eq{LHS: Dt(At(u), 1), RHS: Laplace(At(u), 2, 2)}
	fwd := ForwardStencil(u)
	sol, err := Solve(eq, fwd)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both sides numerically on a synthetic field.
	field := func(fun *FuncRef, timeOff int, off []int) float64 {
		// A smooth function of the offsets; t contributes too.
		return 1.3*float64(off[0]) + 0.7*float64(off[1])*float64(off[1]) + 0.1*float64(timeOff)
	}
	env := &Env{Syms: map[string]float64{"dt": 0.01, "h_x": 0.5, "h_y": 0.5}, Field: field}
	got := Eval(sol, env)
	// Hand-computed forward-Euler update.
	lap := (field(u, 0, []int{-1, 0}) - 2*field(u, 0, []int{0, 0}) + field(u, 0, []int{1, 0})) / 0.25
	lap += (field(u, 0, []int{0, -1}) - 2*field(u, 0, []int{0, 0}) + field(u, 0, []int{0, 1})) / 0.25
	want := field(u, 0, []int{0, 0}) + 0.01*lap
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("diffusion update = %g, want %g", got, want)
	}
}

func TestStencilRadius(t *testing.T) {
	u := &FuncRef{Name: "u", NDims: 3, IsTime: true, NumBufs: 3}
	e := ExpandDerivatives(Laplace(At(u), 3, 8))
	r := StencilRadius(e, 3)
	for d, got := range r {
		if got != 4 {
			t.Errorf("radius[%d] = %d, want 4 for SDO 8", d, got)
		}
	}
}

func TestExpandSecondTimeDerivative(t *testing.T) {
	u := &FuncRef{Name: "u", NDims: 1, IsTime: true, NumBufs: 3}
	e := ExpandDerivatives(Dt2(At(u), 2))
	// (u[t-1] - 2u[t] + u[t+1]) / dt^2
	field := func(fun *FuncRef, timeOff int, off []int) float64 {
		return float64(timeOff * timeOff) // f(t)=t^2 -> f'' = 2
	}
	env := &Env{Syms: map[string]float64{"dt": 1}, Field: field}
	if got := Eval(e, env); math.Abs(got-2) > 1e-12 {
		t.Errorf("dt2 of t^2 = %g, want 2", got)
	}
}

func TestHoistInvariants(t *testing.T) {
	u := &FuncRef{Name: "u", NDims: 1, IsTime: true, NumBufs: 2}
	hx := S("h_x")
	inv := NewPow(hx, -2)
	e := NewAdd(NewMul(inv, At(u)), NewMul(inv, ForwardStencil(u)))
	n := 0
	assigns, out := HoistInvariants([]Expr{e}, &n)
	if len(assigns) != 1 {
		t.Fatalf("want 1 hoisted invariant, got %d", len(assigns))
	}
	if assigns[0].Name != "r0" {
		t.Errorf("temp name = %s, want r0", assigns[0].Name)
	}
	// The rewritten expression must reference r0 and contain no Pow.
	hasPow := false
	Walk(out[0], func(x Expr) bool {
		if _, ok := x.(Pow); ok {
			hasPow = true
		}
		return true
	})
	if hasPow {
		t.Error("invariant Pow not hoisted")
	}
}

func TestCSEExtractsRepeats(t *testing.T) {
	a, b := S("a"), S("b")
	sub := NewMul(a, b, Int(2))
	e1 := NewAdd(sub, Int(1))
	e2 := NewAdd(sub, Int(5))
	n := 0
	assigns, out := CSE([]Expr{e1, e2}, &n)
	if len(assigns) != 1 {
		t.Fatalf("want 1 CSE temp, got %d (%v)", len(assigns), assigns)
	}
	for _, o := range out {
		found := false
		Walk(o, func(x Expr) bool {
			if s, ok := x.(Sym); ok && s.Name == assigns[0].Name {
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("rewritten %s does not use temp", o)
		}
	}
}

func TestCollectPreservesEvaluation(t *testing.T) {
	// Property: Collect(e) evaluates to the same value as e for random
	// polynomial-ish expressions.
	f := func(ai, bi, ci int8, x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		// Clamp magnitudes to keep float comparisons meaningful.
		if math.Abs(x) > 1e3 || math.Abs(y) > 1e3 {
			return true
		}
		a, b, c := int64(ai), int64(bi), int64(ci)
		sx, sy := S("x"), S("y")
		e := NewAdd(
			NewMul(Int(a), sx, sy),
			NewMul(Int(b), sx),
			NewMul(Int(c), sy, sx),
			NewPow(NewAdd(sx, sy), 2),
		)
		env := &Env{Syms: map[string]float64{"x": x, "y": y}}
		v1 := Eval(e, env)
		v2 := Eval(Collect(e), env)
		diff := math.Abs(v1 - v2)
		scale := math.Max(1, math.Max(math.Abs(v1), math.Abs(v2)))
		return diff/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCollectIdempotent(t *testing.T) {
	f := func(ai, bi int8) bool {
		a, b := int64(ai), int64(bi)
		sx, sy := S("x"), S("y")
		e := NewAdd(NewMul(Int(a), sx), NewMul(Int(b), sy), NewMul(sx, sy))
		c1 := Collect(e)
		c2 := Collect(c1)
		return c1.String() == c2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualNormalises(t *testing.T) {
	a, b := S("a"), S("b")
	if !Equal(NewAdd(a, b), NewAdd(b, a)) {
		t.Error("a+b should equal b+a")
	}
	if Equal(NewAdd(a, b), NewAdd(a, a)) {
		t.Error("a+b should not equal a+a")
	}
}

func TestFlopCount(t *testing.T) {
	a, b := S("a"), S("b")
	if got := FlopCount(NewAdd(a, b)); got != 1 {
		t.Errorf("flops(a+b) = %d, want 1", got)
	}
	e := NewMul(Int(2), a, b) // 2 mults
	if got := FlopCount(e); got != 2 {
		t.Errorf("flops(2ab) = %d, want 2", got)
	}
}

func TestAccessString(t *testing.T) {
	u := &FuncRef{Name: "u", NDims: 2, IsTime: true, NumBufs: 3}
	a := Shifted(u, 1, 2, -1)
	if a.String() != "u[t+1,x+2,y-1]" {
		t.Errorf("Access.String = %s", a.String())
	}
}

func TestCentralOffsetsRadius(t *testing.T) {
	for _, tc := range []struct{ m, acc, wantLen int }{
		{1, 2, 3}, {2, 2, 3}, {1, 8, 9}, {2, 8, 9}, {2, 16, 17},
	} {
		offs := CentralOffsets(tc.m, tc.acc)
		if len(offs) != tc.wantLen {
			t.Errorf("CentralOffsets(%d,%d) len = %d, want %d", tc.m, tc.acc, len(offs), tc.wantLen)
		}
	}
}
