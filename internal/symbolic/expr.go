// Package symbolic implements the expression algebra that devigo operators
// are written in: a small computer-algebra system covering exactly the
// subset of SymPy that the Devito compiler relies on — rational arithmetic,
// flattening/collection, linear solves, and finite-difference expansion of
// derivative nodes.
package symbolic

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Expr is a symbolic expression node. Expressions are immutable: every
// transformation returns a new tree.
type Expr interface {
	// String renders a human-readable (and canonical, for identical trees)
	// form of the expression.
	String() string
	// isExpr is a marker to keep the implementing set closed.
	isExpr()
}

// Num is an exact rational constant.
type Num struct {
	Val *big.Rat
}

// Sym is a free scalar symbol such as a grid spacing h_x or the timestep dt.
type Sym struct {
	Name string
}

// Access is a read or write of a discrete function at integer offsets from
// the current iteration point. TimeOff is the offset on the stepping
// dimension (meaningless for time-invariant functions); Off holds one entry
// per space dimension.
type Access struct {
	Fun     *FuncRef
	TimeOff int
	Off     []int
}

// FuncRef identifies a discrete function symbolically. The compiler resolves
// it to storage later; symbolic only needs its name and dimensionality.
type FuncRef struct {
	Name    string
	NDims   int  // number of space dimensions
	IsTime  bool // varies over the stepping dimension
	NumBufs int  // time buffers (time functions only)
	// Stagger records a half-cell shift per space dimension (0 or 1, in
	// units of half spacings). Used by staggered-grid propagators.
	Stagger []int
}

// Add is an n-ary sum.
type Add struct {
	Terms []Expr
}

// Mul is an n-ary product.
type Mul struct {
	Factors []Expr
}

// Pow is base**exp with integer exponent (negative allowed).
type Pow struct {
	Base Expr
	Exp  int
}

// Deriv is an unexpanded derivative of Target with respect to a dimension.
// Dim==-1 denotes the time dimension. FDOrder is the discretisation
// (space/time) order to use when the derivative is expanded to a stencil.
type Deriv struct {
	Target  Expr
	Dim     int
	Order   int // derivative order (1 = first derivative, ...)
	FDOrder int // accuracy order of the finite-difference approximation
	// Side selects a one-sided/staggered expansion: 0 centered, +1 forward
	// half-node, -1 backward half-node (staggered grids).
	Side int
}

func (Num) isExpr()    {}
func (Sym) isExpr()    {}
func (Access) isExpr() {}
func (Add) isExpr()    {}
func (Mul) isExpr()    {}
func (Pow) isExpr()    {}
func (Deriv) isExpr()  {}

// Int returns an exact integer constant.
func Int(v int64) Num { return Num{Val: big.NewRat(v, 1)} }

// Rat returns an exact rational constant p/q.
func Rat(p, q int64) Num { return Num{Val: big.NewRat(p, q)} }

// Float returns a constant from a float64 (exact binary value).
func Float(v float64) Num {
	r := new(big.Rat)
	r.SetFloat64(v)
	return Num{Val: r}
}

// Zero and One are shared constants.
var (
	ZeroExpr = Int(0)
	OneExpr  = Int(1)
)

// S returns a named scalar symbol.
func S(name string) Sym { return Sym{Name: name} }

// String renders the rational as an integer or a/b fraction.
func (n Num) String() string {
	if n.Val.IsInt() {
		return n.Val.Num().String()
	}
	return n.Val.RatString()
}

// String returns the symbol's name.
func (s Sym) String() string { return s.Name }

// String renders the access in u[t+1, x, y] index notation.
func (a Access) String() string {
	var b strings.Builder
	b.WriteString(a.Fun.Name)
	b.WriteByte('[')
	if a.Fun.IsTime {
		switch {
		case a.TimeOff == 0:
			b.WriteString("t")
		case a.TimeOff > 0:
			fmt.Fprintf(&b, "t+%d", a.TimeOff)
		default:
			fmt.Fprintf(&b, "t%d", a.TimeOff)
		}
		if a.Fun.NDims > 0 {
			b.WriteByte(',')
		}
	}
	names := []string{"x", "y", "z", "w"}
	for i, o := range a.Off {
		if i > 0 {
			b.WriteByte(',')
		}
		d := names[i%len(names)]
		switch {
		case o == 0:
			b.WriteString(d)
		case o > 0:
			fmt.Fprintf(&b, "%s+%d", d, o)
		default:
			fmt.Fprintf(&b, "%s%d", d, o)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the sum as a parenthesised + chain.
func (a Add) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// String renders the product as a * chain.
func (m Mul) String() string {
	parts := make([]string, len(m.Factors))
	for i, f := range m.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, "*")
}

// String renders the power in base**exp notation.
func (p Pow) String() string {
	return fmt.Sprintf("%s**%d", p.Base.String(), p.Exp)
}

// String renders the derivative in d^n/d<dim>^n(expr) notation.
func (d Deriv) String() string {
	dim := "t"
	if d.Dim >= 0 {
		dim = []string{"x", "y", "z", "w"}[d.Dim%4]
	}
	return fmt.Sprintf("d%d(%s)/d%s%d", d.Order, d.Target.String(), dim, d.Order)
}

// NewAdd builds a flattened, constant-folded sum.
func NewAdd(terms ...Expr) Expr {
	flat := make([]Expr, 0, len(terms))
	acc := new(big.Rat)
	for _, t := range terms {
		switch v := t.(type) {
		case Add:
			for _, s := range v.Terms {
				if n, ok := s.(Num); ok {
					acc.Add(acc, n.Val)
				} else {
					flat = append(flat, s)
				}
			}
		case Num:
			acc.Add(acc, v.Val)
		default:
			flat = append(flat, t)
		}
	}
	if acc.Sign() != 0 {
		flat = append(flat, Num{Val: acc})
	}
	switch len(flat) {
	case 0:
		return Int(0)
	case 1:
		return flat[0]
	}
	return Add{Terms: flat}
}

// NewMul builds a flattened, constant-folded product. A zero factor
// annihilates the product.
func NewMul(factors ...Expr) Expr {
	flat := make([]Expr, 0, len(factors))
	acc := big.NewRat(1, 1)
	for _, f := range factors {
		switch v := f.(type) {
		case Mul:
			for _, s := range v.Factors {
				if n, ok := s.(Num); ok {
					acc.Mul(acc, n.Val)
				} else {
					flat = append(flat, s)
				}
			}
		case Num:
			acc.Mul(acc, v.Val)
		default:
			flat = append(flat, f)
		}
	}
	if acc.Sign() == 0 {
		return Int(0)
	}
	one := big.NewRat(1, 1)
	if acc.Cmp(one) != 0 || len(flat) == 0 {
		// Keep the numeric coefficient first for canonical ordering.
		flat = append([]Expr{Num{Val: acc}}, flat...)
	}
	switch len(flat) {
	case 0:
		return Int(1)
	case 1:
		return flat[0]
	}
	return Mul{Factors: flat}
}

// Neg returns -e.
func Neg(e Expr) Expr { return NewMul(Int(-1), e) }

// Sub returns a - b.
func Sub(a, b Expr) Expr { return NewAdd(a, Neg(b)) }

// Div returns a / b (b raised to -1).
func Div(a, b Expr) Expr {
	if n, ok := b.(Num); ok {
		inv := new(big.Rat).Inv(n.Val)
		return NewMul(a, Num{Val: inv})
	}
	return NewMul(a, Pow{Base: b, Exp: -1})
}

// NewPow folds trivial exponents and nested powers.
func NewPow(base Expr, exp int) Expr {
	switch exp {
	case 0:
		return Int(1)
	case 1:
		return base
	}
	if p, ok := base.(Pow); ok {
		return NewPow(p.Base, p.Exp*exp)
	}
	if n, ok := base.(Num); ok && exp > 0 {
		r := big.NewRat(1, 1)
		for i := 0; i < exp; i++ {
			r.Mul(r, n.Val)
		}
		return Num{Val: r}
	}
	if n, ok := base.(Num); ok && exp < 0 && n.Val.Sign() != 0 {
		r := big.NewRat(1, 1)
		inv := new(big.Rat).Inv(n.Val)
		for i := 0; i < -exp; i++ {
			r.Mul(r, inv)
		}
		return Num{Val: r}
	}
	return Pow{Base: base, Exp: exp}
}

// Eq is an equation lhs = rhs. The devigo compiler consumes lists of Eq.
type Eq struct {
	LHS Expr
	RHS Expr
}

// String renders the equation as "lhs = rhs".
func (e Eq) String() string { return e.LHS.String() + " = " + e.RHS.String() }

// Walk visits every node of the expression tree in depth-first order. If fn
// returns false the walk does not descend into the node's children.
func Walk(e Expr, fn func(Expr) bool) {
	if !fn(e) {
		return
	}
	switch v := e.(type) {
	case Add:
		for _, t := range v.Terms {
			Walk(t, fn)
		}
	case Mul:
		for _, f := range v.Factors {
			Walk(f, fn)
		}
	case Pow:
		Walk(v.Base, fn)
	case Deriv:
		Walk(v.Target, fn)
	}
}

// Transform rebuilds the expression bottom-up, applying fn to every node
// after its children have been transformed.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	switch v := e.(type) {
	case Add:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = Transform(t, fn)
		}
		return fn(NewAdd(terms...))
	case Mul:
		factors := make([]Expr, len(v.Factors))
		for i, f := range v.Factors {
			factors[i] = Transform(f, fn)
		}
		return fn(NewMul(factors...))
	case Pow:
		return fn(NewPow(Transform(v.Base, fn), v.Exp))
	case Deriv:
		return fn(Deriv{Target: Transform(v.Target, fn), Dim: v.Dim, Order: v.Order, FDOrder: v.FDOrder, Side: v.Side})
	default:
		return fn(e)
	}
}

// Accesses collects every Access node in the expression, in encounter order.
func Accesses(e Expr) []Access {
	var out []Access
	Walk(e, func(n Expr) bool {
		if a, ok := n.(Access); ok {
			out = append(out, a)
		}
		return true
	})
	return out
}

// Funcs returns the distinct functions referenced by the expression, sorted
// by name for determinism.
func Funcs(e Expr) []*FuncRef {
	seen := map[string]*FuncRef{}
	Walk(e, func(n Expr) bool {
		if a, ok := n.(Access); ok {
			seen[a.Fun.Name] = a.Fun
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*FuncRef, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

// Equal reports structural equality via canonical string rendering of the
// collected normal form. It is intended for tests and caching, not hot paths.
func Equal(a, b Expr) bool {
	return Collect(a).String() == Collect(b).String()
}
