package symbolic

import (
	"fmt"
	"math"
)

// Env supplies numeric values for evaluation: scalar symbol bindings and a
// resolver for function accesses. Used by tests and the reference (unfused)
// interpreter to cross-check compiled plans.
type Env struct {
	Syms map[string]float64
	// Field returns the value of fun at the given time offset and absolute
	// point coordinates plus the access offsets already applied by the
	// caller of Eval.
	Field func(fun *FuncRef, timeOff int, off []int) float64
}

// Eval numerically evaluates an expression. Derivative nodes must have been
// expanded first. Unknown symbols evaluate to NaN so mistakes surface in
// tests rather than silently producing zeros.
func Eval(e Expr, env *Env) float64 {
	switch v := e.(type) {
	case Num:
		f, _ := v.Val.Float64()
		return f
	case Sym:
		if val, ok := env.Syms[v.Name]; ok {
			return val
		}
		return math.NaN()
	case Access:
		if env.Field == nil {
			return math.NaN()
		}
		return env.Field(v.Fun, v.TimeOff, v.Off)
	case Add:
		sum := 0.0
		for _, t := range v.Terms {
			sum += Eval(t, env)
		}
		return sum
	case Mul:
		prod := 1.0
		for _, f := range v.Factors {
			prod *= Eval(f, env)
		}
		return prod
	case Pow:
		return math.Pow(Eval(v.Base, env), float64(v.Exp))
	case Deriv:
		return Eval(expandDeriv(v), env)
	default:
		return math.NaN()
	}
}

// Convenience derivative constructors mirroring the Devito API surface.

// Dt returns the first time derivative of e at accuracy tOrder.
func Dt(e Expr, tOrder int) Expr { return Deriv{Target: e, Dim: -1, Order: 1, FDOrder: tOrder} }

// Dt2 returns the second time derivative of e at accuracy tOrder.
func Dt2(e Expr, tOrder int) Expr { return Deriv{Target: e, Dim: -1, Order: 2, FDOrder: tOrder} }

// Dx returns the first space derivative along dim at accuracy so.
func Dx(e Expr, dim, so int) Expr { return Deriv{Target: e, Dim: dim, Order: 1, FDOrder: so} }

// Dx2 returns the second space derivative along dim at accuracy so.
func Dx2(e Expr, dim, so int) Expr { return Deriv{Target: e, Dim: dim, Order: 2, FDOrder: so} }

// DxStaggered returns a staggered first derivative along dim: side=+1
// evaluates between nodes at +1/2, side=-1 at -1/2.
func DxStaggered(e Expr, dim, so, side int) Expr {
	return Deriv{Target: e, Dim: dim, Order: 1, FDOrder: so, Side: side}
}

// Laplace returns the sum of second derivatives over ndims dimensions.
func Laplace(e Expr, ndims, so int) Expr {
	terms := make([]Expr, ndims)
	for d := 0; d < ndims; d++ {
		terms[d] = Dx2(e, d, so)
	}
	return NewAdd(terms...)
}

// ForwardStencil convenience: the access u[t+1, x, y, ...].
func ForwardStencil(f *FuncRef) Access {
	return Access{Fun: f, TimeOff: 1, Off: make([]int, f.NDims)}
}

// At returns the centered access u[t, x, y, ...].
func At(f *FuncRef) Access {
	return Access{Fun: f, TimeOff: 0, Off: make([]int, f.NDims)}
}

// Backward returns the access u[t-1, x, y, ...].
func Backward(f *FuncRef) Access {
	return Access{Fun: f, TimeOff: -1, Off: make([]int, f.NDims)}
}

// Shifted returns an access displaced by off (copied).
func Shifted(f *FuncRef, timeOff int, off ...int) Access {
	if len(off) != f.NDims {
		panic(fmt.Sprintf("symbolic: %s expects %d offsets, got %d", f.Name, f.NDims, len(off)))
	}
	o := make([]int, len(off))
	copy(o, off)
	return Access{Fun: f, TimeOff: timeOff, Off: o}
}

// StencilRadius returns the maximum absolute space offset per dimension over
// all accesses of the expression — the halo the expression's reads require.
func StencilRadius(e Expr, ndims int) []int {
	radius := make([]int, ndims)
	Walk(e, func(n Expr) bool {
		if a, ok := n.(Access); ok {
			for d := 0; d < len(a.Off) && d < ndims; d++ {
				if a.Off[d] > radius[d] {
					radius[d] = a.Off[d]
				}
				if -a.Off[d] > radius[d] {
					radius[d] = -a.Off[d]
				}
			}
		}
		return true
	})
	return radius
}

// FlopCount estimates the floating point operations needed to evaluate e
// once: one op per addition/multiplication edge, |exp| for powers. Used by
// the performance model and the BENCH-style reports.
func FlopCount(e Expr) int {
	switch v := e.(type) {
	case Add:
		n := len(v.Terms) - 1
		for _, t := range v.Terms {
			n += FlopCount(t)
		}
		return n
	case Mul:
		n := len(v.Factors) - 1
		for _, f := range v.Factors {
			n += FlopCount(f)
		}
		return n
	case Pow:
		n := v.Exp
		if n < 0 {
			n = -n
		}
		return n + FlopCount(v.Base)
	case Deriv:
		return FlopCount(expandDeriv(v))
	default:
		return 0
	}
}
