package symbolic

import (
	"math/big"
	"sort"
	"strings"
)

// Collect normalises an expression into a canonical sum-of-products form:
// like terms are merged (their rational coefficients added), factors inside
// each product are sorted, and zero terms are dropped. Collect is the
// workhorse behind Equal, Solve and the flop-reduction passes.
func Collect(e Expr) Expr {
	e = expandProducts(e)
	terms := addTerms(e)
	type entry struct {
		coef *big.Rat
		rest []Expr // sorted non-numeric factors
		key  string
	}
	merged := map[string]*entry{}
	var order []string
	for _, t := range terms {
		coef, rest := splitCoef(t)
		key := productKey(rest)
		if ent, ok := merged[key]; ok {
			ent.coef.Add(ent.coef, coef)
		} else {
			merged[key] = &entry{coef: coef, rest: rest, key: key}
			order = append(order, key)
		}
	}
	sort.Strings(order)
	out := make([]Expr, 0, len(order))
	for _, key := range order {
		ent := merged[key]
		if ent.coef.Sign() == 0 {
			continue
		}
		factors := make([]Expr, 0, len(ent.rest)+1)
		one := big.NewRat(1, 1)
		if ent.coef.Cmp(one) != 0 || len(ent.rest) == 0 {
			factors = append(factors, Num{Val: ent.coef})
		}
		factors = append(factors, ent.rest...)
		out = append(out, NewMul(factors...))
	}
	return NewAdd(out...)
}

// expandProducts distributes products over sums so that the whole tree
// becomes a flat sum of products: (a+b)*c -> a*c + b*c. Pow with positive
// small exponents of sums is expanded by repeated multiplication.
func expandProducts(e Expr) Expr {
	switch v := e.(type) {
	case Add:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = expandProducts(t)
		}
		return NewAdd(terms...)
	case Mul:
		// Expand children first.
		factors := make([]Expr, len(v.Factors))
		for i, f := range v.Factors {
			factors[i] = expandProducts(f)
		}
		// Distribute left to right.
		acc := []Expr{Int(1)}
		for _, f := range factors {
			var fTerms []Expr
			if a, ok := f.(Add); ok {
				fTerms = a.Terms
			} else {
				fTerms = []Expr{f}
			}
			next := make([]Expr, 0, len(acc)*len(fTerms))
			for _, a := range acc {
				for _, b := range fTerms {
					next = append(next, NewMul(a, b))
				}
			}
			acc = next
		}
		return NewAdd(acc...)
	case Pow:
		base := expandProducts(v.Base)
		if a, ok := base.(Add); ok && v.Exp > 1 && v.Exp <= 4 {
			prod := Expr(a)
			for i := 1; i < v.Exp; i++ {
				prod = expandProducts(NewMul(prod, a))
			}
			return prod
		}
		return NewPow(base, v.Exp)
	case Deriv:
		return Deriv{Target: expandProducts(v.Target), Dim: v.Dim, Order: v.Order, FDOrder: v.FDOrder, Side: v.Side}
	default:
		return e
	}
}

// addTerms returns the additive terms of e (e itself if not a sum).
func addTerms(e Expr) []Expr {
	if a, ok := e.(Add); ok {
		return a.Terms
	}
	return []Expr{e}
}

// splitCoef splits a term into its rational coefficient and the remaining
// sorted factors.
func splitCoef(t Expr) (*big.Rat, []Expr) {
	coef := big.NewRat(1, 1)
	var rest []Expr
	factors := []Expr{t}
	if m, ok := t.(Mul); ok {
		factors = m.Factors
	}
	for _, f := range factors {
		if n, ok := f.(Num); ok {
			coef.Mul(coef, n.Val)
		} else {
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].String() < rest[j].String() })
	return coef, rest
}

func productKey(rest []Expr) string {
	parts := make([]string, len(rest))
	for i, r := range rest {
		parts[i] = r.String()
	}
	return strings.Join(parts, "*")
}

// CoefficientOf returns (a, b) such that Collect(e) == a*target + b, where
// target does not occur inside b and a is free of target. It returns ok=false
// if e is non-linear in target (target appears squared or inside a Pow).
// target is matched structurally (canonical string form).
func CoefficientOf(e Expr, target Expr) (a, b Expr, ok bool) {
	tkey := target.String()
	e = Collect(e)
	var aTerms, bTerms []Expr
	for _, t := range addTerms(e) {
		coef, rest := splitCoef(t)
		cnt := 0
		var others []Expr
		for _, r := range rest {
			if r.String() == tkey {
				cnt++
			} else {
				// Non-linearity hidden in a Pow of target.
				if p, isPow := r.(Pow); isPow && p.Base.String() == tkey {
					return nil, nil, false
				}
				others = append(others, r)
			}
		}
		switch cnt {
		case 0:
			bTerms = append(bTerms, t)
		case 1:
			factors := append([]Expr{Num{Val: coef}}, others...)
			aTerms = append(aTerms, NewMul(factors...))
		default:
			return nil, nil, false
		}
	}
	return NewAdd(aTerms...), NewAdd(bTerms...), true
}

// Solve solves eq (interpreted as LHS - RHS = 0) for target, which must
// appear linearly. It mirrors Devito's `solve(eq, u.forward)`.
func Solve(eq Eq, target Expr) (Expr, error) {
	zeroed := Sub(eq.LHS, eq.RHS)
	// Time derivatives must be expanded so the target access (u at t+1)
	// becomes visible; spatial derivatives stay symbolic so later passes
	// (CIRE) can still see their structure.
	zeroed = ExpandTimeDerivatives(zeroed)
	a, b, ok := CoefficientOf(zeroed, target)
	if !ok {
		return nil, &SolveError{Target: target.String(), Reason: "equation is non-linear in target"}
	}
	if isZero(a) {
		return nil, &SolveError{Target: target.String(), Reason: "target does not appear in equation"}
	}
	// solution = -b / a
	return Collect(Div(Neg(b), a)), nil
}

// SolveError reports why a symbolic solve failed.
type SolveError struct {
	Target string
	Reason string
}

// Error implements the error interface.
func (e *SolveError) Error() string {
	return "symbolic: cannot solve for " + e.Target + ": " + e.Reason
}

func isZero(e Expr) bool {
	n, ok := e.(Num)
	return ok && n.Val.Sign() == 0
}
