package symbolic

// FactorCommon implements the factorisation flop-reduction pass of the
// Cluster layer (paper Section II): factors common to every term of a sum
// are pulled out front, so e.g. the dt and 1/(h*h) style coefficients of a
// solved update multiply the stencil sum once instead of every tap:
//
//	dt*r0*u[x-1] + dt*r0*u[x+1] + ...  ->  dt*r0*(u[x-1] + u[x+1] + ...)
//
// Numeric coefficients stay inside the terms (they differ per tap).
func FactorCommon(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		a, ok := n.(Add)
		if !ok || len(a.Terms) < 2 {
			return n
		}
		// Count factor occurrences (by canonical string) in the first
		// term, then intersect with every other term.
		common := factorCounts(a.Terms[0])
		if len(common) == 0 {
			return n
		}
		for _, t := range a.Terms[1:] {
			tc := factorCounts(t)
			for k, c := range common {
				if tc[k] < c {
					if tc[k] == 0 {
						delete(common, k)
					} else {
						common[k] = tc[k]
					}
				}
			}
			if len(common) == 0 {
				return n
			}
		}
		// Build the common factor list (deterministic order) and strip
		// them from each term.
		var commonFactors []Expr
		taken := map[string]int{}
		collectOrder(a.Terms[0], func(f Expr) {
			k := f.String()
			if taken[k] < common[k] {
				taken[k]++
				commonFactors = append(commonFactors, f)
			}
		})
		if len(commonFactors) == 0 {
			return n
		}
		newTerms := make([]Expr, len(a.Terms))
		for i, t := range a.Terms {
			newTerms[i] = stripFactors(t, common)
		}
		return NewMul(append(commonFactors, NewAdd(newTerms...))...)
	})
}

// factorCounts returns the multiset of non-numeric factors of a term.
func factorCounts(t Expr) map[string]int {
	out := map[string]int{}
	collectOrder(t, func(f Expr) { out[f.String()]++ })
	return out
}

// collectOrder visits the non-numeric factors of a term in order.
func collectOrder(t Expr, fn func(Expr)) {
	factors := []Expr{t}
	if m, ok := t.(Mul); ok {
		factors = m.Factors
	}
	for _, f := range factors {
		if _, isNum := f.(Num); isNum {
			continue
		}
		fn(f)
	}
}

// stripFactors removes up to counts[k] occurrences of each factor from the
// term, returning the residue.
func stripFactors(t Expr, counts map[string]int) Expr {
	remaining := map[string]int{}
	for k, c := range counts {
		remaining[k] = c
	}
	factors := []Expr{t}
	if m, ok := t.(Mul); ok {
		factors = m.Factors
	}
	var kept []Expr
	for _, f := range factors {
		if _, isNum := f.(Num); !isNum {
			k := f.String()
			if remaining[k] > 0 {
				remaining[k]--
				continue
			}
		}
		kept = append(kept, f)
	}
	return NewMul(kept...)
}
