package symbolic

import (
	"fmt"
	"sort"
)

// Assignment is a scalar temporary produced by CSE / invariant hoisting:
// Name = Value.
type Assignment struct {
	Name  string
	Value Expr
}

// HoistInvariants extracts maximal subexpressions that contain no Access and
// no time-varying quantity — pure functions of scalar symbols such as
// 1/(h_x*h_x) — into temporaries evaluated once outside all loops. It mirrors
// the loop-invariant code motion pass of the Devito Cluster layer (the r0,
// r1, r2 temporaries of paper Listing 11).
func HoistInvariants(exprs []Expr, nextTemp *int) ([]Assignment, []Expr) {
	var assigns []Assignment
	seen := map[string]string{} // canonical form -> temp name
	rewrite := func(e Expr) Expr {
		return Transform(e, func(n Expr) Expr {
			if !worthHoisting(n) {
				return n
			}
			key := n.String()
			if name, ok := seen[key]; ok {
				return S(name)
			}
			name := fmt.Sprintf("r%d", *nextTemp)
			*nextTemp++
			seen[key] = name
			assigns = append(assigns, Assignment{Name: name, Value: n})
			return S(name)
		})
	}
	out := make([]Expr, len(exprs))
	for i, e := range exprs {
		out[i] = rewrite(e)
	}
	return assigns, out
}

// worthHoisting reports whether n is an invariant compound expression whose
// evaluation costs at least one flop.
func worthHoisting(n Expr) bool {
	switch n.(type) {
	case Mul, Pow, Add:
	default:
		return false
	}
	if FlopCount(n) < 1 {
		return false
	}
	invariant := true
	Walk(n, func(c Expr) bool {
		switch c.(type) {
		case Access, Deriv:
			invariant = false
			return false
		}
		return true
	})
	return invariant
}

// CSE performs common-subexpression elimination across a set of expressions:
// compound subexpressions that occur at least twice (by canonical form) are
// extracted into shared temporaries, innermost first. Temporaries may
// reference fields and are therefore evaluated inside the loop nest, unlike
// HoistInvariants results.
func CSE(exprs []Expr, nextTemp *int) ([]Assignment, []Expr) {
	counts := map[string]int{}
	reprs := map[string]Expr{}
	var count func(e Expr)
	count = func(e Expr) {
		switch v := e.(type) {
		case Add:
			for _, t := range v.Terms {
				count(t)
			}
		case Mul:
			for _, f := range v.Factors {
				count(f)
			}
		case Pow:
			count(v.Base)
		}
		if isCompound(e) && FlopCount(e) >= 2 {
			k := e.String()
			counts[k]++
			reprs[k] = e
		}
	}
	for _, e := range exprs {
		count(e)
	}
	// Candidates in deterministic order, smallest (innermost) first so that
	// later extractions can reference earlier temporaries.
	var keys []string
	for k, c := range counts {
		if c >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	var assigns []Assignment
	names := map[string]string{}
	replace := func(e Expr) Expr {
		return Transform(e, func(n Expr) Expr {
			if !isCompound(n) {
				return n
			}
			if name, ok := names[n.String()]; ok {
				return S(name)
			}
			return n
		})
	}
	for _, k := range keys {
		val := replace(reprs[k])
		name := fmt.Sprintf("r%d", *nextTemp)
		*nextTemp++
		names[k] = name
		assigns = append(assigns, Assignment{Name: name, Value: val})
	}
	out := make([]Expr, len(exprs))
	for i, e := range exprs {
		out[i] = replace(e)
	}
	return assigns, out
}

func isCompound(e Expr) bool {
	switch e.(type) {
	case Add, Mul, Pow:
		return true
	}
	return false
}
