package symbolic

import (
	"fmt"
	"math/big"
)

// FDWeights computes exact finite-difference weights for the m-th derivative
// on the integer stencil offsets given, assuming unit spacing. The weights w
// satisfy sum_k w[k] * f(offset[k]*h) = f^(m)(0) * h^m + O(h^(len-m)).
//
// Offsets are expressed in units of half grid spacings when halfStep is true
// (staggered stencils); the returned weights then already include the
// corresponding 2^m factor so that dividing by h^m remains correct.
func FDWeights(m int, offsets []*big.Rat) ([]*big.Rat, error) {
	n := len(offsets)
	if m >= n {
		return nil, fmt.Errorf("symbolic: need more than %d points for derivative order %d", m, m)
	}
	// Solve the Taylor-table (Vandermonde) system:
	//   sum_k w_k * offsets_k^j / j! = delta_{j,m}   for j = 0..n-1
	A := make([][]*big.Rat, n)
	for j := 0; j < n; j++ {
		A[j] = make([]*big.Rat, n+1)
		fact := factorialRat(j)
		for k := 0; k < n; k++ {
			p := ratPow(offsets[k], j)
			A[j][k] = new(big.Rat).Quo(p, fact)
		}
		if j == m {
			A[j][n] = big.NewRat(1, 1)
		} else {
			A[j][n] = new(big.Rat)
		}
	}
	if err := gaussSolve(A); err != nil {
		return nil, err
	}
	w := make([]*big.Rat, n)
	for k := 0; k < n; k++ {
		w[k] = A[k][n]
	}
	return w, nil
}

// CentralOffsets returns the centered integer offsets used for an m-th
// derivative at accuracy order acc: radius = acc/2 + (m-1)/2 rounded per the
// classic rule radius = (m+1)/2 + acc/2 - 1 for even acc. Devito uses
// radius = acc/2 for second derivatives and first derivatives alike (its
// space_order is the stencil radius*2), which we mirror.
func CentralOffsets(m, acc int) []*big.Rat {
	radius := acc / 2
	if radius < (m+1)/2 {
		radius = (m + 1) / 2
	}
	out := make([]*big.Rat, 0, 2*radius+1)
	for k := -radius; k <= radius; k++ {
		out = append(out, big.NewRat(int64(k), 1))
	}
	return out
}

// StaggeredOffsets returns half-node offsets for a first derivative
// evaluated between grid points: side=+1 gives offsets {-(r-1)-1/2 ...
// +(r-1)+1/2} centered at +1/2, i.e. the forward-staggered stencil; side=-1
// the backward one. acc must be even; r = acc/2 pairs of points are used.
func StaggeredOffsets(acc, side int) []*big.Rat {
	r := acc / 2
	if r < 1 {
		r = 1
	}
	out := make([]*big.Rat, 0, 2*r)
	for k := -r; k < r; k++ {
		// Offsets at k + 1/2 for forward; mirrored for backward.
		o := big.NewRat(2*int64(k)+1, 2)
		if side < 0 {
			o.Neg(o)
		}
		out = append(out, o)
	}
	if side < 0 {
		// Keep ascending order for readability/determinism.
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

func factorialRat(n int) *big.Rat {
	f := big.NewRat(1, 1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewRat(int64(i), 1))
	}
	return f
}

func ratPow(r *big.Rat, n int) *big.Rat {
	out := big.NewRat(1, 1)
	for i := 0; i < n; i++ {
		out.Mul(out, r)
	}
	return out
}

// gaussSolve performs in-place Gauss-Jordan elimination on an n x (n+1)
// augmented rational matrix, leaving the solution in column n.
func gaussSolve(A [][]*big.Rat) error {
	n := len(A)
	for col := 0; col < n; col++ {
		// Partial pivot: find a nonzero entry.
		pivot := -1
		for row := col; row < n; row++ {
			if A[row][col].Sign() != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return fmt.Errorf("symbolic: singular Taylor system")
		}
		A[col], A[pivot] = A[pivot], A[col]
		inv := new(big.Rat).Inv(A[col][col])
		for j := col; j <= n; j++ {
			A[col][j] = new(big.Rat).Mul(A[col][j], inv)
		}
		for row := 0; row < n; row++ {
			if row == col || A[row][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(A[row][col])
			for j := col; j <= n; j++ {
				t := new(big.Rat).Mul(factor, A[col][j])
				A[row][j] = new(big.Rat).Sub(A[row][j], t)
			}
		}
	}
	return nil
}

// spacingSymbol returns the canonical spacing symbol for a dimension index:
// h_x, h_y, h_z (or dt for the time dimension, dim == -1).
func spacingSymbol(dim int) Sym {
	if dim < 0 {
		return S("dt")
	}
	names := []string{"h_x", "h_y", "h_z", "h_w"}
	return S(names[dim%len(names)])
}

// ExpandTimeDerivatives expands only the time-derivative nodes (Dim < 0),
// leaving spatial derivatives symbolic. Solve uses it so that the target
// access u[t+1] becomes visible without destroying the nested spatial
// derivative structure that the CIRE flop-reduction pass operates on.
func ExpandTimeDerivatives(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		d, ok := n.(Deriv)
		if !ok || d.Dim >= 0 {
			return n
		}
		return expandDeriv(d)
	})
}

// ExpandDerivatives rewrites every Deriv node into its finite-difference
// stencil: a weighted sum of shifted Access nodes divided by the appropriate
// spacing power. Derivatives of arbitrary expressions are supported by
// shifting every Access inside the target; derivatives of products with
// non-Access factors (e.g. parameter-weighted fields, as in the rotated TTI
// Laplacian) shift the parameter accesses too, which matches Devito's
// semantics of evaluating the inner expression at the shifted point.
func ExpandDerivatives(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		d, ok := n.(Deriv)
		if !ok {
			return n
		}
		return expandDeriv(d)
	})
}

func expandDeriv(d Deriv) Expr {
	var offsets []*big.Rat
	switch {
	case d.Dim < 0 && d.FDOrder == 1:
		// Forward (explicit) time difference: a TimeFunction with
		// time_order 1 has only two buffers, so u.dt must be
		// (u[t+1]-u[t])/dt, not centered.
		offsets = make([]*big.Rat, d.Order+1)
		for k := 0; k <= d.Order; k++ {
			offsets[k] = big.NewRat(int64(k), 1)
		}
	case d.Side == 0:
		offsets = CentralOffsets(d.Order, d.FDOrder)
	case d.Order == 1:
		offsets = StaggeredOffsets(d.FDOrder, d.Side)
	default:
		// Staggered higher derivatives are composed of first derivatives by
		// the propagators; fall back to centered.
		offsets = CentralOffsets(d.Order, d.FDOrder)
	}
	weights, err := FDWeights(d.Order, offsets)
	if err != nil {
		// Impossible by construction (offsets are distinct); keep the node.
		return d
	}
	// Note any half offsets: the shift must land on integers for array
	// accesses, so staggered targets absorb the 1/2 via their storage
	// convention (value at x+1/2 stored at index x).
	terms := make([]Expr, 0, len(offsets))
	for i, off := range offsets {
		if weights[i].Sign() == 0 {
			continue
		}
		shift, half := ratToShift(off)
		shifted := shiftExpr(d.Target, d.Dim, shift, half)
		terms = append(terms, NewMul(Num{Val: weights[i]}, shifted))
	}
	sum := NewAdd(terms...)
	h := spacingSymbol(d.Dim)
	return NewMul(sum, NewPow(h, -d.Order))
}

// ratToShift decomposes a stencil offset into an integer shift plus an
// optional half-cell remainder. Offsets are always k or k+1/2.
func ratToShift(r *big.Rat) (shift int, half bool) {
	num := r.Num().Int64()
	den := r.Denom().Int64()
	if den == 1 {
		return int(num), false
	}
	// num/2 with num odd: floor to the storage index convention
	// value(x + (2k+1)/2) lives at index x + k.
	if num >= 0 {
		return int((num - 1) / 2), true
	}
	return int((num - 1) / 2), true
}

// shiftExpr shifts every Access in e by `shift` cells along dim. The `half`
// flag is informational: staggered storage places half-node values at the
// floor integer index, so no further action is required, but the flag is
// validated against the accessed function's stagger so mistakes surface.
func shiftExpr(e Expr, dim int, shift int, half bool) Expr {
	return Transform(e, func(n Expr) Expr {
		a, ok := n.(Access)
		if !ok {
			return n
		}
		if dim < 0 {
			if !a.Fun.IsTime {
				return a
			}
			return Access{Fun: a.Fun, TimeOff: a.TimeOff + shift, Off: a.Off}
		}
		if dim >= len(a.Off) {
			return a
		}
		off := make([]int, len(a.Off))
		copy(off, a.Off)
		off[dim] += shift
		return Access{Fun: a.Fun, TimeOff: a.TimeOff, Off: off}
	})
}
