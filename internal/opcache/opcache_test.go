package opcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New()
	var computes atomic.Int64
	var wg sync.WaitGroup
	const callers = 16
	vals := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (any, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("caller %d saw %v, want 42", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits, 1 entry", st, callers-1)
	}
	if got := st.HitRate(); got != float64(callers-1)/float64(callers) {
		t.Fatalf("hit rate = %v, want %v", got, float64(callers-1)/float64(callers))
	}
}

func TestGetOrComputeHitFlag(t *testing.T) {
	c := New()
	_, hit, _ := c.GetOrCompute("k", func() (any, error) { return 1, nil })
	if hit {
		t.Fatal("first call reported a hit")
	}
	v, hit, _ := c.GetOrCompute("k", func() (any, error) { return 2, nil })
	if !hit || v != 1 {
		t.Fatalf("second call: hit=%v v=%v, want hit=true v=1", hit, v)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New()
	_, _, err := c.GetOrCompute("k", func() (any, error) { return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("expected compute error")
	}
	v, hit, err := c.GetOrCompute("k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after error: v=%v hit=%v err=%v, want fresh compute", v, hit, err)
	}
}

func TestPutAndGet(t *testing.T) {
	c := New()
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get on empty cache reported a value")
	}
	c.Put("k", "v1")
	if v, ok := c.Get("k"); !ok || v != "v1" {
		t.Fatalf("Get = %v, %v after Put", v, ok)
	}
	c.Put("k", "v2")
	if v, _ := c.Get("k"); v != "v2" {
		t.Fatalf("Put did not replace: got %v", v)
	}
	// Get/Put are unaccounted paths.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Get/Put perturbed stats: %+v", st)
	}
}

func TestFromEnv(t *testing.T) {
	for _, tc := range []struct {
		val     string
		enabled bool
		wantErr bool
	}{
		{"", true, false}, {"on", true, false}, {"1", true, false},
		{"off", false, false}, {"0", false, false}, {"banana", false, true},
	} {
		t.Setenv(EnvVar, tc.val)
		c, err := FromEnv()
		if tc.wantErr {
			if err == nil {
				t.Errorf("FromEnv(%q): expected a vocabulary error", tc.val)
			}
			continue
		}
		if err != nil {
			t.Errorf("FromEnv(%q): %v", tc.val, err)
		}
		if (c != nil) != tc.enabled {
			t.Errorf("FromEnv(%q): enabled=%v, want %v", tc.val, c != nil, tc.enabled)
		}
	}
}
