// Package opcache is a content-addressed cache of compiled operator
// artifacts: bytecode/interpreter kernel programs and autotuned execution
// configurations, keyed by a canonical hash of the symbolic schedule plus
// the grid / decomposition / engine / time-tile configuration (package
// core exports the key derivation as ScheduleKey).
//
// The cache exists for the shot-parallel FWI service: a survey runs
// thousands of RunGradient shots whose operators are compiled from the
// *same* equations against per-shot storage, so lowering and kernel
// compilation should happen once per equation set, not once per shot.
// GetOrCompute has singleflight semantics — concurrent shots that race on
// a cold key block on one compilation instead of duplicating it — which
// also keeps the compile count deterministic (exactly one per unique key)
// under any worker count.
//
// Values are stored as `any`: the cache is deliberately ignorant of the
// compiler's types so it sits below package core without an import cycle.
// Entries are never evicted; a cache is scoped to one service call (or one
// process) and its keyed artifacts are small compared to field storage.
package opcache

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar gates the service-level cache: DEVIGO_OPCACHE=off|0 disables it,
// on|1 (or unset) keeps the default-on behavior of RunShots.
const EnvVar = "DEVIGO_OPCACHE"

// Stats is a point-in-time counter snapshot of a cache.
type Stats struct {
	// Hits counts GetOrCompute calls served from an existing entry
	// (including callers that blocked on an in-flight computation).
	Hits int64 `json:"hits"`
	// Misses counts GetOrCompute calls that ran the compute function —
	// one per unique key, thanks to singleflight.
	Misses int64 `json:"misses"`
	// Entries is the number of resident keys.
	Entries int `json:"entries"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one keyed slot; ready is closed once val/err are final.
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// Cache is a concurrency-safe content-addressed store. The zero value is
// not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	hits   atomic.Int64
	misses atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: map[string]*entry{}}
}

// FromEnv consults DEVIGO_OPCACHE and returns a fresh cache when the
// variable enables it ("", "on", "1") or nil when it disables it ("off",
// "0"). A value outside the vocabulary is a configuration error naming
// the bad value, where it came from, and what is accepted.
func FromEnv() (*Cache, error) {
	v := strings.ToLower(strings.TrimSpace(os.Getenv(EnvVar)))
	switch v {
	case "", "on", "1":
		return New(), nil
	case "off", "0":
		return nil, nil
	}
	return nil, fmt.Errorf("opcache: unknown value %q in $%s (valid: on, off; aliases: 1, 0)", v, EnvVar)
}

// GetOrCompute returns the value stored under key, computing it with
// compute on first use. Concurrent callers of a cold key block until the
// single in-flight computation finishes (singleflight). hit reports
// whether the value came from the cache (true for blocked waiters too);
// the computing caller sees hit == false. A failed computation is not
// cached: its error is returned to every waiter and the key is cleared so
// a later call retries.
func (c *Cache) GetOrCompute(key string, compute func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.val, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.val, false, e.err
}

// Get returns the completed value stored under key, if any. It never
// blocks: an in-flight computation reads as absent, and lookups through
// Get do not count toward the hit/miss statistics (GetOrCompute is the
// accounted path).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false
	}
}

// Put stores val under key unconditionally, replacing any completed
// entry (an in-flight computation under the same key is left to finish
// and is then shadowed). It is the write path for artifacts discovered
// after compilation, like the autotuner's chosen configuration.
func (c *Cache) Put(key string, val any) {
	e := &entry{ready: make(chan struct{}), val: val}
	close(e.ready)
	c.mu.Lock()
	c.entries[key] = e
	c.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
