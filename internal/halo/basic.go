package halo

import (
	"devigo/internal/field"
	"devigo/internal/mpi"
	"devigo/internal/obs"
)

// basicExchanger implements the paper's basic pattern: a synchronous sweep
// over the dimensions, exchanging the two faces of each. Face slabs span
// the full allocated extent (halo included) of the dimensions already
// swept, so corner points are propagated transitively across steps without
// any diagonal message — 6 messages in 3-D, multi-step.
//
// Matching the paper's description, exchange buffers are allocated at call
// time ("runtime (C/C++)" buffer allocation in Table I).
type basicExchanger struct {
	cart   *mpi.CartComm
	f      *field.Function
	rank   int
	stream int
	// depth is the exchanged ghost width per dimension (nil = the field's
	// full allocated halo); deep-halo time tiling passes k·radius here.
	depth []int
}

func newBasic(cart *mpi.CartComm, f *field.Function, stream int, depth []int) *basicExchanger {
	return &basicExchanger{cart: cart, f: f, rank: cart.Rank(), stream: stream, depth: depth}
}

func (b *basicExchanger) Mode() Mode { return ModeBasic }

func (b *basicExchanger) Exchange(t int) {
	nd := b.f.NDims()
	buf := b.f.Buf(t)
	tid := b.stream + 1
	for d := 0; d < nd; d++ {
		// Dimensions already swept contribute their halo extent so corner
		// data propagates (Fig. 5a: step A then step B).
		includeHalo := make([]bool, nd)
		for k := 0; k < d; k++ {
			includeHalo[k] = true
		}
		type pending struct {
			req    *mpi.Request
			region field.Region
			data   []float32
		}
		var recvs []pending
		for _, s := range []int{-1, 1} {
			offset := make([]int, nd)
			offset[d] = s
			nb := b.cart.Neighbor(offset)
			if nb == mpi.ProcNull {
				continue
			}
			// Post the receive first. The message from Neighbor(offset)
			// travels in direction -offset, and tags encode the sender's
			// direction of travel.
			rr := b.f.RecvRegionDepth(offset, includeHalo, b.depth)
			rbuf := make([]float32, rr.Size())
			req := b.cart.Irecv(nb, mpi.OffsetTag(b.stream, negate(offset)), rbuf)
			recvs = append(recvs, pending{req: req, region: rr, data: rbuf})

			sr := b.f.SendRegionDepth(offset, includeHalo, b.depth)
			sp := obs.BeginStream(b.rank, tid, obs.PhasePack, t)
			sbuf := make([]float32, sr.Size())
			buf.Pack(sr, sbuf)
			sp.End()
			sp = obs.BeginStream(b.rank, tid, obs.PhaseSend, t)
			b.cart.Send(nb, mpi.OffsetTag(b.stream, offset), sbuf)
			sp.End()
			obs.CountMsg(b.rank, 4*int64(len(sbuf)))
		}
		// Block until this dimension's faces are in place before sweeping
		// the next dimension (the synchronous multi-step of Table I).
		for _, p := range recvs {
			sp := obs.BeginStream(b.rank, tid, obs.PhaseWait, t)
			p.req.Wait()
			sp.End()
			sp = obs.BeginStream(b.rank, tid, obs.PhaseUnpack, t)
			buf.Unpack(p.region, p.data)
			sp.End()
		}
	}
}

func (b *basicExchanger) Start(t int)    { b.Exchange(t) }
func (b *basicExchanger) Progress() bool { return true }
func (b *basicExchanger) Finish(t int)   {}
