package halo

import (
	"devigo/internal/field"
	"devigo/internal/mpi"
	"devigo/internal/obs"
)

// diagonalExchanger implements the paper's diagonal pattern: one
// single-step exchange over the complete {-1,0,1}^n neighbourhood — 26
// messages in 3-D — with smaller, DOMAIN-extent slabs and buffers
// preallocated once at construction ("pre-alloc (Python)" in Table I).
type diagonalExchanger struct {
	cart   *mpi.CartComm
	f      *field.Function
	rank   int
	stream int

	offsets [][]int
	nbrs    []int
	sendReg []field.Region
	recvReg []field.Region
	sendBuf [][]float32
	recvBuf [][]float32
}

func newDiagonal(cart *mpi.CartComm, f *field.Function, stream int, depth []int) *diagonalExchanger {
	d := &diagonalExchanger{cart: cart, f: f, rank: cart.Rank(), stream: stream}
	d.offsets = mpi.NeighborOffsets(f.NDims())
	d.nbrs = make([]int, len(d.offsets))
	d.sendReg = make([]field.Region, len(d.offsets))
	d.recvReg = make([]field.Region, len(d.offsets))
	d.sendBuf = make([][]float32, len(d.offsets))
	d.recvBuf = make([][]float32, len(d.offsets))
	for i, o := range d.offsets {
		d.nbrs[i] = cart.Neighbor(o)
		if d.nbrs[i] == mpi.ProcNull {
			continue
		}
		d.sendReg[i] = f.SendRegionDepth(o, nil, depth)
		d.recvReg[i] = f.RecvRegionDepth(o, nil, depth)
		d.sendBuf[i] = make([]float32, d.sendReg[i].Size())
		d.recvBuf[i] = make([]float32, d.recvReg[i].Size())
	}
	return d
}

func (d *diagonalExchanger) Mode() Mode { return ModeDiagonal }

func (d *diagonalExchanger) Exchange(t int) {
	buf := d.f.Buf(t)
	tid := d.stream + 1
	reqs := make([]*mpi.Request, len(d.offsets))
	// Single step: post every receive, then every send, then wait all.
	for i, o := range d.offsets {
		if d.nbrs[i] == mpi.ProcNull {
			continue
		}
		reqs[i] = d.cart.Irecv(d.nbrs[i], mpi.OffsetTag(d.stream, negate(o)), d.recvBuf[i])
	}
	for i, o := range d.offsets {
		if d.nbrs[i] == mpi.ProcNull {
			continue
		}
		sp := obs.BeginStream(d.rank, tid, obs.PhasePack, t)
		buf.Pack(d.sendReg[i], d.sendBuf[i])
		sp.End()
		sp = obs.BeginStream(d.rank, tid, obs.PhaseSend, t)
		d.cart.Send(d.nbrs[i], mpi.OffsetTag(d.stream, o), d.sendBuf[i])
		sp.End()
		obs.CountMsg(d.rank, 4*int64(len(d.sendBuf[i])))
	}
	for i, r := range reqs {
		if r == nil {
			continue
		}
		sp := obs.BeginStream(d.rank, tid, obs.PhaseWait, t)
		r.Wait()
		sp.End()
		sp = obs.BeginStream(d.rank, tid, obs.PhaseUnpack, t)
		buf.Unpack(d.recvReg[i], d.recvBuf[i])
		sp.End()
	}
}

func (d *diagonalExchanger) Start(t int)    { d.Exchange(t) }
func (d *diagonalExchanger) Progress() bool { return true }
func (d *diagonalExchanger) Finish(t int)   {}
