package halo

import (
	"devigo/internal/field"
	"devigo/internal/mpi"
	"devigo/internal/obs"
)

// fullExchanger implements the paper's full (overlap) pattern: the same
// 26-message single-step set as diagonal, but asynchronous. Start posts all
// receives and sends; the caller computes the CORE region while messages
// are in flight, prodding the progress engine via Progress (the MPI_Test
// calls the generated code inserts between loop-tiling blocks); Finish
// waits for the remaining receives, unpacks the halos, after which the
// caller computes the REMAINDER areas.
type fullExchanger struct {
	*diagonalExchanger
	pending []*mpi.Request
	started bool
}

func newFull(cart *mpi.CartComm, f *field.Function, stream int, depth []int) *fullExchanger {
	return &fullExchanger{diagonalExchanger: newDiagonal(cart, f, stream, depth)}
}

func (e *fullExchanger) Mode() Mode { return ModeFull }

func (e *fullExchanger) Start(t int) {
	buf := e.f.Buf(t)
	tid := e.stream + 1
	e.pending = make([]*mpi.Request, len(e.offsets))
	for i, o := range e.offsets {
		if e.nbrs[i] == mpi.ProcNull {
			continue
		}
		e.pending[i] = e.cart.Irecv(e.nbrs[i], mpi.OffsetTag(e.stream, negate(o)), e.recvBuf[i])
	}
	for i, o := range e.offsets {
		if e.nbrs[i] == mpi.ProcNull {
			continue
		}
		sp := obs.BeginStream(e.rank, tid, obs.PhasePack, t)
		buf.Pack(e.sendReg[i], e.sendBuf[i])
		sp.End()
		sp = obs.BeginStream(e.rank, tid, obs.PhaseSend, t)
		// Isend: buffered, completes immediately in this runtime but keeps
		// the schedule shape of the generated code.
		e.cart.Isend(e.nbrs[i], mpi.OffsetTag(e.stream, o), e.sendBuf[i])
		sp.End()
		obs.CountMsg(e.rank, 4*int64(len(e.sendBuf[i])))
	}
	e.started = true
}

func (e *fullExchanger) Progress() bool {
	if !e.started {
		return true
	}
	return mpi.Testall(e.pending)
}

func (e *fullExchanger) Finish(t int) {
	if !e.started {
		return
	}
	buf := e.f.Buf(t)
	tid := e.stream + 1
	for i, r := range e.pending {
		if r == nil {
			continue
		}
		sp := obs.BeginStream(e.rank, tid, obs.PhaseWait, t)
		r.Wait()
		sp.End()
		sp = obs.BeginStream(e.rank, tid, obs.PhaseUnpack, t)
		buf.Unpack(e.recvReg[i], e.recvBuf[i])
		sp.End()
	}
	e.pending = nil
	e.started = false
}

func (e *fullExchanger) Exchange(t int) {
	e.Start(t)
	e.Finish(t)
}
