package halo

import (
	"strings"
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

// Hand-counted Traffic totals across modes and widths, deep widths
// included. The byte volume is 4 bytes per point of the halo shell
// (outer box minus owned box); message counts are 2 per dimension for
// basic and 3^n - 1 for diagonal/full.
func TestTrafficHandCounted(t *testing.T) {
	cases := []struct {
		mode      Mode
		local     []int
		width     int
		wantMsgs  int
		wantBytes float64
	}{
		// 2-D 10x10, width 2: shell = 14^2 - 10^2 = 96 points.
		{ModeBasic, []int{10, 10}, 2, 4, 4 * 96},
		{ModeDiagonal, []int{10, 10}, 2, 8, 4 * 96},
		{ModeFull, []int{10, 10}, 2, 8, 4 * 96},
		// Same box, deep width 8 (k=4 tiling of a radius-2 stencil):
		// shell = 26^2 - 10^2 = 576 points.
		{ModeBasic, []int{10, 10}, 8, 4, 4 * 576},
		{ModeDiagonal, []int{10, 10}, 8, 8, 4 * 576},
		// 3-D 4x5x6, width 3: shell = 10*11*12 - 120 = 1200 points.
		{ModeBasic, []int{4, 5, 6}, 3, 6, 4 * 1200},
		{ModeDiagonal, []int{4, 5, 6}, 3, 26, 4 * 1200},
		{ModeFull, []int{4, 5, 6}, 3, 26, 4 * 1200},
		// Degenerate widths.
		{ModeDiagonal, []int{10, 10}, 0, 0, 0},
		{ModeNone, []int{10, 10}, 4, 0, 0},
	}
	for _, c := range cases {
		msgs, bytes := Traffic(c.mode, c.local, c.width)
		if msgs != c.wantMsgs || bytes != c.wantBytes {
			t.Errorf("Traffic(%s, %v, %d) = (%d, %g), want (%d, %g)",
				c.mode, c.local, c.width, msgs, bytes, c.wantMsgs, c.wantBytes)
		}
	}
}

// AmortizedTraffic divides messages and bytes by the exchange interval
// and multiplies by the stream count.
func TestAmortizedTrafficHandCounted(t *testing.T) {
	local := []int{10, 10}
	// diag width 8, k=4, 2 streams: msgs 8*2/4 = 4/step;
	// bytes = 4*576*2/4 = 1152/step.
	m, b := AmortizedTraffic(ModeDiagonal, local, 8, 4, 2)
	if m != 4 || b != 4*576*2/4 {
		t.Errorf("AmortizedTraffic = (%g, %g), want (4, %g)", m, b, float64(4*576*2/4))
	}
	// k=1 must reduce to plain Traffic times streams.
	m1, b1 := AmortizedTraffic(ModeBasic, local, 2, 1, 3)
	tm, tb := Traffic(ModeBasic, local, 2)
	if m1 != float64(3*tm) || b1 != 3*tb {
		t.Errorf("k=1 AmortizedTraffic = (%g, %g), want (%g, %g)", m1, b1, float64(3*tm), 3*tb)
	}
	// Relative to the k=1 baseline of the same stream count, the message
	// rate must fall by exactly k.
	mk, _ := AmortizedTraffic(ModeDiagonal, local, 8, 4, 2)
	m0, _ := AmortizedTraffic(ModeDiagonal, local, 2, 1, 2)
	if got, want := mk/m0, 0.25; got != want {
		t.Errorf("message ratio at k=4 = %g, want %g", got, want)
	}
}

// ParseMode accepts the Devito-style aliases and lists the valid names in
// its error.
func TestParseModeAliasesAndErrorVocabulary(t *testing.T) {
	for s, want := range map[string]Mode{
		"diag": ModeDiagonal, "diagonal": ModeDiagonal, "diag2": ModeDiagonal,
		"overlap": ModeFull, "overlapped": ModeFull, "full": ModeFull,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	_, err := ParseMode("bogus")
	if err == nil {
		t.Fatal("ParseMode(bogus) succeeded")
	}
	for _, name := range []string{"basic", "diag", "full", "overlap", "none"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseMode error %q does not list valid name %q", err, name)
		}
	}
}

// deepField builds a rank-local field with a deep ghost allocation
// (HaloWidth = width) and the DOMAIN filled with globally encoded values.
func deepField(t *testing.T, c *mpi.Comm, g *grid.Grid, topo []int, width int) (*field.Function, *mpi.CartComm) {
	t.Helper()
	d, err := grid.NewDecomposition(g, c.Size(), topo)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := mpi.CartCreate(c, d.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := field.NewFunction("u", g, width, &field.Config{Decomp: d, Rank: c.Rank(), HaloWidth: width})
	if err != nil {
		t.Fatal(err)
	}
	fillDomain(f)
	return f, cart
}

// TestDeepExchangeFillsWholeRing runs every mode with a deep allocation
// (width 4 on 6-point chunks) and checks the entire deep ring holds the
// neighbours' encoded values — the deep-halo exchange of time tiling.
func TestDeepExchangeFillsWholeRing(t *testing.T) {
	shape := []int{12, 12}
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			g := grid.MustNew(shape, nil)
			w := mpi.NewWorld(4)
			err := w.Run(func(c *mpi.Comm) {
				f, cart := deepField(t, c, g, []int{2, 2}, 4)
				ex := New(mode, cart, f, 0)
				ex.Exchange(0)
				if n := verifyHalo(t, f, c.Rank(), "deep-"+mode.String()); n == 0 {
					t.Errorf("%s rank %d: no deep halo cells verified", mode, c.Rank())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartialDepthExchange exchanges only the innermost band of a deeper
// allocation: cells within the requested depth must be filled, cells
// beyond it must stay untouched (zero).
func TestPartialDepthExchange(t *testing.T) {
	shape := []int{12, 12}
	const allocW, depth = 4, 2
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			g := grid.MustNew(shape, nil)
			w := mpi.NewWorld(4)
			err := w.Run(func(c *mpi.Comm) {
				f, cart := deepField(t, c, g, []int{2, 2}, allocW)
				ex := NewDepth(mode, cart, f, 0, []int{depth, depth})
				ex.Exchange(0)
				buf := f.Buf(0)
				dom := f.DomainRegion()
				full := f.FullShape()
				for i := 0; i < full[0]; i++ {
					for j := 0; j < full[1]; j++ {
						inDom := i >= dom.Lo[0] && i < dom.Hi[0] && j >= dom.Lo[1] && j < dom.Hi[1]
						if inDom {
							continue
						}
						gi, gj := f.Origin[0]+i-allocW, f.Origin[1]+j-allocW
						if gi < 0 || gi >= shape[0] || gj < 0 || gj >= shape[1] {
							continue
						}
						// Distance (in points) outside the owned box.
						di := dist(i, dom.Lo[0], dom.Hi[0])
						dj := dist(j, dom.Lo[1], dom.Hi[1])
						got := buf.At(i, j)
						if di <= depth && dj <= depth {
							if want := enc([]int{gi, gj}); got != want {
								t.Errorf("%s rank %d: depth-%d cell (%d,%d) = %v, want %v",
									mode, c.Rank(), depth, i, j, got, want)
							}
						} else if got != 0 {
							t.Errorf("%s rank %d: beyond-depth cell (%d,%d) = %v, want untouched 0",
								mode, c.Rank(), i, j, got)
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// dist returns how far x lies outside [lo, hi) (0 when inside).
func dist(x, lo, hi int) int {
	if x < lo {
		return lo - x
	}
	if x >= hi {
		return x - hi + 1
	}
	return 0
}
