package halo

import (
	"fmt"
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/mpi"
)

// distField creates the rank-local portion of a global field whose value at
// global point (i,j,...) is enc(i,j,...), with DOMAIN filled and halo zeroed.
func distField(t *testing.T, c *mpi.Comm, g *grid.Grid, topo []int, so int) (*field.Function, *grid.Decomposition, *mpi.CartComm) {
	t.Helper()
	d, err := grid.NewDecomposition(g, c.Size(), topo)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := mpi.CartCreate(c, d.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := field.NewFunction("u", g, so, &field.Config{Decomp: d, Rank: c.Rank()})
	if err != nil {
		t.Fatal(err)
	}
	fillDomain(f)
	return f, d, cart
}

// enc encodes global coordinates into a unique float32.
func enc(coords []int) float32 {
	v := 0
	for _, c := range coords {
		v = v*1000 + c + 1
	}
	return float32(v)
}

func fillDomain(f *field.Function) {
	nd := f.NDims()
	idx := make([]int, nd)
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			g := make([]int, nd)
			for k := 0; k < nd; k++ {
				g[k] = f.Origin[k] + idx[k]
			}
			f.SetDomain(0, enc(g), idx...)
			return
		}
		for idx[d] = 0; idx[d] < f.LocalShape[d]; idx[d]++ {
			rec(d + 1)
		}
	}
	rec(0)
}

// verifyHalo checks that every halo cell corresponding to a point inside
// the global grid holds the correct encoded value. Returns the number of
// verified cells.
func verifyHalo(t *testing.T, f *field.Function, rank int, mode string) int {
	t.Helper()
	nd := f.NDims()
	buf := f.Buf(0)
	full := f.FullShape()
	dom := f.DomainRegion()
	idx := make([]int, nd)
	verified := 0
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			inDomain := true
			g := make([]int, nd)
			inGrid := true
			for k := 0; k < nd; k++ {
				if idx[k] < dom.Lo[k] || idx[k] >= dom.Hi[k] {
					inDomain = false
				}
				g[k] = f.Origin[k] + idx[k] - f.Halo[k]
				if g[k] < 0 || g[k] >= f.Grid.Shape[k] {
					inGrid = false
				}
			}
			if inDomain || !inGrid {
				return
			}
			want := enc(g)
			if got := buf.At(idx...); got != want {
				t.Errorf("%s rank %d: halo at %v (global %v) = %v, want %v", mode, rank, idx, g, got, want)
			}
			verified++
			return
		}
		for idx[d] = 0; idx[d] < full[d]; idx[d]++ {
			rec(d + 1)
		}
	}
	rec(0)
	return verified
}

func testExchangeFillsHalo(t *testing.T, mode Mode, shape, topo []int, so int) {
	nprocs := 1
	for _, v := range topo {
		nprocs *= v
	}
	g := grid.MustNew(shape, nil)
	w := mpi.NewWorld(nprocs)
	err := w.Run(func(c *mpi.Comm) {
		f, _, cart := distField(t, c, g, topo, so)
		ex := New(mode, cart, f, 0)
		ex.Exchange(0)
		n := verifyHalo(t, f, c.Rank(), mode.String())
		if n == 0 && nprocs > 1 {
			t.Errorf("%s rank %d: no halo cells verified", mode, c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeFillsHalo2D(t *testing.T) {
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			testExchangeFillsHalo(t, mode, []int{12, 12}, []int{2, 2}, 4)
		})
	}
}

func TestExchangeFillsHalo3D(t *testing.T) {
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			testExchangeFillsHalo(t, mode, []int{12, 12, 12}, []int{2, 2, 2}, 4)
		})
	}
}

func TestExchangeCornersIncluded(t *testing.T) {
	// 3x3 topology: the centre rank has all 8 neighbours; corner halo
	// points must be correct for every mode (basic fills them via the
	// dimension sweep, diagonal/full via corner messages).
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			testExchangeFillsHalo(t, mode, []int{12, 12}, []int{3, 3}, 4)
		})
	}
}

func TestExchangeUnevenDecomposition(t *testing.T) {
	// 13 points over 3 chunks -> 5,4,4: exercises remainder handling.
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			testExchangeFillsHalo(t, mode, []int{13, 11}, []int{3, 2}, 4)
		})
	}
}

func TestExchangeRepeatedSteps(t *testing.T) {
	// Repeated exchanges with changing data must deliver the latest
	// values (FIFO per tag across "timesteps").
	g := grid.MustNew([]int{8, 8}, nil)
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		f, _, cart := distField(t, c, g, []int{2, 2}, 2)
		ex := New(ModeDiagonal, cart, f, 0)
		for step := 0; step < 3; step++ {
			// Scale the domain values by step+1.
			dom := f.DomainRegion()
			buf := f.Buf(0)
			tmp := make([]float32, dom.Size())
			buf.Pack(dom, tmp)
			fillDomain(f)
			buf.Pack(dom, tmp)
			for i := range tmp {
				tmp[i] *= float32(step + 1)
			}
			buf.Unpack(dom, tmp)
			ex.Exchange(0)
		}
		// After the last exchange, halo values must be 3x the encoding.
		nd := f.NDims()
		full := f.FullShape()
		dom := f.DomainRegion()
		buf := f.Buf(0)
		for i := 0; i < full[0]; i++ {
			for j := 0; j < full[1]; j++ {
				inDom := i >= dom.Lo[0] && i < dom.Hi[0] && j >= dom.Lo[1] && j < dom.Hi[1]
				gi, gj := f.Origin[0]+i-f.Halo[0], f.Origin[1]+j-f.Halo[1]
				if inDom || gi < 0 || gi >= 8 || gj < 0 || gj >= 8 {
					continue
				}
				want := 3 * enc([]int{gi, gj})
				if got := buf.At(i, j); got != want {
					t.Errorf("rank %d: step-3 halo at (%d,%d) = %v, want %v", c.Rank(), i, j, got, want)
				}
			}
		}
		_ = nd
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTableI_ModeCharacteristics(t *testing.T) {
	// Paper Table I: in 3-D an interior rank issues 6 messages in basic
	// mode and 26 in diagonal and full modes.
	cases := []struct {
		mode Mode
		want int
	}{
		{ModeBasic, 6},
		{ModeDiagonal, 26},
		{ModeFull, 26},
	}
	g := grid.MustNew([]int{27, 27, 27}, nil)
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			w := mpi.NewWorld(27)
			err := w.Run(func(c *mpi.Comm) {
				f, _, cart := distField(t, c, g, []int{3, 3, 3}, 2)
				ex := New(tc.mode, cart, f, 0)
				ex.Exchange(0)
			})
			if err != nil {
				t.Fatal(err)
			}
			// Rank 13 is the centre of the 3x3x3 topology.
			st := w.StatsSnapshot()
			if got := st[13].MsgsSent; got != tc.want {
				t.Errorf("%s: centre rank sent %d messages, want %d", tc.mode, got, tc.want)
			}
		})
	}
}

func TestDiagonalSmallerTotalBytesThanBasic(t *testing.T) {
	// Basic slabs include already-swept halos, so its total byte volume is
	// at least diagonal's (paper: diagonal has "smaller messages").
	g := grid.MustNew([]int{24, 24, 24}, nil)
	run := func(mode Mode) int64 {
		w := mpi.NewWorld(8)
		err := w.Run(func(c *mpi.Comm) {
			f, _, cart := distField(t, c, g, []int{2, 2, 2}, 8)
			New(mode, cart, f, 0).Exchange(0)
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range w.StatsSnapshot() {
			total += s.BytesSent
		}
		return total
	}
	basic, diag := run(ModeBasic), run(ModeDiagonal)
	if diag > basic {
		t.Errorf("diagonal bytes %d > basic bytes %d", diag, basic)
	}
}

func TestFullOverlapProtocol(t *testing.T) {
	// Start -> compute-like delay -> Progress ticks -> Finish must deliver
	// the same halos as a synchronous exchange.
	g := grid.MustNew([]int{16, 16}, nil)
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		f, _, cart := distField(t, c, g, []int{2, 2}, 4)
		ex := New(ModeFull, cart, f, 0)
		ex.Start(0)
		// Simulated CORE computation with progress prods.
		for i := 0; i < 5; i++ {
			ex.Progress()
		}
		ex.Finish(0)
		verifyHalo(t, f, c.Rank(), "full-split")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"basic": ModeBasic, "diag": ModeDiagonal, "diagonal": ModeDiagonal,
		"diag2": ModeDiagonal, "full": ModeFull, "none": ModeNone,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode should fail")
	}
}

func TestExchangeSingleRankIsNoOp(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	for _, mode := range []Mode{ModeBasic, ModeDiagonal, ModeFull} {
		w := mpi.NewWorld(1)
		err := w.Run(func(c *mpi.Comm) {
			f, _, cart := distField(t, c, g, []int{1, 1}, 2)
			New(mode, cart, f, 0).Exchange(0)
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if st := w.StatsSnapshot(); st[0].MsgsSent != 0 {
			t.Errorf("%v: single rank sent %d messages", mode, st[0].MsgsSent)
		}
	}
}

func TestMultipleFieldsDistinctStreams(t *testing.T) {
	// Two fields exchanged through distinct streams must not cross-match.
	g := grid.MustNew([]int{8, 8}, nil)
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		d, _ := grid.NewDecomposition(g, 4, []int{2, 2})
		cart, _ := mpi.CartCreate(c, d.Topology, nil)
		f1, _ := field.NewFunction("a", g, 2, &field.Config{Decomp: d, Rank: c.Rank()})
		f2, _ := field.NewFunction("b", g, 2, &field.Config{Decomp: d, Rank: c.Rank()})
		fillDomain(f1)
		// f2 = f1 + 100000 so values are distinguishable.
		fillDomain(f2)
		dom := f2.DomainRegion()
		tmp := make([]float32, dom.Size())
		f2.Buf(0).Pack(dom, tmp)
		for i := range tmp {
			tmp[i] += 100000
		}
		f2.Buf(0).Unpack(dom, tmp)

		e1 := New(ModeFull, cart, f1, 0)
		e2 := New(ModeFull, cart, f2, 1)
		// Interleave the two exchanges.
		e1.Start(0)
		e2.Start(0)
		e2.Finish(0)
		e1.Finish(0)
		verifyHalo(t, f1, c.Rank(), "stream0")
		// Check one halo value of f2 carries the +100000 bias.
		full := f2.FullShape()
		buf := f2.Buf(0)
		found := false
		for i := 0; i < full[0] && !found; i++ {
			for j := 0; j < full[1] && !found; j++ {
				domR := f2.DomainRegion()
				inDom := i >= domR.Lo[0] && i < domR.Hi[0] && j >= domR.Lo[1] && j < domR.Hi[1]
				gi, gj := f2.Origin[0]+i-f2.Halo[0], f2.Origin[1]+j-f2.Halo[1]
				if inDom || gi < 0 || gi >= 8 || gj < 0 || gj >= 8 {
					continue
				}
				found = true
				want := enc([]int{gi, gj}) + 100000
				if got := buf.At(i, j); got != want {
					t.Errorf("rank %d: f2 halo = %v, want %v", c.Rank(), got, want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleParseMode() {
	m, _ := ParseMode("diag2")
	fmt.Println(m)
	// Output: diag
}
