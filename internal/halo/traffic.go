package halo

// Traffic returns the per-timestep communication volume one exchanged
// field stream generates under a mode, for a rank owning a local box of
// the given shape with ghost width points per side: the number of
// point-to-point messages posted and the byte volume shipped (float32
// payload). All modes exchange the same *union* of data — the full halo
// shell around the owned box — but package the shell differently:
//
//   - basic ships 6 fat slabs in 3-D (2 messages per dimension, with the
//     corner regions forwarded transitively by the dimension sweep);
//   - diagonal and full post the whole {-1,0,1}^n neighbourhood at once
//     (26 thinner messages in 3-D), trading message count for a single
//     communication phase (and, for full, asynchrony).
//
// Performance models (package perfmodel, both the paper scenarios and the
// runtime autotuner) consume these numbers so that modelled bytes-moved
// stays consistent with what the exchangers actually send.
func Traffic(mode Mode, local []int, width int) (msgs int, bytes float64) {
	if mode == ModeNone || width <= 0 {
		return 0, 0
	}
	outer, inner := 1.0, 1.0
	for d := range local {
		outer *= float64(local[d]) + 2*float64(width)
		inner *= float64(local[d])
	}
	bytes = 4 * (outer - inner)
	switch mode {
	case ModeBasic:
		msgs = 2 * len(local)
	case ModeDiagonal, ModeFull:
		msgs = 1
		for range local {
			msgs *= 3
		}
		msgs--
	}
	return msgs, bytes
}

// TrafficDepth is the per-dimension-exact variant of Traffic: depth[d]
// is the exchanged ghost width of dimension d, so the byte volume is the
// exact anisotropic shell prod(local[d]+2*depth[d]) - prod(local[d]) the
// exchangers ship (Traffic's scalar width is the isotropic special case).
// The obs subsystem's measured counters must equal this prediction
// exactly for interior ranks — the differential suite enforces it.
func TrafficDepth(mode Mode, local, depth []int) (msgs int, bytes float64) {
	width := 0
	for _, w := range depth {
		if w > width {
			width = w
		}
	}
	if mode == ModeNone || width <= 0 {
		return 0, 0
	}
	msgs, _ = Traffic(mode, local, width)
	outer, inner := 1.0, 1.0
	for d := range local {
		w := 0
		if d < len(depth) {
			w = depth[d]
		}
		outer *= float64(local[d]) + 2*float64(w)
		inner *= float64(local[d])
	}
	return msgs, 4 * (outer - inner)
}

// AmortizedTraffic reports the steady-state per-timestep communication of
// communication-avoiding time tiling: `streams` (field, time-offset)
// pairs, each exchanged at ghost depth `width` once every k timesteps.
// Message count divides by k — the latency win the deep halo buys — while
// bytes stay roughly level (the exchanged shell is ~k times thicker but
// shipped 1/k as often, modulo corner growth). k < 1 is treated as 1.
func AmortizedTraffic(mode Mode, local []int, width, k, streams int) (msgsPerStep, bytesPerStep float64) {
	if k < 1 {
		k = 1
	}
	msgs, bytes := Traffic(mode, local, width)
	msgsPerStep = float64(msgs*streams) / float64(k)
	bytesPerStep = bytes * float64(streams) / float64(k)
	return msgsPerStep, bytesPerStep
}
