// Package halo implements the paper's three distributed-memory
// computation/communication patterns (Table I, Fig. 5):
//
//   - basic: synchronous multi-step face exchanges, 2 messages per
//     dimension (6 in 3-D), exchange buffers allocated at call time;
//   - diagonal: synchronous single-step exchange over the full
//     {-1,0,1}^n neighbourhood (26 messages in 3-D), preallocated buffers;
//   - full: asynchronous single-step exchange overlapped with CORE
//     computation, with MPI_Test progress prods, then REMAINDER updates.
//
// Exchangers operate on one field over one Cartesian communicator; the
// compiler instantiates one exchanger per (field, operator) pair.
package halo

import (
	"fmt"
	"strings"

	"devigo/internal/field"
	"devigo/internal/mpi"
)

// Mode selects the communication pattern.
type Mode int

const (
	// ModeNone disables exchanges (serial runs).
	ModeNone Mode = iota
	// ModeBasic is the blocking face-only multi-step pattern.
	ModeBasic
	// ModeDiagonal is the single-step 26-neighbour pattern.
	ModeDiagonal
	// ModeFull is the overlapped pattern (diagonal message set,
	// asynchronous, CORE/REMAINDER split).
	ModeFull
)

// String implements fmt.Stringer with the paper's names.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeBasic:
		return "basic"
	case ModeDiagonal:
		return "diag"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeNames lists every accepted ParseMode spelling, canonical names
// first — the vocabulary quoted by ParseMode errors and CLI usage text.
func ModeNames() []string {
	return []string{"none", "basic", "diag", "full", "diagonal", "diag2", "overlap", "overlapped", "0", "1"}
}

// ParseMode converts the DEVITO_MPI-style names used by the CLI,
// accepting the Devito aliases ("diag", "diagonal", "diag2" for the
// diagonal pattern; "overlap"/"overlapped" for full). Unknown names fail
// with an error listing the valid spellings.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "none", "0":
		return ModeNone, nil
	case "basic", "1":
		return ModeBasic, nil
	case "diag", "diagonal", "diag2":
		return ModeDiagonal, nil
	case "full", "overlap", "overlapped":
		return ModeFull, nil
	}
	return ModeNone, fmt.Errorf("halo: unknown MPI mode %q (valid: %s)", s, strings.Join(ModeNames(), ", "))
}

// Exchanger fills a field's halo region from its neighbours. Exchange is
// the synchronous entry point; Start/Progress/Finish expose the split
// protocol that the full pattern overlaps with computation (for the other
// modes Start+Finish degenerate to Exchange).
type Exchanger interface {
	// Exchange synchronously updates the halo of time buffer t.
	Exchange(t int)
	// Start posts the sends/receives for time buffer t.
	Start(t int)
	// Progress prods the progress engine (MPI_Test) and reports whether
	// all receives have completed.
	Progress() bool
	// Finish blocks until all receives completed and halos are unpacked.
	Finish(t int)
	// Mode identifies the pattern.
	Mode() Mode
}

// New constructs the exchanger for the given mode, exchanging the field's
// full allocated ghost width. stream must be unique per (field, operator)
// so concurrent exchanges cannot cross-match.
func New(mode Mode, cart *mpi.CartComm, f *field.Function, stream int) Exchanger {
	return NewDepth(mode, cart, f, stream, nil)
}

// NewDepth constructs an exchanger shipping a ghost band depth[d] points
// wide per side instead of the full allocated width — the deep-halo
// exchanger of communication-avoiding time tiling (and, symmetrically, a
// thinner-than-allocation exchange when only part of a deep halo needs
// refreshing). nil depth means the full allocated width. depth must not
// exceed the field's allocated halo, and a one-hop exchange additionally
// requires depth not to exceed the smallest neighbouring chunk — both are
// the caller's (the compiler's) responsibility when it picks the exchange
// interval.
func NewDepth(mode Mode, cart *mpi.CartComm, f *field.Function, stream int, depth []int) Exchanger {
	switch mode {
	case ModeNone:
		return nullExchanger{}
	case ModeBasic:
		return newBasic(cart, f, stream, depth)
	case ModeDiagonal:
		return newDiagonal(cart, f, stream, depth)
	case ModeFull:
		return newFull(cart, f, stream, depth)
	}
	panic("halo: invalid mode")
}

type nullExchanger struct{}

func (nullExchanger) Exchange(int)   {}
func (nullExchanger) Start(int)      {}
func (nullExchanger) Progress() bool { return true }
func (nullExchanger) Finish(int)     {}
func (nullExchanger) Mode() Mode     { return ModeNone }

func negate(o []int) []int {
	n := make([]int, len(o))
	for i, v := range o {
		n[i] = -v
	}
	return n
}
