package native

import (
	"fmt"
	"sync"
	"unsafe"

	"devigo/internal/bytecode"
	"devigo/internal/runtime"
)

// xlink is one fused per-point operation, executable form: operand
// pointers are patched per worker (register rows) and per row (field
// accesses), the scalar operand is resolved from the bound pool once per
// worker. kind/exp are copied from the kernel template.
type xlink struct {
	kind       bytecode.LinkKind
	exp        int
	sv         float64
	pa, pb, pc unsafe.Pointer
}

// Operand patch descriptors, precomputed at Wrap time.
type patchF struct {
	li   int32 // link index in the flat array
	pos  int8  // which pointer: 0=pa 1=pb 2=pc
	slot int32
}
type patchR struct {
	li  int32
	pos int8
	reg int32
}
type patchS struct {
	li   int32
	pool int32
}
type patchE struct {
	li int32
	eq int32
}

// tmpl is the kernel's immutable executable template.
type tmpl struct {
	links []xlink // kinds and exponents filled; pointers nil
	fs    []patchF
	rs    []patchR
	ss    []patchS
	es    []patchE
}

// buildTemplate flattens the chain segments' links and derives the patch
// lists from each link kind's operand roles.
func (k *Kernel) buildTemplate(segs []bytecode.Segment) {
	t := &tmpl{}
	li := func() int32 { return int32(len(t.links)) }
	// Operand-role helpers: field access, register row, pool scalar.
	f := func(pos int8, slot int32) { t.fs = append(t.fs, patchF{li(), pos, slot}) }
	r := func(pos int8, reg int32) { t.rs = append(t.rs, patchR{li(), pos, reg}) }
	s := func(pool int32) { t.ss = append(t.ss, patchS{li(), pool}) }
	for _, seg := range segs {
		if seg.Shape == bytecode.ShapeVM {
			continue
		}
		for _, l := range seg.Links {
			x := xlink{kind: l.Kind}
			switch l.Kind {
			case bytecode.LkToRow:
				r(0, l.A)
			case bytecode.LkStore:
				t.es = append(t.es, patchE{li(), l.A})
			case bytecode.LkMovS, bytecode.LkAccAddS, bytecode.LkAccMulS,
				bytecode.LkTMulS, bytecode.LkMergeMaddTS:
				s(l.A)
			case bytecode.LkMulFS, bytecode.LkAddFS, bytecode.LkTMulFS,
				bytecode.LkAccMaddFS, bytecode.LkTMaddFS:
				f(0, l.A)
				s(l.B)
			case bytecode.LkMulRS, bytecode.LkAddRS, bytecode.LkTMulRS,
				bytecode.LkAccMaddRS, bytecode.LkTMaddRS:
				r(0, l.A)
				s(l.B)
			case bytecode.LkMulFF, bytecode.LkAddFF, bytecode.LkTMulFF,
				bytecode.LkAccMaddFF:
				f(0, l.A)
				f(1, l.B)
			case bytecode.LkMulFR, bytecode.LkAddFR, bytecode.LkTMulFR,
				bytecode.LkAccMaddFR:
				f(0, l.A)
				r(1, l.B)
			case bytecode.LkMulRR, bytecode.LkAddRR, bytecode.LkTMulRR,
				bytecode.LkAccMaddRR:
				r(0, l.A)
				r(1, l.B)
			case bytecode.LkPowF:
				f(0, l.A)
				x.exp = int(l.B)
			case bytecode.LkPowR:
				r(0, l.A)
				x.exp = int(l.B)
			case bytecode.LkAccPow:
				x.exp = int(l.A)
			case bytecode.LkMaddFSF:
				f(0, l.A)
				s(l.B)
				f(2, l.C)
			case bytecode.LkMaddFSR:
				f(0, l.A)
				s(l.B)
				r(2, l.C)
			case bytecode.LkMaddRSF:
				r(0, l.A)
				s(l.B)
				f(2, l.C)
			case bytecode.LkMaddRSR:
				r(0, l.A)
				s(l.B)
				r(2, l.C)
			case bytecode.LkMaddFFF:
				f(0, l.A)
				f(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddFFR:
				f(0, l.A)
				f(1, l.B)
				r(2, l.C)
			case bytecode.LkMaddFRF:
				f(0, l.A)
				r(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddFRR:
				f(0, l.A)
				r(1, l.B)
				r(2, l.C)
			case bytecode.LkMaddRRF:
				r(0, l.A)
				r(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddRRR:
				r(0, l.A)
				r(1, l.B)
				r(2, l.C)
			case bytecode.LkAccAddF, bytecode.LkAccMulF, bytecode.LkTMulF,
				bytecode.LkMergeMaddTF:
				f(0, l.A)
			case bytecode.LkAccAddR, bytecode.LkAccMulR, bytecode.LkTMulR,
				bytecode.LkMergeMaddTR:
				r(0, l.A)
			case bytecode.LkMergeMulT, bytecode.LkMergeAddT:
				// no operands beyond the two accumulators
			default:
				panic(fmt.Sprintf("native: unhandled link kind %v", l.Kind))
			}
			t.links = append(t.links, x)
		}
	}
	k.tm = t
}

// exec is the per-worker executable state: a private copy of the link
// array with register-row pointers and pool scalars resolved, plus the
// worker's accumulator and scratch strips.
type exec struct {
	links   []xlink
	acc, tt []float64
}

// newExec instantiates the template for one worker: scalars come from the
// bound pool, register-row pointers from the worker's register file.
func (k *Kernel) newExec(pool, regs []float64, stride int) *exec {
	e := &exec{
		links: append([]xlink(nil), k.tm.links...),
		acc:   make([]float64, stripN),
		tt:    make([]float64, stripN),
	}
	for _, p := range k.tm.ss {
		e.links[p.li].sv = pool[p.pool]
	}
	for _, p := range k.tm.rs {
		ptr := unsafe.Pointer(&regs[int(p.reg)*stride])
		setPtr(&e.links[p.li], p.pos, ptr)
	}
	return e
}

func setPtr(l *xlink, pos int8, p unsafe.Pointer) {
	switch pos {
	case 0:
		l.pa = p
	case 1:
		l.pb = p
	default:
		l.pc = p
	}
}

// patchRow points every field operand at the current row. The single
// bounds check per operand here replaces the VM's per-instruction slice
// checks; a violation panics exactly where the VM's slicing would.
func (k *Kernel) patchRow(e *exec, n int, bases []int,
	slotData [][]float32, slotOff []int, outData [][]float32) {
	for _, p := range k.tm.fs {
		s := &k.slots[p.slot]
		off := bases[s.Field] + slotOff[p.slot]
		data := slotData[p.slot]
		if off < 0 || off+n > len(data) {
			panic(fmt.Sprintf("native: row [%d:%d) out of bounds of slot %d (len %d)",
				off, off+n, p.slot, len(data)))
		}
		setPtr(&e.links[p.li], p.pos, unsafe.Pointer(&data[off]))
	}
	for _, p := range k.tm.es {
		off := bases[k.eqs[p.eq].Field]
		data := outData[p.eq]
		if off < 0 || off+n > len(data) {
			panic(fmt.Sprintf("native: store row [%d:%d) out of bounds of eq %d (len %d)",
				off, off+n, p.eq, len(data)))
		}
		e.links[p.li].pa = unsafe.Pointer(&data[off])
	}
}

// Run executes the fused program at every point of the box for logical
// timestep t. It preserves the engine execution contract exactly —
// row-major point order, equations in program order at each point, tiling
// over the outer dimension, worker-pool parallelism and the Progress prod
// between tiles — so all halo-exchange modes run unchanged (this loop
// structure mirrors the bytecode VM's Run).
func (k *Kernel) Run(t int, b runtime.Box, pool []float64, opts *runtime.ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
	}
	fields := k.bk.Fields
	slotData := make([][]float32, len(k.slots))
	slotOff := make([]int, len(k.slots))
	for i, s := range k.slots {
		f := fields[s.Field]
		slotData[i] = f.Buf(t + s.TimeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.Off[d] * f.Bufs[0].Strides[d]
		}
		slotOff[i] = flat
	}
	outData := make([][]float32, len(k.eqs))
	for i, e := range k.eqs {
		outData[i] = fields[e.Field].Buf(t + e.TimeOff).Data
	}

	nd := len(b.Lo)
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	type tile struct{ lo, hi int }
	var tiles []tile
	for lo := b.Lo[0]; lo < b.Hi[0]; lo += tileRows {
		hi := lo + tileRows
		if hi > b.Hi[0] {
			hi = b.Hi[0]
		}
		tiles = append(tiles, tile{lo, hi})
	}

	maxRow := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		maxRow = tileRows
	}
	numRegs := k.bk.NumRegisters()

	runTile := func(tl tile, regs []float64, ex *exec) {
		idx := make([]int, nd)
		copy(idx, b.Lo)
		idx[0] = tl.lo
		bases := make([]int, len(fields))
		rowLen := b.Hi[nd-1] - b.Lo[nd-1]
		if nd == 1 {
			rowLen = tl.hi - tl.lo
		}
		for {
			for fi, f := range fields {
				base := 0
				for d := 0; d < nd; d++ {
					base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
				}
				bases[fi] = base
			}
			k.execRow(ex, regs, maxRow, rowLen, bases, slotData, slotOff, outData, pool)
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				limit := b.Hi[d]
				if d == 0 {
					limit = tl.hi
				}
				if idx[d] < limit {
					break
				}
				if d == 0 {
					break
				}
				idx[d] = b.Lo[d]
			}
			if d < 0 {
				break
			}
			if d == 0 && idx[0] >= tl.hi {
				break
			}
		}
	}

	if workers <= 1 {
		regs := make([]float64, numRegs*maxRow)
		ex := k.newExec(pool, regs, maxRow)
		for _, tl := range tiles {
			runTile(tl, regs, ex)
			if progress != nil {
				progress()
			}
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan tile, len(tiles))
	for _, tl := range tiles {
		work <- tl
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			regs := make([]float64, numRegs*maxRow)
			ex := k.newExec(pool, regs, maxRow)
			for tl := range work {
				runTile(tl, regs, ex)
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

// execRow runs every segment once over one row of n points.
func (k *Kernel) execRow(ex *exec, regs []float64, stride, n int, bases []int,
	slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	k.patchRow(ex, n, bases, slotData, slotOff, outData)
	for _, seg := range k.segs {
		if seg.shape == bytecode.ShapeVM {
			k.sweepVM(seg.vm, regs, stride, n, bases, slotData, slotOff, outData, pool)
			continue
		}
		ex.runChain(ex.links[seg.lkLo:seg.lkHi], n)
	}
}

// sweepVM executes fallback instructions with per-instruction row sweeps,
// arm for arm identical to the bytecode VM (including the explicit
// float64 conversions that pin the madd rounding).
func (k *Kernel) sweepVM(prog []bytecode.Instr, regs []float64, stride, n int,
	bases []int, slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	reg := func(r int32) []float64 {
		off := int(r) * stride
		return regs[off : off+n]
	}
	for pi := range prog {
		in := &prog[pi]
		switch in.Op {
		case bytecode.OpLoad:
			s := &k.slots[in.B]
			off := bases[s.Field] + slotOff[in.B]
			src := slotData[in.B][off : off+n]
			rd := reg(in.Rd)
			for i, v := range src {
				rd[i] = float64(v)
			}
		case bytecode.OpStore:
			e := &k.eqs[in.B]
			off := bases[e.Field]
			dst := outData[in.B][off : off+n]
			ra := reg(in.A)
			for i, v := range ra {
				dst[i] = float32(v)
			}
		case bytecode.OpCopy:
			copy(reg(in.Rd), reg(in.A))
		case bytecode.OpMovS:
			rd, v := reg(in.Rd), pool[in.B]
			for i := range rd {
				rd[i] = v
			}
		case bytecode.OpAddVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] + rb[i]
			}
		case bytecode.OpAddVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = ra[i] + s
			}
		case bytecode.OpMulVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] * rb[i]
			}
		case bytecode.OpMulVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = ra[i] * s
			}
		case bytecode.OpMaddVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			rc := reg(in.C)[:len(rd)]
			for i := range rd {
				rd[i] = float64(ra[i]*rb[i]) + rc[i]
			}
		case bytecode.OpMaddVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rc := reg(in.C)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = float64(ra[i]*s) + rc[i]
			}
		case bytecode.OpPowV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			e := int(in.B)
			for i := range rd {
				rd[i] = bytecode.Ipow(ra[i], e)
			}
		}
	}
}
