package native

import (
	"fmt"
	"sync"
	"unsafe"

	"devigo/internal/bytecode"
	"devigo/internal/runtime"
)

// xlink is one fused per-point operation, executable form: operand
// pointers are patched per worker (register rows) and per row (field
// accesses), the scalar operand is resolved from the bound pool once per
// worker. kind/exp are copied from the kernel template.
type xlink struct {
	kind       bytecode.LinkKind
	exp        int
	sv         float64
	pa, pb, pc unsafe.Pointer
}

// Operand patch descriptors, precomputed at Wrap time.
type patchF struct {
	li   int32 // link index in the flat array
	pos  int8  // which pointer: 0=pa 1=pb 2=pc
	slot int32
}
type patchR struct {
	li  int32
	pos int8
	reg int32
}
type patchS struct {
	li   int32
	pool int32
}
type patchE struct {
	li int32
	eq int32
}

// tmpl is the kernel's immutable executable template.
type tmpl struct {
	links []xlink // kinds and exponents filled; pointers nil
	fs    []patchF
	rs    []patchR
	ss    []patchS
	es    []patchE
}

// buildTemplate flattens the chain segments' links and derives the patch
// lists from each link kind's operand roles.
func (k *Kernel) buildTemplate(segs []bytecode.Segment) {
	t := &tmpl{}
	li := func() int32 { return int32(len(t.links)) }
	// Operand-role helpers: field access, register row, pool scalar.
	f := func(pos int8, slot int32) { t.fs = append(t.fs, patchF{li(), pos, slot}) }
	r := func(pos int8, reg int32) { t.rs = append(t.rs, patchR{li(), pos, reg}) }
	s := func(pool int32) { t.ss = append(t.ss, patchS{li(), pool}) }
	for _, seg := range segs {
		if seg.Shape == bytecode.ShapeVM {
			continue
		}
		for _, l := range seg.Links {
			x := xlink{kind: l.Kind}
			switch l.Kind {
			case bytecode.LkToRow:
				r(0, l.A)
			case bytecode.LkStore:
				t.es = append(t.es, patchE{li(), l.A})
			case bytecode.LkMovS, bytecode.LkAccAddS, bytecode.LkAccMulS,
				bytecode.LkTMulS, bytecode.LkMergeMaddTS:
				s(l.A)
			case bytecode.LkMulFS, bytecode.LkAddFS, bytecode.LkTMulFS,
				bytecode.LkAccMaddFS, bytecode.LkTMaddFS:
				f(0, l.A)
				s(l.B)
			case bytecode.LkMulRS, bytecode.LkAddRS, bytecode.LkTMulRS,
				bytecode.LkAccMaddRS, bytecode.LkTMaddRS:
				r(0, l.A)
				s(l.B)
			case bytecode.LkMulFF, bytecode.LkAddFF, bytecode.LkTMulFF,
				bytecode.LkAccMaddFF:
				f(0, l.A)
				f(1, l.B)
			case bytecode.LkMulFR, bytecode.LkAddFR, bytecode.LkTMulFR,
				bytecode.LkAccMaddFR:
				f(0, l.A)
				r(1, l.B)
			case bytecode.LkMulRR, bytecode.LkAddRR, bytecode.LkTMulRR,
				bytecode.LkAccMaddRR:
				r(0, l.A)
				r(1, l.B)
			case bytecode.LkPowF:
				f(0, l.A)
				x.exp = int(l.B)
			case bytecode.LkPowR:
				r(0, l.A)
				x.exp = int(l.B)
			case bytecode.LkAccPow:
				x.exp = int(l.A)
			case bytecode.LkMaddFSF:
				f(0, l.A)
				s(l.B)
				f(2, l.C)
			case bytecode.LkMaddFSR:
				f(0, l.A)
				s(l.B)
				r(2, l.C)
			case bytecode.LkMaddRSF:
				r(0, l.A)
				s(l.B)
				f(2, l.C)
			case bytecode.LkMaddRSR:
				r(0, l.A)
				s(l.B)
				r(2, l.C)
			case bytecode.LkMaddFFF:
				f(0, l.A)
				f(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddFFR:
				f(0, l.A)
				f(1, l.B)
				r(2, l.C)
			case bytecode.LkMaddFRF:
				f(0, l.A)
				r(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddFRR:
				f(0, l.A)
				r(1, l.B)
				r(2, l.C)
			case bytecode.LkMaddRRF:
				r(0, l.A)
				r(1, l.B)
				f(2, l.C)
			case bytecode.LkMaddRRR:
				r(0, l.A)
				r(1, l.B)
				r(2, l.C)
			case bytecode.LkAccAddF, bytecode.LkAccMulF, bytecode.LkTMulF,
				bytecode.LkMergeMaddTF:
				f(0, l.A)
			case bytecode.LkAccAddR, bytecode.LkAccMulR, bytecode.LkTMulR,
				bytecode.LkMergeMaddTR:
				r(0, l.A)
			case bytecode.LkMergeMulT, bytecode.LkMergeAddT:
				// no operands beyond the two accumulators
			default:
				panic(fmt.Sprintf("native: unhandled link kind %v", l.Kind))
			}
			t.links = append(t.links, x)
		}
	}
	k.tm = t
}

// exec is the per-worker executable state: a private copy of the link
// array with register-row pointers and pool scalars resolved, plus the
// worker's accumulator and scratch strips.
type exec struct {
	links   []xlink
	acc, tt []float64
}

// newExec instantiates the template for one worker: scalars come from the
// bound pool, register-row pointers from the worker's register file.
func (k *Kernel) newExec(pool, regs []float64, stride int) *exec {
	e := &exec{
		links: append([]xlink(nil), k.tm.links...),
		acc:   make([]float64, stripN),
		tt:    make([]float64, stripN),
	}
	for _, p := range k.tm.ss {
		e.links[p.li].sv = pool[p.pool]
	}
	for _, p := range k.tm.rs {
		ptr := unsafe.Pointer(&regs[int(p.reg)*stride])
		setPtr(&e.links[p.li], p.pos, ptr)
	}
	return e
}

func setPtr(l *xlink, pos int8, p unsafe.Pointer) {
	switch pos {
	case 0:
		l.pa = p
	case 1:
		l.pb = p
	default:
		l.pc = p
	}
}

// patchRow points every field operand at the current row. The single
// bounds check per operand here replaces the VM's per-instruction slice
// checks; a violation panics exactly where the VM's slicing would.
func (k *Kernel) patchRow(e *exec, n int, bases []int,
	slotData [][]float32, slotOff []int, outData [][]float32) {
	for _, p := range k.tm.fs {
		s := &k.slots[p.slot]
		off := bases[s.Field] + slotOff[p.slot]
		data := slotData[p.slot]
		if off < 0 || off+n > len(data) {
			panic(fmt.Sprintf("native: row [%d:%d) out of bounds of slot %d (len %d)",
				off, off+n, p.slot, len(data)))
		}
		setPtr(&e.links[p.li], p.pos, unsafe.Pointer(&data[off]))
	}
	for _, p := range k.tm.es {
		off := bases[k.eqs[p.eq].Field]
		data := outData[p.eq]
		if off < 0 || off+n > len(data) {
			panic(fmt.Sprintf("native: store row [%d:%d) out of bounds of eq %d (len %d)",
				off, off+n, p.eq, len(data)))
		}
		e.links[p.li].pa = unsafe.Pointer(&data[off])
	}
}

// natScratch is one worker's private sweep state: the odometer, the
// per-field row bases, the register file and a cached exec whose
// register-row pointers are re-patched (allocation-free) whenever the
// row pitch or the register backing array changes.
type natScratch struct {
	idx    []int
	bases  []int
	regs   []float64
	ex     *exec
	stride int
}

// natState is the kernel's reusable dispatch state, allocated eagerly at
// Wrap/Rebind time so the steady-state Run path performs no heap
// allocation. Slice *contents* are refilled every Run (buffer rotation
// makes the t-dependent data pointers change per step); the backing
// arrays persist. Rebind installs a fresh state in the copy, so rebound
// kernels stay safe to run concurrently with the original.
type natState struct {
	task     natTask
	slotData [][]float32
	slotOff  []int
	outData  [][]float32
	ws       []*natScratch
}

func newNatState(k *Kernel) *natState {
	return &natState{
		slotData: make([][]float32, len(k.slots)),
		slotOff:  make([]int, len(k.slots)),
		outData:  make([][]float32, len(k.eqs)),
	}
}

// refill resolves the per-(field,timeOff) data slices and flat stencil
// displacements against the current strides, once per Run.
func (st *natState) refill(k *Kernel, t int, b runtime.Box) {
	fields := k.bk.Fields
	for i, s := range k.slots {
		f := fields[s.Field]
		st.slotData[i] = f.Buf(t + s.TimeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.Off[d] * f.Bufs[0].Strides[d]
		}
		st.slotOff[i] = flat
	}
	for i, e := range k.eqs {
		st.outData[i] = fields[e.Field].Buf(t + e.TimeOff).Data
	}
}

// prep readies worker scratch sc for a Run with the given register-file
// length and row pitch. Register rows are re-pointed only when geometry
// changed; scalar-pool values are refreshed every Run (BindSyms produces a
// new pool per operator/shot). Steady state with unchanged geometry
// performs no allocation. Called from the single-threaded dispatch
// prologue only.
func (k *Kernel) prep(sc *natScratch, pool []float64, regLen, stride int) {
	if len(sc.regs) < regLen {
		sc.regs = make([]float64, regLen)
		sc.ex = nil
	}
	if sc.ex == nil {
		sc.ex = &exec{
			links: append([]xlink(nil), k.tm.links...),
			acc:   make([]float64, stripN),
			tt:    make([]float64, stripN),
		}
		sc.stride = -1
	}
	if sc.stride != stride {
		sc.stride = stride
		for _, p := range k.tm.rs {
			setPtr(&sc.ex.links[p.li], p.pos, unsafe.Pointer(&sc.regs[int(p.reg)*stride]))
		}
	}
	for _, p := range k.tm.ss {
		sc.ex.links[p.li].sv = pool[p.pool]
	}
}

// ensureScratch grows the per-worker scratch table to `workers` entries.
// Called from the single-threaded dispatch prologue only, never from
// workers, so the pool path indexes a stable table.
func (st *natState) ensureScratch(workers, nd, nf int) {
	for len(st.ws) < workers {
		st.ws = append(st.ws, &natScratch{idx: make([]int, nd), bases: make([]int, nf)})
	}
}

// natTask adapts one Run invocation to the pool's Task contract. It lives
// inside the kernel's natState so handing it to the pool converts a
// pointer to an interface without allocating.
type natTask struct {
	k        *Kernel
	b        runtime.Box
	pool     []float64
	tileRows int
	maxRow   int
}

// RunTile executes one row band with worker w's scratch.
func (tk *natTask) RunTile(w, tile int) {
	lo, hi := runtime.TileBounds(tk.b, tile, tk.tileRows)
	tk.k.runTile(tk.k.st.ws[w], tk.b, lo, hi, tk.maxRow, tk.pool)
}

// runTile executes rows [lo,hi) of the box's outer dimension with worker
// scratch sc: an odometer over dims 0..nd-2, the innermost dimension as
// the contiguous row.
func (k *Kernel) runTile(sc *natScratch, b runtime.Box, lo, hi, maxRow int, pool []float64) {
	st := k.st
	fields := k.bk.Fields
	nd := len(b.Lo)
	idx := sc.idx[:nd]
	copy(idx, b.Lo)
	idx[0] = lo
	bases := sc.bases[:len(fields)]
	rowLen := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		rowLen = hi - lo
	}
	for {
		for fi, f := range fields {
			base := 0
			for d := 0; d < nd; d++ {
				base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
			}
			bases[fi] = base
		}
		k.execRow(sc.ex, sc.regs, maxRow, rowLen, bases, st.slotData, st.slotOff, st.outData, pool)
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			limit := b.Hi[d]
			if d == 0 {
				limit = hi
			}
			if idx[d] < limit {
				break
			}
			if d == 0 {
				break
			}
			idx[d] = b.Lo[d]
		}
		if d < 0 {
			break
		}
		if d == 0 && idx[0] >= hi {
			break
		}
	}
}

// Run executes the fused program at every point of the box for logical
// timestep t. It preserves the engine execution contract exactly —
// row-major point order, equations in program order at each point, tiling
// over the outer dimension, worker-pool parallelism and the Progress prod
// between tiles — so all halo-exchange modes run unchanged (this loop
// structure mirrors the bytecode VM's Run), and results are bit-identical
// for every worker count and dispatch mode (tiles are disjoint row bands).
func (k *Kernel) Run(t int, b runtime.Box, pool []float64, opts *runtime.ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	var wp *runtime.Pool
	steal := false
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
		if opts.Pool != nil && opts.Pool.Workers() > 1 {
			wp = opts.Pool
			workers = wp.Workers()
		}
		steal = opts.Steal
	}
	nd := len(b.Lo)
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	ntiles := runtime.TileCount(b, tileRows)
	maxRow := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		maxRow = tileRows
	}
	numRegs := k.bk.NumRegisters()

	st := k.st
	st.refill(k, t, b)
	st.ensureScratch(workers, nd, len(k.bk.Fields))

	if wp != nil {
		for _, sc := range st.ws[:workers] {
			k.prep(sc, pool, numRegs*maxRow, maxRow)
		}
		st.task = natTask{k: k, b: b, pool: pool, tileRows: tileRows, maxRow: maxRow}
		wp.Run(&st.task, ntiles, t, steal, progress)
		return
	}
	if workers <= 1 {
		sc := st.ws[0]
		k.prep(sc, pool, numRegs*maxRow, maxRow)
		for tile := 0; tile < ntiles; tile++ {
			lo, hi := runtime.TileBounds(b, tile, tileRows)
			k.runTile(sc, b, lo, hi, maxRow, pool)
			if progress != nil {
				progress()
			}
		}
		return
	}
	k.forkJoinRun(b, pool, workers, ntiles, tileRows, maxRow, nd, numRegs, progress)
}

// forkJoinRun is the legacy fork-join dispatch: fresh goroutines, a tile
// channel and per-goroutine scratch on every call. Kept selectable (nil
// Pool) as the overhead baseline the persistent pool is benchmarked
// against. Split out of Run so its goroutine closure does not force heap
// allocation of Run's locals on the (alloc-free) pool and serial paths.
func (k *Kernel) forkJoinRun(b runtime.Box, pool []float64, workers, ntiles, tileRows, maxRow, nd, numRegs int, progress func()) {
	var wg sync.WaitGroup
	work := make(chan int, ntiles)
	for i := 0; i < ntiles; i++ {
		work <- i
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			sc := &natScratch{
				idx:    make([]int, nd),
				bases:  make([]int, len(k.bk.Fields)),
				regs:   make([]float64, numRegs*maxRow),
				stride: maxRow,
			}
			sc.ex = k.newExec(pool, sc.regs, maxRow)
			for tile := range work {
				lo, hi := runtime.TileBounds(b, tile, tileRows)
				k.runTile(sc, b, lo, hi, maxRow, pool)
				// One worker doubles as the progress engine, mirroring
				// the sacrificed OpenMP thread of the paper's full mode.
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

// execRow runs every segment once over one row of n points.
func (k *Kernel) execRow(ex *exec, regs []float64, stride, n int, bases []int,
	slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	k.patchRow(ex, n, bases, slotData, slotOff, outData)
	for _, seg := range k.segs {
		if seg.shape == bytecode.ShapeVM {
			k.sweepVM(seg.vm, regs, stride, n, bases, slotData, slotOff, outData, pool)
			continue
		}
		ex.runChain(ex.links[seg.lkLo:seg.lkHi], n)
	}
}

// sweepVM executes fallback instructions with per-instruction row sweeps,
// arm for arm identical to the bytecode VM (including the explicit
// float64 conversions that pin the madd rounding).
func (k *Kernel) sweepVM(prog []bytecode.Instr, regs []float64, stride, n int,
	bases []int, slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	reg := func(r int32) []float64 {
		off := int(r) * stride
		return regs[off : off+n]
	}
	for pi := range prog {
		in := &prog[pi]
		switch in.Op {
		case bytecode.OpLoad:
			s := &k.slots[in.B]
			off := bases[s.Field] + slotOff[in.B]
			src := slotData[in.B][off : off+n]
			rd := reg(in.Rd)
			for i, v := range src {
				rd[i] = float64(v)
			}
		case bytecode.OpStore:
			e := &k.eqs[in.B]
			off := bases[e.Field]
			dst := outData[in.B][off : off+n]
			ra := reg(in.A)
			for i, v := range ra {
				dst[i] = float32(v)
			}
		case bytecode.OpCopy:
			copy(reg(in.Rd), reg(in.A))
		case bytecode.OpMovS:
			rd, v := reg(in.Rd), pool[in.B]
			for i := range rd {
				rd[i] = v
			}
		case bytecode.OpAddVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] + rb[i]
			}
		case bytecode.OpAddVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = ra[i] + s
			}
		case bytecode.OpMulVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] * rb[i]
			}
		case bytecode.OpMulVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = ra[i] * s
			}
		case bytecode.OpMaddVV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rb := reg(in.B)[:len(rd)]
			rc := reg(in.C)[:len(rd)]
			for i := range rd {
				rd[i] = float64(ra[i]*rb[i]) + rc[i]
			}
		case bytecode.OpMaddVS:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			rc := reg(in.C)[:len(rd)]
			s := pool[in.B]
			for i := range rd {
				rd[i] = float64(ra[i]*s) + rc[i]
			}
		case bytecode.OpPowV:
			rd := reg(in.Rd)
			ra := reg(in.A)[:len(rd)]
			e := int(in.B)
			for i := range rd {
				rd[i] = bytecode.Ipow(ra[i], e)
			}
		}
	}
}
