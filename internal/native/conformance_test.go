package native

import (
	"math"
	"testing"

	"devigo/internal/bytecode"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/ir"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// The conformance table: a set of small scenario kernels whose union
// exercises every bytecode opcode and every native segment shape. Each
// scenario compiles the same symbolic nest with both engines over
// identically initialised fields, runs them (sequentially, tiled, and
// with a worker pool; grid widths are chosen so both the vectorized
// strips and the scalar remainder tail execute), asserts bit-identical
// output, and contributes its compiled program and lowered segments to
// the coverage ledger. The final assertions fail if any opcode or any
// run shape is left unexercised — so adding an opcode or a segment shape
// without extending this table is a test failure, not a silent gap.

// confNest is one scenario's symbolic input plus its scratch state: two
// disjoint field sets (one per engine) built over the same grid.
type confNest struct {
	assigns []symbolic.Assignment
	eqs     []symbolic.Eq
	radius  []int
	cluster *ir.Cluster // set instead of eqs for derivative-bearing nests
	fB, fN  map[string]*field.Function
	outs    []string // fields whose buffers are compared
	vals    map[string]float64
}

// confTimeFn allocates one identically-initialised time function per
// engine.
func confTimeFn(t *testing.T, name string, g *grid.Grid, so int) (*field.TimeFunction, *field.TimeFunction) {
	t.Helper()
	mk := func() *field.TimeFunction {
		u, err := field.NewTimeFunction(name, g, so, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk(), mk()
	for _, f := range []*field.TimeFunction{a, b} {
		buf := f.Buf(0)
		for i := range buf.Data {
			buf.Data[i] = float32((i*13)%29)*0.125 - 1
		}
	}
	return a, b
}

// confScenarios builds the table. Scenario nests are deliberately
// contrived where needed: real propagators never emit opCopy or opMovS
// (the probe scenarios cover the arithmetic vocabulary), so dedicated
// nests pin those paths.
func confScenarios(t *testing.T) map[string]confNest {
	t.Helper()
	out := map[string]confNest{}

	// Diffusion stencil (derivatives expanded through ir.Lower, like the
	// real pipeline): load/mulvs/addvv/madd chains ending in a store
	// (ShapeChainStore).
	{
		g := grid.MustNew([]int{17, 13}, []float64{3, 5})
		uB, uN := confTimeFn(t, "u", g, 4)
		eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(uB.Ref), 1), RHS: symbolic.Laplace(symbolic.At(uB.Ref), 2, 4)}
		sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(uB.Ref))
		if err != nil {
			t.Fatal(err)
		}
		clusters, err := ir.Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(uB.Ref), RHS: sol}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		out["diffusion"] = confNest{
			cluster: clusters[0],
			fB:      map[string]*field.Function{"u": &uB.Function},
			fN:      map[string]*field.Function{"u": &uN.Function},
			outs:    []string{"u"},
			vals:    map[string]float64{"dt": 0.001, "h_x": 3, "h_y": 5},
		}
	}

	// Temporaries + per-point powers: opCopy (an assignment aliasing a
	// cached load), opPowV, mulvv/maddvv, and a surviving register row
	// (ShapeChain ending in LkToRow).
	{
		g := grid.MustNew([]int{12, 21}, nil)
		uB, uN := confTimeFn(t, "u", g, 2)
		mkM := func() *field.Function {
			m, err := field.NewFunction("m", g, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			buf := m.Bufs[0]
			for i := range buf.Data {
				buf.Data[i] = 1.5 + float32(i%7)*0.25
			}
			return m
		}
		mB, mN := mkM(), mkM()
		ref, mref := uB.Ref, mB.Ref
		assigns := []symbolic.Assignment{
			// r0 aliases the cached centre load: compiles to opCopy.
			{Name: "r0", Value: symbolic.At(mref)},
			{Name: "r1", Value: symbolic.NewMul(
				symbolic.NewAdd(symbolic.Shifted(ref, 0, -1, 0), symbolic.Shifted(ref, 0, 1, 0)),
				symbolic.Pow{Base: symbolic.S("r0"), Exp: -2},
			)},
		}
		rhs := symbolic.NewAdd(
			symbolic.NewMul(symbolic.S("r1"), symbolic.S("r1")),
			symbolic.NewMul(symbolic.S("r0"), symbolic.Shifted(ref, 0, 0, -1), symbolic.S("dt")),
			symbolic.Pow{Base: symbolic.At(ref), Exp: 3},
			// Two distinct stencil reads multiplied: fuses as opMaddVV.
			symbolic.NewMul(symbolic.Shifted(ref, 0, 1, 0), symbolic.Shifted(ref, 0, 0, 1)),
		)
		out["temps-pow"] = confNest{
			assigns: assigns,
			eqs:     []symbolic.Eq{{LHS: symbolic.ForwardStencil(ref), RHS: rhs}},
			radius:  []int{1, 1},
			fB:      map[string]*field.Function{"u": &uB.Function, "m": mB},
			fN:      map[string]*field.Function{"u": &uN.Function, "m": mN},
			outs:    []string{"u"},
			vals:    map[string]float64{"dt": 0.37},
		}
	}

	// Pure scalar RHS: opMovS broadcast.
	{
		g := grid.MustNew([]int{6, 9}, nil)
		uB, uN := confTimeFn(t, "u", g, 2)
		rhs := symbolic.NewMul(symbolic.S("dt"), symbolic.S("dt"))
		out["scalar-broadcast"] = confNest{
			eqs:    []symbolic.Eq{{LHS: symbolic.ForwardStencil(uB.Ref), RHS: rhs}},
			radius: []int{0, 0},
			fB:     map[string]*field.Function{"u": &uB.Function},
			fN:     map[string]*field.Function{"u": &uN.Function},
			outs:   []string{"u"},
			vals:   map[string]float64{"dt": 0.25},
		}
	}

	// Field + scalar: opAddVS.
	{
		g := grid.MustNew([]int{5, 23}, nil)
		uB, uN := confTimeFn(t, "u", g, 2)
		rhs := symbolic.NewAdd(symbolic.At(uB.Ref), symbolic.S("dt"))
		out["add-scalar"] = confNest{
			eqs:    []symbolic.Eq{{LHS: symbolic.ForwardStencil(uB.Ref), RHS: rhs}},
			radius: []int{0, 0},
			fB:     map[string]*field.Function{"u": &uB.Function},
			fN:     map[string]*field.Function{"u": &uN.Function},
			outs:   []string{"u"},
			vals:   map[string]float64{"dt": 0.125},
		}
	}

	// Cross-equation aliasing at a nonzero offset: the second equation
	// reads the first equation's freshly stored row one point to the left,
	// which the segment extractor must refuse to fuse — the whole program
	// drops to a verbatim VM segment (ShapeVM), the native engine's
	// correctness escape hatch.
	{
		g := grid.MustNew([]int{6, 18}, nil)
		uB, uN := confTimeFn(t, "u", g, 2)
		vB, vN := confTimeFn(t, "v", g, 2)
		// Field references resolve by name at compile time, so one equation
		// set serves both engines' field maps.
		eqs := []symbolic.Eq{
			{LHS: symbolic.ForwardStencil(uB.Ref), RHS: symbolic.NewAdd(symbolic.At(uB.Ref), symbolic.S("dt"))},
			{LHS: symbolic.ForwardStencil(vB.Ref), RHS: symbolic.NewMul(symbolic.Shifted(uB.Ref, 1, 0, -1), symbolic.Int(2))},
		}
		out["store-alias-vm"] = confNest{
			eqs:    eqs,
			radius: []int{0, 1},
			fB:     map[string]*field.Function{"u": &uB.Function, "v": &vB.Function},
			fN:     map[string]*field.Function{"u": &uN.Function, "v": &vN.Function},
			outs:   []string{"u", "v"},
			vals:   map[string]float64{"dt": 0.5},
		}
	}
	return out
}

func confBox(f *field.Function) runtime.Box {
	nd := f.NDims()
	b := runtime.Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	copy(b.Hi, f.LocalShape)
	return b
}

// TestConformanceOpcodeAndShapeCoverage is the table driver: bit-exact
// native-vs-bytecode execution per scenario, then the coverage
// assertions over the union.
func TestConformanceOpcodeAndShapeCoverage(t *testing.T) {
	opSeen := make([]bool, bytecode.NumOpcodes)
	shapeSeen := map[bytecode.Shape]bool{}

	for name, n := range confScenarios(t) {
		t.Run(name, func(t *testing.T) {
			var kB *bytecode.Kernel
			var nk *Kernel
			var err error
			if n.cluster != nil {
				kB, err = bytecode.CompileCluster(n.cluster, n.fB)
				if err != nil {
					t.Fatal(err)
				}
				var bkN *bytecode.Kernel
				bkN, err = bytecode.CompileCluster(n.cluster, n.fN)
				if err != nil {
					t.Fatal(err)
				}
				nk = Wrap(bkN)
			} else {
				kB, err = bytecode.CompileNest(n.assigns, n.eqs, n.radius, n.fB)
				if err != nil {
					t.Fatal(err)
				}
				nk, err = CompileNest(n.assigns, n.eqs, n.radius, n.fN)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, in := range nk.Bytecode().Program() {
				opSeen[in.Op] = true
			}
			for _, seg := range nk.Segments() {
				shapeSeen[seg.Shape] = true
				for _, in := range seg.VM {
					opSeen[in.Op] = true
				}
			}
			poolB, err := kB.BindSyms(n.vals)
			if err != nil {
				t.Fatal(err)
			}
			poolN, err := nk.BindSyms(n.vals)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []*runtime.ExecOpts{nil, {TileRows: 3}, {Workers: 3, TileRows: 2}} {
				kB.Run(0, confBox(n.fB[n.outs[0]]), poolB, opts)
				nk.Run(0, confBox(n.fN[n.outs[0]]), poolN, opts)
				for _, fn := range n.outs {
					fb, fn2 := n.fB[fn], n.fN[fn]
					for bi := range fb.Bufs {
						da, db := fb.Bufs[bi].Data, fn2.Bufs[bi].Data
						for i := range da {
							if da[i] != db[i] && !(math.IsNaN(float64(da[i])) && math.IsNaN(float64(db[i]))) {
								t.Fatalf("%s: field %s buf %d lane %d: bytecode %v, native %v",
									name, fn, bi, i, da[i], db[i])
							}
						}
					}
				}
			}
			if kB.FlopsPerPoint() != nk.FlopsPerPoint() {
				t.Errorf("flop accounting differs: bytecode %d, native %d",
					kB.FlopsPerPoint(), nk.FlopsPerPoint())
			}
		})
	}

	for op := 0; op < bytecode.NumOpcodes; op++ {
		if !opSeen[op] {
			t.Errorf("opcode %q not exercised by any conformance scenario", bytecode.OpName(byte(op)))
		}
	}
	for si, sn := range bytecode.ShapeNames() {
		if !shapeSeen[bytecode.Shape(si)] {
			t.Errorf("segment shape %q not exercised by any conformance scenario", sn)
		}
	}
}
