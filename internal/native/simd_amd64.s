//go:build amd64

// AVX2 strip primitives (see simd_amd64.go for the contract). All loops
// assume n is a positive multiple of 4 (or zero) and advance raw pointers,
// so no indexed addressing or bounds state is needed. float32 operands are
// widened with VCVTPS2PD (exact), products and sums round with VMULPD /
// VADDPD (never FMA), and float32 stores narrow with VCVTPD2PS — each the
// same correctly-rounded IEEE operation the scalar engines perform.

#include "textflag.h"

DATA vone<>+0x00(SB)/8, $0x3FF0000000000000 // 1.0
GLOBL vone<>(SB), RODATA, $8

// func vmovS(d unsafe.Pointer, s float64, n int)
TEXT ·vmovS(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	VBROADCASTSD s+8(FP), Y0
	MOVQ n+16(FP), CX
	SHRQ $2, CX
	JZ   movsdone
movsloop:
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	DECQ CX
	JNZ  movsloop
movsdone:
	VZEROUPPER
	RET

// func vmulRS(d, a unsafe.Pointer, s float64, n int)
TEXT ·vmulRS(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   mulrsdone
mulrsloop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  mulrsloop
mulrsdone:
	VZEROUPPER
	RET

// func vmulRR(d, a, b unsafe.Pointer, n int)
TEXT ·vmulRR(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   mulrrdone
mulrrloop:
	VMOVUPD (SI), Y1
	VMULPD  (DX), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulrrloop
mulrrdone:
	VZEROUPPER
	RET

// func vmulFS(d, f unsafe.Pointer, s float64, n int)
TEXT ·vmulFS(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   mulfsdone
mulfsloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMULPD     Y0, Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  mulfsloop
mulfsdone:
	VZEROUPPER
	RET

// func vmulFR(d, f, r unsafe.Pointer, n int)
TEXT ·vmulFR(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ r+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   mulfrdone
mulfrloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMULPD     (DX), Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulfrloop
mulfrdone:
	VZEROUPPER
	RET

// func vmulFF(d, f, f2 unsafe.Pointer, n int)
TEXT ·vmulFF(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ f2+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   mulffdone
mulffloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMOVUPS    (DX), X2
	VCVTPS2PD  X2, Y2
	VMULPD     Y2, Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $16, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulffloop
mulffdone:
	VZEROUPPER
	RET

// func vaddRS(d, a unsafe.Pointer, s float64, n int)
TEXT ·vaddRS(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   addrsdone
addrsloop:
	VMOVUPD (SI), Y1
	VADDPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  addrsloop
addrsdone:
	VZEROUPPER
	RET

// func vaddRR(d, a, b unsafe.Pointer, n int)
TEXT ·vaddRR(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   addrrdone
addrrloop:
	VMOVUPD (SI), Y1
	VADDPD  (DX), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  addrrloop
addrrdone:
	VZEROUPPER
	RET

// func vaddFS(d, f unsafe.Pointer, s float64, n int)
TEXT ·vaddFS(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   addfsdone
addfsloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VADDPD     Y0, Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  addfsloop
addfsdone:
	VZEROUPPER
	RET

// func vaddFR(d, f, r unsafe.Pointer, n int)
TEXT ·vaddFR(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ r+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   addfrdone
addfrloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VADDPD     (DX), Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  addfrloop
addfrdone:
	VZEROUPPER
	RET

// func vaddFF(d, f, f2 unsafe.Pointer, n int)
TEXT ·vaddFF(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ f2+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX
	JZ   addffdone
addffloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMOVUPS    (DX), X2
	VCVTPS2PD  X2, Y2
	VADDPD     Y2, Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $16, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  addffloop
addffdone:
	VZEROUPPER
	RET

// func vmaddFS(d, f unsafe.Pointer, s float64, c unsafe.Pointer, n int)
TEXT ·vmaddFS(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	JZ   maddfsdone
maddfsloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMULPD     Y0, Y1, Y1
	VADDPD     (R8), Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  maddfsloop
maddfsdone:
	VZEROUPPER
	RET

// func vmaddFF(d, f, f2, c unsafe.Pointer, n int)
TEXT ·vmaddFF(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ f2+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	JZ   maddffdone
maddffloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMOVUPS    (DX), X2
	VCVTPS2PD  X2, Y2
	VMULPD     Y2, Y1, Y1
	VADDPD     (R8), Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $16, DX
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  maddffloop
maddffdone:
	VZEROUPPER
	RET

// func vmaddFR(d, f, r, c unsafe.Pointer, n int)
TEXT ·vmaddFR(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ f+8(FP), SI
	MOVQ r+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	JZ   maddfrdone
maddfrloop:
	VMOVUPS    (SI), X1
	VCVTPS2PD  X1, Y1
	VMULPD     (DX), Y1, Y1
	VADDPD     (R8), Y1, Y1
	VMOVUPD    Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  maddfrloop
maddfrdone:
	VZEROUPPER
	RET

// func vmaddRS(d, a unsafe.Pointer, s float64, c unsafe.Pointer, n int)
TEXT ·vmaddRS(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	JZ   maddrsdone
maddrsloop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (R8), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  maddrsloop
maddrsdone:
	VZEROUPPER
	RET

// func vmaddRR(d, a, b, c unsafe.Pointer, n int)
TEXT ·vmaddRR(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	JZ   maddrrdone
maddrrloop:
	VMOVUPD (SI), Y1
	VMULPD  (DX), Y1, Y1
	VADDPD  (R8), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  maddrrloop
maddrrdone:
	VZEROUPPER
	RET

// func vcvtStore(o, a unsafe.Pointer, n int)
TEXT ·vcvtStore(SB), NOSPLIT, $0-24
	MOVQ o+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX
	JZ   cvtstdone
cvtstloop:
	VMOVUPD    (SI), Y1
	VCVTPD2PSY Y1, X1
	VMOVUPS    X1, (DI)
	ADDQ $32, SI
	ADDQ $16, DI
	DECQ CX
	JNZ  cvtstloop
cvtstdone:
	VZEROUPPER
	RET

// func vsq(d, a unsafe.Pointer, n int)
TEXT ·vsq(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX
	JZ   sqdone
sqloop:
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  sqloop
sqdone:
	VZEROUPPER
	RET

// func vrecip(d, a unsafe.Pointer, n int)
TEXT ·vrecip(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD vone<>(SB), Y0
	SHRQ $2, CX
	JZ   recipdone
reciploop:
	VMOVUPD (SI), Y1
	VDIVPD  Y1, Y0, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  reciploop
recipdone:
	VZEROUPPER
	RET

// func vrecipSq(d, a unsafe.Pointer, n int)
TEXT ·vrecipSq(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD vone<>(SB), Y0
	SHRQ $2, CX
	JZ   recipsqdone
recipsqloop:
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y1, Y1
	VDIVPD  Y1, Y0, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  recipsqloop
recipsqdone:
	VZEROUPPER
	RET
