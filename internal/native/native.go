// Package native is devigo's third execution engine: specialized Go
// bulk-row kernels that execute whole opcode *runs* per row instead of
// dispatching the register VM once per instruction.
//
// The engine reuses the bytecode compiler wholesale — symbolic lowering,
// load caching, madd fusion, scalar-pool hoisting — and then re-lowers the
// compiled row program through bytecode.ExtractSegments into fused
// accumulation chains (see the LinkKind vocabulary in package bytecode).
// Each chain executes over fixed-width strips of the row (256 points):
// every link dispatches one SIMD primitive over the whole strip — AVX2
// assembly on amd64, an equivalent pure-Go loop elsewhere — with field
// operands read through unsafe pointers patched once per row (one bounds
// check per operand per row instead of per point). The primitives widen
// float32 lanes to float64 exactly as the VM's load opcode does and
// round after every multiply and after every add (multiply and add are
// emitted as separate correctly-rounded IEEE instructions, never FMA) —
// so the engine is bit-exact with the bytecode VM and the interpreter by
// construction, NaN payloads and signed zeros included. Rows split into
// a vectorized n&^3 body plus a per-point scalar tail, so any row width
// runs. Program regions that do not lower to chains fall back to
// per-instruction row sweeps identical to the VM's.
//
// The speedup comes from three removals: the full-row intermediate
// traffic (the VM materializes every instruction's result as a whole
// register row; chain values stream through a cache-resident strip
// accumulator instead), the per-instruction row passes (one fused pass
// per chain), and the per-instruction slice bounds checks (hoisted to
// row-patch time), plus 4-lane SIMD arithmetic inside each primitive.
package native

import (
	"devigo/internal/bytecode"
	"devigo/internal/field"
	"devigo/internal/symbolic"
)

// Kernel is a compiled loop nest lowered to fused segment programs. It
// wraps the bytecode kernel it was derived from (sharing its program,
// scalar pool, slot tables and field bindings) and satisfies the same
// execution contract (core.ExecKernel).
type Kernel struct {
	bk    *bytecode.Kernel
	slots []bytecode.SlotRef
	eqs   []bytecode.EqRef
	segs  []segment
	tm    *tmpl
	// fusedInstrs is the per-point dispatch count after fusion: one per
	// chain link plus one per fallback VM instruction.
	fusedInstrs int
	// st is the kernel's private reusable dispatch state (slot tables,
	// per-worker scratch and cached execs). Allocated at Wrap time and
	// replaced on Rebind, never shared between kernel copies.
	st *natState
}

// segment is one executable region: either a fused link chain or a VM
// fallback instruction list, in program order.
type segment struct {
	shape bytecode.Shape
	// Link range within the kernel's flat link array (chain shapes).
	lkLo, lkHi int
	vm         []bytecode.Instr
}

// CompileNest compiles one optimized loop nest for the native engine: the
// bytecode compiler produces the row program, and the segment extraction
// re-lowers it into fused chains.
func CompileNest(assigns []symbolic.Assignment, eqs []symbolic.Eq, radius []int,
	fields map[string]*field.Function) (*Kernel, error) {
	bk, err := bytecode.CompileNest(assigns, eqs, radius, fields)
	if err != nil {
		return nil, err
	}
	return Wrap(bk), nil
}

// Wrap lowers an already-compiled bytecode kernel into a native kernel.
// The receiver shares the bytecode kernel's immutable tables; Run never
// mutates them.
func Wrap(bk *bytecode.Kernel) *Kernel {
	k := &Kernel{bk: bk, slots: bk.Slots(), eqs: bk.EqOuts()}
	segs := bk.Segments()
	k.segs = make([]segment, len(segs))
	nlinks := 0
	for i, s := range segs {
		k.segs[i] = segment{shape: s.Shape, vm: s.VM}
		if s.Shape != bytecode.ShapeVM {
			k.segs[i].lkLo = nlinks
			nlinks += len(s.Links)
			k.segs[i].lkHi = nlinks
			k.fusedInstrs += len(s.Links)
		} else {
			k.fusedInstrs += len(s.VM)
		}
	}
	k.buildTemplate(segs)
	k.st = newNatState(k)
	return k
}

// Bytecode returns the underlying bytecode kernel (introspection for
// tests, the compilation report and the docs' lowering traces).
func (k *Kernel) Bytecode() *bytecode.Kernel { return k.bk }

// Segments re-derives the kernel's fused-segment partition.
func (k *Kernel) Segments() []bytecode.Segment { return k.bk.Segments() }

// BindSyms delegates to the bytecode kernel: the scalar pool layout and
// the bind-time prelude are shared between the two engines.
func (k *Kernel) BindSyms(vals map[string]float64) ([]float64, error) {
	return k.bk.BindSyms(vals)
}

// FlopsPerPoint reports the per-point flop cost, counted identically to
// the other engines (fusion changes dispatch, not arithmetic).
func (k *Kernel) FlopsPerPoint() int { return k.bk.FlopsPerPoint() }

// StencilRadius returns the per-dimension stencil radius.
func (k *Kernel) StencilRadius() []int { return k.bk.StencilRadius() }

// InstrsPerPoint reports the number of fused dispatches per grid point:
// one per chain link plus one per fallback VM instruction. It is lower
// than the bytecode kernel's count (loads are absorbed into chain
// operands), which is how the autotuner's cost model ranks the engine.
func (k *Kernel) InstrsPerPoint() int { return k.fusedInstrs }

// Rebind returns a copy of the kernel executing against different storage,
// resolved by field name. The fused segments, link templates, program and
// scalar pool are shared with the receiver — like bytecode.Rebind, Run
// resolves buffer pointers and strides on every call, so the copy is safe
// to run concurrently with the original. This is the opcache contract:
// one native compilation is shared across every shot with the same
// schedule key.
func (k *Kernel) Rebind(fields map[string]*field.Function) (*Kernel, error) {
	bk, err := k.bk.Rebind(fields)
	if err != nil {
		return nil, err
	}
	nk := *k
	nk.bk = bk
	// A private dispatch state keeps the copy concurrency-safe against the
	// original (the opcache runs rebound kernels across shots in parallel).
	nk.st = newNatState(&nk)
	return &nk, nil
}
