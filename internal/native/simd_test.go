package native

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"devigo/internal/bytecode"
)

// The strip primitives must match the scalar reference semantics bit for
// bit on every lane — including NaN, infinities, negative zero and
// subnormals — on both the amd64 assembly and the generic Go builds. Odd
// lengths exercise the callers' multiple-of-4 contract at n=0.

func stripInputs(t *testing.T, n int) (a, b, c []float64, f, g []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	f = make([]float32, n)
	g = make([]float32, n)
	specials64 := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, -2.2250738585072014e-308}
	specials32 := []float32{0, float32(math.Copysign(0, -1)), float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()), 1e-45, -1.1754944e-38}
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		b[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64() * 1e3
		f[i] = float32(rng.NormFloat64())
		g[i] = float32(rng.NormFloat64() * 1e-3)
		if i%11 == 3 {
			a[i] = specials64[i%len(specials64)]
			f[i] = specials32[i%len(specials32)]
		}
	}
	return
}

func eqBits(x, y float64) bool {
	return math.Float64bits(x) == math.Float64bits(y) || (math.IsNaN(x) && math.IsNaN(y))
}

func checkStrip(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if !eqBits(got[i], want[i]) {
			t.Fatalf("%s: lane %d: got %v (%#x), want %v (%#x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestStripPrimitivesMatchScalar(t *testing.T) {
	const n = 64
	a, b, c, f, g := stripInputs(t, n)
	s := 1.7182818284590452

	d := make([]float64, n)
	want := make([]float64, n)
	pd := unsafe.Pointer(&d[0])
	pa := unsafe.Pointer(&a[0])
	pb := unsafe.Pointer(&b[0])
	pc := unsafe.Pointer(&c[0])
	pf := unsafe.Pointer(&f[0])
	pg := unsafe.Pointer(&g[0])

	cases := []struct {
		name string
		run  func()
		ref  func(i int) float64
	}{
		{"vmovS", func() { vmovS(pd, s, n) }, func(i int) float64 { return s }},
		{"vmulRS", func() { vmulRS(pd, pa, s, n) }, func(i int) float64 { return a[i] * s }},
		{"vmulRR", func() { vmulRR(pd, pa, pb, n) }, func(i int) float64 { return a[i] * b[i] }},
		{"vmulFS", func() { vmulFS(pd, pf, s, n) }, func(i int) float64 { return float64(f[i]) * s }},
		{"vmulFR", func() { vmulFR(pd, pf, pa, n) }, func(i int) float64 { return float64(f[i]) * a[i] }},
		{"vmulFF", func() { vmulFF(pd, pf, pg, n) }, func(i int) float64 { return float64(f[i]) * float64(g[i]) }},
		{"vaddRS", func() { vaddRS(pd, pa, s, n) }, func(i int) float64 { return a[i] + s }},
		{"vaddRR", func() { vaddRR(pd, pa, pb, n) }, func(i int) float64 { return a[i] + b[i] }},
		{"vaddFS", func() { vaddFS(pd, pf, s, n) }, func(i int) float64 { return float64(f[i]) + s }},
		{"vaddFR", func() { vaddFR(pd, pf, pa, n) }, func(i int) float64 { return float64(f[i]) + a[i] }},
		{"vaddFF", func() { vaddFF(pd, pf, pg, n) }, func(i int) float64 { return float64(f[i]) + float64(g[i]) }},
		{"vmaddFS", func() { vmaddFS(pd, pf, s, pc, n) }, func(i int) float64 { return float64(float64(f[i])*s) + c[i] }},
		{"vmaddFF", func() { vmaddFF(pd, pf, pg, pc, n) }, func(i int) float64 { return float64(float64(f[i])*float64(g[i])) + c[i] }},
		{"vmaddFR", func() { vmaddFR(pd, pf, pa, pc, n) }, func(i int) float64 { return float64(float64(f[i])*a[i]) + c[i] }},
		{"vmaddRS", func() { vmaddRS(pd, pa, s, pc, n) }, func(i int) float64 { return float64(a[i]*s) + c[i] }},
		{"vmaddRR", func() { vmaddRR(pd, pa, pb, pc, n) }, func(i int) float64 { return float64(a[i]*b[i]) + c[i] }},
		{"vsq", func() { vsq(pd, pa, n) }, func(i int) float64 { return a[i] * a[i] }},
		{"vrecip", func() { vrecip(pd, pa, n) }, func(i int) float64 { return 1 / a[i] }},
		{"vrecipSq", func() { vrecipSq(pd, pa, n) }, func(i int) float64 { return 1 / (a[i] * a[i]) }},
	}
	for _, tc := range cases {
		for i := range d {
			d[i] = math.NaN()
		}
		tc.run()
		for i := 0; i < n; i++ {
			want[i] = tc.ref(i)
		}
		checkStrip(t, tc.name, d, want)
	}
}

// TestStripPrimitivesInPlace exercises dst aliasing a source operand — the
// accumulate forms the chain executor relies on (acc = f(acc, ...)).
func TestStripPrimitivesInPlace(t *testing.T) {
	const n = 32
	a, _, _, f, _ := stripInputs(t, n)
	s := -0.325

	d := make([]float64, n)
	want := make([]float64, n)
	pd := unsafe.Pointer(&d[0])
	pf := unsafe.Pointer(&f[0])

	reset := func() {
		copy(d, a)
		copy(want, a)
	}

	reset()
	vmaddFS(pd, pf, s, pd, n)
	for i := range want {
		want[i] = float64(float64(f[i])*s) + want[i]
	}
	checkStrip(t, "vmaddFS in-place", d, want)

	reset()
	vmulRS(pd, pd, s, n)
	for i := range want {
		want[i] *= s
	}
	checkStrip(t, "vmulRS in-place", d, want)

	reset()
	vaddFR(pd, pf, pd, n)
	for i := range want {
		want[i] = float64(f[i]) + want[i]
	}
	checkStrip(t, "vaddFR in-place", d, want)

	reset()
	vrecipSq(pd, pd, n)
	for i := range want {
		want[i] = 1 / (want[i] * want[i])
	}
	checkStrip(t, "vrecipSq in-place", d, want)
}

// TestStripCvtStore checks the float64->float32 narrowing store against
// Go's conversion, lane by lane.
func TestStripCvtStore(t *testing.T) {
	const n = 32
	a, _, _, _, _ := stripInputs(t, n)
	a[0] = 1e300  // overflows to +Inf in float32
	a[1] = -1e300 // -Inf
	a[2] = 1e-300 // underflows to 0
	out := make([]float32, n)
	vcvtStore(unsafe.Pointer(&out[0]), unsafe.Pointer(&a[0]), n)
	for i := range out {
		want := float32(a[i])
		if math.Float32bits(out[i]) != math.Float32bits(want) &&
			!(math.IsNaN(float64(out[i])) && math.IsNaN(float64(want))) {
			t.Fatalf("vcvtStore lane %d: got %v, want %v", i, out[i], want)
		}
	}
}

// TestPowSpecializations pins the AccPow fast paths to ipow's exact
// multiply-cascade results for every specialized exponent.
func TestPowSpecializations(t *testing.T) {
	vals := []float64{2.5, -3, 0.1, 0, math.Inf(1), math.NaN(), 5e-324, 1e200}
	for _, e := range []int{0, 1, 2, -1, -2, 3, -4} {
		for _, v := range vals {
			d := []float64{v, v, v, v}
			switch e {
			case 0:
				vmovS(unsafe.Pointer(&d[0]), 1, 4)
			case 1:
				// identity
			case 2:
				vsq(unsafe.Pointer(&d[0]), unsafe.Pointer(&d[0]), 4)
			case -1:
				vrecip(unsafe.Pointer(&d[0]), unsafe.Pointer(&d[0]), 4)
			case -2:
				vrecipSq(unsafe.Pointer(&d[0]), unsafe.Pointer(&d[0]), 4)
			default:
				powStrip(unsafe.Pointer(&d[0]), e, 4)
			}
			want := bytecode.Ipow(v, e)
			for lane, got := range d {
				if !eqBits(got, want) {
					t.Fatalf("pow exp %d val %v lane %d: got %v, want %v", e, v, lane, got, want)
				}
			}
		}
	}
}
