//go:build !amd64

// Pure-Go strip primitives, semantically identical to the amd64 assembly
// versions (simd_amd64.s): same pointer conventions, same rounding at
// every step. Performance is scalar, correctness is bit-exact.

package native

import "unsafe"

func vmovS(d unsafe.Pointer, s float64, n int) {
	dd := dsl(d, n)
	for i := range dd {
		dd[i] = s
	}
}

func vmulRS(d, a unsafe.Pointer, s float64, n int) {
	dd, aa := dsl(d, n), dsl(a, n)
	for i := range dd {
		dd[i] = aa[i] * s
	}
}

func vmulRR(d, a, b unsafe.Pointer, n int) {
	dd, aa, bb := dsl(d, n), dsl(a, n), dsl(b, n)
	for i := range dd {
		dd[i] = aa[i] * bb[i]
	}
}

func vmulFS(d, f unsafe.Pointer, s float64, n int) {
	dd, ff := dsl(d, n), fsl(f, n)
	for i := range dd {
		dd[i] = float64(ff[i]) * s
	}
}

func vmulFR(d, f, r unsafe.Pointer, n int) {
	dd, ff, rr := dsl(d, n), fsl(f, n), dsl(r, n)
	for i := range dd {
		dd[i] = float64(ff[i]) * rr[i]
	}
}

func vmulFF(d, f, g unsafe.Pointer, n int) {
	dd, ff, gg := dsl(d, n), fsl(f, n), fsl(g, n)
	for i := range dd {
		dd[i] = float64(ff[i]) * float64(gg[i])
	}
}

func vaddRS(d, a unsafe.Pointer, s float64, n int) {
	dd, aa := dsl(d, n), dsl(a, n)
	for i := range dd {
		dd[i] = aa[i] + s
	}
}

func vaddRR(d, a, b unsafe.Pointer, n int) {
	dd, aa, bb := dsl(d, n), dsl(a, n), dsl(b, n)
	for i := range dd {
		dd[i] = aa[i] + bb[i]
	}
}

func vaddFS(d, f unsafe.Pointer, s float64, n int) {
	dd, ff := dsl(d, n), fsl(f, n)
	for i := range dd {
		dd[i] = float64(ff[i]) + s
	}
}

func vaddFR(d, f, r unsafe.Pointer, n int) {
	dd, ff, rr := dsl(d, n), fsl(f, n), dsl(r, n)
	for i := range dd {
		dd[i] = float64(ff[i]) + rr[i]
	}
}

func vaddFF(d, f, g unsafe.Pointer, n int) {
	dd, ff, gg := dsl(d, n), fsl(f, n), fsl(g, n)
	for i := range dd {
		dd[i] = float64(ff[i]) + float64(gg[i])
	}
}

func vmaddFS(d, f unsafe.Pointer, s float64, c unsafe.Pointer, n int) {
	dd, ff, cc := dsl(d, n), fsl(f, n), dsl(c, n)
	for i := range dd {
		dd[i] = float64(float64(ff[i])*s) + cc[i]
	}
}

func vmaddFF(d, f, g, c unsafe.Pointer, n int) {
	dd, ff, gg, cc := dsl(d, n), fsl(f, n), fsl(g, n), dsl(c, n)
	for i := range dd {
		dd[i] = float64(float64(ff[i])*float64(gg[i])) + cc[i]
	}
}

func vmaddFR(d, f, r, c unsafe.Pointer, n int) {
	dd, ff, rr, cc := dsl(d, n), fsl(f, n), dsl(r, n), dsl(c, n)
	for i := range dd {
		dd[i] = float64(float64(ff[i])*rr[i]) + cc[i]
	}
}

func vmaddRS(d, a unsafe.Pointer, s float64, c unsafe.Pointer, n int) {
	dd, aa, cc := dsl(d, n), dsl(a, n), dsl(c, n)
	for i := range dd {
		dd[i] = float64(aa[i]*s) + cc[i]
	}
}

func vmaddRR(d, a, b, c unsafe.Pointer, n int) {
	dd, aa, bb, cc := dsl(d, n), dsl(a, n), dsl(b, n), dsl(c, n)
	for i := range dd {
		dd[i] = float64(aa[i]*bb[i]) + cc[i]
	}
}

func vcvtStore(o, a unsafe.Pointer, n int) {
	oo, aa := fsl(o, n), dsl(a, n)
	for i := range oo {
		oo[i] = float32(aa[i])
	}
}

func vsq(d, a unsafe.Pointer, n int) {
	dd, aa := dsl(d, n), dsl(a, n)
	for i := range dd {
		dd[i] = aa[i] * aa[i]
	}
}

func vrecip(d, a unsafe.Pointer, n int) {
	dd, aa := dsl(d, n), dsl(a, n)
	for i := range dd {
		dd[i] = 1 / aa[i]
	}
}

func vrecipSq(d, a unsafe.Pointer, n int) {
	dd, aa := dsl(d, n), dsl(a, n)
	for i := range dd {
		dd[i] = 1 / (aa[i] * aa[i])
	}
}
