//go:build amd64

// AVX2 strip primitives. Each processes n points (n must be a multiple of
// 4; callers route remainders through the scalar tail). Bit-exactness with
// the scalar engines holds because every vector instruction used —
// VCVTPS2PD, VMULPD, VADDPD, VDIVPD, VCVTPD2PS — performs the same
// correctly-rounded IEEE-754 operation as its scalar counterpart, and no
// FMA contraction is ever emitted: a madd is one VMULPD (rounding the
// product) followed by one VADDPD, exactly matching the VM's
// float64(a*b) + c.
//
// Pointer conventions: d/a/b/c address float64 strips or register rows,
// f/g address float32 field rows. dst may alias any source (element i is
// read before it is written).

package native

import "unsafe"

//go:noescape
func vmovS(d unsafe.Pointer, s float64, n int)

//go:noescape
func vmulRS(d, a unsafe.Pointer, s float64, n int)

//go:noescape
func vmulRR(d, a, b unsafe.Pointer, n int)

//go:noescape
func vmulFS(d, f unsafe.Pointer, s float64, n int)

//go:noescape
func vmulFR(d, f, r unsafe.Pointer, n int)

//go:noescape
func vmulFF(d, f, f2 unsafe.Pointer, n int)

//go:noescape
func vaddRS(d, a unsafe.Pointer, s float64, n int)

//go:noescape
func vaddRR(d, a, b unsafe.Pointer, n int)

//go:noescape
func vaddFS(d, f unsafe.Pointer, s float64, n int)

//go:noescape
func vaddFR(d, f, r unsafe.Pointer, n int)

//go:noescape
func vaddFF(d, f, f2 unsafe.Pointer, n int)

//go:noescape
func vmaddFS(d, f unsafe.Pointer, s float64, c unsafe.Pointer, n int)

//go:noescape
func vmaddFF(d, f, f2, c unsafe.Pointer, n int)

//go:noescape
func vmaddFR(d, f, r, c unsafe.Pointer, n int)

//go:noescape
func vmaddRS(d, a unsafe.Pointer, s float64, c unsafe.Pointer, n int)

//go:noescape
func vmaddRR(d, a, b, c unsafe.Pointer, n int)

//go:noescape
func vcvtStore(o, a unsafe.Pointer, n int)

//go:noescape
func vsq(d, a unsafe.Pointer, n int)

//go:noescape
func vrecip(d, a unsafe.Pointer, n int)

//go:noescape
func vrecipSq(d, a unsafe.Pointer, n int)
