package native

import (
	"fmt"
	"unsafe"

	"devigo/internal/bytecode"
)

// stripN is the accumulator strip length: long enough to amortize one
// dispatch per link per strip to nothing, short enough that the acc and t
// strips (2 x 2 KB) and the field rows they touch stay resident in L1.
const stripN = 256

// Unsafe row accessors for the scalar tail. fx widens a float32 field
// element exactly like the VM's load opcode; rx reads a float64
// register-row element. Bounds were checked when the row pointer was
// patched (patchRow), so the inner loops carry no per-point checks.
func fx(p unsafe.Pointer, i int) float64 {
	return float64(*(*float32)(unsafe.Add(p, uintptr(i)*4)))
}
func rx(p unsafe.Pointer, i int) float64 {
	return *(*float64)(unsafe.Add(p, uintptr(i)*8))
}
func sf(p unsafe.Pointer, i int, v float64) {
	*(*float32)(unsafe.Add(p, uintptr(i)*4)) = float32(v)
}
func sr(p unsafe.Pointer, i int, v float64) {
	*(*float64)(unsafe.Add(p, uintptr(i)*8)) = v
}

// Pointer arithmetic into float32 field rows and float64 register rows.
func fp(p unsafe.Pointer, i int) unsafe.Pointer { return unsafe.Add(p, uintptr(i)*4) }
func rp(p unsafe.Pointer, i int) unsafe.Pointer { return unsafe.Add(p, uintptr(i)*8) }

// Unsafe strip views (shared by the generic primitives and ToRow).
func dsl(p unsafe.Pointer, n int) []float64 { return unsafe.Slice((*float64)(p), n) }
func fsl(p unsafe.Pointer, n int) []float32 { return unsafe.Slice((*float32)(p), n) }

// powStrip applies Ipow in place for exponents outside the specialized
// set. Scalar: general integer powers are rare and loop-carried anyway.
func powStrip(d unsafe.Pointer, e, n int) {
	dd := dsl(d, n)
	for i := range dd {
		dd[i] = bytecode.Ipow(dd[i], e)
	}
}

// runChain executes one fused chain over a row of n points. Points are
// independent, so the row is processed in strips: the accumulator and
// scratch chains live in per-worker strip buffers and every link applies
// one bulk primitive per strip — on amd64 an AVX2 kernel, elsewhere a
// scalar loop. Multiply-adds round after the multiply and after the add at
// every point (the primitives never emit FMA), keeping the engine
// bit-exact with the VM. The n%4 remainder runs through the per-point
// scalar tail below.
func (ex *exec) runChain(ls []xlink, n int) {
	nv := n &^ 3
	if nv > 0 {
		ap := unsafe.Pointer(&ex.acc[0])
		tp := unsafe.Pointer(&ex.tt[0])
		for base := 0; base < nv; base += stripN {
			m := nv - base
			if m > stripN {
				m = stripN
			}
			ex.runStrip(ls, base, m, ap, tp)
		}
	}
	for i := nv; i < n; i++ {
		scalarPoint(ls, i)
	}
}

// runStrip applies every link of the chain to m points starting at base.
// ap/tp address the worker's accumulator and scratch strips.
func (ex *exec) runStrip(ls []xlink, base, m int, ap, tp unsafe.Pointer) {
	for li := range ls {
		l := &ls[li]
		switch l.kind {
		case bytecode.LkToRow:
			copy(dsl(rp(l.pa, base), m), ex.acc[:m])
		case bytecode.LkStore:
			vcvtStore(fp(l.pa, base), ap, m)
		case bytecode.LkMovS:
			vmovS(ap, l.sv, m)

		case bytecode.LkMulFS:
			vmulFS(ap, fp(l.pa, base), l.sv, m)
		case bytecode.LkMulRS:
			vmulRS(ap, rp(l.pa, base), l.sv, m)
		case bytecode.LkMulFF:
			vmulFF(ap, fp(l.pa, base), fp(l.pb, base), m)
		case bytecode.LkMulFR:
			vmulFR(ap, fp(l.pa, base), rp(l.pb, base), m)
		case bytecode.LkMulRR:
			vmulRR(ap, rp(l.pa, base), rp(l.pb, base), m)
		case bytecode.LkAddFS:
			vaddFS(ap, fp(l.pa, base), l.sv, m)
		case bytecode.LkAddRS:
			vaddRS(ap, rp(l.pa, base), l.sv, m)
		case bytecode.LkAddFF:
			vaddFF(ap, fp(l.pa, base), fp(l.pb, base), m)
		case bytecode.LkAddFR:
			vaddFR(ap, fp(l.pa, base), rp(l.pb, base), m)
		case bytecode.LkAddRR:
			vaddRR(ap, rp(l.pa, base), rp(l.pb, base), m)

		case bytecode.LkPowF:
			for i := 0; i < m; i++ {
				ex.acc[i] = bytecode.Ipow(fx(l.pa, base+i), l.exp)
			}
		case bytecode.LkPowR:
			for i := 0; i < m; i++ {
				ex.acc[i] = bytecode.Ipow(rx(l.pa, base+i), l.exp)
			}

		case bytecode.LkMaddFSR:
			vmaddFS(ap, fp(l.pa, base), l.sv, rp(l.pc, base), m)
		case bytecode.LkMaddRSR:
			vmaddRS(ap, rp(l.pa, base), l.sv, rp(l.pc, base), m)
		case bytecode.LkMaddFFR:
			vmaddFF(ap, fp(l.pa, base), fp(l.pb, base), rp(l.pc, base), m)
		case bytecode.LkMaddFRR:
			vmaddFR(ap, fp(l.pa, base), rp(l.pb, base), rp(l.pc, base), m)
		case bytecode.LkMaddRRR:
			vmaddRR(ap, rp(l.pa, base), rp(l.pb, base), rp(l.pc, base), m)
		case bytecode.LkMaddFSF:
			for i := 0; i < m; i++ {
				ex.acc[i] = float64(fx(l.pa, base+i)*l.sv) + fx(l.pc, base+i)
			}
		case bytecode.LkMaddRSF:
			for i := 0; i < m; i++ {
				ex.acc[i] = float64(rx(l.pa, base+i)*l.sv) + fx(l.pc, base+i)
			}
		case bytecode.LkMaddFFF:
			for i := 0; i < m; i++ {
				ex.acc[i] = float64(fx(l.pa, base+i)*fx(l.pb, base+i)) + fx(l.pc, base+i)
			}
		case bytecode.LkMaddFRF:
			for i := 0; i < m; i++ {
				ex.acc[i] = float64(fx(l.pa, base+i)*rx(l.pb, base+i)) + fx(l.pc, base+i)
			}
		case bytecode.LkMaddRRF:
			for i := 0; i < m; i++ {
				ex.acc[i] = float64(rx(l.pa, base+i)*rx(l.pb, base+i)) + fx(l.pc, base+i)
			}

		case bytecode.LkAccAddS:
			vaddRS(ap, ap, l.sv, m)
		case bytecode.LkAccMulS:
			vmulRS(ap, ap, l.sv, m)
		case bytecode.LkAccAddF:
			vaddFR(ap, fp(l.pa, base), ap, m)
		case bytecode.LkAccAddR:
			vaddRR(ap, ap, rp(l.pa, base), m)
		case bytecode.LkAccMulF:
			vmulFR(ap, fp(l.pa, base), ap, m)
		case bytecode.LkAccMulR:
			vmulRR(ap, ap, rp(l.pa, base), m)
		case bytecode.LkAccMaddFS:
			vmaddFS(ap, fp(l.pa, base), l.sv, ap, m)
		case bytecode.LkAccMaddRS:
			vmaddRS(ap, rp(l.pa, base), l.sv, ap, m)
		case bytecode.LkAccMaddFF:
			vmaddFF(ap, fp(l.pa, base), fp(l.pb, base), ap, m)
		case bytecode.LkAccMaddFR:
			vmaddFR(ap, fp(l.pa, base), rp(l.pb, base), ap, m)
		case bytecode.LkAccMaddRR:
			vmaddRR(ap, rp(l.pa, base), rp(l.pb, base), ap, m)

		case bytecode.LkAccPow:
			// ipow's multiply cascade starts at 1.0, so small exponents
			// reduce exactly: 1*v == v, hence v^2 == v*v, v^-1 == 1/v,
			// v^-2 == 1/(v*v), all with ipow's own rounding sequence.
			switch l.exp {
			case 0:
				vmovS(ap, 1, m)
			case 1:
				// identity
			case 2:
				vsq(ap, ap, m)
			case -1:
				vrecip(ap, ap, m)
			case -2:
				vrecipSq(ap, ap, m)
			default:
				powStrip(ap, l.exp, m)
			}

		case bytecode.LkTMulFS:
			vmulFS(tp, fp(l.pa, base), l.sv, m)
		case bytecode.LkTMulRS:
			vmulRS(tp, rp(l.pa, base), l.sv, m)
		case bytecode.LkTMulFF:
			vmulFF(tp, fp(l.pa, base), fp(l.pb, base), m)
		case bytecode.LkTMulFR:
			vmulFR(tp, fp(l.pa, base), rp(l.pb, base), m)
		case bytecode.LkTMulRR:
			vmulRR(tp, rp(l.pa, base), rp(l.pb, base), m)
		case bytecode.LkTMulS:
			vmulRS(tp, tp, l.sv, m)
		case bytecode.LkTMulF:
			vmulFR(tp, fp(l.pa, base), tp, m)
		case bytecode.LkTMulR:
			vmulRR(tp, tp, rp(l.pa, base), m)
		case bytecode.LkTMaddFS:
			vmaddFS(tp, fp(l.pa, base), l.sv, tp, m)
		case bytecode.LkTMaddRS:
			vmaddRS(tp, rp(l.pa, base), l.sv, tp, m)

		case bytecode.LkMergeMulT:
			vmulRR(ap, ap, tp, m)
		case bytecode.LkMergeAddT:
			vaddRR(ap, ap, tp, m)
		case bytecode.LkMergeMaddTS:
			vmaddRS(ap, tp, l.sv, ap, m)
		case bytecode.LkMergeMaddTF:
			// t*f == f*t bitwise (IEEE multiplication commutes in value).
			vmaddFR(ap, fp(l.pa, base), tp, ap, m)
		case bytecode.LkMergeMaddTR:
			vmaddRR(ap, tp, rp(l.pa, base), ap, m)

		default:
			panic(fmt.Sprintf("native: unhandled link kind %v", l.kind))
		}
	}
}

// scalarPoint executes the chain at a single point — the row tail the
// 4-wide strips cannot cover. Every multiply-add is written
// float64(x*y) + z: the explicit conversion pins the intermediate
// rounding (Go spec), forbidding FMA contraction that would break
// bit-exactness with the other engines.
func scalarPoint(ls []xlink, i int) {
	var a, t float64
	for li := range ls {
		l := &ls[li]
		switch l.kind {
		case bytecode.LkToRow:
			sr(l.pa, i, a)
		case bytecode.LkStore:
			sf(l.pa, i, a)
		case bytecode.LkMovS:
			a = l.sv
		case bytecode.LkMulFS:
			a = fx(l.pa, i) * l.sv
		case bytecode.LkMulRS:
			a = rx(l.pa, i) * l.sv
		case bytecode.LkMulFF:
			a = fx(l.pa, i) * fx(l.pb, i)
		case bytecode.LkMulFR:
			a = fx(l.pa, i) * rx(l.pb, i)
		case bytecode.LkMulRR:
			a = rx(l.pa, i) * rx(l.pb, i)
		case bytecode.LkAddFS:
			a = fx(l.pa, i) + l.sv
		case bytecode.LkAddRS:
			a = rx(l.pa, i) + l.sv
		case bytecode.LkAddFF:
			a = fx(l.pa, i) + fx(l.pb, i)
		case bytecode.LkAddFR:
			a = fx(l.pa, i) + rx(l.pb, i)
		case bytecode.LkAddRR:
			a = rx(l.pa, i) + rx(l.pb, i)
		case bytecode.LkPowF:
			a = bytecode.Ipow(fx(l.pa, i), l.exp)
		case bytecode.LkPowR:
			a = bytecode.Ipow(rx(l.pa, i), l.exp)
		case bytecode.LkMaddFSF:
			a = float64(fx(l.pa, i)*l.sv) + fx(l.pc, i)
		case bytecode.LkMaddFSR:
			a = float64(fx(l.pa, i)*l.sv) + rx(l.pc, i)
		case bytecode.LkMaddRSF:
			a = float64(rx(l.pa, i)*l.sv) + fx(l.pc, i)
		case bytecode.LkMaddRSR:
			a = float64(rx(l.pa, i)*l.sv) + rx(l.pc, i)
		case bytecode.LkMaddFFF:
			a = float64(fx(l.pa, i)*fx(l.pb, i)) + fx(l.pc, i)
		case bytecode.LkMaddFFR:
			a = float64(fx(l.pa, i)*fx(l.pb, i)) + rx(l.pc, i)
		case bytecode.LkMaddFRF:
			a = float64(fx(l.pa, i)*rx(l.pb, i)) + fx(l.pc, i)
		case bytecode.LkMaddFRR:
			a = float64(fx(l.pa, i)*rx(l.pb, i)) + rx(l.pc, i)
		case bytecode.LkMaddRRF:
			a = float64(rx(l.pa, i)*rx(l.pb, i)) + fx(l.pc, i)
		case bytecode.LkMaddRRR:
			a = float64(rx(l.pa, i)*rx(l.pb, i)) + rx(l.pc, i)
		case bytecode.LkAccAddS:
			a += l.sv
		case bytecode.LkAccMulS:
			a *= l.sv
		case bytecode.LkAccAddF:
			a += fx(l.pa, i)
		case bytecode.LkAccAddR:
			a += rx(l.pa, i)
		case bytecode.LkAccMulF:
			a *= fx(l.pa, i)
		case bytecode.LkAccMulR:
			a *= rx(l.pa, i)
		case bytecode.LkAccMaddFS:
			a = float64(fx(l.pa, i)*l.sv) + a
		case bytecode.LkAccMaddRS:
			a = float64(rx(l.pa, i)*l.sv) + a
		case bytecode.LkAccMaddFF:
			a = float64(fx(l.pa, i)*fx(l.pb, i)) + a
		case bytecode.LkAccMaddFR:
			a = float64(fx(l.pa, i)*rx(l.pb, i)) + a
		case bytecode.LkAccMaddRR:
			a = float64(rx(l.pa, i)*rx(l.pb, i)) + a
		case bytecode.LkAccPow:
			a = bytecode.Ipow(a, l.exp)
		case bytecode.LkTMulFS:
			t = fx(l.pa, i) * l.sv
		case bytecode.LkTMulRS:
			t = rx(l.pa, i) * l.sv
		case bytecode.LkTMulFF:
			t = fx(l.pa, i) * fx(l.pb, i)
		case bytecode.LkTMulFR:
			t = fx(l.pa, i) * rx(l.pb, i)
		case bytecode.LkTMulRR:
			t = rx(l.pa, i) * rx(l.pb, i)
		case bytecode.LkTMulS:
			t *= l.sv
		case bytecode.LkTMulF:
			t *= fx(l.pa, i)
		case bytecode.LkTMulR:
			t *= rx(l.pa, i)
		case bytecode.LkTMaddFS:
			t = float64(fx(l.pa, i)*l.sv) + t
		case bytecode.LkTMaddRS:
			t = float64(rx(l.pa, i)*l.sv) + t
		case bytecode.LkMergeMulT:
			a *= t
		case bytecode.LkMergeAddT:
			a += t
		case bytecode.LkMergeMaddTS:
			a = float64(t*l.sv) + a
		case bytecode.LkMergeMaddTF:
			a = float64(t*fx(l.pa, i)) + a
		case bytecode.LkMergeMaddTR:
			a = float64(t*rx(l.pa, i)) + a
		}
	}
}
