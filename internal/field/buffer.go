// Package field implements discrete functions over a grid: strided float32
// storage, the CORE/OWNED/DOMAIN/HALO data-region geometry of the paper
// (Fig. 4), time buffering, and the packing primitives used by halo
// exchanges.
package field

import "fmt"

// Buffer is an n-dimensional strided float32 array (row-major, last
// dimension contiguous).
type Buffer struct {
	Shape   []int
	Strides []int
	Data    []float32
}

// NewBuffer allocates a zeroed buffer of the given shape.
func NewBuffer(shape []int) *Buffer {
	n := 1
	strides := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		strides[d] = n
		n *= shape[d]
	}
	return &Buffer{
		Shape:   append([]int(nil), shape...),
		Strides: strides,
		Data:    make([]float32, n),
	}
}

// Index converts multi-dimensional coordinates into a flat offset.
func (b *Buffer) Index(idx []int) int {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= b.Shape[d] {
			panic(fmt.Sprintf("field: index %v out of bounds for shape %v", idx, b.Shape))
		}
		off += i * b.Strides[d]
	}
	return off
}

// At reads a single element.
func (b *Buffer) At(idx ...int) float32 { return b.Data[b.Index(idx)] }

// Set writes a single element.
func (b *Buffer) Set(v float32, idx ...int) { b.Data[b.Index(idx)] = v }

// Fill sets every element to v.
func (b *Buffer) Fill(v float32) {
	for i := range b.Data {
		b.Data[i] = v
	}
}

// Region is a half-open box [Lo[d], Hi[d]) in buffer coordinates.
type Region struct {
	Lo, Hi []int
}

// Size returns the number of points in the region (0 if empty in any dim).
func (r Region) Size() int {
	n := 1
	for d := range r.Lo {
		ext := r.Hi[d] - r.Lo[d]
		if ext <= 0 {
			return 0
		}
		n *= ext
	}
	return n
}

// Empty reports whether the region contains no points.
func (r Region) Empty() bool { return r.Size() == 0 }

// Shape returns the per-dimension extents (clamped at 0).
func (r Region) Shape() []int {
	out := make([]int, len(r.Lo))
	for d := range out {
		if e := r.Hi[d] - r.Lo[d]; e > 0 {
			out[d] = e
		}
	}
	return out
}

// Clone deep-copies the region.
func (r Region) Clone() Region {
	return Region{Lo: append([]int(nil), r.Lo...), Hi: append([]int(nil), r.Hi...)}
}

// Pack copies the region's elements into dst (row-major order within the
// region) and returns the element count. dst must have capacity >= Size.
func (b *Buffer) Pack(r Region, dst []float32) int {
	if r.Empty() {
		return 0
	}
	idx := append([]int(nil), r.Lo...)
	n := 0
	last := len(b.Shape) - 1
	rowLen := r.Hi[last] - r.Lo[last]
	for {
		base := b.Index(idx)
		copy(dst[n:n+rowLen], b.Data[base:base+rowLen])
		n += rowLen
		// Advance all but the last dimension odometer-style.
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < r.Hi[d] {
				break
			}
			idx[d] = r.Lo[d]
		}
		if d < 0 {
			break
		}
	}
	return n
}

// Unpack copies src into the region, inverse of Pack.
func (b *Buffer) Unpack(r Region, src []float32) int {
	if r.Empty() {
		return 0
	}
	idx := append([]int(nil), r.Lo...)
	n := 0
	last := len(b.Shape) - 1
	rowLen := r.Hi[last] - r.Lo[last]
	for {
		base := b.Index(idx)
		copy(b.Data[base:base+rowLen], src[n:n+rowLen])
		n += rowLen
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < r.Hi[d] {
				break
			}
			idx[d] = r.Lo[d]
		}
		if d < 0 {
			break
		}
	}
	return n
}

// AddUnpack accumulates src into the region (used by injection reduction).
func (b *Buffer) AddUnpack(r Region, src []float32) int {
	if r.Empty() {
		return 0
	}
	idx := append([]int(nil), r.Lo...)
	n := 0
	last := len(b.Shape) - 1
	rowLen := r.Hi[last] - r.Lo[last]
	for {
		base := b.Index(idx)
		for k := 0; k < rowLen; k++ {
			b.Data[base+k] += src[n+k]
		}
		n += rowLen
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < r.Hi[d] {
				break
			}
			idx[d] = r.Lo[d]
		}
		if d < 0 {
			break
		}
	}
	return n
}
