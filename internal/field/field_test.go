package field

import (
	"reflect"
	"testing"
	"testing/quick"

	"devigo/internal/grid"
)

func mkFunc(t *testing.T, shape []int, so int) *Function {
	t.Helper()
	g := grid.MustNew(shape, nil)
	f, err := NewFunction("f", g, so, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBufferIndexRowMajor(t *testing.T) {
	b := NewBuffer([]int{2, 3, 4})
	if b.Index([]int{0, 0, 1}) != 1 {
		t.Error("last dim must be contiguous")
	}
	if b.Index([]int{1, 0, 0}) != 12 {
		t.Error("first dim stride must be 12")
	}
	b.Set(5, 1, 2, 3)
	if b.At(1, 2, 3) != 5 {
		t.Error("roundtrip failed")
	}
}

func TestBufferIndexPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b := NewBuffer([]int{2, 2})
	b.At(2, 0)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	b := NewBuffer([]int{4, 5})
	for i := range b.Data {
		b.Data[i] = float32(i)
	}
	r := Region{Lo: []int{1, 2}, Hi: []int{3, 5}}
	buf := make([]float32, r.Size())
	n := b.Pack(r, buf)
	if n != 6 {
		t.Fatalf("packed %d, want 6", n)
	}
	want := []float32{7, 8, 9, 12, 13, 14}
	if !reflect.DeepEqual(buf, want) {
		t.Errorf("pack = %v, want %v", buf, want)
	}
	// Unpack into a fresh buffer and compare the region contents.
	b2 := NewBuffer([]int{4, 5})
	b2.Unpack(r, buf)
	out := make([]float32, r.Size())
	b2.Pack(r, out)
	if !reflect.DeepEqual(out, want) {
		t.Errorf("unpack mismatch: %v", out)
	}
}

func TestPackUnpackProperty(t *testing.T) {
	// Property: Unpack(Pack(x)) == x restricted to the region, for random
	// 3-D regions.
	f := func(lo0, lo1, lo2, e0, e1, e2 uint8) bool {
		shape := []int{6, 7, 5}
		b := NewBuffer(shape)
		for i := range b.Data {
			b.Data[i] = float32(i * 3)
		}
		r := Region{Lo: make([]int, 3), Hi: make([]int, 3)}
		los := []uint8{lo0, lo1, lo2}
		exts := []uint8{e0, e1, e2}
		for d := 0; d < 3; d++ {
			r.Lo[d] = int(los[d]) % shape[d]
			r.Hi[d] = r.Lo[d] + int(exts[d])%(shape[d]-r.Lo[d]) + 1
		}
		tmp := make([]float32, r.Size())
		b.Pack(r, tmp)
		b2 := NewBuffer(shape)
		b2.Unpack(r, tmp)
		tmp2 := make([]float32, r.Size())
		b2.Pack(r, tmp2)
		return reflect.DeepEqual(tmp, tmp2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddUnpackAccumulates(t *testing.T) {
	b := NewBuffer([]int{3, 3})
	r := Region{Lo: []int{0, 0}, Hi: []int{2, 2}}
	b.Unpack(r, []float32{1, 1, 1, 1})
	b.AddUnpack(r, []float32{1, 2, 3, 4})
	if b.At(0, 0) != 2 || b.At(1, 1) != 5 {
		t.Errorf("AddUnpack wrong: %v", b.Data)
	}
}

func TestFunctionGeometrySerial(t *testing.T) {
	// Paper Section III-d: SDO k implies a halo of size k per side.
	f := mkFunc(t, []int{20, 16}, 4)
	if !reflect.DeepEqual(f.Halo, []int{4, 4}) {
		t.Errorf("halo = %v", f.Halo)
	}
	if !reflect.DeepEqual(f.FullShape(), []int{28, 24}) {
		t.Errorf("full shape = %v", f.FullShape())
	}
	dom := f.DomainRegion()
	if !reflect.DeepEqual(dom.Lo, []int{4, 4}) || !reflect.DeepEqual(dom.Hi, []int{24, 20}) {
		t.Errorf("domain = %+v", dom)
	}
	core := f.CoreRegion()
	if !reflect.DeepEqual(core.Lo, []int{8, 8}) || !reflect.DeepEqual(core.Hi, []int{20, 16}) {
		t.Errorf("core = %+v", core)
	}
}

func TestTimeFunctionBuffers(t *testing.T) {
	g := grid.MustNew([]int{4, 4}, nil)
	tf, err := NewTimeFunction("u", g, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.Bufs) != 3 {
		t.Fatalf("time order 2 should have 3 buffers, got %d", len(tf.Bufs))
	}
	// Cyclic indexing: Buf(3) == Buf(0); negatives wrap.
	if tf.Buf(3) != tf.Buf(0) || tf.Buf(-1) != tf.Buf(2) {
		t.Error("cyclic buffer indexing broken")
	}
	tf1, err := NewTimeFunction("v", g, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf1.Bufs) != 2 {
		t.Fatalf("time order 1 should have 2 buffers (paper: first-order systems need one extra buffer), got %d", len(tf1.Bufs))
	}
	if _, err := NewTimeFunction("w", g, 2, 3, nil); err == nil {
		t.Error("time order 3 should be rejected")
	}
}

func TestFunctionDistributedGeometry(t *testing.T) {
	g := grid.MustNew([]int{10, 10}, nil)
	d, err := grid.NewDecomposition(g, 4, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFunction("m", g, 4, &Config{Decomp: d, Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.LocalShape, []int{5, 5}) {
		t.Errorf("local shape = %v", f.LocalShape)
	}
	if !reflect.DeepEqual(f.Origin, []int{5, 5}) {
		t.Errorf("origin = %v", f.Origin)
	}
}

func TestOwnedRegionsPartitionDomainMinusCore(t *testing.T) {
	f := mkFunc(t, []int{12, 10, 8}, 4)
	dom := f.DomainRegion()
	core := f.CoreRegion()
	owned := f.OwnedRegions()
	total := 0
	for _, r := range owned {
		total += r.Size()
	}
	if total != dom.Size()-core.Size() {
		t.Errorf("owned regions cover %d points, want %d", total, dom.Size()-core.Size())
	}
	// Disjointness: mark every covered point.
	seen := map[[3]int]bool{}
	for _, r := range owned {
		for i := r.Lo[0]; i < r.Hi[0]; i++ {
			for j := r.Lo[1]; j < r.Hi[1]; j++ {
				for k := r.Lo[2]; k < r.Hi[2]; k++ {
					key := [3]int{i, j, k}
					if seen[key] {
						t.Fatalf("point %v covered twice", key)
					}
					seen[key] = true
				}
			}
		}
	}
}

func TestOwnedRegionsTinyDomain(t *testing.T) {
	// Local domain smaller than 2*halo: CORE is empty, OWNED is all of it.
	f := mkFunc(t, []int{4, 4}, 8) // halo 4 >= shape/2
	if !f.CoreRegion().Empty() {
		t.Error("core should be empty for a tiny domain")
	}
	owned := f.OwnedRegions()
	total := 0
	for _, r := range owned {
		total += r.Size()
	}
	if total != f.DomainRegion().Size() {
		t.Errorf("owned must cover the whole domain, got %d", total)
	}
}

func TestSendRecvRegionsGeometry(t *testing.T) {
	f := mkFunc(t, []int{10, 10}, 2) // halo 2
	// Send towards +x: last 2 owned rows.
	s := f.SendRegion([]int{1, 0}, nil)
	if s.Lo[0] != 10 || s.Hi[0] != 12 || s.Lo[1] != 2 || s.Hi[1] != 12 {
		t.Errorf("send +x region = %+v", s)
	}
	// Recv from +x: the high halo rows.
	r := f.RecvRegion([]int{1, 0}, nil)
	if r.Lo[0] != 12 || r.Hi[0] != 14 {
		t.Errorf("recv +x region = %+v", r)
	}
	// Send and recv shapes must agree for matching exchanges.
	if !reflect.DeepEqual(s.Shape(), r.Shape()) {
		t.Errorf("send shape %v != recv shape %v", s.Shape(), r.Shape())
	}
	// Diagonal corner: both dims restricted to width-2 slabs.
	c := f.SendRegion([]int{-1, 1}, nil)
	if c.Size() != 4 {
		t.Errorf("corner send size = %d, want 4", c.Size())
	}
}

func TestSendRegionIncludeHaloForBasicSweep(t *testing.T) {
	f := mkFunc(t, []int{10, 10}, 2)
	s := f.SendRegion([]int{1, 0}, []bool{false, true})
	// Dim 1 spans the full allocation (halo included) for the basic
	// dimension sweep.
	if s.Lo[1] != 0 || s.Hi[1] != 14 {
		t.Errorf("include-halo send region = %+v", s)
	}
}

func TestSendRecvRegionShapesMatchAcrossRanks(t *testing.T) {
	// Property: for any offset, my send region shape equals the matching
	// recv region shape of the neighbour when local shapes agree.
	f := mkFunc(t, []int{9, 7, 5}, 8)
	offsets := [][]int{{1, 0, 0}, {-1, 1, 0}, {1, 1, 1}, {0, -1, 1}, {-1, -1, -1}}
	for _, o := range offsets {
		neg := make([]int, len(o))
		for i := range o {
			neg[i] = -o[i]
		}
		s := f.SendRegion(o, nil)
		r := f.RecvRegion(neg, nil)
		if !reflect.DeepEqual(s.Shape(), r.Shape()) {
			t.Errorf("offset %v: send %v recv %v", o, s.Shape(), r.Shape())
		}
	}
}

func TestSetAtDomain(t *testing.T) {
	f := mkFunc(t, []int{4, 4}, 2)
	f.SetDomain(0, 7, 1, 2)
	if f.AtDomain(0, 1, 2) != 7 {
		t.Error("domain accessor roundtrip failed")
	}
	// The raw buffer location is shifted by the halo (SDO 2 -> halo 2).
	if f.Buf(0).At(3, 4) != 7 {
		t.Error("halo shift wrong")
	}
}
