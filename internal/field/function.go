package field

import (
	"fmt"

	"devigo/internal/grid"
	"devigo/internal/symbolic"
)

// Function is a discrete function over the grid's space dimensions — a
// parameter field like the squared slowness m. Its storage covers the local
// domain plus a halo of width SpaceOrder/2 on each side (the read-only ghost
// region in serial runs, the exchanged region under DMP).
type Function struct {
	Name       string
	Grid       *grid.Grid
	SpaceOrder int

	// Halo is the ghost width per dimension per side.
	Halo []int
	// LocalShape is the owned (DOMAIN) shape: the full grid shape in a
	// serial run or this rank's chunk under a decomposition.
	LocalShape []int
	// Origin is the global index of the first owned point per dimension.
	Origin []int
	// Bufs holds the time buffers; plain Functions have exactly one.
	Bufs []*Buffer
	// Ref is the symbolic handle used in equations.
	Ref *symbolic.FuncRef
	// Stagger marks half-node storage per dimension (0 or 1).
	Stagger []int
}

// TimeFunction is a time-varying discrete function with TimeOrder+1
// cyclic buffers (u[t-1], u[t], u[t+1] for second order).
type TimeFunction struct {
	Function
	TimeOrder int
}

// Config bundles the optional knobs for constructing functions.
type Config struct {
	// Decomp distributes the function; nil means serial (whole grid local).
	Decomp *grid.Decomposition
	// Rank is the owning rank under Decomp.
	Rank int
	// Stagger requests half-node storage per dimension.
	Stagger []int
	// HaloWidth overrides the default ghost width (SpaceOrder per side,
	// the Devito convention). Values smaller than the minimum stencil
	// radius SpaceOrder/2 would under-allocate the ghost zone every
	// derivative of that order reads, so they are rejected with an error.
	HaloWidth int
}

// NewFunction creates a space-only function.
func NewFunction(name string, g *grid.Grid, spaceOrder int, cfg *Config) (*Function, error) {
	f := &Function{Name: name, Grid: g, SpaceOrder: spaceOrder}
	if err := f.initGeometry(cfg); err != nil {
		return nil, err
	}
	f.Bufs = []*Buffer{NewBuffer(f.FullShape())}
	f.Ref = &symbolic.FuncRef{Name: name, NDims: g.NDims(), Stagger: f.Stagger}
	return f, nil
}

// NewTimeFunction creates a time-varying function with timeOrder+1 buffers.
func NewTimeFunction(name string, g *grid.Grid, spaceOrder, timeOrder int, cfg *Config) (*TimeFunction, error) {
	if timeOrder < 1 || timeOrder > 2 {
		return nil, fmt.Errorf("field: time order %d unsupported (want 1 or 2)", timeOrder)
	}
	tf := &TimeFunction{TimeOrder: timeOrder}
	tf.Name = name
	tf.Grid = g
	tf.SpaceOrder = spaceOrder
	if err := tf.initGeometry(cfg); err != nil {
		return nil, err
	}
	nbufs := timeOrder + 1
	tf.Bufs = make([]*Buffer, nbufs)
	for i := range tf.Bufs {
		tf.Bufs[i] = NewBuffer(tf.FullShape())
	}
	tf.Ref = &symbolic.FuncRef{Name: name, NDims: g.NDims(), IsTime: true, NumBufs: nbufs, Stagger: tf.Stagger}
	return tf, nil
}

func (f *Function) initGeometry(cfg *Config) error {
	nd := f.Grid.NDims()
	// Devito convention (paper Section III-d): a function of space order k
	// has a halo of size k per side, not k/2 — the extra width covers
	// mixed/rotated derivatives whose footprint exceeds the plain
	// Laplacian radius.
	hw := f.SpaceOrder
	if cfg != nil && cfg.HaloWidth > 0 {
		if minR := f.SpaceOrder / 2; cfg.HaloWidth < minR {
			return fmt.Errorf("field: %s: HaloWidth %d is below the stencil radius %d of space order %d; ghost zones would be under-allocated",
				f.Name, cfg.HaloWidth, minR, f.SpaceOrder)
		}
		hw = cfg.HaloWidth
	}
	f.Halo = make([]int, nd)
	for d := range f.Halo {
		f.Halo[d] = hw
	}
	f.Stagger = make([]int, nd)
	if cfg != nil && cfg.Stagger != nil {
		if len(cfg.Stagger) != nd {
			return fmt.Errorf("field: stagger rank mismatch")
		}
		copy(f.Stagger, cfg.Stagger)
	}
	if cfg != nil && cfg.Decomp != nil {
		f.LocalShape = cfg.Decomp.LocalShape(cfg.Rank)
		f.Origin = cfg.Decomp.LocalOrigin(cfg.Rank)
		// A halo wider than the smallest neighbouring chunk cannot be
		// filled by nearest-neighbour exchange; reject the configuration
		// (Devito errors likewise when the decomposition is too fine).
		for d := 0; d < nd; d++ {
			if cfg.Decomp.Topology[d] > 1 {
				minChunk := f.Grid.Shape[d] / cfg.Decomp.Topology[d]
				if hw > minChunk {
					return fmt.Errorf("field: halo %d exceeds the smallest local extent %d along dim %d; use fewer ranks or a lower space order", hw, minChunk, d)
				}
			}
		}
	} else {
		f.LocalShape = append([]int(nil), f.Grid.Shape...)
		f.Origin = make([]int, nd)
	}
	return nil
}

// GrowHalo widens the allocated ghost region to at least halo[d] points
// per side, reallocating every time buffer with the new strides and
// copying the old allocation (owned data and existing ghost content) into
// place; newly gained ghost cells are zero, like a fresh allocation.
// Dimensions already wide enough are untouched and shrinking is not
// supported, so repeated calls are monotone. Compiled kernels survive a
// grow because they resolve strides and halo offsets at execution time —
// this is what lets an operator deepen ghost storage for a larger exchange
// interval without recompiling.
func (f *Function) GrowHalo(halo []int) {
	nd := f.NDims()
	newHalo := append([]int(nil), f.Halo...)
	grew := false
	for d := 0; d < nd && d < len(halo); d++ {
		if halo[d] > newHalo[d] {
			newHalo[d] = halo[d]
			grew = true
		}
	}
	if !grew {
		return
	}
	old := f.FullRegion()
	shifted := Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		off := newHalo[d] - f.Halo[d]
		shifted.Lo[d] = old.Lo[d] + off
		shifted.Hi[d] = old.Hi[d] + off
	}
	tmp := make([]float32, old.Size())
	f.Halo = newHalo
	for bi, b := range f.Bufs {
		b.Pack(old, tmp)
		nb := NewBuffer(f.FullShape())
		nb.Unpack(shifted, tmp)
		f.Bufs[bi] = nb
	}
}

// FullShape is the allocated shape: DOMAIN plus halo on both sides.
func (f *Function) FullShape() []int {
	out := make([]int, len(f.LocalShape))
	for d := range out {
		out[d] = f.LocalShape[d] + 2*f.Halo[d]
	}
	return out
}

// NDims returns the space dimensionality.
func (f *Function) NDims() int { return f.Grid.NDims() }

// Buf returns the time buffer for logical time index t (cyclic). Plain
// functions ignore t.
func (f *Function) Buf(t int) *Buffer {
	n := len(f.Bufs)
	if n == 1 {
		return f.Bufs[0]
	}
	return f.Bufs[((t%n)+n)%n]
}

// DomainRegion is the writable owned box in buffer coordinates.
func (f *Function) DomainRegion() Region {
	nd := f.NDims()
	r := Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		r.Lo[d] = f.Halo[d]
		r.Hi[d] = f.Halo[d] + f.LocalShape[d]
	}
	return r
}

// FullRegion covers the whole allocation including halos.
func (f *Function) FullRegion() Region {
	nd := f.NDims()
	r := Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	copy(r.Hi, f.FullShape())
	return r
}

// CoreRegion is the part of DOMAIN whose stencil reads stay inside DOMAIN:
// DOMAIN shrunk by the halo width on every side. It may be empty for tiny
// local domains.
func (f *Function) CoreRegion() Region {
	r := f.DomainRegion()
	for d := range r.Lo {
		r.Lo[d] += f.Halo[d]
		r.Hi[d] -= f.Halo[d]
		if r.Hi[d] < r.Lo[d] {
			r.Hi[d] = r.Lo[d]
		}
	}
	return r
}

// OwnedRegions decomposes DOMAIN minus CORE into disjoint slabs — the
// REMAINDER areas of the full pattern (faces and strips along decomposed
// dimensions). The slabs are ordered deterministically.
func (f *Function) OwnedRegions() []Region {
	dom := f.DomainRegion()
	core := f.CoreRegion()
	if core.Empty() {
		return []Region{dom}
	}
	var out []Region
	// Peel the two outer slabs per dimension, shrinking the box as we go so
	// slabs are disjoint.
	box := dom.Clone()
	for d := range box.Lo {
		lowT := box.Clone()
		lowT.Hi[d] = core.Lo[d]
		if !lowT.Empty() {
			out = append(out, lowT)
		}
		highT := box.Clone()
		highT.Lo[d] = core.Hi[d]
		if !highT.Empty() {
			out = append(out, highT)
		}
		box.Lo[d] = core.Lo[d]
		box.Hi[d] = core.Hi[d]
	}
	return out
}

// SendRegion returns the OWNED slab that must be shipped to the neighbour
// at the given topology offset (entries in {-1,0,1}). Zero offsets span the
// domain extent; includeHalo widens zero-offset dimensions to the full
// allocated extent (used by the basic mode's dimension-sweep exchange).
func (f *Function) SendRegion(offset []int, includeHalo []bool) Region {
	return f.SendRegionDepth(offset, includeHalo, nil)
}

// SendRegionDepth is SendRegion with an explicit exchange depth per
// dimension: the slab shipped is depth[d] points wide instead of the full
// allocated ghost width, and includeHalo dimensions span the owned extent
// plus depth[d] ghost points per side (the part of the halo a depth-wide
// sweep has already filled). nil depth means the full allocated width —
// the plain SendRegion behaviour.
func (f *Function) SendRegionDepth(offset []int, includeHalo []bool, depth []int) Region {
	nd := f.NDims()
	r := Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		h := f.Halo[d]
		n := f.LocalShape[d]
		g := h
		if depth != nil {
			g = depth[d]
		}
		switch offset[d] {
		case 0:
			if includeHalo != nil && includeHalo[d] {
				r.Lo[d], r.Hi[d] = h-g, h+n+g
			} else {
				r.Lo[d], r.Hi[d] = h, h+n
			}
		case 1:
			r.Lo[d], r.Hi[d] = h+n-g, h+n
		case -1:
			r.Lo[d], r.Hi[d] = h, h+g
		default:
			panic("field: offset entries must be -1, 0 or 1")
		}
	}
	return r
}

// RecvRegion returns the HALO slab populated by the neighbour at the given
// offset.
func (f *Function) RecvRegion(offset []int, includeHalo []bool) Region {
	return f.RecvRegionDepth(offset, includeHalo, nil)
}

// RecvRegionDepth is RecvRegion with an explicit exchange depth per
// dimension; the received slab is the depth[d]-wide ghost band adjacent to
// the owned box. nil depth means the full allocated width.
func (f *Function) RecvRegionDepth(offset []int, includeHalo []bool, depth []int) Region {
	nd := f.NDims()
	r := Region{Lo: make([]int, nd), Hi: make([]int, nd)}
	for d := 0; d < nd; d++ {
		h := f.Halo[d]
		n := f.LocalShape[d]
		g := h
		if depth != nil {
			g = depth[d]
		}
		switch offset[d] {
		case 0:
			if includeHalo != nil && includeHalo[d] {
				r.Lo[d], r.Hi[d] = h-g, h+n+g
			} else {
				r.Lo[d], r.Hi[d] = h, h+n
			}
		case 1:
			r.Lo[d], r.Hi[d] = h+n, h+n+g
		case -1:
			r.Lo[d], r.Hi[d] = h-g, h
		default:
			panic("field: offset entries must be -1, 0 or 1")
		}
	}
	return r
}

// SetDomain writes v at domain-relative coordinates (0-based within the
// owned box) of time buffer t.
func (f *Function) SetDomain(t int, v float32, idx ...int) {
	buf := f.Buf(t)
	shifted := make([]int, len(idx))
	for d, i := range idx {
		shifted[d] = i + f.Halo[d]
	}
	buf.Set(v, shifted...)
}

// AtDomain reads at domain-relative coordinates of time buffer t.
func (f *Function) AtDomain(t int, idx ...int) float32 {
	buf := f.Buf(t)
	shifted := make([]int, len(idx))
	for d, i := range idx {
		shifted[d] = i + f.Halo[d]
	}
	return buf.At(shifted...)
}
