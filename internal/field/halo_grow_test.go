package field

import (
	"strings"
	"testing"

	"devigo/internal/grid"
)

// Config.HaloWidth below the stencil radius (SpaceOrder/2) must be
// rejected instead of silently under-allocating the ghost zone.
func TestHaloWidthBelowRadiusRejected(t *testing.T) {
	g := grid.MustNew([]int{16, 16}, nil)
	_, err := NewFunction("u", g, 8, &Config{HaloWidth: 3})
	if err == nil {
		t.Fatal("HaloWidth 3 accepted for space order 8 (radius 4)")
	}
	if !strings.Contains(err.Error(), "HaloWidth") {
		t.Errorf("error %q does not mention HaloWidth", err)
	}
	// Exactly the radius is the minimum legal override.
	f, err := NewFunction("u", g, 8, &Config{HaloWidth: 4})
	if err != nil {
		t.Fatalf("HaloWidth 4 (== radius) rejected: %v", err)
	}
	if f.Halo[0] != 4 || f.Halo[1] != 4 {
		t.Errorf("halo = %v, want [4 4]", f.Halo)
	}
	// Wider than the default stays accepted (deep halos).
	if _, err := NewFunction("u", g, 8, &Config{HaloWidth: 24}); err != nil {
		t.Errorf("deep HaloWidth 24 rejected: %v", err)
	}
}

// GrowHalo preserves owned data and prior ghost content at the shifted
// origin, zeroes the newly gained cells, updates the strides, and is
// monotone (never shrinks, idempotent on repeat).
func TestGrowHaloPreservesData(t *testing.T) {
	g := grid.MustNew([]int{6, 5}, nil)
	tf, err := NewTimeFunction("u", g, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &tf.Function
	// Distinct values everywhere in the old allocation of buffer 1,
	// including the old ghost cells.
	old := f.Buf(1)
	for i := range old.Data {
		old.Data[i] = float32(i + 1)
	}
	oldHalo := append([]int(nil), f.Halo...)
	oldVals := map[[2]int]float32{}
	for i := 0; i < old.Shape[0]; i++ {
		for j := 0; j < old.Shape[1]; j++ {
			oldVals[[2]int{i - oldHalo[0], j - oldHalo[1]}] = old.At(i, j)
		}
	}

	f.GrowHalo([]int{5, 4})
	if f.Halo[0] != 5 || f.Halo[1] != 4 {
		t.Fatalf("halo after grow = %v, want [5 4]", f.Halo)
	}
	nb := f.Buf(1)
	if nb.Shape[0] != 6+10 || nb.Shape[1] != 5+8 {
		t.Fatalf("buffer shape after grow = %v, want [16 13]", nb.Shape)
	}
	for i := 0; i < nb.Shape[0]; i++ {
		for j := 0; j < nb.Shape[1]; j++ {
			key := [2]int{i - f.Halo[0], j - f.Halo[1]}
			want, existed := oldVals[key]
			if !existed {
				want = 0
			}
			if got := nb.At(i, j); got != want {
				t.Fatalf("cell %v after grow = %v, want %v", key, got, want)
			}
		}
	}
	// Other buffers reallocated too (all zero before, stay zero).
	if len(f.Bufs[0].Data) != len(nb.Data) {
		t.Errorf("buffer 0 not reallocated with buffer 1")
	}

	// Shrinking and same-width requests are no-ops.
	before := f.Buf(1)
	f.GrowHalo([]int{2, 2})
	f.GrowHalo([]int{5, 4})
	if f.Buf(1) != before {
		t.Error("no-op GrowHalo reallocated storage")
	}
	if f.Halo[0] != 5 || f.Halo[1] != 4 {
		t.Errorf("halo changed by no-op grow: %v", f.Halo)
	}
}

// Depth-parameterized exchange regions: nil depth reproduces the classic
// full-width slabs; explicit depths shrink the bands while keeping them
// adjacent to the owned box.
func TestSendRecvRegionDepth(t *testing.T) {
	g := grid.MustNew([]int{10, 10}, nil)
	f, err := NewFunction("u", g, 4, &Config{HaloWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	// depth nil == full width 6.
	s := f.SendRegionDepth([]int{1, 0}, nil, nil)
	if s.Lo[0] != 6+10-6 || s.Hi[0] != 6+10 {
		t.Errorf("full-width send dim0 = [%d,%d), want [10,16)", s.Lo[0], s.Hi[0])
	}
	// depth 2: a 2-wide band at the owned edge.
	s = f.SendRegionDepth([]int{1, 0}, nil, []int{2, 2})
	if s.Lo[0] != 14 || s.Hi[0] != 16 {
		t.Errorf("depth-2 send dim0 = [%d,%d), want [14,16)", s.Lo[0], s.Hi[0])
	}
	r := f.RecvRegionDepth([]int{1, 0}, nil, []int{2, 2})
	if r.Lo[0] != 16 || r.Hi[0] != 18 {
		t.Errorf("depth-2 recv dim0 = [%d,%d), want [16,18)", r.Lo[0], r.Hi[0])
	}
	r = f.RecvRegionDepth([]int{-1, 0}, nil, []int{2, 2})
	if r.Lo[0] != 4 || r.Hi[0] != 6 {
		t.Errorf("depth-2 recv low dim0 = [%d,%d), want [4,6)", r.Lo[0], r.Hi[0])
	}
	// includeHalo spans the owned extent plus depth per side.
	s = f.SendRegionDepth([]int{0, 1}, []bool{true, false}, []int{2, 2})
	if s.Lo[0] != 4 || s.Hi[0] != 18 {
		t.Errorf("includeHalo depth-2 span dim0 = [%d,%d), want [4,18)", s.Lo[0], s.Hi[0])
	}
}
