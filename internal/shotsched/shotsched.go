// Package shotsched is the shot-level scheduler of the FWI service: the
// work tier sitting *above* the rank-level domain decomposition. Where a
// DMP world splits one wave-propagation solve across ranks, shotsched
// dispatches N independent solves ("shots" — each typically a
// propagators.RunGradient in its own in-process MPI world) across a
// bounded pool of concurrent worker groups, and streams their results
// through a reduction callback in strictly ascending shot order.
//
// The ordering guarantee is the package's whole point: floating-point
// accumulation is not associative, so a gradient stack folded in
// completion order would differ between runs and worker counts. The
// scheduler buffers out-of-order completions and applies the reduction
// for shot i only after shots 0..i-1 have been reduced, making the result
// bit-identical to a sequential loop over the same shots regardless of
// DEVIGO_SHOT_WORKERS.
package shotsched

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"devigo/internal/obs"
)

// WorkersEnvVar sets the concurrent shot-group pool size when
// Config.Workers is unset: DEVIGO_SHOT_WORKERS=4 runs four shots at a
// time. Unset defaults to 1 (sequential).
const WorkersEnvVar = "DEVIGO_SHOT_WORKERS"

// Config tunes a scheduler run.
type Config struct {
	// Workers is the number of shots in flight at once. 0 consults the
	// DEVIGO_SHOT_WORKERS environment variable, then defaults to 1.
	Workers int
}

// Stat is one completed shot's scheduling record, reported in ascending
// shot order.
type Stat struct {
	// Shot is the shot index.
	Shot int
	// Seconds is the shot's wall time inside its worker (queue wait
	// excluded).
	Seconds float64
}

// ResolveWorkers picks the worker-pool size: an explicit requested > 0
// wins, then the DEVIGO_SHOT_WORKERS environment variable, then 1. A
// value that is not a positive integer is a configuration error naming
// the bad value, where it came from, and what is accepted.
func ResolveWorkers(requested int) (int, error) {
	if requested > 0 {
		return requested, nil
	}
	if requested < 0 {
		return 0, fmt.Errorf("shotsched: invalid worker count %d in Config.Workers (want a positive integer)", requested)
	}
	s := strings.TrimSpace(os.Getenv(WorkersEnvVar))
	if s == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("shotsched: invalid worker count %q in $%s (want a positive integer)", s, WorkersEnvVar)
	}
	return n, nil
}

// ClampWorkers bounds the scheduler pool so the product of concurrency
// tiers — shots in flight × compute lanes per shot (ranks × per-rank
// workers) — never oversubscribes the host: shotWorkers is reduced until
// shotWorkers*lanesPerShot <= hostCores, but never below 1 (a single
// over-wide shot is the user's explicit choice; silently serialising it
// would be worse). Callers log the decision when the clamp engages.
func ClampWorkers(shotWorkers, lanesPerShot, hostCores int) int {
	if shotWorkers < 1 {
		shotWorkers = 1
	}
	if lanesPerShot < 1 {
		lanesPerShot = 1
	}
	if hostCores < 1 || shotWorkers*lanesPerShot <= hostCores {
		return shotWorkers
	}
	c := hostCores / lanesPerShot
	if c < 1 {
		c = 1
	}
	return c
}

// errSkipped marks shots abandoned after another shot failed; it never
// escapes Run.
var errSkipped = fmt.Errorf("shotsched: skipped after earlier failure")

// Run dispatches shots 0..n-1 through fn across the bounded worker pool
// and streams each result into reduce in strictly ascending shot order
// (buffering out-of-order completions), so the reduction is bit-identical
// to a sequential loop for any worker count. reduce is never called
// concurrently. On failure the scheduler stops launching new shots, lets
// in-flight shots finish, and returns the failing error of the smallest
// shot index (deterministic under races); reduce is not called for any
// shot at or beyond the first failure. A nil reduce just drains.
//
// Each shot records a PhaseShot span and a CtrShotsDone count in the obs
// subsystem (rank 0 — the scheduler lives above the rank tier), and the
// pool size is published through the CtrShotWorkers gauge.
func Run[T any](n int, cfg Config, fn func(shot int) (T, error), reduce func(shot int, v T) error) ([]Stat, error) {
	if n < 0 {
		return nil, fmt.Errorf("shotsched: negative shot count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if fn == nil {
		return nil, fmt.Errorf("shotsched: nil shot function")
	}
	workers, err := ResolveWorkers(cfg.Workers)
	if err != nil {
		return nil, err
	}
	if workers > n {
		workers = n
	}
	obs.Add(0, obs.CtrShotWorkers, int64(workers))

	type item struct {
		shot int
		val  T
		err  error
		sec  float64
	}
	jobs := make(chan int)
	results := make(chan item)
	var cancel atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shot := range jobs {
				if cancel.Load() {
					results <- item{shot: shot, err: errSkipped}
					continue
				}
				sp := obs.Begin(0, obs.PhaseShot, shot)
				t0 := time.Now()
				v, err := fn(shot)
				it := item{shot: shot, val: v, err: err, sec: time.Since(t0).Seconds()}
				sp.End()
				if err == nil {
					obs.Add(0, obs.CtrShotsDone, 1)
				}
				results <- it
			}
		}()
	}
	go func() {
		for s := 0; s < n; s++ {
			jobs <- s
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]item, workers)
	stats := make([]Stat, 0, n)
	next := 0
	var firstErr error
	firstErrShot := n
	fail := func(shot int, err error) {
		cancel.Store(true)
		if shot < firstErrShot {
			firstErrShot, firstErr = shot, err
		}
	}
	for it := range results {
		if it.err != nil {
			if it.err != errSkipped {
				fail(it.shot, it.err)
			}
			continue
		}
		pending[it.shot] = it
		for {
			nit, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			// Shots at or beyond a failure are complete but unreduced:
			// a partial stack would be silently wrong.
			if firstErr == nil || nit.shot < firstErrShot {
				if reduce != nil {
					if err := reduce(nit.shot, nit.val); err != nil {
						fail(nit.shot, err)
					}
				}
				if firstErr == nil || nit.shot < firstErrShot {
					stats = append(stats, Stat{Shot: nit.shot, Seconds: nit.sec})
				}
			}
			next++
		}
	}
	if firstErr != nil {
		return stats, fmt.Errorf("shotsched: shot %d: %w", firstErrShot, firstErr)
	}
	return stats, nil
}
