package shotsched

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReduceOrderDeterministic is the package's core guarantee: shots
// completing out of order are still reduced in ascending shot order, so a
// non-associative fold is identical for any worker count.
func TestReduceOrderDeterministic(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	for _, workers := range []int{1, 3, 8} {
		var order []int
		stats, err := Run(n, Config{Workers: workers},
			func(shot int) (int, error) {
				time.Sleep(delays[shot])
				return shot * shot, nil
			},
			func(shot int, v int) error {
				if v != shot*shot {
					t.Errorf("shot %d carried %d", shot, v)
				}
				order = append(order, shot)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != n || len(stats) != n {
			t.Fatalf("workers=%d: reduced %d shots, %d stats, want %d", workers, len(order), len(stats), n)
		}
		for i, s := range order {
			if s != i {
				t.Fatalf("workers=%d: reduction order %v not ascending", workers, order)
			}
			if stats[i].Shot != i {
				t.Fatalf("workers=%d: stats order %v not ascending", workers, stats)
			}
		}
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	var inFlight, peak atomic.Int64
	const workers = 3
	_, err := Run(24, Config{Workers: workers},
		func(shot int) (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d shots in flight, pool bound is %d", p, workers)
	}
}

func TestErrorStopsAndIsDeterministic(t *testing.T) {
	boom := fmt.Errorf("boom")
	reduced := map[int]bool{}
	_, err := Run(16, Config{Workers: 4},
		func(shot int) (int, error) {
			if shot == 5 || shot == 9 {
				return 0, boom
			}
			return shot, nil
		},
		func(shot int, v int) error {
			reduced[shot] = true
			return nil
		})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "shot 5") {
		t.Fatalf("error %q does not name the smallest failing shot", err)
	}
	for s := range reduced {
		if s >= 5 {
			t.Fatalf("shot %d was reduced past the failure point", s)
		}
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	_, err := Run(4, Config{Workers: 2},
		func(shot int) (int, error) { return shot, nil },
		func(shot int, v int) error {
			if shot == 2 {
				return fmt.Errorf("stack overflow")
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "shot 2") {
		t.Fatalf("reduce error not propagated: %v", err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if n, err := ResolveWorkers(6); n != 6 || err != nil {
		t.Fatalf("explicit workers: %d, %v", n, err)
	}
	t.Setenv(WorkersEnvVar, "")
	if n, err := ResolveWorkers(0); n != 1 || err != nil {
		t.Fatalf("default workers: %d, %v", n, err)
	}
	t.Setenv(WorkersEnvVar, "4")
	if n, err := ResolveWorkers(0); n != 4 || err != nil {
		t.Fatalf("env workers: %d, %v", n, err)
	}
	for _, bad := range []string{"zero", "-2", "0"} {
		t.Setenv(WorkersEnvVar, bad)
		if _, err := ResolveWorkers(0); err == nil || !strings.Contains(err.Error(), WorkersEnvVar) {
			t.Errorf("ResolveWorkers with $%s=%q: want an error naming the variable, got %v",
				WorkersEnvVar, bad, err)
		}
	}
	if _, err := ResolveWorkers(-1); err == nil {
		t.Error("negative Config.Workers accepted")
	}
}

func TestZeroAndNilCases(t *testing.T) {
	stats, err := Run[int](0, Config{}, func(int) (int, error) { return 0, nil }, nil)
	if err != nil || stats != nil {
		t.Fatalf("n=0: %v, %v", stats, err)
	}
	if _, err := Run[int](4, Config{}, nil, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	if _, err := Run[int](-1, Config{}, func(int) (int, error) { return 0, nil }, nil); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		name                       string
		workers, lanes, cores, out int
	}{
		{"fits exactly", 4, 2, 8, 4},
		{"fits with slack", 2, 2, 16, 2},
		{"halved", 8, 2, 8, 4},
		{"floor of division", 5, 3, 8, 2},
		{"never below one", 4, 16, 8, 1},
		{"single core", 3, 4, 1, 1},
		{"unknown cores is a no-op", 7, 9, 0, 7},
		{"degenerate inputs normalised", 0, 0, 4, 1},
	}
	for _, c := range cases {
		if got := ClampWorkers(c.workers, c.lanes, c.cores); got != c.out {
			t.Errorf("%s: ClampWorkers(%d, %d, %d) = %d, want %d",
				c.name, c.workers, c.lanes, c.cores, got, c.out)
		}
	}
	// The clamp never produces an oversubscribing product when it can
	// avoid one.
	for w := 1; w <= 8; w++ {
		for l := 1; l <= 8; l++ {
			for cpu := 1; cpu <= 16; cpu++ {
				got := ClampWorkers(w, l, cpu)
				if got > 1 && got*l > cpu {
					t.Fatalf("ClampWorkers(%d, %d, %d) = %d still oversubscribes", w, l, cpu, got)
				}
				if got < 1 {
					t.Fatalf("ClampWorkers(%d, %d, %d) = %d below floor", w, l, cpu, got)
				}
			}
		}
	}
}
