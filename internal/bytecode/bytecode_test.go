package bytecode

import (
	"math"
	"testing"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/ir"
	"devigo/internal/runtime"
	"devigo/internal/symbolic"
)

// buildDiffusion lowers the Listing-1 diffusion update over a grid and
// returns both engines' kernels compiled from the same cluster, plus two
// identically-initialised fields (one per engine).
func buildDiffusion(t *testing.T, g *grid.Grid, so int) (*Kernel, *runtime.Kernel, *field.TimeFunction, *field.TimeFunction) {
	t.Helper()
	mk := func(name string) *field.TimeFunction {
		u, err := field.NewTimeFunction(name, g, so, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	uB, uI := mk("u"), mk("u")
	eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(uB.Ref), 1), RHS: symbolic.Laplace(symbolic.At(uB.Ref), g.NDims(), so)}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(uB.Ref))
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ir.Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(uB.Ref), RHS: sol}}, g.NDims())
	if err != nil {
		t.Fatal(err)
	}
	kB, err := CompileCluster(clusters[0], map[string]*field.Function{"u": &uB.Function})
	if err != nil {
		t.Fatal(err)
	}
	kI, err := runtime.CompileCluster(clusters[0], map[string]*field.Function{"u": &uI.Function})
	if err != nil {
		t.Fatal(err)
	}
	return kB, kI, uB, uI
}

func patternInit(fs ...*field.TimeFunction) {
	for _, f := range fs {
		buf := f.Buf(0)
		for i := range buf.Data {
			buf.Data[i] = float32((i*13)%29) * 0.125
		}
	}
}

func domainBox(f *field.Function) runtime.Box {
	nd := f.NDims()
	b := runtime.Box{Lo: make([]int, nd), Hi: make([]int, nd)}
	copy(b.Hi, f.LocalShape)
	return b
}

func compareBuf(t *testing.T, label string, a, b *field.Buffer) {
	t.Helper()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] && !(math.IsNaN(float64(a.Data[i])) && math.IsNaN(float64(b.Data[i]))) {
			t.Fatalf("%s: engines diverge at flat index %d: bytecode=%v interpreter=%v",
				label, i, a.Data[i], b.Data[i])
		}
	}
}

func TestBitExactDiffusion(t *testing.T) {
	for _, so := range []int{2, 4, 8} {
		g := grid.MustNew([]int{17, 13}, []float64{3, 5})
		kB, kI, uB, uI := buildDiffusion(t, g, so)
		patternInit(uB, uI)
		vals := map[string]float64{"dt": 0.001, "h_x": g.Spacing(0), "h_y": g.Spacing(1)}
		poolB, err := kB.BindSyms(vals)
		if err != nil {
			t.Fatal(err)
		}
		symsI, err := kI.BindSyms(vals)
		if err != nil {
			t.Fatal(err)
		}
		kB.Run(0, domainBox(&uB.Function), poolB, nil)
		kI.Run(0, domainBox(&uI.Function), symsI, nil)
		compareBuf(t, "diffusion", uB.Buf(1), uI.Buf(1))
	}
}

func TestBitExact1DAnd3D(t *testing.T) {
	for _, shape := range [][]int{{37}, {7, 6, 5}} {
		g := grid.MustNew(shape, nil)
		kB, kI, uB, uI := buildDiffusion(t, g, 2)
		patternInit(uB, uI)
		vals := map[string]float64{"dt": 0.01, "h_x": 1, "h_y": 1, "h_z": 1}
		poolB, _ := kB.BindSyms(vals)
		symsI, _ := kI.BindSyms(vals)
		kB.Run(0, domainBox(&uB.Function), poolB, &runtime.ExecOpts{TileRows: 3})
		kI.Run(0, domainBox(&uI.Function), symsI, &runtime.ExecOpts{TileRows: 3})
		compareBuf(t, "shape", uB.Buf(1), uI.Buf(1))
	}
}

// TestBitExactNestWithTempsAndPow exercises CSE temporaries, per-point
// powers, reciprocal strength reduction and madd fusion in one nest.
func TestBitExactNestWithTempsAndPow(t *testing.T) {
	g := grid.MustNew([]int{12, 11}, nil)
	mk := func() (*field.TimeFunction, *field.Function) {
		u, err := field.NewTimeFunction("u", g, 2, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := field.NewFunction("m", g, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return u, m
	}
	uB, mB := mk()
	uI, mI := mk()
	patternInit(uB, uI)
	for _, mm := range []*field.Function{mB, mI} {
		buf := mm.Bufs[0]
		for i := range buf.Data {
			buf.Data[i] = 1.5 + float32(i%7)*0.25
		}
	}
	ref := uB.Ref
	mref := mB.Ref
	// r0 = (u[t,x-1,y] + u[t,x+1,y]) * m[x,y]**-1  (per-point temp with a
	// per-point reciprocal), then:
	//   u[t+1] = r0*r0 + dt*(1/dt)*u[t] + r0*2 + (u[t,x,y-1]*m*dt)
	// covering: temp reuse, PowV, scalar reciprocal (1/dt at bind time),
	// VS/VV madd fusion and duplicate-load caching.
	r0 := symbolic.Assignment{
		Name: "r0",
		Value: symbolic.NewMul(
			symbolic.NewAdd(symbolic.Shifted(ref, 0, -1, 0), symbolic.Shifted(ref, 0, 1, 0)),
			symbolic.Pow{Base: symbolic.At(mref), Exp: -1},
		),
	}
	rhs := symbolic.NewAdd(
		symbolic.NewMul(symbolic.S("r0"), symbolic.S("r0")),
		symbolic.NewMul(symbolic.S("dt"), symbolic.Pow{Base: symbolic.S("dt"), Exp: -1}, symbolic.At(ref)),
		symbolic.NewMul(symbolic.S("r0"), symbolic.Int(2)),
		symbolic.NewMul(symbolic.Shifted(ref, 0, 0, -1), symbolic.At(mref), symbolic.S("dt")),
	)
	eqs := []symbolic.Eq{{LHS: symbolic.ForwardStencil(ref), RHS: rhs}}
	radius := []int{1, 1}

	kB, err := CompileNest([]symbolic.Assignment{r0}, eqs, radius,
		map[string]*field.Function{"u": &uB.Function, "m": mB})
	if err != nil {
		t.Fatal(err)
	}
	kI, err := runtime.CompileNest([]symbolic.Assignment{r0}, eqs, radius,
		map[string]*field.Function{"u": &uI.Function, "m": mI})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{"dt": 0.37}
	poolB, err := kB.BindSyms(vals)
	if err != nil {
		t.Fatal(err)
	}
	symsI, err := kI.BindSyms(vals)
	if err != nil {
		t.Fatal(err)
	}
	kB.Run(0, domainBox(&uB.Function), poolB, nil)
	kI.Run(0, domainBox(&uI.Function), symsI, nil)
	compareBuf(t, "temps+pow", uB.Buf(1), uI.Buf(1))
	if kB.FlopsPerPoint() != kI.FlopsPerPoint() {
		t.Errorf("flop accounting differs: bytecode %d, interpreter %d",
			kB.FlopsPerPoint(), kI.FlopsPerPoint())
	}
}

// TestMultiEquationRowOrdering mirrors the interpreter's contract: a later
// equation reading an earlier equation's output at the centre point must
// observe the freshly stored value.
func TestMultiEquationRowOrdering(t *testing.T) {
	g := grid.MustNew([]int{6}, nil)
	a, _ := field.NewTimeFunction("a", g, 2, 1, nil)
	bf, _ := field.NewTimeFunction("b", g, 2, 1, nil)
	eq1 := symbolic.Eq{LHS: symbolic.ForwardStencil(a.Ref), RHS: symbolic.NewAdd(symbolic.At(a.Ref), symbolic.Int(1))}
	eq2 := symbolic.Eq{LHS: symbolic.ForwardStencil(bf.Ref), RHS: symbolic.NewMul(symbolic.Int(2), symbolic.ForwardStencil(a.Ref))}
	clusters, err := ir.Lower([]symbolic.Eq{eq1, eq2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("expected fusion, got %d clusters", len(clusters))
	}
	k, err := CompileCluster(clusters[0], map[string]*field.Function{"a": &a.Function, "b": &bf.Function})
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := k.BindSyms(nil)
	k.Run(0, domainBox(&a.Function), pool, nil)
	if got := bf.AtDomain(1, 3); got != 2 {
		t.Errorf("b = %v, want 2 (must read the freshly stored a[t+1] = 1)", got)
	}
}

func TestTiledAndParallelMatchSequential(t *testing.T) {
	g := grid.MustNew([]int{21, 10}, nil)
	run := func(opts *runtime.ExecOpts) *field.TimeFunction {
		kB, _, uB, _ := buildDiffusion(t, g, 4)
		patternInit(uB)
		pool, err := kB.BindSyms(map[string]float64{"dt": 0.05, "h_x": 1, "h_y": 1})
		if err != nil {
			t.Fatal(err)
		}
		kB.Run(0, domainBox(&uB.Function), pool, opts)
		return uB
	}
	seq := run(nil)
	tiled := run(&runtime.ExecOpts{TileRows: 4})
	par := run(&runtime.ExecOpts{Workers: 4, TileRows: 2})
	compareBuf(t, "tiled", seq.Buf(1), tiled.Buf(1))
	compareBuf(t, "parallel", seq.Buf(1), par.Buf(1))
}

func TestEmptyBoxNoOp(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	kB, _, uB, _ := buildDiffusion(t, g, 2)
	pool, _ := kB.BindSyms(map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1})
	kB.Run(0, runtime.Box{Lo: []int{4, 4}, Hi: []int{4, 8}}, pool, nil)
	for _, v := range uB.Buf(1).Data {
		if v != 0 {
			t.Fatal("empty box must not write")
		}
	}
}

func TestTileLargerThanOuterDim(t *testing.T) {
	g := grid.MustNew([]int{5, 9}, nil)
	kB, kI, uB, uI := buildDiffusion(t, g, 2)
	patternInit(uB, uI)
	vals := map[string]float64{"dt": 0.1, "h_x": 1, "h_y": 1}
	poolB, _ := kB.BindSyms(vals)
	symsI, _ := kI.BindSyms(vals)
	// TileRows far beyond the outer extent must clamp, not crash or skip.
	kB.Run(0, domainBox(&uB.Function), poolB, &runtime.ExecOpts{TileRows: 1000})
	kI.Run(0, domainBox(&uI.Function), symsI, &runtime.ExecOpts{TileRows: 1000})
	compareBuf(t, "clamped tile", uB.Buf(1), uI.Buf(1))
}

func TestBindSymsMissingErrors(t *testing.T) {
	g := grid.MustNew([]int{8, 8}, nil)
	kB, _, _, _ := buildDiffusion(t, g, 2)
	if _, err := kB.BindSyms(map[string]float64{"dt": 0.1}); err == nil {
		t.Error("missing h_x binding should error")
	}
}

// TestLoadDeduplication asserts the register compiler's headline win over
// the stack interpreter: one load per distinct (field, offset) slot.
func TestLoadDeduplication(t *testing.T) {
	g := grid.MustNew([]int{9, 9}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	// u[t,x,y] appears three times; it must load once.
	rhs := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(u.Ref), symbolic.At(u.Ref)),
		symbolic.At(u.Ref),
	)
	k, err := CompileNest(nil, []symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: rhs}},
		[]int{0, 0}, map[string]*field.Function{"u": &u.Function})
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, in := range k.prog {
		if in.op == opLoad {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("duplicate reads should compile to 1 load, got %d", loads)
	}
}

// TestConstantFoldingAndStrengthReduction asserts that pure-constant
// scalar work folds at compile time and sym-dependent scalars (like 1/dt)
// move to the bind-time prelude rather than the row program.
func TestConstantFoldingAndStrengthReduction(t *testing.T) {
	g := grid.MustNew([]int{9}, nil)
	u, _ := field.NewTimeFunction("u", g, 2, 1, nil)
	// (2*3) folds to a constant; dt**-1 becomes one prelude entry used as
	// a multiply; no PowV or per-row scalar ops may remain.
	rhs := symbolic.NewMul(
		symbolic.Mul{Factors: []symbolic.Expr{symbolic.Int(2), symbolic.Int(3)}},
		symbolic.Pow{Base: symbolic.S("dt"), Exp: -1},
		symbolic.At(u.Ref),
	)
	k, err := CompileNest(nil, []symbolic.Eq{{LHS: symbolic.ForwardStencil(u.Ref), RHS: rhs}},
		[]int{0}, map[string]*field.Function{"u": &u.Function})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range k.prog {
		if in.op == opPowV {
			t.Error("scalar power must be strength-reduced to a bind-time reciprocal")
		}
	}
	pool, err := k.BindSyms(map[string]float64{"dt": 4})
	if err != nil {
		t.Fatal(err)
	}
	u.SetDomain(0, 2, 4)
	k.Run(0, domainBox(&u.Function), pool, nil)
	// 6 * (1/4) * 2 = 3.
	if got := u.AtDomain(1, 4); got != 3 {
		t.Errorf("folded kernel computed %v, want 3", got)
	}
	if got := math.Float64bits(pool[k.symSlots[0]]); got != math.Float64bits(4) {
		t.Errorf("dt slot = %x", got)
	}
}
