package bytecode

// This file is the engine-introspection surface of the bytecode compiler:
// an exported, read-only view of the compiled row program plus the
// opcode-run extraction the native engine builds its specialized bulk-row
// kernels from. The bytecode VM itself never consults runs — it dispatches
// per instruction — but extracting the runs here, from the same program
// both engines execute, is what keeps the two backends bit-exact: the
// native engine lowers the *identical* operation sequence, and the
// conformance tests assert that every opcode and every run shape stays
// covered by real scenario kernels.

// Exported opcode values, mirroring the internal constants one-to-one.
const (
	OpLoad   byte = opLoad
	OpStore  byte = opStore
	OpCopy   byte = opCopy
	OpMovS   byte = opMovS
	OpAddVV  byte = opAddVV
	OpAddVS  byte = opAddVS
	OpMulVV  byte = opMulVV
	OpMulVS  byte = opMulVS
	OpMaddVV byte = opMaddVV
	OpMaddVS byte = opMaddVS
	OpPowV   byte = opPowV
)

// NumOpcodes is the size of the vector-opcode vocabulary.
const NumOpcodes = int(opPowV) + 1

// OpName returns the mnemonic of a vector opcode.
func OpName(op byte) string {
	switch op {
	case opLoad:
		return "load"
	case opStore:
		return "store"
	case opCopy:
		return "copy"
	case opMovS:
		return "movs"
	case opAddVV:
		return "addvv"
	case opAddVS:
		return "addvs"
	case opMulVV:
		return "mulvv"
	case opMulVS:
		return "mulvs"
	case opMaddVV:
		return "maddvv"
	case opMaddVS:
		return "maddvs"
	case opPowV:
		return "powv"
	}
	return "?"
}

// Instr is the exported view of one row-program instruction. Field use per
// opcode matches the internal opcode documentation: Rd, A and C address
// row registers; B addresses the scalar pool, a load slot, an equation
// index, an integer exponent, or the second source register (VV forms).
type Instr struct {
	Op          byte
	Rd, A, B, C int32
}

// Program returns the compiled row program as exported instructions.
func (k *Kernel) Program() []Instr {
	out := make([]Instr, len(k.prog))
	for i, in := range k.prog {
		out[i] = Instr{Op: in.op, Rd: in.rd, A: in.a, B: in.b, C: in.c}
	}
	return out
}

// SlotRef describes one resolved field access of the program: which bound
// field (index into FieldNames), which time offset, and the per-dimension
// stencil offset.
type SlotRef struct {
	Field   int
	TimeOff int
	Off     [3]int
}

// Slots returns the program's load-slot table.
func (k *Kernel) Slots() []SlotRef {
	out := make([]SlotRef, len(k.slots))
	for i, s := range k.slots {
		out[i] = SlotRef{Field: s.fieldIdx, TimeOff: s.timeOff, Off: s.off}
	}
	return out
}

// EqRef describes where one equation's store lands.
type EqRef struct {
	Field   int
	TimeOff int
}

// EqOuts returns the program's equation-output table.
func (k *Kernel) EqOuts() []EqRef {
	out := make([]EqRef, len(k.eqs))
	for i, e := range k.eqs {
		out[i] = EqRef{Field: e.outField, TimeOff: e.outTimeOff}
	}
	return out
}

// FieldNames returns the kernel's bound field names in field-index order.
func (k *Kernel) FieldNames() []string { return k.names }

// ---------------------------------------------------------------------------
// Opcode-run extraction: partitioning the row program into fused chains.
//
// The register VM pays one dispatch and one full row pass per instruction.
// Real compiled programs are dominated by *accumulation chains*: a value is
// opened (mulvs/maddvs/...), extended by madds, scaled, and finally stored
// — with the interleaved loads feeding each tap. The extraction rediscovers
// those chains and lowers them into a per-point *link* program the native
// engine executes with the accumulator held in a CPU register: one fused
// loop replaces a dozen row passes.
//
// Three analyses make the fusion exact:
//
//   - Deferred loads. A load instruction materializes a float64 row from
//     float32 field memory. Inside a chain the row is never built: each
//     consuming link re-reads the field directly (class F operand). Because
//     float32→float64 conversion is exact and loads are pure (the program
//     never stores to a buffer it loads — ExtractSegments falls back to a
//     single VM segment if it does), re-reading per use is bit-identical to
//     loading once. Loads whose consumers end up in VM segments are
//     re-emitted there at first use.
//
//   - Register provenance. Every register is tracked as slot-backed (a
//     deferred load), row-backed (materialized by a VM instruction or a
//     chain's LkToRow terminator), or chain-owned. Chain operands resolve
//     to F (re-read field), R (read the register row) or S (scalar pool).
//
//   - Scratch chains. Per-tap compound coefficients (mulvs t=..; mulvs
//     t=t*..; maddvv acc+=t*load) lower into a second accumulator: the
//     LkT* links build t and a LkMerge* link folds it into acc, so the
//     scratch register is never materialized either.
//
// Commutative canonicalization: mul/add vector operands are swapped into
// F-before-R order so one link kind covers both orders. IEEE mul/add are
// commutative in value (including signed zeros); the only observable
// difference under swapping is *which* NaN payload survives when both
// operands are NaN, and every runtime-generated NaN carries the canonical
// quiet payload, so the engines stay bit-exact even after overflow.

// Shape classifies one extracted segment.
type Shape int

const (
	// ShapeVM is the fallback: the native engine executes the segment's
	// instructions with per-instruction row sweeps, exactly like the VM.
	ShapeVM Shape = iota
	// ShapeChain is a fused accumulation chain whose value survives the
	// chain: the terminating LkToRow link materializes the accumulator
	// into its register row for later segments.
	ShapeChain
	// ShapeChainStore is a fused chain consumed solely by the store that
	// terminates it: the LkStore link rounds the accumulator to float32
	// straight into field memory and no row is ever written.
	ShapeChainStore
)

// ShapeNames lists every segment shape with its diagnostic name, in Shape
// order (the conformance table test iterates this).
func ShapeNames() []string { return []string{"vm", "chain", "chain-store"} }

// String returns the shape's diagnostic name ("vm", "chain",
// "chain-store").
func (s Shape) String() string {
	names := ShapeNames()
	if int(s) >= 0 && int(s) < len(names) {
		return names[s]
	}
	return "?"
}

// LinkKind enumerates the fused per-point operations of a chain. Operand
// classes in the mnemonic: F = field access (A/B/C is a load-slot index;
// the link re-reads float32 memory and widens), R = register row (index
// into the row-register file), S = scalar pool entry. "f()" below denotes
// the float32→float64 widening read of an F operand. Every multiply-add
// rounds after the multiply and after the add — float64(x*y) + z — exactly
// like the VM's madd opcodes (dispatch fusion, not IEEE fusion).
type LinkKind byte

const (
	// Terminators.
	LkToRow LinkKind = iota // regs[A][i] = acc
	LkStore                 // out(eq A)[i] = float32(acc)

	// Chain openers: acc = ...
	LkMovS    // acc = S[A]
	LkMulFS   // acc = f(A) * S[B]
	LkMulRS   // acc = R[A] * S[B]
	LkMulFF   // acc = f(A) * f(B)
	LkMulFR   // acc = f(A) * R[B]
	LkMulRR   // acc = R[A] * R[B]
	LkAddFS   // acc = f(A) + S[B]
	LkAddRS   // acc = R[A] + S[B]
	LkAddFF   // acc = f(A) + f(B)
	LkAddFR   // acc = f(A) + R[B]
	LkAddRR   // acc = R[A] + R[B]
	LkPowF    // acc = ipow(f(A), B)
	LkPowR    // acc = ipow(R[A], B)
	LkMaddFSF // acc = f64(f(A)*S[B]) + f(C)
	LkMaddFSR // acc = f64(f(A)*S[B]) + R[C]
	LkMaddRSF // acc = f64(R[A]*S[B]) + f(C)
	LkMaddRSR // acc = f64(R[A]*S[B]) + R[C]
	LkMaddFFF // acc = f64(f(A)*f(B)) + f(C)
	LkMaddFFR // acc = f64(f(A)*f(B)) + R[C]
	LkMaddFRF // acc = f64(f(A)*R[B]) + f(C)
	LkMaddFRR // acc = f64(f(A)*R[B]) + R[C]
	LkMaddRRF // acc = f64(R[A]*R[B]) + f(C)
	LkMaddRRR // acc = f64(R[A]*R[B]) + R[C]

	// Accumulator links: acc = op(acc, ...).
	LkAccAddS   // acc = acc + S[A]
	LkAccMulS   // acc = acc * S[A]
	LkAccAddF   // acc = acc + f(A)
	LkAccAddR   // acc = acc + R[A]
	LkAccMulF   // acc = acc * f(A)
	LkAccMulR   // acc = acc * R[A]
	LkAccMaddFS // acc = f64(f(A)*S[B]) + acc
	LkAccMaddRS // acc = f64(R[A]*S[B]) + acc
	LkAccMaddFF // acc = f64(f(A)*f(B)) + acc
	LkAccMaddFR // acc = f64(f(A)*R[B]) + acc
	LkAccMaddRR // acc = f64(R[A]*R[B]) + acc
	LkAccPow    // acc = ipow(acc, A)

	// Scratch-accumulator links: t = ...
	LkTMulFS  // t = f(A) * S[B]
	LkTMulRS  // t = R[A] * S[B]
	LkTMulFF  // t = f(A) * f(B)
	LkTMulFR  // t = f(A) * R[B]
	LkTMulRR  // t = R[A] * R[B]
	LkTMulS   // t = t * S[A]
	LkTMulF   // t = t * f(A)
	LkTMulR   // t = t * R[A]
	LkTMaddFS // t = f64(f(A)*S[B]) + t
	LkTMaddRS // t = f64(R[A]*S[B]) + t

	// Merges: fold the scratch accumulator into acc.
	LkMergeMulT   // acc = acc * t
	LkMergeAddT   // acc = acc + t
	LkMergeMaddTS // acc = f64(t*S[A]) + acc
	LkMergeMaddTF // acc = f64(t*f(A)) + acc
	LkMergeMaddTR // acc = f64(t*R[A]) + acc

	// NumLinkKinds is the size of the LinkKind vocabulary (one past the
	// last kind); dispatch tables index [NumLinkKinds]T arrays by kind.
	NumLinkKinds
)

var linkNames = [NumLinkKinds]string{
	LkToRow: "torow", LkStore: "store",
	LkMovS: "movs", LkMulFS: "mul.fs", LkMulRS: "mul.rs", LkMulFF: "mul.ff",
	LkMulFR: "mul.fr", LkMulRR: "mul.rr", LkAddFS: "add.fs", LkAddRS: "add.rs",
	LkAddFF: "add.ff", LkAddFR: "add.fr", LkAddRR: "add.rr",
	LkPowF: "pow.f", LkPowR: "pow.r",
	LkMaddFSF: "madd.fs.f", LkMaddFSR: "madd.fs.r", LkMaddRSF: "madd.rs.f",
	LkMaddRSR: "madd.rs.r", LkMaddFFF: "madd.ff.f", LkMaddFFR: "madd.ff.r",
	LkMaddFRF: "madd.fr.f", LkMaddFRR: "madd.fr.r", LkMaddRRF: "madd.rr.f",
	LkMaddRRR: "madd.rr.r",
	LkAccAddS: "acc.add.s", LkAccMulS: "acc.mul.s", LkAccAddF: "acc.add.f",
	LkAccAddR: "acc.add.r", LkAccMulF: "acc.mul.f", LkAccMulR: "acc.mul.r",
	LkAccMaddFS: "acc.madd.fs", LkAccMaddRS: "acc.madd.rs",
	LkAccMaddFF: "acc.madd.ff", LkAccMaddFR: "acc.madd.fr", LkAccMaddRR: "acc.madd.rr",
	LkAccPow: "acc.pow",
	LkTMulFS: "t.mul.fs", LkTMulRS: "t.mul.rs", LkTMulFF: "t.mul.ff",
	LkTMulFR: "t.mul.fr", LkTMulRR: "t.mul.rr", LkTMulS: "t.mul.s",
	LkTMulF: "t.mul.f", LkTMulR: "t.mul.r",
	LkTMaddFS: "t.madd.fs", LkTMaddRS: "t.madd.rs",
	LkMergeMulT: "merge.mul.t", LkMergeAddT: "merge.add.t",
	LkMergeMaddTS: "merge.madd.ts", LkMergeMaddTF: "merge.madd.tf",
	LkMergeMaddTR: "merge.madd.tr",
}

// String returns the kind's diagnostic mnemonic (e.g. "acc.madd.fs");
// the operand-class vocabulary is documented on LinkKind.
func (k LinkKind) String() string {
	if k < NumLinkKinds {
		return linkNames[k]
	}
	return "?"
}

// Link is one fused per-point operation; A, B, C are interpreted per
// LinkKind (slot index, register index, pool index, or integer exponent).
type Link struct {
	Kind    LinkKind
	A, B, C int32
}

// Segment is one contiguous region [Lo, Hi) of the row program, lowered
// either to a fused link chain (Links) or to a verbatim VM instruction
// list (VM — which may re-emit deferred load instructions consumed here).
type Segment struct {
	Shape  Shape
	Lo, Hi int
	Links  []Link
	VM     []Instr
}

// register provenance during extraction.
const (
	srcNone byte = iota // never written / dead
	srcRow              // materialized register row
	srcSlot             // deferred load: value lives in field memory
)

type regSrc struct {
	kind byte
	slot int32
}

// operand classes during lowering.
const (
	clF byte = iota // slot-backed: re-read field memory
	clR             // row-backed: read the register row
	clAcc
	clT
	clBad
)

// ExtractSegments partitions a row program into fused chain segments and
// VM fallback segments. The partition is a pure function of the program
// and its slot/eq tables, so every rank (and every Rebind copy) derives
// the identical segment list.
//
// Deferral safety around stores: a deferred load must never observe a
// store to its own buffer that the VM's earlier load would have missed.
// Point-local aliasing (a CIRE scratch kernel re-reading the zero-offset
// point it overwrites) is safe — each point's reads precede its own store
// in both orders — so only two cases restrict fusion: a load whose
// register is consumed *past* a store to the loaded buffer is pinned to
// its original position in a VM segment (materializeMask), and a program
// that loads a stored buffer at a nonzero stencil offset (which would make
// per-point execution see neighbors the row-sweep order has not written
// yet) falls back to one verbatim VM segment.
func ExtractSegments(prog []Instr, slots []SlotRef, eqs []EqRef) []Segment {
	for _, e := range eqs {
		for _, s := range slots {
			if s.Field == e.Field && s.TimeOff == e.TimeOff && s.Off != [3]int{} {
				return []Segment{{Shape: ShapeVM, Lo: 0, Hi: len(prog),
					VM: append([]Instr(nil), prog...)}}
			}
		}
	}
	x := &extractor{prog: prog, src: makeSrc(prog), vmHave: map[int32]int32{},
		mustMat: materializeMask(prog, slots, eqs)}
	i := 0
	for i < len(prog) {
		in := prog[i]
		if in.Op == OpLoad {
			if x.mustMat[i] {
				x.vmEmit(i, in)
				x.src[in.Rd] = regSrc{kind: srcRow}
				i++
				continue
			}
			x.src[in.Rd] = regSrc{kind: srcSlot, slot: in.B}
			delete(x.vmHave, in.Rd)
			i++
			continue
		}
		if seg, next, ok := x.tryChain(i); ok {
			x.flushVM(i)
			x.segs = append(x.segs, seg)
			i = next
			x.vmLo = next
			continue
		}
		x.vmEmit(i, in)
		i++
	}
	x.flushVM(len(prog))
	return x.segs
}

// materializeMask marks load instructions whose register is consumed after
// a store to the loaded buffer: deferring those would re-read overwritten
// memory, so they are pinned to their original program position instead.
func materializeMask(prog []Instr, slots []SlotRef, eqs []EqRef) []bool {
	type bufKey struct{ f, t int }
	storeAt := map[bufKey][]int{}
	for i, in := range prog {
		if in.Op == OpStore {
			e := eqs[in.B]
			k := bufKey{e.Field, e.TimeOff}
			storeAt[k] = append(storeAt[k], i)
		}
	}
	mask := make([]bool, len(prog))
	if len(storeAt) == 0 {
		return mask
	}
	for i, in := range prog {
		if in.Op != OpLoad {
			continue
		}
		s := slots[in.B]
		ps := storeAt[bufKey{s.Field, s.TimeOff}]
		if len(ps) == 0 {
			continue
		}
	consumers:
		for j := i + 1; j < len(prog); j++ {
			jn := prog[j]
			if readsReg(jn, in.Rd) {
				for _, p := range ps {
					if p > i && p <= j {
						mask[i] = true
						break consumers
					}
				}
			}
			if jn.Op != OpStore && jn.Rd == in.Rd {
				break
			}
		}
	}
	return mask
}

func makeSrc(prog []Instr) []regSrc {
	max := int32(0)
	for _, in := range prog {
		if in.Rd > max {
			max = in.Rd
		}
		if in.A > max {
			max = in.A
		}
		if in.C > max {
			max = in.C
		}
	}
	return make([]regSrc, max+1)
}

type extractor struct {
	prog    []Instr
	src     []regSrc
	segs    []Segment
	vm      []Instr
	vmLo    int
	vmHave  map[int32]int32 // reg -> 1+slot already loaded in the open VM segment
	mustMat []bool          // loads that cannot be deferred (see materializeMask)
}

func (x *extractor) flushVM(hi int) {
	if len(x.vm) > 0 {
		x.segs = append(x.segs, Segment{Shape: ShapeVM, Lo: x.vmLo, Hi: hi, VM: x.vm})
		x.vm = nil
	}
	for k := range x.vmHave {
		delete(x.vmHave, k)
	}
	x.vmLo = hi
}

// vmEmit routes one instruction to the open VM segment, materializing any
// deferred loads it consumes first.
func (x *extractor) vmEmit(i int, in Instr) {
	if len(x.vm) == 0 {
		x.vmLo = i
	}
	for _, r := range vecReads(in) {
		if s := x.src[r]; s.kind == srcSlot && x.vmHave[r] != s.slot+1 {
			x.vm = append(x.vm, Instr{Op: OpLoad, Rd: r, B: s.slot})
			x.vmHave[r] = s.slot + 1
		}
	}
	x.vm = append(x.vm, in)
	if in.Op != OpStore {
		x.src[in.Rd] = regSrc{kind: srcRow}
		delete(x.vmHave, in.Rd)
	}
}

// vecReads lists the row registers an instruction reads.
func vecReads(in Instr) []int32 {
	switch in.Op {
	case OpStore, OpCopy, OpAddVS, OpMulVS, OpPowV:
		return []int32{in.A}
	case OpAddVV, OpMulVV:
		return []int32{in.A, in.B}
	case OpMaddVS:
		return []int32{in.A, in.C}
	case OpMaddVV:
		return []int32{in.A, in.B, in.C}
	}
	return nil
}

// readsReg reports whether in reads register r as a vector operand.
func readsReg(in Instr, r int32) bool {
	for _, v := range vecReads(in) {
		if v == r {
			return true
		}
	}
	return false
}

// regDead reports whether register r is never read from prog[from:] before
// being overwritten.
func regDead(prog []Instr, from int, r int32) bool {
	for _, in := range prog[from:] {
		if readsReg(in, r) {
			return false
		}
		if in.Op != OpStore && in.Op != OpLoad && in.Rd == r {
			return true
		}
		if in.Op == OpLoad && in.Rd == r {
			return true
		}
	}
	return true
}

// tryChain attempts to lower a fused chain starting at prog[i]. On success
// it returns the segment and the index of the first instruction after it,
// and commits the provenance updates of everything the chain consumed.
func (x *extractor) tryChain(i int) (Segment, int, bool) {
	prog := x.prog
	lsrc := append([]regSrc(nil), x.src...)
	acc, tacc := int32(-1), int32(-1)
	var links []Link
	computes := 0
	// Scratch-chain backtrack point: if a tentative t-chain never merges,
	// the main chain ends before it.
	snapJ, snapLinks, snapComputes := -1, 0, 0
	var snapSrc []regSrc

	cls := func(r int32) (byte, int32) {
		switch {
		case r == acc && acc >= 0:
			return clAcc, r
		case r == tacc && tacc >= 0:
			return clT, r
		}
		switch s := lsrc[r]; s.kind {
		case srcSlot:
			return clF, s.slot
		case srcRow:
			return clR, r
		}
		return clBad, r
	}

	j := i
loop:
	for j < len(prog) {
		in := prog[j]
		if in.Op == OpLoad {
			if in.Rd == acc || in.Rd == tacc {
				break // the load would clobber a live accumulator register
			}
			if x.mustMat[j] {
				break // pinned load: the top-level walk materializes it
			}
			lsrc[in.Rd] = regSrc{kind: srcSlot, slot: in.B}
			j++
			continue
		}
		if in.Op == OpStore {
			break // stores only terminate chains (handled below)
		}
		switch {
		case acc < 0:
			l, ok := openerLink(in, cls)
			if !ok {
				return Segment{}, 0, false
			}
			acc = in.Rd
			links = append(links, l)
			computes++
		case tacc >= 0 && touches(in, cls, clT):
			if touches(in, cls, clAcc) {
				// Merge t into acc.
				l, ok := mergeLink(in, cls)
				if !ok || !regDead(prog, j+1, tacc) {
					break loop
				}
				if in.Rd != acc && !regDead(prog, j+1, acc) {
					break loop
				}
				if in.Rd != acc {
					lsrc[acc] = regSrc{}
					acc = in.Rd
				}
				lsrc[tacc] = regSrc{}
				tacc = -1
				snapJ = -1
				links = append(links, l)
				computes++
			} else {
				l, ok := tAccLink(in, cls)
				if !ok || in.Rd != tacc {
					break loop
				}
				links = append(links, l)
				computes++
			}
		case touches(in, cls, clAcc):
			if tacc >= 0 {
				break loop // acc must not advance past an open t-chain
			}
			l, ok := accLink(in, cls)
			if !ok {
				break loop
			}
			if in.Rd != acc {
				// Accumulator handoff: the value moves to a new register.
				if !regDead(prog, j+1, acc) {
					break loop
				}
				lsrc[acc] = regSrc{}
				acc = in.Rd
			}
			links = append(links, l)
			computes++
		default:
			// Neither accumulator involved: tentatively open a scratch chain.
			if tacc >= 0 {
				break loop
			}
			l, ok := tOpenerLink(in, cls)
			if !ok || in.Rd == acc {
				break loop
			}
			snapJ, snapLinks, snapComputes = j, len(links), computes
			snapSrc = append([]regSrc(nil), lsrc...)
			tacc = in.Rd
			links = append(links, l)
			computes++
		}
		j++
	}

	if tacc >= 0 && snapJ >= 0 {
		// The scratch chain never merged: rewind to just before it opened.
		j, links, computes, lsrc = snapJ, links[:snapLinks], snapComputes, snapSrc
	}
	if acc < 0 {
		return Segment{}, 0, false
	}

	seg := Segment{Lo: i}
	if j < len(prog) && prog[j].Op == OpStore && prog[j].A == acc && regDead(prog, j+1, acc) {
		seg.Shape = ShapeChainStore
		links = append(links, Link{Kind: LkStore, A: prog[j].B})
		lsrc[acc] = regSrc{}
		j++
	} else {
		if computes < 2 {
			return Segment{}, 0, false
		}
		seg.Shape = ShapeChain
		links = append(links, Link{Kind: LkToRow, A: acc})
		lsrc[acc] = regSrc{kind: srcRow}
	}
	if computes < 1 {
		return Segment{}, 0, false
	}
	seg.Hi = j
	seg.Links = links
	copy(x.src, lsrc)
	return seg, j, true
}

// touches reports whether any vector operand of in has class c.
func touches(in Instr, cls func(int32) (byte, int32), c byte) bool {
	for _, r := range vecReads(in) {
		k, _ := cls(r)
		if k == c {
			return true
		}
	}
	return false
}

// canon orders a commutative (class, idx) operand pair F-before-R.
func canon(ka byte, ia int32, kb byte, ib int32) (byte, int32, byte, int32) {
	if ka == clR && kb == clF {
		return kb, ib, ka, ia
	}
	return ka, ia, kb, ib
}

// openerLink lowers an instruction that produces a fresh accumulator.
func openerLink(in Instr, cls func(int32) (byte, int32)) (Link, bool) {
	switch in.Op {
	case OpMovS:
		return Link{Kind: LkMovS, A: in.B}, true
	case OpMulVS, OpAddVS:
		ka, ia := cls(in.A)
		var k LinkKind
		switch {
		case in.Op == OpMulVS && ka == clF:
			k = LkMulFS
		case in.Op == OpMulVS && ka == clR:
			k = LkMulRS
		case in.Op == OpAddVS && ka == clF:
			k = LkAddFS
		case in.Op == OpAddVS && ka == clR:
			k = LkAddRS
		default:
			return Link{}, false
		}
		return Link{Kind: k, A: ia, B: in.B}, true
	case OpMulVV, OpAddVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		ka, ia, kb, ib = canon(ka, ia, kb, ib)
		var k LinkKind
		switch {
		case ka == clF && kb == clF:
			k = LkMulFF
		case ka == clF && kb == clR:
			k = LkMulFR
		case ka == clR && kb == clR:
			k = LkMulRR
		default:
			return Link{}, false
		}
		if in.Op == OpAddVV {
			k += LkAddFF - LkMulFF
		}
		return Link{Kind: k, A: ia, B: ib}, true
	case OpPowV:
		switch ka, ia := cls(in.A); ka {
		case clF:
			return Link{Kind: LkPowF, A: ia, B: in.B}, true
		case clR:
			return Link{Kind: LkPowR, A: ia, B: in.B}, true
		}
	case OpMaddVS:
		ka, ia := cls(in.A)
		kc, ic := cls(in.C)
		var k LinkKind
		switch {
		case ka == clF && kc == clF:
			k = LkMaddFSF
		case ka == clF && kc == clR:
			k = LkMaddFSR
		case ka == clR && kc == clF:
			k = LkMaddRSF
		case ka == clR && kc == clR:
			k = LkMaddRSR
		default:
			return Link{}, false
		}
		return Link{Kind: k, A: ia, B: in.B, C: ic}, true
	case OpMaddVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		kc, ic := cls(in.C)
		ka, ia, kb, ib = canon(ka, ia, kb, ib)
		var k LinkKind
		switch {
		case ka == clF && kb == clF && kc == clF:
			k = LkMaddFFF
		case ka == clF && kb == clF && kc == clR:
			k = LkMaddFFR
		case ka == clF && kb == clR && kc == clF:
			k = LkMaddFRF
		case ka == clF && kb == clR && kc == clR:
			k = LkMaddFRR
		case ka == clR && kb == clR && kc == clF:
			k = LkMaddRRF
		case ka == clR && kb == clR && kc == clR:
			k = LkMaddRRR
		default:
			return Link{}, false
		}
		return Link{Kind: k, A: ia, B: ib, C: ic}, true
	}
	return Link{}, false
}

// accLink lowers an instruction that advances the accumulator (reading it
// and producing its next value, possibly into a different register).
func accLink(in Instr, cls func(int32) (byte, int32)) (Link, bool) {
	switch in.Op {
	case OpAddVS, OpMulVS:
		if ka, _ := cls(in.A); ka != clAcc {
			return Link{}, false
		}
		if in.Op == OpAddVS {
			return Link{Kind: LkAccAddS, A: in.B}, true
		}
		return Link{Kind: LkAccMulS, A: in.B}, true
	case OpAddVV, OpMulVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		ko, io := kb, ib
		if kb == clAcc {
			if ka == clAcc {
				return Link{}, false
			}
			ko, io = ka, ia
		} else if ka != clAcc {
			return Link{}, false
		}
		var k LinkKind
		switch {
		case in.Op == OpAddVV && ko == clF:
			k = LkAccAddF
		case in.Op == OpAddVV && ko == clR:
			k = LkAccAddR
		case in.Op == OpMulVV && ko == clF:
			k = LkAccMulF
		case in.Op == OpMulVV && ko == clR:
			k = LkAccMulR
		default:
			return Link{}, false
		}
		return Link{Kind: k, A: io}, true
	case OpMaddVS:
		ka, ia := cls(in.A)
		kc, _ := cls(in.C)
		if kc != clAcc {
			return Link{}, false
		}
		switch ka {
		case clF:
			return Link{Kind: LkAccMaddFS, A: ia, B: in.B}, true
		case clR:
			return Link{Kind: LkAccMaddRS, A: ia, B: in.B}, true
		}
	case OpMaddVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		kc, _ := cls(in.C)
		if kc != clAcc {
			return Link{}, false
		}
		ka, ia, kb, ib = canon(ka, ia, kb, ib)
		var k LinkKind
		switch {
		case ka == clF && kb == clF:
			k = LkAccMaddFF
		case ka == clF && kb == clR:
			k = LkAccMaddFR
		case ka == clR && kb == clR:
			k = LkAccMaddRR
		default:
			return Link{}, false
		}
		return Link{Kind: k, A: ia, B: ib}, true
	case OpPowV:
		if ka, _ := cls(in.A); ka != clAcc {
			return Link{}, false
		}
		return Link{Kind: LkAccPow, A: in.B}, true
	}
	return Link{}, false
}

// tOpenerLink lowers an instruction opening a scratch chain.
func tOpenerLink(in Instr, cls func(int32) (byte, int32)) (Link, bool) {
	l, ok := openerLink(in, cls)
	if !ok {
		return Link{}, false
	}
	switch l.Kind {
	case LkMulFS:
		l.Kind = LkTMulFS
	case LkMulRS:
		l.Kind = LkTMulRS
	case LkMulFF:
		l.Kind = LkTMulFF
	case LkMulFR:
		l.Kind = LkTMulFR
	case LkMulRR:
		l.Kind = LkTMulRR
	default:
		return Link{}, false
	}
	return l, true
}

// tAccLink lowers an instruction advancing the scratch accumulator in
// place (no handoff: the scratch register must stay fixed until merged).
func tAccLink(in Instr, cls func(int32) (byte, int32)) (Link, bool) {
	switch in.Op {
	case OpMulVS:
		if ka, _ := cls(in.A); ka != clT {
			return Link{}, false
		}
		return Link{Kind: LkTMulS, A: in.B}, true
	case OpMulVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		ko, io := kb, ib
		if kb == clT {
			if ka == clT {
				return Link{}, false
			}
			ko, io = ka, ia
		} else if ka != clT {
			return Link{}, false
		}
		switch ko {
		case clF:
			return Link{Kind: LkTMulF, A: io}, true
		case clR:
			return Link{Kind: LkTMulR, A: io}, true
		}
	case OpMaddVS:
		ka, ia := cls(in.A)
		kc, _ := cls(in.C)
		if kc != clT {
			return Link{}, false
		}
		switch ka {
		case clF:
			return Link{Kind: LkTMaddFS, A: ia, B: in.B}, true
		case clR:
			return Link{Kind: LkTMaddRS, A: ia, B: in.B}, true
		}
	}
	return Link{}, false
}

// mergeLink lowers an instruction folding the scratch accumulator into acc.
func mergeLink(in Instr, cls func(int32) (byte, int32)) (Link, bool) {
	switch in.Op {
	case OpMulVV, OpAddVV:
		ka, _ := cls(in.A)
		kb, _ := cls(in.B)
		if !(ka == clAcc && kb == clT || ka == clT && kb == clAcc) {
			return Link{}, false
		}
		if in.Op == OpMulVV {
			return Link{Kind: LkMergeMulT}, true
		}
		return Link{Kind: LkMergeAddT}, true
	case OpMaddVS:
		ka, _ := cls(in.A)
		kc, _ := cls(in.C)
		if ka == clT && kc == clAcc {
			return Link{Kind: LkMergeMaddTS, A: in.B}, true
		}
	case OpMaddVV:
		ka, ia := cls(in.A)
		kb, ib := cls(in.B)
		kc, _ := cls(in.C)
		if kc != clAcc {
			return Link{}, false
		}
		ko, io := kb, ib
		if kb == clT {
			if ka == clT {
				return Link{}, false
			}
			ko, io = ka, ia
		} else if ka != clT {
			return Link{}, false
		}
		switch ko {
		case clF:
			return Link{Kind: LkMergeMaddTF, A: io}, true
		case clR:
			return Link{Kind: LkMergeMaddTR, A: io}, true
		}
	}
	return Link{}, false
}

// Ipow exposes the engines' shared integer-power helper: repeated
// multiplication with a final reciprocal for negative exponents. The
// native engine calls it so all three engines share one operation order.
func Ipow(v float64, e int) float64 { return ipow(v, e) }

// Segments extracts the kernel's own fused-segment partition.
func (k *Kernel) Segments() []Segment {
	return ExtractSegments(k.Program(), k.Slots(), k.EqOuts())
}
