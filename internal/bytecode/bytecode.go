// Package bytecode is the kernel-compilation subsystem of devigo: it
// lowers the per-point expressions of a loop nest (CSE temporaries plus
// update equations) into flat, register-based bytecode executed by a tight
// switch-dispatch virtual machine.
//
// It replaces the per-point expression-tree interpreter of package runtime
// on the hot path. Three properties drive the design:
//
//   - Register bytecode, not a stack machine. Every instruction names its
//     operand registers, so the VM never shuffles a stack and duplicate
//     field reads within one nest are compiled to a single load (the
//     register holding a loaded row is reused until an equation stores to
//     that field).
//
//   - Row-sweep execution. A virtual register holds a whole
//     inner-dimension row, and one instruction dispatch processes the
//     whole row, amortizing the switch over the vector length instead of
//     paying it at every grid point.
//
//   - Bind-time scalar hoisting. Subexpressions built purely from
//     constants and scalar symbols — including the 1/dt-style reciprocals
//     introduced by Pow(sym, -1) nodes — are folded at compile time when
//     fully constant, or evaluated once per Apply into a scalar pool
//     (strength-reducing per-point divisions into multiplications by a
//     precomputed reciprocal).
//
// The generated code is bit-exact with the interpreter: every float64
// operation is emitted in the interpreter's evaluation order, the fused
// multiply-add opcode rounds after the multiply and after the add (it
// fuses *dispatch*, not IEEE rounding), and results are rounded to
// float32 only at the store.
package bytecode

import (
	"fmt"

	"devigo/internal/field"
)

// Vector opcodes. Each instruction operates on whole inner-dimension rows:
// rd, a and c address row registers; b addresses the scalar pool, a load
// slot, an equation index, an integer exponent — or the second source
// register in the VV forms.
const (
	opLoad   byte = iota // rd[i] = float64(row(slots[b])[i])
	opStore              // row(eqs[b])[i] = float32(reg_a[i])
	opCopy               // rd[i] = reg_a[i]
	opMovS               // rd[i] = pool[b] (broadcast)
	opAddVV              // rd[i] = reg_a[i] + reg_b[i]
	opAddVS              // rd[i] = reg_a[i] + pool[b]
	opMulVV              // rd[i] = reg_a[i] * reg_b[i]
	opMulVS              // rd[i] = reg_a[i] * pool[b]
	opMaddVV             // rd[i] = reg_a[i]*reg_b[i] + reg_c[i]
	opMaddVS             // rd[i] = reg_a[i]*pool[b] + reg_c[i]
	opPowV               // rd[i] = ipow(reg_a[i], b)
)

// instr is one register-VM instruction; field use per opcode is documented
// on the opcode constants.
type instr struct {
	op          byte
	rd, a, b, c int32
}

// Scalar-prelude opcodes, executed once per Bind over the scalar pool.
const (
	sAdd byte = iota // pool[dst] = pool[a] + pool[b]
	sMul             // pool[dst] = pool[a] * pool[b]
	sPow             // pool[dst] = ipow(pool[a], b)
)

type scalarInstr struct {
	op        byte
	dst, a, b int32
}

// slot is a resolved field access: which function, which time offset, and
// the per-dimension stencil offset. The flat buffer displacement is
// derived from the field's *current* strides at every Run, so reallocating
// ghost storage (deep halos for a larger exchange interval) never requires
// recompiling kernels.
type slot struct {
	fieldIdx int
	timeOff  int
	off      [maxDims]int
}

// maxDims bounds the spatial dimensionality of compiled kernels (the
// compiler's dimension names are x, y, z).
const maxDims = 3

// eqOut records where one equation's row store lands.
type eqOut struct {
	outField   int
	outTimeOff int
}

// Kernel is a compiled loop nest: flat bytecode plus the resolved storage
// it executes against. It is the bytecode engine's counterpart of
// runtime.Kernel and satisfies the same execution contract.
type Kernel struct {
	Fields []*field.Function
	names  []string
	slots  []slot
	eqs    []eqOut

	// prog is the flat row program: temporary assignments, then each
	// equation's expression followed by its store, in source order.
	prog []instr
	// prelude derives bind-time scalars (hoisted invariants, reciprocals).
	prelude []scalarInstr
	// pool is the scalar-pool template: constants are pre-filled; symbol
	// and derived entries are populated by BindSyms.
	pool []float64
	// symSlots maps SymNames[i] to its pool slot.
	symSlots []int32
	// SymNames lists the scalar symbols bound at execution time.
	SymNames []string
	// Radius is the stencil radius per dimension (halo requirement).
	Radius []int

	numRegs int
	flops   int

	// st is the kernel's private reusable dispatch state (slot tables,
	// per-worker scratch). Allocated at compile time and replaced on
	// Rebind, never shared between kernel copies.
	st *bcState
}

// BindSyms builds the execution-time scalar pool from a name->value map:
// symbol slots are filled, then the prelude derives the hoisted scalars.
// It errors on missing entries, like the interpreter's BindSyms.
func (k *Kernel) BindSyms(vals map[string]float64) ([]float64, error) {
	pool := append([]float64(nil), k.pool...)
	for i, n := range k.SymNames {
		v, ok := vals[n]
		if !ok {
			return nil, fmt.Errorf("bytecode: unbound scalar symbol %q", n)
		}
		pool[k.symSlots[i]] = v
	}
	for i := range k.prelude {
		in := &k.prelude[i]
		switch in.op {
		case sAdd:
			pool[in.dst] = pool[in.a] + pool[in.b]
		case sMul:
			pool[in.dst] = pool[in.a] * pool[in.b]
		case sPow:
			pool[in.dst] = ipow(pool[in.a], int(in.b))
		}
	}
	return pool, nil
}

// FlopsPerPoint reports the per-point flop cost of the compiled kernel,
// counted identically to the interpreter engine.
func (k *Kernel) FlopsPerPoint() int { return k.flops }

// StencilRadius returns the per-dimension stencil radius.
func (k *Kernel) StencilRadius() []int { return k.Radius }

// NumRegisters reports the size of the row-register file (for tests and
// the compilation report).
func (k *Kernel) NumRegisters() int { return k.numRegs }

// ProgramLen reports the instruction count of the row program.
func (k *Kernel) ProgramLen() int { return len(k.prog) }

// PoolSize reports the scalar-pool length (consts + syms + derived).
func (k *Kernel) PoolSize() int { return len(k.pool) }

// InstrsPerPoint reports the number of VM instructions executed per grid
// point: the row program's length (each row instruction performs its
// operation once per point of the row; the bind-time scalar prelude is
// excluded because it runs once per Apply, not per point). The autotuner's
// cost model scales this by a per-instruction latency to predict compute
// time.
func (k *Kernel) InstrsPerPoint() int { return k.ProgramLen() }

// ipow mirrors the interpreter's integer power helper exactly: repeated
// multiplication starting from 1, with a final reciprocal for negative
// exponents. Keeping the operation order identical keeps results
// bit-exact across engines.
func ipow(v float64, e int) float64 {
	if e == 0 {
		return 1
	}
	neg := e < 0
	if neg {
		e = -e
	}
	out := 1.0
	for i := 0; i < e; i++ {
		out *= v
	}
	if neg {
		return 1 / out
	}
	return out
}
