package bytecode

import (
	"fmt"
	"math"

	"devigo/internal/field"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

// CompileCluster resolves a cluster against concrete field storage —
// the bytecode counterpart of runtime.CompileCluster.
func CompileCluster(c *ir.Cluster, fields map[string]*field.Function) (*Kernel, error) {
	return CompileNest(nil, c.Eqs, c.Radius, fields)
}

// CompileNest compiles the optimized form of a loop nest — per-point CSE
// temporaries (assigns) followed by the update equations — into flat
// register bytecode. Scalar symbols matching an assign name compile to
// pinned row registers; all other scalars land in the bind-time pool.
func CompileNest(assigns []symbolic.Assignment, eqs []symbolic.Eq, radius []int,
	fields map[string]*field.Function) (*Kernel, error) {
	k := &Kernel{Radius: append([]int(nil), radius...)}
	c := &compiler{
		k:           k,
		fields:      fields,
		fieldIdx:    map[string]int{},
		symPool:     map[string]int32{},
		constPool:   map[uint64]int32{},
		slotIdx:     map[slot]int32{},
		tempReg:     map[string]int32{},
		scalarCache: map[string]int32{},
		loadCache:   map[int32]int32{},
		cacheReg:    map[int32]int32{},
	}

	// Per-point temporaries first, in order: each lands in a pinned row
	// register readable by every later temporary and equation.
	for _, a := range assigns {
		res, err := c.compileVec(a.Value)
		if err != nil {
			return nil, err
		}
		var reg int32
		switch res.kind {
		case oScratch:
			reg = res.idx
		case oScalar:
			reg = c.allocReg()
			c.emit(instr{op: opMovS, rd: reg, b: res.idx})
		default: // pinned (cached load or earlier temp): keep a private copy
			reg = c.allocReg()
			c.emit(instr{op: opCopy, rd: reg, a: res.idx})
		}
		c.tempReg[a.Name] = reg
	}

	// Equations in program order; each stores its row before the next
	// equation compiles, so center reads of just-written fields observe
	// the new values exactly as in the per-point interpreter.
	for _, eq := range eqs {
		lhs, ok := eq.LHS.(symbolic.Access)
		if !ok {
			return nil, fmt.Errorf("bytecode: equation LHS must be a function access, got %s", eq.LHS)
		}
		fi, err := c.getField(lhs.Fun.Name)
		if err != nil {
			return nil, err
		}
		res, err := c.compileVec(eq.RHS)
		if err != nil {
			return nil, err
		}
		if res.kind == oScalar {
			reg := c.allocReg()
			c.emit(instr{op: opMovS, rd: reg, b: res.idx})
			res = opnd{kind: oScratch, idx: reg}
		}
		ei := int32(len(k.eqs))
		k.eqs = append(k.eqs, eqOut{outField: fi, outTimeOff: lhs.TimeOff})
		c.emit(instr{op: opStore, a: res.idx, b: ei})
		if res.kind == oScratch {
			c.freeRegs = append(c.freeRegs, res.idx)
		}
		c.invalidate(fi)
		k.flops += symbolic.FlopCount(eq.RHS) + 1
	}

	// Validate that all fields share the local domain shape; differing
	// halo widths are fine (strides are resolved at execution time).
	for i := 1; i < len(k.Fields); i++ {
		for d := range k.Fields[0].LocalShape {
			if k.Fields[i].LocalShape[d] != k.Fields[0].LocalShape[d] {
				return nil, fmt.Errorf("bytecode: fields %s and %s disagree on local shape",
					k.names[0], k.names[i])
			}
		}
	}
	k.numRegs = int(c.nextReg)
	k.st = newBCState(k)
	return k, nil
}

// opnd is a compiled operand: a scalar-pool entry, a reusable scratch row
// register, or a pinned row register (CSE temporary or cached load) that
// consumers must not free or overwrite.
type opnd struct {
	kind byte
	idx  int32
}

const (
	oScalar byte = iota
	oScratch
	oPinned
)

type compiler struct {
	k      *Kernel
	fields map[string]*field.Function

	fieldIdx  map[string]int
	symPool   map[string]int32 // scalar symbol -> pool slot
	constPool map[uint64]int32 // float64 bits -> pool slot
	slotIdx   map[slot]int32
	tempReg   map[string]int32 // CSE temporary -> pinned register
	// scalarCache dedups bind-time evaluation of identical scalar
	// subtrees (canonical string -> pool slot).
	scalarCache map[string]int32
	// known marks pool entries whose value is a compile-time constant,
	// enabling constant folding in the scalar prelude.
	known []bool

	// loadCache maps a slot to the register holding its current row, so
	// duplicate reads compile to a single load; stores to the slot's
	// field evict it.
	loadCache map[int32]int32
	cacheReg  map[int32]int32 // reverse: register -> slot

	freeRegs []int32
	nextReg  int32
}

func (c *compiler) emit(in instr) { c.k.prog = append(c.k.prog, in) }

func (c *compiler) allocReg() int32 {
	if n := len(c.freeRegs); n > 0 {
		r := c.freeRegs[n-1]
		c.freeRegs = c.freeRegs[:n-1]
		return r
	}
	r := c.nextReg
	c.nextReg++
	return r
}

// pick chooses the destination register, reusing the first scratch
// operand in-place when possible (elementwise ops tolerate aliasing).
func (c *compiler) pick(cands ...opnd) int32 {
	for _, o := range cands {
		if o.kind == oScratch {
			return o.idx
		}
	}
	return c.allocReg()
}

// releaseExcept frees every scratch operand that did not become rd.
func (c *compiler) releaseExcept(rd int32, os ...opnd) {
	for _, o := range os {
		if o.kind == oScratch && o.idx != rd {
			c.freeRegs = append(c.freeRegs, o.idx)
		}
	}
}

func (c *compiler) getField(name string) (int, error) {
	if i, ok := c.fieldIdx[name]; ok {
		return i, nil
	}
	f, ok := c.fields[name]
	if !ok {
		return 0, fmt.Errorf("bytecode: no storage registered for field %q", name)
	}
	i := len(c.k.Fields)
	c.fieldIdx[name] = i
	c.k.Fields = append(c.k.Fields, f)
	c.k.names = append(c.k.names, name)
	return i, nil
}

// invalidate evicts cached loads of the field an equation just stored to,
// regardless of time offset (cyclic time buffers may alias offsets).
func (c *compiler) invalidate(fieldIdx int) {
	for si := range c.k.slots {
		si32 := int32(si)
		reg, cached := c.loadCache[si32]
		if !cached || c.k.slots[si].fieldIdx != fieldIdx {
			continue
		}
		delete(c.loadCache, si32)
		delete(c.cacheReg, reg)
		c.freeRegs = append(c.freeRegs, reg)
	}
}

// --- scalar pool -----------------------------------------------------------

func (c *compiler) addPoolSlot(v float64, known bool) int32 {
	idx := int32(len(c.k.pool))
	c.k.pool = append(c.k.pool, v)
	c.known = append(c.known, known)
	return idx
}

func (c *compiler) addConst(v float64) int32 {
	key := math.Float64bits(v)
	if idx, ok := c.constPool[key]; ok {
		return idx
	}
	idx := c.addPoolSlot(v, true)
	c.constPool[key] = idx
	return idx
}

func (c *compiler) getSym(name string) int32 {
	if idx, ok := c.symPool[name]; ok {
		return idx
	}
	idx := c.addPoolSlot(0, false)
	c.symPool[name] = idx
	c.k.SymNames = append(c.k.SymNames, name)
	c.k.symSlots = append(c.k.symSlots, idx)
	return idx
}

// scalarBin emits pool[dst] = pool[a] op pool[b] into the bind-time
// prelude — or folds it right away when both operands are compile-time
// constants (the identical float64 operation runs either way, so folding
// cannot change bits).
func (c *compiler) scalarBin(op byte, a, b int32) int32 {
	if c.known[a] && c.known[b] {
		var v float64
		if op == sAdd {
			v = c.k.pool[a] + c.k.pool[b]
		} else {
			v = c.k.pool[a] * c.k.pool[b]
		}
		return c.addConst(v)
	}
	dst := c.addPoolSlot(0, false)
	c.k.prelude = append(c.k.prelude, scalarInstr{op: op, dst: dst, a: a, b: b})
	return dst
}

func (c *compiler) scalarPow(a int32, exp int) int32 {
	if c.known[a] {
		return c.addConst(ipow(c.k.pool[a], exp))
	}
	dst := c.addPoolSlot(0, false)
	c.k.prelude = append(c.k.prelude, scalarInstr{op: sPow, dst: dst, a: a, b: int32(exp)})
	return dst
}

// scalarPure reports whether e is built purely from constants and
// bind-time scalar symbols — no field accesses and no per-point CSE
// temporaries — and can therefore be hoisted out of the point loop.
func (c *compiler) scalarPure(e symbolic.Expr) bool {
	pure := true
	symbolic.Walk(e, func(n symbolic.Expr) bool {
		switch v := n.(type) {
		case symbolic.Access:
			pure = false
			return false
		case symbolic.Deriv:
			pure = false
			return false
		case symbolic.Sym:
			if _, isTemp := c.tempReg[v.Name]; isTemp {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// compileScalar lowers a scalar-pure subtree to a pool slot. The prelude
// replays the interpreter's left-nested evaluation order with the same
// float64 operations, so the hoisted value is bit-identical to what the
// interpreter would compute at every point.
func (c *compiler) compileScalar(e symbolic.Expr) (int32, error) {
	key := e.String()
	if idx, ok := c.scalarCache[key]; ok {
		return idx, nil
	}
	var idx int32
	switch v := e.(type) {
	case symbolic.Num:
		f, _ := v.Val.Float64()
		idx = c.addConst(f)
	case symbolic.Sym:
		idx = c.getSym(v.Name)
	case symbolic.Add:
		acc, err := c.compileScalar(v.Terms[0])
		if err != nil {
			return 0, err
		}
		for _, t := range v.Terms[1:] {
			ti, err := c.compileScalar(t)
			if err != nil {
				return 0, err
			}
			acc = c.scalarBin(sAdd, acc, ti)
		}
		idx = acc
	case symbolic.Mul:
		acc, err := c.compileScalar(v.Factors[0])
		if err != nil {
			return 0, err
		}
		for _, f := range v.Factors[1:] {
			fi, err := c.compileScalar(f)
			if err != nil {
				return 0, err
			}
			acc = c.scalarBin(sMul, acc, fi)
		}
		idx = acc
	case symbolic.Pow:
		base, err := c.compileScalar(v.Base)
		if err != nil {
			return 0, err
		}
		idx = c.scalarPow(base, v.Exp)
	default:
		return 0, fmt.Errorf("bytecode: internal: %T is not scalar-pure", e)
	}
	c.scalarCache[key] = idx
	return idx, nil
}

// --- vector compilation ----------------------------------------------------

// compileVec lowers e to an operand: a pool scalar when the subtree is
// loop-invariant, a row register otherwise.
func (c *compiler) compileVec(e symbolic.Expr) (opnd, error) {
	if c.scalarPure(e) {
		idx, err := c.compileScalar(e)
		return opnd{kind: oScalar, idx: idx}, err
	}
	switch v := e.(type) {
	case symbolic.Sym:
		reg, ok := c.tempReg[v.Name]
		if !ok {
			return opnd{}, fmt.Errorf("bytecode: internal: symbol %q is neither scalar nor temporary", v.Name)
		}
		return opnd{kind: oPinned, idx: reg}, nil
	case symbolic.Access:
		return c.load(v)
	case symbolic.Add:
		return c.compileAdd(v.Terms)
	case symbolic.Mul:
		return c.compileMul(v.Factors)
	case symbolic.Pow:
		base, err := c.compileVec(v.Base)
		if err != nil {
			return opnd{}, err
		}
		rd := c.pick(base)
		c.emit(instr{op: opPowV, rd: rd, a: base.idx, b: int32(v.Exp)})
		c.releaseExcept(rd, base)
		return opnd{kind: oScratch, idx: rd}, nil
	case symbolic.Deriv:
		return opnd{}, fmt.Errorf("bytecode: unexpanded derivative reached codegen: %s", v)
	default:
		return opnd{}, fmt.Errorf("bytecode: cannot compile %T", e)
	}
}

// load resolves a field access to a slot and returns the register caching
// its row, emitting the load only on first use.
func (c *compiler) load(a symbolic.Access) (opnd, error) {
	fi, err := c.getField(a.Fun.Name)
	if err != nil {
		return opnd{}, err
	}
	if len(a.Off) > maxDims {
		return opnd{}, fmt.Errorf("bytecode: access %s exceeds %d dimensions", a, maxDims)
	}
	s := slot{fieldIdx: fi, timeOff: a.TimeOff}
	copy(s.off[:], a.Off)
	si, ok := c.slotIdx[s]
	if !ok {
		si = int32(len(c.k.slots))
		c.slotIdx[s] = si
		c.k.slots = append(c.k.slots, s)
	}
	if reg, cached := c.loadCache[si]; cached {
		return opnd{kind: oPinned, idx: reg}, nil
	}
	reg := c.allocReg()
	c.emit(instr{op: opLoad, rd: reg, b: si})
	c.loadCache[si] = reg
	c.cacheReg[reg] = si
	return opnd{kind: oPinned, idx: reg}, nil
}

// scalarPrefix folds the maximal scalar-pure prefix of parts into one
// bind-time pool entry (preserving left-nested order) and returns it with
// the number of parts consumed; j == 0 means the first part is vector.
func (c *compiler) scalarPrefix(parts []symbolic.Expr, mul bool) (opnd, int, error) {
	j := 0
	for j < len(parts) && c.scalarPure(parts[j]) {
		j++
	}
	if j == 0 {
		return opnd{}, 0, nil
	}
	var group symbolic.Expr
	if j == 1 {
		group = parts[0]
	} else if mul {
		group = symbolic.Mul{Factors: parts[:j]}
	} else {
		group = symbolic.Add{Terms: parts[:j]}
	}
	idx, err := c.compileScalar(group)
	return opnd{kind: oScalar, idx: idx}, j, err
}

// compileAdd accumulates terms left to right exactly like the
// interpreter's binary-add chain, fusing multiply terms into madd
// instructions (mul-then-add with two roundings — dispatch fusion only).
func (c *compiler) compileAdd(terms []symbolic.Expr) (opnd, error) {
	acc, i, err := c.scalarPrefix(terms, false)
	if err != nil {
		return opnd{}, err
	}
	if i == 0 {
		acc, err = c.compileVec(terms[0])
		if err != nil {
			return opnd{}, err
		}
		i = 1
	}
	for ; i < len(terms); i++ {
		acc, err = c.addTerm(acc, terms[i])
		if err != nil {
			return opnd{}, err
		}
	}
	return acc, nil
}

func (c *compiler) addTerm(acc opnd, term symbolic.Expr) (opnd, error) {
	if c.scalarPure(term) {
		s, err := c.compileScalar(term)
		if err != nil {
			return opnd{}, err
		}
		if acc.kind == oScalar {
			return opnd{kind: oScalar, idx: c.scalarBin(sAdd, acc.idx, s)}, nil
		}
		return c.addVS(acc, s), nil
	}
	if mul, ok := term.(symbolic.Mul); ok && acc.kind != oScalar {
		partial, last, err := c.compileMulSplit(mul.Factors)
		if err != nil {
			return opnd{}, err
		}
		if partial.kind != oScalar || last.kind != oScalar {
			return c.madd(partial, last, acc), nil
		}
		// Both halves scalar cannot happen (the term would have been
		// scalar-pure); recombine defensively.
		return c.addVS(acc, c.scalarBin(sMul, partial.idx, last.idx)), nil
	}
	v, err := c.compileVec(term)
	if err != nil {
		return opnd{}, err
	}
	if acc.kind == oScalar {
		// IEEE addition commutes bitwise, so v + s == s + v.
		return c.addVS(v, acc.idx), nil
	}
	rd := c.pick(acc, v)
	c.emit(instr{op: opAddVV, rd: rd, a: acc.idx, b: v.idx})
	c.releaseExcept(rd, acc, v)
	return opnd{kind: oScratch, idx: rd}, nil
}

func (c *compiler) addVS(v opnd, s int32) opnd {
	rd := c.pick(v)
	c.emit(instr{op: opAddVS, rd: rd, a: v.idx, b: s})
	c.releaseExcept(rd, v)
	return opnd{kind: oScratch, idx: rd}
}

func (c *compiler) mulVS(v opnd, s int32) opnd {
	rd := c.pick(v)
	c.emit(instr{op: opMulVS, rd: rd, a: v.idx, b: s})
	c.releaseExcept(rd, v)
	return opnd{kind: oScratch, idx: rd}
}

// madd emits rd = x*y + acc, picking the VS form when one multiplicand is
// a pool scalar (IEEE multiplication commutes bitwise).
func (c *compiler) madd(x, y, acc opnd) opnd {
	switch {
	case x.kind == oScalar:
		rd := c.pick(acc, y)
		c.emit(instr{op: opMaddVS, rd: rd, a: y.idx, b: x.idx, c: acc.idx})
		c.releaseExcept(rd, acc, y)
		return opnd{kind: oScratch, idx: rd}
	case y.kind == oScalar:
		rd := c.pick(acc, x)
		c.emit(instr{op: opMaddVS, rd: rd, a: x.idx, b: y.idx, c: acc.idx})
		c.releaseExcept(rd, acc, x)
		return opnd{kind: oScratch, idx: rd}
	default:
		rd := c.pick(acc, x, y)
		c.emit(instr{op: opMaddVV, rd: rd, a: x.idx, b: y.idx, c: acc.idx})
		c.releaseExcept(rd, acc, x, y)
		return opnd{kind: oScratch, idx: rd}
	}
}

// compileMul multiplies factors left to right, exactly mirroring the
// interpreter's binary-multiply chain; scalar-pure factors use the pool.
func (c *compiler) compileMul(factors []symbolic.Expr) (opnd, error) {
	acc, i, err := c.scalarPrefix(factors, true)
	if err != nil {
		return opnd{}, err
	}
	if i == 0 {
		acc, err = c.compileVec(factors[0])
		if err != nil {
			return opnd{}, err
		}
		i = 1
	}
	if i == len(factors) {
		return acc, nil
	}
	for ; i < len(factors); i++ {
		f := factors[i]
		if c.scalarPure(f) {
			s, err := c.compileScalar(f)
			if err != nil {
				return opnd{}, err
			}
			if acc.kind == oScalar {
				acc = opnd{kind: oScalar, idx: c.scalarBin(sMul, acc.idx, s)}
				continue
			}
			acc = c.mulVS(acc, s)
			continue
		}
		v, err := c.compileVec(f)
		if err != nil {
			return opnd{}, err
		}
		if acc.kind == oScalar {
			// IEEE multiplication commutes bitwise, so v * s == s * v.
			acc = c.mulVS(v, acc.idx)
			continue
		}
		rd := c.pick(acc, v)
		c.emit(instr{op: opMulVV, rd: rd, a: acc.idx, b: v.idx})
		c.releaseExcept(rd, acc, v)
		acc = opnd{kind: oScratch, idx: rd}
	}
	return acc, nil
}

// compileMulSplit evaluates the product of all factors but the last (in
// interpreter order) and returns it with the compiled last factor, so the
// caller can fuse the final multiply into an accumulate.
func (c *compiler) compileMulSplit(factors []symbolic.Expr) (opnd, opnd, error) {
	n := len(factors)
	var partial opnd
	var err error
	if n == 2 {
		partial, err = c.compileVec(factors[0])
	} else {
		partial, err = c.compileMul(factors[:n-1])
	}
	if err != nil {
		return opnd{}, opnd{}, err
	}
	last, err := c.compileVec(factors[n-1])
	if err != nil {
		return opnd{}, opnd{}, err
	}
	return partial, last, nil
}
