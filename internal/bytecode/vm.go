package bytecode

import (
	"sync"

	"devigo/internal/runtime"
)

// Run executes the compiled program at every point of the box for logical
// timestep t, with the scalar pool from BindSyms. It preserves the
// interpreter's execution contract exactly: row-major point order,
// equations in program order at each point, tiling over the outer
// dimension, optional worker-pool parallelism and the Progress prod
// between tiles — so all halo-exchange modes run unchanged on either
// engine.
func (k *Kernel) Run(t int, b runtime.Box, pool []float64, opts *runtime.ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
	}
	// Resolve per-(field,timeOff) data slices — and each slot's flat
	// stencil displacement against the field's *current* strides — once per
	// step, so ghost-storage reallocation between steps is transparent.
	slotData := make([][]float32, len(k.slots))
	slotOff := make([]int, len(k.slots))
	for i, s := range k.slots {
		f := k.Fields[s.fieldIdx]
		slotData[i] = f.Buf(t + s.timeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.off[d] * f.Bufs[0].Strides[d]
		}
		slotOff[i] = flat
	}
	outData := make([][]float32, len(k.eqs))
	for i, e := range k.eqs {
		outData[i] = k.Fields[e.outField].Buf(t + e.outTimeOff).Data
	}

	nd := len(b.Lo)
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	type tile struct{ lo, hi int }
	var tiles []tile
	for lo := b.Lo[0]; lo < b.Hi[0]; lo += tileRows {
		hi := lo + tileRows
		if hi > b.Hi[0] {
			hi = b.Hi[0]
		}
		tiles = append(tiles, tile{lo, hi})
	}

	// The register file holds whole rows; size it for the longest row a
	// tile can produce (in 1-D the tile itself is the row).
	maxRow := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		maxRow = tileRows
	}

	runTile := func(tl tile, regs []float64) {
		// Odometer over dims 0..nd-2 within the tile; the innermost
		// dimension is the contiguous row one sweep processes at once.
		idx := make([]int, nd)
		copy(idx, b.Lo)
		idx[0] = tl.lo
		bases := make([]int, len(k.Fields))
		rowLen := b.Hi[nd-1] - b.Lo[nd-1]
		if nd == 1 {
			rowLen = tl.hi - tl.lo
		}
		for {
			// Row start base per field (domain-relative -> buffer index).
			for fi, f := range k.Fields {
				base := 0
				for d := 0; d < nd; d++ {
					base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
				}
				bases[fi] = base
			}
			k.sweep(regs, maxRow, rowLen, bases, slotData, slotOff, outData, pool)
			// Advance the odometer over dims nd-2 .. 0 (dim 0 bounded by
			// the tile).
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				limit := b.Hi[d]
				if d == 0 {
					limit = tl.hi
				}
				if idx[d] < limit {
					break
				}
				if d == 0 {
					break
				}
				idx[d] = b.Lo[d]
			}
			if d < 0 {
				break
			}
			if d == 0 && idx[0] >= tl.hi {
				break
			}
		}
	}

	if workers <= 1 {
		regs := make([]float64, k.numRegs*maxRow)
		for _, tl := range tiles {
			runTile(tl, regs)
			if progress != nil {
				progress()
			}
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan tile, len(tiles))
	for _, tl := range tiles {
		work <- tl
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			regs := make([]float64, k.numRegs*maxRow)
			for tl := range work {
				runTile(tl, regs)
				// One worker doubles as the progress engine, mirroring
				// the sacrificed OpenMP thread of the paper's full mode.
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

// sweep executes the flat program once over one row of n points. stride is
// the register-file row pitch (>= n); slotOff carries the per-slot flat
// stencil displacements resolved against the current field strides.
func (k *Kernel) sweep(regs []float64, stride, n int, bases []int, slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	reg := func(r int32) []float64 {
		off := int(r) * stride
		return regs[off : off+n]
	}
	for pi := range k.prog {
		in := &k.prog[pi]
		switch in.op {
		case opLoad:
			s := &k.slots[in.b]
			off := bases[s.fieldIdx] + slotOff[in.b]
			src := slotData[in.b][off : off+n]
			rd := reg(in.rd)
			for i, v := range src {
				rd[i] = float64(v)
			}
		case opStore:
			e := &k.eqs[in.b]
			off := bases[e.outField]
			dst := outData[in.b][off : off+n]
			ra := reg(in.a)
			for i, v := range ra {
				dst[i] = float32(v)
			}
		case opCopy:
			copy(reg(in.rd), reg(in.a))
		case opMovS:
			rd, v := reg(in.rd), pool[in.b]
			for i := range rd {
				rd[i] = v
			}
		case opAddVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] + rb[i]
			}
		case opAddVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = ra[i] + s
			}
		case opMulVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] * rb[i]
			}
		case opMulVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = ra[i] * s
			}
		case opMaddVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			rc := reg(in.c)[:len(rd)]
			// Mul then add, each rounded: dispatch fusion only. The
			// explicit float64 conversion forces the intermediate
			// rounding (Go spec), forbidding hardware-FMA contraction on
			// arm64 et al. that would break bit-exactness with the
			// interpreter's two ops.
			for i := range rd {
				rd[i] = float64(ra[i]*rb[i]) + rc[i]
			}
		case opMaddVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rc := reg(in.c)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = float64(ra[i]*s) + rc[i]
			}
		case opPowV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			e := int(in.b)
			for i := range rd {
				rd[i] = ipow(ra[i], e)
			}
		}
	}
}
