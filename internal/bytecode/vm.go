package bytecode

import (
	"sync"

	"devigo/internal/runtime"
)

// bcScratch is one worker's private sweep state: the odometer, the
// per-field row bases and the whole-row register file. Allocated once per
// worker and reused across tiles and timesteps; regs grows monotonically
// if a Retarget lengthens rows.
type bcScratch struct {
	idx   []int
	bases []int
	regs  []float64
}

// bcState is the kernel's reusable dispatch state, allocated eagerly at
// compile/Rebind time so the steady-state Run path performs no heap
// allocation. Slice *contents* are refilled every Run (buffer rotation
// makes the t-dependent data pointers change per step); the backing
// arrays persist. Rebind installs a fresh state in the copy, so rebound
// kernels stay safe to run concurrently with the original.
type bcState struct {
	task     bcTask
	slotData [][]float32
	slotOff  []int
	outData  [][]float32
	ws       []*bcScratch
}

func newBCState(k *Kernel) *bcState {
	return &bcState{
		slotData: make([][]float32, len(k.slots)),
		slotOff:  make([]int, len(k.slots)),
		outData:  make([][]float32, len(k.eqs)),
	}
}

// refill resolves the per-(field,timeOff) data slices — and each slot's
// flat stencil displacement against the field's *current* strides — once
// per Run, so buffer rotation and ghost-storage reallocation between
// steps stay transparent without re-deriving any geometry.
func (st *bcState) refill(k *Kernel, t int, b runtime.Box) {
	for i, s := range k.slots {
		f := k.Fields[s.fieldIdx]
		st.slotData[i] = f.Buf(t + s.timeOff).Data
		flat := 0
		for d := 0; d < len(b.Lo); d++ {
			flat += s.off[d] * f.Bufs[0].Strides[d]
		}
		st.slotOff[i] = flat
	}
	for i, e := range k.eqs {
		st.outData[i] = k.Fields[e.outField].Buf(t + e.outTimeOff).Data
	}
}

// ensureScratch grows the per-worker scratch table to `workers` entries
// and every active register file to regLen. Called from the
// single-threaded dispatch prologue only, never from workers, so the pool
// path indexes a stable table.
func (st *bcState) ensureScratch(workers, nd, nf, regLen int) {
	for len(st.ws) < workers {
		st.ws = append(st.ws, &bcScratch{idx: make([]int, nd), bases: make([]int, nf)})
	}
	for _, sc := range st.ws[:workers] {
		if len(sc.regs) < regLen {
			sc.regs = make([]float64, regLen)
		}
	}
}

// bcTask adapts one Run invocation to the pool's Task contract. It lives
// inside the kernel's bcState so handing it to the pool converts a
// pointer to an interface without allocating.
type bcTask struct {
	k        *Kernel
	b        runtime.Box
	pool     []float64
	tileRows int
	maxRow   int
}

// RunTile executes one row band with worker w's scratch.
func (tk *bcTask) RunTile(w, tile int) {
	lo, hi := runtime.TileBounds(tk.b, tile, tk.tileRows)
	tk.k.runTile(tk.k.st.ws[w], tk.b, lo, hi, tk.maxRow, tk.pool)
}

// Run executes the compiled program at every point of the box for logical
// timestep t, with the scalar pool from BindSyms. It preserves the
// interpreter's execution contract exactly: row-major point order,
// equations in program order at each point, tiling over the outer
// dimension, optional worker-pool parallelism and the Progress prod
// between tiles — so all halo-exchange modes run unchanged on either
// engine, and results are bit-identical for every worker count and
// dispatch mode (tiles are disjoint row bands).
func (k *Kernel) Run(t int, b runtime.Box, pool []float64, opts *runtime.ExecOpts) {
	if b.Empty() {
		return
	}
	workers, tileRows := 1, 0
	var progress func()
	var wp *runtime.Pool
	steal := false
	if opts != nil {
		if opts.Workers > 1 {
			workers = opts.Workers
		}
		tileRows = opts.TileRows
		progress = opts.Progress
		if opts.Pool != nil && opts.Pool.Workers() > 1 {
			wp = opts.Pool
			workers = wp.Workers()
		}
		steal = opts.Steal
	}
	nd := len(b.Lo)
	outer := b.Hi[0] - b.Lo[0]
	if tileRows <= 0 || tileRows > outer {
		tileRows = outer
	}
	ntiles := runtime.TileCount(b, tileRows)
	// The register file holds whole rows; size it for the longest row a
	// tile can produce (in 1-D the tile itself is the row).
	maxRow := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		maxRow = tileRows
	}

	st := k.st
	st.refill(k, t, b)
	st.ensureScratch(workers, nd, len(k.Fields), k.numRegs*maxRow)

	if wp != nil {
		st.task = bcTask{k: k, b: b, pool: pool, tileRows: tileRows, maxRow: maxRow}
		wp.Run(&st.task, ntiles, t, steal, progress)
		return
	}
	if workers <= 1 {
		sc := st.ws[0]
		for tile := 0; tile < ntiles; tile++ {
			lo, hi := runtime.TileBounds(b, tile, tileRows)
			k.runTile(sc, b, lo, hi, maxRow, pool)
			if progress != nil {
				progress()
			}
		}
		return
	}
	k.forkJoinRun(b, pool, workers, ntiles, tileRows, maxRow, nd, progress)
}

// forkJoinRun is the legacy fork-join dispatch: fresh goroutines, a tile
// channel and per-goroutine scratch on every call. Kept selectable (nil
// Pool) as the overhead baseline the persistent pool is benchmarked
// against. Split out of Run so its goroutine closure does not force heap
// allocation of Run's locals on the (alloc-free) pool and serial paths.
func (k *Kernel) forkJoinRun(b runtime.Box, pool []float64, workers, ntiles, tileRows, maxRow, nd int, progress func()) {
	var wg sync.WaitGroup
	work := make(chan int, ntiles)
	for i := 0; i < ntiles; i++ {
		work <- i
	}
	close(work)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(isFirst bool) {
			defer wg.Done()
			sc := &bcScratch{
				idx:   make([]int, nd),
				bases: make([]int, len(k.Fields)),
				regs:  make([]float64, k.numRegs*maxRow),
			}
			for tile := range work {
				lo, hi := runtime.TileBounds(b, tile, tileRows)
				k.runTile(sc, b, lo, hi, maxRow, pool)
				// One worker doubles as the progress engine, mirroring
				// the sacrificed OpenMP thread of the paper's full mode.
				if isFirst && progress != nil {
					progress()
				}
			}
		}(wkr == 0)
	}
	wg.Wait()
}

// runTile executes rows [lo,hi) of the box's outer dimension with worker
// scratch sc: an odometer over dims 0..nd-2, the innermost dimension as
// the contiguous row one sweep processes at once.
func (k *Kernel) runTile(sc *bcScratch, b runtime.Box, lo, hi, maxRow int, pool []float64) {
	st := k.st
	nd := len(b.Lo)
	idx := sc.idx[:nd]
	copy(idx, b.Lo)
	idx[0] = lo
	bases := sc.bases[:len(k.Fields)]
	rowLen := b.Hi[nd-1] - b.Lo[nd-1]
	if nd == 1 {
		rowLen = hi - lo
	}
	for {
		// Row start base per field (domain-relative -> buffer index).
		for fi, f := range k.Fields {
			base := 0
			for d := 0; d < nd; d++ {
				base += (idx[d] + f.Halo[d]) * f.Bufs[0].Strides[d]
			}
			bases[fi] = base
		}
		k.sweep(sc.regs, maxRow, rowLen, bases, st.slotData, st.slotOff, st.outData, pool)
		// Advance the odometer over dims nd-2 .. 0 (dim 0 bounded by
		// the tile).
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			limit := b.Hi[d]
			if d == 0 {
				limit = hi
			}
			if idx[d] < limit {
				break
			}
			if d == 0 {
				break
			}
			idx[d] = b.Lo[d]
		}
		if d < 0 {
			break
		}
		if d == 0 && idx[0] >= hi {
			break
		}
	}
}

// sweep executes the flat program once over one row of n points. stride is
// the register-file row pitch (>= n); slotOff carries the per-slot flat
// stencil displacements resolved against the current field strides.
func (k *Kernel) sweep(regs []float64, stride, n int, bases []int, slotData [][]float32, slotOff []int, outData [][]float32, pool []float64) {
	reg := func(r int32) []float64 {
		off := int(r) * stride
		return regs[off : off+n]
	}
	for pi := range k.prog {
		in := &k.prog[pi]
		switch in.op {
		case opLoad:
			s := &k.slots[in.b]
			off := bases[s.fieldIdx] + slotOff[in.b]
			src := slotData[in.b][off : off+n]
			rd := reg(in.rd)
			for i, v := range src {
				rd[i] = float64(v)
			}
		case opStore:
			e := &k.eqs[in.b]
			off := bases[e.outField]
			dst := outData[in.b][off : off+n]
			ra := reg(in.a)
			for i, v := range ra {
				dst[i] = float32(v)
			}
		case opCopy:
			copy(reg(in.rd), reg(in.a))
		case opMovS:
			rd, v := reg(in.rd), pool[in.b]
			for i := range rd {
				rd[i] = v
			}
		case opAddVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] + rb[i]
			}
		case opAddVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = ra[i] + s
			}
		case opMulVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			for i := range rd {
				rd[i] = ra[i] * rb[i]
			}
		case opMulVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = ra[i] * s
			}
		case opMaddVV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rb := reg(in.b)[:len(rd)]
			rc := reg(in.c)[:len(rd)]
			// Mul then add, each rounded: dispatch fusion only. The
			// explicit float64 conversion forces the intermediate
			// rounding (Go spec), forbidding hardware-FMA contraction on
			// arm64 et al. that would break bit-exactness with the
			// interpreter's two ops.
			for i := range rd {
				rd[i] = float64(ra[i]*rb[i]) + rc[i]
			}
		case opMaddVS:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			rc := reg(in.c)[:len(rd)]
			s := pool[in.b]
			for i := range rd {
				rd[i] = float64(ra[i]*s) + rc[i]
			}
		case opPowV:
			rd := reg(in.rd)
			ra := reg(in.a)[:len(rd)]
			e := int(in.b)
			for i := range rd {
				rd[i] = ipow(ra[i], e)
			}
		}
	}
}
