package perfreport

import (
	"fmt"
	"strings"

	"devigo/internal/halo"
	"devigo/internal/perfmodel"
)

// PaperNodeCounts is the node/device axis of every scaling figure.
var PaperNodeCounts = []int{1, 2, 4, 8, 16, 32, 64, 128}

// PaperSpaceOrders is the SDO sweep of the appendix tables.
var PaperSpaceOrders = []int{4, 8, 12, 16}

// CPUShape returns the paper's CPU problem size for a model (Section IV-C).
func CPUShape(model string) []int {
	if model == "viscoelastic" {
		return []int{768, 768, 768}
	}
	return []int{1024, 1024, 1024}
}

// GPUShape returns the paper's GPU problem size for a model.
func GPUShape(model string) []int {
	switch model {
	case "acoustic":
		return []int{1158, 1158, 1158}
	case "elastic":
		return []int{832, 832, 832}
	case "tti":
		return []int{896, 896, 896}
	case "viscoelastic":
		return []int{704, 704, 704}
	}
	return []int{1024, 1024, 1024}
}

// ScalingTable is one regenerated paper table: throughput per mode per
// node count, plus the best-mode efficiency annotations of the figures.
type ScalingTable struct {
	Model string
	SO    int
	Arch  string
	Nodes []int
	// Rows maps mode name -> GPts/s per node count.
	Rows map[string][]float64
	// ModeOrder preserves the paper's row order.
	ModeOrder []string
	// EffPct is the best-mode strong-scaling efficiency (percent) per
	// node count — the figures' ideal-percentage annotations.
	EffPct []float64
}

// StrongScaling regenerates one strong-scaling table (paper Tables
// III-XXXIV; Figures 8-11, 13-20).
func StrongScaling(model string, so int, machine perfmodel.Machine) (*ScalingTable, error) {
	kc, err := Characterize(model, so)
	if err != nil {
		return nil, err
	}
	shape := CPUShape(model)
	arch := "cpu"
	modes := []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}
	if machine.GPUOnlyBasic {
		shape = GPUShape(model)
		arch = "gpu"
		modes = modes[:1]
	}
	tbl := &ScalingTable{Model: model, SO: so, Arch: arch, Nodes: PaperNodeCounts,
		Rows: map[string][]float64{}}
	for _, m := range modes {
		tbl.ModeOrder = append(tbl.ModeOrder, m.String())
	}
	best := make([]float64, len(PaperNodeCounts))
	for _, mode := range modes {
		row := make([]float64, len(PaperNodeCounts))
		for i, n := range PaperNodeCounts {
			s := perfmodel.Scenario{Kernel: kc, Machine: machine, Shape: shape, Nodes: n, Mode: mode}
			tput, err := s.ThroughputGPts()
			if err != nil {
				return nil, err
			}
			row[i] = tput
			if tput > best[i] {
				best[i] = tput
			}
		}
		tbl.Rows[mode.String()] = row
	}
	tbl.EffPct = make([]float64, len(PaperNodeCounts))
	for i, n := range PaperNodeCounts {
		tbl.EffPct[i] = 100 * best[i] / (best[0] * float64(n))
	}
	return tbl, nil
}

// WeakPoint is one series point of the weak-scaling figure.
type WeakPoint struct {
	Nodes   int
	Runtime float64 // seconds for the paper's timestep counts
}

// WeakScaling regenerates one series of paper Figures 12/21-24: constant
// 256^3 per rank (CPU) or per device (GPU), doubling one dimension per
// doubling of resources, runtime for the model's paper timestep count.
func WeakScaling(model string, so int, machine perfmodel.Machine, mode halo.Mode) ([]WeakPoint, error) {
	kc, err := Characterize(model, so)
	if err != nil {
		return nil, err
	}
	steps := paperTimesteps(model)
	var out []WeakPoint
	for _, n := range PaperNodeCounts {
		// Paper Section IV-E: constant 256^3 per CPU node / GPU device,
		// cyclically doubling one dimension per doubling of resources
		// (512x256x256 on 2 nodes ... 2048x1024x1024 on 128).
		shape := []int{256, 256, 256}
		g := n
		d := 0
		for g > 1 {
			shape[d] *= 2
			g /= 2
			d = (d + 1) % 3
		}
		s := perfmodel.Scenario{Kernel: kc, Machine: machine, Shape: shape, Nodes: n, Mode: mode}
		st, err := s.StepTime()
		if err != nil {
			return nil, err
		}
		out = append(out, WeakPoint{Nodes: n, Runtime: st * float64(steps)})
	}
	return out, nil
}

// paperTimesteps returns the step counts of the paper's 512 ms runs
// (Section IV-C).
func paperTimesteps(model string) int {
	switch model {
	case "elastic":
		return 363
	case "viscoelastic":
		return 251
	default:
		return 290
	}
}

// Format renders the table in the paper's appendix style.
func (t *ScalingTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s so-%02d [%s] kernel throughput (GPts/s)\n", t.Model, t.SO, t.Arch)
	fmt.Fprintf(&b, "%-6s", "")
	for _, n := range t.Nodes {
		fmt.Fprintf(&b, "%9d", n)
	}
	b.WriteString("\n")
	for _, mode := range t.ModeOrder {
		fmt.Fprintf(&b, "%-6s", mode)
		for _, v := range t.Rows[mode] {
			fmt.Fprintf(&b, "%9.1f", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-6s", "eff%%")
	for _, e := range t.EffPct {
		fmt.Fprintf(&b, "%8.0f%%", e)
	}
	b.WriteString("\n")
	return b.String()
}

// RooflineReport regenerates paper Fig. 7: every kernel on the integrated
// CPU/GPU roofline.
func RooflineReport(so int) (string, error) {
	var b strings.Builder
	b.WriteString("Integrated CPU/GPU roofline (paper Fig. 7)\n")
	fmt.Fprintf(&b, "%-14s %-16s %10s %12s %8s\n", "kernel", "machine", "AI(F/B)", "GFlop/s", "bound")
	for _, machine := range []perfmodel.Machine{perfmodel.Archer2Node(), perfmodel.TursaA100()} {
		for _, model := range []string{"acoustic", "tti", "elastic", "viscoelastic"} {
			kc, err := Characterize(model, so)
			if err != nil {
				return "", err
			}
			p := perfmodel.Roofline(kc, machine)
			fmt.Fprintf(&b, "%-14s %-16s %10.2f %12.1f %8s\n", model, machine.Name, p.AI, p.GFlops, p.Bound)
		}
	}
	return b.String(), nil
}

// ModeSelectionReport runs the automated mode selector (the paper's
// future-work tuner) over the full CPU sweep.
func ModeSelectionReport(so int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Automated MPI-mode selection, CPU, so-%02d\n", so)
	fmt.Fprintf(&b, "%-14s", "model/nodes")
	for _, n := range PaperNodeCounts {
		fmt.Fprintf(&b, "%7d", n)
	}
	b.WriteString("\n")
	for _, model := range []string{"acoustic", "elastic", "tti", "viscoelastic"} {
		kc, err := Characterize(model, so)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-14s", model)
		for _, n := range PaperNodeCounts {
			s := perfmodel.Scenario{Kernel: kc, Machine: perfmodel.Archer2Node(), Shape: CPUShape(model), Nodes: n}
			mode, _, err := perfmodel.SelectMode(s)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%7s", mode)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
