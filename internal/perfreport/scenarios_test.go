package perfreport

import (
	"math"
	"testing"

	"devigo/internal/halo"
	"devigo/internal/perfmodel"
)

var charCache = map[string]perfmodel.KernelChar{}

func char(t testing.TB, model string, so int) perfmodel.KernelChar {
	t.Helper()
	key := model + string(rune('0'+so/4))
	if kc, ok := charCache[key]; ok {
		return kc
	}
	kc, err := Characterize(model, so)
	if err != nil {
		t.Fatal(err)
	}
	charCache[key] = kc
	return kc
}

func TestCharacterizeOrderings(t *testing.T) {
	ac := char(t, "acoustic", 8)
	el := char(t, "elastic", 8)
	tti := char(t, "tti", 8)
	ve := char(t, "viscoelastic", 8)

	// Paper Section IV-B: TTI is by far the most flop-intensive.
	if tti.FlopsPerPoint <= 3*ac.FlopsPerPoint {
		t.Errorf("tti flops %v should dwarf acoustic %v", tti.FlopsPerPoint, ac.FlopsPerPoint)
	}
	// Working sets: 5 < 12..14 < 22 < 35/36.
	if !(ac.WorkingSetFields < tti.WorkingSetFields &&
		tti.WorkingSetFields < el.WorkingSetFields &&
		el.WorkingSetFields < ve.WorkingSetFields) {
		t.Errorf("working sets out of order: %d %d %d %d",
			ac.WorkingSetFields, tti.WorkingSetFields, el.WorkingSetFields, ve.WorkingSetFields)
	}
	// Halo streams: acoustic 1, tti 2, elastic 9 (6 tau + 3 v), visco 15.
	if ac.HaloStreams != 1 || tti.HaloStreams != 2 {
		t.Errorf("halo streams acoustic=%d tti=%d", ac.HaloStreams, tti.HaloStreams)
	}
	if el.HaloStreams != 9 {
		t.Errorf("elastic halo streams = %d, want 9", el.HaloStreams)
	}
	// Viscoelastic also exchanges 9 streams: its memory variables are
	// read centred only, so they never need halos (the paper's "65%
	// higher communication cost" refers to the field count as a proxy;
	// the measured 128-node efficiencies of elastic and viscoelastic are
	// in fact equal at 46%).
	if ve.HaloStreams != 9 {
		t.Errorf("viscoelastic halo streams = %d, want 9", ve.HaloStreams)
	}
	// TTI has the highest operational intensity (paper Fig. 6).
	if tti.OperationalIntensity() <= ac.OperationalIntensity() {
		t.Error("tti OI should exceed acoustic OI")
	}
}

func TestCharacterizeFlopsGrowWithOrder(t *testing.T) {
	for _, model := range []string{"acoustic", "tti"} {
		f4 := char(t, model, 4).FlopsPerPoint
		f8 := char(t, model, 8).FlopsPerPoint
		if f8 <= f4 {
			t.Errorf("%s: flops at so8 (%v) should exceed so4 (%v)", model, f8, f4)
		}
	}
}

func TestSingleNodeCPUThroughputBallpark(t *testing.T) {
	// Paper Table IV: acoustic so-08 at 1 node = 12.4 GPts/s. We accept
	// the right order of magnitude (the substrate is a model, not the
	// authors' testbed) but the relative ordering across kernels must
	// hold: acoustic >> tti > elastic > viscoelastic (Tables IV, VIII,
	// XII, XVI: 12.4, 1.7, 3.5, 1.1).
	get := func(model string) float64 {
		s := perfmodel.Scenario{Kernel: char(t, model, 8), Machine: perfmodel.Archer2Node(),
			Shape: []int{1024, 1024, 1024}, Nodes: 1, Mode: halo.ModeBasic}
		tput, err := s.ThroughputGPts()
		if err != nil {
			t.Fatal(err)
		}
		return tput
	}
	ac := get("acoustic")
	el := get("elastic")
	tti := get("tti")
	ve := get("viscoelastic")
	if ac < 4 || ac > 40 {
		t.Errorf("acoustic 1-node = %.1f GPts/s, expected O(12)", ac)
	}
	if !(ac > tti && tti > el && el > ve) {
		t.Errorf("ordering wrong: ac=%.2f tti=%.2f el=%.2f ve=%.2f", ac, tti, el, ve)
	}
}

func TestStrongScalingEfficiencyDecays(t *testing.T) {
	s := perfmodel.Scenario{Kernel: char(t, "acoustic", 8), Machine: perfmodel.Archer2Node(),
		Shape: []int{1024, 1024, 1024}, Mode: halo.ModeBasic}
	prev := math.Inf(1)
	for _, nodes := range []int{2, 8, 32, 128} {
		s.Nodes = nodes
		eff, err := s.Efficiency()
		if err != nil {
			t.Fatal(err)
		}
		if eff > prev+0.02 {
			t.Errorf("efficiency grew at %d nodes: %.2f > %.2f", nodes, eff, prev)
		}
		if eff <= 0 || eff > 1.05 {
			t.Errorf("efficiency at %d nodes = %.2f out of range", nodes, eff)
		}
		prev = eff
	}
	// Paper Fig. 8a: ~64% at 128 nodes; accept a generous band.
	s.Nodes = 128
	eff, _ := s.Efficiency()
	if eff < 0.3 || eff > 0.95 {
		t.Errorf("acoustic 128-node efficiency = %.2f, paper reports ~0.64", eff)
	}
}

func TestTTIScalesBestOfAllKernels(t *testing.T) {
	// Paper Section IV-D: TTI has the highest computation-to-communication
	// ratio and therefore the best strong-scaling efficiency.
	effOf := func(model string) float64 {
		s := perfmodel.Scenario{Kernel: char(t, model, 8), Machine: perfmodel.Archer2Node(),
			Shape: []int{1024, 1024, 1024}, Nodes: 128, Mode: halo.ModeDiagonal}
		eff, err := s.Efficiency()
		if err != nil {
			t.Fatal(err)
		}
		return eff
	}
	tti := effOf("tti")
	for _, other := range []string{"acoustic", "elastic", "viscoelastic"} {
		if effOf(other) > tti {
			t.Errorf("%s efficiency %.2f exceeds tti %.2f", other, effOf(other), tti)
		}
	}
}

func TestModePreferences(t *testing.T) {
	m := perfmodel.Archer2Node()
	// Paper Fig. 8a / Table IV: at 128 nodes the acoustic kernel favours
	// basic over diagonal and full.
	ac := perfmodel.Scenario{Kernel: char(t, "acoustic", 8), Machine: m,
		Shape: []int{1024, 1024, 1024}, Nodes: 128}
	best, _, err := perfmodel.SelectMode(ac)
	if err != nil {
		t.Fatal(err)
	}
	if best != halo.ModeBasic {
		t.Errorf("acoustic@128 best mode = %v, paper says basic", best)
	}
	// Paper Table VIII: elastic at 128 nodes favours diagonal.
	el := perfmodel.Scenario{Kernel: char(t, "elastic", 8), Machine: m,
		Shape: []int{1024, 1024, 1024}, Nodes: 128}
	best, _, err = perfmodel.SelectMode(el)
	if err != nil {
		t.Fatal(err)
	}
	if best != halo.ModeDiagonal {
		t.Errorf("elastic@128 best mode = %v, paper says diag", best)
	}
	// Paper Section IV-D: full is never the best choice for TTI.
	for _, nodes := range []int{2, 8, 32, 128} {
		tti := perfmodel.Scenario{Kernel: char(t, "tti", 8), Machine: m,
			Shape: []int{1024, 1024, 1024}, Nodes: nodes}
		best, _, err := perfmodel.SelectMode(tti)
		if err != nil {
			t.Fatal(err)
		}
		if best == halo.ModeFull {
			t.Errorf("full mode selected for tti at %d nodes; paper: never best", nodes)
		}
	}
}

func TestFullModeRemainderPenaltyGrowsWithSO(t *testing.T) {
	// Paper discussion: higher SDOs lower the core-to-remainder ratio,
	// hurting full mode more.
	rel := func(so int) float64 {
		k := char(t, "acoustic", so)
		full := perfmodel.Scenario{Kernel: k, Machine: perfmodel.Archer2Node(),
			Shape: []int{1024, 1024, 1024}, Nodes: 64, Mode: halo.ModeFull}
		diag := full
		diag.Mode = halo.ModeDiagonal
		tf, err := full.ThroughputGPts()
		if err != nil {
			t.Fatal(err)
		}
		td, err := diag.ThroughputGPts()
		if err != nil {
			t.Fatal(err)
		}
		return tf / td
	}
	if rel(16) >= rel(4) {
		t.Errorf("full/diag ratio should shrink with SO: so4=%.3f so16=%.3f", rel(4), rel(16))
	}
}

func TestGPUFasterAtFewDevicesLessEfficientAtScale(t *testing.T) {
	ac := char(t, "acoustic", 8)
	cpu := perfmodel.Scenario{Kernel: ac, Machine: perfmodel.Archer2Node(), Shape: []int{1024, 1024, 1024},
		Nodes: 1, Mode: halo.ModeBasic}
	gpu := perfmodel.Scenario{Kernel: ac, Machine: perfmodel.TursaA100(), Shape: []int{1158, 1158, 1158},
		Nodes: 1, Mode: halo.ModeBasic}
	tc, err := cpu.ThroughputGPts()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gpu.ThroughputGPts()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 31.2 vs 12.4 GPts/s at one device/node — GPU ~2.5x.
	if tg <= 1.5*tc {
		t.Errorf("single A100 (%.1f) should clearly beat a CPU node (%.1f)", tg, tc)
	}
	// Strong-scaling efficiency at 128: GPU decays harder (37%% vs 64%%).
	cpu.Nodes, gpu.Nodes = 128, 128
	ec, err := cpu.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	eg, err := gpu.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	if eg >= ec {
		t.Errorf("GPU efficiency %.2f should fall below CPU %.2f at 128", eg, ec)
	}
}

func TestGPURejectsNonBasicModes(t *testing.T) {
	s := perfmodel.Scenario{Kernel: char(t, "acoustic", 8), Machine: perfmodel.TursaA100(),
		Shape: []int{512, 512, 512}, Nodes: 8, Mode: halo.ModeDiagonal}
	if _, err := s.StepTime(); err == nil {
		t.Error("diagonal on GPU must be rejected (Table I)")
	}
}

func TestWeakScalingRuntimeNearlyFlat(t *testing.T) {
	// Paper Fig. 12: runtime stays nearly constant at 256^3 per rank.
	k := char(t, "acoustic", 8)
	m := perfmodel.Archer2Node()
	runtimeAt := func(nodes int) float64 {
		ranks := nodes * m.RanksPerNode
		topo := []int{ranks, 1, 1}
		shape := []int{256 * ranks, 256, 256}
		s := perfmodel.Scenario{Kernel: k, Machine: m, Shape: shape, Nodes: nodes,
			Mode: halo.ModeBasic, Topology: topo}
		st, err := s.StepTime()
		if err != nil {
			t.Fatal(err)
		}
		return st * 290
	}
	r1 := runtimeAt(1)
	r128 := runtimeAt(128)
	if r128 > 2*r1 {
		t.Errorf("weak scaling runtime blew up: %v -> %v", r1, r128)
	}
	if r128 < r1*0.9 {
		t.Errorf("weak scaling runtime should not shrink: %v -> %v", r1, r128)
	}
}

func TestWeakScalingGPUAbout4xFaster(t *testing.T) {
	// Paper Fig. 12: GPUs are consistently ~4x faster in weak scaling.
	k := char(t, "acoustic", 8)
	cpu := perfmodel.Archer2Node()
	gpu := perfmodel.TursaA100()
	sc := perfmodel.Scenario{Kernel: k, Machine: cpu, Shape: []int{512, 512, 512}, Nodes: 8,
		Mode: halo.ModeBasic}
	sg := perfmodel.Scenario{Kernel: k, Machine: gpu, Shape: []int{512, 512, 512}, Nodes: 8,
		Mode: halo.ModeBasic}
	tc, err := sc.StepTime()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := sg.StepTime()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~4x; our model gives ~2-3x because the anchored
	// CPU node rate is higher relative to its comm cost than the paper's
	// measured weak-scaling runs (documented in EXPERIMENTS.md).
	ratio := tc / tg
	if ratio < 1.5 || ratio > 8 {
		t.Errorf("GPU weak-scaling speedup = %.1fx, paper reports ~4x", ratio)
	}
}

func TestRooflineAllKernelsMemoryBoundOnCPU(t *testing.T) {
	// Paper Fig. 7: flop-optimised kernels are mainly DRAM-bandwidth bound.
	m := perfmodel.Archer2Node()
	for _, model := range []string{"acoustic", "elastic", "viscoelastic"} {
		p := perfmodel.Roofline(char(t, model, 8), m)
		if p.Bound != "memory" {
			t.Errorf("%s should be memory bound on EPYC, got %s (AI %.1f)", model, p.Bound, p.AI)
		}
	}
}

func TestTopologyOverrideMatchesPaperTuning(t *testing.T) {
	// Paper discussion: splitting only x and y helps full mode (bigger
	// messages, no z-strided remainder traffic); at minimum the override
	// must be honoured and produce a different prediction.
	k := char(t, "acoustic", 8)
	m := perfmodel.Archer2Node()
	auto := perfmodel.Scenario{Kernel: k, Machine: m, Shape: []int{1024, 1024, 1024},
		Nodes: 16, Mode: halo.ModeFull}
	tuned := auto
	tuned.Topology = []int{16, 8, 1}
	ta, err := auto.ThroughputGPts()
	if err != nil {
		t.Fatal(err)
	}
	tt, err := tuned.ThroughputGPts()
	if err != nil {
		t.Fatal(err)
	}
	if ta == tt {
		t.Error("topology override had no effect")
	}
}

func TestScenarioRejectsBadTopology(t *testing.T) {
	s := perfmodel.Scenario{Kernel: char(t, "acoustic", 8), Machine: perfmodel.Archer2Node(),
		Shape: []int{256, 256, 256}, Nodes: 2, Mode: halo.ModeBasic,
		Topology: []int{3, 1, 1}}
	if _, err := s.StepTime(); err == nil {
		t.Error("mismatched topology must error")
	}
}
