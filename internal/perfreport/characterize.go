// Package perfreport regenerates the paper's modeled evaluation: it glues
// the pure analytic machinery of package perfmodel to the real compiler
// (package core) and the wave propagators (package propagators), producing
// the strong/weak scaling tables, the roofline report and the automated
// mode-selection ablation of the paper. It sits above both layers so that
// perfmodel itself stays free of compiler dependencies and can in turn be
// imported by core for the runtime autotuner.
package perfreport

import (
	"fmt"

	"devigo/internal/core"
	"devigo/internal/perfmodel"
	"devigo/internal/propagators"
)

// Characterize builds the model on a tiny probe grid (per-point stencil
// characteristics are grid-size independent), runs it through the full
// compiler pipeline — CIRE, invariant hoisting, CSE — and extracts the
// counters of the *generated* code.
func Characterize(modelName string, so int) (perfmodel.KernelChar, error) {
	probe := 4 * so // comfortably larger than any stencil radius
	cfg := propagators.Config{
		Shape:      []int{probe, probe, probe},
		SpaceOrder: so,
		NBL:        0,
		Velocity:   1.5,
	}
	m, err := propagators.Build(modelName, cfg)
	if err != nil {
		return perfmodel.KernelChar{}, fmt.Errorf("perfreport: %w", err)
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: modelName})
	if err != nil {
		return perfmodel.KernelChar{}, err
	}
	return perfmodel.KernelChar{
		Name:             modelName,
		SO:               so,
		HaloWidth:        so,
		WorkingSetFields: m.WorkingSetFields,
		FlopsPerPoint:    float64(op.FlopsPerPointOptimized()),
		StreamsPerPoint:  float64(op.StreamCount()),
		HaloStreams:      op.HaloStreamCount(),
	}, nil
}
