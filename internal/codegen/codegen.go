// Package codegen emits C-like source from an IET — the textual face of
// the devigo compiler, mirroring the generated code of paper Listing 11.
// The emitted text documents exactly what a C backend would compile; the
// executable path (internal/runtime) executes the same schedule.
package codegen

import (
	"fmt"
	"math/big"
	"strings"

	"devigo/internal/iet"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

// Emitter carries the layout facts codegen needs: halo widths per field
// (for the access-alignment shift of paper Section III-d) and time buffer
// counts (for the modulo time indices t0/t1).
type Emitter struct {
	// Halo maps field name -> per-dimension halo width.
	Halo map[string][]int
	// TimeBufs maps field name -> number of time buffers (0 for
	// time-invariant parameters).
	TimeBufs map[string]int
}

// EmitC renders the callable as C-like source.
func (em *Emitter) EmitC(c iet.Callable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "void %s(...)\n{\n", c.Name)
	em.emitList(&b, c.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (em *Emitter) emitList(b *strings.Builder, nodes []iet.Node, depth int) {
	for _, n := range nodes {
		em.emitNode(b, n, depth)
	}
}

func (em *Emitter) emitNode(b *strings.Builder, n iet.Node, depth int) {
	switch v := n.(type) {
	case iet.ScalarAssign:
		indent(b, depth)
		fmt.Fprintf(b, "float %s = %s;\n", v.Name, em.expr(v.Value))
	case iet.HaloSpot:
		indent(b, depth)
		fmt.Fprintf(b, "/* <HaloSpot(%s)> */\n", haloFieldList(v.Fields))
	case iet.HaloUpdateCall:
		indent(b, depth)
		async := ""
		if v.Async {
			async = "_async"
		}
		fmt.Fprintf(b, "haloupdate%s_%s(%s);\n", async, v.Mode, haloFieldList(v.Fields))
	case iet.HaloWaitCall:
		indent(b, depth)
		fmt.Fprintf(b, "halowait(%s);\n", haloFieldList(v.Fields))
	case iet.TimeLoop:
		indent(b, depth)
		b.WriteString("for (int time = time_m; time <= time_M; time += 1)\n")
		indent(b, depth)
		b.WriteString("{\n")
		em.emitList(b, v.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case iet.TimeTile:
		indent(b, depth)
		fmt.Fprintf(b, "/* communication-avoiding time tiling: deep halo exchanged every %d steps */\n", v.K)
		indent(b, depth)
		fmt.Fprintf(b, "for (int tile = time_m; tile <= time_M; tile += %d)\n", v.K)
		indent(b, depth)
		b.WriteString("{\n")
		async := ""
		if v.Update.Async {
			async = "_async"
		}
		indent(b, depth+1)
		fmt.Fprintf(b, "haloupdate_deep%s_%s(%s);\n", async, v.Update.Mode, haloTimedFieldList(v.Update.Fields))
		indent(b, depth+1)
		fmt.Fprintf(b, "for (int time = tile; time <= MIN(tile + %d, time_M); time += 1)\n", v.K-1)
		indent(b, depth+1)
		b.WriteString("{\n")
		indent(b, depth+2)
		b.WriteString("/* ghost shell shrinks by the schedule stride per substep */\n")
		em.emitList(b, v.Body, depth+2)
		indent(b, depth+1)
		b.WriteString("}\n")
		indent(b, depth)
		b.WriteString("}\n")
	case iet.LoopNest:
		em.emitNest(b, v, depth, "DOMAIN")
	case iet.OverlapSection:
		em.emitNode(b, v.Update, depth)
		em.emitNest(b, v.Core, depth, "CORE")
		em.emitNode(b, v.Wait, depth)
		em.emitNest(b, v.Remainder, depth, "REMAINDER")
	}
}

func (em *Emitter) emitNest(b *strings.Builder, nest iet.LoopNest, depth int, region string) {
	d := depth
	if region != "DOMAIN" {
		indent(b, d)
		fmt.Fprintf(b, "/* %s section */\n", region)
	}
	for i, dim := range nest.Dims {
		indent(b, d)
		fmt.Fprintf(b, "/* [%s] */ for (int %s = %s_m_%s; %s <= %s_M_%s; %s += 1)\n",
			nest.Props[i], dim, dim, strings.ToLower(region), dim, dim, strings.ToLower(region), dim)
		indent(b, d)
		b.WriteString("{\n")
		d++
	}
	for _, a := range nest.Assigns {
		indent(b, d)
		fmt.Fprintf(b, "float %s = %s;\n", a.Name, em.expr(a.Value))
	}
	for _, e := range nest.Exprs {
		indent(b, d)
		fmt.Fprintf(b, "%s = %s;\n", em.expr(e.LHS), em.expr(e.RHS))
	}
	for range nest.Dims {
		d--
		indent(b, d)
		b.WriteString("}\n")
	}
}

func haloFieldList(fs []ir.HaloReq) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.Field
	}
	return strings.Join(parts, ",")
}

// haloTimedFieldList renders halo requirements with their time offsets —
// a time-tiled exchange names multiple buffers of the same field (e.g.
// "u[tile],u[tile-1]").
func haloTimedFieldList(fs []ir.HaloReq) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		switch {
		case f.TimeOff == 0:
			parts[i] = fmt.Sprintf("%s[tile]", f.Field)
		case f.TimeOff > 0:
			parts[i] = fmt.Sprintf("%s[tile + %d]", f.Field, f.TimeOff)
		default:
			parts[i] = fmt.Sprintf("%s[tile - %d]", f.Field, -f.TimeOff)
		}
	}
	return strings.Join(parts, ",")
}

// expr renders a symbolic expression as C.
func (em *Emitter) expr(e symbolic.Expr) string {
	switch v := e.(type) {
	case symbolic.Num:
		return cFloat(v.Val)
	case symbolic.Sym:
		return v.Name
	case symbolic.Access:
		return em.access(v)
	case symbolic.Add:
		parts := make([]string, len(v.Terms))
		for i, t := range v.Terms {
			parts[i] = em.expr(t)
		}
		return "(" + strings.Join(parts, " + ") + ")"
	case symbolic.Mul:
		parts := make([]string, len(v.Factors))
		for i, f := range v.Factors {
			parts[i] = em.expr(f)
		}
		return strings.Join(parts, "*")
	case symbolic.Pow:
		base := em.expr(v.Base)
		if v.Exp < 0 {
			return "1.0F/(" + strings.Repeat(base+"*", -v.Exp-1) + base + ")"
		}
		return "(" + strings.Repeat(base+"*", v.Exp-1) + base + ")"
	case symbolic.Deriv:
		return "/* unexpanded derivative */"
	}
	return "?"
}

// access renders an aligned array access: the halo shift of paper
// Section III-d is applied here (u[t,x,y] -> u[t0][x+2][y+2]).
func (em *Emitter) access(a symbolic.Access) string {
	var b strings.Builder
	b.WriteString(a.Fun.Name)
	if a.Fun.IsTime {
		fmt.Fprintf(&b, "[t%d]", ((a.TimeOff%a.Fun.NumBufs)+a.Fun.NumBufs)%a.Fun.NumBufs)
	}
	halo := em.Halo[a.Fun.Name]
	names := []string{"x", "y", "z"}
	for d, off := range a.Off {
		shift := off
		if d < len(halo) {
			shift += halo[d]
		}
		switch {
		case shift == 0:
			fmt.Fprintf(&b, "[%s]", names[d])
		case shift > 0:
			fmt.Fprintf(&b, "[%s + %d]", names[d], shift)
		default:
			fmt.Fprintf(&b, "[%s - %d]", names[d], -shift)
		}
	}
	return b.String()
}

// cFloat renders a rational as a C float literal.
func cFloat(r *big.Rat) string {
	if r.IsInt() {
		return fmt.Sprintf("%s.0F", r.Num().String())
	}
	f, _ := r.Float64()
	return fmt.Sprintf("%gF", f)
}
