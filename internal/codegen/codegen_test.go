package codegen

import (
	"strings"
	"testing"

	"devigo/internal/halo"
	"devigo/internal/iet"
	"devigo/internal/ir"
	"devigo/internal/symbolic"
)

func emitDiffusion(t *testing.T, mode halo.Mode) string {
	t.Helper()
	u := &symbolic.FuncRef{Name: "u", NDims: 2, IsTime: true, NumBufs: 2}
	eq := symbolic.Eq{LHS: symbolic.Dt(symbolic.At(u), 1), RHS: symbolic.Laplace(symbolic.At(u), 2, 2)}
	sol, err := symbolic.Solve(eq, symbolic.ForwardStencil(u))
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ir.Lower([]symbolic.Eq{{LHS: symbolic.ForwardStencil(u), RHS: sol}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	isTime := func(string) bool { return true }
	sched := ir.OptimizeSchedule(ir.BuildSchedule(clusters, 2, isTime), isTime)
	tree := iet.LowerHalos(iet.Build("Kernel", sched), mode)
	em := &Emitter{Halo: map[string][]int{"u": {2, 2}}, TimeBufs: map[string]int{"u": 2}}
	return em.EmitC(tree)
}

func TestEmitListing11Structure(t *testing.T) {
	code := emitDiffusion(t, halo.ModeNone)
	// Golden structural elements of paper Listing 11.
	for _, want := range []string{
		"void Kernel(...)",
		"float r",                // hoisted invariants
		"for (int time = time_m", // time loop
		"u[t1][x + 2][y + 2] =",  // aligned store
		"u[t0][x + 1][y + 2]",    // shifted stencil read
		"[affine,parallel,vector-dim]",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("missing %q in:\n%s", want, code)
		}
	}
	// Serial code must not contain halo machinery.
	if strings.Contains(code, "haloupdate") {
		t.Error("serial code should have no halo calls")
	}
}

func TestEmitBasicModeCalls(t *testing.T) {
	code := emitDiffusion(t, halo.ModeBasic)
	if !strings.Contains(code, "haloupdate_basic(u);") {
		t.Errorf("missing basic update call:\n%s", code)
	}
	if !strings.Contains(code, "halowait(u);") {
		t.Error("missing wait call")
	}
}

func TestEmitFullModeOverlapSections(t *testing.T) {
	code := emitDiffusion(t, halo.ModeFull)
	for _, want := range []string{
		"haloupdate_async_full(u);",
		"/* CORE section */",
		"/* REMAINDER section */",
		"x_m_core", "x_m_remainder",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("missing %q in full-mode code:\n%s", want, code)
		}
	}
	// Update must come before CORE, wait between CORE and REMAINDER.
	iUpd := strings.Index(code, "haloupdate_async_full")
	iCore := strings.Index(code, "/* CORE section */")
	iWait := strings.Index(code, "halowait")
	iRem := strings.Index(code, "/* REMAINDER section */")
	if !(iUpd < iCore && iCore < iWait && iWait < iRem) {
		t.Error("full-mode section ordering wrong")
	}
}

func TestAccessAlignmentShift(t *testing.T) {
	em := &Emitter{Halo: map[string][]int{"u": {4, 4}}, TimeBufs: map[string]int{"u": 3}}
	u := &symbolic.FuncRef{Name: "u", NDims: 2, IsTime: true, NumBufs: 3}
	// Read at offset -4 with halo 4 -> index x + 0.
	a := symbolic.Shifted(u, -1, -4, 3)
	got := em.access(a)
	if got != "u[t2][x][y + 7]" {
		t.Errorf("access = %q, want u[t2][x][y + 7]", got)
	}
}

func TestCFloatRendering(t *testing.T) {
	em := &Emitter{Halo: map[string][]int{}}
	if got := em.expr(symbolic.Int(-2)); got != "-2.0F" {
		t.Errorf("int literal = %q", got)
	}
	if got := em.expr(symbolic.Rat(1, 2)); got != "0.5F" {
		t.Errorf("rational literal = %q", got)
	}
	if got := em.expr(symbolic.NewPow(symbolic.S("h_x"), -2)); got != "1.0F/(h_x*h_x)" {
		t.Errorf("negative pow = %q", got)
	}
	if got := em.expr(symbolic.NewPow(symbolic.S("a"), 3)); got != "(a*a*a)" {
		t.Errorf("positive pow = %q", got)
	}
}
