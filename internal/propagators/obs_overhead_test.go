package propagators

import (
	"testing"
	"time"

	"devigo/internal/obs"
)

// The trace-overhead guard: with DEVIGO_TRACE unset (obs disabled), the
// instrumented Apply must run within noise of its pre-instrumentation
// timings. A direct A/B against the un-instrumented binary is impossible
// in-tree, so the guard bounds the overhead from first principles:
// measure the real per-timestep cost of an instrumented serial Apply,
// measure the per-call cost of a disabled instrumentation site, and
// assert that the steps' worth of disabled calls stays far below the 2%
// acceptance budget. The per-call figure is measured, not assumed, so a
// regression that makes the disabled fast path expensive (say, a lock or
// an allocation on Begin) trips the guard immediately.
func TestObsOverheadDisabled(t *testing.T) {
	obs.DisableAll()
	obs.Reset()

	size := 256
	nt := 10
	if testing.Short() {
		size, nt = 96, 6
	}
	m, err := Acoustic(Config{Shape: []int{size, size}, SpaceOrder: 4, NBL: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: nt})
	if err != nil {
		t.Fatal(err)
	}
	perf := res.Perf
	stepSec := (perf.ComputeSeconds + perf.HaloSeconds) / float64(perf.Timesteps)
	if stepSec <= 0 {
		t.Fatalf("degenerate step time %v", stepSec)
	}

	bench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := obs.Begin(0, obs.PhaseCompute, i)
			sp.End()
		}
	})
	callSec := float64(bench.NsPerOp()) * 1e-9

	// Instrumentation sites executed per serial timestep: one exchange +
	// one compute span per schedule step, plus the steady-step counter and
	// preamble bookkeeping amortized in. 8 per schedule step is a generous
	// over-estimate (serial runs skip every exchanger-level site).
	callsPerStep := float64(8 * len(res.Op.Schedule.Steps))
	overhead := callsPerStep * callSec / stepSec
	t.Logf("step=%s  call=%.1fns  calls/step=%.0f  overhead=%.5f%%",
		time.Duration(float64(time.Second)*stepSec), float64(bench.NsPerOp()),
		callsPerStep, overhead*100)
	if overhead > 0.02 {
		t.Errorf("disabled instrumentation overhead %.4f%% of a timestep exceeds the 2%% budget",
			overhead*100)
	}
}
