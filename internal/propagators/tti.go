package propagators

import (
	"fmt"
	"math"

	"devigo/internal/field"
	"devigo/internal/symbolic"
)

// TTI builds the anisotropic acoustic (tilted transversely isotropic)
// propagator (paper Section IV-B2, Appendix A2): a coupled system of two
// scalar wavefields p and q driven by a rotated anisotropic Laplacian,
//
//	m*p.dt2 + damp*p.dt = (1+2eps)*Hp(p) + sqrt(1+2delta)*Gzz(q)
//	m*q.dt2 + damp*q.dt = sqrt(1+2delta)*Hp(p) + Gzz(q)
//
// where Gzz is the second directional derivative along the (spatially
// varying) symmetry axis and Hp = laplace - Gzz. The rotated kernel reads
// three 2-D planes of neighbours (paper Fig. 6b) and is by far the most
// arithmetically intensive of the four models.
//
// The working set counts 14 fields here: p and q (3 buffers each), m,
// damp, the two anisotropy parameter fields, and four trigonometric fields
// (the paper counts 12 by storing theta/phi as two angle grids; devigo's
// expression language has no trigonometric functions, so sin/cos are
// precomputed — documented in DESIGN.md).
func TTI(cfg Config) (*Model, error) {
	c := cfg.withDefaults()
	if err := validateShape(&c, 4); err != nil {
		return nil, err
	}
	g, err := makeGrid(&c)
	if err != nil {
		return nil, err
	}
	so := c.SpaceOrder
	nd := g.NDims()
	if nd < 2 {
		return nil, fmt.Errorf("propagators: TTI needs 2 or 3 dimensions")
	}

	newTF := func(name string) (*field.TimeFunction, error) {
		return field.NewTimeFunction(name, g, so, 2, fieldCfg(&c, nil))
	}
	newF := func(name string) (*field.Function, error) {
		return field.NewFunction(name, g, so, fieldCfg(&c, nil))
	}
	p, err := newTF("p")
	if err != nil {
		return nil, err
	}
	q, err := newTF("q")
	if err != nil {
		return nil, err
	}
	m, err := newF("m")
	if err != nil {
		return nil, err
	}
	damp, err := newF("damp")
	if err != nil {
		return nil, err
	}
	epsf, err := newF("epsf") // 1 + 2*epsilon
	if err != nil {
		return nil, err
	}
	delf, err := newF("delf") // sqrt(1 + 2*delta)
	if err != nil {
		return nil, err
	}
	ct, err := newF("ct") // cos(theta)
	if err != nil {
		return nil, err
	}
	st, err := newF("st") // sin(theta)
	if err != nil {
		return nil, err
	}
	fields := map[string]*field.Function{
		"p": &p.Function, "q": &q.Function, "m": m, "damp": damp,
		"epsf": epsf, "delf": delf, "ct": ct, "st": st,
	}
	nFields := 12
	var cp, sp *field.Function
	if nd == 3 {
		cp, err = newF("cp") // cos(phi)
		if err != nil {
			return nil, err
		}
		sp, err = newF("sp") // sin(phi)
		if err != nil {
			return nil, err
		}
		fields["cp"], fields["sp"] = cp, sp
		nFields = 14
	}

	// Homogeneous anisotropic medium with a constant tilt.
	fillConst(m, float32(1/(c.Velocity*c.Velocity)))
	dampField(damp, c.NBL, 0.1)
	eps, delta := 0.2, 0.1
	theta := math.Pi / 8
	fillConst(epsf, float32(1+2*eps))
	fillConst(delf, float32(math.Sqrt(1+2*delta)))
	fillConst(ct, float32(math.Cos(theta)))
	fillConst(st, float32(math.Sin(theta)))
	if nd == 3 {
		phi := math.Pi / 6
		fillConst(cp, float32(math.Cos(phi)))
		fillConst(sp, float32(math.Sin(phi)))
	}

	// axisCoeff[d] is the direction-cosine field expression of the
	// symmetry axis for dimension d.
	axisCoeff := func(d int) symbolic.Expr {
		if nd == 2 {
			// Axis in the x-z plane: (sin t, cos t).
			if d == 0 {
				return symbolic.At(st.Ref)
			}
			return symbolic.At(ct.Ref)
		}
		switch d {
		case 0:
			return symbolic.NewMul(symbolic.At(st.Ref), symbolic.At(cp.Ref))
		case 1:
			return symbolic.NewMul(symbolic.At(st.Ref), symbolic.At(sp.Ref))
		default:
			return symbolic.At(ct.Ref)
		}
	}
	// Gzz(u) = sum_d D_d( a_d * sum_e a_e D_e u ): the rotated second
	// derivative, self-adjoint discretisation (paper eq. 2).
	gzz := func(u symbolic.Expr) symbolic.Expr {
		var du []symbolic.Expr
		for e := 0; e < nd; e++ {
			du = append(du, symbolic.NewMul(axisCoeff(e), symbolic.Dx(u, e, so)))
		}
		axis := symbolic.NewAdd(du...)
		var outer []symbolic.Expr
		for d := 0; d < nd; d++ {
			outer = append(outer, symbolic.Dx(symbolic.NewMul(axisCoeff(d), axis), d, so))
		}
		return symbolic.NewAdd(outer...)
	}
	hp := func(u symbolic.Expr) symbolic.Expr {
		return symbolic.Sub(symbolic.Laplace(u, nd, so), gzz(u))
	}

	pt := symbolic.At(p.Ref)
	qt := symbolic.At(q.Ref)
	lhsP := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(m.Ref), symbolic.Dt2(pt, 2)),
		symbolic.NewMul(symbolic.At(damp.Ref), symbolic.Dt(pt, 2)),
	)
	rhsP := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(epsf.Ref), hp(pt)),
		symbolic.NewMul(symbolic.At(delf.Ref), gzz(qt)),
	)
	lhsQ := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(m.Ref), symbolic.Dt2(qt, 2)),
		symbolic.NewMul(symbolic.At(damp.Ref), symbolic.Dt(qt, 2)),
	)
	rhsQ := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(delf.Ref), hp(pt)),
		gzz(qt),
	)
	solP, err := symbolic.Solve(symbolic.Eq{LHS: lhsP, RHS: rhsP}, symbolic.ForwardStencil(p.Ref))
	if err != nil {
		return nil, err
	}
	solQ, err := symbolic.Solve(symbolic.Eq{LHS: lhsQ, RHS: rhsQ}, symbolic.ForwardStencil(q.Ref))
	if err != nil {
		return nil, err
	}

	vmaxAniso := c.Velocity * math.Sqrt(1+2*eps)
	return &Model{
		Name:       "tti",
		Grid:       g,
		SpaceOrder: so,
		Eqs: []symbolic.Eq{
			{LHS: symbolic.ForwardStencil(p.Ref), RHS: solP},
			{LHS: symbolic.ForwardStencil(q.Ref), RHS: solQ},
		},
		Fields:           fields,
		WaveFields:       []string{"p", "q"},
		SourceFields:     []string{"p", "q"},
		CriticalDt:       criticalDt(g, vmaxAniso) * 0.7,
		WorkingSetFields: nFields,
		Cfg:              c,
	}, nil
}
