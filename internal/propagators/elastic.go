package propagators

import (
	"fmt"

	"devigo/internal/field"
	"devigo/internal/symbolic"
)

// dimNames for component naming.
var comp = []string{"x", "y", "z"}

// stagSide returns the staggered-derivative side for differentiating field
// B along dim when the result is evaluated at field A's position: +1 when A
// sits half a cell above B in that dimension, -1 when below, 0 when
// co-located (centered — not used by the velocity–stress scheme).
func stagSide(aStag, bStag int) int {
	switch {
	case aStag == 1 && bStag == 0:
		return +1
	case aStag == 0 && bStag == 1:
		return -1
	}
	return 0
}

// dStag builds the staggered first derivative of expr along dim at the
// evaluation position implied by the stagger pair.
func dStag(e symbolic.Expr, dim, so, aStag, bStag int) symbolic.Expr {
	side := stagSide(aStag, bStag)
	if side == 0 {
		return symbolic.Dx(e, dim, so)
	}
	return symbolic.DxStaggered(e, dim, so, side)
}

// Elastic builds the isotropic elastic wave propagator (paper Section
// IV-B3, Appendix A3): the first-order velocity–stress system of Virieux
// on a fully staggered grid,
//
//	v.dt   = b * div(tau)            - damp*v
//	tau.dt = lam*tr(grad v)*I + mu*(grad v + grad v^T) - damp*tau
//
// In 3-D the working set is 22 fields: 3 velocity components and 6 stress
// components with 2 time buffers each, plus lam, mu, b, damp.
func Elastic(cfg Config) (*Model, error) {
	c := cfg.withDefaults()
	if err := validateShape(&c, 4); err != nil {
		return nil, err
	}
	g, err := makeGrid(&c)
	if err != nil {
		return nil, err
	}
	so := c.SpaceOrder
	nd := g.NDims()
	if nd < 2 {
		return nil, fmt.Errorf("propagators: elastic needs 2 or 3 dimensions")
	}

	fields := map[string]*field.Function{}
	// Velocities: v_d staggered in dimension d.
	vs := make([]*field.TimeFunction, nd)
	for d := 0; d < nd; d++ {
		st := make([]int, nd)
		st[d] = 1
		v, err := field.NewTimeFunction("v"+comp[d], g, so, 1, fieldCfg(&c, st))
		if err != nil {
			return nil, err
		}
		vs[d] = v
		fields[v.Name] = &v.Function
	}
	// Stresses: tau_dd at nodes, tau_de (d<e) staggered in d and e.
	taus := make([][]*field.TimeFunction, nd)
	for d := range taus {
		taus[d] = make([]*field.TimeFunction, nd)
	}
	var tauNames []string
	for d := 0; d < nd; d++ {
		for e := d; e < nd; e++ {
			st := make([]int, nd)
			if d != e {
				st[d], st[e] = 1, 1
			}
			name := "t" + comp[d] + comp[e]
			tf, err := field.NewTimeFunction(name, g, so, 1, fieldCfg(&c, st))
			if err != nil {
				return nil, err
			}
			taus[d][e] = tf
			taus[e][d] = tf
			fields[name] = &tf.Function
			tauNames = append(tauNames, name)
		}
	}
	lam, err := field.NewFunction("lam", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	mu, err := field.NewFunction("mu", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	b, err := field.NewFunction("b", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	damp, err := field.NewFunction("damp", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	fields["lam"], fields["mu"], fields["b"], fields["damp"] = lam, mu, b, damp

	// Homogeneous medium: vp = Velocity, vs = vp/sqrt(3), rho = 1.
	vp := c.Velocity
	vsSpeed := vp / 1.7320508075688772
	rho := 1.0
	muV := rho * vsSpeed * vsSpeed
	lamV := rho*vp*vp - 2*muV
	fillConst(lam, float32(lamV))
	fillConst(mu, float32(muV))
	fillConst(b, float32(1/rho))
	dampField(damp, c.NBL, 0.05)

	var eqs []symbolic.Eq
	var waveFields []string

	// Velocity updates: v_d.dt = b * sum_e D_e tau_de - damp*v_d.
	for d := 0; d < nd; d++ {
		v := vs[d]
		var divT []symbolic.Expr
		for e := 0; e < nd; e++ {
			tde := taus[d][e]
			divT = append(divT, dStag(symbolic.At(tde.Ref), e, so, v.Stagger[e], tde.Stagger[e]))
		}
		rhs := symbolic.Sub(
			symbolic.NewMul(symbolic.At(b.Ref), symbolic.NewAdd(divT...)),
			symbolic.NewMul(symbolic.At(damp.Ref), symbolic.At(v.Ref)),
		)
		sol, err := symbolic.Solve(symbolic.Eq{LHS: symbolic.Dt(symbolic.At(v.Ref), 1), RHS: rhs},
			symbolic.ForwardStencil(v.Ref))
		if err != nil {
			return nil, err
		}
		eqs = append(eqs, symbolic.Eq{LHS: symbolic.ForwardStencil(v.Ref), RHS: sol})
		waveFields = append(waveFields, v.Name)
	}

	// Divergence of the *updated* velocity (leapfrog), evaluated at the
	// target stress position.
	divV := func(target *field.TimeFunction) symbolic.Expr {
		var terms []symbolic.Expr
		for e := 0; e < nd; e++ {
			terms = append(terms, dStag(symbolic.ForwardStencil(vs[e].Ref), e, so,
				target.Stagger[e], vs[e].Stagger[e]))
		}
		return symbolic.NewAdd(terms...)
	}

	// Normal stresses: tau_dd.dt = lam*div(v) + 2mu*D_d v_d - damp*tau_dd.
	for d := 0; d < nd; d++ {
		tdd := taus[d][d]
		rhs := symbolic.Sub(
			symbolic.NewAdd(
				symbolic.NewMul(symbolic.At(lam.Ref), divV(tdd)),
				symbolic.NewMul(symbolic.Int(2), symbolic.At(mu.Ref),
					dStag(symbolic.ForwardStencil(vs[d].Ref), d, so, tdd.Stagger[d], vs[d].Stagger[d])),
			),
			symbolic.NewMul(symbolic.At(damp.Ref), symbolic.At(tdd.Ref)),
		)
		sol, err := symbolic.Solve(symbolic.Eq{LHS: symbolic.Dt(symbolic.At(tdd.Ref), 1), RHS: rhs},
			symbolic.ForwardStencil(tdd.Ref))
		if err != nil {
			return nil, err
		}
		eqs = append(eqs, symbolic.Eq{LHS: symbolic.ForwardStencil(tdd.Ref), RHS: sol})
		waveFields = append(waveFields, tdd.Name)
	}

	// Shear stresses: tau_de.dt = mu*(D_e v_d + D_d v_e) - damp*tau_de.
	for d := 0; d < nd; d++ {
		for e := d + 1; e < nd; e++ {
			tde := taus[d][e]
			rhs := symbolic.Sub(
				symbolic.NewMul(symbolic.At(mu.Ref), symbolic.NewAdd(
					dStag(symbolic.ForwardStencil(vs[d].Ref), e, so, tde.Stagger[e], vs[d].Stagger[e]),
					dStag(symbolic.ForwardStencil(vs[e].Ref), d, so, tde.Stagger[d], vs[e].Stagger[d]),
				)),
				symbolic.NewMul(symbolic.At(damp.Ref), symbolic.At(tde.Ref)),
			)
			sol, err := symbolic.Solve(symbolic.Eq{LHS: symbolic.Dt(symbolic.At(tde.Ref), 1), RHS: rhs},
				symbolic.ForwardStencil(tde.Ref))
			if err != nil {
				return nil, err
			}
			eqs = append(eqs, symbolic.Eq{LHS: symbolic.ForwardStencil(tde.Ref), RHS: sol})
			waveFields = append(waveFields, tde.Name)
		}
	}

	nTau := nd * (nd + 1) / 2
	var srcFields []string
	for d := 0; d < nd; d++ {
		srcFields = append(srcFields, taus[d][d].Name)
	}
	_ = tauNames
	return &Model{
		Name:             "elastic",
		Grid:             g,
		SpaceOrder:       so,
		Eqs:              eqs,
		Fields:           fields,
		WaveFields:       waveFields,
		SourceFields:     srcFields,
		CriticalDt:       criticalDt(g, vp) * 0.9, // stricter CFL for the coupled system
		WorkingSetFields: 2*(nd+nTau) + 4,
		Cfg:              c,
	}, nil
}
