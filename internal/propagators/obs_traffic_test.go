package propagators

import (
	"math"
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/obs"
)

// The obs/Traffic differential suite: the message and byte counters the
// obs subsystem measures at the exchangers must equal the halo.Traffic /
// halo.AmortizedTraffic predictions (the numbers CommStats and the
// performance models are built on) EXACTLY — not approximately — for
// every halo mode and exchange interval. The runs use a fully periodic
// Cartesian topology so that every rank is interior (the closed-form
// predictions assume a complete neighbourhood); counters, not physics,
// are under test.

// obsTrafficRun executes one 4-rank periodic run with obs metrics on and
// returns the world-total measured steady counters plus rank-0's modelled
// CommStats and effective interval.
func obsTrafficRun(t *testing.T, model string, shape []int, mode halo.Mode, nt, k int) (obs.RankMetrics, core.CommStats, int) {
	t.Helper()
	obs.Reset()
	var stats core.CommStats
	var effK int
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, []bool{true, true})
		if err != nil {
			t.Error(err)
			return
		}
		cfg := Config{Shape: shape, SpaceOrder: 4, NBL: 2, Decomp: dec, Rank: c.Rank()}
		m, err := Build(model, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{NT: nt, TimeTile: k, Workers: 1})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			stats = res.Op.CommStats()
			effK = res.Op.TimeTile()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return obs.Snapshot().Total, stats, effK
}

func TestObsTrafficMatchesModelExactly(t *testing.T) {
	obs.EnableMetrics()
	defer func() {
		obs.DisableAll()
		obs.Reset()
	}()
	shape := []int{32, 32}
	const nt = 8 // a multiple of every tested interval: no partial tiles
	models := []string{"acoustic", "elastic"}
	if testing.Short() {
		models = []string{"acoustic"}
	}
	for _, model := range models {
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			for _, k := range []int{1, 2, 4} {
				total, stats, effK := obsTrafficRun(t, model, shape, mode, nt, k)
				if effK != k {
					t.Fatalf("%s/%s k=%d: effective interval %d (test needs the requested one)",
						model, mode, k, effK)
				}
				// Predictions are per rank per step; all 4 ranks are interior
				// under the periodic topology. nt is a multiple of k and k is
				// a power of two, so the expected totals are exact in float64.
				wantMsgs := stats.MsgsPerStep * float64(nt) * 4
				wantBytes := stats.BytesPerStep * float64(nt) * 4
				if wantMsgs <= 0 {
					t.Fatalf("%s/%s k=%d: model predicts no traffic", model, mode, k)
				}
				if got := float64(total.StepMsgs); got != wantMsgs {
					t.Errorf("%s/%s k=%d: measured %v msgs, model predicts %v",
						model, mode, k, got, wantMsgs)
				}
				if got := float64(total.StepBytes); got != wantBytes {
					t.Errorf("%s/%s k=%d: measured %v bytes, model predicts %v",
						model, mode, k, got, wantBytes)
				}
				// The expected totals must themselves be integral — a
				// fractional product would mean the exactness setup
				// (nt multiple of k) is broken, not the counters.
				if math.Trunc(wantMsgs) != wantMsgs || math.Trunc(wantBytes) != wantBytes {
					t.Fatalf("%s/%s k=%d: non-integral expectation msgs=%v bytes=%v",
						model, mode, k, wantMsgs, wantBytes)
				}
				// Tiled plans hoist the time-invariant parameter exchanges
				// (the shell recompute reads them in the ghost region); they
				// must be classified as preamble, never as steady state.
				if effK > 1 && total.PreambleMsgs <= 0 {
					t.Errorf("%s/%s k=%d: expected hoisted preamble exchanges to be classified separately",
						model, mode, k)
				}
			}
		}
	}
}

// Serial runs must record no communication at all.
func TestObsTrafficSerialZero(t *testing.T) {
	obs.EnableMetrics()
	defer func() {
		obs.DisableAll()
		obs.Reset()
	}()
	obs.Reset()
	m, err := Acoustic(Config{Shape: []int{32, 32}, SpaceOrder: 4, NBL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, nil, RunConfig{NT: 4}); err != nil {
		t.Fatal(err)
	}
	total := obs.Snapshot().Total
	if total.StepMsgs != 0 || total.StepBytes != 0 || total.PreambleMsgs != 0 {
		t.Fatalf("serial run recorded traffic: %+v", total)
	}
	if total.SteadySteps != 4 {
		t.Errorf("steady steps = %d, want 4", total.SteadySteps)
	}
}
