package propagators

import (
	"fmt"
	"math"

	"devigo/internal/checkpoint"
	"devigo/internal/core"
	"devigo/internal/field"
	"devigo/internal/mpi"
	"devigo/internal/opcache"
	"devigo/internal/sparse"
)

// RunConfig drives a forward simulation of a model.
type RunConfig struct {
	// NT is the number of timesteps; if 0, Time (in simulation units)
	// divided by the critical dt decides.
	NT int
	// Time is the simulated duration used when NT == 0.
	Time float64
	// DT overrides the critical timestep (0 keeps CriticalDt).
	DT float64
	// F0 is the Ricker peak frequency (default derived from the grid).
	F0 float64
	// NReceivers is the receiver line length (0 disables receivers).
	NReceivers int
	// ReceiverCoords overrides the default ReceiverLine placement; when
	// set, NReceivers is ignored.
	ReceiverCoords [][]float64
	// SourceCoords overrides the default centre source.
	SourceCoords []float64
	// Wavelet overrides the Ricker source signature (one amplitude per
	// timestep; shorter slices are zero-extended).
	Wavelet []float32
	// Checkpoint, when non-nil, snapshots the model's wavefields every
	// Checkpoint.Interval steps during the run — the forward half of a
	// checkpointed adjoint/gradient computation.
	Checkpoint *checkpoint.Store
	// Workers / TileRows forward to the executor.
	Workers  int
	TileRows int
	// ForkJoin forces the legacy per-call goroutine dispatch instead of
	// the persistent worker pool (core.Options.ForkJoin).
	ForkJoin bool
	// TimeTile requests the halo-exchange interval k (deep halos exchanged
	// once every k steps, bit-exact vs k=1); 0 consults DEVIGO_TIME_TILE.
	TimeTile int
	// Engine selects the execution engine ("" = core default).
	Engine string
	// Autotune selects the self-configuration policy forwarded to
	// core.ApplyOpts.Autotune: "model", "search" or "off" ("" consults
	// DEVIGO_AUTOTUNE).
	Autotune string
	// Cache attaches a compiled-operator cache (core.Options.Cache):
	// kernel compilation and autotune decisions are shared across runs
	// with the same schedule key. Nil compiles privately.
	Cache *opcache.Cache
}

// RunResult carries the outputs of a forward run.
type RunResult struct {
	// NT is the executed step count and DT the timestep used.
	NT int
	DT float64
	// Receivers holds the recorded traces, NT x NReceivers.
	Receivers [][]float64
	// Norm is the L2 norm of the first wavefield's final state over the
	// global domain (all-reduced under DMP) — the cross-run checksum.
	Norm float64
	// Perf reports the operator's section timings.
	Perf core.Perf
	// Op exposes the compiled operator (generated code, schedule).
	Op *core.Operator
}

// Run compiles the model into an operator and executes a forward
// simulation with a Ricker point source and an optional receiver line.
// ctx may be nil (serial) or carry one rank of an MPI world.
func Run(m *Model, ctx *core.Context, rc RunConfig) (*RunResult, error) {
	dt := m.CriticalDt
	if rc.DT > 0 {
		dt = rc.DT
	}
	nt := rc.NT
	if nt == 0 {
		if rc.Time <= 0 {
			return nil, fmt.Errorf("propagators: RunConfig needs NT or Time")
		}
		nt = int(rc.Time/dt) + 1
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, ctx,
		&core.Options{Name: m.Name, Workers: rc.Workers, TileRows: rc.TileRows,
			ForkJoin: rc.ForkJoin, TimeTile: rc.TimeTile, Engine: rc.Engine, Cache: rc.Cache})
	if err != nil {
		return nil, err
	}

	srcs, err := buildSources(m, &rc, dt, nt)
	if err != nil {
		return nil, err
	}

	res := &RunResult{NT: nt, DT: dt, Op: op}
	if rc.Checkpoint != nil {
		if ctx != nil && ctx.Comm != nil {
			rc.Checkpoint.Rank = ctx.Comm.Rank()
		}
		rc.Checkpoint.SaveIfDue(0)
	}
	postStep := func(t int) {
		srcs.inject(m, t, op.InjectDepth())
		if srcs.rec != nil {
			res.Receivers = append(res.Receivers,
				srcs.rec.Interpolate(m.Fields[m.WaveFields[0]], t+1, commOf(ctx)))
		}
		if rc.Checkpoint != nil {
			rc.Checkpoint.SaveIfDue(t + 1)
		}
	}
	if err := op.Apply(&core.ApplyOpts{
		TimeM:    0,
		TimeN:    nt - 1,
		Syms:     map[string]float64{"dt": dt},
		PostStep: postStep,
		Autotune: rc.Autotune,
	}); err != nil {
		return nil, err
	}
	res.Perf = op.Report()
	res.Norm = fieldNorm(m, ctx, nt)
	return res, nil
}

// sourceSetup bundles the sparse source/receiver machinery of a run so
// the checkpointed reverse sweep can replay the forward integration
// bit-exactly (same wavelet, same injection scale, same coordinates).
type sourceSetup struct {
	src     *sparse.SparseFunction
	rec     *sparse.SparseFunction
	wavelet []float32
	scale   float32
}

// buildSources resolves the source/receiver configuration of a run.
func buildSources(m *Model, rc *RunConfig, dt float64, nt int) (*sourceSetup, error) {
	srcCoords := rc.SourceCoords
	if srcCoords == nil {
		srcCoords = CenterSource(m.Grid)
	}
	src, err := sparse.New("src", m.Grid, [][]float64{srcCoords})
	if err != nil {
		return nil, err
	}
	wavelet := rc.Wavelet
	if wavelet == nil {
		f0 := rc.F0
		if f0 == 0 {
			// Aim for ~8 points per wavelength: with the CFL relation
			// dt_c = C*h/v, v/h = C/dt_c, so f0 = (C/8)/dt_c ~ 0.05/dt_c.
			f0 = 0.05 / m.CriticalDt
		}
		t0 := 1.5 / f0
		wavelet = sparse.RickerWavelet(f0, t0, dt, nt)
	}

	var rec *sparse.SparseFunction
	switch {
	case rc.ReceiverCoords != nil:
		rec, err = sparse.New("rec", m.Grid, rc.ReceiverCoords)
	case rc.NReceivers > 1:
		rec, err = sparse.New("rec", m.Grid, ReceiverLine(m.Grid, rc.NReceivers))
	}
	if err != nil {
		return nil, err
	}
	return &sourceSetup{src: src, rec: rec, wavelet: wavelet, scale: injectionScale(m, dt)}, nil
}

// injectionScale is the source scaling convention: second-order-in-time
// models inject dt^2/m (Devito convention); first-order systems inject dt.
func injectionScale(m *Model, dt float64) float32 {
	first := m.Fields[m.WaveFields[0]]
	if len(first.Bufs) == 3 {
		// dt^2 / m with the homogeneous m of the model builders.
		mval := m.Fields["m"].AtDomain(0, make([]int, m.Grid.NDims())...)
		return float32(dt * dt / float64(mval))
	}
	return float32(dt)
}

// inject adds the step-t source sample into the freshly written buffer
// t+1 of every source field. depth mirrors the injection into the ghost
// region (core.Operator.InjectDepth) so time-tiled shell recompute
// observes neighbour injections bit-exactly; nil injects owned points
// only, the classic k=1 behaviour.
func (s *sourceSetup) inject(m *Model, t int, depth []int) {
	var amp float32
	if t >= 0 && t < len(s.wavelet) {
		amp = s.wavelet[t]
	}
	val := []float32{amp * s.scale}
	for _, fname := range m.SourceFields {
		_ = s.src.InjectDeep(m.Fields[fname], t+1, val, depth)
	}
}

// commOf extracts the communicator of a context (nil when serial).
func commOf(ctx *core.Context) *mpi.Comm {
	if ctx == nil {
		return nil
	}
	return ctx.Comm
}

// fieldNorm computes the global L2 norm of the first wavefield at time
// buffer t.
func fieldNorm(m *Model, ctx *core.Context, t int) float64 {
	return normOf(m.Fields[m.WaveFields[0]], ctx, t)
}

// normOf computes the global L2 norm of a field's DOMAIN at time buffer t
// (all-reduced under DMP).
func normOf(f *field.Function, ctx *core.Context, t int) float64 {
	dom := f.DomainRegion()
	tmp := make([]float32, dom.Size())
	f.Buf(t).Pack(dom, tmp)
	sum := 0.0
	for _, v := range tmp {
		sum += float64(v) * float64(v)
	}
	if ctx != nil && ctx.Comm != nil && ctx.Comm.Size() > 1 {
		sum = ctx.Comm.AllreduceScalar(sum, addOp)
	}
	return math.Sqrt(sum)
}

func addOp(a, b float64) float64 { return a + b }

// Build constructs a model by name — the dispatch used by the CLI tools
// and benchmarks.
func Build(name string, cfg Config) (*Model, error) {
	switch name {
	case "acoustic":
		return Acoustic(cfg)
	case "tti":
		return TTI(cfg)
	case "elastic":
		return Elastic(cfg)
	case "viscoelastic":
		return Viscoelastic(cfg)
	}
	return nil, fmt.Errorf("propagators: unknown model %q", name)
}

// ModelNames lists the four evaluated kernels in paper order.
func ModelNames() []string {
	return []string{"acoustic", "elastic", "tti", "viscoelastic"}
}
