package propagators

import (
	"fmt"
	"math"

	"devigo/internal/core"
	"devigo/internal/sparse"
)

// RunConfig drives a forward simulation of a model.
type RunConfig struct {
	// NT is the number of timesteps; if 0, Time (in simulation units)
	// divided by the critical dt decides.
	NT int
	// Time is the simulated duration used when NT == 0.
	Time float64
	// DT overrides the critical timestep (0 keeps CriticalDt).
	DT float64
	// F0 is the Ricker peak frequency (default derived from the grid).
	F0 float64
	// NReceivers is the receiver line length (0 disables receivers).
	NReceivers int
	// SourceCoords overrides the default centre source.
	SourceCoords []float64
	// Workers / TileRows forward to the executor.
	Workers  int
	TileRows int
	// Engine selects the execution engine ("" = core default).
	Engine string
}

// RunResult carries the outputs of a forward run.
type RunResult struct {
	// NT is the executed step count and DT the timestep used.
	NT int
	DT float64
	// Receivers holds the recorded traces, NT x NReceivers.
	Receivers [][]float64
	// Norm is the L2 norm of the first wavefield's final state over the
	// global domain (all-reduced under DMP) — the cross-run checksum.
	Norm float64
	// Perf reports the operator's section timings.
	Perf core.Perf
	// Op exposes the compiled operator (generated code, schedule).
	Op *core.Operator
}

// Run compiles the model into an operator and executes a forward
// simulation with a Ricker point source and an optional receiver line.
// ctx may be nil (serial) or carry one rank of an MPI world.
func Run(m *Model, ctx *core.Context, rc RunConfig) (*RunResult, error) {
	dt := m.CriticalDt
	if rc.DT > 0 {
		dt = rc.DT
	}
	nt := rc.NT
	if nt == 0 {
		if rc.Time <= 0 {
			return nil, fmt.Errorf("propagators: RunConfig needs NT or Time")
		}
		nt = int(rc.Time/dt) + 1
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, ctx,
		&core.Options{Name: m.Name, Workers: rc.Workers, TileRows: rc.TileRows, Engine: rc.Engine})
	if err != nil {
		return nil, err
	}

	// Source setup.
	srcCoords := rc.SourceCoords
	if srcCoords == nil {
		srcCoords = CenterSource(m.Grid)
	}
	src, err := sparse.New("src", m.Grid, [][]float64{srcCoords})
	if err != nil {
		return nil, err
	}
	f0 := rc.F0
	if f0 == 0 {
		// Aim for ~8 points per wavelength: with the CFL relation
		// dt_c = C*h/v, v/h = C/dt_c, so f0 = (C/8)/dt_c ~ 0.05/dt_c.
		f0 = 0.05 / m.CriticalDt
	}
	t0 := 1.5 / f0
	wavelet := sparse.RickerWavelet(f0, t0, dt, nt)

	// Injection scale: second-order-in-time models inject dt^2/m (Devito
	// convention); first-order systems inject dt.
	first := m.Fields[m.WaveFields[0]]
	scale := float32(dt)
	if len(first.Bufs) == 3 {
		// dt^2 / m with the homogeneous m of the model builders.
		mval := m.Fields["m"].AtDomain(0, make([]int, m.Grid.NDims())...)
		scale = float32(dt * dt / float64(mval))
	}

	var rec *sparse.SparseFunction
	if rc.NReceivers > 1 {
		rec, err = sparse.New("rec", m.Grid, ReceiverLine(m.Grid, rc.NReceivers))
		if err != nil {
			return nil, err
		}
	}

	res := &RunResult{NT: nt, DT: dt, Op: op}
	postStep := func(t int) {
		val := []float32{wavelet[tIndex(t, nt)] * scale}
		for _, fname := range m.SourceFields {
			f := m.Fields[fname]
			// Inject into the freshly written buffer.
			_ = src.Inject(f, t+1, val)
		}
		if rec != nil {
			var trace []float64
			if ctx != nil && ctx.Comm != nil {
				trace = rec.Interpolate(m.Fields[m.WaveFields[0]], t+1, ctx.Comm)
			} else {
				trace = rec.Interpolate(m.Fields[m.WaveFields[0]], t+1, nil)
			}
			res.Receivers = append(res.Receivers, trace)
		}
	}
	if err := op.Apply(&core.ApplyOpts{
		TimeM:    0,
		TimeN:    nt - 1,
		Syms:     map[string]float64{"dt": dt},
		PostStep: postStep,
	}); err != nil {
		return nil, err
	}
	res.Perf = op.Report()
	res.Norm = fieldNorm(m, ctx, nt)
	return res, nil
}

func tIndex(t, nt int) int {
	if t < 0 {
		return 0
	}
	if t >= nt {
		return nt - 1
	}
	return t
}

// fieldNorm computes the global L2 norm of the first wavefield at the
// final time buffer.
func fieldNorm(m *Model, ctx *core.Context, nt int) float64 {
	f := m.Fields[m.WaveFields[0]]
	dom := f.DomainRegion()
	tmp := make([]float32, dom.Size())
	f.Buf(nt).Pack(dom, tmp)
	sum := 0.0
	for _, v := range tmp {
		sum += float64(v) * float64(v)
	}
	if ctx != nil && ctx.Comm != nil && ctx.Comm.Size() > 1 {
		sum = ctx.Comm.AllreduceScalar(sum, addOp)
	}
	return math.Sqrt(sum)
}

func addOp(a, b float64) float64 { return a + b }

// Build constructs a model by name — the dispatch used by the CLI tools
// and benchmarks.
func Build(name string, cfg Config) (*Model, error) {
	switch name {
	case "acoustic":
		return Acoustic(cfg)
	case "tti":
		return TTI(cfg)
	case "elastic":
		return Elastic(cfg)
	case "viscoelastic":
		return Viscoelastic(cfg)
	}
	return nil, fmt.Errorf("propagators: unknown model %q", name)
}

// ModelNames lists the four evaluated kernels in paper order.
func ModelNames() []string {
	return []string{"acoustic", "elastic", "tti", "viscoelastic"}
}
