package propagators

import (
	"devigo/internal/field"
	"devigo/internal/symbolic"
)

// Acoustic builds the isotropic acoustic wave propagator (paper Section
// IV-B1, Appendix A1):
//
//	m * u.dt2 - laplace(u) + damp * u.dt = 0
//
// solved for u.forward. The working set is 5 fields: u (3 time buffers),
// m (squared slowness) and damp.
func Acoustic(cfg Config) (*Model, error) {
	c := cfg.withDefaults()
	if err := validateShape(&c, 4); err != nil {
		return nil, err
	}
	g, err := makeGrid(&c)
	if err != nil {
		return nil, err
	}
	so := c.SpaceOrder
	u, err := field.NewTimeFunction("u", g, so, 2, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	m, err := field.NewFunction("m", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	damp, err := field.NewFunction("damp", g, so, fieldCfg(&c, nil))
	if err != nil {
		return nil, err
	}
	// Homogeneous squared slowness and the absorbing profile.
	fillConst(m, float32(1/(c.Velocity*c.Velocity)))
	dampField(damp, c.NBL, 0.1)

	nd := g.NDims()
	ut := symbolic.At(u.Ref)
	pde := symbolic.NewAdd(
		symbolic.NewMul(symbolic.At(m.Ref), symbolic.Dt2(ut, 2)),
		symbolic.Neg(symbolic.Laplace(ut, nd, so)),
		symbolic.NewMul(symbolic.At(damp.Ref), symbolic.Dt(ut, 2)),
	)
	sol, err := symbolic.Solve(symbolic.Eq{LHS: pde, RHS: symbolic.Int(0)}, symbolic.ForwardStencil(u.Ref))
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:       "acoustic",
		Grid:       g,
		SpaceOrder: so,
		Eqs: []symbolic.Eq{
			{LHS: symbolic.ForwardStencil(u.Ref), RHS: sol},
		},
		Fields: map[string]*field.Function{
			"u": &u.Function, "m": m, "damp": damp,
		},
		WaveFields:       []string{"u"},
		SourceFields:     []string{"u"},
		CriticalDt:       criticalDt(g, c.Velocity),
		WorkingSetFields: 5,
		Cfg:              c,
	}, nil
}
