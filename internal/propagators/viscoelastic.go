package propagators

import (
	"fmt"

	"devigo/internal/field"
	"devigo/internal/symbolic"
)

// Viscoelastic builds the visco-elastic propagator (paper Section IV-B4,
// Appendix A4, after Robertsson et al.): the elastic velocity–stress
// system augmented with one memory variable per stress component for a
// single standard-linear-solid relaxation mechanism,
//
//	v_i.dt    = b * d_j sigma_ij - damp*v_i
//	sigma_ii.dt = ptt*div(v) + stt*(d_i v_i - div(v)) + r_ii - damp*sigma_ii
//	sigma_ij.dt = (stt/2)*(d_i v_j + d_j v_i) + r_ij - damp*sigma_ij
//	r_ii.dt   = -its*( r_ii + (ptt - stt)*div(v) + stt*d_i v_i )
//	r_ij.dt   = -its*( r_ij + (stt/2)*(d_i v_j + d_j v_i) )
//
// with ptt = pi*tau_p_eps/tau_sigma, stt = 2*mu*tau_s_eps/tau_sigma and
// its = 1/tau_sigma precomputed as parameter fields. In 3-D this is 15
// stencil updates and a 35-field working set (the paper quotes 36),
// the highest memory footprint of the four models.
func Viscoelastic(cfg Config) (*Model, error) {
	c := cfg.withDefaults()
	if err := validateShape(&c, 4); err != nil {
		return nil, err
	}
	g, err := makeGrid(&c)
	if err != nil {
		return nil, err
	}
	so := c.SpaceOrder
	nd := g.NDims()
	if nd < 2 {
		return nil, fmt.Errorf("propagators: viscoelastic needs 2 or 3 dimensions")
	}

	fields := map[string]*field.Function{}
	vs := make([]*field.TimeFunction, nd)
	for d := 0; d < nd; d++ {
		stg := make([]int, nd)
		stg[d] = 1
		v, err := field.NewTimeFunction("v"+comp[d], g, so, 1, fieldCfg(&c, stg))
		if err != nil {
			return nil, err
		}
		vs[d] = v
		fields[v.Name] = &v.Function
	}
	taus := make([][]*field.TimeFunction, nd)
	rs := make([][]*field.TimeFunction, nd)
	for d := range taus {
		taus[d] = make([]*field.TimeFunction, nd)
		rs[d] = make([]*field.TimeFunction, nd)
	}
	for d := 0; d < nd; d++ {
		for e := d; e < nd; e++ {
			stg := make([]int, nd)
			if d != e {
				stg[d], stg[e] = 1, 1
			}
			tf, err := field.NewTimeFunction("t"+comp[d]+comp[e], g, so, 1, fieldCfg(&c, stg))
			if err != nil {
				return nil, err
			}
			taus[d][e], taus[e][d] = tf, tf
			fields[tf.Name] = &tf.Function
			rf, err := field.NewTimeFunction("r"+comp[d]+comp[e], g, so, 1, fieldCfg(&c, stg))
			if err != nil {
				return nil, err
			}
			rs[d][e], rs[e][d] = rf, rf
			fields[rf.Name] = &rf.Function
		}
	}
	newF := func(name string) (*field.Function, error) {
		f, err := field.NewFunction(name, g, so, fieldCfg(&c, nil))
		if err != nil {
			return nil, err
		}
		fields[name] = f
		return f, nil
	}
	b, err := newF("b")
	if err != nil {
		return nil, err
	}
	damp, err := newF("damp")
	if err != nil {
		return nil, err
	}
	ptt, err := newF("ptt")
	if err != nil {
		return nil, err
	}
	stt, err := newF("stt")
	if err != nil {
		return nil, err
	}
	its, err := newF("its")
	if err != nil {
		return nil, err
	}

	// Medium: homogeneous with modest attenuation; the stress relaxation
	// time is kept well above the timestep for explicit stability.
	vp := c.Velocity
	vsSpeed := vp / 1.7320508075688772
	rho := 1.0
	muV := rho * vsSpeed * vsSpeed
	piV := rho * vp * vp
	dtc := criticalDt(g, vp)
	tauSigma := 40 * dtc
	tauPe, tauSe := 1.06, 1.09 // strain/stress relaxation ratios (Q ~ 30)
	fillConst(b, float32(1/rho))
	dampField(damp, c.NBL, 0.05)
	fillConst(ptt, float32(piV*tauPe))
	fillConst(stt, float32(2*muV*tauSe))
	fillConst(its, float32(1/tauSigma))
	dampF := symbolic.At(damp.Ref)

	var eqs []symbolic.Eq
	var waveFields []string
	solveFwd := func(tf *field.TimeFunction, rhs symbolic.Expr) error {
		sol, err := symbolic.Solve(symbolic.Eq{LHS: symbolic.Dt(symbolic.At(tf.Ref), 1), RHS: rhs},
			symbolic.ForwardStencil(tf.Ref))
		if err != nil {
			return err
		}
		eqs = append(eqs, symbolic.Eq{LHS: symbolic.ForwardStencil(tf.Ref), RHS: sol})
		waveFields = append(waveFields, tf.Name)
		return nil
	}

	// Velocities.
	for d := 0; d < nd; d++ {
		v := vs[d]
		var divT []symbolic.Expr
		for e := 0; e < nd; e++ {
			tde := taus[d][e]
			divT = append(divT, dStag(symbolic.At(tde.Ref), e, so, v.Stagger[e], tde.Stagger[e]))
		}
		rhs := symbolic.Sub(
			symbolic.NewMul(symbolic.At(b.Ref), symbolic.NewAdd(divT...)),
			symbolic.NewMul(dampF, symbolic.At(v.Ref)),
		)
		if err := solveFwd(v, rhs); err != nil {
			return nil, err
		}
	}

	divV := func(target *field.TimeFunction) symbolic.Expr {
		var terms []symbolic.Expr
		for e := 0; e < nd; e++ {
			terms = append(terms, dStag(symbolic.ForwardStencil(vs[e].Ref), e, so,
				target.Stagger[e], vs[e].Stagger[e]))
		}
		return symbolic.NewAdd(terms...)
	}
	strain := func(target *field.TimeFunction, d, e int) symbolic.Expr {
		return symbolic.NewAdd(
			dStag(symbolic.ForwardStencil(vs[d].Ref), e, so, target.Stagger[e], vs[d].Stagger[e]),
			dStag(symbolic.ForwardStencil(vs[e].Ref), d, so, target.Stagger[d], vs[e].Stagger[d]),
		)
	}

	// Memory variables (read v[t+1], so they form the second cluster).
	for d := 0; d < nd; d++ {
		rdd := rs[d][d]
		ddv := dStag(symbolic.ForwardStencil(vs[d].Ref), d, so, rdd.Stagger[d], vs[d].Stagger[d])
		inner := symbolic.NewAdd(
			symbolic.At(rdd.Ref),
			symbolic.NewMul(symbolic.Sub(symbolic.At(ptt.Ref), symbolic.At(stt.Ref)), divV(rdd)),
			symbolic.NewMul(symbolic.At(stt.Ref), ddv),
		)
		rhs := symbolic.Neg(symbolic.NewMul(symbolic.At(its.Ref), inner))
		if err := solveFwd(rdd, rhs); err != nil {
			return nil, err
		}
	}
	for d := 0; d < nd; d++ {
		for e := d + 1; e < nd; e++ {
			rde := rs[d][e]
			inner := symbolic.NewAdd(
				symbolic.At(rde.Ref),
				symbolic.NewMul(symbolic.Rat(1, 2), symbolic.At(stt.Ref), strain(rde, d, e)),
			)
			rhs := symbolic.Neg(symbolic.NewMul(symbolic.At(its.Ref), inner))
			if err := solveFwd(rde, rhs); err != nil {
				return nil, err
			}
		}
	}

	// Stresses (read v[t+1] and r[t+1]).
	for d := 0; d < nd; d++ {
		tdd := taus[d][d]
		ddv := dStag(symbolic.ForwardStencil(vs[d].Ref), d, so, tdd.Stagger[d], vs[d].Stagger[d])
		rhs := symbolic.Sub(
			symbolic.NewAdd(
				symbolic.NewMul(symbolic.At(ptt.Ref), divV(tdd)),
				symbolic.NewMul(symbolic.At(stt.Ref), symbolic.Sub(ddv, divV(tdd))),
				symbolic.ForwardStencil(rs[d][d].Ref),
			),
			symbolic.NewMul(dampF, symbolic.At(tdd.Ref)),
		)
		if err := solveFwd(tdd, rhs); err != nil {
			return nil, err
		}
	}
	for d := 0; d < nd; d++ {
		for e := d + 1; e < nd; e++ {
			tde := taus[d][e]
			rhs := symbolic.Sub(
				symbolic.NewAdd(
					symbolic.NewMul(symbolic.Rat(1, 2), symbolic.At(stt.Ref), strain(tde, d, e)),
					symbolic.ForwardStencil(rs[d][e].Ref),
				),
				symbolic.NewMul(dampF, symbolic.At(tde.Ref)),
			)
			if err := solveFwd(tde, rhs); err != nil {
				return nil, err
			}
		}
	}

	nTau := nd * (nd + 1) / 2
	var srcFields []string
	for d := 0; d < nd; d++ {
		srcFields = append(srcFields, taus[d][d].Name)
	}
	return &Model{
		Name:             "viscoelastic",
		Grid:             g,
		SpaceOrder:       so,
		Eqs:              eqs,
		Fields:           fields,
		WaveFields:       waveFields,
		SourceFields:     srcFields,
		CriticalDt:       dtc * 0.85,
		WorkingSetFields: 2*(nd+2*nTau) + 5,
		Cfg:              c,
	}, nil
}
