package propagators

import (
	"fmt"
	"math"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"

	"devigo/internal/core"
	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/opcache"
	"devigo/internal/shotsched"
)

// Shot describes one shot of a multi-shot FWI survey: the per-shot source
// geometry and (optionally) its observed data. Zero fields inherit the
// survey-wide GradientConfig defaults.
type Shot struct {
	// SourceCoords places this shot's source (nil keeps the base config's
	// placement, which defaults to the model centre).
	SourceCoords []float64
	// Wavelet overrides the source signature for this shot.
	Wavelet []float32
	// ObsData is this shot's observed data (NT x nrec); when set the
	// residual d_syn - d_obs drives the adjoint source and the misfit,
	// otherwise the synthetics themselves are back-propagated.
	ObsData [][]float64
}

// ShotsConfig drives a shot-parallel gradient survey: N independent
// RunGradient solves dispatched by the shot scheduler, stacked into one
// gradient.
type ShotsConfig struct {
	// Gradient is the survey-wide base configuration; each Shot overrides
	// its source geometry and observed data.
	Gradient GradientConfig
	// Shots lists the survey's shots (at least one).
	Shots []Shot
	// Workers is the number of shots in flight at once; 0 consults
	// DEVIGO_SHOT_WORKERS, then defaults to 1. The stacked gradient is
	// bit-identical for every worker count.
	Workers int
	// Ranks is the MPI world size per shot: each shot solves in its own
	// in-process world of this many ranks. <= 1 runs shots serially
	// (no decomposition).
	Ranks int
	// Mode is the halo-exchange pattern of the per-shot worlds ("basic",
	// "diag", "full"; "" defaults to basic). Ignored when Ranks <= 1.
	Mode string
	// Cache is the compiled-operator cache shared by every shot. Nil
	// consults DEVIGO_OPCACHE: the service default is a fresh cache per
	// survey (each of the three gradient schedules compiles exactly
	// once), DEVIGO_OPCACHE=off compiles per shot.
	Cache *opcache.Cache
}

// ShotResult is one shot's accounting entry in the shot log.
type ShotResult struct {
	// Shot is the shot index.
	Shot int `json:"shot"`
	// Misfit is the shot's data misfit 0.5*sum(residual^2) over all
	// receivers and timesteps (residual = synthetics when the shot has no
	// observed data).
	Misfit float64 `json:"misfit"`
	// GradNorm is the global L2 norm of this shot's own gradient.
	GradNorm float64 `json:"grad_norm"`
	// RelErr is the shot's adjoint dot-product identity gap.
	RelErr float64 `json:"rel_err"`
	// Seconds is the shot's wall time inside its worker.
	Seconds float64 `json:"seconds"`
}

// ShotsResult carries the stacked outcome of a survey.
type ShotsResult struct {
	// Shots holds the per-shot log in ascending shot order.
	Shots []ShotResult
	// Gradient is the stacked gradient over the full global grid in
	// row-major order (shot gradients summed in ascending shot order).
	Gradient []float32
	// Shape is the global grid shape of Gradient.
	Shape []int
	// GradNorm is the L2 norm of the stacked gradient.
	GradNorm float64
	// Misfit is the total misfit, summed over shots.
	Misfit float64
	// Workers is the effective scheduler pool size.
	Workers int
	// CacheStats snapshots the operator cache after the survey (zero when
	// the cache was disabled). Misses is the number of unique schedules
	// compiled; with a shared cache a survey of N shots sees
	// Hits/(Hits+Misses) == (N-1)/N.
	CacheStats opcache.Stats
}

// shotOutcome is the per-shot payload streamed from a worker to the
// reducer.
type shotOutcome struct {
	grad     []float32
	misfit   float64
	gradNorm float64
	relErr   float64
}

// RunShots runs a shot-parallel FWI gradient survey: model names the
// propagator (Build dispatch), cfg the shared grid/velocity configuration
// (its Decomp/Rank must be unset — RunShots owns the per-world
// decomposition), and sc the survey. Each shot builds a fresh Model,
// solves a checkpointed forward+adjoint gradient in its own in-process
// world, and streams its gradient to the reducer, which stacks in
// ascending shot order — making the result bit-identical to a sequential
// loop over RunGradient for any Workers setting. Compiled kernels and
// autotune decisions are shared across shots through the operator cache.
func RunShots(model string, cfg Config, sc ShotsConfig) (*ShotsResult, error) {
	n := len(sc.Shots)
	if n == 0 {
		return nil, fmt.Errorf("propagators: ShotsConfig needs at least one shot")
	}
	if cfg.Decomp != nil || cfg.Rank != 0 {
		return nil, fmt.Errorf("propagators: RunShots owns the decomposition; leave Config.Decomp/Rank unset")
	}
	cache := sc.Cache
	if cache == nil {
		var err error
		if cache, err = opcache.FromEnv(); err != nil {
			return nil, err
		}
	}
	workers, err := shotsched.ResolveWorkers(sc.Workers)
	if err != nil {
		return nil, err
	}
	ranks := sc.Ranks
	mode := halo.ModeBasic
	if ranks > 1 {
		ms := sc.Mode
		if ms == "" {
			ms = "basic"
		}
		if mode, err = halo.ParseMode(ms); err != nil {
			return nil, err
		}
	}

	shape := append([]int(nil), cfg.Shape...)
	total := 1
	for _, s := range shape {
		total *= s
	}

	// Guard against oversubscription: shots in flight × ranks per shot ×
	// per-rank compute workers was silently unbounded. The shot and rank
	// tiers honour explicit requests (and results are bit-exact for any
	// worker count at every tier), so the clamp lands on the per-rank
	// compute team: it shrinks until the product fits the host's cores,
	// with the decision logged. computeWorkers stays 0 (operator default)
	// when no clamp is needed.
	computeWorkers := resolveComputeWorkers(sc.Gradient.Workers)
	if computeWorkers > 1 {
		lanes := workers
		if ranks > 1 {
			lanes *= ranks
		}
		if clamped := shotsched.ClampWorkers(computeWorkers, lanes, goruntime.NumCPU()); clamped != computeWorkers {
			fmt.Fprintf(os.Stderr,
				"devigo: clamping per-rank compute workers %d -> %d (%d shots in flight x %d ranks on %d cores)\n",
				computeWorkers, clamped, workers, max(ranks, 1), goruntime.NumCPU())
			computeWorkers = clamped
		}
	}

	fn := func(shot int) (*shotOutcome, error) {
		gc := sc.Gradient
		gc.Cache = cache
		if computeWorkers > 0 {
			gc.Workers = computeWorkers
		}
		s := sc.Shots[shot]
		if s.SourceCoords != nil {
			gc.SourceCoords = s.SourceCoords
		}
		if s.Wavelet != nil {
			gc.Wavelet = s.Wavelet
		}
		if s.ObsData != nil {
			gc.ObsData = s.ObsData
		}
		out := &shotOutcome{grad: make([]float32, total)}
		if ranks <= 1 {
			m, err := Build(model, cfg)
			if err != nil {
				return nil, err
			}
			res, err := RunGradient(m, nil, gc)
			if err != nil {
				return nil, err
			}
			scatterOwned(out.grad, shape, res.Gradient, 0)
			out.misfit = misfitOf(res.Receivers, s.ObsData)
			out.gradNorm, out.relErr = res.GradNorm, res.RelErr
			return out, nil
		}
		errs := make([]error, ranks)
		w := mpi.NewWorld(ranks)
		werr := w.Run(func(c *mpi.Comm) {
			g, err := grid.New(shape, cfg.Extent)
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			dec, err := grid.NewDecomposition(g, c.Size(), nil)
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			lcfg := cfg
			lcfg.Decomp = dec
			lcfg.Rank = c.Rank()
			m, err := Build(model, lcfg)
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
			res, err := RunGradient(m, ctx, gc)
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			// Ranks own disjoint boxes of the global gradient, so the
			// concurrent scatters never touch the same element.
			scatterOwned(out.grad, shape, res.Gradient, 0)
			if c.Rank() == 0 {
				out.misfit = misfitOf(res.Receivers, s.ObsData)
				out.gradNorm, out.relErr = res.GradNorm, res.RelErr
			}
		})
		if werr != nil {
			return nil, werr
		}
		for r, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("rank %d: %w", r, err)
			}
		}
		return out, nil
	}

	stack := make([]float32, total)
	shots := make([]ShotResult, 0, n)
	stats, err := shotsched.Run(n, shotsched.Config{Workers: workers}, fn,
		func(shot int, o *shotOutcome) error {
			for i, v := range o.grad {
				stack[i] += v
			}
			shots = append(shots, ShotResult{
				Shot: shot, Misfit: o.misfit, GradNorm: o.gradNorm, RelErr: o.relErr,
			})
			return nil
		})
	if err != nil {
		return nil, err
	}
	for i := range stats {
		shots[i].Seconds = stats[i].Seconds
	}

	res := &ShotsResult{Shots: shots, Gradient: stack, Shape: shape, Workers: workers}
	sum := 0.0
	for _, v := range stack {
		sum += float64(v) * float64(v)
	}
	res.GradNorm = math.Sqrt(sum)
	for _, s := range shots {
		res.Misfit += s.Misfit
	}
	if cache != nil {
		res.CacheStats = cache.Stats()
	}
	return res, nil
}

// resolveComputeWorkers mirrors the operator's per-rank worker
// resolution for the oversubscription guard: explicit
// GradientConfig.Workers, then $DEVIGO_WORKERS, then 0 (operator
// default). A malformed environment value counts as 0 here and is
// rejected with a proper error when the operator is built.
func resolveComputeWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	if s := strings.TrimSpace(os.Getenv(core.WorkersEnvVar)); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return 0
}

// scatterOwned copies a field's owned DOMAIN at time buffer t into the
// dense row-major global array at the field's origin. Under a
// decomposition every rank owns a disjoint box, so concurrent scatters
// from the ranks of one world assemble the global array without overlap.
func scatterOwned(dst []float32, gshape []int, f *field.Function, t int) {
	dom := f.DomainRegion()
	tmp := make([]float32, dom.Size())
	f.Buf(t).Pack(dom, tmp)
	nd := len(gshape)
	gstr := make([]int, nd)
	s := 1
	for d := nd - 1; d >= 0; d-- {
		gstr[d] = s
		s *= gshape[d]
	}
	ls := f.LocalShape
	rowLen := ls[nd-1]
	idx := make([]int, nd)
	src := 0
	for {
		g := 0
		for d := 0; d < nd; d++ {
			g += (f.Origin[d] + idx[d]) * gstr[d]
		}
		copy(dst[g:g+rowLen], tmp[src:src+rowLen])
		src += rowLen
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < ls[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// misfitOf is the least-squares data misfit 0.5*sum(residual^2) with
// residual = synthetics - observed (or the synthetics themselves without
// observed data) — the objective whose gradient the adjoint computes.
func misfitOf(syn [][]float64, obs [][]float64) float64 {
	sum := 0.0
	for t := range syn {
		for r := range syn[t] {
			d := syn[t][r]
			if obs != nil {
				d -= obs[t][r]
			}
			sum += d * d
		}
	}
	return 0.5 * sum
}
