package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/obs"
	"devigo/internal/opcache"
)

// surveyConfig is the shared grid/velocity configuration of the shot
// tests; RunShots owns the decomposition, so Decomp/Rank stay unset.
func surveyConfig() Config {
	return Config{Shape: []int{24, 24}, SpaceOrder: 2, NBL: 0, Velocity: 1}
}

// surveyShots is a small survey with per-shot source positions.
func surveyShots() []Shot {
	return []Shot{
		{SourceCoords: []float64{8, 8}},
		{SourceCoords: []float64{12, 12}},
		{SourceCoords: []float64{16, 15}},
	}
}

func surveyGradient() GradientConfig {
	return GradientConfig{
		NT:                 8,
		Wavelet:            []float32{1, -2, 1},
		ReceiverCoords:     [][]float64{{6, 5}, {11, 9}, {15, 14}, {17, 16}},
		CheckpointInterval: 3,
	}
}

// sequentialStack is the reference the service must reproduce bit for bit:
// an explicit loop over RunGradient — fresh model, fresh operators, no
// cache, no scheduler — stacked in shot order.
func sequentialStack(t *testing.T, cfg Config, gc GradientConfig, shots []Shot) ([]float32, []float64) {
	t.Helper()
	total := 1
	for _, s := range cfg.Shape {
		total *= s
	}
	stack := make([]float32, total)
	misfits := make([]float64, 0, len(shots))
	for _, s := range shots {
		g := gc
		if s.SourceCoords != nil {
			g.SourceCoords = s.SourceCoords
		}
		if s.ObsData != nil {
			g.ObsData = s.ObsData
		}
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunGradient(m, nil, g)
		if err != nil {
			t.Fatal(err)
		}
		grad := make([]float32, total)
		scatterOwned(grad, cfg.Shape, res.Gradient, 0)
		for i, v := range grad {
			stack[i] += v
		}
		misfits = append(misfits, misfitOf(res.Receivers, s.ObsData))
	}
	return stack, misfits
}

// TestRunShotsBitExactSerial: the serial-per-shot service must reproduce
// the explicit sequential loop bit for bit — for both engines, with and
// without time tiling, at every worker count, cache on or off.
func TestRunShotsBitExactSerial(t *testing.T) {
	for _, engine := range engines() {
		for _, k := range []int{1, 4} {
			t.Run(engine+"/k="+string(rune('0'+k)), func(t *testing.T) {
				cfg := surveyConfig()
				gc := surveyGradient()
				gc.Engine = engine
				gc.TimeTile = k
				want, wantMisfits := sequentialStack(t, cfg, gc, surveyShots())
				for _, workers := range []int{1, 3} {
					res, err := RunShots("acoustic", cfg, ShotsConfig{
						Gradient: gc, Shots: surveyShots(),
						Workers: workers, Cache: opcache.New(),
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Workers != workers {
						t.Errorf("workers=%d: effective pool %d", workers, res.Workers)
					}
					for i := range want {
						if res.Gradient[i] != want[i] {
							t.Fatalf("workers=%d: stack diverges from sequential loop at %d: %v vs %v",
								workers, i, res.Gradient[i], want[i])
						}
					}
					if res.GradNorm == 0 {
						t.Fatalf("workers=%d: zero stacked gradient", workers)
					}
					for i, s := range res.Shots {
						if s.Shot != i {
							t.Fatalf("workers=%d: shot log out of order: %+v", workers, res.Shots)
						}
						if s.Misfit != wantMisfits[i] {
							t.Errorf("workers=%d: shot %d misfit %v, sequential %v",
								workers, i, s.Misfit, wantMisfits[i])
						}
						// Realistic (non-exact-arithmetic) config: the
						// identity holds to float32 rounding, like
						// TestAdjointDotProduct_Realistic.
						if s.RelErr > 2e-5 {
							t.Errorf("workers=%d: shot %d adjoint identity violated: rel %v",
								workers, i, s.RelErr)
						}
					}
				}
			})
		}
	}
}

// TestRunShotsBitExactDMP: per-shot 4-rank worlds. The cached, 2-workers
// service must match the uncached 1-worker run (a sequential compile-per-
// shot loop over the same worlds) bit for bit.
func TestRunShotsBitExactDMP(t *testing.T) {
	for _, engine := range engines() {
		for _, k := range []int{1, 4} {
			t.Run(engine+"/k="+string(rune('0'+k)), func(t *testing.T) {
				cfg := surveyConfig()
				gc := surveyGradient()
				gc.Engine = engine
				gc.TimeTile = k
				t.Setenv(opcache.EnvVar, "off")
				base, err := RunShots("acoustic", cfg, ShotsConfig{
					Gradient: gc, Shots: surveyShots(),
					Workers: 1, Ranks: 4, Mode: "diag",
				})
				if err != nil {
					t.Fatal(err)
				}
				if base.CacheStats.Misses != 0 {
					t.Fatalf("cache disabled but stats = %+v", base.CacheStats)
				}
				res, err := RunShots("acoustic", cfg, ShotsConfig{
					Gradient: gc, Shots: surveyShots(),
					Workers: 2, Ranks: 4, Mode: "diag", Cache: opcache.New(),
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range base.Gradient {
					if res.Gradient[i] != base.Gradient[i] {
						t.Fatalf("cached 2-worker stack diverges from sequential at %d: %v vs %v",
							i, res.Gradient[i], base.Gradient[i])
					}
				}
				if res.GradNorm != base.GradNorm || res.Misfit != base.Misfit {
					t.Errorf("aggregates diverge: norm %v vs %v, misfit %v vs %v",
						res.GradNorm, base.GradNorm, res.Misfit, base.Misfit)
				}
				// And the 4-rank stack must equal the serial-shot stack: the
				// imaging kernel computes identical per-point values on any
				// decomposition.
				serial, _ := sequentialStack(t, cfg, gc, surveyShots())
				for i := range serial {
					if res.Gradient[i] != serial[i] {
						t.Fatalf("4-rank stack diverges from serial at %d: %v vs %v",
							i, res.Gradient[i], serial[i])
					}
				}
			})
		}
	}
}

// TestRunShotsCacheAccounting pins the service's deterministic cache
// arithmetic: a survey of N shots compiles each of the three gradient
// schedules (forward, adjoint, imaging) exactly once — 3 misses, 3(N-1)
// hits, hit rate (N-1)/N — at any worker count, and the obs counters agree.
func TestRunShotsCacheAccounting(t *testing.T) {
	obs.EnableMetrics()
	defer func() { obs.DisableAll(); obs.Reset() }()
	obs.Reset()

	shots := append(surveyShots(), Shot{SourceCoords: []float64{18, 6}})
	n := len(shots)
	cache := opcache.New()
	res, err := RunShots("acoustic", surveyConfig(), ShotsConfig{
		Gradient: surveyGradient(), Shots: shots, Workers: 2, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	const uniqueSchedules = 3
	st := res.CacheStats
	if st.Misses != uniqueSchedules {
		t.Errorf("misses = %d, want %d (one per unique schedule)", st.Misses, uniqueSchedules)
	}
	if want := int64(uniqueSchedules * (n - 1)); st.Hits != want {
		t.Errorf("hits = %d, want %d", st.Hits, want)
	}
	if want := float64(n-1) / float64(n); st.HitRate() != want {
		t.Errorf("hit rate = %v, want (N-1)/N = %v", st.HitRate(), want)
	}

	total := obs.Snapshot().Total
	if total.OpCompiles != uniqueSchedules {
		t.Errorf("obs compile counter = %d, want %d", total.OpCompiles, uniqueSchedules)
	}
	if total.OpCacheMisses != uniqueSchedules || total.OpCacheHits != int64(uniqueSchedules*(n-1)) {
		t.Errorf("obs cache counters = %d miss / %d hit, want %d / %d",
			total.OpCacheMisses, total.OpCacheHits, uniqueSchedules, uniqueSchedules*(n-1))
	}
	if total.ShotsDone != int64(n) {
		t.Errorf("obs shots-done = %d, want %d", total.ShotsDone, n)
	}
	if total.ShotWorkers != 2 {
		t.Errorf("obs shot-workers gauge = %d, want 2", total.ShotWorkers)
	}
}

// TestRunShotsResidualMisfit: a shot observing its own synthetics has zero
// residual — zero misfit and zero gradient contribution — so the survey
// degenerates to the remaining shots.
func TestRunShotsResidualMisfit(t *testing.T) {
	cfg := surveyConfig()
	gc := surveyGradient()

	// Record shot 1's synthetics by running it alone.
	solo, err := RunShots("acoustic", cfg, ShotsConfig{
		Gradient: gc, Shots: []Shot{{SourceCoords: []float64{12, 12}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build("acoustic", cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1 := gc
	g1.SourceCoords = []float64{12, 12}
	fres, err := RunGradient(m, nil, g1)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Misfit == 0 {
		t.Fatal("degenerate survey: zero misfit without observed data")
	}

	shots := []Shot{
		{SourceCoords: []float64{8, 8}},
		{SourceCoords: []float64{12, 12}, ObsData: fres.Receivers},
	}
	res, err := RunShots("acoustic", cfg, ShotsConfig{Gradient: gc, Shots: shots})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots[1].Misfit != 0 || res.Shots[1].GradNorm != 0 {
		t.Errorf("self-observed shot: misfit %v, grad norm %v, want zero",
			res.Shots[1].Misfit, res.Shots[1].GradNorm)
	}
	if res.Shots[0].Misfit == 0 || res.Misfit != res.Shots[0].Misfit {
		t.Errorf("survey misfit %v should equal shot 0's %v", res.Misfit, res.Shots[0].Misfit)
	}
}

// TestRunShotsValidation covers the service's configuration errors.
func TestRunShotsValidation(t *testing.T) {
	cfg := surveyConfig()
	gc := surveyGradient()
	if _, err := RunShots("acoustic", cfg, ShotsConfig{Gradient: gc}); err == nil {
		t.Error("empty survey accepted")
	}
	g := grid.MustNew([]int{24, 24}, nil)
	dec, err := grid.NewDecomposition(g, 4, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Decomp = dec
	if _, err := RunShots("acoustic", bad, ShotsConfig{Gradient: gc, Shots: surveyShots()}); err == nil {
		t.Error("pre-decomposed Config accepted; RunShots owns the decomposition")
	}
	if _, err := RunShots("acoustic", cfg, ShotsConfig{
		Gradient: gc, Shots: surveyShots(), Ranks: 4, Mode: "hexagonal",
	}); err == nil {
		t.Error("unknown halo mode accepted")
	}
	t.Setenv(opcache.EnvVar, "sometimes")
	if _, err := RunShots("acoustic", cfg, ShotsConfig{Gradient: gc, Shots: surveyShots()}); err == nil {
		t.Errorf("invalid $%s accepted", opcache.EnvVar)
	}
}

// TestRunShotsRace exercises the scheduler/reducer/world machinery under
// -race via the usual short suite; the DMP variant runs concurrent worlds.
func TestRunShotsRace(t *testing.T) {
	if testing.Short() {
		// Keep the -short race pass cheap: serial shots, 3 workers.
		_, err := RunShots("acoustic", surveyConfig(), ShotsConfig{
			Gradient: surveyGradient(), Shots: surveyShots(), Workers: 3, Cache: opcache.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	_, err := RunShots("acoustic", surveyConfig(), ShotsConfig{
		Gradient: surveyGradient(), Shots: surveyShots(), Workers: 3, Ranks: 4, Cache: opcache.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunShotsRaceNative is the native engine's arm of the race pass:
// concurrent shot workers share one operator cache, so the singleflight
// compile, the per-shot Rebind of the cached native kernels (the chain
// template is shared, the field bindings are per-shot) and the strip
// executor's worker pools all run under the race detector at once.
func TestRunShotsRaceNative(t *testing.T) {
	gc := surveyGradient()
	gc.Engine = core.EngineNative
	cache := opcache.New()
	// Two passes over the same cache: the first compiles (singleflight
	// under contention), the second rebinds cache hits concurrently.
	for pass := 0; pass < 2; pass++ {
		_, err := RunShots("acoustic", surveyConfig(), ShotsConfig{
			Gradient: gc, Shots: surveyShots(), Workers: 3, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveComputeWorkers(t *testing.T) {
	t.Setenv(core.WorkersEnvVar, "")
	if got := resolveComputeWorkers(3); got != 3 {
		t.Errorf("explicit compute workers = %d, want 3", got)
	}
	if got := resolveComputeWorkers(0); got != 0 {
		t.Errorf("unset compute workers = %d, want 0 (operator default)", got)
	}
	t.Setenv(core.WorkersEnvVar, "5")
	if got := resolveComputeWorkers(0); got != 5 {
		t.Errorf("env compute workers = %d, want 5", got)
	}
	if got := resolveComputeWorkers(2); got != 2 {
		t.Errorf("explicit over env = %d, want 2", got)
	}
	// Malformed env is ignored here; the operator build rejects it with a
	// proper configuration error.
	t.Setenv(core.WorkersEnvVar, "lots")
	if got := resolveComputeWorkers(0); got != 0 {
		t.Errorf("bad env compute workers = %d, want 0", got)
	}
}

// TestRunShotsOversubscriptionClamp: a survey requesting far more
// shots-in-flight x compute-workers lanes than the host has cores must
// complete with the per-rank team clamped — and, because results are
// worker-count invariant, still reproduce the sequential stack bit for
// bit.
func TestRunShotsOversubscriptionClamp(t *testing.T) {
	cfg := surveyConfig()
	gc := surveyGradient()
	want, _ := sequentialStack(t, cfg, gc, surveyShots())
	over := gc
	over.Workers = 64 // 2 shots x 64 workers can't fit any host
	res, err := RunShots("acoustic", cfg, ShotsConfig{
		Gradient: over, Shots: surveyShots(), Workers: 2, Cache: opcache.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Errorf("clamp must land on compute workers, not shots in flight: pool = %d", res.Workers)
	}
	for i := range want {
		if res.Gradient[i] != want[i] {
			t.Fatalf("clamped stack diverges from sequential loop at %d: %v vs %v",
				i, res.Gradient[i], want[i])
		}
	}
}
