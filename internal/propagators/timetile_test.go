package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// The time-tiling differential suite: exchange-interval k > 1 must be
// bit-exact versus k=1 for every scenario, halo mode and engine, forward
// and reverse, because the redundant ghost-shell recompute evaluates the
// identical per-point expressions on identical data. Norm and receiver
// traces are compared with ==.

// ttRun executes one 4-rank (2x2) run and returns the rank-0 norm,
// receiver traces and the effective exchange interval.
func ttRun(t *testing.T, model string, shape []int, mode halo.Mode, engine string, so, nt, k int) (float64, [][]float64, int) {
	t.Helper()
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	var eff int
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(model, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, TimeTile: k, Engine: engine, Workers: 2, TileRows: 3})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			norm, traces, eff = res.Norm, res.Receivers, res.Op.TimeTile()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces, eff
}

func assertSameTraces(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	for it := range a {
		for r := range a[it] {
			if a[it][r] != b[it][r] {
				t.Fatalf("%s: trace (%d,%d) diverges: %v vs %v", label, it, r, a[it][r], b[it][r])
			}
		}
	}
}

// Every scenario x halo mode x k in {2,4,8} must match k=1 bit-for-bit.
// TTI falls back to k=1 (CIRE scratch) and must still be exact; the
// k=8 elastic/viscoelastic runs exercise the chunk-feasibility clamp.
func TestTimeTile_DMPBitExactAllModelsAllModes(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 16
	ks := []int{2, 4, 8}
	if testing.Short() {
		ks = []int{2, 4}
	}
	for _, model := range ModelNames() {
		for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
			t.Run(model+"/"+mode.String(), func(t *testing.T) {
				refNorm, refTraces, _ := ttRun(t, model, shape, mode, core.EngineBytecode, so, nt, 1)
				for _, k := range ks {
					norm, traces, eff := ttRun(t, model, shape, mode, core.EngineBytecode, so, nt, k)
					if model == "tti" && eff != 1 {
						t.Errorf("TTI (CIRE scratch) must fall back to k=1, got %d", eff)
					}
					if norm != refNorm {
						t.Errorf("k=%d (eff %d): norm %v != k=1 norm %v", k, eff, norm, refNorm)
					}
					assertSameTraces(t, model, refTraces, traces)
				}
			})
		}
	}
}

// Both engines agree under tiling (and with each other's k=1 results).
func TestTimeTile_EnginesBitExact(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 16
	refNorm, refTraces, _ := ttRun(t, "acoustic", shape, halo.ModeDiagonal, core.EngineInterpreter, so, nt, 1)
	for _, engine := range []string{core.EngineBytecode, core.EngineInterpreter} {
		norm, traces, eff := ttRun(t, "acoustic", shape, halo.ModeDiagonal, engine, so, nt, 4)
		if eff != 4 {
			t.Errorf("%s: effective interval %d, want 4", engine, eff)
		}
		if norm != refNorm {
			t.Errorf("%s k=4: norm %v != interpreter k=1 norm %v", engine, norm, refNorm)
		}
		assertSameTraces(t, engine, refTraces, traces)
	}
}

// Serial contexts ignore the exchange interval (nothing to avoid).
func TestTimeTile_SerialFallsBack(t *testing.T) {
	m, err := Build("acoustic", serialCfg([]int{24, 24}, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: 8, TimeTile: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Op.TimeTile() != 1 {
		t.Errorf("serial effective interval = %d, want 1", res.Op.TimeTile())
	}
	if res.Op.Config().TimeTile != 1 {
		t.Errorf("serial config interval = %d, want 1", res.Op.Config().TimeTile)
	}
}

// The adjoint (reverse-time) sweep tiles too: RunAdjoint with k=4 must
// reproduce the k=1 source traces and final norm bit-for-bit on 4 ranks.
func TestTimeTile_AdjointBitExact(t *testing.T) {
	shape := []int{24, 24}
	const so, nt = 4, 16
	run := func(k int) (float64, []float64) {
		w := mpi.NewWorld(4)
		var norm float64
		var traces []float64
		err := w.Run(func(c *mpi.Comm) {
			g := grid.MustNew(shape, nil)
			dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
			if err != nil {
				t.Error(err)
				return
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				t.Error(err)
				return
			}
			cfg := serialCfg(shape, so)
			cfg.Decomp = dec
			cfg.Rank = c.Rank()
			m, err := Build("acoustic", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
			fres, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, TimeTile: k})
			if err != nil {
				t.Error(err)
				return
			}
			ares, err := RunAdjoint(m, ctx, AdjointConfig{
				NT: nt, RecCoords: ReceiverLine(m.Grid, 4), RecData: fres.Receivers, TimeTile: k,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				norm, traces = ares.Norm, ares.SrcTraces
				if k > 1 && ares.Op.TimeTile() < 2 {
					t.Errorf("adjoint operator did not tile: interval %d", ares.Op.TimeTile())
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return norm, traces
	}
	refNorm, refTraces := run(1)
	norm, traces := run(4)
	if norm != refNorm {
		t.Errorf("adjoint k=4 norm %v != k=1 norm %v", norm, refNorm)
	}
	for i := range refTraces {
		if traces[i] != refTraces[i] {
			t.Fatalf("adjoint trace %d diverges: %v vs %v", i, traces[i], refTraces[i])
		}
	}
}

// The checkpointed gradient pipeline composes with tiling: identical
// gradient norm and dot-product identity versus k=1 on 4 ranks.
func TestTimeTile_GradientBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient tiling differential skipped in -short")
	}
	shape := []int{24, 24}
	const so, nt = 4, 12
	run := func(k int) (float64, float64) {
		w := mpi.NewWorld(4)
		var gnorm, relErr float64
		err := w.Run(func(c *mpi.Comm) {
			g := grid.MustNew(shape, nil)
			dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
			if err != nil {
				t.Error(err)
				return
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				t.Error(err)
				return
			}
			cfg := serialCfg(shape, so)
			cfg.Decomp = dec
			cfg.Rank = c.Rank()
			m, err := Build("acoustic", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
			res, err := RunGradient(m, ctx, GradientConfig{NT: nt, NReceivers: 4, CheckpointInterval: 3, TimeTile: k})
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				gnorm, relErr = res.GradNorm, res.RelErr
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return gnorm, relErr
	}
	refNorm, refErr := run(1)
	gnorm, relErr := run(4)
	if gnorm != refNorm {
		t.Errorf("gradient k=4 norm %v != k=1 norm %v", gnorm, refNorm)
	}
	if relErr != refErr {
		t.Errorf("gradient k=4 rel-err %v != k=1 rel-err %v", relErr, refErr)
	}
}

// DEVIGO_TIME_TILE reaches the operator with zero code changes.
func TestTimeTile_EnvVar(t *testing.T) {
	t.Setenv(core.TimeTileEnvVar, "4")
	norm, _, eff := ttRun(t, "acoustic", []int{24, 24}, halo.ModeDiagonal, core.EngineBytecode, 4, 12, 0)
	if eff != 4 {
		t.Errorf("effective interval via env = %d, want 4", eff)
	}
	t.Setenv(core.TimeTileEnvVar, "")
	refNorm, _, _ := ttRun(t, "acoustic", []int{24, 24}, halo.ModeDiagonal, core.EngineBytecode, 4, 12, 1)
	if norm != refNorm {
		t.Errorf("env-tiled norm %v != k=1 norm %v", norm, refNorm)
	}
}

// On a latency-dominated configuration (tiny per-rank boxes) the cost
// model must rank an exchange interval > 1 on top — the deterministic
// half of the "autotuner exploits communication avoidance" claim — and
// the tuned run must stay bit-exact.
func TestTimeTile_AutotuneSelectsDeepInterval(t *testing.T) {
	shape := []int{32, 32}
	const so, nt = 4, 24
	refNorm, refTraces, _ := ttRun(t, "acoustic", shape, halo.ModeDiagonal, core.EngineBytecode, so, nt, 1)
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	var cfgEff core.EffectiveConfig
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, TimeTile: 8, Autotune: core.AutotuneModel})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			norm, traces, cfgEff = res.Norm, res.Receivers, res.Op.Config()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfgEff.TimeTile < 2 {
		t.Errorf("model policy chose interval %d on a latency-dominated config, want >= 2 (%+v)", cfgEff.TimeTile, cfgEff)
	}
	if norm != refNorm {
		t.Errorf("autotuned norm %v != k=1 norm %v (%+v)", norm, refNorm, cfgEff)
	}
	assertSameTraces(t, "autotune", refTraces, traces)
}

// Real MPI accounting: at k=4 the elastic model's halo messages must drop
// by at least 2x versus k=1 (the ISSUE's strong-scaling lever). Receivers
// are disabled so the counters see only halo traffic plus the one final
// norm reduction.
func TestTimeTile_MessageCountDrops(t *testing.T) {
	shape := []int{32, 32}
	const so, nt = 4, 32
	count := func(k int) (int, float64) {
		w := mpi.NewWorld(4)
		var norm float64
		err := w.Run(func(c *mpi.Comm) {
			g := grid.MustNew(shape, nil)
			dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
			if err != nil {
				t.Error(err)
				return
			}
			cart, err := mpi.CartCreate(c, dec.Topology, nil)
			if err != nil {
				t.Error(err)
				return
			}
			cfg := serialCfg(shape, so)
			cfg.Decomp = dec
			cfg.Rank = c.Rank()
			m, err := Build("elastic", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
			res, err := Run(m, ctx, RunConfig{NT: nt, TimeTile: k})
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				norm = res.Norm
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		msgs := 0
		for _, s := range w.StatsSnapshot() {
			msgs += s.MsgsSent
		}
		return msgs, norm
	}
	m1, n1 := count(1)
	m4, n4 := count(4)
	if n1 != n4 {
		t.Fatalf("norms diverge while counting messages: %v vs %v", n1, n4)
	}
	if float64(m4) > float64(m1)/2 {
		t.Errorf("k=4 sent %d messages vs %d at k=1: want at least a 2x drop", m4, m1)
	}
	t.Logf("messages: k=1 %d, k=4 %d (%.2fx reduction)", m1, m4, float64(m1)/float64(m4))
}
