package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// FuzzEnginesAgree is the randomized arm of the differential suite: the
// fuzzer drives scenario, grid shape, space order, step count, halo mode,
// exchange interval and decomposition knobs from the input bytes, and
// every reachable configuration must produce bit-identical wavefields on
// all three engines — serially for interpreter and native against the
// bytecode baseline, and on every rank of a 4-rank run for native (the
// engine whose specialized chain lowering has the most shapes to get
// wrong). Shapes deliberately wander over odd sizes so the native
// engine's vectorized-strip/scalar-tail split lands on every residue.
//
// The checked-in corpus (testdata/fuzz/FuzzEnginesAgree) pins one seed
// per scenario plus halo-mode/interval variety; `go test` replays it on
// every run, and CI additionally runs a time-boxed `-fuzz` smoke to keep
// exploring fresh inputs.

// fuzzCase is the decoded configuration of one fuzz execution.
type fuzzCase struct {
	model    string
	rows     int
	cols     int
	so       int
	nt       int
	mode     halo.Mode
	k        int
	workers  int
	tileRows int
	forkJoin bool
}

// decodeFuzzCase maps arbitrary bytes onto a valid-looking configuration
// (missing bytes default to zero). Every value is clamped into the cheap
// regime: the fuzzer's job is breadth over lowering shapes, not grid
// scale.
func decodeFuzzCase(data []byte) fuzzCase {
	b := func(i int) int {
		if i < len(data) {
			return int(data[i])
		}
		return 0
	}
	names := ModelNames()
	return fuzzCase{
		model:    names[b(0)%len(names)],
		rows:     16 + b(1)%12,
		cols:     16 + b(2)%12,
		so:       []int{2, 4, 8}[b(3)%3],
		nt:       4 + b(4)%10,
		mode:     []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}[b(5)%3],
		k:        1 + b(6)%4,
		workers:  1 + b(7)%7,
		tileRows: 1 + b(8)%5,
		forkJoin: b(9)%2 == 1,
	}
}

// fuzzSerial runs the case serially with the given engine.
func fuzzSerial(fc fuzzCase, engine string) (*Model, *RunResult, error) {
	m, err := Build(fc.model, serialCfg([]int{fc.rows, fc.cols}, fc.so))
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(m, nil, RunConfig{NT: fc.nt, NReceivers: 4, Engine: engine,
		Workers: fc.workers, TileRows: fc.tileRows, ForkJoin: fc.forkJoin})
	if res != nil {
		res.Op.Close()
	}
	return m, res, err
}

// fuzzDMP runs the case over a 2x2 decomposition and returns the rank-0
// norm and receiver traces.
func fuzzDMP(t *testing.T, fc fuzzCase, engine string) (float64, [][]float64, error) {
	t.Helper()
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	var runErr error
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew([]int{fc.rows, fc.cols}, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			runErr = err
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			runErr = err
			return
		}
		cfg := serialCfg([]int{fc.rows, fc.cols}, fc.so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(fc.model, cfg)
		if err != nil {
			runErr = err
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: fc.mode}
		res, err := Run(m, ctx, RunConfig{NT: fc.nt, NReceivers: 4, Engine: engine,
			Workers: fc.workers, TileRows: fc.tileRows, TimeTile: fc.k, ForkJoin: fc.forkJoin})
		if err != nil {
			runErr = err
			return
		}
		res.Op.Close()
		if c.Rank() == 0 {
			norm = res.Norm
			traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces, runErr
}

func FuzzEnginesAgree(f *testing.F) {
	// One seed per scenario, then halo-mode / interval / odd-shape variety.
	for i := range ModelNames() {
		f.Add([]byte{byte(i), 4, 4, 1, 6, 1, 0, 1, 2})
	}
	f.Add([]byte{0, 1, 7, 2, 3, 0, 1, 2, 4}) // odd cols: SIMD tail in play
	f.Add([]byte{1, 9, 2, 0, 5, 2, 3, 0, 0}) // elastic, full overlap, k=4
	f.Add([]byte{2, 5, 5, 1, 2, 1, 1, 2, 1}) // tti, diagonal, k=2
	f.Add([]byte{3, 0, 3, 2, 7, 0, 0, 1, 3}) // viscoelastic, basic, so-8
	// Worker-pool tier: workers > 1 with time tiling and the native
	// engine's bulk-row chains, pool and fork-join dispatch both pinned.
	f.Add([]byte{0, 3, 6, 1, 5, 2, 3, 5, 2, 0}) // acoustic, full, k=4, 6-worker pool
	f.Add([]byte{2, 7, 1, 2, 4, 2, 1, 6, 3, 1}) // tti, full, k=2, 7 workers fork-join
	f.Add([]byte{1, 2, 8, 0, 6, 1, 3, 3, 1, 0}) // elastic, diag, k=4, 4-worker pool

	f.Fuzz(func(t *testing.T, data []byte) {
		fc := decodeFuzzCase(data)

		// The bytecode baseline legitimizes the configuration: if it cannot
		// run (e.g. an exchange interval too deep for the decomposition),
		// the input is uninteresting. Once the baseline runs, an error from
		// any other engine on the same configuration is itself a failure.
		mB, resB, err := fuzzSerial(fc, core.EngineBytecode)
		if err != nil {
			t.Skip(err)
		}
		for _, engine := range altEngines {
			mX, resX, err := fuzzSerial(fc, engine)
			if err != nil {
				t.Fatalf("%+v: %s failed where bytecode ran: %v", fc, engine, err)
			}
			if resB.Norm != resX.Norm && (resB.Norm == resB.Norm || resX.Norm == resX.Norm) {
				t.Errorf("%+v: serial norms diverge: bytecode %v, %s %v", fc, resB.Norm, engine, resX.Norm)
			}
			for it := range resB.Receivers {
				for r := range resB.Receivers[it] {
					a, b := resB.Receivers[it][r], resX.Receivers[it][r]
					if a != b && (a == a || b == b) {
						t.Fatalf("%+v: serial trace (%d,%d) diverges: %v vs %s %v", fc, it, r, a, engine, b)
					}
				}
			}
			compareModels(t, fc.model, engine, mB, mX)
		}

		normB, tracesB, err := fuzzDMP(t, fc, core.EngineBytecode)
		if err != nil {
			t.Skip(err)
		}
		normN, tracesN, err := fuzzDMP(t, fc, core.EngineNative)
		if err != nil {
			t.Fatalf("%+v: native 4-rank failed where bytecode ran: %v", fc, err)
		}
		if normB != normN && (normB == normB || normN == normN) {
			t.Errorf("%+v: 4-rank norms diverge: bytecode %v, native %v", fc, normB, normN)
		}
		for it := range tracesB {
			for r := range tracesB[it] {
				a, b := tracesB[it][r], tracesN[it][r]
				if a != b && (a == a || b == b) {
					t.Fatalf("%+v: 4-rank trace (%d,%d) diverges: %v vs native %v", fc, it, r, a, b)
				}
			}
		}
	})
}
