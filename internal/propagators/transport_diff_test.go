package propagators

import (
	"testing"
	"time"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// Transport differential suite: the same 4-rank run must be
// bit-identical whether ranks are goroutines sharing memory (the
// in-process transport) or peers exchanging length-prefixed frames over
// loopback TCP. The communication schedule above the Transport
// interface is byte-for-byte the same, so any divergence is a transport
// bug — framing, ordering, or a float that didn't round-trip the wire.

// dmpOutcome is everything a distributed run externalizes.
type dmpOutcome struct {
	norm   float64
	traces [][]float64
}

// runDMPOver runs one 2x2-decomposed model under the given world runner
// and collects the rank-0 outcome.
func runDMPOver(t *testing.T, runWorld func(f func(c *mpi.Comm)) error,
	name, engine string, shape []int, mode halo.Mode, so, nt, k int) dmpOutcome {
	t.Helper()
	var out dmpOutcome
	err := runWorld(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build(name, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		res, err := Run(m, ctx, RunConfig{
			NT: nt, NReceivers: 4, Engine: engine,
			Workers: 2, TileRows: 3, TimeTile: k,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			out.norm = res.Norm
			out.traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runDMPInproc(t *testing.T, name, engine string, shape []int, mode halo.Mode, so, nt, k int) dmpOutcome {
	t.Helper()
	return runDMPOver(t, mpi.NewWorld(4).Run, name, engine, shape, mode, so, nt, k)
}

func runDMPTCP(t *testing.T, name, engine string, shape []int, mode halo.Mode, so, nt, k int) dmpOutcome {
	t.Helper()
	runner := func(f func(c *mpi.Comm)) error {
		return mpi.RunTCPLocal(4, 2*time.Minute, f)
	}
	return runDMPOver(t, runner, name, engine, shape, mode, so, nt, k)
}

// requireIdentical asserts two outcomes agree bit-for-bit.
func requireIdentical(t *testing.T, label string, a, b dmpOutcome) {
	t.Helper()
	if a.norm != b.norm {
		t.Errorf("%s: norms diverge across transports: inproc %v, tcp %v", label, a.norm, b.norm)
	}
	if len(a.traces) != len(b.traces) {
		t.Fatalf("%s: trace lengths diverge: %d vs %d", label, len(a.traces), len(b.traces))
	}
	for it := range a.traces {
		for r := range a.traces[it] {
			if a.traces[it][r] != b.traces[it][r] {
				t.Fatalf("%s: trace (%d,%d) diverges across transports: %v vs %v",
					label, it, r, a.traces[it][r], b.traces[it][r])
			}
		}
	}
}

// TestTransportDifferential_AllModesTimeTiles is the acceptance matrix
// of the TCP transport: every halo mode crossed with exchange intervals
// k∈{1,4}, on the acoustic model's bytecode engine, bit-exact against
// the in-process world.
func TestTransportDifferential_AllModesTimeTiles(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 20
	for _, mode := range []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull} {
		for _, k := range []int{1, 4} {
			mode, k := mode, k
			t.Run(mode.String()+"/k"+string(rune('0'+k)), func(t *testing.T) {
				in := runDMPInproc(t, "acoustic", core.EngineBytecode, shape, mode, so, nt, k)
				tc := runDMPTCP(t, "acoustic", core.EngineBytecode, shape, mode, so, nt, k)
				requireIdentical(t, mode.String(), in, tc)
			})
		}
	}
}

// TestTransportDifferential_ModelsEngines crosses the remaining axes:
// every model against both execution engines, diagonal mode, over TCP
// versus in-process.
func TestTransportDifferential_ModelsEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("transport model/engine matrix skipped in -short")
	}
	shape := []int{24, 24}
	so, nt := 4, 20
	for _, name := range []string{"acoustic", "elastic", "tti"} {
		for _, engine := range []string{core.EngineBytecode, core.EngineInterpreter} {
			name, engine := name, engine
			t.Run(name+"/"+engine, func(t *testing.T) {
				in := runDMPInproc(t, name, engine, shape, halo.ModeDiagonal, so, nt, 1)
				tc := runDMPTCP(t, name, engine, shape, halo.ModeDiagonal, so, nt, 1)
				requireIdentical(t, name+"/"+engine, in, tc)
			})
		}
	}
}

// TestTransportDifferential_SerialAgreement closes the loop: the TCP
// 4-rank norm must match the serial norm to the same 1e-9 relative
// tolerance the in-process distributed suite is held to.
func TestTransportDifferential_SerialAgreement(t *testing.T) {
	shape := []int{24, 24}
	so, nt := 4, 20
	m, err := Build("acoustic", serialCfg(shape, so))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: nt, NReceivers: 4, Engine: core.EngineBytecode})
	if err != nil {
		t.Fatal(err)
	}
	tc := runDMPTCP(t, "acoustic", core.EngineBytecode, shape, halo.ModeDiagonal, so, nt, 1)
	rel := (tc.norm - res.Norm) / res.Norm
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-9 {
		t.Errorf("TCP 4-rank norm %v vs serial %v: relative error %g > 1e-9", tc.norm, res.Norm, rel)
	}
}
