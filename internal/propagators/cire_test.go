package propagators

import (
	"strings"
	"testing"

	"devigo/internal/core"
	"devigo/internal/halo"
	"devigo/internal/ir"
)

// These tests exercise the compiler's CIRE flop-reduction pass through the
// TTI model (they live here rather than in internal/core to avoid an
// import cycle: propagators -> core).

func buildOp(t *testing.T, name string, shape []int, so int) (*Model, *core.Operator) {
	t.Helper()
	m, err := Build(name, Config{Shape: shape, SpaceOrder: so, NBL: 0, Velocity: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, nil, &core.Options{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return m, op
}

func TestCIREReducesTTIFlops(t *testing.T) {
	m, op := buildOp(t, "tti", []int{24, 24}, 8)
	clusters, err := ir.Lower(m.Eqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	naive := 0
	for _, c := range clusters {
		naive += c.FlopsPerPoint()
	}
	optimized := op.FlopsPerPointOptimized()
	if optimized <= 0 || naive/optimized < 10 {
		t.Errorf("CIRE reduction too weak: naive %d, optimized %d", naive, optimized)
	}
}

func TestCIRECreatesScratchFields(t *testing.T) {
	m, op := buildOp(t, "tti", []int{24, 24}, 4)
	scratch := 0
	for name := range m.Fields {
		if strings.HasPrefix(name, "cire") {
			scratch++
		}
	}
	if scratch == 0 {
		t.Fatal("no scratch fields created for TTI")
	}
	// Scratch fields never appear in halo requirements.
	for _, st := range op.Schedule.Steps {
		for _, h := range st.Halos {
			if strings.HasPrefix(h.Field, "cire") {
				t.Errorf("scratch field %s scheduled for exchange", h.Field)
			}
		}
	}
	// The trig parameters must be hoisted into the preamble: extended-box
	// scratch computation reads their halos.
	found := false
	for _, h := range op.Schedule.Preamble {
		if h.Field == "ct" || h.Field == "st" {
			found = true
		}
	}
	if !found {
		t.Error("trig parameter halos not hoisted despite extended-box reads")
	}
}

func TestCIRELeavesSimpleKernelsAlone(t *testing.T) {
	for _, name := range []string{"acoustic", "elastic"} {
		m, _ := buildOp(t, name, []int{16, 16}, 4)
		for fname := range m.Fields {
			if strings.HasPrefix(fname, "cire") {
				t.Errorf("%s: unexpected scratch field %s", name, fname)
			}
		}
	}
}

func TestAnalysisCountersConsistent(t *testing.T) {
	_, op := buildOp(t, "acoustic", []int{16, 16, 16}, 8)
	if op.StreamCount() != 5 {
		t.Errorf("acoustic streams = %d, want 5 (u write, u, u[t-1], m, damp)", op.StreamCount())
	}
	if op.HaloStreamCount() != 1 {
		t.Errorf("acoustic halo streams = %d, want 1", op.HaloStreamCount())
	}
	f := op.FlopsPerPointOptimized()
	if f < 30 || f > 300 {
		t.Errorf("acoustic so-8 optimized flops = %d, outside plausible range", f)
	}
}

func TestOperatorReusableAcrossApplies(t *testing.T) {
	// Time continuation: applying [0,4] then [5,9] must equal one [0,9]
	// application.
	run := func(split bool) []float32 {
		m, op := buildOp(t, "acoustic", []int{16, 16}, 4)
		syms := map[string]float64{"dt": m.CriticalDt}
		m.Fields["u"].SetDomain(0, 1, 8, 8)
		if split {
			if err := op.Apply(&core.ApplyOpts{TimeM: 0, TimeN: 4, Syms: syms}); err != nil {
				t.Fatal(err)
			}
			if err := op.Apply(&core.ApplyOpts{TimeM: 5, TimeN: 9, Syms: syms}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := op.Apply(&core.ApplyOpts{TimeM: 0, TimeN: 9, Syms: syms}); err != nil {
				t.Fatal(err)
			}
		}
		return m.Fields["u"].Buf(10).Data
	}
	oneShot := run(false)
	twoShot := run(true)
	for i := range oneShot {
		if oneShot[i] != twoShot[i] {
			t.Fatalf("continuation diverges at %d: %v vs %v", i, oneShot[i], twoShot[i])
		}
	}
}

func TestTTIDistributedWithCIREScratch(t *testing.T) {
	// Regression guard for the extended-box halo interaction: TTI
	// distributed over an uneven topology must match serial (scratch
	// fields recomputed redundantly from exchanged parameter halos).
	shape := []int{26, 26}
	serial := runSerial(t, "tti", shape, 4, 12)
	for _, topo := range [][]int{{2, 1}, {1, 4}} {
		norm, _ := runDMP(t, "tti", shape, topo, halo.ModeDiagonal, 4, 12)
		diff := norm - serial.Norm
		if diff > 1e-9*serial.Norm || diff < -1e-9*serial.Norm {
			t.Errorf("topology %v: norm %v != serial %v", topo, norm, serial.Norm)
		}
	}
}
