package propagators_test

import (
	"fmt"

	"devigo/internal/opcache"
	"devigo/internal/propagators"
)

// ExampleRunShots runs a small shot-parallel FWI gradient survey: four
// shots over one acoustic model, two shots in flight at a time, sharing a
// compiled-operator cache. The three gradient schedules (forward, adjoint,
// imaging) compile exactly once for the whole survey, and the stacked
// gradient is bit-identical to a sequential loop at any worker count.
func ExampleRunShots() {
	cfg := propagators.Config{Shape: []int{24, 24}, SpaceOrder: 2, NBL: 0, Velocity: 1}
	survey := propagators.ShotsConfig{
		Gradient: propagators.GradientConfig{
			NT:                 8,
			Wavelet:            []float32{1, -2, 1},
			ReceiverCoords:     [][]float64{{6, 5}, {11, 9}, {15, 14}, {17, 16}},
			CheckpointInterval: 3,
		},
		Shots: []propagators.Shot{
			{SourceCoords: []float64{8, 8}},
			{SourceCoords: []float64{12, 12}},
			{SourceCoords: []float64{16, 15}},
			{SourceCoords: []float64{18, 6}},
		},
		Workers: 2,
		Cache:   opcache.New(),
	}
	res, err := propagators.RunShots("acoustic", cfg, survey)
	if err != nil {
		fmt.Println("survey failed:", err)
		return
	}
	fmt.Printf("shots: %d  workers: %d\n", len(res.Shots), res.Workers)
	fmt.Printf("schedules compiled: %d  cache hit rate: %.0f%%\n",
		res.CacheStats.Misses, 100*res.CacheStats.HitRate())
	fmt.Printf("stacked gradient norm > 0: %v\n", res.GradNorm > 0)
	// Output:
	// shots: 4  workers: 2
	// schedules compiled: 3  cache hit rate: 75%
	// stacked gradient norm > 0: true
}
