package propagators

import (
	"fmt"

	"devigo/internal/checkpoint"
	"devigo/internal/core"
	"devigo/internal/field"
	"devigo/internal/opcache"
	"devigo/internal/symbolic"
)

// GradientConfig drives a checkpointed forward+adjoint gradient (FWI/RTM)
// computation.
type GradientConfig struct {
	// NT is the number of timesteps.
	NT int
	// DT overrides the critical timestep (0 keeps CriticalDt).
	DT float64
	// F0 is the Ricker peak frequency when Wavelet is nil.
	F0 float64
	// Wavelet overrides the Ricker source signature.
	Wavelet []float32
	// SourceCoords overrides the default centre source.
	SourceCoords []float64
	// NReceivers / ReceiverCoords configure the receiver layout (at least
	// one receiver is required — it drives the adjoint source).
	NReceivers     int
	ReceiverCoords [][]float64
	// ObsData is optional observed data (NT x nrec); when set the adjoint
	// source is the residual d_syn - d_obs (an FWI gradient), otherwise
	// the synthetic data itself is back-propagated (an RTM-style image,
	// and the configuration of the dot-product test).
	ObsData [][]float64
	// CheckpointInterval is the snapshot spacing k: memory holds NT/k
	// full snapshots plus k+2 cached time levels, and each segment is
	// re-integrated once during the reverse sweep. 0 uses the sqrt(NT)
	// heuristic that balances the two costs.
	CheckpointInterval int
	// Workers / TileRows forward to the executor.
	Workers  int
	TileRows int
	// ForkJoin forces the legacy per-call goroutine dispatch instead of
	// the persistent worker pool (core.Options.ForkJoin).
	ForkJoin bool
	// TimeTile requests the halo-exchange interval k for the forward and
	// adjoint operators; 0 consults DEVIGO_TIME_TILE.
	TimeTile int
	// Engine selects the execution engine ("" = core default).
	Engine string
	// Autotune selects the self-configuration policy for the forward and
	// adjoint operators ("" consults DEVIGO_AUTOTUNE). The forward pass
	// can tune with the full search; the adjoint sweep applies one step
	// at a time, so a search request degrades gracefully to the model's
	// top choice there.
	Autotune string
	// Cache attaches a compiled-operator cache shared by the forward,
	// adjoint and imaging operators (core.Options.Cache): across shots of
	// one survey, each of the three schedules compiles exactly once. Nil
	// compiles privately.
	Cache *opcache.Cache
}

// GradientResult carries the outputs of a gradient computation.
type GradientResult struct {
	NT int
	DT float64
	// Receivers is the synthetic data d = Fq of the forward pass.
	Receivers [][]float64
	// SrcTraces is the adjoint wavefield sampled at the source position
	// (forward-time order) — the F'd side of the dot-product identity.
	SrcTraces []float64
	// Gradient is the accumulated image: grad -= u.dt2 * v summed over
	// the reverse sweep (the zero-lag cross-correlation imaging
	// condition). It lives on the forward model's grid/decomposition.
	Gradient *field.Function
	// GradNorm is the global L2 norm of the gradient.
	GradNorm float64
	// DotForward = <d, dhat> and DotAdjoint = <q, F'dhat> are the two
	// sides of the adjoint identity (dhat is the back-propagated series);
	// RelErr is their relative gap.
	DotForward, DotAdjoint, RelErr float64
	// Checkpoint reports the memory/recompute cost counters.
	Checkpoint checkpoint.Stats
	// ForwardPerf / AdjointPerf report the two operators' section timings
	// (ForwardPerf excludes the reverse sweep's recomputation).
	ForwardPerf, AdjointPerf core.Perf
	// ForwardConfig / AdjointConfig record the effective execution
	// configurations (chosen by the autotuner or forced) for provenance.
	ForwardConfig, AdjointConfig core.EffectiveConfig
}

// RunGradient computes an FWI-style gradient on the acoustic model: a
// checkpointed forward run, then a reverse sweep that steps the adjoint
// operator backwards while re-materialising the forward wavefield from
// snapshots segment by segment, correlating the two fields into the
// gradient with a compiled imaging kernel at every step. Memory stays
// bounded by the checkpoint interval instead of growing with NT.
// ctx may be nil (serial) or carry one rank of an MPI world.
func RunGradient(m *Model, ctx *core.Context, gc GradientConfig) (*GradientResult, error) {
	dt := m.CriticalDt
	if gc.DT > 0 {
		dt = gc.DT
	}
	nt := gc.NT
	if nt <= 0 {
		return nil, fmt.Errorf("propagators: GradientConfig needs NT")
	}
	if gc.NReceivers <= 1 && gc.ReceiverCoords == nil {
		return nil, fmt.Errorf("propagators: GradientConfig needs receivers (the adjoint source)")
	}
	k := gc.CheckpointInterval
	if k <= 0 {
		k = checkpoint.DefaultInterval(nt)
	}
	u := m.Fields[m.WaveFields[0]]
	store := checkpoint.New(k, u)
	if ctx != nil && ctx.Comm != nil {
		store.Rank = ctx.Comm.Rank()
	}

	// Phase 1: checkpointed forward integration recording synthetics.
	rc := RunConfig{
		NT: nt, DT: dt, F0: gc.F0,
		Wavelet:        gc.Wavelet,
		SourceCoords:   gc.SourceCoords,
		NReceivers:     gc.NReceivers,
		ReceiverCoords: gc.ReceiverCoords,
		Checkpoint:     store,
		Workers:        gc.Workers, TileRows: gc.TileRows,
		ForkJoin: gc.ForkJoin,
		TimeTile: gc.TimeTile,
		Engine:   gc.Engine,
		Autotune: gc.Autotune,
		Cache:    gc.Cache,
	}
	fres, err := Run(m, ctx, rc)
	if err != nil {
		return nil, err
	}
	// The gradient owns all three operators for the whole computation;
	// release their persistent worker teams on every exit path (shot
	// surveys would otherwise accumulate parked goroutines per shot).
	defer fres.Op.Close()
	res := &GradientResult{NT: nt, DT: fres.DT, Receivers: fres.Receivers,
		ForwardPerf: fres.Perf, ForwardConfig: fres.Op.Config()}

	// The adjoint source: residual against observed data when given,
	// otherwise the synthetics themselves.
	adjSrc := fres.Receivers
	if gc.ObsData != nil {
		if len(gc.ObsData) != nt {
			return nil, fmt.Errorf("propagators: ObsData has %d steps, want NT=%d", len(gc.ObsData), nt)
		}
		adjSrc = make([][]float64, nt)
		for t := range adjSrc {
			row := make([]float64, len(fres.Receivers[t]))
			if len(gc.ObsData[t]) != len(row) {
				return nil, fmt.Errorf("propagators: ObsData step %d has %d traces, want %d",
					t, len(gc.ObsData[t]), len(row))
			}
			for r := range row {
				row[r] = fres.Receivers[t][r] - gc.ObsData[t][r]
			}
			adjSrc[t] = row
		}
	}

	// Phase 2 machinery: the adjoint operator, the imaging kernel, and
	// the forward source setup replayed during segment recomputation.
	adj, err := Adjoint(m)
	if err != nil {
		return nil, err
	}
	adjOp, err := core.NewOperator(adj.Eqs, adj.Fields, adj.Grid, ctx,
		&core.Options{Name: adj.Name, Workers: gc.Workers, TileRows: gc.TileRows,
			ForkJoin: gc.ForkJoin, TimeTile: gc.TimeTile, Engine: gc.Engine, Cache: gc.Cache})
	if err != nil {
		return nil, err
	}
	defer adjOp.Close()
	v := adj.Fields["v"]
	grad, imgOp, err := imagingOperator(m, adj, ctx, &gc)
	if err != nil {
		return nil, err
	}
	defer imgOp.Close()
	srcs, err := buildSources(m, &rc, fres.DT, nt)
	if err != nil {
		return nil, err
	}
	scale := injectionScale(adj, fres.DT)
	syms := map[string]float64{"dt": fres.DT}

	// ensureLevels re-materialises the forward time levels lo..hi from
	// the newest snapshot at or below hi-1, replaying the source
	// injection so the recomputation is bit-identical. Basing the lookup
	// on hi-1 (not lo) guarantees the re-integrated window s..s+k covers
	// hi even when hi sits one past a segment boundary (nt % k == 1);
	// lo >= s-1 holds because snapshots are at most k apart.
	ensureLevels := func(lo, hi int) error {
		if store.HasLevel(lo) && store.HasLevel(hi) {
			return nil
		}
		s, err := store.SnapshotAtOrBefore(hi - 1)
		if err != nil {
			return err
		}
		if err := store.Restore(s); err != nil {
			return err
		}
		store.PruneLevels(s-1, s+k)
		store.RecordLevel(s - 1)
		store.RecordLevel(s)
		end := s + k
		if end > nt {
			end = nt
		}
		if end > s {
			if err := fres.Op.Apply(&core.ApplyOpts{
				TimeM: s, TimeN: end - 1, Syms: syms,
				PostStep: func(t int) {
					srcs.inject(m, t, fres.Op.InjectDepth())
					store.RecordLevel(t + 1)
				},
			}); err != nil {
				return err
			}
			store.Stats.RecomputedSteps += end - s
		}
		return nil
	}

	// Phase 2: the reverse sweep. Iteration t writes the adjoint state
	// into buffer t-1; the imaging condition at level j = t-1 correlates
	// u.dt2 (levels j-1, j, j+1) with the adjoint field at level j.
	res.SrcTraces = make([]float64, nt)
	vals := make([]float32, srcs.rec.NPoints())
	for t := nt; t >= 1; t-- {
		j := t - 1
		if err := ensureLevels(j-1, j+1); err != nil {
			return nil, err
		}
		for _, lvl := range []int{j - 1, j, j + 1} {
			if err := store.LoadLevel(lvl); err != nil {
				return nil, err
			}
		}
		if err := adjOp.Apply(&core.ApplyOpts{
			TimeM: t, TimeN: t, Reverse: true, Syms: syms,
			Autotune: gc.Autotune,
			PostStep: func(t int) {
				for r, d := range adjSrc[t-1] {
					vals[r] = float32(d) * scale
				}
				_ = srcs.rec.InjectDeep(v, t-1, vals, adjOp.InjectDepth())
				res.SrcTraces[t-1] = srcs.src.Interpolate(v, t-1, commOf(ctx))[0]
			},
		}); err != nil {
			return nil, err
		}
		if err := imgOp.Apply(&core.ApplyOpts{TimeM: j, TimeN: j, Syms: syms}); err != nil {
			return nil, err
		}
	}

	res.Gradient = grad
	res.GradNorm = normOf(grad, ctx, 0)
	res.AdjointPerf = adjOp.Report()
	res.AdjointConfig = adjOp.Config()
	res.Checkpoint = store.Stats
	for t := 0; t < nt; t++ {
		for r := range adjSrc[t] {
			res.DotForward += fres.Receivers[t][r] * adjSrc[t][r]
		}
		var q float64
		if srcs.wavelet != nil && t < len(srcs.wavelet) {
			q = float64(srcs.wavelet[t])
		}
		res.DotAdjoint += q * res.SrcTraces[t]
	}
	res.RelErr = RelDot(res.DotForward, res.DotAdjoint)
	return res, nil
}

// imagingOperator compiles the zero-lag cross-correlation imaging
// condition grad = grad - u.dt2 * v as a devigo operator. Every access
// sits at space offset zero, so the kernel needs no halo exchange and
// runs identically under any DMP mode.
func imagingOperator(fwd, adj *Model, ctx *core.Context, gc *GradientConfig) (*field.Function, *core.Operator, error) {
	c := fwd.Cfg
	grad, err := field.NewFunction("grad", fwd.Grid, fwd.SpaceOrder, fieldCfg(&c, nil))
	if err != nil {
		return nil, nil, err
	}
	u := fwd.Fields[fwd.WaveFields[0]]
	v := adj.Fields[adj.WaveFields[0]]
	eq := symbolic.Eq{
		LHS: symbolic.At(grad.Ref),
		RHS: symbolic.Sub(
			symbolic.At(grad.Ref),
			symbolic.NewMul(symbolic.Dt2(symbolic.At(u.Ref), 2), symbolic.At(v.Ref)),
		),
	}
	fields := map[string]*field.Function{
		"grad": grad, u.Name: u, v.Name: v,
	}
	op, err := core.NewOperator([]symbolic.Eq{eq}, fields, fwd.Grid, ctx,
		&core.Options{Name: "imaging", Workers: gc.Workers, TileRows: gc.TileRows,
			ForkJoin: gc.ForkJoin, Engine: gc.Engine, Cache: gc.Cache})
	if err != nil {
		return nil, nil, err
	}
	return grad, op, nil
}
