// Package propagators builds the four seismic wave models evaluated by the
// paper — isotropic acoustic, TTI (anisotropic acoustic), isotropic
// elastic, and visco-elastic — as symbolic equation systems over devigo
// fields, together with their physical setup (velocity model, absorbing
// boundary damping, CFL timestep, Ricker source).
package propagators

import (
	"fmt"
	"math"

	"devigo/internal/field"
	"devigo/internal/grid"
	"devigo/internal/symbolic"
)

// Config describes a model instantiation.
type Config struct {
	// Shape is the interior grid shape (absorbing layers included —
	// callers size the domain as in the paper: physical + 2*NBL).
	Shape []int
	// Extent is the physical extent; nil derives unit spacing.
	Extent []float64
	// SpaceOrder is the spatial discretisation order (4, 8, 12, 16).
	SpaceOrder int
	// NBL is the absorbing boundary layer width in points (paper: 40).
	NBL int
	// Velocity is the homogeneous background P-wave speed (km/s if
	// extents are in km; any consistent unit works).
	Velocity float64
	// Decomp/Rank distribute the fields; nil Decomp means serial.
	Decomp *grid.Decomposition
	Rank   int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.SpaceOrder == 0 {
		out.SpaceOrder = 8
	}
	if out.Velocity == 0 {
		out.Velocity = 1.5
	}
	return out
}

// Model is a ready-to-compile propagator.
type Model struct {
	Name       string
	Grid       *grid.Grid
	SpaceOrder int
	Eqs        []symbolic.Eq
	Fields     map[string]*field.Function
	// WaveFields names the time-varying unknowns in update order.
	WaveFields []string
	// SourceFields lists the fields a point source injects into (one for
	// acoustic/TTI, the normal stresses for elastic/viscoelastic).
	SourceFields []string
	// CriticalDt is the CFL-stable timestep for the configured velocity.
	CriticalDt float64
	// WorkingSetFields counts the fields in the working set, with time
	// buffers counted individually — the paper's "N fields" metric.
	WorkingSetFields int
	// Cfg is the (defaulted) configuration the model was built from, kept
	// so companion operators (the adjoint, imaging kernels) can allocate
	// matching storage on the same decomposition.
	Cfg Config
}

// fieldCfg builds the per-field storage config for a model config.
func fieldCfg(c *Config, stagger []int) *field.Config {
	fc := &field.Config{Stagger: stagger}
	if c.Decomp != nil {
		fc.Decomp = c.Decomp
		fc.Rank = c.Rank
	}
	return fc
}

// makeGrid constructs the grid for a config.
func makeGrid(c *Config) (*grid.Grid, error) {
	return grid.New(c.Shape, c.Extent)
}

// dampField fills an absorbing-boundary damping profile: zero in the
// interior, growing quadratically towards the domain faces over the NBL
// outermost points (Devito's damp field).
func dampField(f *field.Function, nbl int, coeff float64) {
	if nbl <= 0 {
		return
	}
	nd := f.NDims()
	shape := f.Grid.Shape
	idx := make([]int, nd)
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			// Distance to the nearest face, in points.
			depth := 0.0
			for k := 0; k < nd; k++ {
				g := f.Origin[k] + idx[k]
				dist := g
				if shape[k]-1-g < dist {
					dist = shape[k] - 1 - g
				}
				if dist < nbl {
					pen := float64(nbl-dist) / float64(nbl)
					if pen > depth {
						depth = pen
					}
				}
			}
			f.SetDomain(0, float32(coeff*depth*depth), idx...)
			return
		}
		for idx[d] = 0; idx[d] < f.LocalShape[d]; idx[d]++ {
			rec(d + 1)
		}
	}
	rec(0)
}

// fillConst sets a field's DOMAIN to a constant.
func fillConst(f *field.Function, v float32) {
	nd := f.NDims()
	idx := make([]int, nd)
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			f.SetDomain(0, v, idx...)
			return
		}
		for idx[d] = 0; idx[d] < f.LocalShape[d]; idx[d]++ {
			rec(d + 1)
		}
	}
	rec(0)
}

// criticalDt computes the CFL bound dt <= coeff * h_min / v_max. The
// coefficient folds in the dimensionality and FD-order safety factor used
// by Devito's wave examples.
func criticalDt(g *grid.Grid, vmax float64) float64 {
	hmin := math.Inf(1)
	for d := 0; d < g.NDims(); d++ {
		if h := g.Spacing(d); h < hmin {
			hmin = h
		}
	}
	coeff := 0.38
	if g.NDims() == 2 {
		coeff = 0.42
	}
	return coeff * hmin / vmax
}

// CenterSource returns the physical coordinates of the domain centre — the
// default source position for examples and benchmarks.
func CenterSource(g *grid.Grid) []float64 {
	out := make([]float64, g.NDims())
	for d := range out {
		out[d] = g.Extent[d] / 2
	}
	return out
}

// ReceiverLine returns n receiver coordinates along the first dimension at
// fixed depth in the remaining ones.
func ReceiverLine(g *grid.Grid, n int) [][]float64 {
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		c := make([]float64, g.NDims())
		c[0] = g.Extent[0] * float64(i) / float64(n-1)
		for d := 1; d < g.NDims(); d++ {
			c[d] = g.Extent[d] / 4
		}
		out[i] = c
	}
	return out
}

// validateShape guards against degenerate configurations.
func validateShape(c *Config, minPoints int) error {
	for d, s := range c.Shape {
		if s < minPoints {
			return fmt.Errorf("propagators: shape[%d]=%d too small (need >= %d)", d, s, minPoints)
		}
	}
	return nil
}
