package propagators

import (
	"testing"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
)

// The worker-count-invariance suite pins the shared-memory tier's
// correctness contract: tiles are disjoint row bands with a fixed
// row-major point order inside each, so the wavefields must be
// *bit-identical* at every worker count, on every engine, for both the
// persistent pool and the legacy fork-join dispatch, with and without
// time tiling. Equality is exact (==), not tolerance-based.

// runWorkers executes nt steps of a freshly built model with the given
// engine/worker configuration and closes the operator's pool.
func runWorkers(t *testing.T, engine string, workers, k int, forkJoin bool) (*Model, *RunResult) {
	t.Helper()
	m, err := Build("acoustic", serialCfg([]int{24, 24}, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{NT: 20, NReceivers: 4, Engine: engine,
		Workers: workers, TileRows: 3, TimeTile: k, ForkJoin: forkJoin})
	if err != nil {
		t.Fatal(err)
	}
	res.Op.Close()
	return m, res
}

func TestWorkerCountInvariance_Serial(t *testing.T) {
	engines := []string{core.EngineBytecode, core.EngineInterpreter, core.EngineNative}
	for _, engine := range engines {
		for _, k := range []int{1, 4} {
			t.Run(engine+"/k"+string(rune('0'+k)), func(t *testing.T) {
				mRef, resRef := runWorkers(t, engine, 1, k, false)
				for _, w := range []int{2, 4, 7} {
					mW, resW := runWorkers(t, engine, w, k, false)
					if resRef.Norm != resW.Norm {
						t.Errorf("workers=%d: norms diverge: %v vs %v", w, resRef.Norm, resW.Norm)
					}
					for it := range resRef.Receivers {
						for r := range resRef.Receivers[it] {
							if resRef.Receivers[it][r] != resW.Receivers[it][r] {
								t.Fatalf("workers=%d: trace (%d,%d) diverges", w, it, r)
							}
						}
					}
					compareModels(t, "workers", engine, mRef, mW)
				}
			})
		}
	}
}

func TestPoolMatchesForkJoinBitExact(t *testing.T) {
	// The two dispatch mechanisms execute the same tiles in the same
	// per-tile order; only the scheduling differs, so results match the
	// serial baseline bit for bit on both.
	for _, engine := range []string{core.EngineBytecode, core.EngineNative} {
		mRef, resRef := runWorkers(t, engine, 1, 1, false)
		mPool, resPool := runWorkers(t, engine, 4, 1, false)
		mFJ, resFJ := runWorkers(t, engine, 4, 1, true)
		if resRef.Norm != resPool.Norm || resRef.Norm != resFJ.Norm {
			t.Errorf("%s: norms diverge: serial %v, pool %v, fork-join %v",
				engine, resRef.Norm, resPool.Norm, resFJ.Norm)
		}
		compareModels(t, "pool", engine, mRef, mPool)
		compareModels(t, "forkjoin", engine, mRef, mFJ)
	}
}

func TestWorkerCountInvariance_DMP(t *testing.T) {
	// Workers-within-rank composed with ranks: a 4-rank full-overlap run
	// (worker 0 doubling as the progress engine) must stay bit-identical
	// across worker counts at both exchange intervals.
	for _, k := range []int{1, 4} {
		var refNorm float64
		var refTraces [][]float64
		for i, w := range []int{1, 7} {
			norm, traces := runWorkersDMP(t, core.EngineNative, w, k)
			if i == 0 {
				refNorm, refTraces = norm, traces
				continue
			}
			if norm != refNorm {
				t.Errorf("k=%d workers=%d: 4-rank norms diverge: %v vs %v", k, w, norm, refNorm)
			}
			for it := range refTraces {
				for r := range refTraces[it] {
					if refTraces[it][r] != traces[it][r] {
						t.Fatalf("k=%d workers=%d: trace (%d,%d) diverges", k, w, it, r)
					}
				}
			}
		}
	}
}

// runWorkersDMP mirrors runEngineDMP with a configurable per-rank worker
// count (each of the 4 ranks spawns its own persistent team).
func runWorkersDMP(t *testing.T, engine string, workers, k int) (float64, [][]float64) {
	t.Helper()
	shape := []int{24, 24}
	w := mpi.NewWorld(4)
	var norm float64
	var traces [][]float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, 4)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeFull}
		res, err := Run(m, ctx, RunConfig{NT: 16, NReceivers: 4, Engine: engine,
			Workers: workers, TileRows: 3, TimeTile: k})
		if err != nil {
			t.Error(err)
			return
		}
		res.Op.Close()
		if c.Rank() == 0 {
			norm = res.Norm
			traces = res.Receivers
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return norm, traces
}
