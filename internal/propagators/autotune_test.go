package propagators

import (
	"testing"
	"time"

	"devigo/internal/core"
	"devigo/internal/grid"
	"devigo/internal/halo"
	"devigo/internal/mpi"
	"devigo/internal/perfmodel"
)

// runAutotuned runs a serial acoustic scenario with the given autotune
// policy (or a forced fixed configuration when policy is "") and returns
// the final norm, receiver traces and the effective configuration.
func runAutotuned(t *testing.T, policy string, workers, tileRows, nt int) (float64, [][]float64, core.EffectiveConfig) {
	t.Helper()
	m, err := Acoustic(serialCfg([]int{48, 48}, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil, RunConfig{
		NT: nt, NReceivers: 4,
		Workers: workers, TileRows: tileRows,
		Autotune: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Norm, res.Receivers, res.Op.Config()
}

// TestAutotuneInvariance is the bit-exactness guarantee the in-place
// tuner rests on: whatever configuration the autotuner settles on, the
// numerical results are identical to a fixed-configuration run.
func TestAutotuneInvariance(t *testing.T) {
	const nt = 24
	refNorm, refTraces, _ := runAutotuned(t, "", 1, 8, nt)
	for _, policy := range []string{core.AutotuneModel, core.AutotuneSearch} {
		norm, traces, cfg := runAutotuned(t, policy, 0, 0, nt)
		if cfg.Autotune != policy {
			t.Errorf("%s: effective config reports policy %q", policy, cfg.Autotune)
		}
		if norm != refNorm {
			t.Errorf("%s: norm %v != fixed-config norm %v (chose %s/w%d/t%d)",
				policy, norm, refNorm, cfg.Mode, cfg.Workers, cfg.TileRows)
		}
		for ti := range refTraces {
			for r := range refTraces[ti] {
				if traces[ti][r] != refTraces[ti][r] {
					t.Fatalf("%s: trace[%d][%d] differs: %v != %v",
						policy, ti, r, traces[ti][r], refTraces[ti][r])
				}
			}
		}
	}
}

// TestAutotuneRespectsForcedKnobs pins Workers/TileRows through Options
// and checks the tuner leaves them alone.
func TestAutotuneRespectsForcedKnobs(t *testing.T) {
	_, _, cfg := runAutotuned(t, core.AutotuneSearch, 1, 7, 16)
	if cfg.Workers != 1 || cfg.TileRows != 7 {
		t.Errorf("forced workers=1 tile=7 overridden: got w%d/t%d", cfg.Workers, cfg.TileRows)
	}
}

// TestAutotuneEnvVar drives the policy through DEVIGO_AUTOTUNE — the
// zero-user-code-changes path.
func TestAutotuneEnvVar(t *testing.T) {
	t.Setenv(core.AutotuneEnvVar, "model")
	_, _, cfg := runAutotuned(t, "", 0, 0, 8)
	if cfg.Autotune != core.AutotuneModel {
		t.Errorf("DEVIGO_AUTOTUNE=model not picked up: policy %q", cfg.Autotune)
	}
	t.Setenv(core.AutotuneEnvVar, "bogus")
	m, err := Acoustic(serialCfg([]int{32, 32}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, nil, RunConfig{NT: 2}); err == nil {
		t.Error("bogus DEVIGO_AUTOTUNE value must error")
	}
}

// dmpMeasure runs a 4-rank acoustic scenario under one halo mode with
// autotune off and returns the slowest rank's kernel+halo seconds and the
// rank-0 norm.
func dmpMeasure(t *testing.T, shape []int, mode halo.Mode, so, nt int) (float64, float64) {
	t.Helper()
	w := mpi.NewWorld(4)
	var seconds, norm float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: mode}
		start := time.Now()
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4})
		if err != nil {
			t.Error(err)
			return
		}
		el := time.Since(start).Seconds()
		el = c.AllreduceScalar(el, mpi.OpMax)
		if c.Rank() == 0 {
			seconds = el
			norm = res.Norm
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return seconds, norm
}

// TestModelOrderingMatchesMeasured checks the satellite requirement: the
// cost model's preferred halo mode must be competitive with the measured
// best on the reduced CI grids. Timing on shared runners is noisy, so the
// assertion is robust: the model's top mode must either *be* the measured
// winner or measure within 35% of it (best-of-3 per mode).
func TestModelOrderingMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped under -short")
	}
	shape := []int{96, 96}
	const so, nt = 4, 12

	// The model's ranking, from the profile of the real compiled operator.
	var prof perfmodel.OpProfile
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, _ := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		cart, _ := mpi.CartCreate(c, dec.Topology, nil)
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeDiagonal}
		op, err := core.NewOperator(m.Eqs, m.Fields, m.Grid, ctx, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			prof = op.Profile()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	host := perfmodel.DefaultHost()
	modes := []halo.Mode{halo.ModeBasic, halo.ModeDiagonal, halo.ModeFull}
	modelBest := modes[0]
	bestPred := 0.0
	for i, m := range modes {
		pred := host.Predict(prof, perfmodel.ExecConfig{Mode: m, Workers: 1, TileRows: 8})
		if i == 0 || pred < bestPred {
			modelBest, bestPred = m, pred
		}
	}

	// The measured ranking (best of 3 per mode), plus the bit-exactness
	// of results across modes.
	measured := map[halo.Mode]float64{}
	var refNorm float64
	for i, m := range modes {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			s, norm := dmpMeasure(t, shape, m, so, nt)
			if rep == 0 || s < best {
				best = s
			}
			if i == 0 && rep == 0 {
				refNorm = norm
			} else if norm != refNorm {
				t.Fatalf("mode %v norm %v != reference %v (modes must be bit-exact)", m, norm, refNorm)
			}
		}
		measured[m] = best
	}
	measuredBest := modes[0]
	for _, m := range modes[1:] {
		if measured[m] < measured[measuredBest] {
			measuredBest = m
		}
	}
	if modelBest != measuredBest && measured[modelBest] > 1.35*measured[measuredBest] {
		t.Errorf("model prefers %v (measured %.4fs) but %v measured best (%.4fs): ordering off by >35%%",
			modelBest, measured[modelBest], measuredBest, measured[measuredBest])
	}
	t.Logf("model best: %v; measured: basic=%.4fs diag=%.4fs full=%.4fs",
		modelBest, measured[halo.ModeBasic], measured[halo.ModeDiagonal], measured[halo.ModeFull])
}

// TestAutotuneDMPBitExactAndConsistent runs a 4-rank world with the
// search policy (which may retarget the halo mode mid-run on every rank)
// and checks the result is bit-identical to a fixed-mode run and that all
// ranks agree on the chosen configuration.
func TestAutotuneDMPBitExactAndConsistent(t *testing.T) {
	shape := []int{48, 48}
	const so, nt = 4, 20
	_, refNorm := dmpMeasure(t, shape, halo.ModeDiagonal, so, nt)

	w := mpi.NewWorld(4)
	cfgs := make([]core.EffectiveConfig, 4)
	var norm float64
	err := w.Run(func(c *mpi.Comm) {
		g := grid.MustNew(shape, nil)
		dec, err := grid.NewDecomposition(g, c.Size(), []int{2, 2})
		if err != nil {
			t.Error(err)
			return
		}
		cart, err := mpi.CartCreate(c, dec.Topology, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := serialCfg(shape, so)
		cfg.Decomp = dec
		cfg.Rank = c.Rank()
		m, err := Build("acoustic", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &core.Context{Comm: c, Cart: cart, Decomp: dec, Mode: halo.ModeBasic}
		res, err := Run(m, ctx, RunConfig{NT: nt, NReceivers: 4, Autotune: core.AutotuneSearch})
		if err != nil {
			t.Error(err)
			return
		}
		cfgs[c.Rank()] = res.Op.Config()
		if c.Rank() == 0 {
			norm = res.Norm
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if cfgs[r] != cfgs[0] {
			t.Fatalf("rank %d chose %+v, rank 0 chose %+v", r, cfgs[r], cfgs[0])
		}
	}
	if norm != refNorm {
		t.Errorf("autotuned DMP norm %v != fixed-mode norm %v (chose %+v)", norm, refNorm, cfgs[0])
	}
}
